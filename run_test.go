package talon_test

import (
	"context"
	"testing"

	"talon"
)

// buildTrainer assembles a jailbroken pair, coarse patterns and a
// trainer in env, mirroring the package example deployment.
func buildTrainer(t *testing.T, env *talon.Environment, opts ...talon.TrainerOption) (*talon.Trainer, *talon.Link, *talon.Device, *talon.Device) {
	t.Helper()
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(env, dut, peer)
	dutPose, peerPose := talon.Pose{}, talon.Pose{Yaw: 180}
	dutPose.Pos.Z, peerPose.Pos.Z = 1.2, 1.2
	peerPose.Pos.X = 3
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)
	trainer, err := talon.NewTrainer(link, patterns, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return trainer, link, dut, peer
}

// TestRunTracerOrdering drives a mutual Run with a recording tracer and
// checks that the stage spans arrive well-formed and in pipeline order.
func TestRunTracerOrdering(t *testing.T) {
	trainer, _, dut, peer := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(9))
	rec := &talon.TraceRecorder{}
	res, err := trainer.Run(context.Background(), dut, peer, talon.Mutual(), talon.WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	if res.SLS == nil {
		t.Fatal("mutual run returned no SLS result")
	}

	events := rec.Events()
	want := []struct{ name, phase string }{
		{"trainer.run", "begin"},
		{"trainer.sweep", "begin"},
		{"trainer.sweep", "end"},
		{"trainer.estimate", "begin"},
		{"trainer.estimate", "end"},
		{"trainer.force", "begin"},
		{"trainer.force", "end"},
		{"trainer.sls", "begin"},
		{"trainer.sls", "end"},
		{"trainer.run", "end"},
	}
	if len(events) != len(want) {
		t.Fatalf("recorded %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, w := range want {
		if events[i].Name != w.name || events[i].Phase != w.phase {
			t.Fatalf("event %d = %s/%s, want %s/%s", i, events[i].Name, events[i].Phase, w.name, w.phase)
		}
	}
	// The run span carries the mode label.
	labels := events[0].Labels
	if len(labels) != 1 || labels[0].Key != "mode" || labels[0].Value != "mutual" {
		t.Fatalf("trainer.run labels = %+v, want mode=mutual", labels)
	}
}

// TestRunMatchesTrain checks that the delegating wrappers and Run draw
// the same RNG stream: two trainers with identical seeds must make
// identical choices whichever entry point is used.
func TestRunMatchesTrain(t *testing.T) {
	t1, _, dut1, peer1 := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(33))
	t2, _, dut2, peer2 := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(33))

	legacy, err := t1.Train(context.Background(), dut1, peer1)
	if err != nil {
		t.Fatal(err)
	}
	unified, err := t2.Run(context.Background(), dut2, peer2)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Sector != unified.Sector {
		t.Fatalf("Train chose %v, Run chose %v", legacy.Sector, unified.Sector)
	}
	if len(legacy.Probed) != len(unified.Probed) {
		t.Fatalf("probe counts differ: %d vs %d", len(legacy.Probed), len(unified.Probed))
	}
	for i := range legacy.Probed {
		if legacy.Probed[i] != unified.Probed[i] {
			t.Fatalf("probe %d: %v vs %v", i, legacy.Probed[i], unified.Probed[i])
		}
	}
	if unified.Backup != nil {
		t.Fatal("plain Run populated Backup")
	}
}

// TestRunWithBackup checks the WithBackup option populates the backup
// selection the way TrainWithBackup reports it.
func TestRunWithBackup(t *testing.T) {
	trainer, _, dut, peer := buildTrainer(t, talon.ConferenceRoom(), talon.WithM(24), talon.WithSeed(4))
	res, err := trainer.Run(context.Background(), dut, peer, talon.WithBackup(talon.DefaultBackupSeparationDeg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Backup == nil {
		t.Fatal("WithBackup run returned nil Backup")
	}
	if res.Backup.Primary.Sector != res.Sector {
		t.Fatalf("primary %v != selection %v", res.Backup.Primary.Sector, res.Sector)
	}
	if res.SLS != nil {
		t.Fatal("non-mutual run returned an SLS result")
	}
}
