package fault

import (
	"errors"
	"math"
	"testing"
	"time"

	"talon/internal/dot11ad"
	"talon/internal/radio"
)

func TestBernoulliDeterministicAndCalibrated(t *testing.T) {
	const n = 20000
	a, b := NewBernoulli(0.3, 7), NewBernoulli(0.3, 7)
	drops := 0
	for i := 0; i < n; i++ {
		da, db := a.DropFrame(FrameEvent{}), b.DropFrame(FrameEvent{})
		if da != db {
			t.Fatalf("same seed diverged at frame %d", i)
		}
		if da {
			drops++
		}
	}
	if rate := float64(drops) / n; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("realized loss rate %.3f, want ~0.30", rate)
	}
}

func TestGilbertElliottLossRateAndBursts(t *testing.T) {
	const n = 200000
	for _, target := range []float64{0.05, 0.1, 0.2} {
		g := NewGilbertElliott(GEFromLossRate(target, 4), 11)
		drops, bursts, inBurst := 0, 0, false
		for i := 0; i < n; i++ {
			if g.DropFrame(FrameEvent{}) {
				drops++
				if !inBurst {
					bursts++
				}
				inBurst = true
			} else {
				inBurst = false
			}
		}
		rate := float64(drops) / n
		if math.Abs(rate-target) > target/3 {
			t.Fatalf("target %.2f: realized loss rate %.3f", target, rate)
		}
		if bursts == 0 {
			t.Fatalf("target %.2f: no bursts observed", target)
		}
		// Losses must cluster: mean burst length well above 1 frame.
		if mean := float64(drops) / float64(bursts); mean < 2 {
			t.Fatalf("target %.2f: mean burst %.2f frames, want bursty (>= 2)", target, mean)
		}
	}
}

func TestGEFromLossRateClamps(t *testing.T) {
	cfg := GEFromLossRate(2.0, 0.1)
	if cfg.PGoodToBad > 1 || cfg.PBadToGood != 1 {
		t.Fatalf("clamped config out of range: %+v", cfg)
	}
	zero := GEFromLossRate(0, 4)
	if zero.PGoodToBad != 0 {
		t.Fatalf("zero rate must never enter the bad state, got %+v", zero)
	}
}

func TestRSSIBiasAndDrift(t *testing.T) {
	m := radio.Measurement{SNR: 5, RSSI: -60}
	got := RSSIBias{BiasDB: 2}.PerturbMeasurement(FrameEvent{}, m)
	if got.RSSI != -58 || got.SNR != 5 {
		t.Fatalf("bias: got %+v", got)
	}
	ev := FrameEvent{Time: 10 * time.Second}
	got = RSSIDrift{RateDBPerSec: 0.5}.PerturbMeasurement(ev, m)
	if got.RSSI != -55 {
		t.Fatalf("drift: RSSI = %v, want -55", got.RSSI)
	}
}

func TestStaleFeedbackReplaysPreviousField(t *testing.T) {
	s := NewStaleFeedback(1, 3) // always fire once armed
	first := &dot11ad.Frame{Type: dot11ad.TypeSSW, Feedback: dot11ad.SSWFeedbackField{SectorSelect: 7}}
	s.CorruptFrame(FrameEvent{}, first)
	if first.Feedback.SectorSelect != 7 {
		t.Fatalf("first frame corrupted before any feedback was seen: %+v", first.Feedback)
	}
	second := &dot11ad.Frame{Type: dot11ad.TypeSSW, Feedback: dot11ad.SSWFeedbackField{SectorSelect: 12}}
	s.CorruptFrame(FrameEvent{}, second)
	if second.Feedback.SectorSelect != 7 {
		t.Fatalf("second frame kept fresh feedback %v, want stale 7", second.Feedback.SectorSelect)
	}
	// The remembered field is the fresh one, not the replayed one.
	third := &dot11ad.Frame{Type: dot11ad.TypeSSW, Feedback: dot11ad.SSWFeedbackField{SectorSelect: 20}}
	s.CorruptFrame(FrameEvent{}, third)
	if third.Feedback.SectorSelect != 12 {
		t.Fatalf("third frame got %v, want previous fresh value 12", third.Feedback.SectorSelect)
	}
	// Beacons carry no feedback and are left alone.
	beacon := &dot11ad.Frame{Type: dot11ad.TypeDMGBeacon}
	s.CorruptFrame(FrameEvent{}, beacon)
	if beacon.Feedback != (dot11ad.SSWFeedbackField{}) {
		t.Fatalf("beacon corrupted: %+v", beacon.Feedback)
	}
}

func TestRecordStormPattern(t *testing.T) {
	r := &RecordStorm{Period: 8, Burst: 2}
	for i := 0; i < 32; i++ {
		want := i%8 < 2
		if got := r.DropRecord(); got != want {
			t.Fatalf("record %d: drop = %v, want %v", i, got, want)
		}
	}
	disabled := &RecordStorm{}
	if disabled.DropRecord() {
		t.Fatal("zero-valued storm must not drop")
	}
}

func TestWMIFlakeWrapsSentinel(t *testing.T) {
	w := NewWMIFlake(1, 5)
	err := w.WMIError(0x9a1)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrap of ErrInjected", err)
	}
	if NewWMIFlake(0, 5).WMIError(0x9a1) != nil {
		t.Fatal("p=0 must never fail")
	}
}

// chainProbe records which hooks were consulted.
type chainProbe struct {
	Nop
	frames, records int
}

func (c *chainProbe) DropFrame(FrameEvent) bool { c.frames++; return false }
func (c *chainProbe) DropRecord() bool          { c.records++; return false }

func TestChainConsultsEveryMember(t *testing.T) {
	p1, p2 := &chainProbe{}, &chainProbe{}
	ch := Chain{p1, NewBernoulli(1, 1), p2}
	if !ch.DropFrame(FrameEvent{}) {
		t.Fatal("chain with certain loss did not drop")
	}
	if p1.frames != 1 || p2.frames != 1 {
		t.Fatalf("members after the dropping one not consulted: %d/%d", p1.frames, p2.frames)
	}
	if ch.DropRecord() {
		t.Fatal("no member drops records")
	}
	if p1.records != 1 || p2.records != 1 {
		t.Fatalf("record hooks not consulted: %d/%d", p1.records, p2.records)
	}
	m := radio.Measurement{SNR: 3, RSSI: -62}
	got := Chain{RSSIBias{BiasDB: 1}, RSSIBias{BiasDB: 2}}.PerturbMeasurement(FrameEvent{}, m)
	if got.RSSI != -59 {
		t.Fatalf("chained bias RSSI = %v, want -59", got.RSSI)
	}
}

func TestApplyHelpersTolerateNil(t *testing.T) {
	if ApplyFrame(nil, FrameEvent{}) {
		t.Fatal("nil injector dropped a frame")
	}
	m := radio.Measurement{SNR: 1, RSSI: -70}
	if got := ApplyMeasurement(nil, FrameEvent{}, m); got != m {
		t.Fatalf("nil injector changed a measurement: %+v", got)
	}
	f := &dot11ad.Frame{Type: dot11ad.TypeSSW}
	ApplyFrameCorruption(nil, FrameEvent{}, f)
	if ApplyRecord(nil) {
		t.Fatal("nil injector dropped a record")
	}
	if err := ApplyWMI(nil, 1); err != nil {
		t.Fatalf("nil injector failed WMI: %v", err)
	}
}

func TestApplyCountsHitRates(t *testing.T) {
	seen0, drops0 := metFramesSeen.Value(), metFrameDrops.Value()
	inj := NewBernoulli(1, 1)
	if !ApplyFrame(inj, FrameEvent{}) {
		t.Fatal("certain loss did not drop")
	}
	if metFramesSeen.Value()-seen0 != 1 || metFrameDrops.Value()-drops0 != 1 {
		t.Fatal("frame counters did not tick")
	}
	pert0 := metMeasPerturbed.Value()
	ApplyMeasurement(RSSIBias{BiasDB: 1}, FrameEvent{}, radio.Measurement{})
	ApplyMeasurement(RSSIBias{}, FrameEvent{}, radio.Measurement{}) // unchanged: no tick
	if metMeasPerturbed.Value()-pert0 != 1 {
		t.Fatal("perturbed counter must tick only on changed measurements")
	}
	wmi0 := metWMIFailures.Value()
	if err := ApplyWMI(NewWMIFlake(1, 2), 0x9a1); err == nil {
		t.Fatal("certain flake did not fail")
	}
	if metWMIFailures.Value()-wmi0 != 1 {
		t.Fatal("WMI failure counter did not tick")
	}
}

func TestStandard60GHzDeterministic(t *testing.T) {
	a, b := Standard60GHz(0.2, 4, 9), Standard60GHz(0.2, 4, 9)
	ev := FrameEvent{Time: time.Second}
	for i := 0; i < 5000; i++ {
		if a.DropFrame(ev) != b.DropFrame(ev) {
			t.Fatalf("preset diverged at frame %d", i)
		}
		if a.DropRecord() != b.DropRecord() {
			t.Fatalf("preset record path diverged at %d", i)
		}
		ea, eb := a.WMIError(1), b.WMIError(1)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("preset WMI path diverged at %d", i)
		}
	}
}
