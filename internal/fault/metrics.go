package fault

import "talon/internal/obs"

// Impairment hit-rate metrics (see README, "Observability"). The
// seen/drop pair yields the realized frame-loss rate of an experiment;
// the remaining counters tick once per impaired measurement, frame,
// record or WMI command.
var (
	metFramesSeen = obs.NewCounter("fault_frames_seen_total",
		"frame deliveries evaluated by an installed fault injector")
	metFrameDrops = obs.NewCounter("fault_frame_drops_total",
		"frame deliveries lost to injected frame-loss channels")
	metMeasPerturbed = obs.NewCounter("fault_measurements_perturbed_total",
		"measurements rewritten by injected bias or drift")
	metFrameCorruptions = obs.NewCounter("fault_frames_corrupted_total",
		"decoded frames mutated in flight (stale feedback and the like)")
	metRecordDrops = obs.NewCounter("fault_record_drops_total",
		"firmware measurement records lost to injected drop storms")
	metWMIFailures = obs.NewCounter("fault_wmi_failures_total",
		"WMI commands failed by injected transient faults")
)
