// Package fault is the deterministic impairment layer of the simulated
// testbed: a set of composable, seedable fault injectors that hook into
// the frame pipeline of wil.Link and the record/WMI paths of
// wil.Firmware. Everything the 60 GHz channel and the QCA9500 platform
// do to sabotage sector training — bursty SSW frame loss, biased and
// drifting RSSI readings, stale feedback fields, ring-buffer drop storms,
// transient WMI command failures — is modelled here so that the resilient
// training path (retry, backoff, full-sweep fallback) can be exercised
// and evaluated reproducibly from a seed.
//
// The hook is the Injector interface. wil.Link.SetInjector installs one
// on a link and mirrors it into both devices' firmware; a nil injector is
// a strict no-op and leaves the unimpaired RNG streams untouched, so
// fault-free runs stay bit-identical to a build without this package.
//
// Injectors carry per-link state (Markov loss channels, drift clocks,
// stale-feedback memory) and, like wil.Link itself, are not safe for
// concurrent use; give every link its own injector instance.
package fault

import (
	"errors"
	"time"

	"talon/internal/dot11ad"
	"talon/internal/radio"
	"talon/internal/sector"
)

// ErrInjected is the sentinel wrapped by every error this layer
// fabricates (today: transient WMI command failures). Callers classify
// such failures as retryable with errors.Is.
var ErrInjected = errors.New("injected fault")

// FrameEvent describes one frame delivery attempt the injector is
// consulted about: the endpoints by device name, the transmit sector, the
// link's virtual clock at transmission time and a per-link monotonically
// increasing frame sequence number.
type FrameEvent struct {
	// TX and RX are the device names of the transmitter and the receiver
	// being impaired (a sniffer's name on the capture path).
	TX, RX string
	// Sector is the transmit sector of the frame.
	Sector sector.ID
	// Time is the link's virtual clock when the frame went on the air.
	Time time.Duration
	// Seq counts frames put on the air by the link, starting at 0.
	Seq uint64
}

// Injector is the impairment hook consulted by wil.Link (frames and
// measurements) and wil.Firmware (ring records and WMI commands). Embed
// Nop to implement only the hooks an impairment needs.
type Injector interface {
	// DropFrame reports whether this frame delivery is lost before the
	// receiver's measurement model even sees it (frame-loss channels).
	DropFrame(ev FrameEvent) bool
	// PerturbMeasurement rewrites a successful measurement (bias, drift)
	// and returns the reading the firmware will report.
	PerturbMeasurement(ev FrameEvent, m radio.Measurement) radio.Measurement
	// CorruptFrame mutates a decoded frame in flight (stale feedback
	// fields, flipped selections) before the receiver processes it.
	CorruptFrame(ev FrameEvent, f *dot11ad.Frame)
	// DropRecord reports whether the firmware loses the measurement
	// record of a received SSW frame (ring-buffer drop storms).
	DropRecord() bool
	// WMIError returns a non-nil error when the WMI command should fail
	// transiently. Returned errors must wrap ErrInjected.
	WMIError(cmd uint16) error
}

// Nop implements Injector with no impairments; embed it to override only
// selected hooks.
type Nop struct{}

// DropFrame never drops.
func (Nop) DropFrame(FrameEvent) bool { return false }

// PerturbMeasurement returns m unchanged.
func (Nop) PerturbMeasurement(_ FrameEvent, m radio.Measurement) radio.Measurement { return m }

// CorruptFrame leaves the frame alone.
func (Nop) CorruptFrame(FrameEvent, *dot11ad.Frame) {}

// DropRecord never drops.
func (Nop) DropRecord() bool { return false }

// WMIError never fails.
func (Nop) WMIError(uint16) error { return nil }

// Chain composes injectors: a frame is dropped when any member drops it,
// measurements pass through every member in order, every member may
// corrupt the frame, a record is dropped when any member drops it, and
// the first WMI error wins. Every member is always consulted so stateful
// channels (Gilbert–Elliott, drift) advance deterministically regardless
// of the other members' decisions.
type Chain []Injector

// DropFrame implements Injector.
func (c Chain) DropFrame(ev FrameEvent) bool {
	dropped := false
	for _, inj := range c {
		if inj.DropFrame(ev) {
			dropped = true
		}
	}
	return dropped
}

// PerturbMeasurement implements Injector.
func (c Chain) PerturbMeasurement(ev FrameEvent, m radio.Measurement) radio.Measurement {
	for _, inj := range c {
		m = inj.PerturbMeasurement(ev, m)
	}
	return m
}

// CorruptFrame implements Injector.
func (c Chain) CorruptFrame(ev FrameEvent, f *dot11ad.Frame) {
	for _, inj := range c {
		inj.CorruptFrame(ev, f)
	}
}

// DropRecord implements Injector.
func (c Chain) DropRecord() bool {
	dropped := false
	for _, inj := range c {
		if inj.DropRecord() {
			dropped = true
		}
	}
	return dropped
}

// WMIError implements Injector.
func (c Chain) WMIError(cmd uint16) error {
	var first error
	for _, inj := range c {
		if err := inj.WMIError(cmd); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// The Apply* helpers are the call sites wil uses: they tolerate a nil
// injector (strict pass-through, no counting) and keep the impairment
// hit-rate metrics consistent no matter which injector is installed.

// ApplyFrame consults inj about one frame delivery and counts the
// outcome. It reports whether the frame is lost.
func ApplyFrame(inj Injector, ev FrameEvent) bool {
	if inj == nil {
		return false
	}
	metFramesSeen.Inc()
	if inj.DropFrame(ev) {
		metFrameDrops.Inc()
		return true
	}
	return false
}

// ApplyMeasurement runs m through inj and counts perturbed readings.
func ApplyMeasurement(inj Injector, ev FrameEvent, m radio.Measurement) radio.Measurement {
	if inj == nil {
		return m
	}
	out := inj.PerturbMeasurement(ev, m)
	if out != m {
		metMeasPerturbed.Inc()
	}
	return out
}

// ApplyFrameCorruption lets inj mutate the decoded frame and counts
// corrupted frames.
func ApplyFrameCorruption(inj Injector, ev FrameEvent, f *dot11ad.Frame) {
	if inj == nil || f == nil {
		return
	}
	before := *f
	inj.CorruptFrame(ev, f)
	if *f != before {
		metFrameCorruptions.Inc()
	}
}

// ApplyRecord consults inj about one firmware measurement record and
// counts drops. It reports whether the record is lost.
func ApplyRecord(inj Injector) bool {
	if inj == nil {
		return false
	}
	if inj.DropRecord() {
		metRecordDrops.Inc()
		return true
	}
	return false
}

// ApplyWMI consults inj about one WMI command and counts injected
// failures.
func ApplyWMI(inj Injector, cmd uint16) error {
	if inj == nil {
		return nil
	}
	err := inj.WMIError(cmd)
	if err != nil {
		metWMIFailures.Inc()
	}
	return err
}
