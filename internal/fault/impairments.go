package fault

import (
	"fmt"

	"talon/internal/dot11ad"
	"talon/internal/radio"
	"talon/internal/stats"
)

// Bernoulli drops every frame independently with probability P — the
// memoryless loss channel.
type Bernoulli struct {
	Nop
	p   float64
	rng *stats.RNG
}

// NewBernoulli returns a Bernoulli loss channel with loss probability p,
// seeded deterministically.
func NewBernoulli(p float64, seed int64) *Bernoulli {
	return &Bernoulli{p: clamp01(p), rng: stats.NewRNG(seed)}
}

// DropFrame implements Injector.
func (b *Bernoulli) DropFrame(FrameEvent) bool { return b.rng.Bool(b.p) }

// GEConfig parameterizes a Gilbert–Elliott loss channel: a two-state
// Markov chain whose bad state models a blockage or deep fade. All four
// values are probabilities per frame.
type GEConfig struct {
	// PGoodToBad and PBadToGood are the per-frame transition
	// probabilities; 1/PBadToGood is the mean burst length in frames.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-frame loss probabilities inside
	// each state (classically 0 and 1).
	LossGood, LossBad float64
}

// GEFromLossRate derives a Gilbert–Elliott configuration with the given
// stationary loss rate and mean burst length in frames (lossless good
// state, fully lossy bad state). meanBurst values below 1 are clamped
// to 1; rate is clamped to [0, 0.95] so the chain keeps a good state.
func GEFromLossRate(rate, meanBurst float64) GEConfig {
	rate = clampF(rate, 0, 0.95)
	if meanBurst < 1 {
		meanBurst = 1
	}
	recover := 1 / meanBurst
	var fail float64
	if rate > 0 {
		// Stationary bad-state occupancy p/(p+r) = rate.
		fail = clamp01(rate * recover / (1 - rate))
	}
	return GEConfig{PGoodToBad: fail, PBadToGood: recover, LossGood: 0, LossBad: 1}
}

// GilbertElliott is the classic bursty loss channel: frame losses
// cluster into bursts whose length follows the bad-state dwell time —
// the shape of SSW loss under transient blockage at 60 GHz.
type GilbertElliott struct {
	Nop
	cfg GEConfig
	bad bool
	rng *stats.RNG
}

// NewGilbertElliott returns a deterministic Gilbert–Elliott channel
// starting in the good state.
func NewGilbertElliott(cfg GEConfig, seed int64) *GilbertElliott {
	cfg.PGoodToBad = clamp01(cfg.PGoodToBad)
	cfg.PBadToGood = clamp01(cfg.PBadToGood)
	cfg.LossGood = clamp01(cfg.LossGood)
	cfg.LossBad = clamp01(cfg.LossBad)
	return &GilbertElliott{cfg: cfg, rng: stats.NewRNG(seed)}
}

// DropFrame implements Injector: advance the chain one frame, then lose
// the frame with the current state's loss probability.
func (g *GilbertElliott) DropFrame(FrameEvent) bool {
	if g.bad {
		if g.rng.Bool(g.cfg.PBadToGood) {
			g.bad = false
		}
	} else if g.rng.Bool(g.cfg.PGoodToBad) {
		g.bad = true
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	return g.rng.Bool(p)
}

// InBadState exposes the channel state for tests and diagnostics.
func (g *GilbertElliott) InBadState() bool { return g.bad }

// RSSIBias shifts every reported RSSI by a constant offset — a
// miscalibrated detector. SNR readings are untouched, which decorrelates
// the two paths beyond the stock measurement model and stresses the
// Eq. 5 joint correlation.
type RSSIBias struct {
	Nop
	// BiasDB is the constant RSSI offset in dB.
	BiasDB float64
}

// PerturbMeasurement implements Injector.
func (b RSSIBias) PerturbMeasurement(_ FrameEvent, m radio.Measurement) radio.Measurement {
	m.RSSI += b.BiasDB
	return m
}

// RSSIDrift ramps the reported RSSI linearly with the link's virtual
// clock — thermal drift of the detector over a long experiment.
type RSSIDrift struct {
	Nop
	// RateDBPerSec is the drift slope in dB per second of airtime.
	RateDBPerSec float64
}

// PerturbMeasurement implements Injector.
func (d RSSIDrift) PerturbMeasurement(ev FrameEvent, m radio.Measurement) radio.Measurement {
	m.RSSI += d.RateDBPerSec * ev.Time.Seconds()
	return m
}

// StaleFeedback replays an outdated SSW feedback field: with probability
// P a frame's feedback is replaced by the last feedback this injector saw
// — the firmware race in which a feedback register update loses against
// the frame scheduler.
type StaleFeedback struct {
	Nop
	p    float64
	rng  *stats.RNG
	last dot11ad.SSWFeedbackField
	seen bool
}

// NewStaleFeedback returns a stale-feedback corruptor firing with
// probability p per feedback-carrying frame.
func NewStaleFeedback(p float64, seed int64) *StaleFeedback {
	return &StaleFeedback{p: clamp01(p), rng: stats.NewRNG(seed)}
}

// CorruptFrame implements Injector: only frames that carry a feedback
// field (SSW, SSW-Feedback, SSW-Ack) are candidates.
func (s *StaleFeedback) CorruptFrame(_ FrameEvent, f *dot11ad.Frame) {
	switch f.Type {
	case dot11ad.TypeSSW, dot11ad.TypeSSWFeedback, dot11ad.TypeSSWAck:
	default:
		return
	}
	fresh := f.Feedback
	if s.seen && s.rng.Bool(s.p) {
		f.Feedback = s.last
	}
	s.last, s.seen = fresh, true
}

// RecordStorm drops Burst consecutive firmware measurement records out of
// every Period — the host-visible symptom of an interrupt storm starving
// the ring-buffer writer. Deterministic by construction (no RNG).
type RecordStorm struct {
	Nop
	// Period and Burst are counts of records; every window of Period
	// records loses its first Burst.
	Period, Burst int
	n             int
}

// DropRecord implements Injector.
func (r *RecordStorm) DropRecord() bool {
	if r.Period <= 0 || r.Burst <= 0 {
		return false
	}
	drop := r.n%r.Period < r.Burst
	r.n++
	return drop
}

// WMIFlake fails WMI commands transiently with probability P, modelling
// the firmware mailbox timeouts the patched driver occasionally hits.
// Errors wrap ErrInjected so resilient callers can classify and retry.
type WMIFlake struct {
	Nop
	p   float64
	rng *stats.RNG
}

// NewWMIFlake returns a WMI fault source firing with probability p per
// command.
func NewWMIFlake(p float64, seed int64) *WMIFlake {
	return &WMIFlake{p: clamp01(p), rng: stats.NewRNG(seed)}
}

// WMIError implements Injector.
func (w *WMIFlake) WMIError(cmd uint16) error {
	if !w.rng.Bool(w.p) {
		return nil
	}
	return fmt.Errorf("fault: WMI %#x: %w: mailbox timeout", cmd, ErrInjected)
}

// Standard60GHz bundles the default hostile-channel preset used by the
// fault-sweep evaluation: Gilbert–Elliott loss at the given rate with
// meanBurst-frame bursts, a 1.5 dB RSSI bias, slow RSSI drift, sparse
// stale feedback, occasional record storms and 2% transient WMI
// failures, all seeded deterministically from seed.
func Standard60GHz(lossRate, meanBurst float64, seed int64) Chain {
	return Chain{
		NewGilbertElliott(GEFromLossRate(lossRate, meanBurst), seed),
		RSSIBias{BiasDB: 1.5},
		RSSIDrift{RateDBPerSec: 0.2},
		NewStaleFeedback(0.02, seed+1),
		&RecordStorm{Period: 64, Burst: 2},
		NewWMIFlake(0.02, seed+2),
	}
}

func clamp01(v float64) float64 { return clampF(v, 0, 1) }

func clampF(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
