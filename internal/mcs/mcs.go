// Package mcs models the IEEE 802.11ad single-carrier PHY rate ladder and
// an iPerf-style application-layer throughput estimate, including the
// airtime spent on beamtraining — the model behind the paper's Figure 11.
//
// PHY rates are the standard SC MCS 1–12 rates. The SNR thresholds are
// calibrated to this project's link-budget scale (which, like the paper's
// firmware readings, tops out around 12 dB for a good sector pair at
// 3 m); absolute sensitivities of real silicon do not transfer to a
// simulated budget, but the monotone SNR→rate mapping that Figure 11
// relies on does.
package mcs

import (
	"fmt"
	"math"
	"time"

	"talon/internal/dot11ad"
)

// MCS is one entry of the rate ladder.
type MCS struct {
	// Index is the standard MCS number (0 = control PHY).
	Index int
	// Modulation names the scheme, for display.
	Modulation string
	// PHYRateMbps is the nominal PHY data rate.
	PHYRateMbps float64
	// MinSNRdB is the calibrated minimum SNR to sustain the rate.
	MinSNRdB float64
}

// Table returns the rate ladder: control PHY (MCS 0) plus SC MCS 1–12.
func Table() []MCS {
	return []MCS{
		{0, "DBPSK (control)", 27.5, -6.0},
		{1, "π/2-BPSK 1/2 rep2", 385, -5.0},
		{2, "π/2-BPSK 1/2", 770, -3.5},
		{3, "π/2-BPSK 5/8", 962.5, -2.5},
		{4, "π/2-BPSK 3/4", 1155, -1.5},
		{5, "π/2-BPSK 13/16", 1251.25, -0.8},
		{6, "π/2-QPSK 1/2", 1540, 0.5},
		{7, "π/2-QPSK 5/8", 1925, 1.8},
		{8, "π/2-QPSK 3/4", 2310, 3.0},
		{9, "π/2-QPSK 13/16", 2502.5, 4.2},
		{10, "π/2-16QAM 1/2", 3080, 7.0},
		{11, "π/2-16QAM 5/8", 3850, 9.0},
		{12, "π/2-16QAM 3/4", 4620, 11.0},
	}
}

// Select returns the fastest data MCS sustainable at snr. ok is false when
// even MCS 1 is out of reach (the link is control-PHY-only or dead).
func Select(snr float64) (MCS, bool) {
	table := Table()
	best, ok := MCS{}, false
	for _, m := range table[1:] { // skip control PHY for data
		if snr >= m.MinSNRdB {
			best, ok = m, true
		}
	}
	return best, ok
}

// PHYRateMbps returns the PHY data rate at snr, or 0 below MCS 1.
func PHYRateMbps(snr float64) float64 {
	m, ok := Select(snr)
	if !ok {
		return 0
	}
	return m.PHYRateMbps
}

// ThroughputModel estimates iPerf-style application-layer TCP throughput.
type ThroughputModel struct {
	// TCPEfficiency is the MAC+TCP/IP efficiency over the PHY rate.
	TCPEfficiency float64
	// DeviceCapMbps models the router's host-CPU bottleneck: measured
	// Talon AD7200 iPerf numbers saturate around 1.65 Gbps regardless of
	// MCS.
	DeviceCapMbps float64
	// TrainingInterval is how often beamtraining runs (the devices
	// trigger it about once per second even when static).
	TrainingInterval time.Duration
	// BeaconAirtime is the fraction of airtime spent on beacon bursts.
	BeaconAirtime float64
}

// DefaultThroughputModel returns the calibrated Figure 11 model.
func DefaultThroughputModel() ThroughputModel {
	return ThroughputModel{
		TCPEfficiency:    0.62,
		DeviceCapMbps:    1650,
		TrainingInterval: dot11ad.SweepInterval,
		BeaconAirtime:    0.006, // 32 × ~19 µs per 102.4 ms beacon interval
	}
}

// AppThroughputMbps returns the expected application-layer throughput on
// a link with the given SNR when each training round costs trainingTime.
func (t ThroughputModel) AppThroughputMbps(snr float64, trainingTime time.Duration) float64 {
	phy := PHYRateMbps(snr)
	if phy == 0 {
		return 0
	}
	app := phy * t.TCPEfficiency
	if t.DeviceCapMbps > 0 {
		app = math.Min(app, t.DeviceCapMbps)
	}
	frac := 1.0 - t.BeaconAirtime
	if t.TrainingInterval > 0 {
		frac -= float64(trainingTime) / float64(t.TrainingInterval)
	}
	if frac < 0 {
		frac = 0
	}
	return app * frac
}

// String implements fmt.Stringer.
func (m MCS) String() string {
	return fmt.Sprintf("MCS %d (%s, %.1f Mbps)", m.Index, m.Modulation, m.PHYRateMbps)
}
