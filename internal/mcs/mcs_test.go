package mcs

import (
	"testing"
	"time"

	"talon/internal/dot11ad"
)

func TestTableMonotone(t *testing.T) {
	table := Table()
	if len(table) != 13 {
		t.Fatalf("table size = %d", len(table))
	}
	for i := 2; i < len(table); i++ {
		if table[i].PHYRateMbps <= table[i-1].PHYRateMbps {
			t.Errorf("rate not increasing at MCS %d", table[i].Index)
		}
		if table[i].MinSNRdB <= table[i-1].MinSNRdB {
			t.Errorf("threshold not increasing at MCS %d", table[i].Index)
		}
	}
	if table[0].Index != 0 || table[12].Index != 12 {
		t.Fatal("index numbering wrong")
	}
}

func TestSelect(t *testing.T) {
	if _, ok := Select(-10); ok {
		t.Error("dead link selected an MCS")
	}
	m, ok := Select(-4.9)
	if !ok || m.Index != 1 {
		t.Errorf("Select(-4.9) = %v, %v", m, ok)
	}
	m, ok = Select(12)
	if !ok || m.Index != 12 {
		t.Errorf("Select(12) = %v, %v", m, ok)
	}
	m, _ = Select(5)
	if m.Index != 9 {
		t.Errorf("Select(5) = %v", m)
	}
}

func TestPHYRateMonotoneInSNR(t *testing.T) {
	prev := -1.0
	for snr := -8.0; snr <= 14; snr += 0.25 {
		r := PHYRateMbps(snr)
		if r < prev {
			t.Fatalf("rate decreased at %v dB", snr)
		}
		prev = r
	}
}

func TestAppThroughput(t *testing.T) {
	m := DefaultThroughputModel()
	// A conference-room-grade link lands in the ~1.5 Gbps regime of
	// Figure 11.
	got := m.AppThroughputMbps(5.5, dot11ad.MutualTrainingTime(34))
	if got < 1300 || got > 1700 {
		t.Fatalf("throughput at 5.5 dB = %v Mbps", got)
	}
	// Dead link.
	if got := m.AppThroughputMbps(-9, 0); got != 0 {
		t.Fatalf("dead link throughput = %v", got)
	}
	// The device cap binds at very high SNR.
	uncapped := ThroughputModel{TCPEfficiency: 0.62, TrainingInterval: time.Second}
	if uncapped.AppThroughputMbps(12, 0) <= m.AppThroughputMbps(12, 0) {
		t.Fatal("device cap not binding at high SNR")
	}
}

func TestTrainingOverheadReducesThroughput(t *testing.T) {
	m := DefaultThroughputModel()
	fast := m.AppThroughputMbps(5.5, dot11ad.MutualTrainingTime(14))
	slow := m.AppThroughputMbps(5.5, dot11ad.MutualTrainingTime(34))
	if fast <= slow {
		t.Fatalf("shorter training did not help: %v vs %v", fast, slow)
	}
	// The gain is sub-percent (the paper: "differences might barely be
	// recognizable").
	if (fast-slow)/slow > 0.01 {
		t.Fatalf("training gain implausibly large: %v vs %v", fast, slow)
	}
	// Pathological: training longer than the interval floors at zero.
	if got := m.AppThroughputMbps(5.5, 2*time.Second); got != 0 {
		t.Fatalf("over-long training = %v", got)
	}
}

func TestMCSString(t *testing.T) {
	if s := Table()[9].String(); s == "" {
		t.Fatal("empty String")
	}
}
