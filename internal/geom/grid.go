package geom

import (
	"fmt"
	"math"
)

// Grid is a rectangular sampling grid over azimuth × elevation, in degrees.
// Both axes are strictly ascending. Grids are immutable after construction.
type Grid struct {
	az []float64
	el []float64
}

// NewGrid builds a grid from explicit axis samples. Axes must be non-empty
// and strictly ascending.
func NewGrid(az, el []float64) (*Grid, error) {
	if err := checkAxis("azimuth", az); err != nil {
		return nil, err
	}
	if err := checkAxis("elevation", el); err != nil {
		return nil, err
	}
	g := &Grid{az: append([]float64(nil), az...), el: append([]float64(nil), el...)}
	return g, nil
}

// UniformGrid builds a grid with uniform steps covering [azMin, azMax] and
// [elMin, elMax] inclusive. Steps must be positive. The maxima are included
// when they land on a step boundary (within a small tolerance).
func UniformGrid(azMin, azMax, azStep, elMin, elMax, elStep float64) (*Grid, error) {
	az, err := axisRange(azMin, azMax, azStep)
	if err != nil {
		return nil, fmt.Errorf("azimuth axis: %w", err)
	}
	el, err := axisRange(elMin, elMax, elStep)
	if err != nil {
		return nil, fmt.Errorf("elevation axis: %w", err)
	}
	return NewGrid(az, el)
}

func axisRange(lo, hi, step float64) ([]float64, error) {
	if step <= 0 {
		return nil, fmt.Errorf("step %v must be positive", step)
	}
	if hi < lo {
		return nil, fmt.Errorf("range [%v, %v] is empty", lo, hi)
	}
	n := int(math.Floor((hi-lo)/step + 1e-9))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, lo+float64(i)*step)
	}
	return out, nil
}

func checkAxis(name string, v []float64) error {
	if len(v) == 0 {
		return fmt.Errorf("%s axis is empty", name)
	}
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			return fmt.Errorf("%s axis not strictly ascending at index %d (%v then %v)", name, i, v[i-1], v[i])
		}
	}
	return nil
}

// Az returns the azimuth axis samples. The returned slice must not be
// modified.
func (g *Grid) Az() []float64 { return g.az }

// El returns the elevation axis samples. The returned slice must not be
// modified.
func (g *Grid) El() []float64 { return g.el }

// NumAz returns the number of azimuth samples.
func (g *Grid) NumAz() int { return len(g.az) }

// NumEl returns the number of elevation samples.
func (g *Grid) NumEl() int { return len(g.el) }

// Size returns the total number of grid points.
func (g *Grid) Size() int { return len(g.az) * len(g.el) }

// Equal reports whether two grids have identical axes.
func (g *Grid) Equal(o *Grid) bool {
	if g == o {
		return true
	}
	if o == nil || len(g.az) != len(o.az) || len(g.el) != len(o.el) {
		return false
	}
	for i := range g.az {
		if g.az[i] != o.az[i] {
			return false
		}
	}
	for i := range g.el {
		if g.el[i] != o.el[i] {
			return false
		}
	}
	return true
}

// Bracket locates v on axis. It returns the lower index i and the fraction
// t in [0, 1] such that v ≈ axis[i]*(1-t) + axis[i+1]*t. Values outside the
// axis are clamped to the ends.
func Bracket(axis []float64, v float64) (i int, t float64) {
	n := len(axis)
	if n == 1 || v <= axis[0] {
		return 0, 0
	}
	if v >= axis[n-1] {
		return n - 2, 1
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if axis[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	den := axis[hi] - axis[lo]
	if den == 0 {
		return lo, 0
	}
	return lo, (v - axis[lo]) / den
}

// Nearest returns the index of the axis sample closest to v.
func Nearest(axis []float64, v float64) int {
	i, t := Bracket(axis, v)
	if len(axis) == 1 {
		return 0
	}
	if t > 0.5 {
		return i + 1
	}
	return i
}
