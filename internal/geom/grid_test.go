package geom

import (
	"testing"
	"testing/quick"
)

func TestUniformGrid(t *testing.T) {
	g, err := UniformGrid(-180, 179.1, 0.9, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAz() != 400 {
		t.Fatalf("NumAz = %d, want 400", g.NumAz())
	}
	if g.NumEl() != 1 {
		t.Fatalf("NumEl = %d, want 1", g.NumEl())
	}
	if g.Az()[0] != -180 || !almostEq(g.Az()[399], 179.1, 1e-9) {
		t.Fatalf("axis ends: %v .. %v", g.Az()[0], g.Az()[399])
	}
	if g.Size() != 400 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestUniformGridPaperCampaigns(t *testing.T) {
	// The 3D campaign: azimuth ±90° at 1.8°, elevation 0–32.4° at 3.6°.
	g, err := UniformGrid(-90, 90, 1.8, 0, 32.4, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAz() != 101 {
		t.Fatalf("NumAz = %d, want 101", g.NumAz())
	}
	if g.NumEl() != 10 {
		t.Fatalf("NumEl = %d, want 10", g.NumEl())
	}
}

func TestUniformGridErrors(t *testing.T) {
	if _, err := UniformGrid(0, 10, 0, 0, 0, 1); err == nil {
		t.Error("zero azimuth step accepted")
	}
	if _, err := UniformGrid(0, 10, 1, 0, 0, -1); err == nil {
		t.Error("negative elevation step accepted")
	}
	if _, err := UniformGrid(10, 0, 1, 0, 0, 1); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, []float64{0}); err == nil {
		t.Error("empty azimuth axis accepted")
	}
	if _, err := NewGrid([]float64{0, 0}, []float64{0}); err == nil {
		t.Error("non-ascending azimuth axis accepted")
	}
	if _, err := NewGrid([]float64{1, 0}, []float64{0}); err == nil {
		t.Error("descending azimuth axis accepted")
	}
}

func TestGridEqual(t *testing.T) {
	a, _ := NewGrid([]float64{0, 1}, []float64{0})
	b, _ := NewGrid([]float64{0, 1}, []float64{0})
	c, _ := NewGrid([]float64{0, 2}, []float64{0})
	if !a.Equal(b) || !a.Equal(a) {
		t.Error("equal grids not Equal")
	}
	if a.Equal(c) || a.Equal(nil) {
		t.Error("unequal grids reported Equal")
	}
}

func TestBracket(t *testing.T) {
	axis := []float64{0, 1, 3, 7}
	cases := []struct {
		v     float64
		wantI int
		wantT float64
	}{
		{-1, 0, 0}, {0, 0, 0}, {0.5, 0, 0.5}, {1, 1, 0}, {2, 1, 0.5},
		{5, 2, 0.5}, {7, 2, 1}, {9, 2, 1},
	}
	for _, c := range cases {
		i, tt := Bracket(axis, c.v)
		if i != c.wantI || !almostEq(tt, c.wantT, 1e-12) {
			t.Errorf("Bracket(%v) = (%d, %v), want (%d, %v)", c.v, i, tt, c.wantI, c.wantT)
		}
	}
}

func TestBracketSingleton(t *testing.T) {
	i, tt := Bracket([]float64{5}, 99)
	if i != 0 || tt != 0 {
		t.Fatalf("Bracket singleton = (%d, %v)", i, tt)
	}
}

func TestBracketReconstructionProperty(t *testing.T) {
	axis := []float64{-10, -4, 0, 0.5, 2, 8, 33}
	f := func(v float64) bool {
		if v < axis[0] {
			v = axis[0]
		}
		if v > axis[len(axis)-1] {
			v = axis[len(axis)-1]
		}
		i, tt := Bracket(axis, v)
		rec := axis[i]*(1-tt) + axis[i+1]*tt
		return almostEq(rec, v, 1e-9) && tt >= 0 && tt <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNearest(t *testing.T) {
	axis := []float64{0, 1, 3}
	cases := []struct {
		v    float64
		want int
	}{{-5, 0}, {0.4, 0}, {0.6, 1}, {1.9, 1}, {2.5, 2}, {10, 2}}
	for _, c := range cases {
		if got := Nearest(axis, c.v); got != c.want {
			t.Errorf("Nearest(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := Nearest([]float64{7}, -3); got != 0 {
		t.Errorf("Nearest singleton = %d", got)
	}
}
