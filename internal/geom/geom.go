// Package geom provides the spherical geometry used throughout the
// sector-selection code base: azimuth/elevation angles in degrees, unit
// direction vectors, angular distances and sampling grids.
//
// Conventions (matching the paper):
//
//   - Azimuth φ is measured in the horizontal plane, in degrees, wrapped to
//     [-180, 180). 0° is the array boresight, positive angles to the left.
//   - Elevation θ is measured from the horizontal plane upwards, in degrees,
//     clamped to [-90, 90].
//   - Directions are unit vectors with x toward boresight, y to the left and
//     z up, i.e. x = cosθ·cosφ, y = cosθ·sinφ, z = sinθ.
//
// All exported APIs take degrees; radians are used only inside math kernels.
package geom

import "math"

// Deg2Rad converts degrees to radians.
func Deg2Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(rad float64) float64 { return rad * 180 / math.Pi }

// WrapAz wraps an azimuth angle to the canonical interval [-180, 180).
func WrapAz(deg float64) float64 {
	d := math.Mod(deg+180, 360)
	if d < 0 {
		d += 360
	}
	return d - 180
}

// ClampEl clamps an elevation angle to [-90, 90].
func ClampEl(deg float64) float64 {
	switch {
	case deg < -90:
		return -90
	case deg > 90:
		return 90
	}
	return deg
}

// AzDist returns the absolute wrapped azimuth distance between two azimuth
// angles, in [0, 180].
func AzDist(a, b float64) float64 {
	d := math.Abs(WrapAz(a - b))
	return d
}

// Direction is a unit vector on the sphere.
type Direction struct {
	X, Y, Z float64
}

// FromAngles builds the unit direction vector for azimuth az and elevation
// el (degrees).
func FromAngles(az, el float64) Direction {
	a, e := Deg2Rad(az), Deg2Rad(ClampEl(el))
	ce := math.Cos(e)
	return Direction{
		X: ce * math.Cos(a),
		Y: ce * math.Sin(a),
		Z: math.Sin(e),
	}
}

// Angles returns the azimuth and elevation (degrees) of the direction.
// The zero Direction yields (0, 0).
func (d Direction) Angles() (az, el float64) {
	n := d.Norm()
	if n == 0 {
		return 0, 0
	}
	el = Rad2Deg(math.Asin(clamp(d.Z/n, -1, 1)))
	az = Rad2Deg(math.Atan2(d.Y, d.X))
	return WrapAz(az), el
}

// Dot returns the inner product of two directions.
func (d Direction) Dot(o Direction) float64 { return d.X*o.X + d.Y*o.Y + d.Z*o.Z }

// Norm returns the Euclidean length of the vector.
func (d Direction) Norm() float64 { return math.Sqrt(d.Dot(d)) }

// Scale returns the vector scaled by s.
func (d Direction) Scale(s float64) Direction { return Direction{d.X * s, d.Y * s, d.Z * s} }

// Add returns the vector sum d+o.
func (d Direction) Add(o Direction) Direction { return Direction{d.X + o.X, d.Y + o.Y, d.Z + o.Z} }

// Sub returns the vector difference d-o.
func (d Direction) Sub(o Direction) Direction { return Direction{d.X - o.X, d.Y - o.Y, d.Z - o.Z} }

// Normalize returns the unit vector pointing in the same direction.
// The zero vector is returned unchanged.
func (d Direction) Normalize() Direction {
	n := d.Norm()
	if n == 0 {
		return d
	}
	return d.Scale(1 / n)
}

// AngleTo returns the great-circle angle between two directions, in degrees
// within [0, 180].
func (d Direction) AngleTo(o Direction) float64 {
	dn, on := d.Normalize(), o.Normalize()
	return Rad2Deg(math.Acos(clamp(dn.Dot(on), -1, 1)))
}

// SphereDist returns the great-circle angular distance in degrees between
// the directions (az1, el1) and (az2, el2).
func SphereDist(az1, el1, az2, el2 float64) float64 {
	return FromAngles(az1, el1).AngleTo(FromAngles(az2, el2))
}

// RotateAz returns the direction rotated by deg degrees around the vertical
// (z) axis. Positive angles rotate from x toward y, i.e. they add to the
// azimuth of the direction.
func (d Direction) RotateAz(deg float64) Direction {
	r := Deg2Rad(deg)
	c, s := math.Cos(r), math.Sin(r)
	return Direction{
		X: c*d.X - s*d.Y,
		Y: s*d.X + c*d.Y,
		Z: d.Z,
	}
}

// RotateEl returns the direction rotated by deg degrees around the y axis
// so that positive angles tilt the boresight (x axis) upwards.
func (d Direction) RotateEl(deg float64) Direction {
	r := Deg2Rad(deg)
	c, s := math.Cos(r), math.Sin(r)
	return Direction{
		X: c*d.X - s*d.Z,
		Y: d.Y,
		Z: s*d.X + c*d.Z,
	}
}

// Point is a position in 3D space, in meters.
type Point struct {
	X, Y, Z float64
}

// Sub returns the displacement vector from o to p.
func (p Point) Sub(o Point) Direction { return Direction{p.X - o.X, p.Y - o.Y, p.Z - o.Z} }

// Add displaces the point by the vector v.
func (p Point) Add(v Direction) Point { return Point{p.X + v.X, p.Y + v.Y, p.Z + v.Z} }

// Dist returns the Euclidean distance between two points in meters.
func (p Point) Dist(o Point) float64 { return p.Sub(o).Norm() }

func clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
