package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestWrapAz(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170},
		{360, 0}, {-360, 0}, {540, -180}, {45, 45}, {-45, -45},
		{720 + 30, 30}, {-720 - 30, -30},
	}
	for _, c := range cases {
		if got := WrapAz(c.in); !almostEq(got, c.want, 1e-9) {
			t.Errorf("WrapAz(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapAzProperty(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.IsInf(deg, 0) || math.Abs(deg) > 1e12 {
			return true
		}
		w := WrapAz(deg)
		if w < -180 || w >= 180 {
			return false
		}
		// Wrapping must preserve the angle modulo 360.
		diff := math.Mod(deg-w, 360)
		if diff < 0 {
			diff += 360
		}
		return diff < 1e-6 || diff > 360-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampEl(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{0, 0}, {90, 90}, {-90, -90}, {91, 90}, {-91, -90}, {45.5, 45.5},
	} {
		if got := ClampEl(c.in); got != c.want {
			t.Errorf("ClampEl(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAzDist(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {10, -10, 20}, {170, -170, 20}, {-90, 90, 180}, {179, -179, 2},
	}
	for _, c := range cases {
		if got := AzDist(c.a, c.b); !almostEq(got, c.want, 1e-9) {
			t.Errorf("AzDist(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFromAnglesRoundTrip(t *testing.T) {
	for az := -175.0; az <= 175; az += 12.5 {
		for el := -85.0; el <= 85; el += 8.5 {
			d := FromAngles(az, el)
			if !almostEq(d.Norm(), 1, 1e-12) {
				t.Fatalf("FromAngles(%v, %v) not unit: %v", az, el, d.Norm())
			}
			gaz, gel := d.Angles()
			if !almostEq(gaz, az, 1e-9) || !almostEq(gel, el, 1e-9) {
				t.Fatalf("round trip (%v, %v) -> (%v, %v)", az, el, gaz, gel)
			}
		}
	}
}

func TestAnglesAtPoles(t *testing.T) {
	up := FromAngles(0, 90)
	if !almostEq(up.Z, 1, 1e-12) {
		t.Fatalf("up vector = %+v", up)
	}
	_, el := up.Angles()
	if !almostEq(el, 90, 1e-9) {
		t.Fatalf("pole elevation = %v", el)
	}
	var zero Direction
	az, el := zero.Angles()
	if az != 0 || el != 0 {
		t.Fatalf("zero vector angles = (%v, %v), want (0, 0)", az, el)
	}
}

func TestSphereDist(t *testing.T) {
	cases := []struct{ az1, el1, az2, el2, want float64 }{
		{0, 0, 0, 0, 0},
		{0, 0, 90, 0, 90},
		{0, 0, 180, 0, 180},
		{0, 0, 0, 90, 90},
		{0, 90, 180, 90, 0}, // both at the pole
		{-45, 0, 45, 0, 90},
	}
	for _, c := range cases {
		if got := SphereDist(c.az1, c.el1, c.az2, c.el2); !almostEq(got, c.want, 1e-6) {
			t.Errorf("SphereDist(%v,%v,%v,%v) = %v, want %v", c.az1, c.el1, c.az2, c.el2, got, c.want)
		}
	}
}

func TestSphereDistSymmetryProperty(t *testing.T) {
	f := func(a1, e1, a2, e2 float64) bool {
		a1, a2 = WrapAz(a1), WrapAz(a2)
		e1, e2 = ClampEl(math.Mod(e1, 90)), ClampEl(math.Mod(e2, 90))
		if math.IsNaN(a1 + a2 + e1 + e2) {
			return true
		}
		d1 := SphereDist(a1, e1, a2, e2)
		d2 := SphereDist(a2, e2, a1, e1)
		return almostEq(d1, d2, 1e-9) && d1 >= -1e-12 && d1 <= 180+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateAz(t *testing.T) {
	d := FromAngles(10, 0).RotateAz(25)
	az, el := d.Angles()
	if !almostEq(az, 35, 1e-9) || !almostEq(el, 0, 1e-9) {
		t.Fatalf("RotateAz: got (%v, %v), want (35, 0)", az, el)
	}
}

func TestRotateEl(t *testing.T) {
	d := FromAngles(0, 0).RotateEl(30)
	az, el := d.Angles()
	if !almostEq(az, 0, 1e-9) || !almostEq(el, 30, 1e-9) {
		t.Fatalf("RotateEl: got (%v, %v), want (0, 30)", az, el)
	}
}

func TestRotationInverseProperty(t *testing.T) {
	f := func(az, el, rot float64) bool {
		az, el = WrapAz(az), ClampEl(math.Mod(el, 90))
		rot = math.Mod(rot, 360)
		if math.IsNaN(az + el + rot) {
			return true
		}
		d := FromAngles(az, el)
		back := d.RotateAz(rot).RotateAz(-rot)
		return almostEq(back.X, d.X, 1e-9) && almostEq(back.Y, d.Y, 1e-9) && almostEq(back.Z, d.Z, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointOps(t *testing.T) {
	a := Point{1, 2, 3}
	b := Point{4, 6, 3}
	if got := a.Dist(b); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := b.Sub(a); got != (Direction{3, 4, 0}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := a.Add(Direction{1, 1, 1}); got != (Point{2, 3, 4}) {
		t.Fatalf("Add = %+v", got)
	}
}

func TestDirectionHelpers(t *testing.T) {
	d := Direction{3, 4, 0}
	if n := d.Normalize().Norm(); !almostEq(n, 1, 1e-12) {
		t.Fatalf("Normalize norm = %v", n)
	}
	var zero Direction
	if zero.Normalize() != zero {
		t.Fatal("Normalize of zero changed it")
	}
	if got := d.Scale(2); got != (Direction{6, 8, 0}) {
		t.Fatalf("Scale = %+v", got)
	}
	if got := d.Add(Direction{1, 1, 1}).Sub(Direction{1, 1, 1}); got != d {
		t.Fatalf("Add/Sub = %+v", got)
	}
}
