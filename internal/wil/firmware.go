// Package wil simulates the QCA9500 FullMAC IEEE 802.11ad chip of the
// Talon AD7200 at the fidelity the paper's experiments need: the stock
// sector-sweep handling (argmax on reported SNR), the Nexmon-style
// firmware patches that (a) dump per-sector RSSI/SNR measurements into a
// ring buffer readable from user space and (b) let user space overwrite
// the sector selection placed into SSW feedback fields, plus the WMI
// command interface the paper's modified wil6210 driver uses.
//
// The package name follows the Linux driver for this chip (wil6210).
package wil

import (
	"encoding/binary"
	"fmt"
	"math"

	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/nexmon"
	"talon/internal/radio"
	"talon/internal/sector"
)

// Patch names of the two firmware extensions from Section 3.
const (
	// PatchNameSweepDump is the ucode patch that copies RSSI/SNR of
	// received SSW frames into the host-readable ring buffer.
	PatchNameSweepDump = "ssw-dump"
	// PatchNameSectorOverride is the patch adding the user-space switch
	// that overwrites the sector ID in SSW feedback fields.
	PatchNameSectorOverride = "sector-override"
)

// Memory locations used by the patched firmware (host view, i.e. writable
// high aliases of Figure 1).
const (
	// patchCodeAddr is where the ucode patch body is placed: inside the
	// ucode code partition, reachable for writing only via its alias.
	patchCodeAddr = nexmon.UcodeCodeAlias + 0x16000
	// overrideCodeAddr hosts the feedback-override stub.
	overrideCodeAddr = nexmon.FwCodeAlias + 0x3500
	// forcedSectorAddr holds [valid, sectorID] in the fw data partition,
	// set through WMI.
	forcedSectorAddr = nexmon.FwDataAlias + 0x1040
	// ringHeaderAddr holds the uint32 LE total-records counter, followed
	// by the record array.
	ringHeaderAddr = nexmon.UcodeDataAlias + 0x0200
	ringBufferAddr = ringHeaderAddr + 8
)

// Ring buffer geometry.
const (
	// RingCapacity is the number of record slots; older records are
	// overwritten, as in the real patch.
	RingCapacity = 128
	recordLen    = 8
)

// SweepRecord is one decoded ring-buffer entry: the firmware's measurement
// of one received SSW frame.
type SweepRecord struct {
	// Seq is the monotonically increasing record number.
	Seq uint32
	// Sector is the transmitter's sector the frame was sent on.
	Sector sector.ID
	// CDOWN is the burst countdown of the frame.
	CDOWN uint16
	// SNR is the reported SNR in dB (quarter-dB grid, clamped).
	SNR float64
	// RSSI is the reported RSSI in dBm.
	RSSI float64
}

// Firmware is the chip state: memory, patch framework and the sweep
// tracking of the stock selection algorithm.
type Firmware struct {
	mem *nexmon.Memory
	fwk *nexmon.Framework

	// sweep holds the measurements of the currently received sweep,
	// keyed by the peer's sector — the stock algorithm's working state.
	sweep map[sector.ID]radio.Measurement
	seq   uint32

	// inj is the installed impairment layer (nil = unimpaired),
	// consulted for record drop storms and transient WMI failures.
	inj fault.Injector
}

// NewFirmware boots a stock firmware image.
func NewFirmware() *Firmware {
	mem := nexmon.NewQCA9500Memory()
	return &Firmware{
		mem:   mem,
		fwk:   nexmon.NewFramework(mem),
		sweep: make(map[sector.ID]radio.Measurement),
	}
}

// SetInjector installs inj as the firmware's fault injector (nil
// clears). Link.SetInjector mirrors its injector here; set one directly
// only for firmware-level experiments without a link.
func (f *Firmware) SetInjector(inj fault.Injector) { f.inj = inj }

// Memory exposes the chip memory (the host's mmap view).
func (f *Firmware) Memory() *nexmon.Memory { return f.mem }

// Framework exposes the patching framework.
func (f *Firmware) Framework() *nexmon.Framework { return f.fwk }

// SweepDumpPatch returns the ucode patch enabling measurement extraction.
func SweepDumpPatch() nexmon.Patch {
	return nexmon.Patch{
		Name:        PatchNameSweepDump,
		Description: "extract RSSI/SNR of received SSW frames into a host-readable ring buffer",
		Addr:        patchCodeAddr,
		Data:        []byte("hook:rx-ssw->ring"),
	}
}

// SectorOverridePatch returns the patch enabling feedback overwriting.
func SectorOverridePatch() nexmon.Patch {
	return nexmon.Patch{
		Name:        PatchNameSectorOverride,
		Description: "switch selecting the SSW feedback sector: stock algorithm or user-space value",
		Addr:        overrideCodeAddr,
		Data:        []byte("hook:ssw-feedback->switch"),
	}
}

// ApplyPatch installs a patch.
func (f *Firmware) ApplyPatch(p nexmon.Patch) error { return f.fwk.Apply(p) }

// SweepDumpEnabled reports whether the extraction patch is installed.
func (f *Firmware) SweepDumpEnabled() bool { return f.fwk.Applied(PatchNameSweepDump) }

// OverrideEnabled reports whether the override patch is installed.
func (f *Firmware) OverrideEnabled() bool { return f.fwk.Applied(PatchNameSectorOverride) }

// BeginRXSweep resets the per-sweep measurement state when a new incoming
// sector sweep starts.
func (f *Firmware) BeginRXSweep() {
	f.sweep = make(map[sector.ID]radio.Measurement)
}

// RecordSSW processes one decoded SSW frame received on the quasi-omni
// sector: the stock path updates the per-sector measurement table; the
// dump patch additionally appends a ring-buffer record.
func (f *Firmware) RecordSSW(sec sector.ID, cdown uint16, m radio.Measurement) {
	if fault.ApplyRecord(f.inj) {
		// A drop storm loses the frame's measurement entirely: neither
		// the stock sweep table nor the host-readable ring sees it.
		return
	}
	f.sweep[sec] = m
	if !f.SweepDumpEnabled() {
		return
	}
	metRingRecords.Inc()
	if f.seq >= RingCapacity {
		// The slot about to be written still holds record seq-RingCapacity,
		// which the host can no longer read back: a drop.
		metRingOverflow.Inc()
		metRingOccupancy.Set(RingCapacity)
	} else {
		metRingOccupancy.Set(int64(f.seq) + 1)
	}
	slot := f.seq % RingCapacity
	var rec [recordLen]byte
	binary.LittleEndian.PutUint16(rec[0:2], uint16(f.seq))
	rec[2] = byte(sec)
	rec[3] = dot11ad.EncodeSNR(m.SNR)
	rec[4] = byte(int8(clampF(math.Round(m.RSSI), -128, 127)))
	rec[5] = byte(cdown)
	rec[6] = 1 // valid
	if err := f.mem.Write(ringBufferAddr+uint32(slot)*recordLen, rec[:]); err != nil {
		// The ring region is statically sized; a failure is a bug.
		panic(fmt.Sprintf("wil: ring write: %v", err))
	}
	f.seq++
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], f.seq)
	if err := f.mem.Write(ringHeaderAddr, hdr[:]); err != nil {
		panic(fmt.Sprintf("wil: ring header write: %v", err))
	}
}

// BestSector runs the stock selection: the probed sector with the highest
// reported SNR of the current sweep. ok is false when no frame of the
// sweep was decoded.
func (f *Firmware) BestSector() (sector.ID, bool) {
	best, bestSNR, ok := sector.ID(0), math.Inf(-1), false
	// Iterate deterministically so equal readings break ties stably.
	for _, id := range sector.TalonTX() {
		m, have := f.sweep[id]
		if !have {
			continue
		}
		if m.SNR > bestSNR {
			best, bestSNR, ok = id, m.SNR, true
		}
	}
	return best, ok
}

// SweepMeasurements returns a copy of the current sweep's per-sector
// measurements (the stock algorithm's working state).
func (f *Firmware) SweepMeasurements() map[sector.ID]radio.Measurement {
	out := make(map[sector.ID]radio.Measurement, len(f.sweep))
	for k, v := range f.sweep {
		out[k] = v
	}
	return out
}

// FeedbackSector returns the sector ID the firmware places into SSW
// feedback fields: the user-space override when the patch is installed and
// armed, otherwise the stock selection.
func (f *Firmware) FeedbackSector() (sector.ID, bool) {
	if f.OverrideEnabled() {
		if id, ok := f.forcedSector(); ok {
			return id, true
		}
	}
	return f.BestSector()
}

func (f *Firmware) forcedSector() (sector.ID, bool) {
	b, err := f.mem.Read(forcedSectorAddr, 2)
	if err != nil || b[0] == 0 {
		return 0, false
	}
	return sector.ID(b[1]), true
}

func clampF(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
