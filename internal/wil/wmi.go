package wil

import (
	"encoding/binary"
	"errors"
	"fmt"

	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/sector"
)

// WMI (Wireless Module Interface) is the host→firmware command channel of
// the wil6210 driver. The patched firmware adds commands to arm and clear
// the sector override; the stock firmware rejects them.

// ErrNotJailbroken reports a firmware feature whose backing patch is not
// applied — the stock-firmware rejection of the talon-tools extensions.
// Callers match it with errors.Is; the root talon package re-exports it.
var ErrNotJailbroken = errors.New("firmware is not jailbroken")

// WMICommandID identifies a WMI command.
type WMICommandID uint16

// Command IDs added by the firmware patches (vendor IDs are proprietary;
// these live in the vendor-reserved range used by the talon-tools patches).
const (
	// WMISetSweepSector arms the feedback override with a sector ID
	// (payload: 1 byte sector).
	WMISetSweepSector WMICommandID = 0x9a1
	// WMIClearSweepSector disarms the override (no payload).
	WMIClearSweepSector WMICommandID = 0x9a2
	// WMIGetSweepSeq returns the ring-buffer record counter (reply:
	// 4 bytes LE), letting user space poll for fresh measurements.
	WMIGetSweepSeq WMICommandID = 0x9a3
)

// HandleWMI executes a command against the firmware and returns the reply
// payload. Unknown commands and commands whose backing patch is missing
// fail, as on an unpatched chip.
func (f *Firmware) HandleWMI(cmd WMICommandID, payload []byte) ([]byte, error) {
	metWMICommands.Inc()
	if err := fault.ApplyWMI(f.inj, uint16(cmd)); err != nil {
		// An injected mailbox timeout: the command never reaches the
		// firmware. The error wraps fault.ErrInjected so resilient
		// callers can classify it as transient and retry.
		metWMIErrors.Inc()
		return nil, fmt.Errorf("wil: WMI %#x: %w", uint16(cmd), err)
	}
	reply, err := f.handleWMI(cmd, payload)
	if err != nil {
		metWMIErrors.Inc()
	}
	return reply, err
}

func (f *Firmware) handleWMI(cmd WMICommandID, payload []byte) ([]byte, error) {
	switch cmd {
	case WMISetSweepSector:
		if !f.OverrideEnabled() {
			return nil, fmt.Errorf("wil: WMI %#x: %w: firmware lacks %s patch", uint16(cmd), ErrNotJailbroken, PatchNameSectorOverride)
		}
		if len(payload) != 1 {
			return nil, fmt.Errorf("wil: WMI %#x: want 1-byte sector payload, got %d", uint16(cmd), len(payload))
		}
		id := sector.ID(payload[0])
		if !id.Valid() {
			return nil, fmt.Errorf("wil: WMI %#x: %w: invalid sector %d", uint16(cmd), sector.ErrUnknown, payload[0])
		}
		if err := f.mem.Write(forcedSectorAddr, []byte{1, byte(id)}); err != nil {
			return nil, err
		}
		return nil, nil
	case WMIClearSweepSector:
		if !f.OverrideEnabled() {
			return nil, fmt.Errorf("wil: WMI %#x: %w: firmware lacks %s patch", uint16(cmd), ErrNotJailbroken, PatchNameSectorOverride)
		}
		if err := f.mem.Write(forcedSectorAddr, []byte{0, 0}); err != nil {
			return nil, err
		}
		return nil, nil
	case WMIGetSweepSeq:
		if !f.SweepDumpEnabled() {
			return nil, fmt.Errorf("wil: WMI %#x: %w: firmware lacks %s patch", uint16(cmd), ErrNotJailbroken, PatchNameSweepDump)
		}
		b, err := f.mem.Read(ringHeaderAddr, 4)
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	return nil, fmt.Errorf("wil: unknown WMI command %#x", uint16(cmd))
}

// ReadSweepDump decodes the ring buffer from chip memory: the driver-side
// view of the extraction patch. Records arrive oldest-first; at most
// RingCapacity records are retained.
func (f *Firmware) ReadSweepDump() ([]SweepRecord, error) {
	if !f.SweepDumpEnabled() {
		return nil, fmt.Errorf("wil: %w: firmware lacks %s patch", ErrNotJailbroken, PatchNameSweepDump)
	}
	hdr, err := f.mem.Read(ringHeaderAddr, 4)
	if err != nil {
		return nil, err
	}
	total := binary.LittleEndian.Uint32(hdr)
	count := total
	if count > RingCapacity {
		count = RingCapacity
	}
	out := make([]SweepRecord, 0, count)
	for i := uint32(0); i < count; i++ {
		seq := total - count + i
		slot := seq % RingCapacity
		raw, err := f.mem.Read(ringBufferAddr+slot*recordLen, recordLen)
		if err != nil {
			return nil, err
		}
		if raw[6] != 1 {
			continue // unwritten slot
		}
		out = append(out, decodeRecord(seq, raw))
	}
	return out, nil
}

func decodeRecord(seq uint32, raw []byte) SweepRecord {
	return SweepRecord{
		Seq:    seq,
		Sector: sector.ID(raw[2]),
		CDOWN:  uint16(raw[5]),
		SNR:    dot11ad.DecodeSNR(raw[3]),
		RSSI:   float64(int8(raw[4])),
	}
}
