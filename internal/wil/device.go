package wil

import (
	"fmt"

	"talon/internal/antenna"
	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// Config describes one simulated Talon AD7200.
type Config struct {
	// Name labels the device in diagnostics.
	Name string
	// MAC is the station address.
	MAC dot11ad.MACAddr
	// Seed freezes the device's hardware imperfections and measurement
	// noise stream. The same seed reproduces the identical unit.
	Seed int64
	// ArrayConfig defaults to antenna.TalonConfig().
	ArrayConfig *antenna.Config
	// Pose places the device in the environment.
	Pose channel.Pose
	// Model defaults to radio.DefaultMeasurementModel().
	Model *radio.MeasurementModel
}

// Device is a simulated Talon AD7200: antenna array with per-unit
// imperfections, the firmware codebook, the (patchable) QCA9500 firmware
// and the driver-side access paths the paper adds.
type Device struct {
	name     string
	mac      dot11ad.MACAddr
	array    *antenna.Array
	codebook *antenna.Codebook
	fw       *Firmware
	pose     channel.Pose
	model    radio.MeasurementModel
	measRNG  *stats.RNG
}

// NewDevice builds a device from cfg.
func NewDevice(cfg Config) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("wil: device needs a name")
	}
	acfg := antenna.TalonConfig()
	if cfg.ArrayConfig != nil {
		acfg = *cfg.ArrayConfig
	}
	root := stats.NewRNG(cfg.Seed)
	arr, err := antenna.New(acfg, root.Split("array"))
	if err != nil {
		return nil, fmt.Errorf("wil: device %s: %w", cfg.Name, err)
	}
	model := radio.DefaultMeasurementModel()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	return &Device{
		name:     cfg.Name,
		mac:      cfg.MAC,
		array:    arr,
		codebook: antenna.Talon(arr),
		fw:       NewFirmware(),
		pose:     cfg.Pose,
		model:    model,
		measRNG:  root.Split("measurements"),
	}, nil
}

// Name returns the device label.
func (d *Device) Name() string { return d.name }

// MAC returns the station address.
func (d *Device) MAC() dot11ad.MACAddr { return d.mac }

// Array returns the device's antenna array.
func (d *Device) Array() *antenna.Array { return d.array }

// Codebook returns the firmware sector codebook.
func (d *Device) Codebook() *antenna.Codebook { return d.codebook }

// Firmware returns the chip firmware.
func (d *Device) Firmware() *Firmware { return d.fw }

// Pose returns the current placement.
func (d *Device) Pose() channel.Pose { return d.pose }

// SetPose moves or rotates the device.
func (d *Device) SetPose(p channel.Pose) { d.pose = p }

// Model returns the measurement model in effect.
func (d *Device) Model() radio.MeasurementModel { return d.model }

// MeasRNG returns the device's measurement noise stream.
func (d *Device) MeasRNG() *stats.RNG { return d.measRNG }

// TXGain returns the gain function of transmit sector id, or an error for
// sectors absent from the codebook.
func (d *Device) TXGain(id sector.ID) (radio.GainFunc, error) {
	w, ok := d.codebook.Weights(id)
	if !ok {
		return nil, fmt.Errorf("wil: %w: device %s has no sector %v", sector.ErrUnknown, d.name, id)
	}
	return func(az, el float64) float64 { return d.array.Gain(w, az, el) }, nil
}

// RXGain returns the gain function of the quasi-omni receive sector (no
// receive training is done on this hardware; the same sector is always
// used for reception).
func (d *Device) RXGain() radio.GainFunc {
	w, ok := d.codebook.Weights(sector.RX)
	if !ok {
		// The Talon codebook always contains RX; this is defensive.
		return func(az, el float64) float64 { return 0 }
	}
	return func(az, el float64) float64 { return d.array.Gain(w, az, el) }
}

// Jailbreak applies both firmware patches, turning the stock router into
// the paper's research platform.
func (d *Device) Jailbreak() error {
	if err := d.fw.ApplyPatch(SweepDumpPatch()); err != nil {
		return err
	}
	return d.fw.ApplyPatch(SectorOverridePatch())
}

// ForceSector arms the feedback override with id via WMI.
func (d *Device) ForceSector(id sector.ID) error {
	_, err := d.fw.HandleWMI(WMISetSweepSector, []byte{byte(id)})
	return err
}

// ClearForcedSector disarms the feedback override via WMI.
func (d *Device) ClearForcedSector() error {
	_, err := d.fw.HandleWMI(WMIClearSweepSector, nil)
	return err
}

// SweepDump reads the measurement ring buffer through the driver.
func (d *Device) SweepDump() ([]SweepRecord, error) {
	return d.fw.ReadSweepDump()
}
