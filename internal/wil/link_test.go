package wil

import (
	"math"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/sector"
)

func testPair(t testing.TB, env *channel.Environment, dist float64) (*Link, *Device, *Device) {
	t.Helper()
	a, err := NewDevice(Config{
		Name: "initiator",
		MAC:  dot11ad.MACAddr{0x02, 0, 0, 0, 0, 0xaa},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(Config{
		Name: "responder",
		MAC:  dot11ad.MACAddr{0x02, 0, 0, 0, 0, 0xbb},
		Seed: 2,
		Pose: channel.Pose{Pos: geom.Point{X: dist, Z: 1.2}, Yaw: 180},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPose(channel.Pose{Pos: geom.Point{Z: 1.2}})
	return NewLink(env, a, b), a, b
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Config{}); err == nil {
		t.Fatal("unnamed device accepted")
	}
}

func TestDeviceDeterminism(t *testing.T) {
	a1, _ := NewDevice(Config{Name: "x", Seed: 7})
	a2, _ := NewDevice(Config{Name: "x", Seed: 7})
	g1, err := a1.TXGain(63)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := a2.TXGain(63)
	for az := -60.0; az <= 60; az += 10 {
		if g1(az, 0) != g2(az, 0) {
			t.Fatal("same seed, different device")
		}
	}
}

func TestTXGainUnknownSector(t *testing.T) {
	d, _ := NewDevice(Config{Name: "x", Seed: 1})
	if _, err := d.TXGain(40); err == nil {
		t.Fatal("undefined sector accepted")
	}
}

func TestDeliverGoodLink(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	frame := dot11ad.NewSSWFrame(b.MAC(), a.MAC(), false, 10, 63, dot11ad.SSWFeedbackField{})
	raw, err := frame.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 50; i++ {
		if got, meas, ok := l.Deliver(a, b, 63, raw); ok {
			delivered++
			if got.SSW.SectorID != 63 {
				t.Fatal("frame corrupted in flight")
			}
			if meas.SNR < -7 || meas.SNR > 12 {
				t.Fatalf("measurement outside firmware window: %v", meas.SNR)
			}
		}
	}
	if delivered < 40 {
		t.Fatalf("boresight link delivered only %d/50", delivered)
	}
}

func TestDeliverWeakSectorMisses(t *testing.T) {
	// At 12 m the scrambled sector drops below decode sensitivity while
	// the boresight sector still decodes reliably.
	l, a, b := testPair(t, channel.AnechoicChamber(), 12)
	frame := dot11ad.NewSSWFrame(b.MAC(), a.MAC(), false, 10, 62, dot11ad.SSWFeedbackField{})
	raw, _ := frame.Serialize()
	// Sector 62 is one of the scrambled low-gain sectors; across many
	// tries it must miss clearly more often than the boresight sector.
	frame63 := dot11ad.NewSSWFrame(b.MAC(), a.MAC(), false, 10, 63, dot11ad.SSWFeedbackField{})
	raw63, _ := frame63.Serialize()
	miss62, miss63 := 0, 0
	for i := 0; i < 400; i++ {
		if _, _, ok := l.Deliver(a, b, 62, raw); !ok {
			miss62++
		}
		if _, _, ok := l.Deliver(a, b, 63, raw63); !ok {
			miss63++
		}
	}
	if miss62 < miss63+10 {
		t.Fatalf("weak sector missed %d/400 vs boresight %d/400", miss62, miss63)
	}
}

func TestTrueSNRGroundTruth(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	if snr := l.TrueSNR(a, b, 63); snr < 10 {
		t.Fatalf("boresight true SNR = %v", snr)
	}
	if snr := l.TrueSNR(a, b, 40); !math.IsInf(snr, -1) {
		t.Fatalf("undefined sector true SNR = %v", snr)
	}
}

func TestRunSLSFullSweep(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	slots := dot11ad.SweepSchedule()
	res, err := l.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InitiatorTXOK || !res.ResponderTXOK {
		t.Fatalf("training incomplete: %+v", res)
	}
	if !sector.IsTalonTX(res.InitiatorTX) || !sector.IsTalonTX(res.ResponderTX) {
		t.Fatalf("selected non-TX sectors: %v / %v", res.InitiatorTX, res.ResponderTX)
	}
	if res.FramesSent != 68 {
		t.Fatalf("frames sent = %d, want 68", res.FramesSent)
	}
	if res.FramesDelivered < 30 {
		t.Fatalf("frames delivered = %d", res.FramesDelivered)
	}
	if !res.FeedbackDelivered || !res.AckDelivered {
		t.Fatalf("handshake incomplete: %+v", res)
	}
	// Full mutual sweep airtime matches the paper's 1.27 ms.
	if got := res.Duration; got != dot11ad.MutualTrainingTime(34) {
		t.Fatalf("duration = %v", got)
	}
	// The firmware's selection is the exact argmax of what it measured.
	selMeas, ok := res.AtResponder[res.InitiatorTX]
	if !ok {
		t.Fatalf("selected sector %v has no measurement", res.InitiatorTX)
	}
	for id, m := range res.AtResponder {
		if m.SNR > selMeas.SNR {
			t.Fatalf("sector %v read %v dB > selected %v at %v dB", id, m.SNR, res.InitiatorTX, selMeas.SNR)
		}
	}
	// At 3 m several sectors saturate the 12 dB reporting ceiling, so the
	// argmax may tie onto a sector a few true-dB below the optimum — but
	// never onto a genuinely bad one.
	snr := l.TrueSNR(a, b, res.InitiatorTX)
	bestSNR := math.Inf(-1)
	for _, id := range sector.TalonTX() {
		if s := l.TrueSNR(a, b, id); s > bestSNR {
			bestSNR = s
		}
	}
	if bestSNR-snr > 9 {
		t.Fatalf("selected sector %v is %v dB below optimum", res.InitiatorTX, bestSNR-snr)
	}
}

func TestRunSLSSubSweep(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	probe := sector.NewSet(8, 12, 63, 20, 2, 24, 17, 7)
	slots := dot11ad.SubSweepSchedule(probe)
	res, err := l.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesSent != 16 {
		t.Fatalf("frames sent = %d", res.FramesSent)
	}
	if res.Duration != dot11ad.MutualTrainingTime(8) {
		t.Fatalf("duration = %v", res.Duration)
	}
	if res.InitiatorTXOK && !probe.Contains(res.InitiatorTX) {
		t.Fatalf("selected unprobed sector %v", res.InitiatorTX)
	}
}

func TestRunSLSWithForcedSector(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	if err := b.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceSector(27); err != nil {
		t.Fatal(err)
	}
	slots := dot11ad.SweepSchedule()
	res, err := l.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InitiatorTXOK || res.InitiatorTX != 27 {
		t.Fatalf("forced feedback not applied: %+v", res)
	}
	// Clearing restores stock behaviour.
	if err := b.ClearForcedSector(); err != nil {
		t.Fatal(err)
	}
	res, err = l.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitiatorTXOK && res.InitiatorTX == 27 {
		// 27 is a dual-lobe sector away from boresight; the stock argmax
		// should not pick it on a boresight link.
		t.Fatalf("override still in effect after clear")
	}
}

func TestRunTXSS(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	meas, err := l.RunTXSS(a, b, dot11ad.SweepSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) < 10 {
		t.Fatalf("only %d sectors measured", len(meas))
	}
	for id := range meas {
		if !sector.IsTalonTX(id) {
			t.Fatalf("measurement for non-TX sector %v", id)
		}
	}
}

func TestJailbreakExposesDump(t *testing.T) {
	l, a, b := testPair(t, channel.AnechoicChamber(), 3)
	if err := b.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RunTXSS(a, b, dot11ad.SweepSchedule()); err != nil {
		t.Fatal(err)
	}
	recs, err := b.SweepDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 10 {
		t.Fatalf("dump has %d records", len(recs))
	}
	seen := map[sector.ID]bool{}
	for _, r := range recs {
		seen[r.Sector] = true
		if r.SNR < -8 || r.SNR > 55.75 {
			t.Fatalf("record SNR out of encoding range: %v", r.SNR)
		}
	}
	if !seen[63] {
		t.Fatal("strong sector 63 missing from dump")
	}
}
