package wil

// Failure-injection tests: the system's behaviour when the radio, the
// firmware or the environment misbehaves.

import (
	"math"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/radio"
	"talon/internal/sector"
)

// deadModel never decodes anything.
func deadModel() radio.MeasurementModel {
	m := radio.DefaultMeasurementModel()
	m.DecodeThresholdDB = 1e9
	return m
}

func TestSLSWithDeadReceiver(t *testing.T) {
	dead := deadModel()
	a, err := NewDevice(Config{Name: "a", MAC: dot11ad.MACAddr{2, 0, 0, 0, 1, 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(Config{
		Name: "b", MAC: dot11ad.MACAddr{2, 0, 0, 0, 1, 2}, Seed: 2,
		Pose:  channel.Pose{Pos: geom.Point{X: 3, Z: 1.2}, Yaw: 180},
		Model: &dead,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLink(channel.AnechoicChamber(), a, b)
	slots := dot11ad.SweepSchedule()
	res, err := l.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol must terminate cleanly with no selections on the
	// deaf side and no spurious completion flags.
	if res.InitiatorTXOK {
		t.Fatal("initiator got feedback from a deaf responder")
	}
	if res.FeedbackDelivered && res.ResponderTXOK {
		// The responder can still receive the feedback frame only if
		// its model decodes — it cannot here.
		t.Fatal("deaf responder decoded feedback")
	}
	if len(res.AtResponder) != 0 {
		t.Fatalf("deaf responder recorded %d measurements", len(res.AtResponder))
	}
}

func TestSLSFullyBlockedEnvironment(t *testing.T) {
	env := &channel.Environment{Name: "void", LOSBlocked: true}
	a, _ := NewDevice(Config{Name: "a", MAC: dot11ad.MACAddr{2, 0, 0, 0, 2, 1}, Seed: 1})
	b, _ := NewDevice(Config{Name: "b", MAC: dot11ad.MACAddr{2, 0, 0, 0, 2, 2}, Seed: 2,
		Pose: channel.Pose{Pos: geom.Point{X: 3, Z: 1.2}, Yaw: 180}})
	l := NewLink(env, a, b)
	slots := dot11ad.SweepSchedule()
	res, err := l.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != 0 {
		t.Fatalf("%d frames crossed a dead channel", res.FramesDelivered)
	}
	if res.InitiatorTXOK || res.ResponderTXOK {
		t.Fatal("training completed over a dead channel")
	}
	// True SNR reflects the dead channel.
	if snr := l.TrueSNR(a, b, 63); !math.IsInf(snr, -1) {
		t.Fatalf("TrueSNR over dead channel = %v", snr)
	}
}

func TestRingBufferSurvivesHeavyOverflow(t *testing.T) {
	fw := jailbrokenFirmware(t)
	// 100× capacity: the ring must keep exactly the newest records and
	// never corrupt memory.
	total := RingCapacity * 100
	for i := 0; i < total; i++ {
		fw.RecordSSW(sector.ID(i%34+1), uint16(i%35), radio.Measurement{SNR: -7 + float64(i%76)*0.25, RSSI: -70})
	}
	recs, err := fw.ReadSweepDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != RingCapacity {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[len(recs)-1].Seq != uint32(total-1) {
		t.Fatalf("newest seq = %d, want %d", recs[len(recs)-1].Seq, total-1)
	}
}

func TestForcedSectorSurvivesSweeps(t *testing.T) {
	// The override must stay armed across many sweeps until cleared.
	fw := jailbrokenFirmware(t)
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{19}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		fw.BeginRXSweep()
		fw.RecordSSW(sector.ID(i%30+1), 0, radio.Measurement{SNR: 11})
		id, ok := fw.FeedbackSector()
		if !ok || id != 19 {
			t.Fatalf("sweep %d: override lost (%v, %v)", i, id, ok)
		}
	}
}

func TestDeliverCorruptedFrame(t *testing.T) {
	a, _ := NewDevice(Config{Name: "a", MAC: dot11ad.MACAddr{2, 0, 0, 0, 3, 1}, Seed: 1})
	b, _ := NewDevice(Config{Name: "b", MAC: dot11ad.MACAddr{2, 0, 0, 0, 3, 2}, Seed: 2,
		Pose: channel.Pose{Pos: geom.Point{X: 2, Z: 1.2}, Yaw: 180}})
	l := NewLink(channel.AnechoicChamber(), a, b)
	frame := dot11ad.NewSSWFrame(b.MAC(), a.MAC(), false, 3, 63, dot11ad.SSWFeedbackField{})
	raw, _ := frame.Serialize()
	raw[8] ^= 0xff // corrupt in flight
	for i := 0; i < 50; i++ {
		if _, _, ok := l.Deliver(a, b, 63, raw); ok {
			t.Fatal("corrupted frame delivered")
		}
	}
}

func TestWMIOnWrongPatchSet(t *testing.T) {
	// Only the dump patch applied: override WMI must still fail.
	fw := NewFirmware()
	if err := fw.ApplyPatch(SweepDumpPatch()); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{5}); err == nil {
		t.Fatal("override accepted without its patch")
	}
	if _, err := fw.ReadSweepDump(); err != nil {
		t.Fatalf("dump should work: %v", err)
	}
	// Only the override patch applied: dump must fail.
	fw2 := NewFirmware()
	if err := fw2.ApplyPatch(SectorOverridePatch()); err != nil {
		t.Fatal(err)
	}
	if _, err := fw2.ReadSweepDump(); err == nil {
		t.Fatal("dump accepted without its patch")
	}
	if _, err := fw2.HandleWMI(WMISetSweepSector, []byte{5}); err != nil {
		t.Fatalf("override should work: %v", err)
	}
}

func TestDoubleJailbreakFails(t *testing.T) {
	d, _ := NewDevice(Config{Name: "d", Seed: 1})
	if err := d.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := d.Jailbreak(); err == nil {
		t.Fatal("second jailbreak succeeded (patches applied twice)")
	}
}
