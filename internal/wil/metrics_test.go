package wil

import (
	"testing"

	"talon/internal/radio"
	"talon/internal/sector"
)

// TestRingOverflowCounter fills the ring buffer past capacity and checks
// the record/overflow counters and the occupancy gauge. Counters are
// process-global, so the test works on deltas.
func TestRingOverflowCounter(t *testing.T) {
	fw := NewFirmware()
	if err := fw.ApplyPatch(SweepDumpPatch()); err != nil {
		t.Fatal(err)
	}

	records0 := metRingRecords.Value()
	overflow0 := metRingOverflow.Value()

	m := radio.Measurement{SNR: 10, RSSI: -60}
	total := RingCapacity + 17
	for i := 0; i < total; i++ {
		fw.BeginRXSweep()
		fw.RecordSSW(sector.ID(1+i%31), uint16(i%32), m)
	}

	if got := metRingRecords.Value() - records0; got != int64(total) {
		t.Fatalf("ring records delta = %d, want %d", got, total)
	}
	if got := metRingOverflow.Value() - overflow0; got != 17 {
		t.Fatalf("ring overflow delta = %d, want 17", got)
	}
	if got := metRingOccupancy.Value(); got != RingCapacity {
		t.Fatalf("ring occupancy = %d, want %d", got, RingCapacity)
	}

	// The host-visible dump retains exactly the last RingCapacity records.
	recs, err := fw.ReadSweepDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != RingCapacity {
		t.Fatalf("dump has %d records, want %d", len(recs), RingCapacity)
	}
	if recs[0].Seq != uint32(total-RingCapacity) {
		t.Fatalf("oldest retained seq = %d, want %d", recs[0].Seq, total-RingCapacity)
	}
}

// TestOccupancyBeforeWrap checks the gauge tracks the fill level while
// the ring is not yet full.
func TestOccupancyBeforeWrap(t *testing.T) {
	fw := NewFirmware()
	if err := fw.ApplyPatch(SweepDumpPatch()); err != nil {
		t.Fatal(err)
	}
	m := radio.Measurement{SNR: 5, RSSI: -70}
	for i := 0; i < 5; i++ {
		fw.RecordSSW(sector.ID(1+i), uint16(i), m)
	}
	if got := metRingOccupancy.Value(); got != 5 {
		t.Fatalf("ring occupancy = %d, want 5", got)
	}
}

// TestWMICommandCounters checks the command/error counters tick for
// accepted and rejected commands.
func TestWMICommandCounters(t *testing.T) {
	fw := NewFirmware()
	cmds0 := metWMICommands.Value()
	errs0 := metWMIErrors.Value()

	// Stock firmware rejects the extension command.
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{12}); err == nil {
		t.Fatal("stock firmware accepted WMISetSweepSector")
	}
	if err := fw.ApplyPatch(SectorOverridePatch()); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{12}); err != nil {
		t.Fatal(err)
	}

	if got := metWMICommands.Value() - cmds0; got != 2 {
		t.Fatalf("WMI command delta = %d, want 2", got)
	}
	if got := metWMIErrors.Value() - errs0; got != 1 {
		t.Fatalf("WMI error delta = %d, want 1", got)
	}
}
