package wil

import (
	"fmt"
	"math"
	"time"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/radio"
	"talon/internal/sector"
)

// Link couples two devices through an environment and runs the IEEE
// 802.11ad sector-level sweep (SLS) between them, frame by frame: every
// frame is serialized, propagated through the channel with the sector
// patterns in effect, subjected to the receiver's measurement model and
// decoded again.
type Link struct {
	Env    *channel.Environment
	Budget radio.Budget
	A, B   *Device

	sniffers []*Sniffer
	clock    time.Duration

	// injector is the installed impairment layer (nil = unimpaired);
	// frameSeq numbers the frames put on the air for its FrameEvents.
	injector fault.Injector
	frameSeq uint64
}

// NewLink connects a and b in env with the default budget.
func NewLink(env *channel.Environment, a, b *Device) *Link {
	return &Link{Env: env, Budget: radio.DefaultBudget(), A: a, B: b}
}

// Now returns the link's virtual clock: airtime accumulated by every
// transmission so far.
func (l *Link) Now() time.Duration { return l.clock }

// Wait advances the virtual clock without transmitting — the backoff
// pause of a resilient trainer between retry attempts. Negative
// durations are ignored.
func (l *Link) Wait(d time.Duration) {
	if d > 0 {
		l.clock += d
	}
}

// SetInjector installs inj as the link's fault injector and mirrors it
// into both devices' firmware, so frame, measurement, record and WMI
// impairments all draw from the same layer. nil clears. The injector
// carries per-link state; do not share one across links.
func (l *Link) SetInjector(inj fault.Injector) {
	l.injector = inj
	if l.A != nil {
		l.A.Firmware().SetInjector(inj)
	}
	if l.B != nil {
		l.B.Firmware().SetInjector(inj)
	}
}

// Injector returns the installed fault injector (nil when unimpaired).
func (l *Link) Injector() fault.Injector { return l.injector }

// frameEvent assembles the injector's view of one delivery attempt.
func (l *Link) frameEvent(tx, rx string, txSector sector.ID, seq uint64) fault.FrameEvent {
	return fault.FrameEvent{TX: tx, RX: rx, Sector: txSector, Time: l.clock, Seq: seq}
}

// transmit advances the virtual clock by the frame's airtime, offers the
// transmission to every attached sniffer and returns the frame's sequence
// number for injector events.
func (l *Link) transmit(tx *Device, txSector sector.ID, raw []byte, airtime time.Duration) uint64 {
	metFramesInjected.Inc()
	seq := l.frameSeq
	l.frameSeq++
	l.clock += airtime
	if len(l.sniffers) == 0 {
		return seq
	}
	txGain, err := tx.TXGain(txSector)
	if err != nil {
		// An unknown transmit sector radiates nothing; the sniffers'
		// capture is lost.
		metFramesDropped.Inc()
		return seq
	}
	for _, s := range l.sniffers {
		if s.dev == tx {
			continue // half duplex: a device cannot capture itself
		}
		ev := l.frameEvent(tx.Name(), s.dev.Name(), txSector, seq)
		if fault.ApplyFrame(l.injector, ev) {
			continue
		}
		snr := radio.TrueSNR(l.Env, tx.Pose(), s.dev.Pose(), txGain, s.dev.RXGain(), l.Budget)
		meas, ok := s.dev.Model().Observe(snr, s.dev.MeasRNG())
		if !ok {
			continue
		}
		frame, err := dot11ad.DecodeFrame(raw)
		if err != nil {
			continue
		}
		meas = fault.ApplyMeasurement(l.injector, ev, meas)
		fault.ApplyFrameCorruption(l.injector, ev, frame)
		s.captures = append(s.captures, Capture{
			Time:  l.clock,
			Raw:   append([]byte(nil), raw...),
			Frame: frame,
			Meas:  meas,
		})
	}
	return seq
}

// Deliver transmits raw from tx on txSector and attempts reception at rx
// on its quasi-omni sector. It returns the decoded frame and measurement
// when the receiver decodes the frame. Attached sniffers observe the
// transmission either way.
func (l *Link) Deliver(tx, rx *Device, txSector sector.ID, raw []byte) (*dot11ad.Frame, radio.Measurement, bool) {
	seq := l.transmit(tx, txSector, raw, dot11ad.SSWFrameTime)
	frame, meas, ok := l.deliver(tx, rx, txSector, raw, seq)
	if ok {
		metFramesDelivered.Inc()
	} else {
		metFramesDropped.Inc()
	}
	return frame, meas, ok
}

func (l *Link) deliver(tx, rx *Device, txSector sector.ID, raw []byte, seq uint64) (*dot11ad.Frame, radio.Measurement, bool) {
	txGain, err := tx.TXGain(txSector)
	if err != nil {
		return nil, radio.Measurement{}, false
	}
	ev := l.frameEvent(tx.Name(), rx.Name(), txSector, seq)
	if fault.ApplyFrame(l.injector, ev) {
		return nil, radio.Measurement{}, false
	}
	trueSNR := radio.TrueSNR(l.Env, tx.Pose(), rx.Pose(), txGain, rx.RXGain(), l.Budget)
	meas, ok := rx.Model().Observe(trueSNR, rx.MeasRNG())
	if !ok {
		return nil, radio.Measurement{}, false
	}
	frame, err := dot11ad.DecodeFrame(raw)
	if err != nil {
		return nil, radio.Measurement{}, false
	}
	meas = fault.ApplyMeasurement(l.injector, ev, meas)
	fault.ApplyFrameCorruption(l.injector, ev, frame)
	return frame, meas, true
}

// TransmitBeaconBurst sends ap's DMG beacon burst (the Table 1 beacon
// schedule) to the broadcast address. Receivers are the attached
// sniffers; the peer's firmware does not process beacons in this model.
func (l *Link) TransmitBeaconBurst(ap *Device) error {
	broadcast := dot11ad.MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	for _, slot := range dot11ad.BeaconSchedule() {
		if !slot.Used {
			continue
		}
		frame := &dot11ad.Frame{
			Type:             dot11ad.TypeDMGBeacon,
			RA:               broadcast,
			TA:               ap.MAC(),
			SSW:              dot11ad.SSWField{CDOWN: slot.CDOWN, SectorID: slot.Sector},
			BeaconIntervalTU: 100,
		}
		raw, err := frame.Serialize()
		if err != nil {
			return fmt.Errorf("wil: beacon frame: %w", err)
		}
		l.transmit(ap, slot.Sector, raw, dot11ad.SSWFrameTime)
	}
	return nil
}

// TrueSNR returns the noiseless SNR from tx on txSector to rx — ground
// truth for evaluation, not visible to the protocol.
func (l *Link) TrueSNR(tx, rx *Device, txSector sector.ID) float64 {
	txGain, err := tx.TXGain(txSector)
	if err != nil {
		return math.Inf(-1)
	}
	return radio.TrueSNR(l.Env, tx.Pose(), rx.Pose(), txGain, rx.RXGain(), l.Budget)
}

// SLSResult summarizes one mutual sector-level sweep.
type SLSResult struct {
	// InitiatorTX / ResponderTX are the transmit sectors each side ends
	// up with (from the feedback they decoded). OK flags report whether
	// the corresponding feedback arrived.
	InitiatorTX   sector.ID
	InitiatorTXOK bool
	ResponderTX   sector.ID
	ResponderTXOK bool
	// AtResponder holds the responder's measurements of the initiator's
	// probed sectors; AtInitiator vice versa.
	AtResponder map[sector.ID]radio.Measurement
	AtInitiator map[sector.ID]radio.Measurement
	// FramesSent and FramesDelivered count SSW frames of both bursts.
	FramesSent      int
	FramesDelivered int
	// FeedbackDelivered and AckDelivered track the closing handshake.
	FeedbackDelivered bool
	AckDelivered      bool
	// Duration is the airtime of the whole training.
	Duration time.Duration
}

// RunSLS performs a mutual transmit-sector training: the initiator sweep
// (ISS) over initSlots, the responder sweep (RSS) over respSlots carrying
// the responder's feedback, then the SSW-Feedback and SSW-Ack exchange.
// Slots usually come from dot11ad.SweepSchedule (stock full sweep) or
// dot11ad.SubSweepSchedule (compressive probing subset).
func (l *Link) RunSLS(init, resp *Device, initSlots, respSlots []dot11ad.BurstSlot) (*SLSResult, error) {
	res := &SLSResult{}

	// --- Initiator sector sweep ---
	resp.Firmware().BeginRXSweep()
	for _, slot := range initSlots {
		if !slot.Used {
			continue
		}
		res.FramesSent++
		metProbeSlots.Inc()
		frame := dot11ad.NewSSWFrame(resp.MAC(), init.MAC(), dot11ad.DirectionInitiator, slot.CDOWN, slot.Sector, dot11ad.SSWFeedbackField{})
		raw, err := frame.Serialize()
		if err != nil {
			return nil, fmt.Errorf("wil: ISS frame: %w", err)
		}
		if got, meas, ok := l.Deliver(init, resp, slot.Sector, raw); ok {
			res.FramesDelivered++
			resp.Firmware().RecordSSW(got.SSW.SectorID, got.SSW.CDOWN, meas)
		}
	}

	// --- Responder sector sweep, carrying feedback for the initiator ---
	feedbackForInit, haveFeedback := resp.Firmware().FeedbackSector()
	respBestSNR := math.Inf(-1)
	if m, ok := resp.Firmware().SweepMeasurements()[feedbackForInit]; ok {
		respBestSNR = m.SNR
	}
	init.Firmware().BeginRXSweep()
	for _, slot := range respSlots {
		if !slot.Used {
			continue
		}
		res.FramesSent++
		metProbeSlots.Inc()
		fb := dot11ad.SSWFeedbackField{}
		if haveFeedback {
			fb.SectorSelect = feedbackForInit
			fb.SNRReport = dot11ad.EncodeSNR(respBestSNR)
		}
		frame := dot11ad.NewSSWFrame(init.MAC(), resp.MAC(), dot11ad.DirectionResponder, slot.CDOWN, slot.Sector, fb)
		raw, err := frame.Serialize()
		if err != nil {
			return nil, fmt.Errorf("wil: RSS frame: %w", err)
		}
		if got, meas, ok := l.Deliver(resp, init, slot.Sector, raw); ok {
			res.FramesDelivered++
			init.Firmware().RecordSSW(got.SSW.SectorID, got.SSW.CDOWN, meas)
			if haveFeedback {
				res.InitiatorTX = got.Feedback.SectorSelect
				res.InitiatorTXOK = true
			}
		}
	}

	// --- SSW Feedback: initiator tells the responder its sector ---
	feedbackForResp, haveRespFeedback := init.Firmware().FeedbackSector()
	fbTxSector := sector.ID(63) // fallback before any feedback is known
	if res.InitiatorTXOK {
		fbTxSector = res.InitiatorTX
	}
	if haveRespFeedback {
		fbFrame := &dot11ad.Frame{
			Type: dot11ad.TypeSSWFeedback,
			RA:   resp.MAC(),
			TA:   init.MAC(),
			Feedback: dot11ad.SSWFeedbackField{
				SectorSelect: feedbackForResp,
				SNRReport:    dot11ad.EncodeSNR(bestSNROf(init, feedbackForResp)),
			},
		}
		raw, err := fbFrame.Serialize()
		if err != nil {
			return nil, fmt.Errorf("wil: feedback frame: %w", err)
		}
		if got, _, ok := l.Deliver(init, resp, fbTxSector, raw); ok {
			res.FeedbackDelivered = true
			res.ResponderTX = got.Feedback.SectorSelect
			res.ResponderTXOK = true

			// --- SSW Ack: responder acknowledges on its new sector ---
			ack := &dot11ad.Frame{
				Type:     dot11ad.TypeSSWAck,
				RA:       init.MAC(),
				TA:       resp.MAC(),
				Feedback: got.Feedback,
			}
			rawAck, err := ack.Serialize()
			if err != nil {
				return nil, fmt.Errorf("wil: ack frame: %w", err)
			}
			if _, _, ok := l.Deliver(resp, init, res.ResponderTX, rawAck); ok {
				res.AckDelivered = true
			}
		}
	}

	res.AtResponder = resp.Firmware().SweepMeasurements()
	res.AtInitiator = init.Firmware().SweepMeasurements()
	// Airtime: both bursts plus the handshake overhead.
	probes := len(dot11ad.UsedSectors(initSlots)) + len(dot11ad.UsedSectors(respSlots))
	res.Duration = time.Duration(probes)*dot11ad.SSWFrameTime + dot11ad.TrainingOverhead
	return res, nil
}

func bestSNROf(d *Device, id sector.ID) float64 {
	if m, ok := d.Firmware().SweepMeasurements()[id]; ok {
		return m.SNR
	}
	return math.Inf(-1)
}

// RunTXSS performs a one-directional transmit sector sweep from tx to rx
// over slots and returns the receiver's measurements keyed by sector.
func (l *Link) RunTXSS(tx, rx *Device, slots []dot11ad.BurstSlot) (map[sector.ID]radio.Measurement, error) {
	rx.Firmware().BeginRXSweep()
	for _, slot := range slots {
		if !slot.Used {
			continue
		}
		metProbeSlots.Inc()
		frame := dot11ad.NewSSWFrame(rx.MAC(), tx.MAC(), dot11ad.DirectionInitiator, slot.CDOWN, slot.Sector, dot11ad.SSWFeedbackField{})
		raw, err := frame.Serialize()
		if err != nil {
			return nil, err
		}
		if got, meas, ok := l.Deliver(tx, rx, slot.Sector, raw); ok {
			rx.Firmware().RecordSSW(got.SSW.SectorID, got.SSW.CDOWN, meas)
		}
	}
	return rx.Firmware().SweepMeasurements(), nil
}
