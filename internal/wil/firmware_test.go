package wil

import (
	"math"
	"testing"

	"talon/internal/radio"
	"talon/internal/sector"
)

func TestStockFirmwareHidesMeasurements(t *testing.T) {
	fw := NewFirmware()
	fw.RecordSSW(5, 30, radio.Measurement{SNR: 8, RSSI: -60})
	if _, err := fw.ReadSweepDump(); err == nil {
		t.Fatal("stock firmware exposed the sweep dump")
	}
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{5}); err == nil {
		t.Fatal("stock firmware accepted the override WMI")
	}
	if _, err := fw.HandleWMI(WMIGetSweepSeq, nil); err == nil {
		t.Fatal("stock firmware answered the sweep-seq WMI")
	}
}

func jailbrokenFirmware(t *testing.T) *Firmware {
	t.Helper()
	fw := NewFirmware()
	if err := fw.ApplyPatch(SweepDumpPatch()); err != nil {
		t.Fatal(err)
	}
	if err := fw.ApplyPatch(SectorOverridePatch()); err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestSweepDumpRecords(t *testing.T) {
	fw := jailbrokenFirmware(t)
	fw.RecordSSW(7, 28, radio.Measurement{SNR: 9.25, RSSI: -58})
	fw.RecordSSW(61, 2, radio.Measurement{SNR: -3.5, RSSI: -70})
	recs, err := fw.ReadSweepDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	r0 := recs[0]
	if r0.Sector != 7 || r0.CDOWN != 28 || r0.SNR != 9.25 || r0.RSSI != -58 {
		t.Fatalf("record 0 = %+v", r0)
	}
	if recs[1].Sector != 61 || recs[1].Seq != 1 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
}

func TestSweepDumpRingWraps(t *testing.T) {
	fw := jailbrokenFirmware(t)
	total := RingCapacity + 17
	for i := 0; i < total; i++ {
		fw.RecordSSW(sector.ID(i%34+1), uint16(i%35), radio.Measurement{SNR: float64(i%20) - 7, RSSI: -60})
	}
	recs, err := fw.ReadSweepDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != RingCapacity {
		t.Fatalf("records = %d, want %d", len(recs), RingCapacity)
	}
	if recs[0].Seq != uint32(total-RingCapacity) {
		t.Fatalf("oldest seq = %d", recs[0].Seq)
	}
	if recs[len(recs)-1].Seq != uint32(total-1) {
		t.Fatalf("newest seq = %d", recs[len(recs)-1].Seq)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatal("sequence numbers not contiguous")
		}
	}
}

func TestBestSector(t *testing.T) {
	fw := NewFirmware()
	if _, ok := fw.BestSector(); ok {
		t.Fatal("BestSector on empty sweep")
	}
	fw.RecordSSW(3, 32, radio.Measurement{SNR: 4})
	fw.RecordSSW(17, 18, radio.Measurement{SNR: 11.75})
	fw.RecordSSW(24, 11, radio.Measurement{SNR: 7})
	id, ok := fw.BestSector()
	if !ok || id != 17 {
		t.Fatalf("BestSector = %v, %v", id, ok)
	}
	// A new sweep clears the state.
	fw.BeginRXSweep()
	if _, ok := fw.BestSector(); ok {
		t.Fatal("BeginRXSweep did not clear measurements")
	}
}

func TestFeedbackSectorOverride(t *testing.T) {
	fw := jailbrokenFirmware(t)
	fw.RecordSSW(17, 18, radio.Measurement{SNR: 11.75})
	// Without the override armed: stock selection.
	id, ok := fw.FeedbackSector()
	if !ok || id != 17 {
		t.Fatalf("stock feedback = %v, %v", id, ok)
	}
	// Arm the override.
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{29}); err != nil {
		t.Fatal(err)
	}
	id, ok = fw.FeedbackSector()
	if !ok || id != 29 {
		t.Fatalf("forced feedback = %v, %v", id, ok)
	}
	// Disarm again.
	if _, err := fw.HandleWMI(WMIClearSweepSector, nil); err != nil {
		t.Fatal(err)
	}
	id, ok = fw.FeedbackSector()
	if !ok || id != 17 {
		t.Fatalf("cleared feedback = %v, %v", id, ok)
	}
}

func TestWMIValidation(t *testing.T) {
	fw := jailbrokenFirmware(t)
	if _, err := fw.HandleWMI(WMISetSweepSector, nil); err == nil {
		t.Error("missing payload accepted")
	}
	if _, err := fw.HandleWMI(WMISetSweepSector, []byte{64}); err == nil {
		t.Error("invalid sector accepted")
	}
	if _, err := fw.HandleWMI(WMICommandID(0xffff), nil); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestWMIGetSweepSeq(t *testing.T) {
	fw := jailbrokenFirmware(t)
	reply, err := fw.HandleWMI(WMIGetSweepSeq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 4 || reply[0] != 0 {
		t.Fatalf("initial seq reply = %v", reply)
	}
	fw.RecordSSW(1, 34, radio.Measurement{SNR: 1})
	fw.RecordSSW(2, 33, radio.Measurement{SNR: 2})
	reply, err = fw.HandleWMI(WMIGetSweepSeq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reply[0] != 2 {
		t.Fatalf("seq after 2 records = %v", reply)
	}
}

func TestRecordRSSIClamped(t *testing.T) {
	fw := jailbrokenFirmware(t)
	fw.RecordSSW(1, 0, radio.Measurement{SNR: 0, RSSI: -300})
	fw.RecordSSW(2, 0, radio.Measurement{SNR: 0, RSSI: 400})
	recs, err := fw.ReadSweepDump()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].RSSI != -128 || recs[1].RSSI != 127 {
		t.Fatalf("RSSI clamp: %v %v", recs[0].RSSI, recs[1].RSSI)
	}
	if math.IsNaN(recs[0].SNR) {
		t.Fatal("SNR NaN after decode")
	}
}
