package wil

import (
	"errors"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/geom"
	"talon/internal/radio"
)

// TestTransmitUnknownSectorCountsDrop is the regression test for the
// silently-swallowed TXGain failure in Link.transmit: with a sniffer
// attached, a frame on an unknown sector must tick the dropped-frames
// counter instead of vanishing without a trace. Counters are
// process-global, so the test works on deltas.
func TestTransmitUnknownSectorCountsDrop(t *testing.T) {
	link, a, _ := testPair(t, channel.AnechoicChamber(), 3)
	mon, err := NewDevice(Config{
		Name: "monitor",
		MAC:  dot11ad.MACAddr{0x02, 0, 0, 0, 0, 0xcc},
		Seed: 3,
		Pose: channel.Pose{Pos: geom.Point{X: 1.5, Y: 1, Z: 1.2}, Yaw: -90},
	})
	if err != nil {
		t.Fatal(err)
	}
	link.AttachSniffer(mon)

	frame := dot11ad.NewSSWFrame(mon.MAC(), a.MAC(), dot11ad.DirectionInitiator, 0, 40, dot11ad.SSWFeedbackField{})
	raw, err := frame.Serialize()
	if err != nil {
		t.Fatal(err)
	}

	injected0 := metFramesInjected.Value()
	dropped0 := metFramesDropped.Value()
	link.transmit(a, 40, raw, dot11ad.SSWFrameTime) // sector 40 is not in the codebook
	if got := metFramesInjected.Value() - injected0; got != 1 {
		t.Fatalf("injected delta = %d, want 1", got)
	}
	if got := metFramesDropped.Value() - dropped0; got != 1 {
		t.Fatalf("dropped delta = %d, want 1 (TXGain failure must count as a drop)", got)
	}

	// A deliverable sector must not tick the dropped counter on this path.
	good := dot11ad.NewSSWFrame(mon.MAC(), a.MAC(), dot11ad.DirectionInitiator, 0, 1, dot11ad.SSWFeedbackField{})
	rawGood, err := good.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	dropped1 := metFramesDropped.Value()
	link.transmit(a, 1, rawGood, dot11ad.SSWFrameTime)
	if got := metFramesDropped.Value() - dropped1; got != 0 {
		t.Fatalf("dropped delta = %d on a valid sector, want 0", got)
	}
}

func TestInjectorDropsFrames(t *testing.T) {
	link, a, b := testPair(t, channel.AnechoicChamber(), 3)
	link.SetInjector(fault.NewBernoulli(1, 1)) // lose everything
	meas, err := link.RunTXSS(a, b, dot11ad.SweepSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 0 {
		t.Fatalf("fully lossy channel reported %d measurements", len(meas))
	}
	// Clearing the injector restores the link.
	link.SetInjector(nil)
	meas, err = link.RunTXSS(a, b, dot11ad.SweepSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) == 0 {
		t.Fatal("no measurements after clearing the injector")
	}
}

func TestInjectorPerturbsMeasurements(t *testing.T) {
	base, a, b := testPair(t, channel.AnechoicChamber(), 3)
	clean, err := base.RunTXSS(a, b, dot11ad.SweepSchedule())
	if err != nil {
		t.Fatal(err)
	}

	link, a2, b2 := testPair(t, channel.AnechoicChamber(), 3)
	link.SetInjector(fault.RSSIBias{BiasDB: 5})
	biased, err := link.RunTXSS(a2, b2, dot11ad.SweepSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(biased) != len(clean) {
		t.Fatalf("bias-only injector changed delivery: %d vs %d", len(biased), len(clean))
	}
	for id, m := range biased {
		want := clean[id].RSSI + 5
		if m.RSSI != want {
			t.Fatalf("sector %v RSSI = %v, want %v", id, m.RSSI, want)
		}
		if m.SNR != clean[id].SNR {
			t.Fatalf("sector %v SNR perturbed by RSSI bias", id)
		}
	}
}

func TestInjectorMirroredIntoFirmware(t *testing.T) {
	link, a, b := testPair(t, channel.AnechoicChamber(), 3)
	inj := fault.Chain{
		&fault.RecordStorm{Period: 1, Burst: 1}, // drop every record
		fault.NewWMIFlake(1, 2),                 // fail every WMI command
	}
	link.SetInjector(inj)

	// Record path: the firmware loses every measurement.
	b.Firmware().BeginRXSweep()
	b.Firmware().RecordSSW(5, 0, radio.Measurement{SNR: 10, RSSI: -55})
	if got := b.Firmware().SweepMeasurements(); len(got) != 0 {
		t.Fatalf("record storm leaked %d measurements", len(got))
	}

	// WMI path: commands fail transiently with the injected sentinel.
	_, err := a.Firmware().HandleWMI(WMISetSweepSector, []byte{5})
	if err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WMI err = %v, want wrap of fault.ErrInjected", err)
	}
	if errors.Is(err, ErrNotJailbroken) {
		t.Fatal("injected WMI fault must not read as a missing patch")
	}

	// Clearing the link clears the firmware too.
	link.SetInjector(nil)
	b.Firmware().BeginRXSweep()
	b.Firmware().RecordSSW(5, 0, radio.Measurement{SNR: 10, RSSI: -55})
	if got := b.Firmware().SweepMeasurements(); len(got) != 1 {
		t.Fatalf("cleared injector still dropping records (%d kept)", len(got))
	}
}

func TestInjectorStaleFeedbackCorruptsSLS(t *testing.T) {
	link, a, b := testPair(t, channel.AnechoicChamber(), 3)
	link.SetInjector(fault.NewStaleFeedback(1, 4))
	slots := dot11ad.SweepSchedule()
	res, err := link.RunSLS(a, b, slots, slots)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep still completes; the protocol-level outcome may differ,
	// but the frames must keep flowing.
	if res.FramesDelivered == 0 {
		t.Fatal("stale feedback must not lose frames")
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	link, _, _ := testPair(t, channel.AnechoicChamber(), 3)
	t0 := link.Now()
	link.Wait(100)
	if link.Now() != t0+100 {
		t.Fatalf("clock = %v, want %v", link.Now(), t0+100)
	}
	link.Wait(-5)
	if link.Now() != t0+100 {
		t.Fatal("negative wait moved the clock")
	}
}
