package wil

import "talon/internal/obs"

// Process-wide metrics of the link and firmware layers (see README,
// "Observability"). Frame counters tick once per transmission, ring
// counters once per recorded SSW frame — single atomic adds, negligible
// next to channel evaluation.
var (
	metFramesInjected = obs.NewCounter("wil_frames_injected_total",
		"frames put on the air (SSW, beacons, handshake)")
	metFramesDelivered = obs.NewCounter("wil_frames_delivered_total",
		"frames the intended receiver decoded")
	metFramesDropped = obs.NewCounter("wil_frames_dropped_total",
		"frames the intended receiver failed to decode")
	metProbeSlots = obs.NewCounter("wil_ssw_probes_total",
		"SSW probe slots transmitted in sector sweeps")
	metRingRecords = obs.NewCounter("wil_ring_records_total",
		"measurement records written to the firmware ring buffer")
	metRingOverflow = obs.NewCounter("wil_ring_overflow_total",
		"ring-buffer writes that overwrote an older record (drops)")
	metRingOccupancy = obs.NewGauge("wil_ring_occupancy",
		"valid records in the most recently written ring buffer")
	metWMICommands = obs.NewCounter("wil_wmi_commands_total",
		"WMI commands handled by the firmware")
	metWMIErrors = obs.NewCounter("wil_wmi_errors_total",
		"WMI commands the firmware rejected")
)
