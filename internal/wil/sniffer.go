package wil

import (
	"fmt"
	"io"
	"time"

	"talon/internal/dot11ad"
	"talon/internal/pcap"
	"talon/internal/radio"
)

// Capture is one frame observed by a monitor-mode device.
type Capture struct {
	// Time is the virtual capture time on the link's clock.
	Time time.Duration
	// Raw is the frame's wire form.
	Raw []byte
	// Frame is the decoded frame.
	Frame *dot11ad.Frame
	// Meas is the monitor's own signal-strength measurement.
	Meas radio.Measurement
}

// Sniffer is a device operating in monitor mode: it receives on the
// quasi-omni sector and records every frame it can decode, like the third
// Talon running tcpdump in Section 4.1.
type Sniffer struct {
	dev      *Device
	captures []Capture
}

// AttachSniffer puts dev into monitor mode on the link. All subsequent
// transmissions are offered to it.
func (l *Link) AttachSniffer(dev *Device) *Sniffer {
	s := &Sniffer{dev: dev}
	l.sniffers = append(l.sniffers, s)
	return s
}

// Device returns the monitoring device.
func (s *Sniffer) Device() *Device { return s.dev }

// Captures returns the recorded frames in capture order. The returned
// slice must not be modified.
func (s *Sniffer) Captures() []Capture { return s.captures }

// Reset clears the capture buffer.
func (s *Sniffer) Reset() { s.captures = nil }

// Frames returns just the decoded frames.
func (s *Sniffer) Frames() []*dot11ad.Frame {
	out := make([]*dot11ad.Frame, len(s.captures))
	for i, c := range s.captures {
		out[i] = c.Frame
	}
	return out
}

// WritePCAP dumps the capture buffer as a pcap stream (IEEE 802.11 link
// type), readable by tcpdump and Wireshark.
func (s *Sniffer) WritePCAP(w io.Writer) error {
	pw, err := pcap.NewWriter(w, pcap.LinkTypeIEEE80211)
	if err != nil {
		return err
	}
	base := time.Unix(0, 0).UTC()
	for _, c := range s.captures {
		if err := pw.WritePacket(base.Add(c.Time), c.Raw); err != nil {
			return err
		}
	}
	return nil
}

// ErrNoCaptures marks an empty capture buffer.
var ErrNoCaptures = fmt.Errorf("wil: sniffer captured no frames")
