package wil

import (
	"bytes"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/pcap"
)

// monitorSetup deploys the paper's three-device Table 1 experiment: AP
// and STA close together, a monitor capturing everything.
func monitorSetup(t testing.TB) (*Link, *Device, *Device, *Sniffer) {
	t.Helper()
	l, ap, sta := testPair(t, channel.AnechoicChamber(), 2)
	mon, err := NewDevice(Config{
		Name: "monitor",
		MAC:  dot11ad.MACAddr{0x02, 0, 0, 0, 0, 0xcc},
		Seed: 3,
		Pose: channel.Pose{Pos: geom.Point{X: 1, Y: 1.2, Z: 1.2}, Yaw: -90},
	})
	if err != nil {
		t.Fatal(err)
	}
	sniffer := l.AttachSniffer(mon)
	return l, ap, sta, sniffer
}

func TestSnifferCapturesSweep(t *testing.T) {
	l, ap, sta, sniffer := monitorSetup(t)
	if _, err := l.RunTXSS(ap, sta, dot11ad.SweepSchedule()); err != nil {
		t.Fatal(err)
	}
	caps := sniffer.Captures()
	if len(caps) < 15 {
		t.Fatalf("captured only %d frames", len(caps))
	}
	prev := caps[0].Time
	for _, c := range caps {
		if c.Frame == nil || c.Frame.Type != dot11ad.TypeSSW {
			t.Fatalf("unexpected capture %+v", c.Frame)
		}
		if c.Time < prev {
			t.Fatal("capture times not monotone")
		}
		prev = c.Time
	}
	// Virtual clock advanced by one sweep burst.
	if l.Now() < 30*dot11ad.SSWFrameTime {
		t.Fatalf("clock = %v", l.Now())
	}
}

func TestSnifferDoesNotCaptureItself(t *testing.T) {
	l, ap, _, _ := monitorSetup(t)
	self := l.AttachSniffer(ap)
	if err := l.TransmitBeaconBurst(ap); err != nil {
		t.Fatal(err)
	}
	if len(self.Captures()) != 0 {
		t.Fatal("device captured its own transmissions")
	}
}

func TestBeaconBurstReconstruction(t *testing.T) {
	l, ap, sta, sniffer := monitorSetup(t)
	// Several rounds so missed frames get filled in, as in the paper
	// ("we captured the sector IDs and the values of CDOWN").
	for i := 0; i < 8; i++ {
		if err := l.TransmitBeaconBurst(ap); err != nil {
			t.Fatal(err)
		}
		if _, err := l.RunTXSS(ap, sta, dot11ad.SweepSchedule()); err != nil {
			t.Fatal(err)
		}
	}
	beacon, sweep := dot11ad.ReconstructSchedules(sniffer.Frames())
	if beacon.Frames == 0 || sweep.Frames == 0 {
		t.Fatalf("frames: beacon %d sweep %d", beacon.Frames, sweep.Frames)
	}
	if beacon.Conflicts != 0 || sweep.Conflicts != 0 {
		t.Fatalf("conflicts: beacon %d sweep %d", beacon.Conflicts, sweep.Conflicts)
	}
	// The reconstruction must reproduce Table 1 for the slots it saw,
	// with at most a few weak-sector slots missing.
	correct, missed, wrong := beacon.MatchAgainst(dot11ad.BeaconSchedule())
	if wrong != 0 {
		t.Fatalf("beacon: %d wrong slots", wrong)
	}
	if correct < 28 {
		t.Fatalf("beacon: only %d/32 slots reconstructed (missed %d)", correct, missed)
	}
	correct, missed, wrong = sweep.MatchAgainst(dot11ad.SweepSchedule())
	if wrong != 0 {
		t.Fatalf("sweep: %d wrong slots", wrong)
	}
	if correct < 30 {
		t.Fatalf("sweep: only %d/34 slots reconstructed (missed %d)", correct, missed)
	}
}

func TestSnifferPCAPExport(t *testing.T) {
	l, ap, sta, sniffer := monitorSetup(t)
	if _, err := l.RunTXSS(ap, sta, dot11ad.SweepSchedule()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sniffer.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(sniffer.Captures()) {
		t.Fatalf("pcap has %d records, captured %d", len(pkts), len(sniffer.Captures()))
	}
	// Every record must decode back into the captured frame.
	for i, p := range pkts {
		f, err := dot11ad.DecodeFrame(p.Data)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if *f != *sniffer.Captures()[i].Frame {
			t.Fatalf("record %d decoded differently", i)
		}
	}
}

func TestSnifferReset(t *testing.T) {
	l, ap, _, sniffer := monitorSetup(t)
	if err := l.TransmitBeaconBurst(ap); err != nil {
		t.Fatal(err)
	}
	if len(sniffer.Captures()) == 0 {
		t.Fatal("nothing captured")
	}
	sniffer.Reset()
	if len(sniffer.Captures()) != 0 {
		t.Fatal("Reset kept captures")
	}
}

func TestReconstructIgnoresOtherFrames(t *testing.T) {
	fb := &dot11ad.Frame{Type: dot11ad.TypeSSWFeedback}
	beacon, sweep := dot11ad.ReconstructSchedules([]*dot11ad.Frame{fb, nil})
	if beacon.Frames != 0 || sweep.Frames != 0 {
		t.Fatal("non-SSW frames counted")
	}
}
