package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentChurn hammers the manager with concurrent arrivals,
// departures and dispatches across shards while Step runs — the -race
// proof that the shard locking holds up. Outcomes are not asserted
// deterministic here (the interleaving is real concurrency); the
// invariant checked is that the manager survives and its population
// matches what the churners did.
func TestConcurrentChurn(t *testing.T) {
	m, _ := testFleet(t, WithShards(8), WithSeed(99), WithQueueDepth(64))
	ctx := context.Background()

	const churners = 4
	const perChurner = 150
	var alive atomic.Int64
	stop := make(chan struct{})

	// Stepper: keeps epochs rolling while the churners run.
	var stepper sync.WaitGroup
	stepper.Add(1)
	go func() {
		defer stepper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Step(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var churn sync.WaitGroup
	for c := 0; c < churners; c++ {
		churn.Add(1)
		go func(c int) {
			defer churn.Done()
			base := StationID(c * 1000000)
			for i := 0; i < perChurner; i++ {
				id := base + StationID(i)
				if m.Arrive(Event{Kind: EventArrival, Station: id,
					AzDeg: -60 + float64(i%120), ElDeg: float64(i % 25), DistM: 2}) {
					alive.Add(1)
				}
				m.Dispatch(Event{Kind: EventMobility, Station: id, DriftDegPerSec: 5})
				m.Dispatch(Event{Kind: EventBlockage, Station: id, AttenDB: 10,
					Duration: 100 * time.Millisecond})
				if i%3 == 0 {
					if m.Depart(id) {
						alive.Add(-1)
					}
				}
			}
		}(c)
	}
	churn.Wait()
	close(stop)
	stepper.Wait()

	// Settle remaining queued events and in-flight rounds.
	for i := 0; i < 5; i++ {
		if err := m.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := m.Len(), int(alive.Load()); got != want {
		t.Fatalf("population %d, want %d", got, want)
	}
}
