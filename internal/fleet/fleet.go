// Package fleet is the fleet-scale alignment service: a sharded session
// manager that runs every station↔AP link through the deterministic
// lifecycle state machine (idle → train → track → degrade → retrain) and
// funnels ALL sector estimation through core.SelectSectorBatch, so a
// single worker pool amortizes the per-link estimation cost across tens
// of thousands to millions of concurrent links.
//
// The package trades the frame-level fidelity of internal/wil for a
// lightweight per-station channel model (~100 bytes per link): reference
// SNR, log-distance pathloss and the measured 3D sector patterns, with
// the firmware defect model of internal/radio applied probe by probe.
// Everything is driven by virtual time in fixed epochs, so a fixed seed
// reproduces the same fleet byte for byte at any shard or worker count.
//
// Station state is stored structure-of-arrays per shard: the per-epoch
// scan walks a dense slice of 24-byte hot records (state, deadline, last
// grid cell, sample residue, impairment flags) and touches the cold
// ~130-byte station records only when something actually happens to a
// link — so the steady-state epoch cost is one cache line per ~2.6
// tracked stations instead of a map walk over full records.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"talon/internal/core"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// config is Manager's tunable surface, set through Options.
type config struct {
	shards           int
	seed             int64
	epoch            time.Duration
	probeBudget      int
	retrainInterval  time.Duration
	degradeDropDB    float64
	degradedBackoff  time.Duration
	capacity         int
	batchWorkers     int
	maxBatch         int
	queueDepth       int
	lossSampleStride uint64
	refSNRDB         float64
	warmStart        bool
}

// Option configures a Manager.
type Option func(*config)

// WithShards sets the shard count (rounded up to a power of two so
// stations shard by masking their low ID bits). Default 256.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithSeed sets the fleet seed that every per-station, per-round
// probing stream derives from. Default 1.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithEpoch sets the virtual-time length of one Step. Default 100ms.
func WithEpoch(d time.Duration) Option { return func(c *config) { c.epoch = d } }

// WithProbeBudget sets the compressive probe count M per training round.
// Default 14 (the paper's sweet spot).
func WithProbeBudget(m int) Option { return func(c *config) { c.probeBudget = m } }

// WithRetrainInterval sets the staleness interval after which a tracked
// link retrains. Default dot11ad.SweepInterval (1s).
func WithRetrainInterval(d time.Duration) Option {
	return func(c *config) { c.retrainInterval = d }
}

// WithDegradeDropDB sets how far the serving sector's gain may fall
// below its value at selection time before a tracked link degrades.
// Default 3dB.
func WithDegradeDropDB(db float64) Option { return func(c *config) { c.degradeDropDB = db } }

// WithDegradedBackoff sets how long a degraded link waits before its
// retrain is scheduled. Default one epoch.
func WithDegradedBackoff(d time.Duration) Option {
	return func(c *config) { c.degradedBackoff = d }
}

// WithCapacity caps how many training rounds one Step may serve;
// overflow waits in FIFO order for later epochs (that queueing is what
// puts mass in the latency tail). 0 (default) serves everything.
func WithCapacity(n int) Option { return func(c *config) { c.capacity = n } }

// WithBatchWorkers sets the worker count handed to
// core.SelectSectorBatch and to the shard scan pool. Default 0
// (GOMAXPROCS).
func WithBatchWorkers(n int) Option { return func(c *config) { c.batchWorkers = n } }

// WithMaxBatch chunks each Step's served rounds into batches of at most
// n probe vectors, bounding the arena a Step keeps live. Default 65536.
func WithMaxBatch(n int) Option { return func(c *config) { c.maxBatch = n } }

// WithQueueDepth sets the per-shard bounded event queue depth; Dispatch
// drops (and counts) events beyond it. Default 1024.
func WithQueueDepth(n int) Option { return func(c *config) { c.queueDepth = n } }

// WithLossSampleStride records the tracking SNR loss of one in n
// (station, epoch) pairs instead of all of them. Default 16. The stride
// must fit in 32 bits — the scan keeps each station's sample residue as
// a packed uint32.
func WithLossSampleStride(n int) Option {
	return func(c *config) { c.lossSampleStride = uint64(n) }
}

// WithRefSNR sets the true SNR (dB, before the measurement model) a
// station at the reference distance sees on a mean-peak-gain sector.
// Default 8dB.
func WithRefSNR(db float64) Option { return func(c *config) { c.refSNRDB = db } }

// WithWarmStart toggles warm-start re-estimation: when on (the default),
// every training round carries the station's previous selection cell as
// a core.BatchItem hint, letting the quantized kernel score only the
// local window around it (falling back to the full search whenever the
// correlation-margin guard rejects the local winner). Hints never change
// a float64-kernel selection; on the quantized kernel they stay within
// the warm/cold equivalence budget (see core's warm-start contract).
func WithWarmStart(on bool) Option { return func(c *config) { c.warmStart = on } }

func defaultConfig() config {
	return config{
		shards:           256,
		seed:             1,
		epoch:            100 * time.Millisecond,
		probeBudget:      14,
		retrainInterval:  time.Second,
		degradeDropDB:    3,
		degradedBackoff:  0, // resolved to one epoch in New
		capacity:         0,
		batchWorkers:     0,
		maxBatch:         65536,
		queueDepth:       1024,
		lossSampleStride: 16,
		refSNRDB:         8,
		warmStart:        true,
	}
}

// Per-station impairment flags on the hot record. The epoch scan's fast
// path requires flags == 0: no mobility drift, no active blockage and a
// valid (non-NaN) cached serving gain — exactly the conditions under
// which the degrade check provably cannot fire between trainings.
const (
	// flagDrift marks a nonzero mobility drift rate.
	flagDrift uint8 = 1 << iota
	// flagBlocked marks an active blockage (blockEpochsLeft > 0).
	flagBlocked
	// flagRecheck marks a serving gain that cached to NaN (the station
	// sits off the measured pattern grid); the slow path re-runs the
	// degrade check, which treats NaN as degraded.
	flagRecheck
)

// hotStation is the 24-byte per-station record the per-epoch scan walks.
// It carries exactly the fields the steady-state scan reads — lifecycle
// state, the one deadline that can fire (retrain staleness while
// tracking, backoff expiry while degraded), the loss-sample residue and
// the warm-start hint cell — so a shard scan streams a dense slice
// instead of chasing full station records through a map.
type hotStation struct {
	// deadline is the next scheduled scan action: while tracking, the
	// staleness retrain (last training end + retrain interval); while
	// degraded, the backoff expiry.
	deadline time.Duration
	// cell is the station's last selection's dense-grid cell, fed back
	// as the next round's warm-start hint (core.NoCell after a failure
	// or before the first selection).
	cell core.Cell
	// sampleRes caches id % lossSampleStride so the per-epoch sampling
	// test is one uint32 compare against a per-epoch constant.
	sampleRes uint32
	state     State
	flags     uint8
}

// shard owns one slice of the station population, stored
// structure-of-arrays: recs (cold full records) and hot (scan-hot
// records) are parallel slot-indexed slices, index maps station IDs to
// slots, free recycles departed slots, and order lists live slots in
// ascending station-ID order so every scan visits stations
// deterministically without sorting.
type shard struct {
	mu    sync.Mutex
	index map[StationID]int32
	recs  []station
	hot   []hotStation
	free  []int32
	order []int32
	queue chan Event

	// reqs and partial are the shard's per-Step scratch, written only by
	// the one scan worker that owns the shard during that Step.
	reqs    []request
	partial tally
}

// request is one queued training round.
type request struct {
	id      StationID
	shardIx int
	// trigger is the virtual time the round was requested; the epoch
	// boundary it completes at minus trigger is its queueing latency.
	trigger time.Duration
	retrain bool
}

// Manager is the sharded fleet session service. All methods are safe for
// concurrent use; Step serializes against itself.
type Manager struct {
	cfg      config
	est      *core.Estimator
	patterns *pattern.Set
	model    radio.MeasurementModel
	txIDs    []sector.ID
	// pats and txPats are pointer arrays resolved from patterns at
	// construction: pats is indexed by sector ID, txPats parallels
	// txIDs. The serve and scan hot paths hit these instead of the
	// pattern set's map.
	pats   [256]*pattern.Pattern
	txPats []*pattern.Pattern
	// gainRef is the codebook's mean peak gain; trueSNR normalizes
	// pattern gains by it so refSNRDB means "an average sector, on
	// boresight, at the reference distance".
	gainRef float64
	// fastScan gates the tracked-station fast path; a negative degrade
	// threshold (degrade-always) forces every station through the full
	// check.
	fastScan bool

	shards []*shard
	mask   uint64

	// stepMu serializes Step; the scorecard tally and pending queue are
	// only touched under it. The virtual clock is atomic because
	// arrivals stamp arrivedAt under their shard lock alone, which may
	// interleave with a concurrent Step advancing the epoch.
	stepMu  sync.Mutex
	now     atomic.Int64 // time.Duration nanoseconds
	epoch   uint64
	pending []request
	acc     tally

	// Per-Step serve scratch reused across epochs (all guarded by
	// stepMu): the probe arena sliced into per-round vectors, the batch
	// item and live-index buffers, one reseedable round RNG and the
	// probe-subset sample scratch.
	arena     []core.Probe
	items     []core.BatchItem
	live      []int32
	roundRNG  *stats.RNG
	sampleIdx []int
}

// New builds a fleet manager over the given estimator and its pattern
// set. The estimator must have been built over the same patterns — the
// manager synthesizes probes from them and funnels every selection
// through est.SelectSectorBatch.
func New(est *core.Estimator, patterns *pattern.Set, opts ...Option) (*Manager, error) {
	if est == nil {
		return nil, errors.New("fleet: nil estimator")
	}
	if patterns == nil || len(patterns.TXIDs()) == 0 {
		return nil, errors.New("fleet: pattern set has no TX sectors")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.epoch <= 0 {
		return nil, errors.New("fleet: epoch must be positive")
	}
	if cfg.degradedBackoff <= 0 {
		cfg.degradedBackoff = cfg.epoch
	}
	if cfg.lossSampleStride == 0 {
		cfg.lossSampleStride = 1
	}
	if cfg.lossSampleStride > math.MaxUint32 {
		return nil, fmt.Errorf("fleet: loss sample stride %d exceeds 32 bits", cfg.lossSampleStride)
	}
	if cfg.maxBatch <= 0 {
		cfg.maxBatch = 65536
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 1024
	}
	txIDs := patterns.TXIDs()
	if cfg.probeBudget <= 0 || cfg.probeBudget > len(txIDs) {
		return nil, fmt.Errorf("fleet: probe budget %d outside 1..%d", cfg.probeBudget, len(txIDs))
	}
	cfg.shards = ceilPow2(cfg.shards)
	m := &Manager{
		cfg:      cfg,
		est:      est,
		patterns: patterns,
		model:    radio.DefaultMeasurementModel(),
		txIDs:    txIDs,
		txPats:   make([]*pattern.Pattern, len(txIDs)),
		fastScan: cfg.degradeDropDB >= 0,
		shards:   make([]*shard, cfg.shards),
		mask:     uint64(cfg.shards - 1),
		roundRNG: stats.NewFastRNG(0),
	}
	var sum float64
	for i, id := range txIDs {
		p := patterns.Get(id)
		m.pats[id] = p
		m.txPats[i] = p
		_, _, peak := p.Peak()
		sum += peak
	}
	m.gainRef = sum / float64(len(txIDs))
	for i := range m.shards {
		m.shards[i] = &shard{
			index: make(map[StationID]int32),
			queue: make(chan Event, cfg.queueDepth),
		}
	}
	m.acc.init()
	return m, nil
}

func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (m *Manager) shardOf(id StationID) *shard { return m.shards[uint64(id)&m.mask] }

// pat resolves a sector's pattern without the set's map lookup.
func (m *Manager) pat(id sector.ID) *pattern.Pattern { return m.pats[id] }

// Len returns the current station count across all shards.
func (m *Manager) Len() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// Arrive admits a station synchronously from an arrival event. It
// returns false if the station already exists (the event is ignored).
func (m *Manager) Arrive(ev Event) bool {
	if ev.DistM <= 0 {
		ev.DistM = refDistM
	}
	sh := m.shardOf(ev.Station)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return m.arriveLocked(sh, ev)
}

func (m *Manager) arriveLocked(sh *shard, ev Event) bool {
	if _, ok := sh.index[ev.Station]; ok {
		return false
	}
	var slot int32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		slot = int32(len(sh.recs))
		sh.recs = append(sh.recs, station{})
		sh.hot = append(sh.hot, hotStation{})
	}
	dist := ev.DistM
	sh.recs[slot] = station{
		id:             ev.Station,
		az:             wrapAz(ev.AzDeg),
		el:             ev.ElDeg,
		dist:           dist,
		pathlossDB:     20 * math.Log10(dist/refDistM),
		driftDegPerSec: ev.DriftDegPerSec,
		arrivedAt:      time.Duration(m.now.Load()),
	}
	var flags uint8
	if ev.DriftDegPerSec != 0 {
		flags |= flagDrift
	}
	sh.hot[slot] = hotStation{
		state:     StateIdle,
		cell:      core.NoCell,
		sampleRes: uint32(uint64(ev.Station) % m.cfg.lossSampleStride),
		flags:     flags,
	}
	sh.index[ev.Station] = slot
	sh.orderInsert(slot, ev.Station)
	metArrivals.Inc()
	metStations.Add(1)
	return true
}

// orderInsert places slot into the ascending-ID scan order. Arrivals in
// ID order (the simulator's monotonic IDs) append in O(1); out-of-order
// IDs pay one binary search plus a copy.
func (sh *shard) orderInsert(slot int32, id StationID) {
	n := len(sh.order)
	if n == 0 || sh.recs[sh.order[n-1]].id < id {
		sh.order = append(sh.order, slot)
		return
	}
	i := sort.Search(n, func(k int) bool { return sh.recs[sh.order[k]].id > id })
	sh.order = append(sh.order, 0)
	copy(sh.order[i+1:], sh.order[i:])
	sh.order[i] = slot
}

// orderRemove drops the slot holding id from the scan order.
func (sh *shard) orderRemove(id StationID) {
	n := len(sh.order)
	i := sort.Search(n, func(k int) bool { return sh.recs[sh.order[k]].id >= id })
	if i < n && sh.recs[sh.order[i]].id == id {
		copy(sh.order[i:], sh.order[i+1:])
		sh.order = sh.order[:n-1]
	}
}

// Depart removes a station synchronously. It returns false if the
// station is unknown. A pending training request of a departed station
// is skipped when its batch slot would be served.
func (m *Manager) Depart(id StationID) bool {
	sh := m.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return m.departLocked(sh, id)
}

func (m *Manager) departLocked(sh *shard, id StationID) bool {
	slot, ok := sh.index[id]
	if !ok {
		return false
	}
	if inFlight(sh.hot[slot].state) {
		metPending.Add(-1)
	}
	sh.orderRemove(id)
	delete(sh.index, id)
	sh.recs[slot] = station{}
	sh.hot[slot] = hotStation{}
	sh.free = append(sh.free, slot)
	metDepartures.Inc()
	metStations.Add(-1)
	return true
}

// Dispatch enqueues an event on its station's shard queue, to be applied
// at the start of the next Step. It returns false (and counts a drop)
// when the bounded queue is full.
func (m *Manager) Dispatch(ev Event) bool {
	select {
	case m.shardOf(ev.Station).queue <- ev:
		return true
	default:
		metQueueDrops.Inc()
		return false
	}
}

// Snapshot returns the station's current state, or ok=false if unknown.
func (m *Manager) Snapshot(id StationID) (Snapshot, bool) {
	sh := m.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.index[id]
	if !ok {
		return Snapshot{}, false
	}
	st, h := &sh.recs[slot], &sh.hot[slot]
	return Snapshot{
		ID:       st.id,
		State:    h.state,
		Sector:   st.sector,
		HasLink:  st.haveSector,
		AzDeg:    st.az,
		ElDeg:    st.el,
		DistM:    st.dist,
		Rounds:   st.round,
		Degraded: h.state == StateDegraded,
	}, true
}

// Now returns the manager's virtual clock (the end of the last Step).
func (m *Manager) Now() time.Duration {
	return time.Duration(m.now.Load())
}

// Pending returns the number of training rounds queued for service.
func (m *Manager) Pending() int {
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	return len(m.pending)
}

// scanWorkers resolves the worker count for the shard scan pool.
func (m *Manager) scanWorkers() int {
	w := m.cfg.batchWorkers
	if procs := runtime.GOMAXPROCS(0); w <= 0 || w > procs {
		w = procs
	}
	if w > len(m.shards) {
		w = len(m.shards)
	}
	return w
}

// wrapAz folds an azimuth into [-180, 180).
func wrapAz(az float64) float64 {
	az = math.Mod(az+180, 360)
	if az < 0 {
		az += 360
	}
	return az - 180
}
