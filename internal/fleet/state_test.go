package fleet

import "testing"

// TestTransitionTable pins the full transition table: every legal edge
// with its successor, and every other (state, event) pair rejected with
// the state unchanged.
func TestTransitionTable(t *testing.T) {
	legal := map[[2]uint8]State{
		{uint8(StateIdle), uint8(evTrain)}:            StateTraining,
		{uint8(StateTraining), uint8(evSelectOK)}:     StateTracking,
		{uint8(StateTraining), uint8(evSelectFail)}:   StateDegraded,
		{uint8(StateTracking), uint8(evDegrade)}:      StateDegraded,
		{uint8(StateTracking), uint8(evRetrain)}:      StateRetraining,
		{uint8(StateDegraded), uint8(evRetrain)}:      StateRetraining,
		{uint8(StateRetraining), uint8(evSelectOK)}:   StateTracking,
		{uint8(StateRetraining), uint8(evSelectFail)}: StateDegraded,
	}
	for s := State(0); s < numStates; s++ {
		for ev := transEvent(0); ev < numTransEvents; ev++ {
			next, ok := transition(s, ev)
			want, legalEdge := legal[[2]uint8{uint8(s), uint8(ev)}]
			if legalEdge {
				if !ok || next != want {
					t.Errorf("transition(%v, %v) = (%v, %v), want (%v, true)", s, ev, next, ok, want)
				}
				continue
			}
			if ok {
				t.Errorf("transition(%v, %v) accepted; want rejection", s, ev)
			}
			if next != s {
				t.Errorf("rejected transition(%v, %v) moved the state to %v", s, ev, next)
			}
		}
	}
	if len(legal) != 8 {
		t.Fatalf("table enumerates %d legal edges, want 8", len(legal))
	}
}

// TestInFlight pins which states hold a queued or in-flight training.
func TestInFlight(t *testing.T) {
	want := map[State]bool{
		StateIdle:       false,
		StateTraining:   true,
		StateTracking:   false,
		StateDegraded:   false,
		StateRetraining: true,
	}
	for s := State(0); s < numStates; s++ {
		if got := inFlight(s); got != want[s] {
			t.Errorf("inFlight(%v) = %v, want %v", s, got, want[s])
		}
	}
}

// TestStateStrings keeps the Stringers total: no state or event prints
// as "invalid" below the sentinel.
func TestStateStrings(t *testing.T) {
	for s := State(0); s < numStates; s++ {
		if s.String() == "invalid" {
			t.Errorf("State(%d) has no name", s)
		}
	}
	if numStates.String() != "invalid" {
		t.Error("sentinel state should print invalid")
	}
	for ev := transEvent(0); ev < numTransEvents; ev++ {
		if ev.String() == "invalid" {
			t.Errorf("transEvent(%d) has no name", ev)
		}
	}
	for k := EventArrival; k <= EventFault; k++ {
		if k.String() == "invalid" {
			t.Errorf("EventKind(%d) has no name", k)
		}
	}
}
