package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"talon/internal/core"
	"talon/internal/testutil"
)

// goldenSimConfig is the pinned workload of the golden scorecard: small
// enough for a unit test, busy enough to exercise churn, mobility,
// blockage, fault bursts and capacity queueing in one run.
func goldenSimConfig() SimConfig {
	return SimConfig{
		Stations:         150,
		Epochs:           20,
		EpochNs:          int64(100 * time.Millisecond),
		Seed:             7,
		M:                12,
		Shards:           4,
		Capacity:         60,
		ChurnPerEpoch:    0.02,
		MobilityPerEpoch: 0.05,
		BlockagePerEpoch: 0.02,
		FaultPerEpoch:    0.02,
	}
}

func runGoldenSim(t *testing.T, workers int, kernel core.Kernel) []byte {
	t.Helper()
	set := synthPatterns(t)
	est, err := core.NewEstimator(set, core.Options{Kernel: kernel})
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenSimConfig()
	cfg.Workers = workers
	sc, err := RunSim(context.Background(), est, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(blob, '\n')
}

// TestSimGoldenScorecard pins the full scorecard of the seeded workload
// byte for byte. The golden predates the quantized kernel and is pinned
// to KernelFloat64 — it doubles as the regression proof that the float
// path is untouched by kernel changes. Regenerate with -update after
// intentional changes.
func TestSimGoldenScorecard(t *testing.T) {
	got := runGoldenSim(t, 0, core.KernelFloat64)
	testutil.Golden(t, filepath.Join("testdata", "scorecard.golden.json"), got)
}

// TestSimGoldenScorecardQuant pins the scorecard under the default
// (quantized) kernel, recorded the moment the quantized kernel became
// the default. Any later change to the quantized arithmetic — scale,
// lattice, tiling — that moves fleet-level outcomes shows up here as a
// byte diff.
func TestSimGoldenScorecardQuant(t *testing.T) {
	got := runGoldenSim(t, 0, core.KernelAuto)
	testutil.Golden(t, filepath.Join("testdata", "scorecard.quant.golden.json"), got)
}

// TestSimDeterminism proves the scorecard is a pure function of the
// config and kernel: byte-identical across repeated runs and across
// serial vs parallel execution. The quantized default exercises the
// batch-major tile pass, whose per-item results must not depend on how
// the batch was chunked across workers.
func TestSimDeterminism(t *testing.T) {
	for _, kernel := range []core.Kernel{core.KernelAuto, core.KernelFloat64} {
		base := runGoldenSim(t, 0, kernel)
		for _, workers := range []int{1, 2, 0} {
			if got := runGoldenSim(t, workers, kernel); !bytes.Equal(base, got) {
				t.Fatalf("kernel=%q workers=%d scorecard differs from baseline", kernel, workers)
			}
		}
	}
}

// TestSimSanity checks the headline scorecard numbers hang together.
func TestSimSanity(t *testing.T) {
	var sc Scorecard
	if err := json.Unmarshal(runGoldenSim(t, 0, core.KernelAuto), &sc); err != nil {
		t.Fatal(err)
	}
	if sc.Trainings == 0 {
		t.Fatal("no trainings served")
	}
	if sc.Retrains >= sc.Trainings {
		t.Errorf("retrains %d not below trainings %d", sc.Retrains, sc.Trainings)
	}
	if sc.SelectLatency.Count != sc.Trainings {
		t.Errorf("latency count %d != trainings %d", sc.SelectLatency.Count, sc.Trainings)
	}
	if sc.SelectLatency.P50Ns > sc.SelectLatency.P99Ns || sc.SelectLatency.P99Ns > sc.SelectLatency.MaxNs {
		t.Errorf("latency quantiles out of order: %+v", sc.SelectLatency)
	}
	// Capacity 60 under ~150 initial trainings must defer work, so the
	// tail has to reach past one epoch.
	if sc.SelectLatency.MaxNs <= sc.Config.EpochNs {
		t.Errorf("capacity queueing left no latency tail: max %d ns", sc.SelectLatency.MaxNs)
	}
	if sc.VirtualNs != int64(sc.Config.Epochs)*sc.Config.EpochNs {
		t.Errorf("virtual clock %d != epochs x epoch", sc.VirtualNs)
	}
	if sc.RetrainsPerSec <= 0 {
		t.Error("no retrain throughput reported")
	}
	if len(sc.Benchmarks) == 0 || sc.Note == "" {
		t.Error("scorecard is missing its benchdiff baseline surface")
	}
}

// TestSimLargeSmoke runs a bigger fleet through a short horizon to keep
// the scaling path (multiple chunks, many shards) covered by `go test`.
func TestSimLargeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleet smoke skipped in -short")
	}
	set := synthPatterns(t)
	est, err := core.NewEstimator(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.Stations, cfg.Epochs, cfg.Seed = 5000, 6, 3
	sc, err := RunSim(context.Background(), est, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.StationsFinal < 4900 || sc.Trainings < int64(cfg.Stations) {
		t.Fatalf("smoke run lost the fleet: %d stations, %d trainings", sc.StationsFinal, sc.Trainings)
	}
}
