package fleet

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"talon/internal/core"
	"talon/internal/pattern"
	"talon/internal/tracestore"
)

// KindFleetEvent tags fleet event-stream shards in trace-store headers
// (tracestore.KindTrial is 1).
const KindFleetEvent uint16 = 2

// eventMetaVersion is the EventRecord column-layout version stored in
// the shard meta.
const eventMetaVersion uint16 = 1

// EventRecord is one persisted workload event. Epoch 0 marks preseed
// arrivals (applied synchronously before the first epoch); epoch e+1
// marks events generated during simulation epoch e, dispatched before
// that epoch's Step. The trace-store seed column carries a monotonic
// sequence number, so within and across shards the stream replays in
// generation order.
type EventRecord struct {
	Epoch uint32
	Ev    Event
}

// EventCodec encodes the fleet workload event stream. The float fields
// are stored as full float64 columns — the replayed Manager must see
// bit-identical inputs for the scorecard to match.
type EventCodec struct{}

// eventSize is the per-record byte cost: epoch u32, kind u8, station
// u64, six f64 scalars and the i64 duration.
const eventSize = 4 + 1 + 8 + 6*8 + 8

// Kind implements tracestore.Codec.
func (EventCodec) Kind() uint16 { return KindFleetEvent }

// Meta implements tracestore.Codec: the layout version and a reserved
// zero, two little-endian u16s.
func (EventCodec) Meta() []byte {
	meta := make([]byte, 4)
	binary.LittleEndian.PutUint16(meta, eventMetaVersion)
	return meta
}

// CheckMeta implements tracestore.Codec.
func (EventCodec) CheckMeta(meta []byte) error {
	if len(meta) != 4 {
		return fmt.Errorf("%w: fleet event meta length %d", tracestore.ErrKindMismatch, len(meta))
	}
	if v := binary.LittleEndian.Uint16(meta); v != eventMetaVersion {
		return fmt.Errorf("%w: fleet event layout v%d, codec expects v%d", tracestore.ErrKindMismatch, v, eventMetaVersion)
	}
	return nil
}

// AppendBlock implements tracestore.Codec; column-major like the trial
// codec, so kinds and station IDs compress hard.
func (EventCodec) AppendBlock(buf []byte, recs []EventRecord) []byte {
	n := len(recs)
	off := len(buf)
	buf = append(buf, make([]byte, n*eventSize)...)
	b := buf[off:]

	p := 0
	for i := range recs {
		binary.LittleEndian.PutUint32(b[p:], recs[i].Epoch)
		p += 4
	}
	for i := range recs {
		b[p] = byte(recs[i].Ev.Kind)
		p++
	}
	for i := range recs {
		binary.LittleEndian.PutUint64(b[p:], uint64(recs[i].Ev.Station))
		p += 8
	}
	p = putF64Col(b, p, recs, func(ev *Event) float64 { return ev.AzDeg })
	p = putF64Col(b, p, recs, func(ev *Event) float64 { return ev.ElDeg })
	p = putF64Col(b, p, recs, func(ev *Event) float64 { return ev.DistM })
	p = putF64Col(b, p, recs, func(ev *Event) float64 { return ev.DriftDegPerSec })
	p = putF64Col(b, p, recs, func(ev *Event) float64 { return ev.AttenDB })
	p = putF64Col(b, p, recs, func(ev *Event) float64 { return ev.LossFrac })
	for i := range recs {
		binary.LittleEndian.PutUint64(b[p:], uint64(recs[i].Ev.Duration))
		p += 8
	}
	return buf
}

func putF64Col(b []byte, p int, recs []EventRecord, get func(*Event) float64) int {
	for i := range recs {
		binary.LittleEndian.PutUint64(b[p:], math.Float64bits(get(&recs[i].Ev)))
		p += 8
	}
	return p
}

// DecodeBlock implements tracestore.Codec, reusing dst's capacity.
func (EventCodec) DecodeBlock(raw []byte, n int, dst []EventRecord) ([]EventRecord, error) {
	if len(raw) != n*eventSize {
		return nil, fmt.Errorf("%w: block holds %d bytes, %d events need %d",
			tracestore.ErrCorrupt, len(raw), n, n*eventSize)
	}
	if cap(dst) < n {
		dst = make([]EventRecord, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = EventRecord{}
	}

	p := 0
	for i := range dst {
		dst[i].Epoch = binary.LittleEndian.Uint32(raw[p:])
		p += 4
	}
	for i := range dst {
		dst[i].Ev.Kind = EventKind(raw[p])
		p++
	}
	for i := range dst {
		dst[i].Ev.Station = StationID(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	p = getF64Col(raw, p, dst, func(ev *Event, v float64) { ev.AzDeg = v })
	p = getF64Col(raw, p, dst, func(ev *Event, v float64) { ev.ElDeg = v })
	p = getF64Col(raw, p, dst, func(ev *Event, v float64) { ev.DistM = v })
	p = getF64Col(raw, p, dst, func(ev *Event, v float64) { ev.DriftDegPerSec = v })
	p = getF64Col(raw, p, dst, func(ev *Event, v float64) { ev.AttenDB = v })
	p = getF64Col(raw, p, dst, func(ev *Event, v float64) { ev.LossFrac = v })
	for i := range dst {
		dst[i].Ev.Duration = time.Duration(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	return dst, nil
}

func getF64Col(raw []byte, p int, dst []EventRecord, set func(*Event, float64)) int {
	for i := range dst {
		set(&dst[i].Ev, math.Float64frombits(binary.LittleEndian.Uint64(raw[p:])))
		p += 8
	}
	return p
}

// RunSimRecorded runs the seeded simulation like RunSim while streaming
// every generated event — preseed arrivals and all epoch workload,
// recorded before the dispatch so queue drops replay deterministically —
// into trace-store shards named base under dir. Stale shards of the same
// basename are removed first.
func RunSimRecorded(ctx context.Context, est *core.Estimator, patterns *pattern.Set, cfg SimConfig, dir, base string) (*Scorecard, []tracestore.Shard, error) {
	stale, err := filepath.Glob(filepath.Join(dir, base+"-*.bin"))
	if err != nil {
		return nil, nil, err
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil {
			return nil, nil, err
		}
	}
	w, err := tracestore.NewWriter[EventRecord](EventCodec{}, dir, base, tracestore.WriterOptions{})
	if err != nil {
		return nil, nil, err
	}
	defer w.Close()

	var seq uint64
	rec := func(epoch uint32, ev Event) error {
		seq++
		return w.Append(seq, EventRecord{Epoch: epoch, Ev: ev})
	}
	sc, err := runSim(ctx, est, patterns, cfg, rec)
	if err != nil {
		return nil, nil, err
	}
	shards, err := w.Close()
	if err != nil {
		return nil, nil, err
	}
	return sc, shards, nil
}

// ReplaySim rebuilds a fresh Manager and drives it from the recorded
// event stream under dir/base instead of the live generator: preseed
// records arrive synchronously, each epoch's records are dispatched and
// the epoch stepped when the stream moves past it. The workload RNG is
// never consulted, yet the scorecard is byte-identical to the recording
// run's — including its queue-drop count, which re-emerges from the
// Manager's own backpressure.
func ReplaySim(ctx context.Context, est *core.Estimator, patterns *pattern.Set, cfg SimConfig, dir, base string) (*Scorecard, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	shards, err := tracestore.Discover(dir, base)
	if err != nil {
		return nil, err
	}
	m, err := newSimManager(est, patterns, cfg)
	if err != nil {
		return nil, err
	}

	var drops int64
	stepped := 0
	step := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := m.Step(ctx); err != nil {
			return err
		}
		stepped++
		return nil
	}
	// One worker: the event stream is order-sensitive, and ReplayShards
	// visits shards in index order when serial.
	err = tracestore.ReplayShards(ctx, EventCodec{}, shards, 1, func(_ int, recs []EventRecord) error {
		for i := range recs {
			r := &recs[i]
			if r.Epoch == 0 {
				if stepped > 0 {
					return fmt.Errorf("fleet: preseed event after epoch %d in replay stream", stepped-1)
				}
				if !m.Arrive(r.Ev) {
					return fmt.Errorf("fleet: duplicate preseed station %d in replay stream", r.Ev.Station)
				}
				continue
			}
			// Events for epoch e carry Epoch e+1 and precede its Step.
			for stepped < int(r.Epoch)-1 {
				if err := step(); err != nil {
					return err
				}
			}
			if !m.Dispatch(r.Ev) {
				drops++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Epochs past the last recorded event still run (a quiet tail is a
	// valid workload).
	for stepped < cfg.Epochs {
		if err := step(); err != nil {
			return nil, err
		}
	}

	sc := m.scorecard(cfg, drops)
	sc.StationsFinal = m.Len()
	return sc, nil
}
