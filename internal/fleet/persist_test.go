package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"talon/internal/core"
)

// TestEventCodecRoundTrip exercises the columnar codec on every event
// kind, including the float64 fields and the virtual-time duration.
func TestEventCodecRoundTrip(t *testing.T) {
	recs := []EventRecord{
		{Epoch: 0, Ev: Event{Kind: EventArrival, Station: 1, AzDeg: -41.25, ElDeg: 7.5, DistM: 3.75, DriftDegPerSec: -2.5}},
		{Epoch: 1, Ev: Event{Kind: EventDeparture, Station: 9999999999}},
		{Epoch: 1, Ev: Event{Kind: EventMobility, Station: 2, DriftDegPerSec: 9.75}},
		{Epoch: 3, Ev: Event{Kind: EventBlockage, Station: 3, AttenDB: 17.5, Duration: 650e6}},
		{Epoch: 7, Ev: Event{Kind: EventFault, Station: 4, LossFrac: 0.875}},
	}
	var c EventCodec
	raw := c.AppendBlock(nil, recs)
	if len(raw) != len(recs)*eventSize {
		t.Fatalf("encoded %d bytes, want %d", len(raw), len(recs)*eventSize)
	}
	got, err := c.DecodeBlock(raw, len(recs), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if _, err := c.DecodeBlock(raw[:len(raw)-1], len(recs), nil); err == nil {
		t.Fatal("truncated block decoded without error")
	}
}

// TestSimRecordReplayByteIdentity is the persistence acceptance run:
// the recorded run's scorecard and a replay of its event stream into a
// fresh Manager must serialize to identical bytes — including the
// queue-drop count, which replay re-derives from backpressure alone.
func TestSimRecordReplayByteIdentity(t *testing.T) {
	set := synthPatterns(t)
	est, err := core.NewEstimator(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenSimConfig()
	dir := t.TempDir()
	ctx := context.Background()

	live, shards, err := RunSimRecorded(ctx, est, set, cfg, dir, "fleet-events")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) == 0 {
		t.Fatal("no event shards written")
	}
	var events uint64
	for _, sh := range shards {
		if sh.Header.Kind != KindFleetEvent {
			t.Fatalf("shard kind %d, want %d", sh.Header.Kind, KindFleetEvent)
		}
		events += sh.Header.Records
	}
	if events < uint64(cfg.Stations) {
		t.Fatalf("recorded %d events, want at least the %d preseed arrivals", events, cfg.Stations)
	}

	replayed, err := ReplaySim(ctx, est, set, cfg, dir, "fleet-events")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replayed scorecard differs from recorded run:\nrecorded: %s\nreplayed: %s", want, got)
	}

	// The recorded run must also match a plain un-instrumented RunSim:
	// recording must not perturb the simulation.
	plain, err := RunSim(ctx, est, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainJSON, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainJSON, want) {
		t.Fatalf("recording perturbed the simulation:\nplain:    %s\nrecorded: %s", plainJSON, want)
	}
}
