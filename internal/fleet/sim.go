package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"talon/internal/core"
	"talon/internal/pattern"
	"talon/internal/stats"
)

// SimConfig parameterizes one deterministic fleet simulation. The whole
// run — geometry, churn, mobility, blockage, faults, probing noise — is
// a pure function of this struct, so it is embedded in the Scorecard as
// the experiment's provenance.
type SimConfig struct {
	// Stations is the target fleet size (preseeded before epoch 0;
	// churn keeps the population near it).
	Stations int `json:"stations"`
	// Epochs is the virtual horizon in epochs.
	Epochs int `json:"epochs"`
	// EpochNs is the epoch length in nanoseconds of virtual time.
	EpochNs int64 `json:"epoch_ns"`
	// Seed reproduces the run.
	Seed int64 `json:"seed"`

	// M is the compressive probe budget per training round.
	M int `json:"probe_budget"`
	// Shards is the shard count (0: Manager default).
	Shards int `json:"shards,omitempty"`
	// Capacity caps trainings served per epoch (0: unlimited).
	Capacity int `json:"capacity,omitempty"`
	// Workers bounds the scan/batch worker pools. It shapes wall-clock
	// time only, never the scorecard.
	Workers int `json:"-"`

	// ColdStart disables warm-start re-estimation (see WithWarmStart):
	// every training round runs the full hierarchical search with no
	// hint. The zero value (warm start on) is omitted from the JSON so
	// pre-existing scorecards keep their bytes.
	ColdStart bool `json:"cold_start,omitempty"`

	// Per-epoch event rates as a fraction of the current population
	// (e.g. 0.01 churns 1% of stations per epoch).
	ChurnPerEpoch    float64 `json:"churn_per_epoch"`
	MobilityPerEpoch float64 `json:"mobility_per_epoch"`
	BlockagePerEpoch float64 `json:"blockage_per_epoch"`
	FaultPerEpoch    float64 `json:"fault_per_epoch"`
}

// DefaultSimConfig returns the canonical smoke workload: modest churn
// and mobility with occasional blockages and fault bursts.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Stations:         10000,
		Epochs:           50,
		EpochNs:          int64(100 * time.Millisecond),
		Seed:             1,
		M:                14,
		ChurnPerEpoch:    0.002,
		MobilityPerEpoch: 0.01,
		BlockagePerEpoch: 0.002,
		FaultPerEpoch:    0.002,
	}
}

// generator is the seeded workload process. It owns a private alive-ID
// list (swap-remove for O(1) uniform departure draws) and a monotonic ID
// counter, so station IDs are never reused within a run.
type generator struct {
	rng    *stats.RNG
	alive  []StationID
	nextID StationID
	azLo   float64
	azHi   float64
	elLo   float64
	elHi   float64
	drops  int64
}

func newGenerator(seed int64, patterns *pattern.Set) *generator {
	g := &generator{rng: stats.NewRNG(seed)}
	az, el := patterns.Grid().Az(), patterns.Grid().El()
	// Inset the sampled geometry 10% from the grid edges so mobility
	// drift rarely walks a station off the measured patterns.
	azSpan, elSpan := az[len(az)-1]-az[0], el[len(el)-1]-el[0]
	g.azLo, g.azHi = az[0]+0.1*azSpan, az[len(az)-1]-0.1*azSpan
	g.elLo, g.elHi = el[0]+0.1*elSpan, el[len(el)-1]-0.1*elSpan
	return g
}

// arrivalEvent draws a fresh station: uniform direction within the
// pattern coverage, log-uniform-ish distance 1–10m, most stations
// static with a mobile minority.
func (g *generator) arrivalEvent() Event {
	id := g.nextID
	g.nextID++
	g.alive = append(g.alive, id)
	ev := Event{
		Kind:    EventArrival,
		Station: id,
		AzDeg:   g.rng.Uniform(g.azLo, g.azHi),
		ElDeg:   g.rng.Uniform(g.elLo, g.elHi),
		DistM:   1 + 9*g.rng.Float64()*g.rng.Float64(),
	}
	if g.rng.Bool(0.2) {
		ev.DriftDegPerSec = g.rng.Uniform(-10, 10)
	}
	return ev
}

// pick returns a uniformly drawn alive station (ok=false on an empty
// fleet). remove also deletes it from the alive list.
func (g *generator) pick(remove bool) (StationID, bool) {
	if len(g.alive) == 0 {
		return 0, false
	}
	i := g.rng.Intn(len(g.alive))
	id := g.alive[i]
	if remove {
		g.alive[i] = g.alive[len(g.alive)-1]
		g.alive = g.alive[:len(g.alive)-1]
	}
	return id, true
}

// count converts a fractional per-epoch rate into an integer event count
// deterministically: the integer part always fires, the remainder fires
// with matching probability.
func (g *generator) count(rate float64) int {
	if rate <= 0 || len(g.alive) == 0 {
		return 0
	}
	exp := rate * float64(len(g.alive))
	n := int(exp)
	if g.rng.Bool(exp - float64(n)) {
		n++
	}
	return n
}

// eventRecorder observes every generated event before it is offered to
// the Manager (see RunSimRecorded). epoch is 0 for preseed arrivals and
// e+1 for events generated during simulation epoch e.
type eventRecorder func(epoch uint32, ev Event) error

// dispatch records (when recording) and then offers the event; queue
// drops are counted but the event is persisted regardless, so a replay
// reproduces the drop deterministically.
func (g *generator) dispatch(m *Manager, epoch uint32, rec eventRecorder, ev Event) error {
	if rec != nil {
		if err := rec(epoch, ev); err != nil {
			return err
		}
	}
	if !m.Dispatch(ev) {
		g.drops++
	}
	return nil
}

// epochEvents generates and dispatches one epoch's worth of workload.
func (g *generator) epochEvents(m *Manager, cfg SimConfig, epochDur time.Duration, epoch uint32, rec eventRecorder) error {
	// Churn: a departure paired with a fresh arrival keeps the fleet
	// near its target size.
	for i, n := 0, g.count(cfg.ChurnPerEpoch); i < n; i++ {
		if id, ok := g.pick(true); ok {
			if err := g.dispatch(m, epoch, rec, Event{Kind: EventDeparture, Station: id}); err != nil {
				return err
			}
		}
		if err := g.dispatch(m, epoch, rec, g.arrivalEvent()); err != nil {
			return err
		}
	}
	for i, n := 0, g.count(cfg.MobilityPerEpoch); i < n; i++ {
		if id, ok := g.pick(false); ok {
			if err := g.dispatch(m, epoch, rec, Event{Kind: EventMobility, Station: id,
				DriftDegPerSec: g.rng.Uniform(-10, 10)}); err != nil {
				return err
			}
		}
	}
	for i, n := 0, g.count(cfg.BlockagePerEpoch); i < n; i++ {
		if id, ok := g.pick(false); ok {
			if err := g.dispatch(m, epoch, rec, Event{Kind: EventBlockage, Station: id,
				AttenDB:  g.rng.Uniform(5, 25),
				Duration: time.Duration(g.rng.Uniform(2, 10) * float64(epochDur)),
			}); err != nil {
				return err
			}
		}
	}
	for i, n := 0, g.count(cfg.FaultPerEpoch); i < n; i++ {
		if id, ok := g.pick(false); ok {
			if err := g.dispatch(m, epoch, rec, Event{Kind: EventFault, Station: id,
				LossFrac: g.rng.Uniform(0.5, 1)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// normalize validates cfg and fills the defaulted fields. Both the live
// generator and the event-stream replay go through it, so a recorded
// run and its replay agree on the embedded Config.
func (cfg *SimConfig) normalize() error {
	if cfg.Stations <= 0 || cfg.Epochs <= 0 {
		return errors.New("fleet: sim needs positive stations and epochs")
	}
	if cfg.EpochNs <= 0 {
		cfg.EpochNs = int64(100 * time.Millisecond)
	}
	if cfg.M <= 0 {
		cfg.M = 14
	}
	return nil
}

// newSimManager builds the Manager exactly as RunSim configures it.
func newSimManager(est *core.Estimator, patterns *pattern.Set, cfg SimConfig) (*Manager, error) {
	opts := []Option{
		WithSeed(cfg.Seed),
		WithEpoch(time.Duration(cfg.EpochNs)),
		WithProbeBudget(cfg.M),
		WithBatchWorkers(cfg.Workers),
		WithWarmStart(!cfg.ColdStart),
	}
	if cfg.Shards > 0 {
		opts = append(opts, WithShards(cfg.Shards))
	}
	if cfg.Capacity > 0 {
		opts = append(opts, WithCapacity(cfg.Capacity))
	}
	return New(est, patterns, opts...)
}

// RunSim replays cfg's seeded workload against a fresh Manager over est
// and patterns and returns the deterministic scorecard. The same cfg
// yields a byte-identical scorecard at any worker count.
func RunSim(ctx context.Context, est *core.Estimator, patterns *pattern.Set, cfg SimConfig) (*Scorecard, error) {
	return runSim(ctx, est, patterns, cfg, nil)
}

func runSim(ctx context.Context, est *core.Estimator, patterns *pattern.Set, cfg SimConfig, rec eventRecorder) (*Scorecard, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	epochDur := time.Duration(cfg.EpochNs)
	m, err := newSimManager(est, patterns, cfg)
	if err != nil {
		return nil, err
	}

	// Preseed the initial fleet synchronously: queue depth must not
	// bound the initial population.
	gen := newGenerator(cfg.Seed, patterns)
	for i := 0; i < cfg.Stations; i++ {
		ev := gen.arrivalEvent()
		if rec != nil {
			if err := rec(0, ev); err != nil {
				return nil, err
			}
		}
		if !m.Arrive(ev) {
			return nil, fmt.Errorf("fleet: duplicate preseed station %d", i)
		}
	}

	for e := 0; e < cfg.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := gen.epochEvents(m, cfg, epochDur, uint32(e+1), rec); err != nil {
			return nil, err
		}
		if err := m.Step(ctx); err != nil {
			return nil, err
		}
	}

	sc := m.scorecard(cfg, gen.drops)
	sc.StationsFinal = m.Len()
	return sc, nil
}
