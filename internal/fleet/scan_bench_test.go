package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkStepScan times the steady-state epoch scan in isolation: the
// whole fleet is tracking, the retrain interval is pushed past the
// horizon, and churn is off, so a Step is exactly one pass over the hot
// per-shard station slices plus the tally merge — the cost that bounds
// how many stations one core can carry per epoch. The reported
// ns/station × 1e6 is the projected single-core epoch scan at the
// 1M-station north star.
func BenchmarkStepScan(b *testing.B) {
	for _, n := range []int{16384, 131072} {
		b.Run(fmt.Sprintf("stations=%d", n), func(b *testing.B) {
			m, _ := testFleet(b,
				WithShards(256),
				WithSeed(5),
				WithBatchWorkers(1),
				WithRetrainInterval(24*time.Hour),
			)
			ctx := context.Background()
			for i := 0; i < n; i++ {
				az := -70 + 140*float64(i)/float64(n)
				if !m.Arrive(Event{Kind: EventArrival, Station: StationID(i), AzDeg: az, ElDeg: 10, DistM: 3}) {
					b.Fatalf("arrival %d rejected", i)
				}
			}
			// Drain the initial training wave so the timed steps carry
			// zero training rounds.
			for i := 0; i < 3; i++ {
				if err := m.Step(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Step(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/station")
		})
	}
}
