package fleet

import "time"

// StationID identifies one station↔AP link in the fleet. IDs are
// assigned by the workload (monotonically in the simulator) and shard by
// their low bits.
type StationID uint64

// EventKind classifies the external events that drive the fleet: the
// arrival/churn/mobility/blockage/fault processes of the workload.
type EventKind uint8

// The external event kinds.
const (
	// EventArrival adds a station at the carried geometry.
	EventArrival EventKind = iota
	// EventDeparture removes a station (churn).
	EventDeparture
	// EventMobility changes a station's azimuth drift velocity.
	EventMobility
	// EventBlockage attenuates a station's link for a while; the tracked
	// link degrades and retrains through its fallback machinery.
	EventBlockage
	// EventFault makes the station's next training round lose a fraction
	// of its probe reports (a firmware/ring impairment burst).
	EventFault
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventArrival:
		return "arrival"
	case EventDeparture:
		return "departure"
	case EventMobility:
		return "mobility"
	case EventBlockage:
		return "blockage"
	case EventFault:
		return "fault"
	}
	return "invalid"
}

// Event is one external stimulus for a station. Only the fields relevant
// to the Kind are read.
type Event struct {
	Kind    EventKind
	Station StationID

	// Arrival geometry: direction from the AP in the AP's pattern frame
	// and distance in meters.
	AzDeg, ElDeg, DistM float64
	// Arrival / mobility: azimuth drift velocity in degrees per second
	// of virtual time.
	DriftDegPerSec float64

	// Blockage severity and duration (virtual time).
	AttenDB  float64
	Duration time.Duration

	// Fault: fraction of the next round's probe reports lost.
	LossFrac float64
}
