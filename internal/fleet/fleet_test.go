package fleet

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"talon/internal/core"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/sector"
)

// synthPatterns builds a synthetic codebook of gaussian beams spread
// over azimuth, mirroring internal/core's test fixture: cheap to build,
// unambiguous enough that CSS finds the right sector.
func synthPatterns(t testing.TB) *pattern.Set {
	t.Helper()
	grid, err := geom.UniformGrid(-80, 80, 2, 0, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	ids := sector.TalonTX()
	set := pattern.NewSet()
	for i, id := range ids {
		azC := -75 + 150*float64(i)/float64(len(ids)-1)
		elC := float64((i * 7) % 25)
		width := 14 + float64(i%3)*4
		p := pattern.FromFunc(grid, func(az, el float64) float64 {
			d2 := (az-azC)*(az-azC) + 2*(el-elC)*(el-elC)
			return 12 - 19*(1-math.Exp(-d2/(2*width*width)))
		})
		if err := set.Put(id, p); err != nil {
			t.Fatal(err)
		}
	}
	return set
}

// testFleet builds a Manager over the synthetic codebook.
func testFleet(t testing.TB, opts ...Option) (*Manager, *pattern.Set) {
	t.Helper()
	set := synthPatterns(t)
	est, err := core.NewEstimator(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(est, set, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m, set
}

func TestNewValidation(t *testing.T) {
	set := synthPatterns(t)
	est, err := core.NewEstimator(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, set); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := New(est, pattern.NewSet()); err == nil {
		t.Error("empty pattern set accepted")
	}
	if _, err := New(est, set, WithEpoch(0)); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := New(est, set, WithProbeBudget(1000)); err == nil {
		t.Error("oversized probe budget accepted")
	}
	m, err := New(est, set, WithShards(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.shards); got != 8 {
		t.Errorf("5 shards rounded to %d, want 8", got)
	}
}

// TestLifecycle walks one station through the full state machine:
// idle → training → tracking within the first Step, degraded by a
// blockage, retraining after backoff, tracking again once the blockage
// clears.
func TestLifecycle(t *testing.T) {
	m, _ := testFleet(t, WithShards(1), WithSeed(11))
	ctx := context.Background()
	const id StationID = 1

	if !m.Arrive(Event{Kind: EventArrival, Station: id, AzDeg: -40, ElDeg: 10, DistM: 3}) {
		t.Fatal("arrival rejected")
	}
	if m.Arrive(Event{Kind: EventArrival, Station: id, AzDeg: 0, ElDeg: 0, DistM: 3}) {
		t.Fatal("duplicate arrival accepted")
	}
	snap, ok := m.Snapshot(id)
	if !ok || snap.State != StateIdle {
		t.Fatalf("after arrival: %+v, want idle", snap)
	}

	if err := m.Step(ctx); err != nil {
		t.Fatal(err)
	}
	snap, _ = m.Snapshot(id)
	if snap.State != StateTracking || !snap.HasLink {
		t.Fatalf("after first step: %+v, want tracking with a sector", snap)
	}
	firstSector := snap.Sector

	// A hard blockage pushes the served gain over the degrade threshold.
	if !m.Dispatch(Event{Kind: EventBlockage, Station: id, AttenDB: 30, Duration: 300 * time.Millisecond}) {
		t.Fatal("blockage dropped")
	}
	if err := m.Step(ctx); err != nil {
		t.Fatal(err)
	}
	snap, _ = m.Snapshot(id)
	if snap.State != StateDegraded {
		t.Fatalf("after blockage: %+v, want degraded", snap)
	}
	if !snap.HasLink || snap.Sector != firstSector {
		t.Fatalf("degraded link lost its last usable sector: %+v", snap)
	}

	// Backoff (one epoch) expires, the blockage runs out, and the
	// retrain restores tracking.
	deadline := 10
	for ; deadline > 0; deadline-- {
		if err := m.Step(ctx); err != nil {
			t.Fatal(err)
		}
		snap, _ = m.Snapshot(id)
		if snap.State == StateTracking {
			break
		}
	}
	if snap.State != StateTracking {
		t.Fatalf("link never recovered: %+v", snap)
	}
	if snap.Rounds < 2 {
		t.Errorf("recovery should have taken a second training round, got %d", snap.Rounds)
	}
}

// TestRetrainStaleness checks that a quietly tracking link retrains once
// the staleness interval elapses.
func TestRetrainStaleness(t *testing.T) {
	m, _ := testFleet(t, WithShards(1), WithSeed(3),
		WithEpoch(100*time.Millisecond), WithRetrainInterval(300*time.Millisecond))
	ctx := context.Background()
	m.Arrive(Event{Kind: EventArrival, Station: 7, AzDeg: 20, ElDeg: 8, DistM: 2})
	for i := 0; i < 6; i++ {
		if err := m.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := m.Snapshot(7)
	if snap.Rounds < 2 {
		t.Fatalf("stale link trained %d rounds over 600ms with a 300ms interval", snap.Rounds)
	}
}

// TestDispatchBackpressure checks the bounded queue: overflow events are
// dropped, not blocked on.
func TestDispatchBackpressure(t *testing.T) {
	m, _ := testFleet(t, WithShards(1), WithQueueDepth(2))
	ev := Event{Kind: EventFault, Station: 1, LossFrac: 1}
	if !m.Dispatch(ev) || !m.Dispatch(ev) {
		t.Fatal("queue rejected events below its depth")
	}
	if m.Dispatch(ev) {
		t.Fatal("queue accepted an event beyond its depth")
	}
}

// TestDepartureWithPendingRound checks that a station departing between
// its request being queued and served is skipped cleanly.
func TestDepartureWithPendingRound(t *testing.T) {
	// Capacity 0 over two stations would serve both in the arrival
	// epoch; capacity 1 leaves one pending across the boundary.
	m, _ := testFleet(t, WithShards(1), WithCapacity(1), WithSeed(5))
	ctx := context.Background()
	m.Arrive(Event{Kind: EventArrival, Station: 1, AzDeg: -30, ElDeg: 5, DistM: 3})
	m.Arrive(Event{Kind: EventArrival, Station: 2, AzDeg: 30, ElDeg: 5, DistM: 3})
	if err := m.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", m.Pending())
	}
	// Depart whichever station is still waiting.
	waiting := StationID(2)
	if snap, _ := m.Snapshot(1); inFlight(snap.State) {
		waiting = 1
	}
	if !m.Depart(waiting) {
		t.Fatal("departure rejected")
	}
	if err := m.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after serving, want 0", m.Pending())
	}
	if _, ok := m.Snapshot(waiting); ok {
		t.Fatal("departed station still present")
	}
}

// TestStepContext checks that a canceled context aborts Step.
func TestStepContext(t *testing.T) {
	m, _ := testFleet(t, WithShards(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Step(ctx); err == nil {
		t.Fatal("Step ignored a canceled context")
	}
}

// TestBatchFunnelOnly enforces the service contract in source: the fleet
// package reaches estimation exclusively through SelectSectorBatch —
// no call site may use the per-link SelectSector entry points.
func TestBatchFunnelOnly(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, file, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if strings.HasPrefix(name, "SelectSector") && name != "SelectSectorBatch" {
				t.Errorf("%s: %s bypasses the batch estimation funnel", fset.Position(sel.Pos()), name)
			}
			if name == "SweepSelect" || name == "SelectShards" {
				t.Errorf("%s: %s bypasses the batch estimation funnel", fset.Position(sel.Pos()), name)
			}
			return true
		})
	}
}
