//go:build !race

package fleet

// raceEnabled reports whether this test binary runs under the race
// detector (which instruments allocations and skews AllocsPerRun).
const raceEnabled = false
