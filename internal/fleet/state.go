package fleet

// State is a station link's position in the fleet lifecycle state
// machine:
//
//	          ┌────────────── evSelectOK ──────────────┐
//	          ▼                                        │
//	Idle ── evTrain ──▶ Training ── evSelectOK ──▶ Tracking
//	                       │                        │    │
//	                  evSelectFail            evDegrade  evRetrain
//	                       ▼                        ▼    ▼
//	                   Degraded ── evRetrain ──▶ Retraining
//	                       ▲                           │
//	                       └────── evSelectFail ───────┘
//
// Departures are handled outside the machine: a departed station is
// removed from its shard in any state.
type State uint8

// The fleet lifecycle states.
const (
	// StateIdle is a station that arrived but has not trained yet; it
	// has no usable sector.
	StateIdle State = iota
	// StateTraining is a station whose first training round is queued
	// or in flight through the batch estimation funnel.
	StateTraining
	// StateTracking is a station serving traffic on a selected sector.
	StateTracking
	// StateDegraded is a station whose link quality collapsed (blockage,
	// SNR drop, failed selection); it keeps transmitting on its last
	// usable sector while a retrain is scheduled.
	StateDegraded
	// StateRetraining is a station with a non-first training round
	// queued or in flight.
	StateRetraining

	numStates
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateTraining:
		return "training"
	case StateTracking:
		return "tracking"
	case StateDegraded:
		return "degraded"
	case StateRetraining:
		return "retraining"
	}
	return "invalid"
}

// transEvent drives the state machine. These are the machine-internal
// edges; the external Event stream (arrival, churn, mobility, blockage,
// fault) is translated into them by the per-epoch shard scan.
type transEvent uint8

const (
	// evTrain schedules the first training round of an idle station.
	evTrain transEvent = iota
	// evSelectOK delivers a successful batched selection.
	evSelectOK
	// evSelectFail delivers a failed batched selection (degenerate
	// surface, all probes lost, …).
	evSelectFail
	// evDegrade reports a tracked link whose quality dropped beyond the
	// degrade threshold (mobility staleness or blockage).
	evDegrade
	// evRetrain schedules a non-first training round (staleness timer on
	// a tracked link, or backoff expiry on a degraded one).
	evRetrain

	numTransEvents
)

// String implements fmt.Stringer.
func (ev transEvent) String() string {
	switch ev {
	case evTrain:
		return "train"
	case evSelectOK:
		return "select-ok"
	case evSelectFail:
		return "select-fail"
	case evDegrade:
		return "degrade"
	case evRetrain:
		return "retrain"
	}
	return "invalid"
}

// transition is the fleet state machine's pure transition function. It
// returns the successor state and whether the (state, event) pair is a
// legal edge; illegal pairs leave the state unchanged. Every legal edge
// a Manager takes increments the matching fleet_to_* transition counter
// (see metrics.go) at the call site.
func transition(s State, ev transEvent) (State, bool) {
	switch s {
	case StateIdle:
		if ev == evTrain {
			return StateTraining, true
		}
	case StateTraining:
		switch ev {
		case evSelectOK:
			return StateTracking, true
		case evSelectFail:
			return StateDegraded, true
		}
	case StateTracking:
		switch ev {
		case evDegrade:
			return StateDegraded, true
		case evRetrain:
			return StateRetraining, true
		}
	case StateDegraded:
		if ev == evRetrain {
			return StateRetraining, true
		}
	case StateRetraining:
		switch ev {
		case evSelectOK:
			return StateTracking, true
		case evSelectFail:
			return StateDegraded, true
		}
	}
	return s, false
}

// inFlight reports whether a station in s has a training round queued or
// in flight (and must not enqueue another).
func inFlight(s State) bool { return s == StateTraining || s == StateRetraining }
