package fleet

import "talon/internal/obs"

// Fleet-service metrics on the default registry. Population and event
// counters are updated by the shard workers; the transition counters
// count every legal state-machine edge taken, one counter per target
// state so dashboards can watch the lifecycle mix.
var (
	metStations = obs.NewGauge("fleet_stations",
		"stations currently managed across all shards")
	metArrivals = obs.NewCounter("fleet_arrivals_total",
		"station arrivals admitted")
	metDepartures = obs.NewCounter("fleet_departures_total",
		"station departures (churn)")
	metMobilityEvents = obs.NewCounter("fleet_mobility_events_total",
		"mobility (drift-velocity change) events applied")
	metBlockages = obs.NewCounter("fleet_blockages_total",
		"blockage events applied")
	metFaultEvents = obs.NewCounter("fleet_fault_events_total",
		"probe-loss fault events applied")
	metQueueDrops = obs.NewCounter("fleet_queue_drops_total",
		"events dropped because a shard's bounded queue was full")

	metEpochs = obs.NewCounter("fleet_epochs_total",
		"epochs stepped")
	metTrainings = obs.NewCounter("fleet_trainings_total",
		"training rounds served through the batch funnel")
	metRetrains = obs.NewCounter("fleet_retrains_total",
		"non-first training rounds served")
	metSelectFailures = obs.NewCounter("fleet_select_failures_total",
		"training rounds whose batched selection failed")
	metFallbacks = obs.NewCounter("fleet_fallbacks_total",
		"failed rounds that fell back to the probed-sector argmax")
	metPending = obs.NewGauge("fleet_pending_trainings",
		"training requests queued for the next batch")
	metBatchItems = obs.NewCounter("fleet_batch_items_total",
		"probe vectors submitted to core.SelectSectorBatch")

	metToTraining = obs.NewCounter("fleet_to_training_total",
		"state transitions into training")
	metToTracking = obs.NewCounter("fleet_to_tracking_total",
		"state transitions into tracking")
	metToDegraded = obs.NewCounter("fleet_to_degraded_total",
		"state transitions into degraded")
	metToRetraining = obs.NewCounter("fleet_to_retraining_total",
		"state transitions into retraining")

	metStepSeconds = obs.NewHistogram("fleet_step_seconds",
		"wall time per fleet epoch step", nil)
	metSelectLatency = obs.NewHistogram("fleet_select_latency_virtual_seconds",
		"virtual time from training trigger to applied selection", nil)
)

// noteTransition increments the per-target-state transition counter for
// a legal edge into next.
func noteTransition(next State) {
	switch next {
	case StateTraining:
		metToTraining.Inc()
	case StateTracking:
		metToTracking.Inc()
	case StateDegraded:
		metToDegraded.Inc()
	case StateRetraining:
		metToRetraining.Inc()
	}
}
