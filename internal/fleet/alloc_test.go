package fleet

import (
	"context"
	"testing"
	"time"
)

// TestScanZeroAllocSteadyState is the allocation-regression guard of
// the per-epoch scan: once the fleet is tracking and no deadline fires,
// a whole Step — shard scan over the hot slice, tally merge, empty
// serve — must not allocate at all. The retrain interval is pushed far
// out so steady-state epochs carry zero training rounds; batch workers
// are pinned to 1 so the scan runs serially (AllocsPerRun pins
// GOMAXPROCS to 1 anyway, and goroutine spawns would count).
func TestScanZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	m, _ := testFleet(t,
		WithShards(4),
		WithSeed(5),
		WithBatchWorkers(1),
		WithRetrainInterval(time.Hour),
	)
	ctx := context.Background()
	const n = 512
	for i := 0; i < n; i++ {
		az := -70 + 140*float64(i)/n
		if !m.Arrive(Event{Kind: EventArrival, Station: StationID(i), AzDeg: az, ElDeg: 10, DistM: 3}) {
			t.Fatalf("arrival %d rejected", i)
		}
	}
	// First steps train the whole fleet and warm every scratch (arena,
	// batch items, per-shard request lists, tally partials).
	for i := 0; i < 3; i++ {
		if err := m.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		snap, ok := m.Snapshot(StationID(i))
		if !ok || snap.State != StateTracking {
			t.Fatalf("station %d in state %v before steady state", i, snap.State)
		}
	}

	var stepErr error
	allocs := testing.AllocsPerRun(20, func() {
		stepErr = m.Step(ctx)
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f times per epoch, want 0", allocs)
	}
}
