package fleet

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"talon/internal/core"
	"talon/internal/dot11ad"
)

// Step advances the fleet by one epoch of virtual time:
//
//  1. Every shard drains its bounded event queue and applies the events,
//     then scans its stations — advancing mobility drift, expiring
//     blockages, degrading links whose serving gain collapsed and
//     scheduling staleness/backoff retrains. Shards are scanned by a
//     worker pool; each worker owns a shard exclusively while scanning
//     it, writing requests and tally partials into shard-local scratch.
//  2. The per-shard request lists are concatenated in shard-index order
//     (deterministic regardless of which worker finished first) and
//     appended to the global FIFO pending queue.
//  3. Up to the configured capacity of pending rounds is served: probe
//     vectors are synthesized into a reused arena and pushed through
//     core.SelectSectorBatch in bounded chunks — the single estimation
//     funnel for the whole fleet.
//  4. Outcomes are applied: successful selections adopt the sector and
//     transition to tracking; failures fall back to the probed argmax
//     and degrade. Virtual selection latency (queueing + training
//     airtime) and SNR loss versus the ground-truth best sector feed the
//     scorecard tally.
//
// Step serializes against itself but is safe alongside concurrent
// Arrive/Depart/Dispatch calls.
//talon:noalloc
func (m *Manager) Step(ctx context.Context) error {
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now() //lint:allow determinism -- step-duration histogram reads the wall clock by design
	defer metStepSeconds.ObserveSince(start)
	metEpochs.Inc()

	epochStart := time.Duration(m.now.Load())
	epochEnd := epochStart + m.cfg.epoch

	// Phase 1+2: parallel shard scan, deterministic merge.
	m.scanShards(epochStart, epochEnd)
	for _, sh := range m.shards {
		m.pending = append(m.pending, sh.reqs...)
		m.acc.merge(&sh.partial)
	}

	// Phase 3+4: serve the head of the pending queue through the batch
	// estimation funnel.
	serve := len(m.pending)
	if m.cfg.capacity > 0 && serve > m.cfg.capacity {
		serve = m.cfg.capacity
	}
	if serve > 0 {
		if err := m.serve(ctx, m.pending[:serve], epochEnd); err != nil {
			return err
		}
		n := copy(m.pending, m.pending[serve:])
		m.pending = m.pending[:n]
	}

	m.now.Store(int64(epochEnd))
	m.epoch++
	return nil
}

// scanShards runs phase 1 over all shards with the scan worker pool.
func (m *Manager) scanShards(epochStart, epochEnd time.Duration) {
	workers := m.scanWorkers()
	if workers <= 1 {
		for i := range m.shards {
			m.scanShard(i, epochStart, epochEnd)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.shards) {
					return
				}
				m.scanShard(i, epochStart, epochEnd)
			}
		}()
	}
	wg.Wait()
}

// scanShard drains shard i's event queue and scans its stations. Holds
// the shard lock throughout so concurrent Arrive/Depart stay safe.
func (m *Manager) scanShard(i int, epochStart, epochEnd time.Duration) {
	sh := m.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.reqs = sh.reqs[:0]
	if !sh.partial.latency.Initialized() {
		sh.partial.init()
	} else {
		sh.partial.reset()
	}

	// Drain the bounded queue. Only events queued before Step are
	// guaranteed to apply this epoch.
	for n := len(sh.queue); n > 0; n-- {
		ev, ok := <-sh.queue
		if !ok {
			break
		}
		m.applyEventLocked(sh, ev)
	}

	dt := epochEnd.Seconds() - epochStart.Seconds()
	epochIx := m.epoch
	for _, id := range sortedIDs(sh.stations) {
		st := sh.stations[id]
		// Mobility drift and blockage expiry happen for every station,
		// whatever its state.
		if st.driftDegPerSec != 0 {
			st.az = wrapAz(st.az + st.driftDegPerSec*dt)
		}
		if st.blockEpochsLeft > 0 {
			st.blockEpochsLeft--
		}
		switch st.state {
		case StateIdle:
			m.toState(st, evTrain)
			sh.reqs = append(sh.reqs, request{
				id: st.id, shardIx: i,
				trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
			})
			metPending.Add(1)
		case StateTracking:
			g := m.effGain(st, st.sector)
			if st.servedGain-g > m.cfg.degradeDropDB || g != g { // g!=g: NaN (drifted off the pattern grid)
				m.toState(st, evDegrade)
				sh.partial.degrades++
				st.retrainAt = epochEnd + m.cfg.degradedBackoff
				break
			}
			if epochStart-st.lastTrainEnd >= m.cfg.retrainInterval {
				m.toState(st, evRetrain)
				sh.reqs = append(sh.reqs, request{
					id: st.id, shardIx: i, retrain: true,
					trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
				})
				metPending.Add(1)
				break
			}
			sh.partial.trackedEpochs++
			if (uint64(st.id)+epochIx)%m.cfg.lossSampleStride == 0 {
				_, bestGain := m.bestSector(st)
				sh.partial.trackLoss.Observe(milliDB(bestGain - m.gainToward(st, st.sector)))
			}
		case StateDegraded:
			if epochStart >= st.retrainAt {
				m.toState(st, evRetrain)
				sh.reqs = append(sh.reqs, request{
					id: st.id, shardIx: i, retrain: true,
					trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
				})
				metPending.Add(1)
			}
		}
	}
}

// applyEventLocked applies one queued event to its shard.
func (m *Manager) applyEventLocked(sh *shard, ev Event) {
	switch ev.Kind {
	case EventArrival:
		if ev.DistM <= 0 {
			ev.DistM = refDistM
		}
		m.arriveLocked(sh, ev)
	case EventDeparture:
		m.departLocked(sh, ev.Station)
	case EventMobility:
		if st, ok := sh.stations[ev.Station]; ok {
			st.driftDegPerSec = ev.DriftDegPerSec
			metMobilityEvents.Inc()
		}
	case EventBlockage:
		if st, ok := sh.stations[ev.Station]; ok {
			st.blockAttenDB = ev.AttenDB
			epochs := int(ev.Duration / m.cfg.epoch)
			if epochs < 1 {
				epochs = 1
			}
			st.blockEpochsLeft = epochs
			metBlockages.Inc()
		}
	case EventFault:
		if st, ok := sh.stations[ev.Station]; ok {
			st.faultLossFrac = ev.LossFrac
			metFaultEvents.Inc()
		}
	}
}

// toState takes a legal edge and books the transition metric. Illegal
// edges are programming errors; they leave the state unchanged.
func (m *Manager) toState(st *station, ev transEvent) {
	next, ok := transition(st.state, ev)
	if !ok {
		return
	}
	st.state = next
	noteTransition(next)
}

// triggerJitter spreads training triggers of one epoch uniformly across
// it, deterministically per (seed, station, epoch): without it every
// round would queue at the epoch boundary and the latency distribution
// would collapse to a point.
func triggerJitter(seed int64, id StationID, epoch uint64, d time.Duration) time.Duration {
	h := uint64(seed) ^ 0xd1b54a32d192ed03
	h = (h ^ uint64(id)) * 0x100000001b3
	h = (h ^ epoch) * 0x100000001b3
	h ^= h >> 32
	return time.Duration(h % uint64(d))
}

// sortedIDs returns the shard's station IDs in ascending order so the
// scan visits stations deterministically (Go's randomized map iteration
// order is the thing being neutralized).
func sortedIDs(stations map[StationID]*station) []StationID {
	ids := make([]StationID, 0, len(stations))
	for id := range stations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// serve runs phase 3+4 for the chosen requests: synthesize probe
// vectors into the arena, push them through core.SelectSectorBatch in
// bounded chunks and apply the outcomes.
func (m *Manager) serve(ctx context.Context, reqs []request, epochEnd time.Duration) error {
	for len(reqs) > 0 {
		chunk := reqs
		if len(chunk) > m.cfg.maxBatch {
			chunk = chunk[:m.cfg.maxBatch]
		}
		reqs = reqs[len(chunk):]
		if err := m.serveChunk(ctx, chunk, epochEnd); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) serveChunk(ctx context.Context, chunk []request, epochEnd time.Duration) error {
	need := len(chunk) * m.cfg.probeBudget
	if cap(m.arena) < need {
		m.arena = make([]core.Probe, need)
	}
	m.arena = m.arena[:need]

	// Synthesize under shard locks; departed or out-of-state stations
	// are skipped (their slot stays nil and the batch ignores it by
	// serving a zero-probe vector we filter below).
	batch := make([][]core.Probe, 0, len(chunk))
	live := make([]int, 0, len(chunk)) // chunk indices with a live station
	for ci, r := range chunk {
		sh := m.shards[r.shardIx]
		sh.mu.Lock()
		st, ok := sh.stations[r.id]
		if !ok || !inFlight(st.state) {
			sh.mu.Unlock()
			m.acc.skipped++
			metPending.Add(-1)
			continue
		}
		dst := m.arena[ci*m.cfg.probeBudget : ci*m.cfg.probeBudget : (ci+1)*m.cfg.probeBudget]
		probes := m.synthProbes(st, dst)
		st.round++
		sh.mu.Unlock()
		batch = append(batch, probes)
		live = append(live, ci)
	}
	if len(batch) == 0 {
		return nil
	}
	metBatchItems.Add(int64(len(batch)))
	results, err := m.est.SelectSectorBatch(ctx, batch, m.cfg.batchWorkers)
	if err != nil {
		return err
	}

	for bi, res := range results {
		r := chunk[live[bi]]
		sh := m.shards[r.shardIx]
		sh.mu.Lock()
		st, ok := sh.stations[r.id]
		if !ok {
			sh.mu.Unlock()
			m.acc.skipped++
			metPending.Add(-1)
			continue
		}
		m.applyOutcome(st, batch[bi], res, r, epochEnd)
		sh.mu.Unlock()
		metPending.Add(-1)
	}
	return nil
}

// applyOutcome finishes one training round on its station (shard lock
// held).
func (m *Manager) applyOutcome(st *station, probes []core.Probe, res core.BatchResult, r request, epochEnd time.Duration) {
	m.acc.trainings++
	metTrainings.Inc()
	if r.retrain {
		m.acc.retrains++
		metRetrains.Inc()
	}
	latency := (epochEnd - r.trigger) + dot11ad.MutualTrainingTime(m.cfg.probeBudget)
	m.acc.latency.Observe(int64(latency))
	metSelectLatency.Observe(latency.Seconds())

	sel, err := res.Selection, res.Err
	adopted := false
	if err == nil {
		st.sector, st.haveSector, adopted = sel.Sector, true, true
		m.toState(st, evSelectOK)
	} else {
		m.acc.failures++
		metSelectFailures.Inc()
		if id, ok := fallbackSector(probes); ok {
			st.sector, st.haveSector, adopted = id, true, true
			m.acc.fallbacks++
			metFallbacks.Inc()
		}
		m.toState(st, evSelectFail)
		st.retrainAt = epochEnd + m.cfg.degradedBackoff
	}
	if adopted {
		st.servedGain = m.effGain(st, st.sector)
		_, bestGain := m.bestSector(st)
		m.acc.selLoss.Observe(milliDB(bestGain - m.gainToward(st, st.sector)))
	}
	st.lastTrainEnd = epochEnd
}
