package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"talon/internal/core"
	"talon/internal/dot11ad"
)

// Step advances the fleet by one epoch of virtual time:
//
//  1. Every shard drains its bounded event queue and applies the events,
//     then scans its stations — advancing mobility drift, expiring
//     blockages, degrading links whose serving gain collapsed and
//     scheduling staleness/backoff retrains. Shards are scanned by a
//     worker pool; each worker owns a shard exclusively while scanning
//     it, writing requests and tally partials into shard-local scratch.
//  2. The per-shard request lists are concatenated in shard-index order
//     (deterministic regardless of which worker finished first) and
//     appended to the global FIFO pending queue.
//  3. Up to the configured capacity of pending rounds is served: probe
//     vectors are synthesized into a reused arena and pushed through
//     core.SelectSectorBatch in bounded chunks — the single estimation
//     funnel for the whole fleet — each round hinted with its station's
//     previous selection cell when warm-start is on.
//  4. Outcomes are applied: successful selections adopt the sector and
//     transition to tracking; failures fall back to the probed argmax
//     and degrade. Virtual selection latency (queueing + training
//     airtime) and SNR loss versus the ground-truth best sector feed the
//     scorecard tally.
//
// Step serializes against itself but is safe alongside concurrent
// Arrive/Depart/Dispatch calls.
//talon:noalloc
func (m *Manager) Step(ctx context.Context) error {
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now() //lint:allow determinism -- step-duration histogram reads the wall clock by design
	defer metStepSeconds.ObserveSince(start)
	metEpochs.Inc()

	epochStart := time.Duration(m.now.Load())
	epochEnd := epochStart + m.cfg.epoch

	// Phase 1+2: parallel shard scan, deterministic merge.
	m.scanShards(epochStart, epochEnd)
	for _, sh := range m.shards {
		m.pending = append(m.pending, sh.reqs...)
		m.acc.merge(&sh.partial)
	}

	// Phase 3+4: serve the head of the pending queue through the batch
	// estimation funnel.
	serve := len(m.pending)
	if m.cfg.capacity > 0 && serve > m.cfg.capacity {
		serve = m.cfg.capacity
	}
	if serve > 0 {
		if err := m.serve(ctx, m.pending[:serve], epochEnd); err != nil {
			return err
		}
		n := copy(m.pending, m.pending[serve:])
		m.pending = m.pending[:n]
	}

	m.now.Store(int64(epochEnd))
	m.epoch++
	return nil
}

// scanShards runs phase 1 over all shards with the scan worker pool.
func (m *Manager) scanShards(epochStart, epochEnd time.Duration) {
	workers := m.scanWorkers()
	if workers <= 1 {
		for i := range m.shards {
			m.scanShard(i, epochStart, epochEnd)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.shards) {
					return
				}
				m.scanShard(i, epochStart, epochEnd)
			}
		}()
	}
	wg.Wait()
}

// scanShard drains shard i's event queue and scans its stations in
// ascending-ID order along the precomputed order slice. Holds the shard
// lock throughout so concurrent Arrive/Depart stay safe.
//
// The loop is split in two tiers. The fast path covers the steady state
// — a tracked station with no impairment flags — and reads only the
// 24-byte hot record: deadline compare, tracked-epoch count, sampled
// loss observation from the cached gains. Skipping the degrade check
// there is exact, not approximate: with no drift, no blockage and a
// non-NaN serving gain, both sides of the check are unchanged since the
// last slow-path scan or adoption (where it passed — otherwise the
// station would not be tracking), so it cannot fire. Everything else
// (any flag set, any other state, or a degrade-always threshold) takes
// scanSlow, which reproduces the full per-station logic.
//talon:noalloc
func (m *Manager) scanShard(i int, epochStart, epochEnd time.Duration) {
	sh := m.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.reqs = sh.reqs[:0]
	if !sh.partial.latency.Initialized() {
		sh.partial.init()
	} else {
		sh.partial.reset()
	}

	// Drain the bounded queue. Only events queued before Step are
	// guaranteed to apply this epoch.
	for n := len(sh.queue); n > 0; n-- {
		ev, ok := <-sh.queue
		if !ok {
			break
		}
		m.applyEventLocked(sh, ev)
	}

	dt := epochEnd.Seconds() - epochStart.Seconds()
	epochIx := m.epoch
	stride := m.cfg.lossSampleStride
	// (id+epoch) % stride == 0  ⟺  id % stride == (stride - epoch%stride) % stride,
	// so the per-station sampling test is one compare against this
	// epoch-constant residue.
	want := uint32((stride - epochIx%stride) % stride)
	fast := m.fastScan
	for _, slot := range sh.order {
		h := &sh.hot[slot]
		if fast && h.state == StateTracking && h.flags == 0 {
			if epochStart >= h.deadline {
				st := &sh.recs[slot]
				m.toState(h, evRetrain)
				sh.reqs = append(sh.reqs, request{
					id: st.id, shardIx: i, retrain: true,
					trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
				})
				metPending.Add(1)
				continue
			}
			sh.partial.trackedEpochs++
			if h.sampleRes == want {
				st := &sh.recs[slot]
				sh.partial.trackLoss.Observe(milliDB(m.cachedBestGain(st) - st.curGain))
			}
			continue
		}
		m.scanSlow(sh, i, slot, epochStart, epochEnd, dt, epochIx, want)
	}
}

// scanSlow is the full per-station epoch scan: mobility drift, blockage
// expiry and the state-machine actions for every lifecycle state.
//talon:noalloc
func (m *Manager) scanSlow(sh *shard, i int, slot int32, epochStart, epochEnd time.Duration, dt float64, epochIx uint64, want uint32) {
	st, h := &sh.recs[slot], &sh.hot[slot]
	// Mobility drift and blockage expiry happen for every station,
	// whatever its state.
	if h.flags&flagDrift != 0 {
		st.az = wrapAz(st.az + st.driftDegPerSec*dt)
		st.gainValid, st.bestValid = false, false
	}
	if h.flags&flagBlocked != 0 {
		st.blockEpochsLeft--
		if st.blockEpochsLeft <= 0 {
			st.blockEpochsLeft = 0
			h.flags &^= flagBlocked
		}
	}
	switch h.state {
	case StateIdle:
		m.toState(h, evTrain)
		//lint:allow noalloc -- sh.reqs arrives resliced to [:0] from scanShard; growth settles after the first training wave (see TestScanZeroAllocSteadyState)
		sh.reqs = append(sh.reqs, request{
			id: st.id, shardIx: i,
			trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
		})
		metPending.Add(1)
	case StateTracking:
		if !st.gainValid {
			m.refreshCurGain(st, h)
		}
		g := st.curGain
		if st.blockEpochsLeft > 0 {
			g -= st.blockAttenDB
		}
		if st.servedGain-g > m.cfg.degradeDropDB || g != g { // g!=g: NaN (drifted off the pattern grid)
			m.toState(h, evDegrade)
			sh.partial.degrades++
			h.deadline = epochEnd + m.cfg.degradedBackoff
			break
		}
		if epochStart >= h.deadline {
			m.toState(h, evRetrain)
			//lint:allow noalloc -- sh.reqs arrives resliced to [:0] from scanShard; growth settles after the first training wave (see TestScanZeroAllocSteadyState)
			sh.reqs = append(sh.reqs, request{
				id: st.id, shardIx: i, retrain: true,
				trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
			})
			metPending.Add(1)
			break
		}
		sh.partial.trackedEpochs++
		if h.sampleRes == want {
			sh.partial.trackLoss.Observe(milliDB(m.cachedBestGain(st) - st.curGain))
		}
	case StateDegraded:
		if epochStart >= h.deadline {
			m.toState(h, evRetrain)
			//lint:allow noalloc -- sh.reqs arrives resliced to [:0] from scanShard; growth settles after the first training wave (see TestScanZeroAllocSteadyState)
			sh.reqs = append(sh.reqs, request{
				id: st.id, shardIx: i, retrain: true,
				trigger: epochStart + triggerJitter(m.cfg.seed, st.id, epochIx, m.cfg.epoch),
			})
			metPending.Add(1)
		}
	}
}

// applyEventLocked applies one queued event to its shard, keeping the
// hot records' impairment flags in sync with the cold fields they
// summarize.
func (m *Manager) applyEventLocked(sh *shard, ev Event) {
	switch ev.Kind {
	case EventArrival:
		if ev.DistM <= 0 {
			ev.DistM = refDistM
		}
		m.arriveLocked(sh, ev)
	case EventDeparture:
		m.departLocked(sh, ev.Station)
	case EventMobility:
		if slot, ok := sh.index[ev.Station]; ok {
			sh.recs[slot].driftDegPerSec = ev.DriftDegPerSec
			if ev.DriftDegPerSec != 0 {
				sh.hot[slot].flags |= flagDrift
			} else {
				sh.hot[slot].flags &^= flagDrift
			}
			metMobilityEvents.Inc()
		}
	case EventBlockage:
		if slot, ok := sh.index[ev.Station]; ok {
			st := &sh.recs[slot]
			st.blockAttenDB = ev.AttenDB
			epochs := int(ev.Duration / m.cfg.epoch)
			if epochs < 1 {
				epochs = 1
			}
			st.blockEpochsLeft = epochs
			sh.hot[slot].flags |= flagBlocked
			metBlockages.Inc()
		}
	case EventFault:
		if slot, ok := sh.index[ev.Station]; ok {
			sh.recs[slot].faultLossFrac = ev.LossFrac
			metFaultEvents.Inc()
		}
	}
}

// toState takes a legal edge and books the transition metric. Illegal
// edges are programming errors; they leave the state unchanged.
func (m *Manager) toState(h *hotStation, ev transEvent) {
	next, ok := transition(h.state, ev)
	if !ok {
		return
	}
	h.state = next
	noteTransition(next)
}

// triggerJitter spreads training triggers of one epoch uniformly across
// it, deterministically per (seed, station, epoch): without it every
// round would queue at the epoch boundary and the latency distribution
// would collapse to a point.
func triggerJitter(seed int64, id StationID, epoch uint64, d time.Duration) time.Duration {
	h := uint64(seed) ^ 0xd1b54a32d192ed03
	h = (h ^ uint64(id)) * 0x100000001b3
	h = (h ^ epoch) * 0x100000001b3
	h ^= h >> 32
	return time.Duration(h % uint64(d))
}

// serve runs phase 3+4 for the chosen requests: synthesize probe
// vectors into the arena, push them through core.SelectSectorBatch in
// bounded chunks and apply the outcomes.
func (m *Manager) serve(ctx context.Context, reqs []request, epochEnd time.Duration) error {
	for len(reqs) > 0 {
		chunk := reqs
		if len(chunk) > m.cfg.maxBatch {
			chunk = chunk[:m.cfg.maxBatch]
		}
		reqs = reqs[len(chunk):]
		if err := m.serveChunk(ctx, chunk, epochEnd); err != nil {
			return err
		}
	}
	return nil
}

//talon:noalloc
func (m *Manager) serveChunk(ctx context.Context, chunk []request, epochEnd time.Duration) error {
	need := len(chunk) * m.cfg.probeBudget
	if cap(m.arena) < need {
		//lint:allow noalloc -- grow-only: the probe arena is manager scratch that reaches its steady-state capacity on the first full chunk
		m.arena = make([]core.Probe, need)
	}
	m.arena = m.arena[:need]

	// Synthesize under shard locks; departed or out-of-state stations
	// are skipped. The batch item and live-index buffers are manager
	// scratch reused across chunks and epochs.
	m.items = m.items[:0]
	m.live = m.live[:0]
	warm := m.cfg.warmStart
	for ci, r := range chunk {
		sh := m.shards[r.shardIx]
		sh.mu.Lock()
		slot, ok := sh.index[r.id]
		if !ok || !inFlight(sh.hot[slot].state) {
			sh.mu.Unlock()
			m.acc.skipped++
			metPending.Add(-1)
			continue
		}
		st := &sh.recs[slot]
		dst := m.arena[ci*m.cfg.probeBudget : ci*m.cfg.probeBudget : (ci+1)*m.cfg.probeBudget]
		probes := m.synthProbes(st, dst)
		st.round++
		hint := core.NoCell
		if warm {
			hint = sh.hot[slot].cell
		}
		sh.mu.Unlock()
		m.items = append(m.items, core.BatchItem{Probes: probes, Hint: hint})
		m.live = append(m.live, int32(ci))
	}
	if len(m.items) == 0 {
		return nil
	}
	metBatchItems.Add(int64(len(m.items)))
	results, err := m.est.SelectSectorBatch(ctx, m.items, m.cfg.batchWorkers)
	if err != nil {
		return err
	}

	for bi, res := range results {
		r := chunk[m.live[bi]]
		sh := m.shards[r.shardIx]
		sh.mu.Lock()
		slot, ok := sh.index[r.id]
		if !ok {
			sh.mu.Unlock()
			m.acc.skipped++
			metPending.Add(-1)
			continue
		}
		m.applyOutcome(&sh.recs[slot], &sh.hot[slot], m.items[bi].Probes, res, r, epochEnd)
		sh.mu.Unlock()
		metPending.Add(-1)
	}
	return nil
}

// applyOutcome finishes one training round on its station (shard lock
// held): adopt or fall back, arm the next deadline (staleness retrain on
// success, degraded backoff on failure), refresh the warm-start hint
// cell and the gain caches, and book the round's tally.
func (m *Manager) applyOutcome(st *station, h *hotStation, probes []core.Probe, res core.BatchResult, r request, epochEnd time.Duration) {
	m.acc.trainings++
	metTrainings.Inc()
	if r.retrain {
		m.acc.retrains++
		metRetrains.Inc()
	}
	latency := (epochEnd - r.trigger) + dot11ad.MutualTrainingTime(m.cfg.probeBudget)
	m.acc.latency.Observe(int64(latency))
	metSelectLatency.Observe(latency.Seconds())

	sel, err := res.Selection, res.Err
	adopted := false
	if err == nil {
		st.sector, st.haveSector, adopted = sel.Sector, true, true
		m.toState(h, evSelectOK)
		h.cell = sel.AoA.Cell
		h.deadline = epochEnd + m.cfg.retrainInterval
	} else {
		m.acc.failures++
		metSelectFailures.Inc()
		if id, ok := fallbackSector(probes); ok {
			st.sector, st.haveSector, adopted = id, true, true
			m.acc.fallbacks++
			metFallbacks.Inc()
		}
		m.toState(h, evSelectFail)
		h.cell = core.NoCell
		h.deadline = epochEnd + m.cfg.degradedBackoff
	}
	if adopted {
		m.refreshCurGain(st, h)
		g := st.curGain
		if st.blockEpochsLeft > 0 {
			g -= st.blockAttenDB
		}
		st.servedGain = g
		m.acc.selLoss.Observe(milliDB(m.cachedBestGain(st) - st.curGain))
	}
}
