package fleet

import (
	"math"
	"time"

	"talon/internal/stats"
)

// All scorecard accumulation is integer arithmetic: histogram bucket
// counts, nanosecond sums and milli-dB fixed-point sums in int64. Sums
// of int64s are associative, so per-shard partial tallies can be merged
// in any order and the scorecard still comes out byte-identical for a
// fixed seed at any worker count.

// latencyBoundsNs are the virtual selection-latency histogram bounds.
// Selections complete at epoch boundaries, so the interesting structure
// is epoch multiples plus the sub-millisecond training airtime.
var latencyBoundsNs = []int64{
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2 * time.Millisecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(20 * time.Millisecond),
	int64(30 * time.Millisecond),
	int64(40 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(60 * time.Millisecond),
	int64(70 * time.Millisecond),
	int64(80 * time.Millisecond),
	int64(90 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(110 * time.Millisecond),
	int64(125 * time.Millisecond),
	int64(150 * time.Millisecond),
	int64(200 * time.Millisecond),
	int64(300 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2 * time.Second),
	int64(5 * time.Second),
	int64(10 * time.Second),
}

// lossBoundsMilli are the SNR-loss histogram bounds in milli-dB.
var lossBoundsMilli = []int64{0, 250, 500, 1000, 2000, 3000, 5000, 10000, 20000}

// tally is the deterministic scorecard accumulator. The Manager keeps
// one under stepMu; each Step's shard workers fill per-shard partials
// that are merged in.
type tally struct {
	latency   stats.IntHist // virtual selection latency, ns
	selLoss   stats.IntHist // SNR loss at selection vs ground-truth best, milli-dB
	trackLoss stats.IntHist // sampled SNR loss while tracking, milli-dB

	trainings     int64 // rounds served through the batch funnel
	retrains      int64 // non-first rounds among them
	failures      int64 // rounds whose batched selection errored
	fallbacks     int64 // failed rounds rescued by the probed argmax
	degrades      int64 // tracked links pushed to degraded by the scan
	trackedEpochs int64 // (station, epoch) pairs spent tracking
	skipped       int64 // pending rounds whose station departed first
}

func (t *tally) init() {
	t.latency = stats.NewIntHist(latencyBoundsNs)
	t.selLoss = stats.NewIntHist(lossBoundsMilli)
	t.trackLoss = stats.NewIntHist(lossBoundsMilli)
}

func (t *tally) reset() {
	t.latency.Reset()
	t.selLoss.Reset()
	t.trackLoss.Reset()
	t.trainings, t.retrains, t.failures, t.fallbacks = 0, 0, 0, 0
	t.degrades, t.trackedEpochs, t.skipped = 0, 0, 0
}

func (t *tally) merge(o *tally) {
	t.latency.Merge(&o.latency)
	t.selLoss.Merge(&o.selLoss)
	t.trackLoss.Merge(&o.trackLoss)
	t.trainings += o.trainings
	t.retrains += o.retrains
	t.failures += o.failures
	t.fallbacks += o.fallbacks
	t.degrades += o.degrades
	t.trackedEpochs += o.trackedEpochs
	t.skipped += o.skipped
}

// milliDB converts a dB value to fixed-point milli-dB, clamping NaN and
// negatives (a selection can beat the pattern argmax only by noise; treat
// that as zero loss).
func milliDB(db float64) int64 {
	if math.IsNaN(db) || db < 0 {
		return 0
	}
	if db > 1000 {
		db = 1000
	}
	return int64(math.Round(db * 1000))
}

// LatencySummary reports the virtual selection-latency distribution.
type LatencySummary struct {
	Count  int64 `json:"count"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}

// LossSummary reports an SNR-loss distribution in milli-dB fixed point.
type LossSummary struct {
	Count    int64   `json:"count"`
	P50Milli int64   `json:"p50_millidb"`
	P90Milli int64   `json:"p90_millidb"`
	P99Milli int64   `json:"p99_millidb"`
	MaxMilli int64   `json:"max_millidb"`
	MeanDB   float64 `json:"mean_db"`
	Buckets  []int64 `json:"buckets"`
}

func latencySummary(h *stats.IntHist) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.Max(),
		MeanNs: h.Mean(),
	}
}

func lossSummary(h *stats.IntHist) LossSummary {
	return LossSummary{
		Count:    h.Count(),
		P50Milli: h.Quantile(0.50),
		P90Milli: h.Quantile(0.90),
		P99Milli: h.Quantile(0.99),
		MaxMilli: h.Max(),
		MeanDB:   float64(h.Mean()) / 1000,
		Buckets:  h.Counts(),
	}
}

// BenchEntry mirrors cmd/benchdiff's baseline schema so a scorecard file
// can be handed straight to `benchdiff -against`.
type BenchEntry struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Scorecard is cmd/fleetsim's deterministic result: virtual-time service
// quality of the fleet under a seeded workload. For a fixed SimConfig it
// is byte-identical across runs, machines and worker counts; wall-clock
// throughput is deliberately excluded (fleetsim reports that separately
// in Go benchmark format).
type Scorecard struct {
	Config SimConfig `json:"config"`

	StationsFinal int   `json:"stations_final"`
	Epochs        int64 `json:"epochs"`
	VirtualNs     int64 `json:"virtual_ns"`

	Trainings     int64 `json:"trainings"`
	Retrains      int64 `json:"retrains"`
	Failures      int64 `json:"select_failures"`
	Fallbacks     int64 `json:"fallbacks"`
	Degrades      int64 `json:"degrades"`
	TrackedEpochs int64 `json:"tracked_epochs"`
	Skipped       int64 `json:"skipped_rounds"`
	QueueDrops    int64 `json:"queue_drops"`

	// RetrainsPerSec is retrains per second of virtual time.
	RetrainsPerSec float64 `json:"retrains_per_sec"`

	SelectLatency LatencySummary `json:"select_latency"`
	SelectionLoss LossSummary    `json:"selection_snr_loss"`
	TrackingLoss  LossSummary    `json:"tracking_snr_loss"`

	// Note and Benchmarks make the scorecard double as a benchdiff
	// baseline of virtual metrics.
	Note       string       `json:"note"`
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// scorecard assembles the Scorecard from the manager's accumulated tally.
func (m *Manager) scorecard(cfg SimConfig, queueDrops int64) *Scorecard {
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	t := &m.acc
	sc := &Scorecard{
		Config:        cfg,
		StationsFinal: 0, // filled by caller outside stepMu via Len
		Epochs:        int64(m.epoch),
		VirtualNs:     m.now.Load(),
		Trainings:     t.trainings,
		Retrains:      t.retrains,
		Failures:      t.failures,
		Fallbacks:     t.fallbacks,
		Degrades:      t.degrades,
		TrackedEpochs: t.trackedEpochs,
		Skipped:       t.skipped,
		QueueDrops:    queueDrops,
		SelectLatency: latencySummary(&t.latency),
		SelectionLoss: lossSummary(&t.selLoss),
		TrackingLoss:  lossSummary(&t.trackLoss),
	}
	if now := m.now.Load(); now > 0 {
		sc.RetrainsPerSec = float64(t.retrains) / (float64(now) / float64(time.Second))
	}
	sc.Note = "fleetsim virtual scorecard (deterministic; not wall-clock)"
	sc.Benchmarks = []BenchEntry{
		{Name: "BenchmarkFleetVirtual/select_latency_p50", Iters: sc.SelectLatency.Count, NsPerOp: float64(sc.SelectLatency.P50Ns)},
		{Name: "BenchmarkFleetVirtual/select_latency_p99", Iters: sc.SelectLatency.Count, NsPerOp: float64(sc.SelectLatency.P99Ns)},
		{Name: "BenchmarkFleetVirtual/selection_loss_p50_millidb", Iters: sc.SelectionLoss.Count, NsPerOp: float64(sc.SelectionLoss.P50Milli)},
		{Name: "BenchmarkFleetVirtual/tracking_loss_p99_millidb", Iters: sc.TrackingLoss.Count, NsPerOp: float64(sc.TrackingLoss.P99Milli)},
	}
	return sc
}
