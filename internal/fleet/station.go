package fleet

import (
	"math"
	"time"

	"talon/internal/core"
	"talon/internal/sector"
)

// station is the cold per-link record a shard holds; the scan-hot fields
// (state, deadline, warm-start cell, sample residue, impairment flags)
// live in the parallel hotStation slice. The struct is deliberately
// small (no retained RNG state, no per-station goroutines) so a million
// stations stay within a couple hundred megabytes; all randomness is
// re-derived per training round from (manager seed, station ID, round).
type station struct {
	id StationID

	// Geometry in the AP's pattern frame.
	az, el, dist float64
	// pathlossDB caches 20·log10(dist/refDistM); dist is fixed at
	// arrival, so the per-probe link budget never recomputes the log.
	pathlossDB float64
	// driftDegPerSec moves az every epoch (mobility).
	driftDegPerSec float64

	// Current selection.
	sector     sector.ID
	haveSector bool
	// servedGain is the selected sector's effective gain toward the
	// station at selection time; the degrade check compares the current
	// gain against it.
	servedGain float64
	// curGain caches the serving sector's pattern gain at (az, el),
	// valid while gainValid holds; it is recomputed on drift and on
	// sector adoption (pure memoization — the cached value is always
	// exactly what gainToward would return).
	curGain   float64
	gainValid bool
	// bestGain caches the ground-truth best sector gain at (az, el),
	// valid while bestValid holds; invalidated by drift only (sector
	// adoption does not move the station).
	bestGain  float64
	bestValid bool

	// Impairments.
	blockEpochsLeft int
	blockAttenDB    float64
	faultLossFrac   float64 // consumed by the next training round

	// Lifecycle bookkeeping (virtual time).
	arrivedAt time.Duration
	round     uint32 // completed + in-flight training rounds
}

// Snapshot is the externally visible state of one station.
type Snapshot struct {
	ID       StationID
	State    State
	Sector   sector.ID
	HasLink  bool
	AzDeg    float64
	ElDeg    float64
	DistM    float64
	Rounds   uint32
	Degraded bool
}

// roundSeed derives the deterministic RNG seed of st's next training
// round. The stream depends only on (fleet seed, station, round), never
// on shard processing order, so batched selections are reproducible at
// any worker count.
func roundSeed(fleetSeed int64, id StationID, round uint32) int64 {
	h := uint64(fleetSeed) ^ 0x9e3779b97f4a7c15
	h = (h ^ uint64(id)) * 0x100000001b3
	h = (h ^ uint64(round)) * 0x100000001b3
	h ^= h >> 29
	return int64(h)
}

// refDistM anchors the fleet link budget: a station at refDistM with a
// sector of mean peak gain sees cfg.refSNRDB before impairments.
const refDistM = 3.0

// trueSNR returns the noiseless SNR of sector id toward st under the
// fleet's lightweight single-path channel: reference SNR, log-distance
// pathloss, the measured pattern gain toward the station (normalized by
// the codebook's mean peak gain) and any active blockage attenuation.
func (m *Manager) trueSNR(st *station, id sector.ID) float64 {
	p := m.pat(id)
	if p == nil {
		return math.Inf(-1)
	}
	g := p.At(st.az, st.el)
	if math.IsNaN(g) {
		return math.Inf(-1)
	}
	snr := m.cfg.refSNRDB - st.pathlossDB + g - m.gainRef
	if st.blockEpochsLeft > 0 {
		snr -= st.blockAttenDB
	}
	return snr
}

// bestSector returns the transmit sector with the highest pattern gain
// toward st and that gain — the ground-truth optimum the SNR-loss
// distribution is measured against.
func (m *Manager) bestSector(st *station) (sector.ID, float64) {
	best, bestGain := sector.RX, math.Inf(-1)
	for i, p := range m.txPats {
		g := p.At(st.az, st.el)
		if !math.IsNaN(g) && g > bestGain {
			best, bestGain = m.txIDs[i], g
		}
	}
	return best, bestGain
}

// cachedBestGain is bestSector's gain through the per-station memo: the
// full codebook scan runs only when drift moved the station since the
// last call.
func (m *Manager) cachedBestGain(st *station) float64 {
	if !st.bestValid {
		_, st.bestGain = m.bestSector(st)
		st.bestValid = true
	}
	return st.bestGain
}

// refreshCurGain recomputes the serving-gain cache and maintains the
// hot record's recheck flag: a NaN serving gain (station off the
// measured grid) must keep the station on the scan's slow path so the
// degrade check sees it.
func (m *Manager) refreshCurGain(st *station, h *hotStation) {
	st.curGain = m.gainToward(st, st.sector)
	st.gainValid = true
	if st.curGain != st.curGain {
		h.flags |= flagRecheck
	} else {
		h.flags &^= flagRecheck
	}
}

// gainToward returns id's pattern gain toward st (math.NaN when the
// pattern has no sample there).
func (m *Manager) gainToward(st *station, id sector.ID) float64 {
	p := m.pat(id)
	if p == nil {
		return math.NaN()
	}
	return p.At(st.az, st.el)
}

// effGain is gainToward minus any active blockage attenuation — the
// quantity the degrade check watches, so a blockage event pushes a
// tracked link over the degrade threshold just like drifting off the
// beam does.
func (m *Manager) effGain(st *station, id sector.ID) float64 {
	g := m.gainToward(st, id)
	if st.blockEpochsLeft > 0 {
		g -= st.blockAttenDB
	}
	return g
}

// synthProbes fills dst with the station's next training round: a random
// M-of-N probing subset swept over the air, each probe passed through
// the firmware measurement model, with any pending fault burst dropping
// a fraction of the reports. dst must have room for m.cfg.probeBudget
// entries. The round's RNG stream is derived from roundSeed through the
// manager's reseedable round RNG and the sample scratch — both reused
// across rounds, both only touched under stepMu (serve synthesizes
// serially; only the estimation fans out).
func (m *Manager) synthProbes(st *station, dst []core.Probe) []core.Probe {
	rng := m.roundRNG
	rng.Reseed(roundSeed(m.cfg.seed, st.id, st.round))
	idx := rng.SampleInto(m.sampleIdx, len(m.txIDs), m.cfg.probeBudget)
	m.sampleIdx = idx[:0]
	// Keep stock sweep order, like dot11ad.SubSweepSchedule.
	sortInts(idx)
	dst = dst[:0]
	for _, j := range idx {
		id := m.txIDs[j]
		pr := core.Probe{Sector: id}
		meas, ok := m.model.Observe(m.trueSNR(st, id), rng)
		if ok && st.faultLossFrac > 0 && rng.Bool(st.faultLossFrac) {
			ok = false
		}
		if ok {
			pr.Meas, pr.OK = meas, true
		}
		dst = append(dst, pr)
	}
	st.faultLossFrac = 0 // the burst hit this round only
	return dst
}

// sortInts is a tiny insertion sort: probe subsets are ≤ 34 entries, so
// this beats sort.Ints' interface overhead on the serve hot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// fallbackSector picks the strongest reported probe — the argmax the
// stock sweep would use — for rounds whose estimation failed. ok is
// false when no probe reported.
func fallbackSector(probes []core.Probe) (sector.ID, bool) {
	best, bestSNR, ok := sector.ID(0), math.Inf(-1), false
	for _, p := range probes {
		if p.OK && p.Meas.SNR > bestSNR {
			best, bestSNR, ok = p.Sector, p.Meas.SNR, true
		}
	}
	return best, ok
}
