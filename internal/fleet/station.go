package fleet

import (
	"math"
	"time"

	"talon/internal/core"
	"talon/internal/sector"
	"talon/internal/stats"
)

// station is the per-link state a shard holds. The struct is deliberately
// small (no retained RNG state, no per-station goroutines) so a million
// stations stay within a couple hundred megabytes; all randomness is
// re-derived per training round from (manager seed, station ID, round).
type station struct {
	id    StationID
	state State

	// Geometry in the AP's pattern frame.
	az, el, dist float64
	// driftDegPerSec moves az every epoch (mobility).
	driftDegPerSec float64

	// Current selection.
	sector     sector.ID
	haveSector bool
	// servedGain is the selected sector's pattern gain toward the
	// station at selection time; the degrade check compares the current
	// gain against it.
	servedGain float64

	// Impairments.
	blockEpochsLeft int
	blockAttenDB    float64
	faultLossFrac   float64 // consumed by the next training round

	// Lifecycle bookkeeping (virtual time).
	arrivedAt    time.Duration
	lastTrainEnd time.Duration
	retrainAt    time.Duration // degraded backoff deadline
	round        uint32        // completed + in-flight training rounds
}

// Snapshot is the externally visible state of one station.
type Snapshot struct {
	ID       StationID
	State    State
	Sector   sector.ID
	HasLink  bool
	AzDeg    float64
	ElDeg    float64
	DistM    float64
	Rounds   uint32
	Degraded bool
}

// roundSeed derives the deterministic RNG seed of st's next training
// round. The stream depends only on (fleet seed, station, round), never
// on shard processing order, so batched selections are reproducible at
// any worker count.
func roundSeed(fleetSeed int64, id StationID, round uint32) int64 {
	h := uint64(fleetSeed) ^ 0x9e3779b97f4a7c15
	h = (h ^ uint64(id)) * 0x100000001b3
	h = (h ^ uint64(round)) * 0x100000001b3
	h ^= h >> 29
	return int64(h)
}

// refDistM anchors the fleet link budget: a station at refDistM with a
// sector of mean peak gain sees cfg.refSNRDB before impairments.
const refDistM = 3.0

// trueSNR returns the noiseless SNR of sector id toward st under the
// fleet's lightweight single-path channel: reference SNR, log-distance
// pathloss, the measured pattern gain toward the station (normalized by
// the codebook's mean peak gain) and any active blockage attenuation.
func (m *Manager) trueSNR(st *station, id sector.ID) float64 {
	p := m.patterns.Get(id)
	if p == nil {
		return math.Inf(-1)
	}
	g := p.At(st.az, st.el)
	if math.IsNaN(g) {
		return math.Inf(-1)
	}
	snr := m.cfg.refSNRDB - 20*math.Log10(st.dist/refDistM) + g - m.gainRef
	if st.blockEpochsLeft > 0 {
		snr -= st.blockAttenDB
	}
	return snr
}

// bestSector returns the transmit sector with the highest pattern gain
// toward st and that gain — the ground-truth optimum the SNR-loss
// distribution is measured against.
func (m *Manager) bestSector(st *station) (sector.ID, float64) {
	best, bestGain := sector.RX, math.Inf(-1)
	for _, id := range m.txIDs {
		g := m.patterns.Get(id).At(st.az, st.el)
		if !math.IsNaN(g) && g > bestGain {
			best, bestGain = id, g
		}
	}
	return best, bestGain
}

// gainToward returns id's pattern gain toward st (math.NaN when the
// pattern has no sample there).
func (m *Manager) gainToward(st *station, id sector.ID) float64 {
	p := m.patterns.Get(id)
	if p == nil {
		return math.NaN()
	}
	return p.At(st.az, st.el)
}

// effGain is gainToward minus any active blockage attenuation — the
// quantity the degrade check watches, so a blockage event pushes a
// tracked link over the degrade threshold just like drifting off the
// beam does.
func (m *Manager) effGain(st *station, id sector.ID) float64 {
	g := m.gainToward(st, id)
	if st.blockEpochsLeft > 0 {
		g -= st.blockAttenDB
	}
	return g
}

// synthProbes fills dst with the station's next training round: a random
// M-of-N probing subset swept over the air, each probe passed through
// the firmware measurement model, with any pending fault burst dropping
// a fraction of the reports. dst must have room for m.cfg.probeBudget
// entries; the round's RNG stream is derived from roundSeed.
func (m *Manager) synthProbes(st *station, dst []core.Probe) []core.Probe {
	rng := stats.NewFastRNG(roundSeed(m.cfg.seed, st.id, st.round))
	idx := rng.Sample(len(m.txIDs), m.cfg.probeBudget)
	// Keep stock sweep order, like dot11ad.SubSweepSchedule.
	sortInts(idx)
	dst = dst[:0]
	for _, j := range idx {
		id := m.txIDs[j]
		pr := core.Probe{Sector: id}
		meas, ok := m.model.Observe(m.trueSNR(st, id), rng)
		if ok && st.faultLossFrac > 0 && rng.Bool(st.faultLossFrac) {
			ok = false
		}
		if ok {
			pr.Meas, pr.OK = meas, true
		}
		dst = append(dst, pr)
	}
	st.faultLossFrac = 0 // the burst hit this round only
	return dst
}

// sortInts is a tiny insertion sort: probe subsets are ≤ 34 entries, so
// this beats sort.Ints' interface overhead on the serve hot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// fallbackSector picks the strongest reported probe — the argmax the
// stock sweep would use — for rounds whose estimation failed. ok is
// false when no probe reported.
func fallbackSector(probes []core.Probe) (sector.ID, bool) {
	best, bestSNR, ok := sector.ID(0), math.Inf(-1), false
	for _, p := range probes {
		if p.OK && p.Meas.SNR > bestSNR {
			best, bestSNR, ok = p.Sector, p.Meas.SNR, true
		}
	}
	return best, ok
}
