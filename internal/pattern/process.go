package pattern

import (
	"errors"
	"math"

	"talon/internal/stats"
)

// Average combines repeated measurement runs of the same sector into one
// pattern by averaging the valid samples per grid point. All patterns must
// share the same grid. Points missing in all runs stay missing.
func Average(runs []*Pattern) (*Pattern, error) {
	if len(runs) == 0 {
		return nil, errors.New("pattern: Average of zero runs")
	}
	g := runs[0].grid
	for _, r := range runs[1:] {
		if !r.grid.Equal(g) {
			return nil, errors.New("pattern: Average over mismatched grids")
		}
	}
	out := New(g)
	for e := 0; e < g.NumEl(); e++ {
		for a := 0; a < g.NumAz(); a++ {
			sum, n := 0.0, 0
			for _, r := range runs {
				if v := r.gain[e][a]; !math.IsNaN(v) {
					sum += v
					n++
				}
			}
			if n > 0 {
				out.gain[e][a] = sum / float64(n)
			}
		}
	}
	return out, nil
}

// RemoveOutliers marks samples as missing when they deviate from the median
// of their azimuth neighbourhood (window samples to each side, within the
// same elevation row) by more than thresh dB. This mirrors the paper's
// "omitted obvious outliers" step. It returns the number of samples
// removed.
func (p *Pattern) RemoveOutliers(window int, thresh float64) int {
	if window < 1 {
		window = 1
	}
	removed := 0
	for e, row := range p.gain {
		orig := append([]float64(nil), row...)
		for a, v := range orig {
			if math.IsNaN(v) {
				continue
			}
			lo, hi := a-window, a+window
			if lo < 0 {
				lo = 0
			}
			if hi >= len(orig) {
				hi = len(orig) - 1
			}
			neigh := make([]float64, 0, hi-lo)
			for i := lo; i <= hi; i++ {
				if i != a && !math.IsNaN(orig[i]) {
					neigh = append(neigh, orig[i])
				}
			}
			if len(neigh) == 0 {
				continue
			}
			if math.Abs(v-stats.Median(neigh)) > thresh {
				p.gain[e][a] = math.NaN()
				removed++
			}
		}
	}
	return removed
}

// FillGaps linearly interpolates missing samples along each azimuth row,
// mirroring the paper's "interpolated over gaps where we could not capture
// any frames". Gaps at row edges are extended from the nearest valid
// sample. Rows without any valid sample are filled with floor. It returns
// the number of samples filled.
func (p *Pattern) FillGaps(floor float64) int {
	filled := 0
	for _, row := range p.gain {
		filled += fillRow(row, floor)
	}
	return filled
}

func fillRow(row []float64, floor float64) int {
	n := len(row)
	valid := make([]int, 0, n)
	for i, v := range row {
		if !math.IsNaN(v) {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		for i := range row {
			row[i] = floor
		}
		return n
	}
	filled := 0
	// Leading edge.
	for i := 0; i < valid[0]; i++ {
		row[i] = row[valid[0]]
		filled++
	}
	// Interior gaps.
	for k := 0; k+1 < len(valid); k++ {
		lo, hi := valid[k], valid[k+1]
		for i := lo + 1; i < hi; i++ {
			t := float64(i-lo) / float64(hi-lo)
			row[i] = stats.Lerp(row[lo], row[hi], t)
			filled++
		}
	}
	// Trailing edge.
	last := valid[len(valid)-1]
	for i := last + 1; i < n; i++ {
		row[i] = row[last]
		filled++
	}
	return filled
}

// Clamp limits all valid samples to [lo, hi].
func (p *Pattern) Clamp(lo, hi float64) {
	for _, row := range p.gain {
		for i, v := range row {
			switch {
			case math.IsNaN(v):
			case v < lo:
				row[i] = lo
			case v > hi:
				row[i] = hi
			}
		}
	}
}

// Offset adds d dB to every valid sample.
func (p *Pattern) Offset(d float64) {
	for _, row := range p.gain {
		for i, v := range row {
			if !math.IsNaN(v) {
				row[i] = v + d
			}
		}
	}
}
