package pattern

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"talon/internal/sector"
)

func buildTestSet(t testing.TB) *Set {
	t.Helper()
	g := mustGrid(t, -90, 90, 5, 0, 30, 10)
	s := NewSet()
	mk := func(id sector.ID, peakAz, peakEl float64) {
		p := FromFunc(g, func(az, el float64) float64 {
			return 12 - math.Hypot(az-peakAz, (el-peakEl)*2)/8
		})
		if err := s.Put(id, p); err != nil {
			t.Fatal(err)
		}
	}
	mk(1, -45, 0)
	mk(2, 0, 10)
	mk(3, 45, 0)
	mk(sector.RX, 0, 0)
	return s
}

func TestSetPutGet(t *testing.T) {
	s := buildTestSet(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Get(1) == nil || s.Get(9) != nil {
		t.Fatal("Get wrong")
	}
	if err := s.Put(5, nil); err == nil {
		t.Fatal("Put(nil) accepted")
	}
	other := mustGrid(t, 0, 1, 1, 0, 0, 1)
	if err := s.Put(5, New(other)); err == nil {
		t.Fatal("Put with mismatched grid accepted")
	}
}

func TestSetIDsSorted(t *testing.T) {
	s := buildTestSet(t)
	ids := s.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs not ascending: %v", ids)
		}
	}
	tx := s.TXIDs()
	if len(tx) != 3 {
		t.Fatalf("TXIDs = %v", tx)
	}
	for _, id := range tx {
		if id == sector.RX {
			t.Fatal("TXIDs contains RX")
		}
	}
}

func TestGainVector(t *testing.T) {
	s := buildTestSet(t)
	v := s.GainVector([]sector.ID{1, 2, 9}, -45, 0)
	if math.IsNaN(v[0]) || math.IsNaN(v[1]) {
		t.Fatal("valid sectors gave NaN")
	}
	if !math.IsNaN(v[2]) {
		t.Fatal("missing sector did not give NaN")
	}
	if v[0] <= v[1] {
		t.Fatalf("sector 1 should dominate at its own peak: %v", v)
	}
}

func TestBestSector(t *testing.T) {
	s := buildTestSet(t)
	cases := []struct {
		az, el float64
		want   sector.ID
	}{
		{-45, 0, 1}, {0, 10, 2}, {45, 0, 3},
	}
	for _, c := range cases {
		id, gain := s.BestSector(c.az, c.el)
		if id != c.want {
			t.Errorf("BestSector(%v, %v) = %v, want %v", c.az, c.el, id, c.want)
		}
		if math.IsNaN(gain) {
			t.Errorf("BestSector gain NaN")
		}
	}
	empty := NewSet()
	if id, gain := empty.BestSector(0, 0); id != sector.RX || !math.IsNaN(gain) {
		t.Fatalf("empty BestSector = (%v, %v)", id, gain)
	}
}

func TestBestSectorIsArgmaxProperty(t *testing.T) {
	s := buildTestSet(t)
	f := func(az, el float64) bool {
		az = math.Mod(az, 90)
		el = math.Abs(math.Mod(el, 30))
		if math.IsNaN(az) || math.IsNaN(el) {
			return true
		}
		id, gain := s.BestSector(az, el)
		for _, other := range s.TXIDs() {
			if g := s.Get(other).At(az, el); g > gain+1e-9 {
				return false
			}
		}
		return id != sector.RX
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := buildTestSet(t)
	// Punch a NaN hole to exercise missing-sample encoding.
	s.Get(1).Set(0, 0, math.NaN())
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, s, got)
}

func TestBinaryRoundTrip(t *testing.T) {
	s := buildTestSet(t)
	s.Get(2).Set(3, 1, math.NaN())
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, s, got)
}

func assertSetsEqual(t *testing.T, want, got *Set) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for _, id := range want.IDs() {
		wp, gp := want.Get(id), got.Get(id)
		if gp == nil {
			t.Fatalf("sector %v missing after round trip", id)
		}
		if !wp.Grid().Equal(gp.Grid()) {
			t.Fatalf("sector %v grid mismatch", id)
		}
		for e := 0; e < wp.Grid().NumEl(); e++ {
			for a := 0; a < wp.Grid().NumAz(); a++ {
				w, g := wp.AtIndex(a, e), gp.AtIndex(a, e)
				if math.IsNaN(w) != math.IsNaN(g) {
					t.Fatalf("sector %v NaN mismatch at (%d,%d)", id, a, e)
				}
				if !math.IsNaN(w) && math.Abs(w-g) > 1e-12 {
					t.Fatalf("sector %v value mismatch at (%d,%d): %v vs %v", id, a, e, w, g)
				}
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"bad header": "foo,bar\n",
		"bad fields": "sector,az,el,gain\n1,2,3\n",
		"bad sector": "sector,az,el,gain\nxx,0,0,1\n",
		"bad gain":   "sector,az,el,gain\n1,0,0,zz\n",
	} {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: ReadCSV succeeded", name)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("NOTMAGIC")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input accepted")
	}
	var buf bytes.Buffer
	if err := NewSet().WriteBinary(&buf); err == nil {
		t.Fatal("WriteBinary on empty set succeeded")
	}
}

func TestSetClone(t *testing.T) {
	s := buildTestSet(t)
	c := s.Clone()
	c.Get(1).Set(0, 0, -99)
	if s.Get(1).AtIndex(0, 0) == -99 {
		t.Fatal("Clone shares pattern storage")
	}
}
