package pattern

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"talon/internal/geom"
	"talon/internal/sector"
)

// The on-disk formats:
//
//   - CSV: one header row "sector,az,el,gain" followed by one row per stored
//     sample. Missing samples are written as "nan". Human-inspectable and
//     matches the per-sample layout of the published talon-tools traces.
//   - Binary: a compact little-endian format for fast loading, with magic
//     "TALONPAT", version, grid axes and per-sector sample blocks.

// WriteCSV writes the set in CSV form.
func (s *Set) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "sector,az,el,gain"); err != nil {
		return err
	}
	for _, id := range s.IDs() {
		p := s.patterns[id]
		for e, el := range p.grid.El() {
			for a, az := range p.grid.Az() {
				v := p.gain[e][a]
				var vs string
				if math.IsNaN(v) {
					vs = "nan"
				} else {
					vs = strconv.FormatFloat(v, 'g', -1, 64)
				}
				if _, err := fmt.Fprintf(bw, "%d,%s,%s,%s\n", uint8(id),
					strconv.FormatFloat(az, 'g', -1, 64),
					strconv.FormatFloat(el, 'g', -1, 64), vs); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses a set written by WriteCSV. All sectors must share one
// grid; the grid is inferred from the distinct az/el values of the first
// sector block.
func ReadCSV(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("pattern: empty CSV input")
	}
	if got := strings.TrimSpace(sc.Text()); got != "sector,az,el,gain" {
		return nil, fmt.Errorf("pattern: unexpected CSV header %q", got)
	}
	type sample struct {
		az, el, v float64
	}
	bySector := make(map[sector.ID][]sample)
	var order []sector.ID
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("pattern: CSV line %d: want 4 fields, got %d", line, len(parts))
		}
		idn, err := strconv.ParseUint(parts[0], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("pattern: CSV line %d: sector: %w", line, err)
		}
		az, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("pattern: CSV line %d: az: %w", line, err)
		}
		el, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("pattern: CSV line %d: el: %w", line, err)
		}
		var v float64
		if parts[3] == "nan" {
			v = math.NaN()
		} else if v, err = strconv.ParseFloat(parts[3], 64); err != nil {
			return nil, fmt.Errorf("pattern: CSV line %d: gain: %w", line, err)
		}
		id := sector.ID(idn)
		if _, seen := bySector[id]; !seen {
			order = append(order, id)
		}
		bySector[id] = append(bySector[id], sample{az, el, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("pattern: CSV has no samples")
	}

	azSet := map[float64]bool{}
	elSet := map[float64]bool{}
	for _, sm := range bySector[order[0]] {
		azSet[sm.az] = true
		elSet[sm.el] = true
	}
	grid, err := geom.NewGrid(sortedKeys(azSet), sortedKeys(elSet))
	if err != nil {
		return nil, err
	}
	set := NewSet()
	for _, id := range order {
		p := New(grid)
		for _, sm := range bySector[id] {
			a := geom.Nearest(grid.Az(), sm.az)
			e := geom.Nearest(grid.El(), sm.el)
			p.gain[e][a] = sm.v
		}
		if err := set.Put(id, p); err != nil {
			return nil, err
		}
	}
	return set, nil
}

func sortedKeys(m map[float64]bool) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

const (
	binaryMagic   = "TALONPAT"
	binaryVersion = 1
)

// WriteBinary writes the set in the compact binary format.
func (s *Set) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var grid *geom.Grid
	if p := s.anyPattern(); p != nil {
		grid = p.grid
	}
	if grid == nil {
		return fmt.Errorf("pattern: WriteBinary on empty set")
	}
	hdr := []uint32{binaryVersion, uint32(grid.NumAz()), uint32(grid.NumEl()), uint32(s.Len())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	writeAxis := func(axis []float64) error {
		return binary.Write(bw, binary.LittleEndian, axis)
	}
	if err := writeAxis(grid.Az()); err != nil {
		return err
	}
	if err := writeAxis(grid.El()); err != nil {
		return err
	}
	for _, id := range s.IDs() {
		if err := bw.WriteByte(byte(id)); err != nil {
			return err
		}
		p := s.patterns[id]
		for _, row := range p.gain {
			if err := binary.Write(bw, binary.LittleEndian, row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a set written by WriteBinary.
func ReadBinary(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("pattern: binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("pattern: bad magic %q", magic)
	}
	var version, numAz, numEl, numSectors uint32
	for _, p := range []*uint32{&version, &numAz, &numEl, &numSectors} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("pattern: unsupported version %d", version)
	}
	const maxAxis = 1 << 20
	if numAz == 0 || numEl == 0 || numAz > maxAxis || numEl > maxAxis || numSectors > uint32(sector.MaxID)+1 {
		return nil, fmt.Errorf("pattern: implausible header (az=%d el=%d sectors=%d)", numAz, numEl, numSectors)
	}
	az := make([]float64, numAz)
	el := make([]float64, numEl)
	if err := binary.Read(br, binary.LittleEndian, az); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, el); err != nil {
		return nil, err
	}
	grid, err := geom.NewGrid(az, el)
	if err != nil {
		return nil, err
	}
	set := NewSet()
	for i := uint32(0); i < numSectors; i++ {
		idb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		p := New(grid)
		for e := range p.gain {
			if err := binary.Read(br, binary.LittleEndian, p.gain[e]); err != nil {
				return nil, err
			}
		}
		if err := set.Put(sector.ID(idb), p); err != nil {
			return nil, err
		}
	}
	return set, nil
}
