package pattern

import (
	"fmt"
	"math"
	"sort"

	"talon/internal/geom"
	"talon/internal/sector"
)

// Set maps sector IDs to their measured patterns. All patterns in a set
// share one grid. A Set is the "codebook knowledge" the compressive
// selection algorithm consumes.
type Set struct {
	patterns map[sector.ID]*Pattern
}

// NewSet returns an empty pattern set.
func NewSet() *Set { return &Set{patterns: make(map[sector.ID]*Pattern)} }

// Put stores the pattern for id, replacing any previous one. The first
// pattern fixes the grid; later patterns must share it.
func (s *Set) Put(id sector.ID, p *Pattern) error {
	if p == nil {
		return fmt.Errorf("pattern: nil pattern for sector %v", id)
	}
	if len(s.patterns) > 0 {
		if g := s.anyPattern().grid; !g.Equal(p.grid) {
			return fmt.Errorf("pattern: sector %v grid differs from set grid", id)
		}
	}
	s.patterns[id] = p
	return nil
}

func (s *Set) anyPattern() *Pattern {
	for _, p := range s.patterns {
		return p
	}
	return nil
}

// Get returns the pattern for id, or nil if absent.
func (s *Set) Get(id sector.ID) *Pattern { return s.patterns[id] }

// Grid returns the sampling grid shared by every pattern in the set, or
// nil when the set is empty.
func (s *Set) Grid() *geom.Grid {
	if p := s.anyPattern(); p != nil {
		return p.grid
	}
	return nil
}

// Len returns the number of stored patterns.
func (s *Set) Len() int { return len(s.patterns) }

// IDs returns the stored sector IDs in ascending numeric order.
func (s *Set) IDs() []sector.ID {
	out := make([]sector.ID, 0, len(s.patterns))
	for id := range s.patterns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TXIDs returns the stored transmit sector IDs (everything except the RX
// pseudo-sector), ascending.
func (s *Set) TXIDs() []sector.ID {
	out := make([]sector.ID, 0, len(s.patterns))
	for id := range s.patterns {
		if id != sector.RX {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GainVector evaluates the patterns of ids at direction (az, el) and
// returns the gains, in the order of ids. Missing patterns or samples yield
// NaN entries.
func (s *Set) GainVector(ids []sector.ID, az, el float64) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		p := s.patterns[id]
		if p == nil {
			out[i] = math.NaN()
			continue
		}
		out[i] = p.At(az, el)
	}
	return out
}

// BestSector returns the stored transmit sector whose pattern has the
// highest gain toward (az, el), implementing Eq. 4 of the paper, along with
// that gain. It returns (sector.RX, NaN) if the set holds no usable TX
// pattern.
func (s *Set) BestSector(az, el float64) (sector.ID, float64) {
	best, bestGain := sector.RX, math.Inf(-1)
	found := false
	for _, id := range s.TXIDs() {
		g := s.patterns[id].At(az, el)
		if math.IsNaN(g) {
			continue
		}
		if g > bestGain {
			best, bestGain = id, g
			found = true
		}
	}
	if !found {
		return sector.RX, math.NaN()
	}
	return best, bestGain
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := NewSet()
	for id, p := range s.patterns {
		out.patterns[id] = p.Clone()
	}
	return out
}
