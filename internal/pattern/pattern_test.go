package pattern

import (
	"math"
	"testing"
	"testing/quick"

	"talon/internal/geom"
)

func mustGrid(t testing.TB, azMin, azMax, azStep, elMin, elMax, elStep float64) *geom.Grid {
	t.Helper()
	g, err := geom.UniformGrid(azMin, azMax, azStep, elMin, elMax, elStep)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewAllMissing(t *testing.T) {
	g := mustGrid(t, -10, 10, 5, 0, 10, 5)
	p := New(g)
	if p.Missing() != g.Size() {
		t.Fatalf("Missing = %d, want %d", p.Missing(), g.Size())
	}
	if !math.IsNaN(p.At(0, 0)) {
		t.Fatal("At on empty pattern not NaN")
	}
	az, el, gain := p.Peak()
	if !math.IsNaN(az) || !math.IsNaN(el) || !math.IsNaN(gain) {
		t.Fatal("Peak on empty pattern not NaN")
	}
}

func TestFromFuncAndAt(t *testing.T) {
	g := mustGrid(t, -10, 10, 1, -5, 5, 1)
	// A linear field is reproduced exactly by bilinear interpolation.
	f := func(az, el float64) float64 { return 2*az + 3*el + 1 }
	p := FromFunc(g, f)
	for _, c := range []struct{ az, el float64 }{
		{0, 0}, {-10, -5}, {10, 5}, {1.5, 2.25}, {-7.3, 4.9},
	} {
		want := f(c.az, c.el)
		if got := p.At(c.az, c.el); math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%v, %v) = %v, want %v", c.az, c.el, got, want)
		}
	}
}

func TestAtClampsOutside(t *testing.T) {
	g := mustGrid(t, -10, 10, 1, 0, 5, 1)
	p := FromFunc(g, func(az, el float64) float64 { return az + el })
	if got := p.At(-50, 2); got != p.At(-10, 2) {
		t.Fatalf("clamp left: %v vs %v", got, p.At(-10, 2))
	}
	if got := p.At(50, 7); got != p.At(10, 5) {
		t.Fatalf("clamp corner: %v", got)
	}
}

func TestAtNearMissing(t *testing.T) {
	g := mustGrid(t, 0, 1, 1, 0, 1, 1)
	p := New(g)
	p.Set(0, 0, 5) // only corner (az=0, el=0) valid
	if got := p.At(0.1, 0.1); got != 5 {
		t.Fatalf("nearest-valid fallback = %v, want 5", got)
	}
	if got := p.At(0.9, 0.9); got != 5 {
		t.Fatalf("nearest-valid fallback far corner = %v, want 5", got)
	}
}

func TestPeak(t *testing.T) {
	g := mustGrid(t, -90, 90, 1, 0, 30, 5)
	p := FromFunc(g, func(az, el float64) float64 {
		return -math.Pow(az-42, 2)/100 - math.Pow(el-10, 2)/10
	})
	az, el, gain := p.Peak()
	if az != 42 || el != 10 {
		t.Fatalf("Peak at (%v, %v), want (42, 10)", az, el)
	}
	if gain != 0 {
		t.Fatalf("Peak gain = %v", gain)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustGrid(t, 0, 2, 1, 0, 0, 1)
	p := FromFunc(g, func(az, el float64) float64 { return az })
	q := p.Clone()
	q.Set(0, 0, 99)
	if p.AtIndex(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	if p.Grid() != q.Grid() {
		t.Fatal("Clone should share the immutable grid")
	}
}

func TestDirectivityAndStats(t *testing.T) {
	g := mustGrid(t, -90, 90, 1, 0, 0, 1)
	flat := FromFunc(g, func(az, el float64) float64 { return 3 })
	if d := flat.Directivity(); d != 0 {
		t.Fatalf("flat directivity = %v", d)
	}
	peaky := FromFunc(g, func(az, el float64) float64 {
		if az == 0 {
			return 20
		}
		return 0
	})
	if d := peaky.Directivity(); d < 15 {
		t.Fatalf("peaky directivity = %v", d)
	}
	if m := flat.MeanGain(); m != 3 {
		t.Fatalf("MeanGain = %v", m)
	}
	if m := flat.MaxGain(); m != 3 {
		t.Fatalf("MaxGain = %v", m)
	}
}

func TestAzimuthCut(t *testing.T) {
	g := mustGrid(t, -10, 10, 10, 0, 20, 10)
	p := FromFunc(g, func(az, el float64) float64 { return el })
	cut := p.AzimuthCut(11)
	for _, v := range cut {
		if v != 10 {
			t.Fatalf("AzimuthCut(11) row = %v, want all 10", cut)
		}
	}
}

func TestOffsetClamp(t *testing.T) {
	g := mustGrid(t, 0, 4, 1, 0, 0, 1)
	p := FromFunc(g, func(az, el float64) float64 { return az })
	p.Set(2, 0, math.NaN())
	p.Offset(10)
	if got := p.AtIndex(0, 0); got != 10 {
		t.Fatalf("Offset: %v", got)
	}
	if !math.IsNaN(p.AtIndex(2, 0)) {
		t.Fatal("Offset touched NaN")
	}
	p.Clamp(11, 12)
	if got := p.AtIndex(0, 0); got != 11 {
		t.Fatalf("Clamp lo: %v", got)
	}
	if got := p.AtIndex(4, 0); got != 12 {
		t.Fatalf("Clamp hi: %v", got)
	}
}

func TestBilinearWithinBoundsProperty(t *testing.T) {
	g := mustGrid(t, -30, 30, 3, 0, 30, 3)
	p := FromFunc(g, func(az, el float64) float64 { return math.Sin(az/10) + math.Cos(el/10) })
	lo, hi := math.Inf(1), math.Inf(-1)
	for e := 0; e < g.NumEl(); e++ {
		for a := 0; a < g.NumAz(); a++ {
			v := p.AtIndex(a, e)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	f := func(az, el float64) bool {
		az = math.Mod(math.Abs(az), 60) - 30
		el = math.Mod(math.Abs(el), 30)
		if math.IsNaN(az) || math.IsNaN(el) {
			return true
		}
		v := p.At(az, el)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
