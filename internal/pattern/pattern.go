// Package pattern represents measured antenna radiation patterns: gain (or
// SNR) values sampled on an azimuth × elevation grid, exactly as produced by
// the paper's anechoic-chamber campaign.
//
// Samples may be missing (encoded as NaN) where no frame was decodable; the
// package provides the same post-processing the paper applies before using
// patterns: outlier removal, gap interpolation and averaging over repeated
// measurement runs. Lookup between grid points uses bilinear interpolation.
package pattern

import (
	"fmt"
	"math"

	"talon/internal/geom"
)

// Pattern is a gain map over a geom.Grid. Values are in dB (the paper
// stores SNR in dB; only relative shape matters for correlation). Missing
// samples are NaN.
type Pattern struct {
	grid *geom.Grid
	// gain[e][a] holds the value at elevation index e, azimuth index a.
	gain [][]float64
}

// New creates a pattern on grid with all samples missing (NaN).
func New(grid *geom.Grid) *Pattern {
	p := &Pattern{grid: grid, gain: make([][]float64, grid.NumEl())}
	for e := range p.gain {
		row := make([]float64, grid.NumAz())
		for a := range row {
			row[a] = math.NaN()
		}
		p.gain[e] = row
	}
	return p
}

// FromFunc samples f(az, el) on every grid point.
func FromFunc(grid *geom.Grid, f func(az, el float64) float64) *Pattern {
	p := New(grid)
	for e, el := range grid.El() {
		for a, az := range grid.Az() {
			p.gain[e][a] = f(az, el)
		}
	}
	return p
}

// Grid returns the sampling grid.
func (p *Pattern) Grid() *geom.Grid { return p.grid }

// Set stores v at the grid indices (azIdx, elIdx).
func (p *Pattern) Set(azIdx, elIdx int, v float64) { p.gain[elIdx][azIdx] = v }

// AtIndex returns the raw sample at the grid indices (azIdx, elIdx).
func (p *Pattern) AtIndex(azIdx, elIdx int) float64 { return p.gain[elIdx][azIdx] }

// Flat returns a copy of the samples in elevation-major order: the sample
// at (azIdx, elIdx) lands at index elIdx*NumAz()+azIdx. Missing samples
// stay NaN. The flat layout feeds precomputed correlation dictionaries.
func (p *Pattern) Flat() []float64 {
	numAz := p.grid.NumAz()
	out := make([]float64, numAz*p.grid.NumEl())
	for e, row := range p.gain {
		copy(out[e*numAz:], row)
	}
	return out
}

// At returns the bilinearly interpolated value at (az, el) degrees.
// Coordinates outside the grid are clamped to its edges. If any of the four
// surrounding samples is missing, the nearest valid neighbour among them is
// used; if all are missing the result is NaN.
func (p *Pattern) At(az, el float64) float64 {
	ai, at := geom.Bracket(p.grid.Az(), az)
	ei, et := geom.Bracket(p.grid.El(), el)
	a2, e2 := ai, ei
	if p.grid.NumAz() > 1 {
		a2 = ai + 1
	}
	if p.grid.NumEl() > 1 {
		e2 = ei + 1
	}
	v00 := p.gain[ei][ai]
	v01 := p.gain[ei][a2]
	v10 := p.gain[e2][ai]
	v11 := p.gain[e2][a2]
	if hasNaN(v00, v01, v10, v11) {
		return nearestValid(at, et, v00, v01, v10, v11)
	}
	lo := v00*(1-at) + v01*at
	hi := v10*(1-at) + v11*at
	return lo*(1-et) + hi*et
}

func hasNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// nearestValid picks the valid corner closest (in parameter space) to the
// query point (at, et).
func nearestValid(at, et float64, v00, v01, v10, v11 float64) float64 {
	type corner struct {
		a, e float64
		v    float64
	}
	corners := []corner{
		{0, 0, v00}, {1, 0, v01}, {0, 1, v10}, {1, 1, v11},
	}
	best, bestDist := math.NaN(), math.Inf(1)
	for _, c := range corners {
		if math.IsNaN(c.v) {
			continue
		}
		d := (c.a-at)*(c.a-at) + (c.e-et)*(c.e-et)
		if d < bestDist {
			best, bestDist = c.v, d
		}
	}
	return best
}

// Peak returns the grid point with the maximum valid sample, and its value.
// It returns NaN coordinates if the pattern has no valid sample.
func (p *Pattern) Peak() (az, el, gain float64) {
	az, el, gain = math.NaN(), math.NaN(), math.Inf(-1)
	found := false
	for e, elv := range p.grid.El() {
		for a, azv := range p.grid.Az() {
			v := p.gain[e][a]
			if !math.IsNaN(v) && v > gain {
				az, el, gain = azv, elv, v
				found = true
			}
		}
	}
	if !found {
		return math.NaN(), math.NaN(), math.NaN()
	}
	return az, el, gain
}

// Missing returns the number of missing (NaN) samples.
func (p *Pattern) Missing() int {
	n := 0
	for _, row := range p.gain {
		for _, v := range row {
			if math.IsNaN(v) {
				n++
			}
		}
	}
	return n
}

// Clone returns a deep copy of the pattern (sharing the immutable grid).
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{grid: p.grid, gain: make([][]float64, len(p.gain))}
	for e, row := range p.gain {
		q.gain[e] = append([]float64(nil), row...)
	}
	return q
}

// MaxGain returns the maximum valid sample value, or NaN when empty.
func (p *Pattern) MaxGain() float64 {
	_, _, g := p.Peak()
	return g
}

// MeanGain returns the mean over valid samples, or NaN when empty.
func (p *Pattern) MeanGain() float64 {
	sum, n := 0.0, 0
	for _, row := range p.gain {
		for _, v := range row {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Directivity is a crude shape metric: peak minus mean gain in dB. High
// values indicate a strongly directional sector, values near zero a flat
// (quasi-omni) one.
func (p *Pattern) Directivity() float64 { return p.MaxGain() - p.MeanGain() }

// AzimuthCut returns the gain row at the elevation sample nearest to el.
// The returned slice must not be modified.
func (p *Pattern) AzimuthCut(el float64) []float64 {
	return p.gain[geom.Nearest(p.grid.El(), el)]
}

// String implements fmt.Stringer with a short summary.
func (p *Pattern) String() string {
	az, el, g := p.Peak()
	return fmt.Sprintf("pattern %dx%d peak %.1f dB @ (%.1f°, %.1f°), %d missing",
		p.grid.NumAz(), p.grid.NumEl(), g, az, el, p.Missing())
}
