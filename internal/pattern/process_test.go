package pattern

import (
	"math"
	"testing"
)

func TestAverage(t *testing.T) {
	g := mustGrid(t, 0, 2, 1, 0, 0, 1)
	a := FromFunc(g, func(az, el float64) float64 { return 1 })
	b := FromFunc(g, func(az, el float64) float64 { return 3 })
	b.Set(1, 0, math.NaN()) // point missing in one run
	avg, err := Average([]*Pattern{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := avg.AtIndex(0, 0); got != 2 {
		t.Fatalf("avg[0] = %v, want 2", got)
	}
	if got := avg.AtIndex(1, 0); got != 1 {
		t.Fatalf("avg over single valid run = %v, want 1", got)
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average(nil); err == nil {
		t.Fatal("Average(nil) succeeded")
	}
	g1 := mustGrid(t, 0, 2, 1, 0, 0, 1)
	g2 := mustGrid(t, 0, 3, 1, 0, 0, 1)
	if _, err := Average([]*Pattern{New(g1), New(g2)}); err == nil {
		t.Fatal("Average over mismatched grids succeeded")
	}
}

func TestAverageAllMissingStaysMissing(t *testing.T) {
	g := mustGrid(t, 0, 1, 1, 0, 0, 1)
	avg, err := Average([]*Pattern{New(g), New(g)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(avg.AtIndex(0, 0)) {
		t.Fatal("all-missing point became valid")
	}
}

func TestRemoveOutliers(t *testing.T) {
	g := mustGrid(t, 0, 20, 1, 0, 0, 1)
	p := FromFunc(g, func(az, el float64) float64 { return 5 })
	p.Set(10, 0, 25) // an obvious spike
	removed := p.RemoveOutliers(3, 6)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if !math.IsNaN(p.AtIndex(10, 0)) {
		t.Fatal("outlier not marked missing")
	}
	// Smooth data must survive.
	q := FromFunc(g, func(az, el float64) float64 { return az / 4 })
	if removed := q.RemoveOutliers(3, 6); removed != 0 {
		t.Fatalf("smooth data lost %d samples", removed)
	}
}

func TestFillGaps(t *testing.T) {
	g := mustGrid(t, 0, 4, 1, 0, 0, 1)
	p := New(g)
	p.Set(1, 0, 10)
	p.Set(3, 0, 20)
	filled := p.FillGaps(-7)
	if filled != 3 {
		t.Fatalf("filled = %d, want 3", filled)
	}
	if got := p.AtIndex(0, 0); got != 10 {
		t.Fatalf("leading edge = %v, want 10", got)
	}
	if got := p.AtIndex(2, 0); got != 15 {
		t.Fatalf("interior = %v, want 15", got)
	}
	if got := p.AtIndex(4, 0); got != 20 {
		t.Fatalf("trailing edge = %v, want 20", got)
	}
	if p.Missing() != 0 {
		t.Fatalf("still missing %d", p.Missing())
	}
}

func TestFillGapsEmptyRow(t *testing.T) {
	g := mustGrid(t, 0, 2, 1, 0, 1, 1)
	p := New(g)
	p.Set(0, 1, 3) // second row has data, first does not
	p.FillGaps(-7)
	if got := p.AtIndex(1, 0); got != -7 {
		t.Fatalf("empty row filled with %v, want floor -7", got)
	}
	if got := p.AtIndex(2, 1); got != 3 {
		t.Fatalf("valid row edge = %v, want 3", got)
	}
}

func TestCampaignPipeline(t *testing.T) {
	// Outlier removal then gap filling must restore a smooth pattern.
	g := mustGrid(t, -90, 90, 1.8, 0, 0, 1)
	truth := func(az, el float64) float64 { return 12 * math.Exp(-az*az/800) }
	p := FromFunc(g, truth)
	p.Set(30, 0, 80)         // spike
	p.Set(60, 0, math.NaN()) // miss
	p.Set(61, 0, math.NaN()) // miss
	if p.RemoveOutliers(4, 8) != 1 {
		t.Fatal("spike not removed")
	}
	p.FillGaps(-7)
	if p.Missing() != 0 {
		t.Fatal("gaps remain")
	}
	for a, az := range g.Az() {
		if diff := math.Abs(p.AtIndex(a, 0) - truth(az, 0)); diff > 1.5 {
			t.Fatalf("restored pattern off by %v dB at az %v", diff, az)
		}
	}
}
