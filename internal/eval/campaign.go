package eval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"talon/internal/core"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/tracestore"
)

// The campaign link budget mirrors the fleet simulator's lightweight
// single-path channel: a station at the reference distance on a sector
// of mean peak gain sees the reference SNR before impairments.
const (
	campaignRefSNRDB = 16.0
	campaignRefDistM = 3.0
)

// selFailedSector marks a trial whose record-time selection hard-errored
// (sector IDs are 6-bit on this hardware, so 0xFF is never a real ID).
const selFailedSector = sector.ID(0xFF)

// CampaignConfig parameterizes the out-of-core record/replay campaign.
type CampaignConfig struct {
	// Dir is the shard directory, Base the shard file basename
	// (defaults "campaign-shards" and "campaign").
	Dir  string `json:"dir"`
	Base string `json:"base"`
	// Trials is the campaign size (default 20000). Each trial draws an
	// independent channel state and probing subset from its own seed.
	Trials int `json:"trials"`
	// M is the probe budget per trial (default 14).
	M int `json:"m"`
	// SeedStart is the first trial seed; trial i uses SeedStart+i
	// (default 1).
	SeedStart uint64 `json:"seed_start"`
	// SplitSeed divides in-sample from out-of-sample trials: seeds below
	// it are in-sample. It must fall on a shard boundary; the default is
	// the largest boundary at or below 80% of the campaign.
	SplitSeed uint64 `json:"split_seed"`
	// RecordsPerShard and BlockRecords shape the trace store layout
	// (defaults: an eighth of the campaign per shard, 2048-record
	// blocks).
	RecordsPerShard int `json:"records_per_shard"`
	BlockRecords    int `json:"block_records"`
	// Workers bounds record-time batch selection and replay-time shard
	// fan-out (default Parallelism()). It is an execution detail, not
	// part of the campaign's identity, so it is excluded from the
	// scorecard JSON — the artifact must be byte-identical at any
	// worker count.
	Workers int `json:"-"`
	// MappedIO replays through memory-mapped shard readers
	// (tracestore.ReplayShardsMapped). Like Workers it only shapes
	// execution — the records, and so the scorecard bytes, are
	// identical on either read path — so it too stays out of the JSON.
	MappedIO bool `json:"-"`
}

func (c *CampaignConfig) defaults() {
	if c.Dir == "" {
		c.Dir = "campaign-shards"
	}
	if c.Base == "" {
		c.Base = "campaign"
	}
	if c.Trials <= 0 {
		c.Trials = 20000
	}
	if c.M <= 0 {
		c.M = 14
	}
	if c.SeedStart == 0 {
		c.SeedStart = 1
	}
	if c.RecordsPerShard <= 0 {
		c.RecordsPerShard = (c.Trials + 7) / 8
	}
	if c.BlockRecords <= 0 {
		c.BlockRecords = 2048
	}
	if c.Workers <= 0 {
		c.Workers = Parallelism()
	}
	if c.SplitSeed == 0 {
		rps := uint64(c.RecordsPerShard)
		c.SplitSeed = c.SeedStart + uint64(c.Trials)*4/5/rps*rps
	}
}

// codebookGainRef returns the codebook's mean peak gain, the
// normalization anchor of the campaign link budget (see fleet's
// equivalent).
func codebookGainRef(set *pattern.Set) float64 {
	ids := set.TXIDs()
	sum := 0.0
	for _, id := range ids {
		_, _, peak := set.Get(id).Peak()
		sum += peak
	}
	return sum / float64(len(ids))
}

// campaignTrueSNR is the noiseless SNR of one sector toward the trial's
// channel state. linkSNR already folds in the distance pathloss; atten
// models an omnidirectional blockage.
func campaignTrueSNR(p *pattern.Pattern, az, el, linkSNR, atten, gainRef float64) float64 {
	if p == nil {
		return math.Inf(-1)
	}
	g := p.At(az, el)
	if math.IsNaN(g) {
		return math.Inf(-1)
	}
	return linkSNR + g - gainRef - atten
}

// campaignSeed whitens a trial seed so consecutive trials start their
// SplitMix64 streams far apart.
func campaignSeed(seed uint64) int64 {
	h := seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int64(h)
}

// RecordCampaign draws cfg.Trials independent channel states, synthesizes
// the probe measurements each trial's compressive training would see,
// runs the record-time selection and streams everything into seeded
// trace-store shards under cfg.Dir. Stale shards of the same basename are
// removed first, so the directory afterwards holds exactly this
// campaign. Every quantity the replay consumes is rounded through the
// store's float32 columns *before* the record-time selection, so a
// replay recomputes bit-identical selections (drift 0).
func RecordCampaign(ctx context.Context, p *Platform, cfg CampaignConfig) ([]tracestore.Shard, error) {
	cfg.defaults()
	stale, err := filepath.Glob(filepath.Join(cfg.Dir, cfg.Base+"-*.bin"))
	if err != nil {
		return nil, err
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil {
			return nil, err
		}
	}
	codec, err := tracestore.NewTrialCodec(cfg.M)
	if err != nil {
		return nil, err
	}
	w, err := tracestore.NewWriter(codec, cfg.Dir, cfg.Base, tracestore.WriterOptions{
		RecordsPerShard: cfg.RecordsPerShard,
		BlockRecords:    cfg.BlockRecords,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	txIDs := p.Patterns.TXIDs()
	gainRef := codebookGainRef(p.Patterns)
	model := radio.DefaultMeasurementModel()

	// Trials accumulate into bounded batches: one SelectSectorBatch call
	// per batch keeps the estimation funnel hot without ever holding the
	// whole campaign in memory.
	const batchTrials = 4096
	pending := make([]tracestore.Trial, 0, batchTrials)
	probesList := make([]core.BatchItem, 0, batchTrials)

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		results, err := p.Estimator.SelectSectorBatch(ctx, probesList, cfg.Workers)
		if err != nil {
			return err
		}
		for i := range pending {
			sel, serr := results[i].Selection, results[i].Err
			if serr != nil {
				if errors.Is(serr, context.Canceled) || errors.Is(serr, context.DeadlineExceeded) {
					return serr
				}
				pending[i].SelSector = selFailedSector
			} else {
				pending[i].SelSector = sel.Sector
				pending[i].SelFallback = sel.Fallback
				pending[i].SelAzDeg = float32(sel.AoA.Az)
				pending[i].SelElDeg = float32(sel.AoA.El)
			}
			if err := w.Append(pending[i].Seed, pending[i]); err != nil {
				return err
			}
		}
		metTrials.Add(int64(len(pending)))
		metBatchTrials.Add(int64(len(pending)))
		pending = pending[:0]
		probesList = probesList[:0]
		return nil
	}

	for i := 0; i < cfg.Trials; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.SeedStart + uint64(i)
		rng := stats.NewFastRNG(campaignSeed(seed))
		rec := tracestore.Trial{
			Seed:  seed,
			AzDeg: float32(rng.Uniform(-60, 60)),
			ElDeg: float32(rng.Uniform(0, 16)),
			DistM: float32(rng.Uniform(1, 10)),
		}
		if rng.Bool(0.1) {
			rec.AttenDB = float32(rng.Uniform(5, 25))
		}
		rec.LinkSNR = float32(campaignRefSNRDB - 20*math.Log10(float64(rec.DistM)/campaignRefDistM))

		idx := rng.Sample(len(txIDs), cfg.M)
		sort.Ints(idx)
		az, el := float64(rec.AzDeg), float64(rec.ElDeg)
		linkSNR, atten := float64(rec.LinkSNR), float64(rec.AttenDB)
		rec.Probes = make([]tracestore.ProbeSample, 0, cfg.M)
		probes := make([]core.Probe, 0, cfg.M)
		for _, j := range idx {
			id := txIDs[j]
			snr := campaignTrueSNR(p.Patterns.Get(id), az, el, linkSNR, atten, gainRef)
			meas, ok := model.Observe(snr, rng)
			ps := tracestore.ProbeSample{Sector: id, OK: ok}
			if ok {
				ps.SNR = float32(meas.SNR)
				ps.RSSI = float32(meas.RSSI)
			}
			rec.Probes = append(rec.Probes, ps)
			// The selection sees exactly the float32-rounded values the
			// store persists — replay determinism hinges on this.
			probes = append(probes, core.Probe{
				Sector: id,
				Meas:   radio.Measurement{SNR: float64(ps.SNR), RSSI: float64(ps.RSSI)},
				OK:     ps.OK,
			})
		}
		pending = append(pending, rec)
		probesList = append(probesList, core.BatchItem{Probes: probes})
		if len(pending) == batchTrials {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return w.Close()
}

// Campaign scorecard histogram bounds: SNR loss in milli-dB, azimuth
// error in milli-degrees. Fixed bounds + int64 counters keep the
// aggregate byte-identical at any worker count.
var (
	campaignLossBoundsMilli  = []int64{0, 250, 500, 1000, 2000, 3000, 5000, 10000, 20000}
	campaignAzErrBoundsMilli = []int64{0, 500, 1000, 2000, 5000, 10000, 20000, 45000, 90000}
)

// milliDB converts an SNR loss to milli-dB fixed point, clamping NaN and
// noise-won negatives to zero and capping at 1000 dB.
func milliDB(db float64) int64 {
	if math.IsNaN(db) || db < 0 {
		return 0
	}
	if db > 1000 {
		db = 1000
	}
	return int64(math.Round(db * 1000))
}

// milliDeg converts a non-negative angle error to milli-degrees.
func milliDeg(deg float64) int64 {
	if math.IsNaN(deg) || deg < 0 {
		return 0
	}
	if deg > 360 {
		deg = 360
	}
	return int64(math.Round(deg * 1000))
}

// campaignTally is one shard's int64-only accumulator.
type campaignTally struct {
	trials, failures, fallbacks, drift, probesLost int64
	loss, azErr                                    stats.IntHist

	probesList []core.BatchItem
	probesBuf  []core.Probe
}

func newCampaignTally() campaignTally {
	return campaignTally{
		loss:  stats.NewIntHist(campaignLossBoundsMilli),
		azErr: stats.NewIntHist(campaignAzErrBoundsMilli),
	}
}

func (t *campaignTally) merge(o *campaignTally) {
	t.trials += o.trials
	t.failures += o.failures
	t.fallbacks += o.fallbacks
	t.drift += o.drift
	t.probesLost += o.probesLost
	t.loss.Merge(&o.loss)
	t.azErr.Merge(&o.azErr)
}

// LossSummary reports an SNR-loss distribution in milli-dB fixed point
// (the same schema fleet scorecards use).
type LossSummary struct {
	Count    int64   `json:"count"`
	P50Milli int64   `json:"p50_millidb"`
	P90Milli int64   `json:"p90_millidb"`
	P99Milli int64   `json:"p99_millidb"`
	MaxMilli int64   `json:"max_millidb"`
	MeanDB   float64 `json:"mean_db"`
	Buckets  []int64 `json:"buckets"`
}

// AngleSummary reports an angle-error distribution in milli-degrees.
type AngleSummary struct {
	Count    int64   `json:"count"`
	P50Milli int64   `json:"p50_millideg"`
	P90Milli int64   `json:"p90_millideg"`
	P99Milli int64   `json:"p99_millideg"`
	MaxMilli int64   `json:"max_millideg"`
	MeanDeg  float64 `json:"mean_deg"`
	Buckets  []int64 `json:"buckets"`
}

func lossSummaryOf(h *stats.IntHist) LossSummary {
	return LossSummary{
		Count:    h.Count(),
		P50Milli: h.Quantile(0.50),
		P90Milli: h.Quantile(0.90),
		P99Milli: h.Quantile(0.99),
		MaxMilli: h.Max(),
		MeanDB:   float64(h.Mean()) / 1000,
		Buckets:  h.Counts(),
	}
}

func angleSummaryOf(h *stats.IntHist) AngleSummary {
	return AngleSummary{
		Count:    h.Count(),
		P50Milli: h.Quantile(0.50),
		P90Milli: h.Quantile(0.90),
		P99Milli: h.Quantile(0.99),
		MaxMilli: h.Max(),
		MeanDeg:  float64(h.Mean()) / 1000,
		Buckets:  h.Counts(),
	}
}

// CampaignSection aggregates one seed range of the campaign.
type CampaignSection struct {
	Trials     int64        `json:"trials"`
	Failures   int64        `json:"select_failures"`
	Fallbacks  int64        `json:"fallbacks"`
	Drift      int64        `json:"selection_drift"`
	ProbesLost int64        `json:"probes_lost"`
	Loss       LossSummary  `json:"selection_snr_loss"`
	AzErr      AngleSummary `json:"azimuth_error"`
}

func sectionOf(t *campaignTally) CampaignSection {
	return CampaignSection{
		Trials:     t.trials,
		Failures:   t.failures,
		Fallbacks:  t.fallbacks,
		Drift:      t.drift,
		ProbesLost: t.probesLost,
		Loss:       lossSummaryOf(&t.loss),
		AzErr:      angleSummaryOf(&t.azErr),
	}
}

// BenchEntry mirrors cmd/benchdiff's baseline schema so the scorecard
// JSON doubles as a benchdiff baseline of virtual metrics.
type BenchEntry struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// CampaignScorecard is the replay's deterministic result: for a fixed
// recorded campaign it is byte-identical across runs, machines and
// worker counts. Wall-clock quantities are deliberately excluded.
type CampaignScorecard struct {
	Config      CampaignConfig  `json:"config"`
	Shards      int             `json:"shards"`
	Total       CampaignSection `json:"total"`
	InSample    CampaignSection `json:"in_sample"`
	OutOfSample CampaignSection `json:"out_of_sample"`
	Benchmarks  []BenchEntry    `json:"benchmarks"`
}

// ReplayCampaign streams the recorded shards back through the estimator
// with bounded memory: cfg.Workers readers, one reusable decode buffer
// each, per-shard int64 tallies merged in shard order. The selection is
// recomputed from the stored float32 probes and compared against the
// recorded one — Drift counts disagreements and stays zero when the
// platform matches the recording.
func ReplayCampaign(ctx context.Context, p *Platform, cfg CampaignConfig) (*CampaignScorecard, error) {
	userSplit := cfg.SplitSeed
	cfg.defaults()
	shards, err := tracestore.Discover(cfg.Dir, cfg.Base)
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("eval: no %s-*.bin shards under %s (run -record first)", cfg.Base, cfg.Dir)
	}
	// The scorecard describes the campaign on disk, not the flags: a
	// replay-only invocation reconciles trials, seed range and split
	// boundary with the recorded shard headers, so the scorecard is
	// byte-identical to the recording run's.
	var total uint64
	for _, sh := range shards {
		total += sh.Header.Records
	}
	cfg.Trials = int(total)
	cfg.SeedStart = shards[0].Header.SeedLo
	cfg.RecordsPerShard = int(shards[0].Header.Records)
	if userSplit == 0 {
		target := cfg.SeedStart + total*4/5
		split := cfg.SeedStart
		for _, sh := range shards {
			if sh.Header.SeedLo <= target && sh.Header.SeedLo > split {
				split = sh.Header.SeedLo
			}
		}
		cfg.SplitSeed = split
	}
	inShards, outShards, err := tracestore.SplitBySeed(shards, cfg.SplitSeed)
	if err != nil {
		return nil, err
	}
	codec, err := tracestore.NewTrialCodec(cfg.M)
	if err != nil {
		return nil, err
	}

	txIDs := p.Patterns.TXIDs()
	gainRef := codebookGainRef(p.Patterns)
	partials := make([]campaignTally, len(shards))
	for i := range partials {
		partials[i] = newCampaignTally()
	}

	replay := tracestore.ReplayShards[tracestore.Trial]
	if cfg.MappedIO {
		replay = tracestore.ReplayShardsMapped[tracestore.Trial]
	}
	err = replay(ctx, codec, shards, cfg.Workers, func(shard int, recs []tracestore.Trial) error {
		t := &partials[shard]
		// Rebuild the probe vectors into the tally's reusable arena.
		need := 0
		for i := range recs {
			need += len(recs[i].Probes)
		}
		if cap(t.probesBuf) < need {
			t.probesBuf = make([]core.Probe, 0, need)
		}
		buf := t.probesBuf[:0]
		t.probesList = t.probesList[:0]
		for i := range recs {
			start := len(buf)
			for _, ps := range recs[i].Probes {
				if !ps.OK {
					t.probesLost++
				}
				buf = append(buf, core.Probe{
					Sector: ps.Sector,
					Meas:   radio.Measurement{SNR: float64(ps.SNR), RSSI: float64(ps.RSSI)},
					OK:     ps.OK,
				})
			}
			t.probesList = append(t.probesList, core.BatchItem{Probes: buf[start:len(buf):len(buf)]})
		}
		t.probesBuf = buf[:0]

		// Inner workers stay 1: shard fan-out is the only parallelism.
		results, err := p.Estimator.SelectSectorBatch(ctx, t.probesList, 1)
		if err != nil {
			return err
		}
		for i := range recs {
			rec := &recs[i]
			t.trials++
			recFailed := rec.SelSector == selFailedSector
			sel, serr := results[i].Selection, results[i].Err
			if serr != nil {
				if errors.Is(serr, context.Canceled) || errors.Is(serr, context.DeadlineExceeded) {
					return serr
				}
				t.failures++
				if !recFailed {
					t.drift++
				}
				continue
			}
			if recFailed || sel.Sector != rec.SelSector || sel.Fallback != rec.SelFallback {
				t.drift++
			}
			if sel.Fallback {
				t.fallbacks++
			}
			az, el := float64(rec.AzDeg), float64(rec.ElDeg)
			linkSNR, atten := float64(rec.LinkSNR), float64(rec.AttenDB)
			best := math.Inf(-1)
			for _, id := range txIDs {
				if s := campaignTrueSNR(p.Patterns.Get(id), az, el, linkSNR, atten, gainRef); s > best {
					best = s
				}
			}
			got := campaignTrueSNR(p.Patterns.Get(sel.Sector), az, el, linkSNR, atten, gainRef)
			if !math.IsInf(best, -1) && !math.IsInf(got, -1) {
				t.loss.Observe(milliDB(best - got))
			}
			if sel.AoA.Used > 0 {
				t.azErr.Observe(milliDeg(math.Abs(geom.WrapAz(sel.AoA.Az - az))))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge in shard order — the order is what makes the scorecard
	// independent of which worker processed which shard.
	index := make(map[string]int, len(shards))
	for i, sh := range shards {
		index[sh.Path] = i
	}
	mergeSection := func(subset []tracestore.Shard) CampaignSection {
		acc := newCampaignTally()
		for _, sh := range subset {
			acc.merge(&partials[index[sh.Path]])
		}
		return sectionOf(&acc)
	}
	sc := &CampaignScorecard{
		Config:      cfg,
		Shards:      len(shards),
		Total:       mergeSection(shards),
		InSample:    mergeSection(inShards),
		OutOfSample: mergeSection(outShards),
	}
	sc.Benchmarks = []BenchEntry{
		{Name: "BenchmarkCampaign/selection_loss_p50_mdb", Iters: sc.Total.Trials, NsPerOp: float64(sc.Total.Loss.P50Milli)},
		{Name: "BenchmarkCampaign/selection_loss_p99_mdb", Iters: sc.Total.Trials, NsPerOp: float64(sc.Total.Loss.P99Milli)},
		{Name: "BenchmarkCampaign/oos_loss_p50_mdb", Iters: sc.OutOfSample.Trials, NsPerOp: float64(sc.OutOfSample.Loss.P50Milli)},
		{Name: "BenchmarkCampaign/az_err_p50_mdeg", Iters: sc.Total.AzErr.Count, NsPerOp: float64(sc.Total.AzErr.P50Milli)},
		{Name: "BenchmarkCampaign/selection_drift", Iters: sc.Total.Trials, NsPerOp: float64(sc.Total.Drift)},
		{Name: "BenchmarkCampaign/select_failures", Iters: sc.Total.Trials, NsPerOp: float64(sc.Total.Failures)},
	}
	return sc, nil
}

// RunCampaign records the campaign and immediately replays it — the
// registry entry point. Record-once/replay-many workflows drive
// RecordCampaign and ReplayCampaign separately through evalrunner's
// -record/-replay flags.
func RunCampaign(ctx context.Context, p *Platform, cfg CampaignConfig) (*CampaignScorecard, error) {
	cfg.defaults()
	if _, err := RecordCampaign(ctx, p, cfg); err != nil {
		return nil, err
	}
	return ReplayCampaign(ctx, p, cfg)
}

func formatSection(b *strings.Builder, name string, s CampaignSection) {
	fmt.Fprintf(b, "%s: %d trials, %d failures, %d fallbacks, %d drift, %d probes lost\n",
		name, s.Trials, s.Failures, s.Fallbacks, s.Drift, s.ProbesLost)
	fmt.Fprintf(b, "  SNR loss:  p50 %.2f dB  p90 %.2f dB  p99 %.2f dB  mean %.2f dB (%d samples)\n",
		float64(s.Loss.P50Milli)/1000, float64(s.Loss.P90Milli)/1000, float64(s.Loss.P99Milli)/1000,
		s.Loss.MeanDB, s.Loss.Count)
	fmt.Fprintf(b, "  az error:  p50 %.2f°  p90 %.2f°  p99 %.2f°  mean %.2f° (%d samples)\n",
		float64(s.AzErr.P50Milli)/1000, float64(s.AzErr.P90Milli)/1000, float64(s.AzErr.P99Milli)/1000,
		s.AzErr.MeanDeg, s.AzErr.Count)
}

// Table renders the scorecard sections.
func (sc *CampaignScorecard) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign scorecard: %d trials (M=%d) over %d shards, split at seed %d\n",
		sc.Config.Trials, sc.Config.M, sc.Shards, sc.Config.SplitSeed)
	formatSection(&b, "total", sc.Total)
	formatSection(&b, "in-sample", sc.InSample)
	formatSection(&b, "out-of-sample", sc.OutOfSample)
	return b.String()
}

// Summary reports the replay-fidelity headline.
func (sc *CampaignScorecard) Summary() string {
	return fmt.Sprintf("%d trials replayed over %d shards: drift %d, OOS p50 loss %.2f dB, %d failures",
		sc.Total.Trials, sc.Shards, sc.Total.Drift, float64(sc.OutOfSample.Loss.P50Milli)/1000, sc.Total.Failures)
}

// MarshalJSON emits the scorecard; the struct is fully json-tagged and
// int64-backed, so the bytes are identical for identical campaigns.
func (sc *CampaignScorecard) MarshalJSON() ([]byte, error) {
	type alias CampaignScorecard
	return json.Marshal((*alias)(sc))
}
