package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/mcs"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
)

// Figure10Result is the training-time model: mutual training duration as
// a function of the number of probing sectors.
type Figure10Result struct {
	// Ms are the evaluated probe counts, Times the matching durations.
	Ms    []int
	Times []time.Duration
	// SSWTime is the stock full-sweep duration (M = 34).
	SSWTime time.Duration
	// CSSAt14 is the compressive duration at the paper's operating
	// point.
	CSSAt14 time.Duration
}

// Figure10 evaluates the training-time series of the paper's Figure 10.
// The model is closed-form, so ctx is only checked once — the parameter
// exists so the study runs under the same cancellable contract as every
// other experiment.
func Figure10(ctx context.Context) (*Figure10Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &Figure10Result{
		SSWTime: dot11ad.MutualTrainingTime(34),
		CSSAt14: dot11ad.MutualTrainingTime(14),
	}
	for m := 12; m <= 38; m += 2 {
		r.Ms = append(r.Ms, m)
		r.Times = append(r.Times, dot11ad.MutualTrainingTime(m))
	}
	return r, nil
}

// Speedup returns the headline training speed-up at 14 probes.
func (r *Figure10Result) Speedup() float64 {
	return float64(r.SSWTime) / float64(r.CSSAt14)
}

// Table renders the series.
func (r *Figure10Result) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 10: mutual training time vs number of probing sectors")
	fmt.Fprintf(&b, "%4s %12s\n", "M", "time")
	for i, m := range r.Ms {
		marker := ""
		switch m {
		case 14:
			marker = "  <- CSS operating point"
		case 34:
			marker = "  <- full sector sweep"
		}
		fmt.Fprintf(&b, "%4d %12s%s\n", m, fmtMS(r.Times[i]), marker)
	}
	fmt.Fprintf(&b, "speed-up at M=14: %.2fx (%s -> %s)\n", r.Speedup(), fmtMS(r.SSWTime), fmtMS(r.CSSAt14))
	return b.String()
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}

// ThroughputPoint is one bar of Figure 11.
type ThroughputPoint struct {
	AzimuthDeg float64
	CSSMbps    float64
	SSWMbps    float64
}

// Figure11Result is the expected application-layer throughput at the
// three evaluated path directions.
type Figure11Result struct {
	Points []ThroughputPoint
	// M is the CSS probing count (14 in the paper).
	M int
}

// Figure11 reproduces the throughput experiment: in the conference room,
// with the rotation head at −45°, 0° and +45°, both algorithms select
// sectors over repeated sweeps; the expected throughput averages the
// SNR→rate mapping over the selections, accounting for each algorithm's
// training airtime.
func Figure11(ctx context.Context, p *Platform, m int, sweeps int, rng *stats.RNG) (*Figure11Result, error) {
	if m <= 0 {
		m = 14
	}
	if sweeps <= 0 {
		sweeps = 10
	}
	cfg := testbed.ScanConfig{AzMin: -45, AzMax: 45, AzStep: 45, Elevations: []float64{0}, SweepsPerPosition: sweeps}
	traces, err := p.Scan(ctx, channel.ConferenceRoom(), 6, cfg)
	if err != nil {
		return nil, err
	}
	model := mcs.DefaultThroughputModel()
	available := sector.TalonTX()
	res := &Figure11Result{M: m}
	for _, tr := range traces {
		pt := ThroughputPoint{AzimuthDeg: tr.CommandedAz}
		var cssTp, sswTp []float64
		for _, sweep := range tr.Sweeps {
			// CSS with m probes.
			probeSet, err := core.RandomProbes(rng, available, m)
			if err != nil {
				return nil, err
			}
			probes := core.ProbesFromMeasurements(probeSet.IDs(), sweep)
			if sel, err := p.Estimator.SelectSector(ctx, probes); err == nil {
				snr := tr.TrueSNR[sel.Sector]
				cssTp = append(cssTp, model.AppThroughputMbps(snr, dot11ad.MutualTrainingTime(m)))
			} else {
				cssTp = append(cssTp, 0)
			}
			// Stock sweep over all sectors.
			if id, ok := core.SweepSelect(core.MeasurementsToProbes(available, sweep)); ok {
				snr := tr.TrueSNR[id]
				sswTp = append(sswTp, model.AppThroughputMbps(snr, dot11ad.MutualTrainingTime(len(available))))
			} else {
				sswTp = append(sswTp, 0)
			}
		}
		pt.CSSMbps = stats.Mean(cssTp)
		pt.SSWMbps = stats.Mean(sswTp)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders the three bars of Figure 11.
func (r *Figure11Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: expected TCP throughput, CSS (M=%d) vs SSW, conference room\n", r.M)
	fmt.Fprintf(&b, "%10s %12s %12s\n", "direction", "CSS [Gbps]", "SSW [Gbps]")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%9.0f° %12.3f %12.3f\n", pt.AzimuthDeg, pt.CSSMbps/1000, pt.SSWMbps/1000)
	}
	return b.String()
}
