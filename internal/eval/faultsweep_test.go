package eval

import (
	"context"
	"strings"
	"testing"
)

// TestFaultSweepResilience is the acceptance run of the fault campaign:
// under 20% Gilbert–Elliott loss with fixed seeds, the resilient trainer
// must never hard-error across 200 trials, and the median selected
// sector must stay within 3 dB of the no-loss optimum.
func TestFaultSweepResilience(t *testing.T) {
	s := quickStudy(t)
	r, err := FaultSweep(context.Background(), s.Platform, FaultSweepConfig{
		LossRates: []float64{0, 0.2},
		Trials:    200,
		Seed:      99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.HardErrors != 0 {
			t.Fatalf("loss rate %.2f: %d hard errors, want 0", pt.LossRate, pt.HardErrors)
		}
		if pt.Trials != 200 {
			t.Fatalf("loss rate %.2f: %d trials recorded", pt.LossRate, pt.Trials)
		}
	}
	clean, lossy := r.Points[0], r.Points[1]
	if lossy.MedianLossDB > 3 {
		t.Fatalf("median SNR loss at 20%% frame loss = %.2f dB, want <= 3", lossy.MedianLossDB)
	}
	if lossy.MedianLossDB < clean.MedianLossDB-0.5 {
		t.Fatalf("lossy median %.2f dB implausibly better than clean %.2f dB",
			lossy.MedianLossDB, clean.MedianLossDB)
	}
	// The impaired channel must actually exercise the resilient path:
	// retries or degradations, and more of them than the clean channel
	// (whose only trigger is measurement noise on the verification
	// probe).
	if lossy.Retried == 0 && lossy.Degraded == 0 {
		t.Error("20% loss exercised neither retry nor fallback")
	}
	if lossy.Retried+lossy.Degraded <= clean.Retried+clean.Degraded {
		t.Errorf("lossy channel (%d retried, %d degraded) not harder than clean (%d, %d)",
			lossy.Retried, lossy.Degraded, clean.Retried, clean.Degraded)
	}
	out := r.Table()
	for _, want := range []string{"loss rate", "degraded", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

// TestFaultSweepDeterministic re-runs a small campaign on a fresh
// platform with identical seeds and expects identical outcome counts.
func TestFaultSweepDeterministic(t *testing.T) {
	run := func() []FaultSweepPoint {
		p, err := NewPlatform(context.Background(), 17, Quick().PatternGrid, 2)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FaultSweep(context.Background(), p, FaultSweepConfig{
			LossRates: []float64{0.1},
			Trials:    20,
			Seed:      5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Points
	}
	a, b := run(), run()
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("campaign not deterministic:\n%+v\n%+v", a, b)
	}
}
