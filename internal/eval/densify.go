package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"talon/internal/antenna"
	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// DensifyPoint is one codebook size × policy cell.
type DensifyPoint struct {
	Sectors     int
	Policy      string
	Probes      int
	TrainTime   time.Duration
	MeanLossDB  float64
	MedianAzErr float64
}

// DensifyResult quantifies the Section 7 claim that compressive selection
// unlocks larger codebooks: "we could significantly increase the number
// of available sectors while keeping the number of probes as low as in
// the current sweep", whereas the stock sweep's airtime grows linearly
// with the sector count.
type DensifyResult struct {
	Points []DensifyPoint
}

// DensifyStudy compares the stock sweep against CSS with a fixed probe
// budget m on codebooks of increasing size (up to the 6-bit maximum of
// 63 sectors). The link is a 6 m LOS deployment; selections are judged by
// the true-SNR loss against the codebook's own optimum and by the angle
// estimation error (CSS only). ctx cancels the study between trials.
func DensifyStudy(ctx context.Context, seed int64, m int, sizes []int, trials int, rng *stats.RNG) (*DensifyResult, error) {
	if m <= 0 {
		m = 14
	}
	if len(sizes) == 0 {
		sizes = []int{34, 48, 63}
	}
	if trials <= 0 {
		trials = 60
	}
	arr, err := antenna.New(antenna.TalonConfig(), stats.NewRNG(seed).Split("array"))
	if err != nil {
		return nil, err
	}
	grid, err := geom.UniformGrid(-80, 80, 2, 0, 16, 4)
	if err != nil {
		return nil, err
	}
	budget := radio.DefaultBudget()
	model := radio.DefaultMeasurementModel()
	env := channel.AnechoicChamber()
	txPose := channel.Pose{}
	txPose.Pos.Z = 1.2
	rxPose := channel.Pose{Yaw: 180}
	rxPose.Pos.X = 6
	rxPose.Pos.Z = 1.2

	res := &DensifyResult{}
	for _, n := range sizes {
		cb, err := antenna.DenseCodebook(arr, n)
		if err != nil {
			return nil, err
		}
		patterns := antenna.SamplePatterns(arr, cb, grid)
		est, err := core.NewEstimator(patterns, core.Options{})
		if err != nil {
			return nil, err
		}
		txIDs := patterns.TXIDs()

		// trueSNR of sector id when the receiver sits at azimuth offset
		// dirAz (implemented by yawing the transmitter).
		trueSNR := func(id sector.ID, dirAz float64) float64 {
			w, _ := cb.Weights(id)
			pose := txPose
			pose.Yaw = -dirAz
			return radio.TrueSNR(env, pose, rxPose, func(a, e float64) float64 {
				return arr.Gain(w, a, e)
			}, func(a, e float64) float64 { return 0 }, budget)
		}

		runPolicy := func(name string, probeCount int, compressive bool) error {
			var losses, azErrs []float64
			for trial := 0; trial < trials; trial++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				dirAz := rng.Uniform(-60, 60)
				var probeIDs []sector.ID
				if probeCount >= len(txIDs) {
					probeIDs = txIDs
				} else {
					set, err := core.RandomProbes(rng, txIDs, probeCount)
					if err != nil {
						return err
					}
					probeIDs = set.IDs()
				}
				probes := make([]core.Probe, len(probeIDs))
				for i, id := range probeIDs {
					meas, ok := model.Observe(trueSNR(id, dirAz), rng.Split(fmt.Sprintf("m%d", trial)))
					probes[i] = core.Probe{Sector: id, Meas: meas, OK: ok}
				}
				var pick sector.ID
				if compressive {
					sel, err := est.SelectSector(ctx, probes)
					if err != nil {
						continue
					}
					pick = sel.Sector
					if !sel.Fallback {
						azErrs = append(azErrs, absWrap(sel.AoA.Az-dirAz))
					}
				} else {
					id, ok := core.SweepSelect(probes)
					if !ok {
						continue
					}
					pick = id
				}
				best := -1e9
				for _, id := range txIDs {
					if snr := trueSNR(id, dirAz); snr > best {
						best = snr
					}
				}
				losses = append(losses, best-trueSNR(pick, dirAz))
			}
			res.Points = append(res.Points, DensifyPoint{
				Sectors:     n,
				Policy:      name,
				Probes:      probeCount,
				TrainTime:   dot11ad.MutualTrainingTime(probeCount),
				MeanLossDB:  stats.Mean(losses),
				MedianAzErr: stats.Median(azErrs),
			})
			return nil
		}
		if err := runPolicy("SSW", len(txIDs), false); err != nil {
			return nil, err
		}
		if err := runPolicy(fmt.Sprintf("CSS-%d", m), m, true); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func absWrap(deg float64) float64 {
	d := geom.WrapAz(deg)
	if d < 0 {
		return -d
	}
	return d
}

// Table renders the study.
func (r *DensifyResult) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Codebook densification study (Section 7): CSS keeps the probe budget flat")
	fmt.Fprintf(&b, "%8s %-8s %7s %11s %11s %13s\n", "sectors", "policy", "probes", "train time", "loss [dB]", "med az err")
	for _, pt := range r.Points {
		az := "-"
		if pt.MedianAzErr == pt.MedianAzErr { // not NaN
			az = fmt.Sprintf("%.2f°", pt.MedianAzErr)
		}
		fmt.Fprintf(&b, "%8d %-8s %7d %11v %11.2f %13s\n",
			pt.Sectors, pt.Policy, pt.Probes, pt.TrainTime, pt.MeanLossDB, az)
	}
	return b.String()
}
