package eval

import (
	"context"
	"errors"
	"fmt"
	"math"

	"talon/internal/core"
	"talon/internal/geom"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
)

// MStats aggregates compressive-selection quality at one probing count M.
type MStats struct {
	M int
	// AzErrs / ElErrs are absolute estimation errors in degrees, one per
	// evaluated (sweep × subset).
	AzErrs, ElErrs []float64
	// SNRLoss is trueSNR(optimal) − trueSNR(selected) in dB.
	SNRLoss []float64
	// Stability is the average per-direction fraction of selections
	// falling on the direction's most frequent sector.
	Stability float64
	// Failures counts evaluations where estimation was impossible
	// (fewer than two probes reported).
	Failures int
	// Fallbacks counts selections that distrusted the angle estimate
	// and used the probed-sector argmax instead.
	Fallbacks int
}

// SSWStats aggregates the stock sector-sweep baseline over the same
// traces.
type SSWStats struct {
	SNRLoss   []float64
	Stability float64
	Failures  int
}

// TraceEval is the full per-environment evaluation used by Figures 7–9.
type TraceEval struct {
	Env       string
	PerM      []*MStats
	SSW       SSWStats
	NumTraces int
}

// EvaluateTraces runs CSS at every M in ms and the SSW baseline over the
// captured traces. subsets random probing subsets are drawn per sweep and
// M. The estimator must be built from the same device's measured
// patterns.
//
// Trials are independent, so the CSS selections run on a bounded worker
// pool (see SetParallelism). Results are identical to a serial run at any
// worker count: every probing subset is drawn from rng up front in the
// canonical (M, trace, sweep, subset) order, and aggregation replays that
// order after the parallel phase. The context is observed between trials.
func EvaluateTraces(ctx context.Context, envName string, traces []testbed.Trace, est *core.Estimator, ms []int, subsets int, rng *stats.RNG) (*TraceEval, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("eval: no traces for %s", envName)
	}
	if subsets < 1 {
		subsets = 1
	}
	te := &TraceEval{Env: envName, NumTraces: len(traces)}
	available := sector.TalonTX()

	// --- SSW baseline ---
	for _, tr := range traces {
		var picks []sector.ID
		for _, sweep := range tr.Sweeps {
			probes := core.MeasurementsToProbes(available, sweep)
			id, ok := core.SweepSelect(probes)
			if !ok {
				te.SSW.Failures++
				continue
			}
			picks = append(picks, id)
			if loss, ok := snrLoss(tr, id); ok {
				te.SSW.SNRLoss = append(te.SSW.SNRLoss, loss)
			}
		}
		te.SSW.Stability += stabilityOf(picks)
	}
	te.SSW.Stability /= float64(len(traces))

	// --- CSS at each M ---
	// Phase 1: draw every probing subset serially, preserving the RNG
	// stream order a serial evaluation would consume.
	type cssJob struct {
		mIdx, trIdx int
		probes      []core.Probe
	}
	var jobs []cssJob
	for mIdx, m := range ms {
		for trIdx, tr := range traces {
			for _, sweep := range tr.Sweeps {
				for s := 0; s < subsets; s++ {
					probeSet, err := core.RandomProbes(rng, available, m)
					if err != nil {
						return nil, err
					}
					jobs = append(jobs, cssJob{
						mIdx:   mIdx,
						trIdx:  trIdx,
						probes: core.ProbesFromMeasurements(probeSet.IDs(), sweep),
					})
				}
			}
		}
	}

	// Phase 2: run the independent selections through the batched
	// estimation path — one persistent worker pool over the whole
	// campaign's probe vectors instead of per-call fan-out, with engine
	// sharding disabled inside each item so trial workers are the only
	// parallelism.
	probesList := make([]core.BatchItem, len(jobs))
	for i := range jobs {
		probesList[i].Probes = jobs[i].probes
	}
	results, err := est.SelectSectorBatch(ctx, probesList, Parallelism())
	if err != nil {
		return nil, err
	}
	metTrials.Add(int64(len(jobs)))
	metBatchTrials.Add(int64(len(jobs)))

	// Phase 3: aggregate serially in the canonical order.
	perM := make([]*MStats, len(ms))
	for i, m := range ms {
		perM[i] = &MStats{M: m}
	}
	picksPer := make(map[[2]int][]sector.ID, len(ms)*len(traces))
	for i, job := range jobs {
		st := perM[job.mIdx]
		tr := traces[job.trIdx]
		sel, err := results[i].Selection, results[i].Err
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			st.Failures++
			continue
		}
		// Figure 7 reports the raw estimator accuracy: record every
		// computed estimate, including ones the selection step later
		// distrusts.
		if sel.AoA.Used > 0 {
			st.AzErrs = append(st.AzErrs, math.Abs(geom.WrapAz(sel.AoA.Az-tr.TrueAz)))
			st.ElErrs = append(st.ElErrs, math.Abs(sel.AoA.El-tr.TrueEl))
		}
		if sel.Fallback {
			st.Fallbacks++
		}
		key := [2]int{job.mIdx, job.trIdx}
		picksPer[key] = append(picksPer[key], sel.Sector)
		if loss, ok := snrLoss(tr, sel.Sector); ok {
			st.SNRLoss = append(st.SNRLoss, loss)
		}
	}
	for mIdx := range ms {
		st := perM[mIdx]
		for trIdx := range traces {
			st.Stability += stabilityOf(picksPer[[2]int{mIdx, trIdx}])
		}
		st.Stability /= float64(len(traces))
	}
	te.PerM = perM
	return te, nil
}

// snrLoss computes the SNR-loss metric for one selection. The paper
// compares reported SNRs ("the sector with the highest SNR as reported in
// the current and previous measurements"); the simulator has the noiseless
// oracle, so we use the unbiased version of the same quantity: the true
// SNR of the best sector minus the true SNR of the selected one. This is
// strictly harder on both algorithms than the reported-SNR variant, whose
// max-of-noisy-readings optimum systematically biases against selections
// of sectors that never produced a report.
func snrLoss(tr testbed.Trace, selected sector.ID) (float64, bool) {
	best := math.Inf(-1)
	for _, snr := range tr.TrueSNR {
		if snr > best {
			best = snr
		}
	}
	got, ok := tr.TrueSNR[selected]
	if !ok || math.IsInf(best, -1) || math.IsInf(got, -1) {
		return 0, false
	}
	loss := best - got
	if loss < 0 {
		loss = 0
	}
	return loss, true
}

// stabilityOf returns the fraction of picks equal to the most frequent
// pick — "the time spent in the most prominent sector".
func stabilityOf(picks []sector.ID) float64 {
	if len(picks) == 0 {
		return 0
	}
	counts := map[sector.ID]int{}
	best := 0
	for _, id := range picks {
		counts[id]++
		if counts[id] > best {
			best = counts[id]
		}
	}
	return float64(best) / float64(len(picks))
}
