package eval

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"talon/internal/channel"
	"talon/internal/sector"
	"talon/internal/stats"
)

// studyOnce caches a Quick-fidelity study across tests: the expensive part
// (campaign + scans) runs once per test binary.
var cachedStudy *EnvironmentStudy

func quickStudy(t *testing.T) *EnvironmentStudy {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	s, err := RunEnvironmentStudy(context.Background(), 42, Quick())
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy = s
	return s
}

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.Beacon) != 35 || len(r.Sweep) != 35 {
		t.Fatalf("slots: %d / %d", len(r.Beacon), len(r.Sweep))
	}
	out := r.Table()
	for _, want := range []string{"CDOWN", "Beacon", "Sweep", "63", "61"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestFigure5Smoke(t *testing.T) {
	r, err := Figure5(context.Background(), 7, 6, 1) // 6° steps for speed
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Summaries) != 35 {
		t.Fatalf("summaries = %d", len(r.Summaries))
	}
	if r.Grid.NumAz() != 61 || r.Grid.NumEl() != 1 {
		t.Fatalf("grid %dx%d", r.Grid.NumAz(), r.Grid.NumEl())
	}
	strong, wide, weak := r.Classify()
	if len(strong) == 0 || len(weak) == 0 {
		t.Fatalf("classification degenerate: strong=%v wide=%v weak=%v", strong, wide, weak)
	}
	// The known weak sectors must classify as weak.
	weakSet := sector.NewSet(weak...)
	if !weakSet.Contains(25) || !weakSet.Contains(62) {
		t.Errorf("sectors 25/62 not weak: %v", weak)
	}
	if !strings.Contains(r.Table(), "sector") {
		t.Error("Format output empty")
	}
}

func TestFigure6Smoke(t *testing.T) {
	r, err := Figure6(context.Background(), 7, 10, 16, 1) // coarse
	if err != nil {
		t.Fatal(err)
	}
	if r.Grid.NumEl() < 2 {
		t.Fatalf("3D grid has %d elevation rows", r.Grid.NumEl())
	}
	if len(r.Summaries) != 35 {
		t.Fatalf("summaries = %d", len(r.Summaries))
	}
	// Sector 5 peaks above the azimuth plane in 3D.
	for _, s := range r.Summaries {
		if s.Sector == 5 && s.PeakEl < 8 {
			t.Errorf("sector 5 3D peak at el %v", s.PeakEl)
		}
	}
}

func TestEnvironmentStudyShapes(t *testing.T) {
	s := quickStudy(t)
	f7 := s.Figure7()
	if f7.Lab == nil || f7.Conference == nil {
		t.Fatal("missing environments")
	}
	// Azimuth error must improve with more probes (compare extremes).
	for _, te := range []*TraceEval{f7.Lab, f7.Conference} {
		first := te.PerM[0]
		last := te.PerM[len(te.PerM)-1]
		if stats.Median(last.AzErrs) >= stats.Median(first.AzErrs) {
			t.Errorf("%s: error did not improve: %v -> %v", te.Env,
				stats.Median(first.AzErrs), stats.Median(last.AzErrs))
		}
		if last.M != 34 {
			t.Errorf("%s: last M = %d", te.Env, last.M)
		}
	}
	if !strings.Contains(f7.Table(), "azimuth error") {
		t.Error("Figure7 Format incomplete")
	}

	f8 := s.Figure8()
	conf := f8.Conference
	if conf.SSW.Stability <= 0.3 || conf.SSW.Stability > 1 {
		t.Errorf("SSW stability implausible: %v", conf.SSW.Stability)
	}
	// CSS stability grows with M.
	if conf.PerM[len(conf.PerM)-1].Stability <= conf.PerM[0].Stability {
		t.Error("CSS stability did not grow with M")
	}
	if !strings.Contains(f8.Table(), "stability") {
		t.Error("Figure8 Format incomplete")
	}

	f9 := s.Figure9()
	losses := f9.Conference.PerM
	if stats.Mean(losses[len(losses)-1].SNRLoss) >= stats.Mean(losses[0].SNRLoss) {
		t.Error("CSS SNR loss did not shrink with M")
	}
	if !strings.Contains(f9.Table(), "SNR loss") {
		t.Error("Figure9 Format incomplete")
	}
}

func TestHeadlineComputation(t *testing.T) {
	s := quickStudy(t)
	h, err := ComputeHeadline(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if h.SpeedupAt14 < 2.25 || h.SpeedupAt14 > 2.35 {
		t.Errorf("speedup = %v", h.SpeedupAt14)
	}
	if h.SSWStability <= 0 || h.SSWStability > 1 {
		t.Errorf("SSW stability = %v", h.SSWStability)
	}
	out := h.Table()
	for _, want := range []string{"2.3", "crossover", "speed-up"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q", want)
		}
	}
}

func TestFigure10(t *testing.T) {
	r, err := Figure10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.SSWTime.Microseconds() != 1273 {
		t.Fatalf("SSW time = %v", r.SSWTime)
	}
	if r.CSSAt14.Microseconds() != 553 {
		t.Fatalf("CSS time = %v", r.CSSAt14)
	}
	sp := r.Speedup()
	if sp < 2.25 || sp > 2.35 {
		t.Fatalf("speedup = %v", sp)
	}
	// Times grow linearly in M.
	for i := 1; i < len(r.Times); i++ {
		if r.Times[i] <= r.Times[i-1] {
			t.Fatal("training time not increasing")
		}
	}
	if !strings.Contains(r.Table(), "speed-up at M=14") {
		t.Error("Format incomplete")
	}
}

func TestFigure11(t *testing.T) {
	s := quickStudy(t)
	r, err := Figure11(context.Background(), s.Platform, 14, 6, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, pt := range r.Points {
		// Both algorithms sustain a Gbps-class link in the conference
		// room (the paper's ~1.5 Gbps regime).
		if pt.SSWMbps < 700 || pt.SSWMbps > 2000 {
			t.Errorf("SSW throughput at %v° = %v Mbps", pt.AzimuthDeg, pt.SSWMbps)
		}
		if pt.CSSMbps < 500 || pt.CSSMbps > 2000 {
			t.Errorf("CSS throughput at %v° = %v Mbps", pt.AzimuthDeg, pt.CSSMbps)
		}
	}
	if !strings.Contains(r.Table(), "throughput") {
		t.Error("Format incomplete")
	}
}

func TestEvaluateTracesValidation(t *testing.T) {
	s := quickStudy(t)
	if _, err := EvaluateTraces(context.Background(), "empty", nil, s.Platform.Estimator, []int{6}, 1, stats.NewRNG(1)); err == nil {
		t.Fatal("empty traces accepted")
	}
}

func TestAblations(t *testing.T) {
	s := quickStudy(t)
	traces, err := s.Platform.Scan(context.Background(), channel.ConferenceRoom(), 6, Quick().Conference)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)

	joint, err := AblationJointCorrelation(context.Background(), s.Platform, traces, 14, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.Rows) != 4 {
		t.Fatalf("joint rows = %d", len(joint.Rows))
	}

	ideal, err := AblationMeasuredVsIdeal(context.Background(), s.Platform, traces, 14, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ideal.Rows) != 4 || !strings.Contains(ideal.Table(), "theoretical") {
		t.Fatalf("ideal ablation malformed: %+v", ideal)
	}

	probeSel, err := AblationProbeSelection(context.Background(), s.Platform, traces, 14, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(probeSel.Rows) != 4 {
		t.Fatalf("probe selection rows = %d", len(probeSel.Rows))
	}

	beams, err := AblationRandomBeams(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: predefined sectors keep the link decodable,
	// random pseudo-beams lose budget.
	if beams.Rows[0].Value <= beams.Rows[1].Value {
		t.Errorf("random beams not worse: %+v", beams.Rows)
	}

	adaptive, err := AblationAdaptiveProbes(context.Background(), s.Platform, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Rows) != 4 {
		t.Fatalf("adaptive rows = %d", len(adaptive.Rows))
	}
	// The controller must actually save probes against the full sweep.
	if adaptive.Rows[0].Value >= 34 {
		t.Errorf("adaptive controller never shrank: %+v", adaptive.Rows[0])
	}
}

func TestRetrainingStudy(t *testing.T) {
	s := quickStudy(t)
	r, err := RetrainingStudy(context.Background(), s.Platform, 20, 6*time.Second, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	byKey := map[string]RetrainingPoint{}
	for _, pt := range r.Points {
		byKey[fmt.Sprintf("%s@%v", pt.Policy, pt.Interval)] = pt
	}
	// Faster retraining must reduce the staleness loss for the same
	// policy.
	slow := byKey["CSS-14@1s"]
	fast := byKey["CSS-14@100ms"]
	if fast.MeanLossDB >= slow.MeanLossDB {
		t.Errorf("faster CSS cadence did not help: %.2f vs %.2f dB", fast.MeanLossDB, slow.MeanLossDB)
	}
	// CSS at a fast cadence costs fewer probes per second than SSW at
	// the same cadence.
	if css, ssw := byKey["CSS-14@250ms"], byKey["SSW@250ms"]; css.ProbesPerSec >= ssw.ProbesPerSec {
		t.Errorf("CSS probes/s %.0f not below SSW %.0f", css.ProbesPerSec, ssw.ProbesPerSec)
	}
	if !strings.Contains(r.Table(), "cadence") {
		t.Error("Format incomplete")
	}
}

func TestBlockageStudy(t *testing.T) {
	s := quickStudy(t)
	r, err := BlockageStudy(context.Background(), s.Platform, 24, 16, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if r.BackupFound < 3 {
		t.Fatalf("backup found in only %d/%d rounds", r.BackupFound, r.Rounds)
	}
	// The backup must rescue the blocked link: clearly better than the
	// dead primary.
	if r.BlockedBackupSNRdB <= r.BlockedPrimarySNRdB+3 {
		t.Fatalf("backup %.2f dB does not beat blocked primary %.2f dB",
			r.BlockedBackupSNRdB, r.BlockedPrimarySNRdB)
	}
	// Before blockage the primary is (on average) the stronger sector.
	if r.PrimarySNRdB <= r.BackupSNRdB-1 {
		t.Fatalf("primary %.2f dB weaker than backup %.2f dB", r.PrimarySNRdB, r.BackupSNRdB)
	}
	if !strings.Contains(r.Table(), "Blockage") {
		t.Error("Format incomplete")
	}
}

func TestDensityStudy(t *testing.T) {
	r, err := DensityStudy(context.Background(), 14, 5.5, []int{1, 50, 100, 200, 500, 1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2*2*7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// At the mobility cadence (100 ms) the stock sweep saturates the
	// medium at far fewer pairs than CSS.
	ssw := r.SaturationPairs("SSW", 100*time.Millisecond)
	css := r.SaturationPairs("CSS-14", 100*time.Millisecond)
	if ssw == 0 {
		t.Fatal("SSW never saturated at 100 ms cadence")
	}
	if css != 0 && css <= ssw {
		t.Fatalf("CSS saturates at %d pairs, SSW at %d — wrong order", css, ssw)
	}
	// At equal density and cadence, CSS leaves more airtime for data.
	var sswShare, cssShare float64
	for _, pt := range r.Points {
		if pt.Pairs == 200 && pt.Interval == time.Second {
			if pt.Policy == "SSW" {
				sswShare = pt.TrainShare
			} else {
				cssShare = pt.TrainShare
			}
		}
	}
	if cssShare >= sswShare {
		t.Fatalf("CSS train share %.3f not below SSW %.3f", cssShare, sswShare)
	}
	if !strings.Contains(r.Table(), "aggregate") {
		t.Error("Format incomplete")
	}
}

func TestDensifyStudy(t *testing.T) {
	r, err := DensifyStudy(context.Background(), 42, 14, []int{34, 63}, 40, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	var ssw34, ssw63, css34, css63 DensifyPoint
	for _, pt := range r.Points {
		switch {
		case pt.Policy == "SSW" && pt.Sectors == 34:
			ssw34 = pt
		case pt.Policy == "SSW" && pt.Sectors == 63:
			ssw63 = pt
		case pt.Sectors == 34:
			css34 = pt
		default:
			css63 = pt
		}
	}
	// The sweep's airtime grows with the codebook; CSS's stays flat.
	if ssw63.TrainTime <= ssw34.TrainTime {
		t.Fatal("SSW training time did not grow with the codebook")
	}
	if css63.TrainTime != css34.TrainTime {
		t.Fatal("CSS training time changed with the codebook")
	}
	// On the dense codebook CSS must at least match the sweep's quality
	// while training ~4x faster.
	if css63.MeanLossDB > ssw63.MeanLossDB+0.5 {
		t.Fatalf("dense codebook: CSS loss %.2f vs SSW %.2f", css63.MeanLossDB, ssw63.MeanLossDB)
	}
	if !strings.Contains(r.Table(), "densification") {
		t.Error("Format incomplete")
	}
}
