package eval

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"talon/internal/dot11ad"
	"talon/internal/stats"
)

// This file implements the Report contract (Summary + MarshalJSON) for
// every study result. The JSON artifacts use explicit snake_case DTOs —
// never the raw result structs — so the on-disk schema stays stable
// under internal refactors, and heavyweight payloads (full pattern
// grids, raw per-trial sample slices) are summarized instead of dumped.

// jsonNum maps NaN and ±Inf — legal in float64 aggregates over empty
// sample sets, illegal in JSON — to null.
func jsonNum(v float64) *float64 {
	if v != v || v > 1e308 || v < -1e308 {
		return nil
	}
	return &v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- Table 1 ---

type burstSlotJSON struct {
	CDOWN  uint16 `json:"cdown"`
	Sector *uint8 `json:"sector"` // null for unused slots
}

// Summary condenses the burst schedules to slot occupancy.
func (t *Table1Result) Summary() string {
	beacon, sweep := 0, 0
	for _, s := range t.Beacon {
		if s.Used {
			beacon++
		}
	}
	for _, s := range t.Sweep {
		if s.Used {
			sweep++
		}
	}
	return fmt.Sprintf("beacon burst uses %d/%d slots, sweep burst %d/%d", beacon, len(t.Beacon), sweep, len(t.Sweep))
}

// MarshalJSON emits the two schedules as (cdown, sector) pairs.
func (t *Table1Result) MarshalJSON() ([]byte, error) {
	conv := func(slots []dot11ad.BurstSlot) []burstSlotJSON {
		out := make([]burstSlotJSON, len(slots))
		for i, s := range slots {
			out[i].CDOWN = s.CDOWN
			if s.Used {
				v := uint8(s.Sector)
				out[i].Sector = &v
			}
		}
		return out
	}
	return json.Marshal(struct {
		Beacon []burstSlotJSON `json:"beacon"`
		Sweep  []burstSlotJSON `json:"sweep"`
	}{conv(t.Beacon), conv(t.Sweep)})
}

// --- Figures 5/6 (pattern campaigns) ---

type patternSummaryJSON struct {
	Sector      uint8    `json:"sector"`
	PeakAzDeg   float64  `json:"peak_az_deg"`
	PeakElDeg   float64  `json:"peak_el_deg"`
	PeakSNRdB   *float64 `json:"peak_snr_db"`
	MeanSNRdB   *float64 `json:"mean_snr_db"`
	Directivity *float64 `json:"directivity_db"`
}

// Summary classifies the measured codebook the way Section 4.4 does.
func (r *PatternResult) Summary() string {
	strong, wide, weak := r.Classify()
	return fmt.Sprintf("%d sectors measured: %d strong unidirectional, %d multi-lobe/wide, %d weak",
		len(r.Summaries), len(strong), len(wide), len(weak))
}

// MarshalJSON emits the per-sector summaries, not the raw pattern grids.
func (r *PatternResult) MarshalJSON() ([]byte, error) {
	sums := make([]patternSummaryJSON, len(r.Summaries))
	for i, s := range r.Summaries {
		sums[i] = patternSummaryJSON{
			Sector:      uint8(s.Sector),
			PeakAzDeg:   s.PeakAz,
			PeakElDeg:   s.PeakEl,
			PeakSNRdB:   jsonNum(s.PeakSNR),
			MeanSNRdB:   jsonNum(s.MeanSNR),
			Directivity: jsonNum(s.Directivity),
		}
	}
	return json.Marshal(struct {
		Name    string               `json:"name"`
		GridAz  int                  `json:"grid_az_points"`
		GridEl  int                  `json:"grid_el_points"`
		Sectors []patternSummaryJSON `json:"sectors"`
	}{r.Name, r.Grid.NumAz(), r.Grid.NumEl(), sums})
}

// --- Figures 7/8/9 (trace evaluations) ---

type mStatsJSON struct {
	M              int      `json:"m"`
	Samples        int      `json:"samples"`
	MedianAzErrDeg *float64 `json:"median_az_err_deg"`
	P75AzErrDeg    *float64 `json:"p75_az_err_deg"`
	P995AzErrDeg   *float64 `json:"p995_az_err_deg"`
	MedianElErrDeg *float64 `json:"median_el_err_deg"`
	MeanSNRLossDB  *float64 `json:"mean_snr_loss_db"`
	Stability      float64  `json:"stability"`
	Failures       int      `json:"failures"`
	Fallbacks      int      `json:"fallbacks"`
}

type traceEvalJSON struct {
	Env          string       `json:"env"`
	Traces       int          `json:"traces"`
	SSWLossDB    *float64     `json:"ssw_mean_snr_loss_db"`
	SSWStability float64      `json:"ssw_stability"`
	SSWFailures  int          `json:"ssw_failures"`
	PerM         []mStatsJSON `json:"per_m"`
}

func traceEvalDTO(te *TraceEval) traceEvalJSON {
	out := traceEvalJSON{
		Env:          te.Env,
		Traces:       te.NumTraces,
		SSWLossDB:    jsonNum(stats.Mean(te.SSW.SNRLoss)),
		SSWStability: te.SSW.Stability,
		SSWFailures:  te.SSW.Failures,
	}
	for _, m := range te.PerM {
		az := stats.Box(m.AzErrs)
		out.PerM = append(out.PerM, mStatsJSON{
			M:              m.M,
			Samples:        len(m.AzErrs),
			MedianAzErrDeg: jsonNum(az.Median),
			P75AzErrDeg:    jsonNum(az.BoxHi),
			P995AzErrDeg:   jsonNum(az.WhiskHi),
			MedianElErrDeg: jsonNum(stats.Median(m.ElErrs)),
			MeanSNRLossDB:  jsonNum(stats.Mean(m.SNRLoss)),
			Stability:      m.Stability,
			Failures:       m.Failures,
			Fallbacks:      m.Fallbacks,
		})
	}
	return out
}

// Summary reports the estimation error at the largest probing count.
func (r *Figure7Result) Summary() string {
	last := r.Conference.PerM[len(r.Conference.PerM)-1]
	lab := r.Lab.PerM[len(r.Lab.PerM)-1]
	return fmt.Sprintf("median azimuth error at M=%d: lab %.1f°, conference %.1f°",
		last.M, stats.Median(lab.AzErrs), stats.Median(last.AzErrs))
}

// MarshalJSON emits both environments' summarized per-M series.
func (r *Figure7Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Lab        traceEvalJSON `json:"lab"`
		Conference traceEvalJSON `json:"conference"`
	}{traceEvalDTO(r.Lab), traceEvalDTO(r.Conference)})
}

// Summary reports the stability crossover against the SSW baseline.
func (r *Figure8Result) Summary() string {
	if m, ok := r.CrossoverM(); ok {
		return fmt.Sprintf("CSS stability reaches the %.1f%% SSW baseline at M=%d", 100*r.Conference.SSW.Stability, m)
	}
	return fmt.Sprintf("CSS stability stays below the %.1f%% SSW baseline at every evaluated M", 100*r.Conference.SSW.Stability)
}

// MarshalJSON emits the stability series and the crossover.
func (r *Figure8Result) MarshalJSON() ([]byte, error) {
	cross, _ := r.CrossoverM()
	return json.Marshal(struct {
		Conference traceEvalJSON `json:"conference"`
		CrossoverM int           `json:"crossover_m"`
	}{traceEvalDTO(r.Conference), cross})
}

// Summary reports the SNR-loss crossover against the SSW baseline.
func (r *Figure9Result) Summary() string {
	ssw := stats.Mean(r.Conference.SSW.SNRLoss)
	if m, ok := r.CrossoverM(); ok {
		return fmt.Sprintf("CSS SNR loss reaches the %.2f dB SSW baseline at M=%d", ssw, m)
	}
	return fmt.Sprintf("CSS SNR loss stays above the %.2f dB SSW baseline at every evaluated M", ssw)
}

// MarshalJSON emits the loss series and the crossover.
func (r *Figure9Result) MarshalJSON() ([]byte, error) {
	cross, _ := r.CrossoverM()
	return json.Marshal(struct {
		Conference traceEvalJSON `json:"conference"`
		CrossoverM int           `json:"crossover_m"`
	}{traceEvalDTO(r.Conference), cross})
}

// --- Figure 10 ---

// Summary reports the headline training speed-up.
func (r *Figure10Result) Summary() string {
	return fmt.Sprintf("training speed-up %.2fx at M=14 (%s -> %s)", r.Speedup(), fmtMS(r.SSWTime), fmtMS(r.CSSAt14))
}

// MarshalJSON emits the training-time series in milliseconds.
func (r *Figure10Result) MarshalJSON() ([]byte, error) {
	type point struct {
		M      int     `json:"m"`
		TimeMS float64 `json:"time_ms"`
	}
	pts := make([]point, len(r.Ms))
	for i, m := range r.Ms {
		pts[i] = point{m, ms(r.Times[i])}
	}
	return json.Marshal(struct {
		Points  []point `json:"points"`
		SSWMS   float64 `json:"ssw_time_ms"`
		CSS14MS float64 `json:"css14_time_ms"`
		Speedup float64 `json:"speedup_at_14"`
	}{pts, ms(r.SSWTime), ms(r.CSSAt14), r.Speedup()})
}

// --- Figure 11 ---

// Summary averages the throughput bars over the evaluated directions.
func (r *Figure11Result) Summary() string {
	var css, ssw float64
	for _, pt := range r.Points {
		css += pt.CSSMbps
		ssw += pt.SSWMbps
	}
	n := float64(len(r.Points))
	return fmt.Sprintf("mean expected throughput over %d directions: CSS(M=%d) %.2f Gbps vs SSW %.2f Gbps",
		len(r.Points), r.M, css/n/1000, ssw/n/1000)
}

// MarshalJSON emits the per-direction bars.
func (r *Figure11Result) MarshalJSON() ([]byte, error) {
	type point struct {
		AzimuthDeg float64 `json:"azimuth_deg"`
		CSSMbps    float64 `json:"css_mbps"`
		SSWMbps    float64 `json:"ssw_mbps"`
	}
	pts := make([]point, len(r.Points))
	for i, pt := range r.Points {
		pts[i] = point{pt.AzimuthDeg, pt.CSSMbps, pt.SSWMbps}
	}
	return json.Marshal(struct {
		M      int     `json:"m"`
		Points []point `json:"points"`
	}{r.M, pts})
}

// --- Headline ---

// Summary condenses the paper's three headline claims to one line.
func (h *Headline) Summary() string {
	return fmt.Sprintf("crossover M=%d (stability) / M=%d (SNR), speed-up %.2fx, stability %.1f%% vs %.1f%% SSW",
		h.StabilityCrossoverM, h.SNRCrossoverM, h.SpeedupAt14, 100*h.CSSFullStability, 100*h.SSWStability)
}

// MarshalJSON emits the headline numbers with the paper's reference
// values alongside.
func (h *Headline) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		StabilityCrossoverM int      `json:"stability_crossover_m"`
		SNRCrossoverM       int      `json:"snr_crossover_m"`
		SSWStability        float64  `json:"ssw_stability"`
		CSSFullStability    float64  `json:"css_full_stability"`
		SSWLossDB           *float64 `json:"ssw_loss_db"`
		CSSLossAt6DB        *float64 `json:"css_loss_at_6_db"`
		SpeedupAt14         float64  `json:"speedup_at_14"`
	}{h.StabilityCrossoverM, h.SNRCrossoverM, h.SSWStability, h.CSSFullStability,
		jsonNum(h.SSWLossDB), jsonNum(h.CSSLossAt6DB), h.SpeedupAt14})
}

// --- Ablations ---

type ablationRowJSON struct {
	Label string   `json:"label"`
	Value *float64 `json:"value"`
	Unit  string   `json:"unit"`
}

func ablationDTO(a *AblationResult) (string, []ablationRowJSON) {
	rows := make([]ablationRowJSON, len(a.Rows))
	for i, r := range a.Rows {
		rows[i] = ablationRowJSON{r.Label, jsonNum(r.Value), r.Unit}
	}
	return a.Name, rows
}

// Summary names the ablation and its first (headline) quantity.
func (a *AblationResult) Summary() string {
	if len(a.Rows) == 0 {
		return a.Name
	}
	r := a.Rows[0]
	return fmt.Sprintf("%s: %s %.3f %s", a.Name, r.Label, r.Value, r.Unit)
}

// MarshalJSON emits the measured rows.
func (a *AblationResult) MarshalJSON() ([]byte, error) {
	name, rows := ablationDTO(a)
	return json.Marshal(struct {
		Name string            `json:"name"`
		Rows []ablationRowJSON `json:"rows"`
	}{name, rows})
}

// Summary counts the bundled ablations.
func (s *AblationSet) Summary() string {
	names := make([]string, len(s.Ablations))
	for i, a := range s.Ablations {
		name := a.Name
		if cut := strings.IndexAny(name, ":("); cut > 0 {
			name = strings.TrimSpace(name[:cut])
		}
		names[i] = name
	}
	return fmt.Sprintf("%d ablation studies: %s", len(s.Ablations), strings.Join(names, "; "))
}

// MarshalJSON emits the bundled ablations in run order.
func (s *AblationSet) MarshalJSON() ([]byte, error) {
	type one struct {
		Name string            `json:"name"`
		Rows []ablationRowJSON `json:"rows"`
	}
	out := make([]one, len(s.Ablations))
	for i, a := range s.Ablations {
		out[i].Name, out[i].Rows = ablationDTO(a)
	}
	return json.Marshal(struct {
		Ablations []one `json:"ablations"`
	}{out})
}

// --- Retraining ---

// Summary reports the best-tracking cell.
func (r *RetrainingResult) Summary() string {
	best := -1
	for i, pt := range r.Points {
		if best < 0 || pt.MeanLossDB < r.Points[best].MeanLossDB {
			best = i
		}
	}
	if best < 0 {
		return fmt.Sprintf("no retraining cells at %.0f°/s", r.DegPerSec)
	}
	pt := r.Points[best]
	return fmt.Sprintf("best tracking at %.0f°/s: %s @ %v (%.2f dB loss, %.0f Mbps)",
		r.DegPerSec, pt.Policy, pt.Interval, pt.MeanLossDB, pt.MeanMbps)
}

// MarshalJSON emits the policy × cadence grid.
func (r *RetrainingResult) MarshalJSON() ([]byte, error) {
	type point struct {
		Policy       string   `json:"policy"`
		IntervalMS   float64  `json:"interval_ms"`
		MeanLossDB   *float64 `json:"mean_loss_db"`
		MeanMbps     *float64 `json:"mean_mbps"`
		ProbesPerSec float64  `json:"probes_per_sec"`
	}
	pts := make([]point, len(r.Points))
	for i, pt := range r.Points {
		pts[i] = point{pt.Policy, ms(pt.Interval), jsonNum(pt.MeanLossDB), jsonNum(pt.MeanMbps), pt.ProbesPerSec}
	}
	return json.Marshal(struct {
		DegPerSec float64 `json:"deg_per_sec"`
		Points    []point `json:"points"`
	}{r.DegPerSec, pts})
}

// --- Blockage ---

// Summary reports the rescue the backup sector provides.
func (r *BlockageResult) Summary() string {
	return fmt.Sprintf("backup found in %d/%d rounds; under blockage backup holds %.1f dB vs primary %.1f dB (oracle %.1f dB)",
		r.BackupFound, r.Rounds, r.BlockedBackupSNRdB, r.BlockedPrimarySNRdB, r.OracleBlockedSNRdB)
}

// MarshalJSON emits the before/after SNR table.
func (r *BlockageResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Rounds              int     `json:"rounds"`
		BackupFound         int     `json:"backup_found"`
		PrimarySNRdB        float64 `json:"primary_snr_db"`
		BackupSNRdB         float64 `json:"backup_snr_db"`
		BlockedPrimarySNRdB float64 `json:"blocked_primary_snr_db"`
		BlockedBackupSNRdB  float64 `json:"blocked_backup_snr_db"`
		OracleBlockedSNRdB  float64 `json:"oracle_blocked_snr_db"`
	}{r.Rounds, r.BackupFound, r.PrimarySNRdB, r.BackupSNRdB,
		r.BlockedPrimarySNRdB, r.BlockedBackupSNRdB, r.OracleBlockedSNRdB})
}

// --- Density ---

// Summary compares the saturation densities at the mobility cadence.
func (r *DensityResult) Summary() string {
	css := ""
	for _, pt := range r.Points {
		if strings.HasPrefix(pt.Policy, "CSS") {
			css = pt.Policy
			break
		}
	}
	fmtSat := func(p int) string {
		if p == 0 {
			return "never saturates"
		}
		return fmt.Sprintf("saturates at %d pairs", p)
	}
	return fmt.Sprintf("at 100 ms cadence SSW %s, %s %s",
		fmtSat(r.SaturationPairs("SSW", 100*time.Millisecond)),
		css, fmtSat(r.SaturationPairs(css, 100*time.Millisecond)))
}

// MarshalJSON emits the density grid.
func (r *DensityResult) MarshalJSON() ([]byte, error) {
	type point struct {
		Pairs         int      `json:"pairs"`
		Policy        string   `json:"policy"`
		IntervalMS    float64  `json:"interval_ms"`
		TrainShare    float64  `json:"train_share"`
		AggregateMbps *float64 `json:"aggregate_mbps"`
		PerPairMbps   *float64 `json:"per_pair_mbps"`
		Saturated     bool     `json:"saturated"`
	}
	pts := make([]point, len(r.Points))
	for i, pt := range r.Points {
		pts[i] = point{pt.Pairs, pt.Policy, ms(pt.Interval), pt.TrainShare,
			jsonNum(pt.AggregateMbps), jsonNum(pt.PerPairMbps), pt.MediumSaturate}
	}
	return json.Marshal(struct {
		LinkSNRdB float64 `json:"link_snr_db"`
		Points    []point `json:"points"`
	}{r.LinkSNRdB, pts})
}

// --- Densify ---

// Summary compares the policies on the largest evaluated codebook.
func (r *DensifyResult) Summary() string {
	maxN := 0
	var css, ssw *DensifyPoint
	for i := range r.Points {
		if r.Points[i].Sectors > maxN {
			maxN = r.Points[i].Sectors
		}
	}
	for i := range r.Points {
		pt := &r.Points[i]
		if pt.Sectors != maxN {
			continue
		}
		if strings.HasPrefix(pt.Policy, "CSS") {
			css = pt
		} else {
			ssw = pt
		}
	}
	if css == nil || ssw == nil {
		return fmt.Sprintf("%d codebook cells evaluated", len(r.Points))
	}
	return fmt.Sprintf("at %d sectors: %s loss %.2f dB with %d probes vs SSW %.2f dB with %d probes",
		maxN, css.Policy, css.MeanLossDB, css.Probes, ssw.MeanLossDB, ssw.Probes)
}

// MarshalJSON emits the codebook-size grid.
func (r *DensifyResult) MarshalJSON() ([]byte, error) {
	type point struct {
		Sectors        int      `json:"sectors"`
		Policy         string   `json:"policy"`
		Probes         int      `json:"probes"`
		TrainTimeMS    float64  `json:"train_time_ms"`
		MeanLossDB     *float64 `json:"mean_loss_db"`
		MedianAzErrDeg *float64 `json:"median_az_err_deg"`
	}
	pts := make([]point, len(r.Points))
	for i, pt := range r.Points {
		pts[i] = point{pt.Sectors, pt.Policy, pt.Probes, ms(pt.TrainTime),
			jsonNum(pt.MeanLossDB), jsonNum(pt.MedianAzErr)}
	}
	return json.Marshal(struct {
		Points []point `json:"points"`
	}{pts})
}

// --- Fault sweep ---

// Summary reports the resilience headline: hard errors must stay zero.
func (r *FaultSweepResult) Summary() string {
	hard, trials, worst := 0, 0, 0.0
	for _, pt := range r.Points {
		hard += pt.HardErrors
		trials += pt.Trials
		if pt.P95LossDB > worst {
			worst = pt.P95LossDB
		}
	}
	return fmt.Sprintf("%d hard errors across %d trials at %d loss rates; worst p95 loss %.2f dB",
		hard, trials, len(r.Points), worst)
}

// MarshalJSON emits the campaign configuration and the per-rate rows.
func (r *FaultSweepResult) MarshalJSON() ([]byte, error) {
	type point struct {
		LossRate     float64 `json:"loss_rate"`
		Trials       int     `json:"trials"`
		HardErrors   int     `json:"hard_errors"`
		Degraded     int     `json:"degraded"`
		Retried      int     `json:"retried"`
		MedianLossDB float64 `json:"median_loss_db"`
		P95LossDB    float64 `json:"p95_loss_db"`
	}
	pts := make([]point, len(r.Points))
	for i, pt := range r.Points {
		pts[i] = point{pt.LossRate, pt.Trials, pt.HardErrors, pt.Degraded, pt.Retried, pt.MedianLossDB, pt.P95LossDB}
	}
	return json.Marshal(struct {
		LossRates  []float64 `json:"loss_rates"`
		MeanBurst  float64   `json:"mean_burst"`
		Trials     int       `json:"trials_per_rate"`
		M          int       `json:"m"`
		Retries    int       `json:"retries"`
		SNRCheckDB float64   `json:"snr_check_db"`
		Seed       int64     `json:"seed"`
		Points     []point   `json:"points"`
	}{r.Config.LossRates, r.Config.MeanBurst, r.Config.Trials, r.Config.M,
		r.Config.Retries, r.Config.SNRCheckDB, r.Config.Seed, pts})
}
