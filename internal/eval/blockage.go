package eval

import (
	"context"
	"fmt"
	"strings"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
)

// BlockageResult quantifies the BeamSpy-style extension: estimate the
// secondary (reflected) path from one compressive probing round, and
// when the line of sight gets blocked, switch to the backup sector
// without retraining.
type BlockageResult struct {
	Rounds int
	// BackupFound counts rounds where a distinct secondary-path sector
	// was available.
	BackupFound int
	// PrimarySNRdB / BackupSNRdB are mean true SNRs before blockage.
	PrimarySNRdB float64
	BackupSNRdB  float64
	// BlockedPrimarySNRdB is the primary sector's mean SNR after LOS
	// blockage (usually a dead link).
	BlockedPrimarySNRdB float64
	// BlockedBackupSNRdB is the backup's mean SNR after blockage — the
	// link it rescues.
	BlockedBackupSNRdB float64
	// OracleBlockedSNRdB is the best achievable SNR under blockage.
	OracleBlockedSNRdB float64
}

// BlockageStudy runs the experiment in the conference room: the devices
// communicate over LOS, CSS with backup estimates both paths, then the
// LOS is blocked and the backup takes over. ctx cancels the study
// between rounds.
func BlockageStudy(ctx context.Context, p *Platform, m, rounds int, rng *stats.RNG) (*BlockageResult, error) {
	if m <= 0 {
		m = 20
	}
	if rounds <= 0 {
		rounds = 20
	}
	dutPose, probePose := testbed.FacingPoses(6, 1.2)
	p.DUT.SetPose(dutPose)
	p.Probe.SetPose(probePose)

	// The deployment sits beside a metal whiteboard: a strong specular
	// reflector a meter and a half off the link axis, giving the
	// environment a usable secondary path.
	addBoard := func(env *channel.Environment) *channel.Environment {
		env.Reflectors = append(env.Reflectors,
			channel.NewWallY("metal-whiteboard", 1.6, 1.0, 5.0, 0.6, 2.0, 5))
		return env
	}
	open := addBoard(channel.ConferenceRoom())
	blocked := addBoard(channel.ConferenceRoom())
	blocked.LOSBlocked = true
	openLink := newLink(open, p)
	blockedLink := newLink(blocked, p)

	res := &BlockageResult{Rounds: rounds}
	var primSum, backSum, blockPrimSum, blockBackSum, oracleSum float64
	found := 0
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		probeSet, err := core.RandomProbes(rng, sector.TalonTX(), m)
		if err != nil {
			return nil, err
		}
		meas, err := openLink.RunTXSS(p.DUT, p.Probe, dot11ad.SubSweepSchedule(probeSet))
		if err != nil {
			return nil, err
		}
		sel, err := p.Estimator.SelectWithBackup(ctx, core.ProbesFromMeasurements(probeSet.IDs(), meas), 18)
		if err != nil || !sel.HasBackup {
			continue
		}
		found++
		primSum += openLink.TrueSNR(p.DUT, p.Probe, sel.Primary.Sector)
		backSum += openLink.TrueSNR(p.DUT, p.Probe, sel.Backup.Sector)
		blockPrimSum += clampSNR(blockedLink.TrueSNR(p.DUT, p.Probe, sel.Primary.Sector))
		blockBackSum += clampSNR(blockedLink.TrueSNR(p.DUT, p.Probe, sel.Backup.Sector))
		best := -1e9
		for _, id := range sector.TalonTX() {
			if snr := clampSNR(blockedLink.TrueSNR(p.DUT, p.Probe, id)); snr > best {
				best = snr
			}
		}
		oracleSum += best
	}
	res.BackupFound = found
	if found > 0 {
		n := float64(found)
		res.PrimarySNRdB = primSum / n
		res.BackupSNRdB = backSum / n
		res.BlockedPrimarySNRdB = blockPrimSum / n
		res.BlockedBackupSNRdB = blockBackSum / n
		res.OracleBlockedSNRdB = oracleSum / n
	}
	return res, nil
}

// clampSNR floors -Inf (dead link) at a displayable value.
func clampSNR(snr float64) float64 {
	if snr < -40 {
		return -40
	}
	return snr
}

// Table renders the study.
func (r *BlockageResult) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Blockage study: backup sector from multipath estimation (conference room)")
	fmt.Fprintf(&b, "  backup available:            %d/%d rounds\n", r.BackupFound, r.Rounds)
	fmt.Fprintf(&b, "  LOS open:    primary %6.2f dB, backup %6.2f dB\n", r.PrimarySNRdB, r.BackupSNRdB)
	fmt.Fprintf(&b, "  LOS blocked: primary %6.2f dB, backup %6.2f dB (oracle %6.2f dB)\n",
		r.BlockedPrimarySNRdB, r.BlockedBackupSNRdB, r.OracleBlockedSNRdB)
	return b.String()
}
