package eval

import (
	"math"
	"time"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/wil"
)

// Retraining-study horizons per fidelity.
const (
	fullRetrainingDuration  = 20 * time.Second
	quickRetrainingDuration = 6 * time.Second
)

// studyRNG derives a study's RNG from the Config seed, labelled so the
// streams match what the pre-registry evalrunner passed to each study.
func studyRNG(cfg Config, label string) *stats.RNG {
	return stats.NewRNG(cfg.Seed).Split(label)
}

// newLink wires the platform's devices into env.
func newLink(env *channel.Environment, p *Platform) *wil.Link {
	return wil.NewLink(env, p.DUT, p.Probe)
}

// runSubSweep performs a one-directional probing sweep over probeSet from
// the DUT to the probe.
func runSubSweep(link *wil.Link, p *Platform, probeSet *sector.Set) (map[sector.ID]radio.Measurement, error) {
	return link.RunTXSS(p.DUT, p.Probe, dot11ad.SubSweepSchedule(probeSet))
}

// trueLoss returns trueSNR(best sector) − trueSNR(selected) at the
// devices' current poses.
func trueLoss(link *wil.Link, p *Platform, selected sector.ID) (float64, bool) {
	best := math.Inf(-1)
	for _, id := range sector.TalonTX() {
		if snr := link.TrueSNR(p.DUT, p.Probe, id); snr > best {
			best = snr
		}
	}
	got := link.TrueSNR(p.DUT, p.Probe, selected)
	if math.IsInf(best, -1) || math.IsInf(got, -1) {
		return 0, false
	}
	return best - got, true
}
