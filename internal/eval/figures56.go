package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/sector"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// PatternSummary describes one measured sector pattern, the per-sector
// information Figures 5 and 6 plot.
type PatternSummary struct {
	Sector  sector.ID
	PeakAz  float64
	PeakEl  float64
	PeakSNR float64
	MeanSNR float64
	// Directivity is peak − mean in dB: high for unidirectional
	// sectors, low for wide/weak ones.
	Directivity float64
}

// PatternResult is the outcome of a pattern campaign experiment.
type PatternResult struct {
	Name      string
	Grid      *geom.Grid
	Patterns  *pattern.Set
	Summaries []PatternSummary
}

// runCampaign builds a fresh chamber rig and measures all 35 patterns on
// grid.
func runCampaign(ctx context.Context, name string, seed int64, grid *geom.Grid, repeats int) (*PatternResult, error) {
	dut, err := wil.NewDevice(wil.Config{Name: "fig-dut", MAC: dot11ad.MACAddr{2, 0, 0, 0, 1, 1}, Seed: seed})
	if err != nil {
		return nil, err
	}
	probe, err := wil.NewDevice(wil.Config{Name: "fig-probe", MAC: dot11ad.MACAddr{2, 0, 0, 0, 1, 2}, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	if err := dut.Jailbreak(); err != nil {
		return nil, err
	}
	if err := probe.Jailbreak(); err != nil {
		return nil, err
	}
	link := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(link, dut, probe, seed+2)
	campaign.Repeats = repeats
	set, err := campaign.MeasureAllPatterns(ctx, grid)
	if err != nil {
		return nil, err
	}
	res := &PatternResult{Name: name, Grid: grid, Patterns: set}
	for _, id := range set.IDs() {
		p := set.Get(id)
		az, el, g := p.Peak()
		res.Summaries = append(res.Summaries, PatternSummary{
			Sector:      id,
			PeakAz:      az,
			PeakEl:      el,
			PeakSNR:     g,
			MeanSNR:     p.MeanGain(),
			Directivity: p.Directivity(),
		})
	}
	sort.Slice(res.Summaries, func(i, j int) bool { return res.Summaries[i].Sector < res.Summaries[j].Sector })
	return res, nil
}

// Figure5 measures the azimuth-plane patterns of all 35 sectors
// (−180°…180°, elevation 0), the paper's Figure 5. Pass azStep 0.9 for
// the paper's resolution or a coarser step for smoke runs.
func Figure5(ctx context.Context, seed int64, azStep float64, repeats int) (*PatternResult, error) {
	if azStep <= 0 {
		azStep = 0.9
	}
	grid, err := geom.UniformGrid(-180, 180, azStep, 0, 0, 1)
	if err != nil {
		return nil, err
	}
	return runCampaign(ctx, "figure5-azimuth-patterns", seed, grid, repeats)
}

// Figure6 measures the spherical patterns (azimuth ±90°, elevation
// 0…32.4°), the paper's Figure 6. Steps of (1.8, 3.6) match the paper.
func Figure6(ctx context.Context, seed int64, azStep, elStep float64, repeats int) (*PatternResult, error) {
	if azStep <= 0 {
		azStep = 1.8
	}
	if elStep <= 0 {
		elStep = 3.6
	}
	grid, err := geom.UniformGrid(-90, 90, azStep, 0, 32.4, elStep)
	if err != nil {
		return nil, err
	}
	return runCampaign(ctx, "figure6-spherical-patterns", seed, grid, repeats)
}

// Table renders the per-sector summary table.
func (r *PatternResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dx%d grid)\n", r.Name, r.Grid.NumAz(), r.Grid.NumEl())
	fmt.Fprintf(&b, "%-7s %9s %9s %9s %9s %12s\n", "sector", "peak az", "peak el", "peak SNR", "mean SNR", "directivity")
	for _, s := range r.Summaries {
		fmt.Fprintf(&b, "%-7v %8.1f° %8.1f° %6.2f dB %6.2f dB %9.2f dB\n",
			s.Sector, s.PeakAz, s.PeakEl, s.PeakSNR, s.MeanSNR, s.Directivity)
	}
	return b.String()
}

// Classify groups the measured sectors the way Section 4.4 discusses
// them: strong unidirectional, multi-lobe/wide, and weak (peaking well
// below the strongest sectors within the measured region).
func (r *PatternResult) Classify() (strong, wide, weak []sector.ID) {
	maxPeak := math.Inf(-1)
	for _, s := range r.Summaries {
		if s.Sector != sector.RX && s.PeakSNR > maxPeak {
			maxPeak = s.PeakSNR
		}
	}
	for _, s := range r.Summaries {
		if s.Sector == sector.RX {
			continue
		}
		switch {
		case s.PeakSNR < maxPeak-5:
			weak = append(weak, s.Sector)
		case s.Directivity > 8 && !math.IsNaN(s.PeakSNR):
			strong = append(strong, s.Sector)
		default:
			wide = append(wide, s.Sector)
		}
	}
	return strong, wide, weak
}
