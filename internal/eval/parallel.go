package eval

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"talon/internal/core"
)

// parallelismKnob caps the worker count of the trial loops; 0 means
// runtime.GOMAXPROCS.
var parallelismKnob atomic.Int32

// SetParallelism caps the number of workers the evaluation trial loops
// use. 0 restores the default (GOMAXPROCS); 1 forces serial execution.
// Results are identical at any setting: randomness is drawn serially
// before the trials fan out.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelismKnob.Store(int32(n))
}

// Parallelism returns the effective trial-loop worker count.
func Parallelism() int {
	if n := int(parallelismKnob.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(0..n-1) across at most workers goroutines, using a
// shared atomic cursor so finished workers steal remaining indices. It
// observes ctx between iterations and returns ctx.Err() when cancelled
// (already-started iterations still finish).
func parallelFor(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	metWorkers.Set(int64(workers))
	// Trial workers × engine shards must not oversubscribe the machine:
	// cap the engine's per-estimate sharding so the combined goroutine
	// count stays at GOMAXPROCS (each estimate is pure CPU work, so
	// extra goroutines only add scheduler churn). Restore the previous
	// cap on exit — campaigns may nest inside callers with their own.
	if workers > 1 {
		shards := runtime.GOMAXPROCS(0) / workers
		if shards < 1 {
			shards = 1
		}
		prev := core.SetMaxShards(shards)
		defer core.SetMaxShards(prev)
	}
	loopStart := time.Now() //lint:allow determinism -- worker-utilization metrics time the wall clock by design
	defer metLoopSeconds.ObserveSince(loopStart)
	// busyNanos accumulates per-iteration time across workers; utilization
	// is the busy fraction of workers x wall time for this loop.
	var busyNanos atomic.Int64
	defer func() {
		wall := time.Since(loopStart) //lint:allow determinism -- worker-utilization metrics time the wall clock by design
		if wall > 0 {
			metWorkerUtilization.Set(float64(busyNanos.Load()) / (float64(workers) * float64(wall)))
		}
	}()
	run := func(i int) {
		start := time.Now() //lint:allow determinism -- worker-utilization metrics time the wall clock by design
		fn(i)
		busyNanos.Add(int64(time.Since(start))) //lint:allow determinism -- worker-utilization metrics time the wall clock by design
		metTrials.Inc()
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
