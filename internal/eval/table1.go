package eval

import (
	"fmt"
	"strings"

	"talon/internal/dot11ad"
)

// Table1Result reproduces the paper's Table 1: the sector ID transmitted
// at each CDOWN value of the beacon and sweep bursts.
type Table1Result struct {
	Beacon []dot11ad.BurstSlot
	Sweep  []dot11ad.BurstSlot
}

// Table1 reads the stock burst schedules out of the firmware model.
func Table1() *Table1Result {
	return &Table1Result{
		Beacon: dot11ad.BeaconSchedule(),
		Sweep:  dot11ad.SweepSchedule(),
	}
}

// Table renders the table in the paper's layout: one row per burst type,
// one column per CDOWN value (34 → 0), "-" for unused slots.
func (t *Table1Result) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: sector IDs per CDOWN value in beacon and sweep bursts")
	row := func(name string, slots []dot11ad.BurstSlot) {
		fmt.Fprintf(&b, "%-7s", name)
		for _, s := range slots {
			if s.Used {
				fmt.Fprintf(&b, "%4v", s.Sector)
			} else {
				fmt.Fprintf(&b, "%4s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-7s", "CDOWN")
	for _, s := range t.Beacon {
		fmt.Fprintf(&b, "%4d", s.CDOWN)
	}
	fmt.Fprintln(&b)
	row("Beacon", t.Beacon)
	row("Sweep", t.Sweep)
	return b.String()
}
