package eval

import "talon/internal/obs"

// Evaluation-campaign metrics (see README, "Observability"). Trial counts
// tick once per trial; utilization is recomputed once per parallelFor call.
var (
	metTrials = obs.NewCounter("eval_trials_total",
		"evaluation trials completed across all campaigns")
	metWorkers = obs.NewGauge("eval_workers",
		"worker goroutines used by the most recent trial loop")
	metWorkerUtilization = obs.NewFloatGauge("eval_worker_utilization",
		"busy fraction of the most recent trial loop (busy time / workers x wall time)")
	metLoopSeconds = obs.NewHistogram("eval_loop_seconds",
		"wall time of trial loops", obs.LatencyBuckets)
	metBatchTrials = obs.NewCounter("eval_batch_trials_total",
		"trace-evaluation trials run through the batched estimation path")
)
