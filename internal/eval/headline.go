package eval

import (
	"context"
	"fmt"
	"strings"

	"talon/internal/stats"
)

// Headline condenses the paper's headline claims from the experiment
// results: how many probing sectors CSS needs to match the stock sweep,
// and the resulting training speed-up.
type Headline struct {
	// StabilityCrossoverM: smallest M where CSS stability ≥ SSW
	// (paper: 13).
	StabilityCrossoverM int
	// SNRCrossoverM: smallest M where CSS SNR loss ≤ SSW (paper: 14).
	SNRCrossoverM int
	// SSWStability and CSSFullStability (paper: 73.9% and 94.7%).
	SSWStability     float64
	CSSFullStability float64
	// SSWLossDB (paper ≈ 0.5 dB) and CSSLossAt6DB (paper ≈ 2.5 dB).
	SSWLossDB    float64
	CSSLossAt6DB float64
	// SpeedupAt14 (paper: 2.3×).
	SpeedupAt14 float64
}

// ComputeHeadline derives the headline numbers from an environment study.
func ComputeHeadline(ctx context.Context, s *EnvironmentStudy) (*Headline, error) {
	f10, err := Figure10(ctx)
	if err != nil {
		return nil, err
	}
	h := &Headline{SpeedupAt14: f10.Speedup()}
	conf := s.Conference
	h.SSWStability = conf.SSW.Stability
	h.SSWLossDB = stats.Mean(conf.SSW.SNRLoss)
	if f8, ok := (&Figure8Result{Conference: conf}).CrossoverM(); ok {
		h.StabilityCrossoverM = f8
	}
	if f9, ok := (&Figure9Result{Conference: conf}).CrossoverM(); ok {
		h.SNRCrossoverM = f9
	}
	for _, m := range conf.PerM {
		if m.M == 6 {
			h.CSSLossAt6DB = stats.Mean(m.SNRLoss)
		}
		if m.M == 34 || m.M == conf.PerM[len(conf.PerM)-1].M {
			h.CSSFullStability = m.Stability
		}
	}
	return h, nil
}

// Table renders the headline comparison against the paper's values.
func (h *Headline) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Headline results (paper value in parentheses)")
	fmt.Fprintf(&b, "  stability crossover M:     %d (13)\n", h.StabilityCrossoverM)
	fmt.Fprintf(&b, "  SNR-loss crossover M:      %d (14)\n", h.SNRCrossoverM)
	fmt.Fprintf(&b, "  SSW stability:             %.1f%% (73.9%%)\n", 100*h.SSWStability)
	fmt.Fprintf(&b, "  CSS stability, all probes: %.1f%% (94.7%%)\n", 100*h.CSSFullStability)
	fmt.Fprintf(&b, "  SSW SNR loss:              %.2f dB (0.5 dB)\n", h.SSWLossDB)
	fmt.Fprintf(&b, "  CSS SNR loss at M=6:       %.2f dB (2.5 dB)\n", h.CSSLossAt6DB)
	fmt.Fprintf(&b, "  training speed-up at M=14: %.2fx (2.3x)\n", h.SpeedupAt14)
	return b.String()
}
