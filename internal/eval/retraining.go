package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"talon/internal/channel"
	"talon/internal/session"
	"talon/internal/stats"
	"talon/internal/testbed"
)

// RetrainingPoint is one (policy, cadence) cell of the study.
type RetrainingPoint struct {
	Policy       string
	Interval     time.Duration
	MeanLossDB   float64
	MeanMbps     float64
	ProbesPerSec float64
}

// RetrainingResult quantifies the Section 7 discussion: under mobility,
// compressive training's short airtime lets a node retrain much more
// often than the stock sweep at the same airtime budget, tracking the
// moving peer more closely.
type RetrainingResult struct {
	DegPerSec float64
	Points    []RetrainingPoint
}

// RetrainingStudy orbits the receiver around the transmitter at
// degPerSec and runs the stock sweep and CSS at several retraining
// cadences over the same trajectory. ctx cancels the study between
// session intervals.
func RetrainingStudy(ctx context.Context, p *Platform, degPerSec float64, duration time.Duration, rng *stats.RNG) (*RetrainingResult, error) {
	if duration <= 0 {
		duration = 20 * time.Second
	}
	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	p.DUT.SetPose(dutPose)
	p.Probe.SetPose(probePose)
	link := newLink(channel.Lab(), p)
	res := &RetrainingResult{DegPerSec: degPerSec}

	type variant struct {
		policy   session.Policy
		interval time.Duration
	}
	variants := []variant{
		{session.SSWPolicy{}, time.Second},
		{session.SSWPolicy{}, 250 * time.Millisecond},
		{&session.CSSPolicy{Estimator: p.Estimator, M: 14, RNG: rng.Split("css-1s")}, time.Second},
		{&session.CSSPolicy{Estimator: p.Estimator, M: 14, RNG: rng.Split("css-250ms")}, 250 * time.Millisecond},
		{&session.CSSPolicy{Estimator: p.Estimator, M: 14, RNG: rng.Split("css-100ms")}, 100 * time.Millisecond},
		{&session.EnsembleCSSPolicy{Estimator: p.Estimator, M: 14, RNG: rng.Split("css-ens-250ms")}, 250 * time.Millisecond},
	}
	for _, v := range variants {
		r, err := session.Run(ctx, link, p.DUT, p.Probe, v.policy,
			session.WithDuration(duration),
			session.WithTrainingInterval(v.interval),
			session.WithMobility(session.OrbitMobility(3, degPerSec)),
			session.WithEvalStep(100*time.Millisecond))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, RetrainingPoint{
			Policy:       r.Policy,
			Interval:     v.interval,
			MeanLossDB:   r.MeanLossDB,
			MeanMbps:     r.MeanThroughputMbps,
			ProbesPerSec: float64(r.TotalProbes) / duration.Seconds(),
		})
	}
	return res, nil
}

// Table renders the study.
func (r *RetrainingResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Retraining-cadence study (Section 7): receiver orbiting at %.0f°/s\n", r.DegPerSec)
	fmt.Fprintf(&b, "%-8s %10s %12s %14s %12s\n", "policy", "cadence", "loss [dB]", "tput [Mbps]", "probes/s")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8s %10v %12.2f %14.0f %12.0f\n",
			pt.Policy, pt.Interval, pt.MeanLossDB, pt.MeanMbps, pt.ProbesPerSec)
	}
	return b.String()
}
