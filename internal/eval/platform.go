// Package eval regenerates every table and figure of the paper's
// evaluation: Table 1 (burst schedules), Figures 5–6 (measured sector
// patterns), Figure 7 (angular estimation error), Figure 8 (selection
// stability), Figure 9 (SNR loss), Figure 10 (training time) and
// Figure 11 (throughput), plus the ablation studies DESIGN.md calls out.
//
// Each experiment is a registered Study returning a typed Report: Table
// prints the same rows/series the paper reports, Summary digests them to
// one line, and MarshalJSON emits a machine-readable artifact. Runners
// dispatch by name through Lookup/StudyNames instead of hand-written
// switches.
package eval

import (
	"context"
	"fmt"
	"sync"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// Platform is the experiment rig: two simulated Talon AD7200 devices, the
// DUT's measured sector patterns and the estimator built on them.
type Platform struct {
	// Seed reproduces the whole platform.
	Seed int64
	// DUT and Probe are the two devices (both jailbroken).
	DUT, Probe *wil.Device
	// Patterns holds the DUT's patterns measured in the anechoic
	// chamber on PatternGrid.
	Patterns *pattern.Set
	// Estimator is the CSS estimator over Patterns.
	Estimator *core.Estimator
}

// estimatorOpts is the process-wide estimator configuration of
// NewPlatform; see SetEstimatorOptions.
var (
	estimatorOptsMu sync.Mutex
	estimatorOpts   core.Options
)

// SetEstimatorOptions overrides the estimator options every subsequently
// built Platform uses (the zero value — the default — runs the
// hierarchical coarse-to-fine search; core.Options{ExactSearch: true}
// restores the paper-faithful exhaustive scan). Like SetParallelism it
// is a campaign-level knob, surfaced as evalrunner's -exact flag; set it
// before building platforms, not concurrently with them.
func SetEstimatorOptions(opts core.Options) {
	estimatorOptsMu.Lock()
	defer estimatorOptsMu.Unlock()
	estimatorOpts = opts
}

// EstimatorOptions returns the options SetEstimatorOptions installed.
func EstimatorOptions() core.Options {
	estimatorOptsMu.Lock()
	defer estimatorOptsMu.Unlock()
	return estimatorOpts
}

// NewPlatform creates the devices and runs the chamber pattern campaign
// on grid with the given per-point repeat count. The context is observed
// between campaign grid points.
func NewPlatform(ctx context.Context, seed int64, grid *geom.Grid, repeats int) (*Platform, error) {
	dut, err := wil.NewDevice(wil.Config{
		Name: "talon-dut",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x01},
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	probe, err := wil.NewDevice(wil.Config{
		Name: "talon-probe",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x02},
		Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	if err := dut.Jailbreak(); err != nil {
		return nil, err
	}
	if err := probe.Jailbreak(); err != nil {
		return nil, err
	}
	link := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(link, dut, probe, seed+2)
	campaign.Repeats = repeats
	patterns, err := campaign.MeasureAllPatterns(ctx, grid)
	if err != nil {
		return nil, fmt.Errorf("eval: pattern campaign: %w", err)
	}
	est, err := core.NewEstimator(patterns, EstimatorOptions())
	if err != nil {
		return nil, err
	}
	return &Platform{Seed: seed, DUT: dut, Probe: probe, Patterns: patterns, Estimator: est}, nil
}

// Scan runs an environment scan: the DUT goes on a fresh rotation head at
// the origin, the probe dist meters away, inside env. The context is
// observed between head positions.
func (p *Platform) Scan(ctx context.Context, env *channel.Environment, dist float64, cfg testbed.ScanConfig) ([]testbed.Trace, error) {
	dutPose, probePose := testbed.FacingPoses(dist, 1.2)
	p.DUT.SetPose(dutPose)
	p.Probe.SetPose(probePose)
	link := wil.NewLink(env, p.DUT, p.Probe)
	head := testbed.NewRotationHead(stats.NewRNG(p.Seed).Split("scan-head-" + env.Name))
	return testbed.RunScan(ctx, link, p.DUT, p.Probe, head, cfg)
}

// Fidelity bundles the experiment dimensions so that tests can run the
// same code paths cheaply while the recorded results use full resolution.
type Fidelity struct {
	// Name labels the fidelity ("quick" or "full"); studies with
	// dimensions beyond this struct (repeat counts, trial counts)
	// scale them by it.
	Name string
	// PatternGrid is the chamber campaign grid for CSS pattern
	// knowledge (the scans of Section 6 need elevation coverage).
	PatternGrid *geom.Grid
	// CampaignRepeats is the sweeps averaged per pattern point.
	CampaignRepeats int
	// Lab and Conference are the two scan configurations.
	Lab, Conference testbed.ScanConfig
	// Ms lists the probing-sector counts to evaluate.
	Ms []int
	// SubsetsPerSweep is how many random probing subsets are evaluated
	// per captured sweep and M.
	SubsetsPerSweep int
}

// Full returns the fidelity used for the recorded results: pattern grid
// at 2°/4°, the paper's scan ranges (azimuth subsampled 3× to keep the
// runtime in seconds), and M = 4…34 in steps of 2.
func Full() Fidelity {
	grid, err := geom.UniformGrid(-90, 90, 2, 0, 32, 4)
	if err != nil {
		panic(err)
	}
	lab := testbed.LabScan()
	lab.AzStep *= 3 // 6.75°: 19 positions per elevation
	lab.Elevations = []float64{0, 4, 8, 12, 16, 20, 24, 28}
	lab.SweepsPerPosition = 4
	conf := testbed.ConferenceScan()
	conf.AzStep *= 3 // 3.9°: 31 positions
	conf.SweepsPerPosition = 8
	return Fidelity{
		Name:            "full",
		PatternGrid:     grid,
		CampaignRepeats: 3,
		Lab:             lab,
		Conference:      conf,
		Ms:              []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34},
		SubsetsPerSweep: 3,
	}
}

// Quick reports whether this is the reduced test fidelity.
func (f Fidelity) Quick() bool { return f.Name == "quick" }

// Quick returns a drastically reduced fidelity for unit tests and smoke
// benches.
func Quick() Fidelity {
	grid, err := geom.UniformGrid(-70, 70, 5, 0, 24, 8)
	if err != nil {
		panic(err)
	}
	lab := testbed.ScanConfig{AzMin: -45, AzMax: 45, AzStep: 15, Elevations: []float64{0, 10}, SweepsPerPosition: 2}
	conf := testbed.ScanConfig{AzMin: -45, AzMax: 45, AzStep: 15, Elevations: []float64{0}, SweepsPerPosition: 4}
	return Fidelity{
		Name:            "quick",
		PatternGrid:     grid,
		CampaignRepeats: 2,
		Lab:             lab,
		Conference:      conf,
		Ms:              []int{6, 14, 24, 34},
		SubsetsPerSweep: 2,
	}
}
