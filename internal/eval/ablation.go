package eval

import (
	"context"
	"fmt"
	"math"
	"strings"

	"talon/internal/antenna"
	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
)

// AblationRow is one measured quantity of an ablation study.
type AblationRow struct {
	Label string
	Value float64
	Unit  string
}

// AblationResult is a named list of measured quantities.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Table renders the ablation table.
func (a *AblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", a.Name)
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-42s %10.3f %s\n", r.Label, r.Value, r.Unit)
	}
	return b.String()
}

// AblationSet bundles the five design-choice ablations as one study
// result, so the registry exposes them under a single name the way the
// suite always ran them.
type AblationSet struct {
	Ablations []*AblationResult
}

// Table renders every bundled ablation.
func (s *AblationSet) Table() string {
	parts := make([]string, len(s.Ablations))
	for i, a := range s.Ablations {
		parts[i] = a.Table()
	}
	return strings.Join(parts, "")
}

// runAblationStudies executes the ablation suite in its canonical order
// on the shared platform. The probing RNG stream matches what the
// pre-registry runner drew ("ablations" split, sub-split per study).
func runAblationStudies(ctx context.Context, p *Platform, cfg Config) (Report, error) {
	rng := studyRNG(cfg, "ablations")
	traces, err := p.Scan(ctx, channel.ConferenceRoom(), 6, cfg.Fidelity.Conference)
	if err != nil {
		return nil, err
	}
	subsets := cfg.Fidelity.SubsetsPerSweep
	set := &AblationSet{}
	add := func(a *AblationResult, err error) error {
		if err != nil {
			return err
		}
		set.Ablations = append(set.Ablations, a)
		return nil
	}
	if err := add(AblationJointCorrelation(ctx, p, traces, 14, subsets, rng)); err != nil {
		return nil, err
	}
	if err := add(AblationMeasuredVsIdeal(ctx, p, traces, 14, subsets, rng)); err != nil {
		return nil, err
	}
	if err := add(AblationProbeSelection(ctx, p, traces, 14, subsets, rng)); err != nil {
		return nil, err
	}
	if err := add(AblationRandomBeams(cfg.Seed, 6)); err != nil {
		return nil, err
	}
	steps := 200
	if cfg.Fidelity.Quick() {
		steps = 60
	}
	if err := add(AblationAdaptiveProbes(ctx, p, steps, rng)); err != nil {
		return nil, err
	}
	return set, nil
}

// AblationJointCorrelation quantifies the Section 5 design choice: the
// joint SNR·RSSI correlation (Eq. 5) against SNR-only correlation
// (Eq. 3), on the same traces at probing count m.
func AblationJointCorrelation(ctx context.Context, p *Platform, traces []testbed.Trace, m, subsets int, rng *stats.RNG) (*AblationResult, error) {
	snrOnly, err := core.NewEstimator(p.Patterns, core.Options{SNROnly: true})
	if err != nil {
		return nil, err
	}
	joint, err := EvaluateTraces(ctx, "joint", traces, p.Estimator, []int{m}, subsets, rng.Split("joint"))
	if err != nil {
		return nil, err
	}
	snr, err := EvaluateTraces(ctx, "snr-only", traces, snrOnly, []int{m}, subsets, rng.Split("snr-only"))
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: fmt.Sprintf("Eq.5 joint SNR*RSSI correlation vs SNR-only (M=%d)", m),
		Rows: []AblationRow{
			{"joint: mean azimuth error", stats.Mean(joint.PerM[0].AzErrs), "deg"},
			{"SNR-only: mean azimuth error", stats.Mean(snr.PerM[0].AzErrs), "deg"},
			{"joint: mean SNR loss", stats.Mean(joint.PerM[0].SNRLoss), "dB"},
			{"SNR-only: mean SNR loss", stats.Mean(snr.PerM[0].SNRLoss), "dB"},
		},
	}, nil
}

// AblationMeasuredVsIdeal compares CSS on the device's *measured*
// patterns against CSS fed with theoretical patterns "based on
// geometrical antenna layouts" (the prior-work approach the paper argues
// against): without access to the firmware's actual codebook, theory can
// only assume ideal full-aperture beams steered at uniformly spread
// azimuths — missing the real sectors' multi-lobe shapes, partial
// apertures, elevation steering, weak sectors and per-device hardware
// distortions.
func AblationMeasuredVsIdeal(ctx context.Context, p *Platform, traces []testbed.Trace, m, subsets int, rng *stats.RNG) (*AblationResult, error) {
	ideal, err := idealEstimator(p)
	if err != nil {
		return nil, err
	}
	measured, err := EvaluateTraces(ctx, "measured", traces, p.Estimator, []int{m}, subsets, rng.Split("measured"))
	if err != nil {
		return nil, err
	}
	theo, err := EvaluateTraces(ctx, "ideal", traces, ideal, []int{m}, subsets, rng.Split("ideal"))
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: fmt.Sprintf("measured patterns vs theoretical array-factor patterns (M=%d)", m),
		Rows: []AblationRow{
			{"measured patterns: mean azimuth error", stats.Mean(measured.PerM[0].AzErrs), "deg"},
			{"theoretical patterns: mean azimuth error", stats.Mean(theo.PerM[0].AzErrs), "deg"},
			{"measured patterns: mean SNR loss", stats.Mean(measured.PerM[0].SNRLoss), "dB"},
			{"theoretical patterns: mean SNR loss", stats.Mean(theo.PerM[0].SNRLoss), "dB"},
		},
	}, nil
}

// idealEstimator builds an estimator from geometric theory: an ideal
// (error-free) array steering full-aperture beams at uniformly spread
// azimuths, one per sector ID — what a researcher without firmware access
// would assume, sampled noiselessly on the platform's pattern grid.
func idealEstimator(p *Platform) (*core.Estimator, error) {
	cfg := p.DUT.Array().Config()
	cfg.PhaseErrStd = 0
	cfg.GainErrStdDB = 0
	cfg.FrontRippleStdDB = 0
	ref, err := antenna.New(cfg, stats.NewRNG(0))
	if err != nil {
		return nil, err
	}
	cb := antenna.NewCodebook()
	ids := sector.TalonTX()
	for i, id := range ids {
		az := -75 + 150*float64(i)/float64(len(ids)-1)
		cb.Put(id, ref.SteeringWeights(az, 0))
	}
	grid := gridOf(p.Patterns)
	set := antenna.SamplePatterns(ref, cb, grid)
	return core.NewEstimator(set, core.Options{})
}

func gridOf(set *pattern.Set) *geom.Grid {
	for _, id := range set.IDs() {
		return set.Get(id).Grid()
	}
	return nil
}

// AblationProbeSelection compares random probing subsets against the
// deterministic gain-informed selection of Section 7 at probing count m.
func AblationProbeSelection(ctx context.Context, p *Platform, traces []testbed.Trace, m, subsets int, rng *stats.RNG) (*AblationResult, error) {
	random, err := EvaluateTraces(ctx, "random", traces, p.Estimator, []int{m}, subsets, rng.Split("random"))
	if err != nil {
		return nil, err
	}
	informedSet, err := core.GainInformedProbes(p.Patterns, m)
	if err != nil {
		return nil, err
	}
	var azErrs, losses []float64
	for _, tr := range traces {
		for _, sweep := range tr.Sweeps {
			probes := core.ProbesFromMeasurements(informedSet.IDs(), sweep)
			sel, err := p.Estimator.SelectSector(ctx, probes)
			if err != nil {
				continue
			}
			azErrs = append(azErrs, math.Abs(geom.WrapAz(sel.AoA.Az-tr.TrueAz)))
			if loss, ok := snrLoss(tr, sel.Sector); ok {
				losses = append(losses, loss)
			}
		}
	}
	return &AblationResult{
		Name: fmt.Sprintf("random vs gain-informed probing sectors (M=%d)", m),
		Rows: []AblationRow{
			{"random probes: mean azimuth error", stats.Mean(random.PerM[0].AzErrs), "deg"},
			{"gain-informed probes: mean azimuth error", stats.Mean(azErrs), "deg"},
			{"random probes: mean SNR loss", stats.Mean(random.PerM[0].SNRLoss), "dB"},
			{"gain-informed probes: mean SNR loss", stats.Mean(losses), "dB"},
		},
	}, nil
}

// AblationRandomBeams reproduces the paper's preliminary experiment:
// pseudo-random probing beams (prior compressive-tracking work)
// substantially reduce link quality on this hardware compared to the
// predefined sectors. For each direction it evaluates the best-beam SNR
// (the link budget the data connection gets) and the fraction of beams
// whose probe frames are decodable (the measurements compressive
// estimation has to work with).
func AblationRandomBeams(seed int64, dist float64) (*AblationResult, error) {
	rng := stats.NewRNG(seed)
	arr, err := antenna.New(antenna.TalonConfig(), rng.Split("array"))
	if err != nil {
		return nil, err
	}
	predefined := antenna.Talon(arr)
	random := antenna.RandomCodebook(arr, rng.Split("beams"), 34)
	budget := radio.DefaultBudget()
	tx := channel.Pose{}
	tx.Pos.Z = 1.2
	env := channel.AnechoicChamber()

	evaluate := func(cb *antenna.Codebook) (meanBestSNR, meanDecodable float64) {
		rxGain := func(az, el float64) float64 { return 0 } // quasi-omni peer
		n := 0
		for az := -60.0; az <= 60; az += 5 {
			rx := channel.Pose{Yaw: 180 + az}
			rx.Pos.X = dist * math.Cos(geom.Deg2Rad(az))
			rx.Pos.Y = dist * math.Sin(geom.Deg2Rad(az))
			rx.Pos.Z = 1.2
			best := math.Inf(-1)
			clean, beams := 0, 0
			for _, id := range cb.IDs() {
				if id == sector.RX {
					continue
				}
				w, _ := cb.Weights(id)
				txGain := func(a, e float64) float64 { return arr.Gain(w, a, e) }
				snr := radio.TrueSNR(env, tx, rx, txGain, rxGain, budget)
				if snr > best {
					best = snr
				}
				beams++
				// Readings above ~3 dB escape the low-SNR noise boost:
				// these probes produce accurate measurements.
				if snr >= 3 {
					clean++
				}
			}
			meanBestSNR += best
			meanDecodable += float64(clean) / float64(beams)
			n++
		}
		return meanBestSNR / float64(n), meanDecodable / float64(n)
	}
	preSNR, preDec := evaluate(predefined)
	rndSNR, rndDec := evaluate(random)
	return &AblationResult{
		Name: fmt.Sprintf("predefined sectors vs pseudo-random beams (%.0f m link)", dist),
		Rows: []AblationRow{
			{"predefined sectors: mean best-sector SNR", preSNR, "dB"},
			{"pseudo-random beams: mean best-beam SNR", rndSNR, "dB"},
			{"predefined sectors: low-noise probe fraction", preDec, ""},
			{"pseudo-random beams: low-noise probe fraction", rndDec, ""},
		},
	}, nil
}

// AblationAdaptiveProbes runs the Section 7 adaptive probe-count
// controller against fixed budgets in a mobility scenario: the DUT
// alternates between dwelling and swinging to a new azimuth; the
// controller should spend few probes while static and more while moving.
// The study runs on the 3 m lab link, where selections are stable enough
// while dwelling for the budget to shrink. ctx cancels the study between
// training steps.
func AblationAdaptiveProbes(ctx context.Context, p *Platform, steps int, rng *stats.RNG) (*AblationResult, error) {
	if steps <= 0 {
		steps = 120
	}
	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	p.DUT.SetPose(dutPose)
	p.Probe.SetPose(probePose)
	link := newLink(channel.Lab(), p)
	head := testbed.NewRotationHead(rng.Split("head"))

	runPolicy := func(policy func(step int) int, observe func(sector.ID)) (meanLoss, meanProbes float64, e error) {
		az := 0.0
		lossSum, probeSum := 0.0, 0.0
		count := 0
		moveRNG := rng.Split("movement")
		for step := 0; step < steps; step++ {
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
			// Dwell for a while, then swing to a new direction.
			if step%20 == 10 {
				az = moveRNG.Uniform(-50, 50)
			}
			head.PointAt(p.DUT, az, 0)
			m := policy(step)
			probeSet, err := core.RandomProbes(moveRNG, sector.TalonTX(), m)
			if err != nil {
				return 0, 0, err
			}
			meas, err := runSubSweep(link, p, probeSet)
			if err != nil {
				return 0, 0, err
			}
			probes := core.ProbesFromMeasurements(probeSet.IDs(), meas)
			sel, err := p.Estimator.SelectSector(ctx, probes)
			if err != nil {
				continue
			}
			if observe != nil {
				observe(sel.Sector)
			}
			if loss, ok := trueLoss(link, p, sel.Sector); ok {
				lossSum += loss
				probeSum += float64(m)
				count++
			}
		}
		if count == 0 {
			return math.NaN(), math.NaN(), nil
		}
		return lossSum / float64(count), probeSum / float64(count), nil
	}

	ctrl := core.NewAdaptiveController(8, 34)
	adaptLoss, adaptProbes, err := runPolicy(func(int) int { return ctrl.M() }, ctrl.Observe)
	if err != nil {
		return nil, err
	}
	fixed14Loss, _, err := runPolicy(func(int) int { return 14 }, nil)
	if err != nil {
		return nil, err
	}
	fixed34Loss, _, err := runPolicy(func(int) int { return 34 }, nil)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: "adaptive probe count under mobility",
		Rows: []AblationRow{
			{"adaptive: mean probes per training", adaptProbes, "sectors"},
			{"adaptive: mean SNR loss", adaptLoss, "dB"},
			{"fixed M=14: mean SNR loss", fixed14Loss, "dB"},
			{"fixed M=34: mean SNR loss", fixed34Loss, "dB"},
		},
	}, nil
}
