package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"talon"
	"talon/internal/channel"
	"talon/internal/fault"
	"talon/internal/obs"
	"talon/internal/testbed"
)

// Fault-sweep metrics (see README, "Observability").
var (
	metFaultTrials = obs.NewCounter("eval_fault_trials_total",
		"fault-sweep trials completed")
	metFaultHardErrors = obs.NewCounter("eval_fault_hard_errors_total",
		"fault-sweep trials where the resilient trainer still hard-errored")
)

// FaultSweepConfig parameterizes the fault-injection campaign.
type FaultSweepConfig struct {
	// LossRates lists the stationary Gilbert–Elliott loss rates to
	// sweep (e.g. 0, 0.05, 0.1, 0.2).
	LossRates []float64
	// MeanBurst is the mean loss-burst length in frames (default 4).
	MeanBurst float64
	// Trials is the number of training trials per loss rate (default
	// 50).
	Trials int
	// M is the probe budget per CSS attempt (default talon.DefaultM).
	M int
	// Retries and Backoff configure the resilient trainer's WithRetry
	// (defaults 3 and 1 ms of virtual airtime).
	Retries int
	Backoff time.Duration
	// SNRCheckDB is the WithSNRCheck verification threshold in dB; the
	// check is what lets the trainer notice a bad pick (the channel
	// can silently starve CSS of its informative probes). Zero means
	// the default 8 dB — roughly half the clean peak SNR at the
	// campaign's 3 m pose; negative disables the check.
	SNRCheckDB float64
	// Seed reproduces the whole campaign (impairments and probing).
	Seed int64
}

func (c *FaultSweepConfig) defaults() {
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.05, 0.1, 0.2}
	}
	if c.MeanBurst <= 0 {
		c.MeanBurst = 4
	}
	if c.Trials <= 0 {
		c.Trials = 50
	}
	if c.M == 0 {
		c.M = talon.DefaultM
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.SNRCheckDB == 0 {
		c.SNRCheckDB = 8
	}
}

// FaultSweepPoint summarizes all trials at one loss rate.
type FaultSweepPoint struct {
	// LossRate is the configured stationary frame-loss rate.
	LossRate float64
	// Trials is the number of trials run.
	Trials int
	// HardErrors counts trials where the resilient Run still returned
	// an error — the resilience claim is that this stays zero.
	HardErrors int
	// Degraded counts trials that fell back to the full SSW sweep.
	Degraded int
	// Retried counts trials that needed more than one CSS attempt.
	Retried int
	// MedianLossDB is the median SNR loss of the selected sector versus
	// the true-SNR optimum (the no-loss full sweep's choice).
	MedianLossDB float64
	// P95LossDB is the 95th-percentile SNR loss.
	P95LossDB float64
}

// FaultSweepResult reproduces the Section 6.3 SNR-loss evaluation under
// injected channel impairments: at each loss rate the resilient trainer
// (retry + backoff + full-sweep fallback) trains the link and the
// selected sector's true SNR is compared against the optimum.
type FaultSweepResult struct {
	Config FaultSweepConfig
	Points []FaultSweepPoint
}

// FaultSweep runs the fault-injection campaign on p. Trials are serial —
// they share the platform's devices — and deterministic in cfg.Seed: the
// probing subsets, the channel noise and every impairment replay
// identically for identical configurations. The context is observed
// between trials.
func FaultSweep(ctx context.Context, p *Platform, cfg FaultSweepConfig) (*FaultSweepResult, error) {
	cfg.defaults()
	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	p.DUT.SetPose(dutPose)
	p.Probe.SetPose(probePose)

	res := &FaultSweepResult{Config: cfg}
	for ri, rate := range cfg.LossRates {
		point := FaultSweepPoint{LossRate: rate, Trials: cfg.Trials}
		losses := make([]float64, 0, cfg.Trials)
		for trial := 0; trial < cfg.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			link := newLink(channel.Lab(), p)
			trainSeed := cfg.Seed + int64(ri*cfg.Trials+trial)
			trainer, err := talon.NewTrainer(link, p.Patterns,
				talon.WithM(cfg.M), talon.WithSeed(trainSeed))
			if err != nil {
				return nil, err
			}
			if rate > 0 {
				link.SetInjector(fault.Standard60GHz(rate, cfg.MeanBurst, trainSeed*7919+1))
			}

			opts := []talon.RunOption{talon.WithRetry(cfg.Retries, cfg.Backoff)}
			if cfg.SNRCheckDB > 0 {
				opts = append(opts, talon.WithSNRCheck(cfg.SNRCheckDB))
			}
			out, err := trainer.Run(ctx, p.DUT, p.Probe, opts...)
			// The impairments must not bleed into the oracle below.
			link.SetInjector(nil)
			metFaultTrials.Inc()
			metTrials.Inc()
			if err != nil {
				point.HardErrors++
				metFaultHardErrors.Inc()
				continue
			}
			if out.Degraded() {
				point.Degraded++
			}
			if out.Attempts > 1 {
				point.Retried++
			}
			if loss, ok := trueLoss(link, p, out.Sector); ok {
				losses = append(losses, loss)
			}
		}
		point.MedianLossDB = quantile(losses, 0.5)
		point.P95LossDB = quantile(losses, 0.95)
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// quantile returns the q-quantile of xs (nearest-rank on a sorted copy);
// 0 for an empty slice.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Table renders the campaign table.
func (r *FaultSweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: resilient CSS under Gilbert–Elliott loss (mean burst %.0f frames, %d trials/rate, retry %d)\n",
		r.Config.MeanBurst, r.Config.Trials, r.Config.Retries)
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %14s %12s\n",
		"loss rate", "hard err", "degraded", "retried", "median [dB]", "p95 [dB]")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10.2f %10d %10d %10d %14.2f %12.2f\n",
			pt.LossRate, pt.HardErrors, pt.Degraded, pt.Retried, pt.MedianLossDB, pt.P95LossDB)
	}
	return b.String()
}
