package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"talon/internal/dot11ad"
	"talon/internal/mcs"
)

// DensityPoint is one (pairs, policy, cadence) cell of the density study.
type DensityPoint struct {
	Pairs          int
	Policy         string
	Interval       time.Duration
	TrainShare     float64 // fraction of airtime polluted by training
	AggregateMbps  float64 // sum of all pairs' goodput
	PerPairMbps    float64
	MediumSaturate bool // training alone exceeds the airtime
}

// DensityResult models the Section 7 dense-deployment argument: sector
// sweeps are transmitted over all directions, so every pair's training
// pollutes the whole channel for everyone, while directional data links
// coexist spatially. With P pairs retraining every T, the fraction
// P·T_train/T of airtime is lost to training for all pairs; the stock
// sweep exhausts the medium at less than half the density compressive
// selection sustains.
type DensityResult struct {
	LinkSNRdB float64
	Points    []DensityPoint
}

// DensityStudy evaluates aggregate goodput against deployment density
// for the stock sweep and CSS at M probes, at the default (1 s) and a
// mobility-grade (100 ms) retraining cadence. linkSNR sets each pair's
// data-link quality. ctx cancels the study between policy cells.
func DensityStudy(ctx context.Context, m int, linkSNR float64, pairCounts []int) (*DensityResult, error) {
	if m <= 0 {
		m = 14
	}
	if len(pairCounts) == 0 {
		pairCounts = []int{1, 10, 50, 100, 200, 500, 1000}
	}
	model := mcs.DefaultThroughputModel()
	res := &DensityResult{LinkSNRdB: linkSNR}
	type policy struct {
		name   string
		probes int
	}
	for _, interval := range []time.Duration{time.Second, 100 * time.Millisecond} {
		for _, pol := range []policy{{"SSW", 34}, {fmt.Sprintf("CSS-%d", m), m}} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			trainTime := dot11ad.MutualTrainingTime(pol.probes)
			for _, pairs := range pairCounts {
				share := float64(pairs) * float64(trainTime) / float64(interval)
				pt := DensityPoint{
					Pairs:    pairs,
					Policy:   pol.name,
					Interval: interval,
				}
				if share >= 1 {
					pt.TrainShare = 1
					pt.MediumSaturate = true
				} else {
					pt.TrainShare = share
					// Each pair's own training airtime is part of the
					// pollution share; the remaining airtime carries
					// spatially-reused directional data.
					perPair := model.AppThroughputMbps(linkSNR, 0) * (1 - share)
					pt.PerPairMbps = perPair
					pt.AggregateMbps = perPair * float64(pairs)
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res, nil
}

// Table renders the study.
func (r *DensityResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense-deployment study (Section 7): training pollutes the whole channel (link SNR %.1f dB)\n", r.LinkSNRdB)
	fmt.Fprintf(&b, "%-8s %10s %7s %13s %15s %15s\n", "policy", "cadence", "pairs", "train share", "per-pair [Mbps]", "aggregate [Gbps]")
	for _, pt := range r.Points {
		if pt.MediumSaturate {
			fmt.Fprintf(&b, "%-8s %10v %7d %12.1f%% %15s %15s\n",
				pt.Policy, pt.Interval, pt.Pairs, 100*pt.TrainShare, "-", "saturated")
			continue
		}
		fmt.Fprintf(&b, "%-8s %10v %7d %12.1f%% %15.0f %15.2f\n",
			pt.Policy, pt.Interval, pt.Pairs, 100*pt.TrainShare, pt.PerPairMbps, pt.AggregateMbps/1000)
	}
	return b.String()
}

// SaturationPairs returns the smallest evaluated pair count at which the
// policy saturates the medium at the given cadence (0 if never).
func (r *DensityResult) SaturationPairs(policy string, interval time.Duration) int {
	for _, pt := range r.Points {
		if pt.Policy == policy && pt.Interval == interval && pt.MediumSaturate {
			return pt.Pairs
		}
	}
	return 0
}
