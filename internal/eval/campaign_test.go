package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCampaignRecordReplay is the acceptance run of the out-of-core
// campaign: record once, replay at two worker counts, and require a
// byte-identical scorecard with zero selection drift.
func TestCampaignRecordReplay(t *testing.T) {
	p := quickStudy(t).Platform
	cfg := CampaignConfig{
		Dir:             t.TempDir(),
		Trials:          800,
		M:               8,
		RecordsPerShard: 200,
		BlockRecords:    64,
		Workers:         1,
	}
	ctx := context.Background()
	shards, err := RecordCampaign(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(shards))
	}
	var recorded uint64
	for _, sh := range shards {
		recorded += sh.Header.Records
	}
	if recorded != 800 {
		t.Fatalf("recorded %d trials, want 800", recorded)
	}

	serial := cfg
	serial.Workers = 1
	sc1, err := ReplayCampaign(ctx, p, serial)
	if err != nil {
		t.Fatal(err)
	}
	wide := cfg
	wide.Workers = 4
	scN, err := ReplayCampaign(ctx, p, wide)
	if err != nil {
		t.Fatal(err)
	}

	b1, err := sc1.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bN, err := scN.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, bN) {
		t.Fatalf("scorecard JSON differs between -workers 1 and -workers 4:\n%s\n---\n%s", b1, bN)
	}

	if sc1.Total.Trials != 800 {
		t.Fatalf("replayed %d trials, want 800", sc1.Total.Trials)
	}
	if sc1.Total.Drift != 0 {
		t.Fatalf("selection drift = %d, want 0 (replay must recompute the recorded selections)", sc1.Total.Drift)
	}
	// Deep-blockage draws can lose every probe, so a few hard failures
	// are expected — but they must stay rare and replay identically.
	if sc1.Total.Failures > sc1.Total.Trials/10 {
		t.Fatalf("select failures = %d of %d trials, want < 10%%", sc1.Total.Failures, sc1.Total.Trials)
	}
	// The seed split must be disjoint and exhaustive.
	if got := sc1.InSample.Trials + sc1.OutOfSample.Trials; got != sc1.Total.Trials {
		t.Fatalf("in-sample %d + out-of-sample %d != total %d",
			sc1.InSample.Trials, sc1.OutOfSample.Trials, sc1.Total.Trials)
	}
	if sc1.InSample.Trials == 0 || sc1.OutOfSample.Trials == 0 {
		t.Fatalf("degenerate split: in-sample %d, out-of-sample %d",
			sc1.InSample.Trials, sc1.OutOfSample.Trials)
	}
	if len(sc1.Benchmarks) == 0 {
		t.Fatal("scorecard has no benchdiff entries")
	}
	if !strings.Contains(sc1.Table(), "out-of-sample") {
		t.Errorf("Table missing out-of-sample section:\n%s", sc1.Table())
	}
	if s := sc1.Summary(); !strings.Contains(s, "drift 0") {
		t.Errorf("Summary missing drift: %q", s)
	}
}

// TestCampaignRecordOverwritesStaleShards: a shorter re-record of the
// same basename must not leave trials of the previous campaign behind.
func TestCampaignRecordOverwritesStaleShards(t *testing.T) {
	p := quickStudy(t).Platform
	cfg := CampaignConfig{
		Dir:             t.TempDir(),
		Trials:          400,
		M:               6,
		RecordsPerShard: 100,
		BlockRecords:    32,
		Workers:         1,
	}
	ctx := context.Background()
	if _, err := RecordCampaign(ctx, p, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Trials = 200
	cfg.RecordsPerShard = 100
	shards, err := RecordCampaign(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("shards after re-record = %d, want 2", len(shards))
	}
	sc, err := ReplayCampaign(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Total.Trials != 200 {
		t.Fatalf("replayed %d trials after re-record, want 200", sc.Total.Trials)
	}
}

// TestStudyRegistry pins the registry surface: every canonical study
// resolves, the order is stable, and unknown names produce a helpful
// error.
func TestStudyRegistry(t *testing.T) {
	want := []string{
		"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"headline", "ablations", "retraining", "blockage", "density",
		"densify", "faultsweep", "css", "campaign",
	}
	names := StudyNames()
	if len(names) != len(want) {
		t.Fatalf("registry has %d studies, want %d: %v", len(names), len(want), names)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("study[%d] = %q, want %q", i, names[i], name)
		}
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if s.Name() != name {
			t.Fatalf("study %q reports Name() = %q", name, s.Name())
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown study succeeded")
	}
	if err := UnknownStudyError("nope"); !strings.Contains(err.Error(), "ablations") {
		t.Errorf("UnknownStudyError does not list the registry: %v", err)
	}
}

// TestRegistryRunStandalone exercises the platform-free studies through
// the registry exactly as evalrunner does.
func TestRegistryRunStandalone(t *testing.T) {
	cfg := NewConfig(Quick(), 42)
	for _, name := range []string{"table1", "fig10", "density"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if NeedsPlatform(s) {
			t.Fatalf("standalone study %q claims to need a platform", name)
		}
		rep, err := s.Run(context.Background(), nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Table() == "" || rep.Summary() == "" {
			t.Fatalf("%s: empty rendering", name)
		}
		if strings.ContainsRune(rep.Summary(), '\n') {
			t.Fatalf("%s: Summary is not one line: %q", name, rep.Summary())
		}
		if _, err := rep.MarshalJSON(); err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
	}
}
