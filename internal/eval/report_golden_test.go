package eval

import (
	"context"
	"path/filepath"
	"testing"

	"talon/internal/testutil"
)

// TestReportGoldens pins both renderings — Table text and MarshalJSON —
// of the deterministic standalone studies. A formatting or schema change
// shows up as a golden diff (regenerate with -update if intended).
func TestReportGoldens(t *testing.T) {
	golden := func(t *testing.T, name string, rep Report) {
		t.Helper()
		testutil.Golden(t, filepath.Join("testdata", name+".table.golden"), []byte(rep.Table()))
		b, err := rep.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		testutil.Golden(t, filepath.Join("testdata", name+".json.golden"), append(b, '\n'))
	}
	t.Run("table1", func(t *testing.T) {
		golden(t, "table1", Table1())
	})
	t.Run("fig10", func(t *testing.T) {
		r, err := Figure10(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		golden(t, "fig10", r)
	})
	t.Run("density", func(t *testing.T) {
		r, err := DensityStudy(context.Background(), 14, 5.5, []int{1, 100, 1000})
		if err != nil {
			t.Fatal(err)
		}
		golden(t, "density", r)
	})
}
