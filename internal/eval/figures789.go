package eval

import (
	"context"
	"fmt"
	"strings"

	"talon/internal/channel"
	"talon/internal/stats"
)

// Figure7Result holds the angular estimation errors per environment and
// probing count — the box plots of Figure 7a/7b.
type Figure7Result struct {
	Lab        *TraceEval
	Conference *TraceEval
}

// Figure8Result is the selection stability over the conference-room
// traces (Figure 8).
type Figure8Result struct {
	Conference *TraceEval
}

// Figure9Result is the SNR loss over the conference-room traces
// (Figure 9).
type Figure9Result struct {
	Conference *TraceEval
}

// EnvironmentStudy runs the Section 6 measurement campaign once and
// derives Figures 7, 8 and 9 from it: patterns from the chamber, scans in
// the lab (3 m) and the conference room (6 m), then CSS/SSW evaluation
// over the recorded traces.
type EnvironmentStudy struct {
	Platform   *Platform
	Lab        *TraceEval
	Conference *TraceEval
}

// RunEnvironmentStudy executes the full campaign at fidelity f. The
// context cancels the campaign between its grid points, scan positions
// and evaluation trials.
func RunEnvironmentStudy(ctx context.Context, seed int64, f Fidelity) (*EnvironmentStudy, error) {
	p, err := NewPlatform(ctx, seed, f.PatternGrid, f.CampaignRepeats)
	if err != nil {
		return nil, err
	}
	return EnvironmentStudyOn(ctx, p, seed, f)
}

// EnvironmentStudyOn runs the scans and trace evaluations on an
// existing platform, so a suite of studies sharing one rig (see
// Config.Env) measures the chamber patterns only once.
func EnvironmentStudyOn(ctx context.Context, p *Platform, seed int64, f Fidelity) (*EnvironmentStudy, error) {
	labTraces, err := p.Scan(ctx, channel.Lab(), 3, f.Lab)
	if err != nil {
		return nil, fmt.Errorf("eval: lab scan: %w", err)
	}
	confTraces, err := p.Scan(ctx, channel.ConferenceRoom(), 6, f.Conference)
	if err != nil {
		return nil, fmt.Errorf("eval: conference scan: %w", err)
	}
	rng := stats.NewRNG(seed).Split("trace-eval")
	lab, err := EvaluateTraces(ctx, "lab", labTraces, p.Estimator, f.Ms, f.SubsetsPerSweep, rng)
	if err != nil {
		return nil, err
	}
	conf, err := EvaluateTraces(ctx, "conference-room", confTraces, p.Estimator, f.Ms, f.SubsetsPerSweep, rng)
	if err != nil {
		return nil, err
	}
	return &EnvironmentStudy{Platform: p, Lab: lab, Conference: conf}, nil
}

// Figure7 extracts the estimation-error figure from the study.
func (s *EnvironmentStudy) Figure7() *Figure7Result {
	return &Figure7Result{Lab: s.Lab, Conference: s.Conference}
}

// Figure8 extracts the stability figure.
func (s *EnvironmentStudy) Figure8() *Figure8Result {
	return &Figure8Result{Conference: s.Conference}
}

// Figure9 extracts the SNR-loss figure.
func (s *EnvironmentStudy) Figure9() *Figure9Result {
	return &Figure9Result{Conference: s.Conference}
}

func formatErrTable(b *strings.Builder, te *TraceEval) {
	fmt.Fprintf(b, "%s (%d positions):\n", te.Env, te.NumTraces)
	fmt.Fprintf(b, "%4s | %26s | %26s\n", "M", "azimuth error [°]", "elevation error [°]")
	fmt.Fprintf(b, "%4s | %8s %8s %8s | %8s %8s %8s\n", "", "median", "p75", "p99.5", "median", "p75", "p99.5")
	for _, m := range te.PerM {
		az := stats.Box(m.AzErrs)
		el := stats.Box(m.ElErrs)
		fmt.Fprintf(b, "%4d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
			m.M, az.Median, az.BoxHi, az.WhiskHi, el.Median, el.BoxHi, el.WhiskHi)
	}
}

// Table renders the Figure 7 box-plot series.
func (r *Figure7Result) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7: angular estimation error vs number of probing sectors")
	formatErrTable(&b, r.Lab)
	fmt.Fprintln(&b)
	formatErrTable(&b, r.Conference)
	return b.String()
}

// Table renders the Figure 8 stability series.
func (r *Figure8Result) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: selection stability (conference room)")
	fmt.Fprintf(&b, "%4s %12s %12s\n", "M", "CSS", "SSW")
	for _, m := range r.Conference.PerM {
		fmt.Fprintf(&b, "%4d %11.1f%% %11.1f%%\n", m.M, 100*m.Stability, 100*r.Conference.SSW.Stability)
	}
	return b.String()
}

// CrossoverM returns the smallest evaluated M whose CSS stability reaches
// the SSW baseline (the paper: M = 13).
func (r *Figure8Result) CrossoverM() (int, bool) {
	for _, m := range r.Conference.PerM {
		if m.Stability >= r.Conference.SSW.Stability {
			return m.M, true
		}
	}
	return 0, false
}

// Table renders the Figure 9 SNR-loss series.
func (r *Figure9Result) Table() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 9: average SNR loss vs number of probing sectors (conference room)")
	fmt.Fprintf(&b, "%4s %14s %14s\n", "M", "CSS [dB]", "SSW [dB]")
	ssw := stats.Mean(r.Conference.SSW.SNRLoss)
	for _, m := range r.Conference.PerM {
		fmt.Fprintf(&b, "%4d %14.2f %14.2f\n", m.M, stats.Mean(m.SNRLoss), ssw)
	}
	return b.String()
}

// CrossoverM returns the smallest evaluated M whose mean CSS SNR loss is
// at or below the SSW baseline (the paper: M = 14).
func (r *Figure9Result) CrossoverM() (int, bool) {
	ssw := stats.Mean(r.Conference.SSW.SNRLoss)
	for _, m := range r.Conference.PerM {
		if stats.Mean(m.SNRLoss) <= ssw {
			return m.M, true
		}
	}
	return 0, false
}
