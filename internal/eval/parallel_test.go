package eval

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"talon/internal/core"
)

// TestParallelForCapsEngineShards is the nested-parallelism regression
// test: while trial workers run, the core engine's shard cap must be
// GOMAXPROCS/workers (at least 1) so workers x shards cannot exceed the
// machine, and the previous cap must be restored once the loop returns.
func TestParallelForCapsEngineShards(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prevProcs)
	outer := core.SetMaxShards(5)
	defer core.SetMaxShards(outer)

	var seen atomic.Int32
	if err := parallelFor(context.Background(), 8, 4, func(int) {
		seen.Store(int32(core.MaxShards()))
	}); err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != 2 { // GOMAXPROCS(8) / workers(4)
		t.Fatalf("shard cap inside parallelFor = %d, want 2", got)
	}
	if got := core.MaxShards(); got != 5 {
		t.Fatalf("shard cap after parallelFor = %d, want previous value 5 restored", got)
	}

	// Oversubscribed worker counts still leave at least one shard.
	if err := parallelFor(context.Background(), 16, 16, func(int) {
		seen.Store(int32(core.MaxShards()))
	}); err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("shard cap with workers > GOMAXPROCS = %d, want 1", got)
	}

	// Serial loops leave the cap alone.
	if err := parallelFor(context.Background(), 2, 1, func(int) {
		seen.Store(int32(core.MaxShards()))
	}); err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != 5 {
		t.Fatalf("shard cap inside serial parallelFor = %d, want untouched 5", got)
	}
}
