package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"talon"
	"talon/internal/core"
)

// CSSResult is the outcome of one end-to-end compressive training run on
// the public talon API: the probes exchanged, the estimator's selection
// and the true SNR of the chosen sector at the deployed poses.
type CSSResult struct {
	M         int
	Selection talon.Selection
	Probes    []talon.Probe
	Sector    talon.SectorID
	TrueSNRdB float64
}

// RunCSS runs one real compressive training campaign end to end on the
// public API — pattern measurement, Trainer.Run with the full mutual
// protocol exchange — deployed in the conference room with the AP turned
// 25° away and the station 6 m out.
func RunCSS(ctx context.Context, seed int64, f Fidelity) (*CSSResult, error) {
	ap, err := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: seed})
	if err != nil {
		return nil, err
	}
	sta, err := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	for _, d := range []*talon.Device{ap, sta} {
		if err := d.Jailbreak(); err != nil {
			return nil, err
		}
	}

	grid, repeats := talon.DefaultPatternGrid(), 3
	if f.Quick() {
		g, err := talon.NewGrid(-90, 90, 9, 0, 32, 8)
		if err != nil {
			return nil, err
		}
		grid, repeats = g, 1
	}
	patterns, err := talon.MeasurePatterns(ctx, ap, sta, grid, repeats)
	if err != nil {
		return nil, err
	}

	// Deploy in the conference room: AP turned 25° away, station 6 m out.
	link := talon.NewLink(talon.ConferenceRoom(), ap, sta)
	apPose := talon.Pose{Yaw: -25}
	apPose.Pos.Z = 1.2
	staPose := talon.Pose{Yaw: 180}
	staPose.Pos.X = 6
	staPose.Pos.Z = 1.2
	ap.SetPose(apPose)
	sta.SetPose(staPose)

	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	res, err := trainer.Run(ctx, ap, sta, talon.Mutual())
	if err != nil {
		return nil, err
	}

	return &CSSResult{
		M:         14,
		Selection: res.Selection,
		Probes:    core.ProbesFromMeasurements(res.Probed, res.SLS.AtResponder),
		Sector:    res.Sector,
		TrueSNRdB: link.TrueSNR(ap, sta, res.Sector),
	}, nil
}

// Table renders the probe list and the selection the way the runner
// always printed them (the String forms of Probe and Selection).
func (r *CSSResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compressive training (conference room, M = %d):\n", r.M)
	for _, p := range r.Probes {
		fmt.Fprintln(&b, "  probe", p)
	}
	fmt.Fprintln(&b, "selection:", r.Selection)
	fmt.Fprintf(&b, "true SNR on sector %v: %.1f dB\n", r.Sector, r.TrueSNRdB)
	return b.String()
}

// Summary reports the selected sector and its link quality.
func (r *CSSResult) Summary() string {
	return fmt.Sprintf("end-to-end CSS (M=%d) selected sector %v at %.1f dB true SNR over %d probes",
		r.M, r.Sector, r.TrueSNRdB, len(r.Probes))
}

// MarshalJSON emits the same record the runner always wrote.
func (r *CSSResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		M         int             `json:"m"`
		Selection talon.Selection `json:"selection"`
		Probes    []talon.Probe   `json:"probes"`
		Sector    talon.SectorID  `json:"sector"`
		TrueSNRdB float64         `json:"true_snr_db"`
	}{r.M, r.Selection, r.Probes, r.Sector, r.TrueSNRdB})
}
