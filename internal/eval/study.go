package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Report is what every study returns: the paper-style human rendering
// (Table), a one-line result digest (Summary), and a machine-readable
// JSON artifact (MarshalJSON). Replacing the old free-form Format()
// strings, a Report always has both renderings, so evalrunner can write
// <study>.txt and <study>.json side by side for every experiment.
type Report interface {
	// Table renders the full human-readable rows/series the paper
	// reports.
	Table() string
	// Summary condenses the result to one line for logs and -list
	// style overviews.
	Summary() string
	json.Marshaler
}

// Study is one experiment of the evaluation suite. All ~16 entry points
// that used to be ad-hoc exported functions register a Study under a
// stable name; evalrunner dispatches through Lookup instead of a
// hand-written switch.
type Study interface {
	// Name is the registry key and the -exp argument.
	Name() string
	// Run executes the experiment. p is the shared experiment rig
	// (nil for standalone studies — see NeedsPlatform); cfg carries
	// fidelity, seeds and campaign knobs.
	Run(ctx context.Context, p *Platform, cfg Config) (Report, error)
}

// Config carries the cross-study experiment configuration. Construct
// with NewConfig: a Config built by hand lacks the shared
// environment-study memo and every study will re-scan.
type Config struct {
	// Fidelity selects the experiment dimensions (Quick or Full).
	Fidelity Fidelity
	// Seed reproduces every study.
	Seed int64
	// Fault carries the faultsweep-specific knobs; zero fields take
	// the faultsweep defaults (Seed and fidelity-scaled Trials are
	// filled in by the study).
	Fault FaultSweepConfig
	// Campaign parameterizes the out-of-core trace-store campaign.
	Campaign CampaignConfig

	env *envMemo
}

// NewConfig returns a Config whose environment study is computed at
// most once and shared by every study run with this Config (fig7–9,
// fig11, headline, ablations, retraining, blockage and faultsweep all
// start from the same scans).
func NewConfig(f Fidelity, seed int64) Config {
	return Config{Fidelity: f, Seed: seed, env: &envMemo{}}
}

type envMemo struct {
	once  sync.Once
	study *EnvironmentStudy
	err   error
}

// Env returns the Config's memoized environment study, running the
// scans and trace evaluations on first use.
func (c Config) Env(ctx context.Context, p *Platform) (*EnvironmentStudy, error) {
	if c.env == nil {
		return EnvironmentStudyOn(ctx, p, c.Seed, c.Fidelity)
	}
	c.env.once.Do(func() {
		c.env.study, c.env.err = EnvironmentStudyOn(ctx, p, c.Seed, c.Fidelity)
	})
	return c.env.study, c.env.err
}

// studyFunc adapts a function to the Study interface.
type studyFunc struct {
	name     string
	platform bool
	run      func(ctx context.Context, p *Platform, cfg Config) (Report, error)
}

func (s studyFunc) Name() string { return s.name }

func (s studyFunc) Run(ctx context.Context, p *Platform, cfg Config) (Report, error) {
	return s.run(ctx, p, cfg)
}

func (s studyFunc) NeedsPlatform() bool { return s.platform }

// NeedsPlatform reports whether a study wants the shared Platform.
// Standalone studies (table1, fig5/6/10, density, densify, css) build
// their own rigs or none at all, so a runner can skip the chamber
// campaign when only those are selected.
func NeedsPlatform(s Study) bool {
	if np, ok := s.(interface{ NeedsPlatform() bool }); ok {
		return np.NeedsPlatform()
	}
	return true
}

var (
	registryMu sync.Mutex
	registry   = map[string]Study{}
	studyOrder []string
)

// Register adds a study to the registry. Registering a duplicate name
// is a programming error and panics.
func Register(s Study) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("eval: duplicate study %q", s.Name()))
	}
	registry[s.Name()] = s
	studyOrder = append(studyOrder, s.Name())
}

// register wires a function-backed study.
func register(name string, platform bool, run func(ctx context.Context, p *Platform, cfg Config) (Report, error)) {
	Register(studyFunc{name: name, platform: platform, run: run})
}

// Lookup resolves a registered study by name.
func Lookup(name string) (Study, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// StudyNames lists the registered studies in registration order — the
// canonical "run everything" order, matching the paper's presentation.
func StudyNames() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	return append([]string(nil), studyOrder...)
}

// sortedStudyNames returns the names alphabetically, for error messages.
func sortedStudyNames() []string {
	names := StudyNames()
	sort.Strings(names)
	return names
}

// UnknownStudyError builds the error for an unregistered -exp value,
// listing what is available.
func UnknownStudyError(name string) error {
	return fmt.Errorf("eval: unknown study %q (available: %v)", name, sortedStudyNames())
}

// The registry, in the canonical run-all order.
func init() {
	register("table1", false, func(ctx context.Context, _ *Platform, _ Config) (Report, error) {
		return Table1(), nil
	})
	register("fig5", false, func(ctx context.Context, _ *Platform, cfg Config) (Report, error) {
		azStep, repeats := 0.9, 3
		if cfg.Fidelity.Quick() {
			azStep, repeats = 4.5, 1
		}
		return Figure5(ctx, cfg.Seed, azStep, repeats)
	})
	register("fig6", false, func(ctx context.Context, _ *Platform, cfg Config) (Report, error) {
		azStep, elStep, repeats := 1.8, 3.6, 3
		if cfg.Fidelity.Quick() {
			azStep, elStep, repeats = 9, 10.8, 1
		}
		return Figure6(ctx, cfg.Seed, azStep, elStep, repeats)
	})
	register("fig7", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		s, err := cfg.Env(ctx, p)
		if err != nil {
			return nil, err
		}
		return s.Figure7(), nil
	})
	register("fig8", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		s, err := cfg.Env(ctx, p)
		if err != nil {
			return nil, err
		}
		return s.Figure8(), nil
	})
	register("fig9", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		s, err := cfg.Env(ctx, p)
		if err != nil {
			return nil, err
		}
		return s.Figure9(), nil
	})
	register("fig10", false, func(ctx context.Context, _ *Platform, _ Config) (Report, error) {
		return Figure10(ctx)
	})
	register("fig11", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		sweeps := 10
		if cfg.Fidelity.Quick() {
			sweeps = 4
		}
		return Figure11(ctx, p, 14, sweeps, studyRNG(cfg, "fig11"))
	})
	register("headline", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		s, err := cfg.Env(ctx, p)
		if err != nil {
			return nil, err
		}
		return ComputeHeadline(ctx, s)
	})
	register("ablations", true, runAblationStudies)
	register("retraining", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		dur := fullRetrainingDuration
		if cfg.Fidelity.Quick() {
			dur = quickRetrainingDuration
		}
		return RetrainingStudy(ctx, p, 20, dur, studyRNG(cfg, "retraining"))
	})
	register("blockage", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		rounds := 30
		if cfg.Fidelity.Quick() {
			rounds = 10
		}
		return BlockageStudy(ctx, p, 24, rounds, studyRNG(cfg, "blockage"))
	})
	register("density", false, func(ctx context.Context, _ *Platform, _ Config) (Report, error) {
		return DensityStudy(ctx, 14, 5.5, nil)
	})
	register("densify", false, func(ctx context.Context, _ *Platform, cfg Config) (Report, error) {
		trials := 120
		if cfg.Fidelity.Quick() {
			trials = 30
		}
		return DensifyStudy(ctx, cfg.Seed, 14, nil, trials, studyRNG(cfg, "densify"))
	})
	register("faultsweep", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		fc := cfg.Fault
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		if fc.Trials <= 0 {
			fc.Trials = 200
			if cfg.Fidelity.Quick() {
				fc.Trials = 50
			}
		}
		return FaultSweep(ctx, p, fc)
	})
	register("css", false, func(ctx context.Context, _ *Platform, cfg Config) (Report, error) {
		return RunCSS(ctx, cfg.Seed, cfg.Fidelity)
	})
	register("campaign", true, func(ctx context.Context, p *Platform, cfg Config) (Report, error) {
		cc := cfg.Campaign
		if cc.Trials <= 0 && cfg.Fidelity.Quick() {
			cc.Trials = 2000
		}
		return RunCampaign(ctx, p, cc)
	})
}
