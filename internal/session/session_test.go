package session

import (
	"context"
	"math"
	"testing"
	"time"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

type fixture struct {
	link   *wil.Link
	tx, rx *wil.Device
	est    *core.Estimator
}

var cached *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	tx, err := wil.NewDevice(wil.Config{Name: "tx", MAC: dot11ad.MACAddr{2, 0, 0, 0, 9, 1}, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := wil.NewDevice(wil.Config{Name: "rx", MAC: dot11ad.MACAddr{2, 0, 0, 0, 9, 2}, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*wil.Device{tx, rx} {
		if err := d.Jailbreak(); err != nil {
			t.Fatal(err)
		}
	}
	grid, err := geom.UniformGrid(-80, 80, 3, 0, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	chamber := wil.NewLink(channel.AnechoicChamber(), tx, rx)
	campaign := testbed.NewChamberCampaign(chamber, tx, rx, 33)
	campaign.Repeats = 2
	patterns, err := campaign.MeasureAllPatterns(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewEstimator(patterns, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{
		link: wil.NewLink(channel.Lab(), tx, rx),
		tx:   tx, rx: rx,
		est: est,
	}
	// Tests share the fixture; restore the canonical static geometry so
	// a prior test's mobility cannot leak into the next.
	txPose, rxPose := testbed.FacingPoses(3, 1.2)
	cached.tx.SetPose(txPose)
	cached.rx.SetPose(rxPose)
	return cached
}

func TestRunValidation(t *testing.T) {
	f := setup(t)
	if _, err := Run(context.Background(), f.link, f.tx, f.rx, SSWPolicy{}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestStaticSessionSSW(t *testing.T) {
	f := setup(t)
	res, err := Run(context.Background(), f.link, f.tx, f.rx, SSWPolicy{},
		WithDuration(10*time.Second),
		WithTrainingInterval(time.Second),
		WithEvalStep(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "SSW" {
		t.Fatalf("policy = %q", res.Policy)
	}
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.TotalProbes != 340 {
		t.Fatalf("probes = %d", res.TotalProbes)
	}
	if res.MeanThroughputMbps < 800 {
		t.Fatalf("static 3 m link throughput = %v Mbps", res.MeanThroughputMbps)
	}
	// At 3 m many sectors saturate the reporting ceiling, so argmax
	// ties can land a few true-dB below optimum at identical throughput.
	if res.MeanLossDB > 6 {
		t.Fatalf("static SSW loss = %v dB", res.MeanLossDB)
	}
}

func TestStaticSessionCSS(t *testing.T) {
	f := setup(t)
	css := &CSSPolicy{Estimator: f.est, M: 14, RNG: stats.NewRNG(5)}
	if css.Name() != "CSS-14" {
		t.Fatalf("name = %q", css.Name())
	}
	res, err := Run(context.Background(), f.link, f.tx, f.rx, css,
		WithDuration(10*time.Second),
		WithTrainingInterval(time.Second),
		WithEvalStep(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProbes != 140 {
		t.Fatalf("probes = %d", res.TotalProbes)
	}
	if res.MeanThroughputMbps < 700 {
		t.Fatalf("CSS throughput = %v Mbps", res.MeanThroughputMbps)
	}
}

func TestMobilitySession(t *testing.T) {
	f := setup(t)
	css := &CSSPolicy{Estimator: f.est, M: 14, RNG: stats.NewRNG(6)}
	res, err := Run(context.Background(), f.link, f.tx, f.rx, css,
		WithDuration(20*time.Second),
		WithTrainingInterval(500*time.Millisecond),
		WithMobility(OrbitMobility(3, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 160 { // 40 intervals x 4 evaluation steps
		t.Fatalf("points = %d", len(res.Points))
	}
	// Selections must follow the orbit: several distinct sectors.
	distinct := map[interface{}]bool{}
	for _, p := range res.Points {
		distinct[p.Sector] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("tracking produced only %d distinct sectors", len(distinct))
	}
	if res.MeanLossDB > 5 {
		t.Fatalf("tracking loss = %v dB", res.MeanLossDB)
	}
}

func TestAdaptivePolicySavesProbes(t *testing.T) {
	// A fresh fixture keeps this test deterministic: the flip rate of
	// selections (and therefore the controller's budget) depends on the
	// devices' noise stream state.
	cached = nil
	f := setup(t)
	// Static scene: the adaptive controller should spend far fewer
	// probes than the full sweep.
	adaptive := &AdaptiveCSSPolicy{
		Estimator:  f.est,
		Controller: core.NewAdaptiveController(8, 34),
		RNG:        stats.NewRNG(7),
	}
	if adaptive.Name() != "CSS-adaptive" {
		t.Fatalf("name = %q", adaptive.Name())
	}
	res, err := Run(context.Background(), f.link, f.tx, f.rx, adaptive,
		WithDuration(30*time.Second),
		WithTrainingInterval(time.Second),
		WithEvalStep(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProbes >= 30*34*3/4 {
		t.Fatalf("adaptive spent %d probes on a static scene", res.TotalProbes)
	}
	cached = nil // do not leak the consumed fixture into later tests
}

func TestFasterRetrainingHelpsUnderMobility(t *testing.T) {
	f := setup(t)
	// The Section 7 argument: with mobility, CSS's cheap trainings can
	// run more often; per-interval SNR loss shrinks versus a slow SSW
	// cadence on the same trajectory.
	slow, err := Run(context.Background(), f.link, f.tx, f.rx, SSWPolicy{},
		WithDuration(24*time.Second),
		WithTrainingInterval(2*time.Second),
		WithMobility(OrbitMobility(3, 18)))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(context.Background(), f.link, f.tx, f.rx, &CSSPolicy{Estimator: f.est, M: 14, RNG: stats.NewRNG(8)},
		WithDuration(24*time.Second),
		WithTrainingInterval(500*time.Millisecond),
		WithMobility(OrbitMobility(3, 18)))
	if err != nil {
		t.Fatal(err)
	}
	// The fast-retraining CSS session must not lose more SNR than the
	// slow SSW cadence despite probing less than the sweep per round.
	if fast.MeanLossDB > slow.MeanLossDB+0.5 {
		t.Fatalf("fast CSS loss %v dB vs slow SSW %v dB", fast.MeanLossDB, slow.MeanLossDB)
	}
	if math.IsNaN(fast.MeanThroughputMbps) || fast.MeanThroughputMbps <= 0 {
		t.Fatalf("fast throughput = %v", fast.MeanThroughputMbps)
	}
}

func TestEnsembleCSSPolicy(t *testing.T) {
	f := setup(t)
	ens := &EnsembleCSSPolicy{Estimator: f.est, M: 14, RNG: stats.NewRNG(12)}
	if ens.Name() != "CSS-14-ens" {
		t.Fatalf("name = %q", ens.Name())
	}
	// A direct training round: valid sector, probe cost equal to the
	// budget (the leave-one-out resamples reuse the same airtime).
	out, err := ens.Train(context.Background(), f.link, f.tx, f.rx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != 14 {
		t.Fatalf("probe cost = %d, want the budget 14", out.Probes)
	}
	valid := false
	for _, txID := range sector.TalonTX() {
		if out.Sector == txID {
			valid = true
			break
		}
	}
	if !valid {
		t.Fatalf("trained sector %d outside the TX codebook", out.Sector)
	}
	// And a full session: the ensemble must hold CSS-grade throughput.
	res, err := Run(context.Background(), f.link, f.tx, f.rx, ens,
		WithDuration(10*time.Second),
		WithTrainingInterval(time.Second),
		WithEvalStep(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProbes != 140 {
		t.Fatalf("probes = %d", res.TotalProbes)
	}
	if res.MeanThroughputMbps < 700 {
		t.Fatalf("ensemble CSS throughput = %v Mbps", res.MeanThroughputMbps)
	}
}
