// Package session simulates a live link over time: periodic beamtraining
// (stock sweep or compressive), data transfer in between, and device
// mobility. It quantifies the Section 7 discussion — shorter trainings
// can run more often without degrading throughput, which is what makes
// compressive selection attractive for mobile mm-wave scenarios.
package session

import (
	"context"
	"fmt"
	"math"
	"time"

	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/mcs"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/wil"
)

// Outcome is the typed result of one training round. It mirrors the
// fields talon.Selection exposes for degraded selections, so session
// results and trainer results serialize consistently.
type Outcome struct {
	// Sector is the chosen transmit sector.
	Sector sector.ID `json:"sector"`
	// Probes is the number of over-the-air probes the round spent.
	Probes int `json:"probes"`
	// Degraded marks rounds whose selection abandoned the compressive
	// estimate (matching talon.Selection.Degraded).
	Degraded bool `json:"degraded,omitempty"`
	// FallbackReason classifies why a degraded round abandoned CSS;
	// core.FallbackNone otherwise.
	FallbackReason core.FallbackReason `json:"fallback_reason,omitempty"`
}

// Policy decides how one training round runs.
type Policy interface {
	// Name labels the policy in results.
	Name() string
	// Train probes the link from tx to rx and returns the round's
	// Outcome. On error the Outcome still carries the probes spent, so
	// failed rounds are billed their airtime. ctx cancels the
	// underlying estimation.
	Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (Outcome, error)
}

// SSWPolicy is the stock full sector sweep.
type SSWPolicy struct{}

// Name implements Policy.
func (SSWPolicy) Name() string { return "SSW" }

// Train implements Policy: probe everything, pick the reported argmax.
func (SSWPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (Outcome, error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	meas, err := link.RunTXSS(tx, rx, dot11ad.SweepSchedule())
	if err != nil {
		return Outcome{}, err
	}
	id, ok := core.SweepSelect(core.MeasurementsToProbes(sector.TalonTX(), meas))
	if !ok {
		return Outcome{Probes: 34}, fmt.Errorf("session: sweep produced no measurements")
	}
	return Outcome{Sector: id, Probes: 34}, nil
}

// CSSPolicy is compressive sector selection with a fixed probe budget.
type CSSPolicy struct {
	// Estimator must be built from tx's measured patterns.
	Estimator *core.Estimator
	// M is the probe budget.
	M int
	// RNG draws the probing subsets.
	RNG *stats.RNG
	// Warm chains trainings through the warm-start path: each round
	// hints the estimator with the previous round's grid cell (see
	// core.Estimator.SelectSectorWarm). The first round — and every
	// round after a failed one — runs cold.
	Warm bool

	// last is the previous successful round's grid cell, fed back as the
	// next round's warm-start hint when Warm is set.
	last core.Cell
}

// Name implements Policy.
func (p *CSSPolicy) Name() string { return fmt.Sprintf("CSS-%d", p.M) }

// Train implements Policy.
func (p *CSSPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (Outcome, error) {
	probeSet, err := core.RandomProbes(p.RNG, sector.TalonTX(), p.M)
	if err != nil {
		return Outcome{}, err
	}
	meas, err := link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(probeSet))
	if err != nil {
		return Outcome{}, err
	}
	probes := core.ProbesFromMeasurements(probeSet.IDs(), meas)
	var sel core.Selection
	if p.Warm {
		sel, err = p.Estimator.SelectSectorWarm(ctx, probes, p.last)
	} else {
		sel, err = p.Estimator.SelectSector(ctx, probes)
	}
	if err != nil {
		p.last = core.NoCell
		return Outcome{Probes: p.M}, err
	}
	p.last = sel.AoA.Cell
	return Outcome{
		Sector:         sel.Sector,
		Probes:         p.M,
		Degraded:       sel.Degraded,
		FallbackReason: sel.FallbackReason,
	}, nil
}

// EnsembleCSSPolicy is compressive selection hardened by a leave-one-out
// ensemble: one probing round, then the full measurement vector plus
// every leave-one-out resample of it are estimated together through the
// batched estimation path, and the round adopts the majority sector.
// A single corrupted reading can only swing one ensemble member, so the
// vote damps the outlier sensitivity of plain CSS at zero extra airtime
// — the resamples reuse the same over-the-air probes, and the batch API
// keeps the extra estimates off the per-call fan-out path.
type EnsembleCSSPolicy struct {
	// Estimator must be built from tx's measured patterns.
	Estimator *core.Estimator
	// M is the probe budget.
	M int
	// RNG draws the probing subsets.
	RNG *stats.RNG
}

// Name implements Policy.
func (p *EnsembleCSSPolicy) Name() string { return fmt.Sprintf("CSS-%d-ens", p.M) }

// Train implements Policy.
func (p *EnsembleCSSPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (Outcome, error) {
	probeSet, err := core.RandomProbes(p.RNG, sector.TalonTX(), p.M)
	if err != nil {
		return Outcome{}, err
	}
	meas, err := link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(probeSet))
	if err != nil {
		return Outcome{}, err
	}
	probes := core.ProbesFromMeasurements(probeSet.IDs(), meas)

	// Item 0 is the full vector; items 1..n drop one reported probe each.
	batch := make([][]core.Probe, 0, len(probes)+1)
	batch = append(batch, probes)
	for i := range probes {
		if !probes[i].OK {
			continue
		}
		loo := make([]core.Probe, len(probes))
		copy(loo, probes)
		loo[i].OK = false
		batch = append(batch, loo)
	}
	results, err := p.Estimator.SelectSectorBatch(ctx, core.BatchOf(batch), 0)
	if err != nil {
		return Outcome{Probes: p.M}, err
	}
	if results[0].Err != nil {
		// Without a full-vector selection the round fails outright; the
		// resamples carry strictly less information.
		return Outcome{Probes: p.M}, results[0].Err
	}
	// Majority vote; ties go to the full-vector selection, then to the
	// lower sector ID, so the outcome is deterministic.
	var votes [256]int
	for _, r := range results {
		if r.Err == nil {
			votes[r.Selection.Sector]++
		}
	}
	best := results[0].Selection.Sector
	for id := range votes {
		if votes[id] > votes[best] {
			best = sector.ID(id)
		}
	}
	return Outcome{
		Sector:         best,
		Probes:         p.M,
		Degraded:       results[0].Selection.Degraded,
		FallbackReason: results[0].Selection.FallbackReason,
	}, nil
}

// AdaptiveCSSPolicy wraps CSS with the adaptive probe-count controller.
type AdaptiveCSSPolicy struct {
	Estimator  *core.Estimator
	Controller *core.AdaptiveController
	RNG        *stats.RNG
}

// Name implements Policy.
func (p *AdaptiveCSSPolicy) Name() string { return "CSS-adaptive" }

// Train implements Policy.
func (p *AdaptiveCSSPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (Outcome, error) {
	inner := &CSSPolicy{Estimator: p.Estimator, M: p.Controller.M(), RNG: p.RNG}
	out, err := inner.Train(ctx, link, tx, rx)
	if err == nil {
		p.Controller.Observe(out.Sector)
	}
	return out, err
}

// config shapes a session run; callers set it through Options.
type config struct {
	duration         time.Duration
	trainingInterval time.Duration
	mobility         func(t time.Duration, tx, rx *wil.Device)
	evalStep         time.Duration
	throughput       mcs.ThroughputModel
}

// Option configures Run, matching the Trainer.Run(...RunOption) idiom of
// the public API.
type Option func(*config)

// WithDuration sets the simulated time span. Every session needs one;
// Run rejects non-positive durations.
func WithDuration(d time.Duration) Option {
	return func(c *config) { c.duration = d }
}

// WithTrainingInterval sets the retraining period (default: the stock
// firmware's once-per-second cadence).
func WithTrainingInterval(d time.Duration) Option {
	return func(c *config) { c.trainingInterval = d }
}

// WithMobility installs a mobility function, called with the elapsed
// time before every training and every evaluation step; it may
// reposition the devices. Motion between trainings makes the previous
// selection stale — the effect that rewards frequent retraining.
func WithMobility(f func(t time.Duration, tx, rx *wil.Device)) Option {
	return func(c *config) { c.mobility = f }
}

// WithEvalStep sets the sampling period of link quality between
// trainings; it defaults to a quarter of the training interval (at most
// 250 ms).
func WithEvalStep(d time.Duration) Option {
	return func(c *config) { c.evalStep = d }
}

// WithThroughputModel overrides the rate model (default
// mcs.DefaultThroughputModel).
func WithThroughputModel(m mcs.ThroughputModel) Option {
	return func(c *config) { c.throughput = m }
}

// Point is one training interval of the session.
type Point struct {
	// T is the interval's start time.
	T time.Duration
	// Sector is the transmit sector in use.
	Sector sector.ID
	// TrueSNR and OptimalSNR are the selected sector's and the best
	// sector's noiseless SNR.
	TrueSNR, OptimalSNR float64
	// ThroughputMbps is the interval's expected application throughput.
	ThroughputMbps float64
	// Probes is the training cost of this interval.
	Probes int
	// TrainFailed marks intervals whose training produced no selection
	// (the previous sector stays in use).
	TrainFailed bool
	// Degraded marks intervals whose training abandoned the compressive
	// estimate (see Outcome.Degraded).
	Degraded bool
}

// Result summarizes a session.
type Result struct {
	Policy string
	Points []Point
	// MeanThroughputMbps averages the per-interval throughputs.
	MeanThroughputMbps float64
	// MeanLossDB averages trueSNR(optimal) − trueSNR(selected).
	MeanLossDB float64
	// TotalProbes sums the training cost.
	TotalProbes int
}

// Run simulates the session: every training interval the policy retrains
// (after the mobility function moved the devices), and the interval's
// throughput is computed from the selected sector's true SNR minus the
// training airtime overhead. The session's shape comes from Options:
//
//	res, err := session.Run(ctx, link, tx, rx, policy,
//		session.WithDuration(20*time.Second),
//		session.WithTrainingInterval(250*time.Millisecond),
//		session.WithMobility(session.OrbitMobility(3, 12)))
//
// ctx is observed between training intervals; a cancelled session
// returns ctx.Err().
func Run(ctx context.Context, link *wil.Link, tx, rx *wil.Device, policy Policy, opts ...Option) (*Result, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.duration <= 0 {
		return nil, fmt.Errorf("session: duration must be positive (set WithDuration)")
	}
	if cfg.trainingInterval <= 0 {
		cfg.trainingInterval = dot11ad.SweepInterval
	}
	model := cfg.throughput
	if model.TCPEfficiency == 0 {
		model = mcs.DefaultThroughputModel()
	}
	model.TrainingInterval = cfg.trainingInterval
	evalStep := cfg.evalStep
	if evalStep <= 0 {
		evalStep = cfg.trainingInterval / 4
		if evalStep > 250*time.Millisecond {
			evalStep = 250 * time.Millisecond
		}
	}
	if evalStep > cfg.trainingInterval {
		evalStep = cfg.trainingInterval
	}

	res := &Result{Policy: policy.Name()}
	var current sector.ID
	haveSector := false
	lossSum, lossN := 0.0, 0
	tpSum := 0.0
	for t := time.Duration(0); t < cfg.duration; t += cfg.trainingInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.mobility != nil {
			cfg.mobility(t, tx, rx)
		}
		out, err := policy.Train(ctx, link, tx, rx)
		res.TotalProbes += out.Probes
		trainFailed := err != nil
		if !trainFailed {
			current, haveSector = out.Sector, true
		}
		trainTime := dot11ad.MutualTrainingTime(out.Probes)

		// Sample link quality across the interval while the devices
		// keep moving and the selection goes stale.
		for te := t; te < t+cfg.trainingInterval && te < cfg.duration; te += evalStep {
			if cfg.mobility != nil {
				cfg.mobility(te, tx, rx)
			}
			pt := Point{T: te, Probes: out.Probes, TrainFailed: trainFailed, Degraded: out.Degraded}
			if !haveSector {
				res.Points = append(res.Points, pt)
				continue
			}
			pt.Sector = current
			pt.TrueSNR = link.TrueSNR(tx, rx, current)
			pt.OptimalSNR = math.Inf(-1)
			for _, sid := range sector.TalonTX() {
				if snr := link.TrueSNR(tx, rx, sid); snr > pt.OptimalSNR {
					pt.OptimalSNR = snr
				}
			}
			pt.ThroughputMbps = model.AppThroughputMbps(pt.TrueSNR, trainTime)
			tpSum += pt.ThroughputMbps
			if !math.IsInf(pt.TrueSNR, -1) && !math.IsInf(pt.OptimalSNR, -1) {
				lossSum += pt.OptimalSNR - pt.TrueSNR
				lossN++
			}
			res.Points = append(res.Points, pt)
		}
	}
	if len(res.Points) > 0 {
		res.MeanThroughputMbps = tpSum / float64(len(res.Points))
	}
	if lossN > 0 {
		res.MeanLossDB = lossSum / float64(lossN)
	}
	return res, nil
}

// OrbitMobility returns a mobility function that swings the receiver on
// a radius-meter arc around the transmitter at degPerSec, the rotating
// head of the tracking experiments.
func OrbitMobility(radius, degPerSec float64) func(t time.Duration, tx, rx *wil.Device) {
	return func(t time.Duration, tx, rx *wil.Device) {
		az := degPerSec * t.Seconds()
		// Swing back and forth over ±60°.
		az = math.Mod(az, 240)
		if az > 120 {
			az = 240 - az
		}
		az -= 60
		pose := rx.Pose()
		rad := az * math.Pi / 180
		pose.Pos.X = tx.Pose().Pos.X + radius*math.Cos(rad)
		pose.Pos.Y = tx.Pose().Pos.Y + radius*math.Sin(rad)
		pose.Yaw = 180 + az
		rx.SetPose(pose)
	}
}
