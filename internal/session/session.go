// Package session simulates a live link over time: periodic beamtraining
// (stock sweep or compressive), data transfer in between, and device
// mobility. It quantifies the Section 7 discussion — shorter trainings
// can run more often without degrading throughput, which is what makes
// compressive selection attractive for mobile mm-wave scenarios.
package session

import (
	"context"
	"fmt"
	"math"
	"time"

	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/mcs"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/wil"
)

// Policy decides how one training round runs.
type Policy interface {
	// Name labels the policy in results.
	Name() string
	// Train probes the link from tx to rx and returns the chosen
	// transmit sector plus the number of probes spent. ctx cancels the
	// underlying estimation.
	Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (sector.ID, int, error)
}

// SSWPolicy is the stock full sector sweep.
type SSWPolicy struct{}

// Name implements Policy.
func (SSWPolicy) Name() string { return "SSW" }

// Train implements Policy: probe everything, pick the reported argmax.
func (SSWPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (sector.ID, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	meas, err := link.RunTXSS(tx, rx, dot11ad.SweepSchedule())
	if err != nil {
		return 0, 0, err
	}
	id, ok := core.SweepSelect(core.MeasurementsToProbes(sector.TalonTX(), meas))
	if !ok {
		return 0, 34, fmt.Errorf("session: sweep produced no measurements")
	}
	return id, 34, nil
}

// CSSPolicy is compressive sector selection with a fixed probe budget.
type CSSPolicy struct {
	// Estimator must be built from tx's measured patterns.
	Estimator *core.Estimator
	// M is the probe budget.
	M int
	// RNG draws the probing subsets.
	RNG *stats.RNG
}

// Name implements Policy.
func (p *CSSPolicy) Name() string { return fmt.Sprintf("CSS-%d", p.M) }

// Train implements Policy.
func (p *CSSPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (sector.ID, int, error) {
	probeSet, err := core.RandomProbes(p.RNG, sector.TalonTX(), p.M)
	if err != nil {
		return 0, 0, err
	}
	meas, err := link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(probeSet))
	if err != nil {
		return 0, 0, err
	}
	sel, err := p.Estimator.SelectSector(ctx, core.ProbesFromMeasurements(probeSet.IDs(), meas))
	if err != nil {
		return 0, p.M, err
	}
	return sel.Sector, p.M, nil
}

// EnsembleCSSPolicy is compressive selection hardened by a leave-one-out
// ensemble: one probing round, then the full measurement vector plus
// every leave-one-out resample of it are estimated together through the
// batched estimation path, and the round adopts the majority sector.
// A single corrupted reading can only swing one ensemble member, so the
// vote damps the outlier sensitivity of plain CSS at zero extra airtime
// — the resamples reuse the same over-the-air probes, and the batch API
// keeps the extra estimates off the per-call fan-out path.
type EnsembleCSSPolicy struct {
	// Estimator must be built from tx's measured patterns.
	Estimator *core.Estimator
	// M is the probe budget.
	M int
	// RNG draws the probing subsets.
	RNG *stats.RNG
}

// Name implements Policy.
func (p *EnsembleCSSPolicy) Name() string { return fmt.Sprintf("CSS-%d-ens", p.M) }

// Train implements Policy.
func (p *EnsembleCSSPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (sector.ID, int, error) {
	probeSet, err := core.RandomProbes(p.RNG, sector.TalonTX(), p.M)
	if err != nil {
		return 0, 0, err
	}
	meas, err := link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(probeSet))
	if err != nil {
		return 0, 0, err
	}
	probes := core.ProbesFromMeasurements(probeSet.IDs(), meas)

	// Item 0 is the full vector; items 1..n drop one reported probe each.
	batch := make([][]core.Probe, 0, len(probes)+1)
	batch = append(batch, probes)
	for i := range probes {
		if !probes[i].OK {
			continue
		}
		loo := make([]core.Probe, len(probes))
		copy(loo, probes)
		loo[i].OK = false
		batch = append(batch, loo)
	}
	results, err := p.Estimator.SelectSectorBatch(ctx, batch, 0)
	if err != nil {
		return 0, p.M, err
	}
	if results[0].Err != nil {
		// Without a full-vector selection the round fails outright; the
		// resamples carry strictly less information.
		return 0, p.M, results[0].Err
	}
	// Majority vote; ties go to the full-vector selection, then to the
	// lower sector ID, so the outcome is deterministic.
	var votes [256]int
	for _, r := range results {
		if r.Err == nil {
			votes[r.Selection.Sector]++
		}
	}
	best := results[0].Selection.Sector
	for id := range votes {
		if votes[id] > votes[best] {
			best = sector.ID(id)
		}
	}
	return best, p.M, nil
}

// AdaptiveCSSPolicy wraps CSS with the adaptive probe-count controller.
type AdaptiveCSSPolicy struct {
	Estimator  *core.Estimator
	Controller *core.AdaptiveController
	RNG        *stats.RNG
}

// Name implements Policy.
func (p *AdaptiveCSSPolicy) Name() string { return "CSS-adaptive" }

// Train implements Policy.
func (p *AdaptiveCSSPolicy) Train(ctx context.Context, link *wil.Link, tx, rx *wil.Device) (sector.ID, int, error) {
	inner := &CSSPolicy{Estimator: p.Estimator, M: p.Controller.M(), RNG: p.RNG}
	id, probes, err := inner.Train(ctx, link, tx, rx)
	if err == nil {
		p.Controller.Observe(id)
	}
	return id, probes, err
}

// Config shapes a session run.
type Config struct {
	// Duration is the simulated time span.
	Duration time.Duration
	// TrainingInterval is the retraining period (the Talon retrains at
	// least once per second).
	TrainingInterval time.Duration
	// Mobility, if set, is called with the elapsed time before every
	// training and every evaluation step, and may reposition the
	// devices. Motion between trainings makes the previous selection
	// stale — the effect that rewards frequent retraining.
	Mobility func(t time.Duration, tx, rx *wil.Device)
	// EvalStep is the sampling period of link quality between
	// trainings; it defaults to TrainingInterval/4 (at most 250 ms).
	EvalStep time.Duration
	// Throughput is the rate model; zero value uses the default.
	Throughput mcs.ThroughputModel
}

// Point is one training interval of the session.
type Point struct {
	// T is the interval's start time.
	T time.Duration
	// Sector is the transmit sector in use.
	Sector sector.ID
	// TrueSNR and OptimalSNR are the selected sector's and the best
	// sector's noiseless SNR.
	TrueSNR, OptimalSNR float64
	// ThroughputMbps is the interval's expected application throughput.
	ThroughputMbps float64
	// Probes is the training cost of this interval.
	Probes int
	// TrainFailed marks intervals whose training produced no selection
	// (the previous sector stays in use).
	TrainFailed bool
}

// Result summarizes a session.
type Result struct {
	Policy string
	Points []Point
	// MeanThroughputMbps averages the per-interval throughputs.
	MeanThroughputMbps float64
	// MeanLossDB averages trueSNR(optimal) − trueSNR(selected).
	MeanLossDB float64
	// TotalProbes sums the training cost.
	TotalProbes int
}

// Run simulates the session: every TrainingInterval the policy retrains
// (after Mobility moved the devices), and the interval's throughput is
// computed from the selected sector's true SNR minus the training
// airtime overhead. ctx is observed between training intervals; a
// cancelled session returns ctx.Err().
func Run(ctx context.Context, link *wil.Link, tx, rx *wil.Device, policy Policy, cfg Config) (*Result, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("session: duration must be positive")
	}
	if cfg.TrainingInterval <= 0 {
		cfg.TrainingInterval = dot11ad.SweepInterval
	}
	model := cfg.Throughput
	if model.TCPEfficiency == 0 {
		model = mcs.DefaultThroughputModel()
	}
	model.TrainingInterval = cfg.TrainingInterval
	evalStep := cfg.EvalStep
	if evalStep <= 0 {
		evalStep = cfg.TrainingInterval / 4
		if evalStep > 250*time.Millisecond {
			evalStep = 250 * time.Millisecond
		}
	}
	if evalStep > cfg.TrainingInterval {
		evalStep = cfg.TrainingInterval
	}

	res := &Result{Policy: policy.Name()}
	var current sector.ID
	haveSector := false
	lossSum, lossN := 0.0, 0
	tpSum := 0.0
	for t := time.Duration(0); t < cfg.Duration; t += cfg.TrainingInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.Mobility != nil {
			cfg.Mobility(t, tx, rx)
		}
		id, probes, err := policy.Train(ctx, link, tx, rx)
		res.TotalProbes += probes
		trainFailed := err != nil
		if !trainFailed {
			current, haveSector = id, true
		}
		trainTime := dot11ad.MutualTrainingTime(probes)

		// Sample link quality across the interval while the devices
		// keep moving and the selection goes stale.
		for te := t; te < t+cfg.TrainingInterval && te < cfg.Duration; te += evalStep {
			if cfg.Mobility != nil {
				cfg.Mobility(te, tx, rx)
			}
			pt := Point{T: te, Probes: probes, TrainFailed: trainFailed}
			if !haveSector {
				res.Points = append(res.Points, pt)
				continue
			}
			pt.Sector = current
			pt.TrueSNR = link.TrueSNR(tx, rx, current)
			pt.OptimalSNR = math.Inf(-1)
			for _, sid := range sector.TalonTX() {
				if snr := link.TrueSNR(tx, rx, sid); snr > pt.OptimalSNR {
					pt.OptimalSNR = snr
				}
			}
			pt.ThroughputMbps = model.AppThroughputMbps(pt.TrueSNR, trainTime)
			tpSum += pt.ThroughputMbps
			if !math.IsInf(pt.TrueSNR, -1) && !math.IsInf(pt.OptimalSNR, -1) {
				lossSum += pt.OptimalSNR - pt.TrueSNR
				lossN++
			}
			res.Points = append(res.Points, pt)
		}
	}
	if len(res.Points) > 0 {
		res.MeanThroughputMbps = tpSum / float64(len(res.Points))
	}
	if lossN > 0 {
		res.MeanLossDB = lossSum / float64(lossN)
	}
	return res, nil
}

// OrbitMobility returns a mobility function that swings the receiver on
// a radius-meter arc around the transmitter at degPerSec, the rotating
// head of the tracking experiments.
func OrbitMobility(radius, degPerSec float64) func(t time.Duration, tx, rx *wil.Device) {
	return func(t time.Duration, tx, rx *wil.Device) {
		az := degPerSec * t.Seconds()
		// Swing back and forth over ±60°.
		az = math.Mod(az, 240)
		if az > 120 {
			az = 240 - az
		}
		az -= 60
		pose := rx.Pose()
		rad := az * math.Pi / 180
		pose.Pos.X = tx.Pose().Pos.X + radius*math.Cos(rad)
		pose.Pos.Y = tx.Pose().Pos.Y + radius*math.Sin(rad)
		pose.Yaw = 180 + az
		rx.SetPose(pose)
	}
}
