package sector

import "testing"

func TestTalonTX(t *testing.T) {
	tx := TalonTX()
	if len(tx) != 34 {
		t.Fatalf("len(TalonTX) = %d, want 34", len(tx))
	}
	want := map[ID]bool{}
	for i := ID(1); i <= 31; i++ {
		want[i] = true
	}
	want[61], want[62], want[63] = true, true, true
	for _, id := range tx {
		if !want[id] {
			t.Errorf("unexpected TX sector %v", id)
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("missing TX sectors: %v", want)
	}
}

func TestTalonAll(t *testing.T) {
	all := TalonAll()
	if len(all) != 35 {
		t.Fatalf("len(TalonAll) = %d, want 35", len(all))
	}
	foundRX := false
	for _, id := range all {
		if id == RX {
			foundRX = true
		}
	}
	if !foundRX {
		t.Fatal("TalonAll missing RX sector")
	}
}

func TestIsTalonTX(t *testing.T) {
	cases := []struct {
		id   ID
		want bool
	}{
		{0, false}, {1, true}, {31, true}, {32, false}, {60, false},
		{61, true}, {62, true}, {63, true},
	}
	for _, c := range cases {
		if got := IsTalonTX(c.id); got != c.want {
			t.Errorf("IsTalonTX(%v) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestIDString(t *testing.T) {
	if RX.String() != "RX" {
		t.Errorf("RX.String() = %q", RX.String())
	}
	if ID(12).String() != "12" {
		t.Errorf("ID(12).String() = %q", ID(12).String())
	}
}

func TestIDValid(t *testing.T) {
	if !ID(63).Valid() || ID(64).Valid() {
		t.Fatal("Valid boundary wrong")
	}
}

func TestSet(t *testing.T) {
	s := NewSet(3, 1, 3, 64, 2) // 64 invalid, 3 duplicated
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	wantOrder := []ID{3, 1, 2}
	for i, id := range s.IDs() {
		if id != wantOrder[i] {
			t.Fatalf("IDs() = %v, want %v", s.IDs(), wantOrder)
		}
	}
	if !s.Contains(1) || s.Contains(5) || s.Contains(64) {
		t.Fatal("Contains wrong")
	}
	if s.Add(1) {
		t.Fatal("Add duplicate reported change")
	}
	if !s.Add(7) {
		t.Fatal("Add new reported no change")
	}
}
