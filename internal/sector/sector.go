// Package sector defines sector identifiers and the sector inventory of the
// simulated Talon AD7200 / QCA9500 platform.
//
// IEEE 802.11ad carries sector IDs in 6-bit fields, so valid on-air IDs are
// 0–63. The Talon firmware predefines 34 transmit sectors (IDs 1–31 and
// 61–63) plus one quasi-omni-directional receive sector; IDs 32–60 are
// undefined on this hardware. Following the paper's Figure 5 we store the
// receive pattern under the reserved ID 0 ("Sector RX"), which the stock
// schedules never transmit on.
package sector

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrUnknown reports a sector ID the hardware does not know: outside the
// 6-bit on-air range, or absent from the codebook in question. Callers
// match it with errors.Is; the root talon package re-exports it.
var ErrUnknown = errors.New("unknown sector")

// ID identifies an antenna sector. On-air encodings use the low 6 bits.
type ID uint8

// RX is the pseudo-ID under which the quasi-omni receive sector's pattern is
// stored. It never appears in transmit bursts.
const RX ID = 0

// MaxID is the largest on-air sector ID (6-bit field).
const MaxID ID = 63

// String implements fmt.Stringer.
func (id ID) String() string {
	if id == RX {
		return "RX"
	}
	return fmt.Sprintf("%d", uint8(id))
}

// Valid reports whether the ID fits the 6-bit on-air field.
func (id ID) Valid() bool { return id <= MaxID }

// MarshalJSON encodes the ID as its String form ("RX" or the decimal
// number), so dumps read the way the paper's figures label sectors.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(id.String())), nil
}

// UnmarshalJSON accepts both encodings: a JSON number (5) and the
// String form ("5", "RX").
func (id *ID) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if unq, err := strconv.Unquote(s); err == nil {
		s = unq
	}
	if strings.EqualFold(s, "RX") {
		*id = RX
		return nil
	}
	n, err := strconv.ParseUint(s, 10, 8)
	if err != nil || !ID(n).Valid() {
		return fmt.Errorf("sector: %w: cannot decode %s", ErrUnknown, string(data))
	}
	*id = ID(n)
	return nil
}

// TalonTX returns the 34 transmit sector IDs predefined in the Talon
// AD7200 firmware, in ascending order: 1–31, 61, 62, 63.
func TalonTX() []ID {
	out := make([]ID, 0, 34)
	for i := ID(1); i <= 31; i++ {
		out = append(out, i)
	}
	out = append(out, 61, 62, 63)
	return out
}

// TalonAll returns all 35 pattern IDs of the Talon AD7200: the 34 transmit
// sectors plus the quasi-omni receive sector (RX).
func TalonAll() []ID {
	return append(TalonTX(), RX)
}

// IsTalonTX reports whether id is one of the Talon's predefined transmit
// sectors.
func IsTalonTX(id ID) bool {
	return (id >= 1 && id <= 31) || id == 61 || id == 62 || id == 63
}

// Set is an ordered collection of unique sector IDs.
type Set struct {
	ids  []ID
	have [MaxID + 1]bool
}

// NewSet builds a set from ids, dropping duplicates and invalid IDs while
// preserving first-seen order.
func NewSet(ids ...ID) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id if valid and not yet present. It reports whether the set
// changed.
func (s *Set) Add(id ID) bool {
	if !id.Valid() || s.have[id] {
		return false
	}
	s.have[id] = true
	s.ids = append(s.ids, id)
	return true
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id ID) bool { return id.Valid() && s.have[id] }

// Len returns the number of sectors in the set.
func (s *Set) Len() int { return len(s.ids) }

// IDs returns the sector IDs in insertion order. The returned slice must
// not be modified.
func (s *Set) IDs() []ID { return s.ids }
