package dot11ad

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"talon/internal/sector"
)

// MACAddr is an EUI-48 station address.
type MACAddr [6]byte

// String implements fmt.Stringer in the usual colon-hex form.
func (a MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// FrameType enumerates the DMG frames this package codes.
type FrameType uint8

const (
	// TypeSSW is a Sector Sweep frame (control frame extension).
	TypeSSW FrameType = iota + 1
	// TypeSSWFeedback closes the responder sweep from the initiator side.
	TypeSSWFeedback
	// TypeSSWAck acknowledges the SSW feedback.
	TypeSSWAck
	// TypeDMGBeacon is the beacon of a DMG BSS.
	TypeDMGBeacon
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case TypeSSW:
		return "SSW"
	case TypeSSWFeedback:
		return "SSW-Feedback"
	case TypeSSWAck:
		return "SSW-Ack"
	case TypeDMGBeacon:
		return "DMG-Beacon"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// frameControl builds the 2-byte IEEE 802.11 frame control for our frames:
// protocol version 0, type/subtype per frame kind. SSW/SSW-Feedback/SSW-Ack
// are control frame extensions (type 01, subtype 0110) with the extension
// subtype in bits 8-11; DMG beacons are extension frames (type 11).
func frameControl(t FrameType) (uint16, error) {
	const (
		typeControl   = 0b01
		typeExtension = 0b11
		subtypeCFE    = 0b0110
	)
	switch t {
	case TypeSSW:
		return typeControl<<2 | subtypeCFE<<4 | 0b1000<<8, nil
	case TypeSSWFeedback:
		return typeControl<<2 | subtypeCFE<<4 | 0b1001<<8, nil
	case TypeSSWAck:
		return typeControl<<2 | subtypeCFE<<4 | 0b1010<<8, nil
	case TypeDMGBeacon:
		return typeExtension<<2 | 0b0000<<4, nil
	}
	return 0, fmt.Errorf("dot11ad: unknown frame type %d", t)
}

func frameTypeFromControl(fc uint16) (FrameType, error) {
	if fc&0b11 != 0 {
		return 0, fmt.Errorf("dot11ad: unsupported protocol version %d", fc&0b11)
	}
	typ := fc >> 2 & 0b11
	subtype := fc >> 4 & 0b1111
	ext := fc >> 8 & 0b1111
	switch {
	case typ == 0b01 && subtype == 0b0110:
		switch ext {
		case 0b1000:
			return TypeSSW, nil
		case 0b1001:
			return TypeSSWFeedback, nil
		case 0b1010:
			return TypeSSWAck, nil
		}
		return 0, fmt.Errorf("dot11ad: unknown control frame extension %04b", ext)
	case typ == 0b11 && subtype == 0b0000:
		return TypeDMGBeacon, nil
	}
	return 0, fmt.Errorf("dot11ad: unknown type/subtype %02b/%04b", typ, subtype)
}

// Frame is a decoded DMG frame. SSW frames carry both the SSW field and an
// SSW Feedback field; SSW-Feedback and SSW-Ack frames carry only the
// feedback field; DMG beacons carry the SSW field and the beacon interval.
type Frame struct {
	Type     FrameType
	Duration uint16
	RA, TA   MACAddr
	SSW      SSWField
	Feedback SSWFeedbackField
	// BeaconIntervalTU is the beacon interval in time units (1024 µs),
	// present in DMG beacons only.
	BeaconIntervalTU uint16
}

const (
	headerLen = 2 + 2 + 6 + 6 // FC, duration, RA, TA
	fcsLen    = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// bodyLen returns the body length for the frame type.
func bodyLen(t FrameType) (int, error) {
	switch t {
	case TypeSSW:
		return 3 + 3, nil
	case TypeSSWFeedback, TypeSSWAck:
		return 3, nil
	case TypeDMGBeacon:
		return 2 + 3, nil
	}
	return 0, fmt.Errorf("dot11ad: unknown frame type %d", t)
}

// Serialize encodes the frame into its wire form including the FCS.
func (f *Frame) Serialize() ([]byte, error) {
	fc, err := frameControl(f.Type)
	if err != nil {
		return nil, err
	}
	bl, err := bodyLen(f.Type)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, headerLen+bl+fcsLen)
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fc)
	binary.LittleEndian.PutUint16(hdr[2:4], f.Duration)
	copy(hdr[4:10], f.RA[:])
	copy(hdr[10:16], f.TA[:])
	out = append(out, hdr[:]...)

	switch f.Type {
	case TypeSSW:
		ssw, err := f.SSW.Encode()
		if err != nil {
			return nil, err
		}
		fb, err := f.Feedback.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, ssw[:]...)
		out = append(out, fb[:]...)
	case TypeSSWFeedback, TypeSSWAck:
		fb, err := f.Feedback.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, fb[:]...)
	case TypeDMGBeacon:
		var bi [2]byte
		binary.LittleEndian.PutUint16(bi[:], f.BeaconIntervalTU)
		out = append(out, bi[:]...)
		ssw, err := f.SSW.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, ssw[:]...)
	}

	var fcs [fcsLen]byte
	binary.LittleEndian.PutUint32(fcs[:], crc32.Checksum(out, castagnoli))
	return append(out, fcs[:]...), nil
}

// DecodeFrame parses a wire-form frame, verifying length and FCS.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < headerLen+fcsLen {
		return nil, fmt.Errorf("dot11ad: frame too short (%d bytes)", len(b))
	}
	payload, fcs := b[:len(b)-fcsLen], b[len(b)-fcsLen:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(fcs); got != want {
		return nil, fmt.Errorf("dot11ad: FCS mismatch (got %08x want %08x)", got, want)
	}
	fc := binary.LittleEndian.Uint16(payload[0:2])
	t, err := frameTypeFromControl(fc)
	if err != nil {
		return nil, err
	}
	bl, err := bodyLen(t)
	if err != nil {
		return nil, err
	}
	if len(payload) != headerLen+bl {
		return nil, fmt.Errorf("dot11ad: %v frame body length %d, want %d", t, len(payload)-headerLen, bl)
	}
	f := &Frame{Type: t, Duration: binary.LittleEndian.Uint16(payload[2:4])}
	copy(f.RA[:], payload[4:10])
	copy(f.TA[:], payload[10:16])
	body := payload[headerLen:]
	switch t {
	case TypeSSW:
		f.SSW = DecodeSSWField([3]byte(body[0:3]))
		f.Feedback = DecodeSSWFeedbackField([3]byte(body[3:6]))
	case TypeSSWFeedback, TypeSSWAck:
		f.Feedback = DecodeSSWFeedbackField([3]byte(body[0:3]))
	case TypeDMGBeacon:
		f.BeaconIntervalTU = binary.LittleEndian.Uint16(body[0:2])
		f.SSW = DecodeSSWField([3]byte(body[2:5]))
	}
	return f, nil
}

// NewSSWFrame builds a sector-sweep frame transmitted on sec with the given
// countdown and direction, carrying feedback fb.
func NewSSWFrame(ra, ta MACAddr, direction bool, cdown uint16, sec sector.ID, fb SSWFeedbackField) *Frame {
	return &Frame{
		Type: TypeSSW,
		RA:   ra,
		TA:   ta,
		SSW: SSWField{
			Direction: direction,
			CDOWN:     cdown,
			SectorID:  sec,
		},
		Feedback: fb,
	}
}
