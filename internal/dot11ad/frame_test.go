package dot11ad

import (
	"bytes"
	"testing"
	"testing/quick"

	"talon/internal/sector"
)

var (
	addrA = MACAddr{0x50, 0xc7, 0xbf, 0x01, 0x02, 0x03}
	addrB = MACAddr{0x50, 0xc7, 0xbf, 0x0a, 0x0b, 0x0c}
)

func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	b, err := f.Serialize()
	if err != nil {
		t.Fatalf("serialize %+v: %v", f, err)
	}
	got, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestSSWFrameRoundTrip(t *testing.T) {
	f := NewSSWFrame(addrA, addrB, DirectionResponder, 12, 27, SSWFeedbackField{
		SectorSelect: 8,
		SNRReport:    EncodeSNR(9.25),
	})
	f.Duration = 1000
	got := roundTrip(t, f)
	if *got != *f {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, f)
	}
}

func TestFeedbackAndAckRoundTrip(t *testing.T) {
	for _, typ := range []FrameType{TypeSSWFeedback, TypeSSWAck} {
		f := &Frame{
			Type:     typ,
			RA:       addrB,
			TA:       addrA,
			Feedback: SSWFeedbackField{SectorSelect: 20, SNRReport: 77, PollRequired: true},
		}
		got := roundTrip(t, f)
		if *got != *f {
			t.Fatalf("%v round trip mismatch", typ)
		}
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	f := &Frame{
		Type:             TypeDMGBeacon,
		RA:               MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		TA:               addrA,
		SSW:              SSWField{CDOWN: 33, SectorID: 63},
		BeaconIntervalTU: 100,
	}
	got := roundTrip(t, f)
	if *got != *f {
		t.Fatalf("beacon round trip mismatch: %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := NewSSWFrame(addrA, addrB, DirectionInitiator, 5, 3, SSWFeedbackField{})
	b, err := f.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		corrupted := append([]byte(nil), b...)
		corrupted[i] ^= 0x40
		if _, err := DecodeFrame(corrupted); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestDecodeRejectsShortAndTruncated(t *testing.T) {
	if _, err := DecodeFrame(nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	if _, err := DecodeFrame(make([]byte, 10)); err == nil {
		t.Fatal("short frame accepted")
	}
	f := NewSSWFrame(addrA, addrB, false, 5, 3, SSWFeedbackField{})
	b, _ := f.Serialize()
	if _, err := DecodeFrame(b[:len(b)-3]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestSerializeValidation(t *testing.T) {
	f := &Frame{Type: TypeSSW, SSW: SSWField{SectorID: 64}}
	if _, err := f.Serialize(); err == nil {
		t.Fatal("invalid sector ID serialized")
	}
	f = &Frame{Type: FrameType(99)}
	if _, err := f.Serialize(); err == nil {
		t.Fatal("unknown frame type serialized")
	}
}

func TestFrameTypeStrings(t *testing.T) {
	for _, typ := range []FrameType{TypeSSW, TypeSSWFeedback, TypeSSWAck, TypeDMGBeacon} {
		if typ.String() == "" || bytes.Contains([]byte(typ.String()), []byte("FrameType(")) {
			t.Errorf("missing String for %d", typ)
		}
	}
	if FrameType(42).String() != "FrameType(42)" {
		t.Error("fallback String wrong")
	}
}

func TestMACAddrString(t *testing.T) {
	if got := addrA.String(); got != "50:c7:bf:01:02:03" {
		t.Fatalf("MACAddr.String() = %q", got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(dir bool, cdown uint16, sec, sel, snr uint8, dur uint16) bool {
		in := NewSSWFrame(addrA, addrB, dir, cdown%(MaxCDOWN+1), sector.ID(sec%64), SSWFeedbackField{
			SectorSelect: sector.ID(sel % 64),
			SNRReport:    snr,
		})
		in.Duration = dur
		b, err := in.Serialize()
		if err != nil {
			return false
		}
		got, err := DecodeFrame(b)
		if err != nil {
			return false
		}
		return *got == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
