package dot11ad

import (
	"sort"

	"talon/internal/sector"
)

// ObservedSchedule is a burst schedule reconstructed from captured
// frames, the Section 4.1 methodology: listen in monitor mode, record
// which sector ID appears at which CDOWN value.
type ObservedSchedule struct {
	// Sectors maps CDOWN values to the sector ID observed there.
	Sectors map[uint16]sector.ID
	// Frames counts the frames that contributed.
	Frames int
	// Conflicts counts frames contradicting an earlier observation at
	// the same CDOWN (should stay zero on a stable schedule).
	Conflicts int
}

// ReconstructSchedules classifies captured frames into beacon and sweep
// bursts and rebuilds the sector-per-CDOWN tables of Table 1. Frames
// other than DMG beacons and SSW frames are ignored.
func ReconstructSchedules(frames []*Frame) (beacon, sweep *ObservedSchedule) {
	beacon = &ObservedSchedule{Sectors: make(map[uint16]sector.ID)}
	sweep = &ObservedSchedule{Sectors: make(map[uint16]sector.ID)}
	for _, f := range frames {
		if f == nil {
			continue
		}
		var target *ObservedSchedule
		switch f.Type {
		case TypeDMGBeacon:
			target = beacon
		case TypeSSW:
			target = sweep
		default:
			continue
		}
		target.Frames++
		if prev, seen := target.Sectors[f.SSW.CDOWN]; seen {
			if prev != f.SSW.SectorID {
				target.Conflicts++
			}
			continue
		}
		target.Sectors[f.SSW.CDOWN] = f.SSW.SectorID
	}
	return beacon, sweep
}

// CDOWNs returns the observed countdown values, descending (transmission
// order).
func (o *ObservedSchedule) CDOWNs() []uint16 {
	out := make([]uint16, 0, len(o.Sectors))
	for cd := range o.Sectors {
		out = append(out, cd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// MatchAgainst compares the observation with a reference schedule and
// returns how many used slots were observed with the correct sector,
// how many were missed entirely, and how many disagreed.
func (o *ObservedSchedule) MatchAgainst(ref []BurstSlot) (correct, missed, wrong int) {
	for _, slot := range ref {
		if !slot.Used {
			continue
		}
		got, seen := o.Sectors[slot.CDOWN]
		switch {
		case !seen:
			missed++
		case got == slot.Sector:
			correct++
		default:
			wrong++
		}
	}
	return correct, missed, wrong
}
