package dot11ad

import "talon/internal/sector"

// BurstSlot is one transmit opportunity in a beacon or sweep burst: the
// CDOWN value announced in the frame and the sector it is sent on. Unused
// slots (observed as gaps in the paper's Table 1) transmit nothing.
type BurstSlot struct {
	CDOWN  uint16
	Sector sector.ID
	Used   bool
}

// BeaconSchedule returns the stock beacon burst of the Talon AD7200
// exactly as captured in Table 1 of the paper: CDOWN counts from 34 down
// to 0; sector 63 is sent at CDOWN 33, sectors 1–31 at CDOWN 31…1, and
// slots 34, 32 and 0 stay unused.
func BeaconSchedule() []BurstSlot {
	slots := make([]BurstSlot, 0, 35)
	for cd := 34; cd >= 0; cd-- {
		s := BurstSlot{CDOWN: uint16(cd)}
		switch {
		case cd == 33:
			s.Sector, s.Used = 63, true
		case cd >= 1 && cd <= 31:
			s.Sector, s.Used = sector.ID(32-cd), true
		}
		slots = append(slots, s)
	}
	return slots
}

// SweepSchedule returns the stock sector-sweep burst of Table 1: sectors
// 1–31 at CDOWN 34…4, slot 3 unused, then sectors 61, 62 and 63 at CDOWN
// 2, 1 and 0.
func SweepSchedule() []BurstSlot {
	slots := make([]BurstSlot, 0, 35)
	for cd := 34; cd >= 0; cd-- {
		s := BurstSlot{CDOWN: uint16(cd)}
		switch {
		case cd >= 4:
			s.Sector, s.Used = sector.ID(35-cd), true
		case cd == 2:
			s.Sector, s.Used = 61, true
		case cd == 1:
			s.Sector, s.Used = 62, true
		case cd == 0:
			s.Sector, s.Used = 63, true
		}
		slots = append(slots, s)
	}
	return slots
}

// SubSweepSchedule returns a sweep burst restricted to the given probing
// sectors, preserving the stock burst's sector order and renumbering CDOWN
// to count the remaining probes — how the patched firmware sweeps only a
// compressive probing subset.
func SubSweepSchedule(probe *sector.Set) []BurstSlot {
	var used []sector.ID
	for _, s := range SweepSchedule() {
		if s.Used && probe.Contains(s.Sector) {
			used = append(used, s.Sector)
		}
	}
	slots := make([]BurstSlot, len(used))
	for i, id := range used {
		slots[i] = BurstSlot{CDOWN: uint16(len(used) - 1 - i), Sector: id, Used: true}
	}
	return slots
}

// UsedSectors extracts the transmitted sectors of a burst in transmission
// order.
func UsedSectors(slots []BurstSlot) []sector.ID {
	var out []sector.ID
	for _, s := range slots {
		if s.Used {
			out = append(out, s.Sector)
		}
	}
	return out
}
