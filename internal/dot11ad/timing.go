package dot11ad

import "time"

// Protocol timings measured on the Talon AD7200 (Section 4.1 of the
// paper).
const (
	// SSWFrameTime is the airtime of one sector-sweep frame.
	SSWFrameTime = 18 * time.Microsecond
	// TrainingOverhead covers initialization plus the feedback and
	// acknowledgment frames of one mutual training.
	TrainingOverhead = 49100 * time.Nanosecond
	// BeaconInterval is the DMG beacon period (102.4 ms).
	BeaconInterval = 102400 * time.Microsecond
	// SweepInterval is how often the stock firmware retrains at least
	// (once per second).
	SweepInterval = time.Second
)

// MutualTrainingTime returns the duration of a mutual transmit-sector
// training in which each side probes m sectors:
//
//	T(m) = 2·m·18.0 µs + 49.1 µs
//
// With the full 34-sector sweep this evaluates to the paper's 1.27 ms;
// with the 14 probing sectors of compressive sector selection, 0.55 ms.
func MutualTrainingTime(m int) time.Duration {
	if m < 0 {
		m = 0
	}
	return 2*time.Duration(m)*SSWFrameTime + TrainingOverhead
}

// TrainingSpeedup returns how much faster probing m sectors is than the
// full n-sector sweep.
func TrainingSpeedup(m, n int) float64 {
	return float64(MutualTrainingTime(n)) / float64(MutualTrainingTime(m))
}
