package dot11ad

import (
	"bytes"
	"testing"

	"talon/internal/sector"
)

// seedFrames returns one valid wire frame per type for the fuzz corpora.
func seedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	ra := MACAddr{0x50, 0xc7, 0xbf, 0, 0, 1}
	ta := MACAddr{0x50, 0xc7, 0xbf, 0, 0, 2}
	frames := []*Frame{
		NewSSWFrame(ra, ta, DirectionInitiator, 33, 5, SSWFeedbackField{SectorSelect: 61, SNRReport: 128}),
		{Type: TypeSSWFeedback, RA: ra, TA: ta, Feedback: SSWFeedbackField{SectorSelect: 12, SNRReport: 40, PollRequired: true}},
		{Type: TypeSSWAck, RA: ra, TA: ta, Feedback: SSWFeedbackField{SectorSelect: 63}},
		{Type: TypeDMGBeacon, RA: ra, TA: ta, BeaconIntervalTU: 1024, SSW: SSWField{SectorID: 31, CDOWN: 34}},
	}
	var out [][]byte
	for _, f := range frames {
		raw, err := f.Serialize()
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, raw)
	}
	return out
}

// FuzzDecodeFrame feeds arbitrary bytes into the wire decoder. A decode
// must either fail cleanly or yield a frame that re-encodes and decodes
// back to the same value — the decoder must never panic and never accept
// a frame the encoder cannot reproduce.
func FuzzDecodeFrame(f *testing.F) {
	for _, raw := range seedFrames(f) {
		f.Add(raw)
		// Corrupted variants: truncated, bit-flipped body, broken FCS.
		f.Add(raw[:len(raw)-1])
		flip := append([]byte(nil), raw...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			return
		}
		raw, err := frame.Serialize()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v (%+v)", err, frame)
		}
		again, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v (%+v)", err, frame)
		}
		// Semantic equality, not byte equality: the decoder ignores
		// reserved/flag bits of the frame control that the encoder
		// canonicalizes to zero.
		if *again != *frame {
			t.Fatalf("round trip changed the frame:\n  first  %+v\n  second %+v", frame, again)
		}
	})
}

// FuzzFrameRoundTrip fuzzes the typed fields: every frame the encoder
// accepts must decode back to exactly the fields the frame type carries.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint16(100), uint16(33), uint8(5), false, uint8(0), uint8(7), uint8(200), true, uint16(0))
	f.Add(uint8(4), uint16(0), uint16(511), uint8(63), true, uint8(63), uint8(0), uint8(0), false, uint16(1024))
	f.Add(uint8(2), uint16(65535), uint16(0), uint8(0), false, uint8(40), uint8(3), uint8(255), true, uint16(50))
	f.Fuzz(func(t *testing.T, typ uint8, duration, cdown uint16, sec uint8, direction bool,
		sel, antSel, snr uint8, poll bool, beaconTU uint16) {
		frame := &Frame{
			Type:     FrameType(typ),
			Duration: duration,
			RA:       MACAddr{0xaa, 0xbb, 1, 2, 3, 4},
			TA:       MACAddr{0xcc, 0xdd, 5, 6, 7, 8},
			SSW: SSWField{
				Direction: direction,
				CDOWN:     cdown,
				SectorID:  sector.ID(sec),
			},
			Feedback: SSWFeedbackField{
				SectorSelect:  sector.ID(sel),
				AntennaSelect: antSel,
				SNRReport:     snr,
				PollRequired:  poll,
			},
			BeaconIntervalTU: beaconTU,
		}
		raw, err := frame.Serialize()
		if err != nil {
			// Out-of-range fields are rejected at encode time; nothing
			// to round-trip.
			return
		}
		got, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("encoder output rejected: %v (%+v)", err, frame)
		}
		if got.Type != frame.Type || got.Duration != frame.Duration ||
			got.RA != frame.RA || got.TA != frame.TA {
			t.Fatalf("header changed: %+v -> %+v", frame, got)
		}
		// Only the fields the frame type carries survive the wire.
		switch frame.Type {
		case TypeSSW:
			if got.SSW != frame.SSW || got.Feedback != frame.Feedback {
				t.Fatalf("SSW payload changed: %+v -> %+v", frame, got)
			}
		case TypeSSWFeedback, TypeSSWAck:
			if got.Feedback != frame.Feedback {
				t.Fatalf("feedback changed: %+v -> %+v", frame, got)
			}
		case TypeDMGBeacon:
			if got.SSW != frame.SSW || got.BeaconIntervalTU != frame.BeaconIntervalTU {
				t.Fatalf("beacon payload changed: %+v -> %+v", frame, got)
			}
		}
		// Serialization is canonical: encoding the decoded frame yields
		// identical bytes.
		raw2, err := got.Serialize()
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("encoding not canonical:\n  %x\n  %x", raw, raw2)
		}
	})
}
