package dot11ad

import (
	"testing"
	"time"

	"talon/internal/sector"
)

// table1 reproduces the paper's Table 1 verbatim: sector per CDOWN value,
// 0 meaning "slot unused".
var table1 = map[string]map[uint16]sector.ID{
	"beacon": {
		33: 63,
		31: 1, 30: 2, 29: 3, 28: 4, 27: 5, 26: 6, 25: 7, 24: 8, 23: 9,
		22: 10, 21: 11, 20: 12, 19: 13, 18: 14, 17: 15, 16: 16, 15: 17,
		14: 18, 13: 19, 12: 20, 11: 21, 10: 22, 9: 23, 8: 24, 7: 25,
		6: 26, 5: 27, 4: 28, 3: 29, 2: 30, 1: 31,
	},
	"sweep": {
		34: 1, 33: 2, 32: 3, 31: 4, 30: 5, 29: 6, 28: 7, 27: 8, 26: 9,
		25: 10, 24: 11, 23: 12, 22: 13, 21: 14, 20: 15, 19: 16, 18: 17,
		17: 18, 16: 19, 15: 20, 14: 21, 13: 22, 12: 23, 11: 24, 10: 25,
		9: 26, 8: 27, 7: 28, 6: 29, 5: 30, 4: 31,
		2: 61, 1: 62, 0: 63,
	},
}

func checkSchedule(t *testing.T, name string, slots []BurstSlot) {
	t.Helper()
	want := table1[name]
	if len(slots) != 35 {
		t.Fatalf("%s: %d slots, want 35 (CDOWN 34..0)", name, len(slots))
	}
	for i, s := range slots {
		if s.CDOWN != uint16(34-i) {
			t.Fatalf("%s: slot %d CDOWN %d, want descending from 34", name, i, s.CDOWN)
		}
		wantSector, used := want[s.CDOWN]
		if s.Used != used {
			t.Errorf("%s: CDOWN %d used=%v, want %v", name, s.CDOWN, s.Used, used)
			continue
		}
		if used && s.Sector != wantSector {
			t.Errorf("%s: CDOWN %d sector %v, want %v", name, s.CDOWN, s.Sector, wantSector)
		}
	}
}

func TestBeaconScheduleMatchesTable1(t *testing.T) {
	checkSchedule(t, "beacon", BeaconSchedule())
}

func TestSweepScheduleMatchesTable1(t *testing.T) {
	checkSchedule(t, "sweep", SweepSchedule())
}

func TestScheduleSectorCounts(t *testing.T) {
	if got := len(UsedSectors(BeaconSchedule())); got != 32 {
		t.Errorf("beacon transmits %d sectors, want 32 (63 + 1..31)", got)
	}
	if got := len(UsedSectors(SweepSchedule())); got != 34 {
		t.Errorf("sweep transmits %d sectors, want 34", got)
	}
}

func TestSubSweepSchedule(t *testing.T) {
	probe := sector.NewSet(63, 2, 17, 61)
	slots := SubSweepSchedule(probe)
	if len(slots) != 4 {
		t.Fatalf("sub-sweep slots = %d", len(slots))
	}
	// Stock order: 2, 17, 61, 63; CDOWN renumbered 3..0.
	wantOrder := []sector.ID{2, 17, 61, 63}
	for i, s := range slots {
		if !s.Used {
			t.Fatalf("slot %d unused", i)
		}
		if s.Sector != wantOrder[i] {
			t.Fatalf("slot %d sector %v, want %v", i, s.Sector, wantOrder[i])
		}
		if s.CDOWN != uint16(len(slots)-1-i) {
			t.Fatalf("slot %d CDOWN %d", i, s.CDOWN)
		}
	}
}

func TestSubSweepScheduleIgnoresUnknownSectors(t *testing.T) {
	probe := sector.NewSet(40, 50) // not in the stock sweep
	if slots := SubSweepSchedule(probe); len(slots) != 0 {
		t.Fatalf("sub-sweep with unknown sectors = %d slots", len(slots))
	}
}

func TestMutualTrainingTime(t *testing.T) {
	// Paper: full 34-sector mutual training takes 1.27 ms.
	if got := MutualTrainingTime(34); got != 1273100*time.Nanosecond {
		t.Fatalf("T(34) = %v, want 1.2731 ms", got)
	}
	// Paper: 14 probing sectors take 0.55 ms.
	if got := MutualTrainingTime(14); got != 553100*time.Nanosecond {
		t.Fatalf("T(14) = %v, want 0.5531 ms", got)
	}
	if got := MutualTrainingTime(-3); got != TrainingOverhead {
		t.Fatalf("T(-3) = %v", got)
	}
}

func TestTrainingSpeedup(t *testing.T) {
	// The headline 2.3× speed-up at 14 of 34 probes.
	if got := TrainingSpeedup(14, 34); got < 2.25 || got > 2.35 {
		t.Fatalf("speedup = %v, want ≈2.3", got)
	}
}
