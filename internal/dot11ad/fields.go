// Package dot11ad implements the slice of the IEEE 802.11ad (DMG) MAC this
// project needs: sector-sweep (SSW) and DMG-beacon frames with their SSW
// and SSW-Feedback fields at bit-level fidelity, the stock beacon/sweep
// burst schedules of the Talon AD7200 (Table 1 of the paper), and the
// sector-level-sweep timing model.
//
// Frame codecs follow the gopacket idiom: value types with
// DecodeFromBytes([]byte) error and SerializeTo(*bytes.Buffer)-style
// round-trip methods, validated by a CRC-32 frame check sequence.
package dot11ad

import (
	"fmt"
	"math"

	"talon/internal/sector"
)

// Direction values of the SSW field.
const (
	// DirectionInitiator marks frames of the initiator sector sweep.
	DirectionInitiator = false
	// DirectionResponder marks frames of the responder sector sweep.
	DirectionResponder = true
)

// SSWField is the 3-byte Sector Sweep field (IEEE 802.11-2012 §8.4a.1)
// carried in SSW frames and DMG beacons.
//
// Bit layout (LSB first): Direction (1), CDOWN (9), Sector ID (6),
// DMG Antenna ID (2), RXSS Length (6).
type SSWField struct {
	// Direction is false during the initiator sweep, true during the
	// responder sweep.
	Direction bool
	// CDOWN counts remaining frames in the burst, down to zero.
	CDOWN uint16
	// SectorID is the sector the current frame is transmitted on.
	SectorID sector.ID
	// AntennaID identifies the DMG antenna (0 on the single-array Talon).
	AntennaID uint8
	// RXSSLength advertises the receive-sweep length requirement.
	RXSSLength uint8
}

// MaxCDOWN is the largest value of the 9-bit CDOWN counter.
const MaxCDOWN = 1<<9 - 1

// Encode packs the field into its 3-byte wire form.
func (f SSWField) Encode() ([3]byte, error) {
	var out [3]byte
	if f.CDOWN > MaxCDOWN {
		return out, fmt.Errorf("dot11ad: CDOWN %d exceeds 9 bits", f.CDOWN)
	}
	if !f.SectorID.Valid() {
		return out, fmt.Errorf("dot11ad: sector ID %d exceeds 6 bits", f.SectorID)
	}
	if f.AntennaID > 3 {
		return out, fmt.Errorf("dot11ad: antenna ID %d exceeds 2 bits", f.AntennaID)
	}
	if f.RXSSLength > 63 {
		return out, fmt.Errorf("dot11ad: RXSS length %d exceeds 6 bits", f.RXSSLength)
	}
	var v uint32
	if f.Direction {
		v |= 1
	}
	v |= uint32(f.CDOWN) << 1
	v |= uint32(f.SectorID) << 10
	v |= uint32(f.AntennaID) << 16
	v |= uint32(f.RXSSLength) << 18
	out[0] = byte(v)
	out[1] = byte(v >> 8)
	out[2] = byte(v >> 16)
	return out, nil
}

// DecodeSSWField unpacks a 3-byte wire form.
func DecodeSSWField(b [3]byte) SSWField {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
	return SSWField{
		Direction:  v&1 != 0,
		CDOWN:      uint16(v >> 1 & 0x1ff),
		SectorID:   sector.ID(v >> 10 & 0x3f),
		AntennaID:  uint8(v >> 16 & 0x3),
		RXSSLength: uint8(v >> 18 & 0x3f),
	}
}

// SSWFeedbackField is the 3-byte SSW Feedback field (§8.4a.2) in its
// "not transmitted as part of an ISS" form, the one that carries the
// sector selection the paper's firmware patch overwrites.
//
// Bit layout (LSB first): Sector Select (6), DMG Antenna Select (2),
// SNR Report (8), Poll Required (1), reserved (7).
type SSWFeedbackField struct {
	// SectorSelect is the sector the peer should transmit on.
	SectorSelect sector.ID
	// AntennaSelect is the corresponding DMG antenna.
	AntennaSelect uint8
	// SNRReport encodes the SNR measured on the selected sector; see
	// EncodeSNR.
	SNRReport uint8
	// PollRequired requests a poll from the peer.
	PollRequired bool
}

// Encode packs the field into its 3-byte wire form.
func (f SSWFeedbackField) Encode() ([3]byte, error) {
	var out [3]byte
	if !f.SectorSelect.Valid() {
		return out, fmt.Errorf("dot11ad: sector select %d exceeds 6 bits", f.SectorSelect)
	}
	if f.AntennaSelect > 3 {
		return out, fmt.Errorf("dot11ad: antenna select %d exceeds 2 bits", f.AntennaSelect)
	}
	var v uint32
	v |= uint32(f.SectorSelect)
	v |= uint32(f.AntennaSelect) << 6
	v |= uint32(f.SNRReport) << 8
	if f.PollRequired {
		v |= 1 << 16
	}
	out[0] = byte(v)
	out[1] = byte(v >> 8)
	out[2] = byte(v >> 16)
	return out, nil
}

// DecodeSSWFeedbackField unpacks a 3-byte wire form.
func DecodeSSWFeedbackField(b [3]byte) SSWFeedbackField {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
	return SSWFeedbackField{
		SectorSelect:  sector.ID(v & 0x3f),
		AntennaSelect: uint8(v >> 6 & 0x3),
		SNRReport:     uint8(v >> 8 & 0xff),
		PollRequired:  v>>16&1 != 0,
	}
}

// The SNR Report field expresses SNR in 0.25 dB units with value 0 mapping
// to -8 dB (§8.4a.2), i.e. it covers -8 dB … +55.75 dB.
const (
	snrReportOffsetDB = -8.0
	snrReportStepDB   = 0.25
)

// EncodeSNR converts an SNR in dB to the 8-bit SNR Report encoding,
// clamping to the representable range.
func EncodeSNR(db float64) uint8 {
	if math.IsNaN(db) {
		return 0
	}
	v := math.Round((db - snrReportOffsetDB) / snrReportStepDB)
	switch {
	case v < 0:
		return 0
	case v > 255:
		return 255
	}
	return uint8(v)
}

// DecodeSNR converts an SNR Report value back to dB.
func DecodeSNR(v uint8) float64 {
	return snrReportOffsetDB + float64(v)*snrReportStepDB
}
