package dot11ad

import (
	"math"
	"testing"
	"testing/quick"

	"talon/internal/sector"
)

func TestSSWFieldRoundTrip(t *testing.T) {
	cases := []SSWField{
		{},
		{Direction: true, CDOWN: 34, SectorID: 17, AntennaID: 2, RXSSLength: 5},
		{CDOWN: MaxCDOWN, SectorID: 63, AntennaID: 3, RXSSLength: 63},
		{Direction: true, CDOWN: 1, SectorID: 61},
	}
	for _, f := range cases {
		b, err := f.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		if got := DecodeSSWField(b); got != f {
			t.Errorf("round trip %+v -> %+v", f, got)
		}
	}
}

func TestSSWFieldRoundTripProperty(t *testing.T) {
	f := func(dir bool, cdown uint16, sec, ant, rxss uint8) bool {
		in := SSWField{
			Direction:  dir,
			CDOWN:      cdown % (MaxCDOWN + 1),
			SectorID:   sector.ID(sec % 64),
			AntennaID:  ant % 4,
			RXSSLength: rxss % 64,
		}
		b, err := in.Encode()
		if err != nil {
			return false
		}
		return DecodeSSWField(b) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSSWFieldEncodeErrors(t *testing.T) {
	for _, f := range []SSWField{
		{CDOWN: MaxCDOWN + 1},
		{SectorID: 64},
		{AntennaID: 4},
		{RXSSLength: 64},
	} {
		if _, err := f.Encode(); err == nil {
			t.Errorf("%+v encoded without error", f)
		}
	}
}

func TestSSWFeedbackFieldRoundTrip(t *testing.T) {
	cases := []SSWFeedbackField{
		{},
		{SectorSelect: 14, AntennaSelect: 1, SNRReport: 200, PollRequired: true},
		{SectorSelect: 63, AntennaSelect: 3, SNRReport: 255},
	}
	for _, f := range cases {
		b, err := f.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		if got := DecodeSSWFeedbackField(b); got != f {
			t.Errorf("round trip %+v -> %+v", f, got)
		}
	}
}

func TestSSWFeedbackFieldRoundTripProperty(t *testing.T) {
	f := func(sel, ant, snr uint8, poll bool) bool {
		in := SSWFeedbackField{
			SectorSelect:  sector.ID(sel % 64),
			AntennaSelect: ant % 4,
			SNRReport:     snr,
			PollRequired:  poll,
		}
		b, err := in.Encode()
		if err != nil {
			return false
		}
		return DecodeSSWFeedbackField(b) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSSWFeedbackEncodeErrors(t *testing.T) {
	if _, err := (SSWFeedbackField{SectorSelect: 64}).Encode(); err == nil {
		t.Error("sector select 64 encoded")
	}
	if _, err := (SSWFeedbackField{AntennaSelect: 4}).Encode(); err == nil {
		t.Error("antenna select 4 encoded")
	}
}

func TestSNREncoding(t *testing.T) {
	cases := []struct {
		db   float64
		want uint8
	}{
		{-8, 0}, {-7.75, 1}, {0, 32}, {12, 80}, {55.75, 255},
		{-20, 0}, {100, 255},
	}
	for _, c := range cases {
		if got := EncodeSNR(c.db); got != c.want {
			t.Errorf("EncodeSNR(%v) = %d, want %d", c.db, got, c.want)
		}
	}
	if got := EncodeSNR(math.NaN()); got != 0 {
		t.Errorf("EncodeSNR(NaN) = %d", got)
	}
}

func TestSNRRoundTripProperty(t *testing.T) {
	// Any representable quarter-dB SNR must round trip exactly.
	f := func(v uint8) bool {
		return EncodeSNR(DecodeSNR(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSNRQuantizationError(t *testing.T) {
	for db := -8.0; db <= 55.0; db += 0.1 {
		rec := DecodeSNR(EncodeSNR(db))
		if math.Abs(rec-db) > 0.125+1e-9 {
			t.Fatalf("quantization error %v at %v dB", rec-db, db)
		}
	}
}
