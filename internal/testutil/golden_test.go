package testutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeTB captures failures so golden's behavior can be asserted. Fatalf
// panics with a sentinel (mirroring the control-flow stop of a real
// Fatalf) that the helpers below recover.
type fakeTB struct {
	testing.TB
	errors []string
	fatals []string
}

type fatalSentinel struct{}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, format)
}

func (f *fakeTB) Fatal(args ...any) {
	f.fatals = append(f.fatals, "fatal")
	panic(fatalSentinel{})
}

func (f *fakeTB) Fatalf(format string, args ...any) {
	f.fatals = append(f.fatals, format)
	panic(fatalSentinel{})
}

func runGolden(tb *fakeTB, path string, got []byte, rewrite bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fatalSentinel); !ok {
				panic(r)
			}
		}
	}()
	golden(tb, path, got, rewrite)
}

func TestGoldenMatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.golden")
	if err := os.WriteFile(path, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb := &fakeTB{}
	runGolden(tb, path, []byte("hello\n"), false)
	if len(tb.errors)+len(tb.fatals) != 0 {
		t.Errorf("matching content failed: errors=%v fatals=%v", tb.errors, tb.fatals)
	}
}

func TestGoldenMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.golden")
	if err := os.WriteFile(path, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb := &fakeTB{}
	runGolden(tb, path, []byte("changed\n"), false)
	if len(tb.errors) != 1 || !strings.Contains(tb.errors[0], "differs from golden") {
		t.Errorf("mismatch not reported: errors=%v", tb.errors)
	}
}

func TestGoldenMissingFile(t *testing.T) {
	tb := &fakeTB{}
	runGolden(tb, filepath.Join(t.TempDir(), "absent.golden"), []byte("x"), false)
	if len(tb.fatals) != 1 {
		t.Errorf("missing golden file not fatal: fatals=%v", tb.fatals)
	}
}

func TestGoldenUpdate(t *testing.T) {
	// -update writes the file (creating directories) and then passes.
	path := filepath.Join(t.TempDir(), "sub", "dir", "out.golden")
	tb := &fakeTB{}
	runGolden(tb, path, []byte("fresh\n"), true)
	if len(tb.errors)+len(tb.fatals) != 0 {
		t.Fatalf("update run failed: errors=%v fatals=%v", tb.errors, tb.fatals)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh\n" {
		t.Errorf("golden file = %q, want %q", got, "fresh\n")
	}
}
