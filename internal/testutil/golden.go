// Package testutil holds helpers shared by the repo's test suites.
package testutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update is the single definition of the -update flag; the golden-file
// tests used to each register their own copy. One definition per test
// binary is also what the flag package enforces.
var update = flag.Bool("update", false, "rewrite golden files")

// Golden compares got byte-for-byte against the golden file at path.
// With -update, the file (and its directory) is rewritten from got
// first, so the comparison then passes and the diff shows up in review.
func Golden(tb testing.TB, path string, got []byte) {
	tb.Helper()
	golden(tb, path, got, *update)
}

func golden(tb testing.TB, path string, got []byte, rewrite bool) {
	tb.Helper()
	if rewrite {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		tb.Fatalf("%v (run with -update to regenerate)", err)
		return
	}
	if !bytes.Equal(got, want) {
		tb.Errorf("%s differs from golden (run with -update if intended):\ngot:\n%swant:\n%s", filepath.Base(path), got, want)
	}
}
