package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"talon/internal/testutil"
)

// TestSnapshotJSONGolden pins the metrics-JSON schema: a fresh registry
// with one metric of each kind, deterministic values, compared
// byte-for-byte (after indentation) against testdata/snapshot.golden.
// The snapshot format is consumed by evalrunner -metrics and the /metrics
// debug endpoint; shape changes must surface as a golden diff.
func TestSnapshotJSONGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_frames_total", "frames processed")
	c.Add(42)
	g := r.NewGauge("demo_ring_occupancy", "ring slots in use")
	g.Set(17)
	fg := r.NewFloatGauge("demo_utilization", "busy fraction")
	fg.Set(0.75)
	h := r.NewHistogram("demo_train_seconds", "training latency", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.004, 0.04, 0.4, 2} {
		h.Observe(v)
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')

	testutil.Golden(t, filepath.Join("testdata", "snapshot.golden"), buf.Bytes())
}
