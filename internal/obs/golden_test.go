package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSnapshotJSONGolden pins the metrics-JSON schema: a fresh registry
// with one metric of each kind, deterministic values, compared
// byte-for-byte (after indentation) against testdata/snapshot.golden.
// The snapshot format is consumed by evalrunner -metrics and the /metrics
// debug endpoint; shape changes must surface as a golden diff.
func TestSnapshotJSONGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_frames_total", "frames processed")
	c.Add(42)
	g := r.NewGauge("demo_ring_occupancy", "ring slots in use")
	g.Set(17)
	fg := r.NewFloatGauge("demo_utilization", "busy fraction")
	fg.Set(0.75)
	h := r.NewHistogram("demo_train_seconds", "training latency", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.004, 0.04, 0.4, 2} {
		h.Observe(v)
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')

	golden := filepath.Join("testdata", "snapshot.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot JSON changed (run with -update if intended):\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}
}
