package obs

import "testing"

// TestNopTracer checks the no-op tracer allocates nothing per span.
func TestNopTracer(t *testing.T) {
	tr := Nop()
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan("x", L("k", "v"))
		sp.End()
	})
	if allocs > 0 {
		t.Errorf("nop tracer allocates %v per span, want 0", allocs)
	}
}

// TestRecorderOrdering checks the recorder preserves begin/end order and
// labels.
func TestRecorderOrdering(t *testing.T) {
	rec := &Recorder{}
	outer := rec.StartSpan("outer", L("mode", "test"))
	inner := rec.StartSpan("inner")
	inner.End()
	outer.End()

	events := rec.Events()
	want := []struct{ name, phase string }{
		{"outer", "begin"},
		{"inner", "begin"},
		{"inner", "end"},
		{"outer", "end"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, w := range want {
		if events[i].Name != w.name || events[i].Phase != w.phase {
			t.Errorf("event %d: got %s/%s, want %s/%s", i, events[i].Name, events[i].Phase, w.name, w.phase)
		}
	}
	if len(events[0].Labels) != 1 || events[0].Labels[0] != (Label{"mode", "test"}) {
		t.Errorf("outer begin labels: got %+v", events[0].Labels)
	}
}
