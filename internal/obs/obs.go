// Package obs is the observability substrate of the CSS stack: a
// dependency-free, race-safe metrics registry (atomic counters, gauges
// and fixed-bucket latency histograms), a span-based Tracer hook that
// defaults to a no-op, and pprof/debug wiring for the CLIs.
//
// Hot paths register their metrics once at package init against the
// process-wide Default registry and update them with single atomic
// operations, so instrumentation stays cheap enough for per-estimate and
// per-frame call sites. A Snapshot of the registry marshals to
// deterministic JSON (names sorted), is published through expvar, and is
// served by the debug HTTP endpoint next to /debug/pprof.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// metric is the common behaviour of every registered instrument.
type metric interface {
	kind() string
	snapshot(help string) any
}

// Registry holds named metrics. All methods are safe for concurrent use;
// updates on the returned instruments are lock-free.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric), help: make(map[string]string)}
}

// defaultRegistry is the process-wide registry the package-level
// constructors register against.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register get-or-creates a named metric. Re-registering a name with a
// different kind is a programming error and panics.
func (r *Registry) register(name string, m metric, help string) metric {
	if name == "" {
		panic("obs: metric without a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.metrics[name]; ok {
		if existing.kind() != m.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, m.kind(), existing.kind()))
		}
		return existing
	}
	r.metrics[name] = m
	r.help[name] = help
	return m
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are a programming error but tolerated).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }

func (c *Counter) snapshot(help string) any {
	return scalarSnapshot{Type: "counter", Help: help, Value: float64(c.Value())}
}

// Gauge is an atomic instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) kind() string { return "gauge" }

func (g *Gauge) snapshot(help string) any {
	return scalarSnapshot{Type: "gauge", Help: help, Value: float64(g.Value())}
}

// FloatGauge is an atomic instantaneous float value (ratios,
// utilizations).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) kind() string { return "gauge_float" }

func (g *FloatGauge) snapshot(help string) any {
	return scalarSnapshot{Type: "gauge", Help: help, Value: g.Value()}
}

// Histogram is a fixed-bucket distribution: observations land in the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket. Observe is a bounded number of atomic operations, so
// it is safe on hot paths.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	maxBits atomic.Uint64 // float64 bits, CAS-maximum
}

// LatencyBuckets is the default bucket ladder for wall-time histograms:
// 1 µs to 30 s, roughly trebling, in seconds.
var LatencyBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
	1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
	1, 3, 10, 30,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the final slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the wall time elapsed since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

func (h *Histogram) kind() string { return "histogram" }

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound ("+Inf" for the overflow
	// bucket), formatted for stable JSON.
	LE string `json:"le"`
	// Count is the cumulative number of observations <= LE.
	Count int64 `json:"count"`
}

// HistogramSnapshot is the point-in-time state of a histogram.
type HistogramSnapshot struct {
	Type    string           `json:"type"`
	Help    string           `json:"help,omitempty"`
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Max     float64          `json:"max"`
	Mean    float64          `json:"mean"`
	Buckets []BucketSnapshot `json:"buckets"`
}

func (h *Histogram) snapshot(help string) any {
	s := HistogramSnapshot{Type: "histogram", Help: help, Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
	}
	return s
}

// scalarSnapshot is the snapshot form of counters and gauges.
type scalarSnapshot struct {
	Type  string  `json:"type"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// NewCounter registers (or returns the existing) counter under name.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, &Counter{}, help).(*Counter)
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, &Gauge{}, help).(*Gauge)
}

// NewFloatGauge registers (or returns the existing) float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	return r.register(name, &FloatGauge{}, help).(*FloatGauge)
}

// NewHistogram registers (or returns the existing) histogram with the
// given ascending bucket upper bounds (nil picks LatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, newHistogram(bounds), help).(*Histogram)
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewFloatGauge registers a float gauge on the Default registry.
func NewFloatGauge(name, help string) *FloatGauge { return defaultRegistry.NewFloatGauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// Snapshot is a point-in-time copy of every metric, keyed by name.
type Snapshot map[string]any

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(Snapshot, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = m.snapshot(r.help[name])
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MarshalJSON renders the snapshot as deterministic JSON (encoding/json
// sorts map keys).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// expvarOnce guards against double expvar publication (expvar.Publish
// panics on duplicate names).
var expvarOnce sync.Once

// PublishExpvar exposes the Default registry as the expvar variable
// "talon_metrics", visible on /debug/vars of any expvar-serving mux.
// Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("talon_metrics", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}
