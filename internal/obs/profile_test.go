package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestDebugHandlerMetrics checks /metrics serves the registry as JSON.
func TestDebugHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "").Add(9)
	srv := httptest.NewServer(r.DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var decoded map[string]struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["served_total"].Value != 9 {
		t.Errorf("served_total: got %v, want 9", decoded["served_total"].Value)
	}
}

// TestDebugHandlerPprof checks the pprof index is wired up.
func TestDebugHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(NewRegistry().DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

// TestDumpFile checks the snapshot file dump round-trips as JSON.
func TestDumpFile(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("depth", "").Set(4)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if _, ok := decoded["depth"]; !ok {
		t.Error("depth missing from dump")
	}
}

// TestStartCPUProfile exercises the CPU-profile helper end to end.
func TestStartCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("profile not written: %v", err)
	}
}
