package obs

import (
	"encoding/json"
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one counter, one gauge and one histogram
// from GOMAXPROCS goroutines; with -race this is the registry's
// race-freedom proof, and the totals check its atomicity.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	fg := r.NewFloatGauge("fg", "")
	h := r.NewHistogram("h", "", []float64{0.5, 1, 2})

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				fg.Set(float64(i) / perWorker)
				h.Observe(float64(i%4) * 0.75)
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()

	want := int64(workers * perWorker)
	if got := c.Value(); got != want {
		t.Errorf("counter: got %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count: got %d, want %d", got, want)
	}
	// Each worker observes 0, 0.75, 1.5, 2.25 cyclically.
	wantSum := float64(workers) * (perWorker / 4) * (0 + 0.75 + 1.5 + 2.25)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum: got %v, want %v", got, wantSum)
	}
	if got := h.Max(); got != 2.25 {
		t.Errorf("histogram max: got %v, want 2.25", got)
	}
}

// TestHistogramBuckets checks bucket placement and cumulative snapshot
// counts, including the +Inf overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 99, 1000} {
		h.Observe(v)
	}
	snap := h.snapshot("").(HistogramSnapshot)
	if snap.Count != 6 {
		t.Fatalf("count: got %d, want 6", snap.Count)
	}
	wantCum := []int64{2, 4, 5, 6} // <=1: {0.5, 1}; <=10: +{2, 10}; <=100: +{99}; +Inf: +{1000}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("buckets: got %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le %s): got %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if snap.Buckets[len(snap.Buckets)-1].LE != "+Inf" {
		t.Errorf("last bucket le: got %q, want +Inf", snap.Buckets[len(snap.Buckets)-1].LE)
	}
}

// TestSnapshotJSON checks the JSON rendering is valid, carries every
// metric, and is deterministic across marshals.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("alpha_total", "first").Add(3)
	r.NewGauge("beta", "second").Set(-7)
	r.NewHistogram("gamma_seconds", "third", nil).Observe(0.002)

	b1, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("marshal is not deterministic")
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, name := range []string{"alpha_total", "beta", "gamma_seconds"} {
		if _, ok := decoded[name]; !ok {
			t.Errorf("metric %s missing from JSON", name)
		}
	}
	var alpha struct {
		Type  string  `json:"type"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(decoded["alpha_total"], &alpha); err != nil {
		t.Fatal(err)
	}
	if alpha.Type != "counter" || alpha.Value != 3 {
		t.Errorf("alpha_total: got %+v", alpha)
	}
}

// TestGetOrCreate checks re-registration returns the same instrument and
// kind mismatches panic.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x", "")
	b := r.NewCounter("x", "")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.NewGauge("x", "")
}

// TestNames checks the sorted name listing.
func TestNames(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b", "")
	r.NewCounter("a", "")
	r.NewGauge("c", "")
	got := r.Names()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("names: got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names: got %v, want %v", got, want)
		}
	}
}
