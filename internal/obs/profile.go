package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	rpprof "runtime/pprof"
)

// indentJSON pretty-prints compact JSON.
func indentJSON(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, b, "", "  "); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJSON writes an indented JSON snapshot of the registry to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	// Re-indent for human consumption; MarshalJSON stays compact for
	// machine readers.
	out, err := indentJSON(b)
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// DumpFile writes the registry snapshot to path; "-" means stdout.
func (r *Registry) DumpFile(path string) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DebugHandler returns the debug mux: /metrics (registry JSON),
// /debug/vars (expvar) and /debug/pprof/* (profiles).
func (r *Registry) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug HTTP server for the Default registry on
// addr (e.g. "localhost:6060"; a ":0" port picks a free one) and returns
// the bound address. The server runs until the process exits. expvar
// publication is enabled as a side effect.
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: defaultRegistry.DebugHandler()}
	//lint:allow goroutinescope -- process-lifetime debug server, fire-and-forget by design
	go srv.Serve(ln) //nolint:errcheck // best-effort background server
	return ln.Addr().String(), nil
}

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		rpprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// HookCLI wires the standard observability flags of the repo's CLIs
// (-metrics, -debug, -cpuprofile) against the Default registry: it
// starts the debug server and the CPU profile immediately and returns a
// cleanup that stops the profile and dumps the metrics snapshot. Empty
// strings disable the corresponding feature; the returned cleanup is
// always non-nil and safe to defer.
func HookCLI(metricsPath, debugAddr, profilePath string) (cleanup func() error, err error) {
	var stopProfile func() error
	if debugAddr != "" {
		bound, err := ServeDebug(debugAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: debug server on http://%s (/metrics, /debug/pprof)\n", bound)
	}
	if profilePath != "" {
		stopProfile, err = StartCPUProfile(profilePath)
		if err != nil {
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if stopProfile != nil {
			firstErr = stopProfile()
		}
		if metricsPath != "" {
			if err := defaultRegistry.DumpFile(metricsPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// WriteHeapProfile dumps the current heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
