package obs

import "sync"

// Label is one key/value annotation on a span.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Span is one in-flight traced operation. End must be called exactly
// once; implementations must tolerate End on a zero-duration span.
type Span interface {
	End()
}

// Tracer receives span begin/end hooks from instrumented pipelines
// (Trainer.Run, campaign drivers). Implementations must be safe for
// concurrent use. The default is Nop(), which costs one interface call
// per span and allocates nothing.
type Tracer interface {
	// StartSpan begins a span; the operation ends when End is called on
	// the returned Span.
	StartSpan(name string, labels ...Label) Span
}

type nopTracer struct{}

type nopSpan struct{}

func (nopSpan) End() {}

func (nopTracer) StartSpan(string, ...Label) Span { return nopSpan{} }

// Nop returns the no-op tracer: every span is discarded.
func Nop() Tracer { return nopTracer{} }

// SpanEvent is one recorded tracer callback (for tests and debugging).
type SpanEvent struct {
	// Name is the span name; Phase is "begin" or "end".
	Name, Phase string
	// Labels are the begin labels (empty on end events).
	Labels []Label
}

// Recorder is a Tracer that appends every begin/end to an event list —
// the reference implementation used by the ordering tests and handy for
// debugging pipelines interactively.
type Recorder struct {
	mu     sync.Mutex
	events []SpanEvent
}

type recorderSpan struct {
	r    *Recorder
	name string
}

// StartSpan implements Tracer.
func (r *Recorder) StartSpan(name string, labels ...Label) Span {
	r.mu.Lock()
	r.events = append(r.events, SpanEvent{Name: name, Phase: "begin", Labels: labels})
	r.mu.Unlock()
	return recorderSpan{r: r, name: name}
}

func (s recorderSpan) End() {
	s.r.mu.Lock()
	s.r.events = append(s.r.events, SpanEvent{Name: s.name, Phase: "end"})
	s.r.mu.Unlock()
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanEvent(nil), r.events...)
}
