// Package tracestore is the columnar binary trace store behind the
// out-of-core campaign pipeline: compact fixed-width little-endian
// columns, compressed block by block on write, streamed back block by
// block on read, sharded across seeded .bin files so million-trial
// studies replay with bounded memory (ROADMAP item 2; the shard/streaming
// architecture follows the GO-BACKTEST day-file design).
//
// A shard file is a fixed-size header followed by zero or more blocks:
//
//	file   := header meta block*
//	header := magic[8] version(u16) kind(u16) metaLen(u32)
//	          seedLo(u64) seedHi(u64) records(u64) blocks(u32) crc(u32)
//	meta   := metaLen bytes of codec schema (e.g. sector list, probe count)
//	block  := nrecs(u32) rawLen(u32) compLen(u32) payloadCRC(u32)
//	          payload[compLen]
//
// The payload is the zlib-compressed column-major concatenation of the
// codec's fixed-width columns for nrecs records. The header is written
// provisionally at open (records = blocks = crc = 0) and finalized on
// Close with the true counts, the covered seed range [seedLo, seedHi)
// and a CRC32 over header fields and meta — so a reader can tell a
// finished shard from one left behind by a crash.
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Magic identifies tracestore shard files.
var Magic = [8]byte{'T', 'A', 'L', 'O', 'N', 'T', 'S', 1}

// Version is the current format version. Readers reject other versions.
const Version uint16 = 1

// headerSize is the fixed header length before the meta bytes.
const headerSize = 8 + 2 + 2 + 4 + 8 + 8 + 8 + 4 + 4

// blockHeaderSize frames each compressed block.
const blockHeaderSize = 4 + 4 + 4 + 4

// maxBlockRecords bounds nrecs so a corrupt frame cannot provoke a huge
// allocation; maxBlockBytes does the same for the raw payload.
const (
	maxBlockRecords = 1 << 22
	maxBlockBytes   = 1 << 30
)

// Typed sentinel errors of the store.
var (
	// ErrBadMagic reports a file that is not a tracestore shard.
	ErrBadMagic = errors.New("tracestore: bad magic")
	// ErrVersion reports an unsupported format version.
	ErrVersion = errors.New("tracestore: unsupported format version")
	// ErrKindMismatch reports a shard written by a different codec.
	ErrKindMismatch = errors.New("tracestore: record kind mismatch")
	// ErrCorrupt reports structural damage: CRC mismatch, impossible
	// frame sizes, or a header never finalized by Close.
	ErrCorrupt = errors.New("tracestore: corrupt shard")
	// ErrSeedOrder reports Append calls with a decreasing seed; shards
	// must cover contiguous non-decreasing seed ranges for splits.
	ErrSeedOrder = errors.New("tracestore: seeds must be non-decreasing")
	// ErrSplitStraddle reports a shard whose seed range crosses the
	// requested in-sample/out-of-sample boundary.
	ErrSplitStraddle = errors.New("tracestore: shard straddles split boundary")
	// ErrSplitFolds reports a k-fold split with fewer shards than
	// folds; shards are the atomic unit, so each fold needs at least
	// one.
	ErrSplitFolds = errors.New("tracestore: not enough shards for k-fold split")
)

// Header describes one finalized shard file.
type Header struct {
	// Version and Kind echo the file's format version and codec kind.
	Version uint16
	Kind    uint16
	// SeedLo and SeedHi delimit the half-open seed range [SeedLo,
	// SeedHi) the shard's records cover.
	SeedLo, SeedHi uint64
	// Records and Blocks count the shard's contents.
	Records uint64
	Blocks  uint32
	// Meta carries the codec's schema bytes.
	Meta []byte
}

// headerCRC hashes the header fields and meta the same way on write and
// verify. The crc field itself is hashed as zero.
func headerCRC(buf []byte, meta []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(buf[:headerSize-4])
	h.Write([]byte{0, 0, 0, 0})
	h.Write(meta)
	return h.Sum32()
}

// encodeHeader serializes h (with its CRC) into a fresh buffer, meta
// excluded.
func encodeHeader(h Header) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], Magic[:])
	binary.LittleEndian.PutUint16(buf[8:], h.Version)
	binary.LittleEndian.PutUint16(buf[10:], h.Kind)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(h.Meta)))
	binary.LittleEndian.PutUint64(buf[16:], h.SeedLo)
	binary.LittleEndian.PutUint64(buf[24:], h.SeedHi)
	binary.LittleEndian.PutUint64(buf[32:], h.Records)
	binary.LittleEndian.PutUint32(buf[40:], h.Blocks)
	binary.LittleEndian.PutUint32(buf[44:], headerCRC(buf, h.Meta))
	return buf
}

// decodeHeader parses and verifies the fixed header. The caller supplies
// the meta bytes once it has read them (metaFromFile), so decoding is a
// two-step: sizes first, CRC check after.
func decodeHeader(buf []byte) (Header, uint32, error) {
	var h Header
	if len(buf) < headerSize {
		return h, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	if [8]byte(buf[0:8]) != Magic {
		return h, 0, ErrBadMagic
	}
	h.Version = binary.LittleEndian.Uint16(buf[8:])
	if h.Version != Version {
		return h, 0, fmt.Errorf("%w: %d", ErrVersion, h.Version)
	}
	h.Kind = binary.LittleEndian.Uint16(buf[10:])
	metaLen := binary.LittleEndian.Uint32(buf[12:])
	h.SeedLo = binary.LittleEndian.Uint64(buf[16:])
	h.SeedHi = binary.LittleEndian.Uint64(buf[24:])
	h.Records = binary.LittleEndian.Uint64(buf[32:])
	h.Blocks = binary.LittleEndian.Uint32(buf[40:])
	crc := binary.LittleEndian.Uint32(buf[44:])
	if metaLen > maxBlockBytes {
		return h, 0, fmt.Errorf("%w: meta length %d", ErrCorrupt, metaLen)
	}
	h.Meta = make([]byte, metaLen)
	return h, crc, nil
}

// readHeaderFrom reads and fully verifies a header (including meta and
// CRC) from r.
func readHeaderFrom(r io.Reader) (Header, error) {
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Header{}, fmt.Errorf("%w: truncated header: %w", ErrCorrupt, err)
		}
		return Header{}, err
	}
	h, crc, err := decodeHeader(buf)
	if err != nil {
		return Header{}, err
	}
	if _, err := io.ReadFull(r, h.Meta); err != nil {
		return Header{}, fmt.Errorf("%w: truncated meta: %w", ErrCorrupt, err)
	}
	if crc == 0 && h.Records == 0 && h.Blocks == 0 {
		return Header{}, fmt.Errorf("%w: shard was never finalized (crashed writer?)", ErrCorrupt)
	}
	if want := headerCRC(buf, h.Meta); crc != want {
		return Header{}, fmt.Errorf("%w: header CRC %08x != %08x", ErrCorrupt, crc, want)
	}
	return h, nil
}

// ReadHeader opens path just long enough to read and verify its header.
func ReadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	h, err := readHeaderFrom(f)
	if err != nil {
		return Header{}, fmt.Errorf("%s: %w", path, err)
	}
	return h, nil
}

// Shard pairs a shard file path with its verified header.
type Shard struct {
	Path   string
	Header Header
}

// Discover lists the finalized shards named "<base>-NNNNN.bin" in dir,
// sorted by shard index (lexicographic on the zero-padded name). Every
// matching file's header is read and verified; a corrupt or foreign file
// in the directory is an error, not a silent skip.
func Discover(dir, base string) ([]Shard, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var shards []Shard
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, base+"-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		path := filepath.Join(dir, name)
		h, err := ReadHeader(path)
		if err != nil {
			return nil, err
		}
		shards = append(shards, Shard{Path: path, Header: h})
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Path < shards[j].Path })
	if len(shards) == 0 {
		return nil, fmt.Errorf("tracestore: no %s-*.bin shards in %s", base, dir)
	}
	return shards, nil
}

// Codec defines one record schema: how a slice of records becomes
// fixed-width little-endian columns and back. Implementations must be
// safe for concurrent DecodeBlock calls (the replayer decodes shards in
// parallel with one shared codec).
type Codec[T any] interface {
	// Kind tags the schema in shard headers.
	Kind() uint16
	// Meta returns the schema bytes stored per file (dimensions,
	// sector lists, ...). CheckMeta validates a file's meta against
	// this codec and returns ErrKindMismatch-wrapped errors.
	Meta() []byte
	CheckMeta(meta []byte) error
	// AppendBlock appends recs column-major onto buf and returns it.
	AppendBlock(buf []byte, recs []T) []byte
	// DecodeBlock decodes n records from the column-major raw bytes,
	// reusing dst's capacity (including per-record sub-slices).
	DecodeBlock(raw []byte, n int, dst []T) ([]T, error)
}
