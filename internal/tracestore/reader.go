package tracestore

import (
	"bufio"
	"compress/zlib"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Reader streams one shard file block by block. All buffers — the
// compressed frame, the raw column block and the decoded record slice —
// are owned by the Reader and reused across blocks, so memory stays
// bounded by one block regardless of shard size. Not safe for
// concurrent use; the replayer gives each worker its own Reader.
//
// Two read paths share the Reader: the default buffered path (bufio
// over the file) and an optional memory-mapped path (OpenReaderMapped)
// that serves block payloads zero-copy out of the page cache. The
// mapped path is a per-file best effort — any mmap failure, including
// an unsupported platform, falls back to the buffered path for that
// file and the decode behaviour is bit-identical either way.
type Reader[T any] struct {
	codec Codec[T]
	f     *os.File
	br    *bufio.Reader
	hdr   Header

	// wantMap records the caller's OpenReaderMapped preference so
	// Reopen re-attempts the mapping per file; data/off/unmap are live
	// only while the current file is actually mapped.
	wantMap bool
	data    []byte
	off     int
	unmap   func() error

	zr        io.ReadCloser // zlib stream, reused via zlib.Resetter
	frame     [blockHeaderSize]byte
	comp      []byte
	raw       []byte
	recs      []T
	blocksGot uint32
	recsGot   uint64
}

// OpenReader opens one shard and verifies its header against the codec.
func OpenReader[T any](codec Codec[T], path string) (*Reader[T], error) {
	return openReader(codec, path, false)
}

// OpenReaderMapped opens one shard for memory-mapped reading: block
// payloads are sliced straight out of the mapping instead of being
// copied through a read buffer. When the file cannot be mapped (empty
// file, exotic filesystem, non-linux platform) the Reader silently
// falls back to the buffered path — the records delivered are
// bit-identical on both paths.
func OpenReaderMapped[T any](codec Codec[T], path string) (*Reader[T], error) {
	return openReader(codec, path, true)
}

func openReader[T any](codec Codec[T], path string, mapped bool) (*Reader[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader[T]{codec: codec, f: f, wantMap: mapped}
	if err := r.attach(path); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// attach maps or buffers r.f (honouring wantMap with per-file
// fallback), then reads and verifies the header against the codec.
func (r *Reader[T]) attach(path string) error {
	r.data, r.off, r.unmap = nil, 0, nil
	if r.wantMap {
		if data, unmap, err := mapFile(r.f); err == nil {
			r.data, r.unmap = data, unmap
			metMmapOpens.Inc()
		} else {
			metMmapFallbacks.Inc()
		}
	}
	var h Header
	var err error
	if r.data != nil {
		src := bytesReader{b: r.data}
		h, err = readHeaderFrom(&src)
		r.off = src.i
	} else {
		if r.br == nil {
			r.br = bufio.NewReaderSize(r.f, 1<<16)
		} else {
			r.br.Reset(r.f)
		}
		h, err = readHeaderFrom(r.br)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if h.Kind != r.codec.Kind() {
		return fmt.Errorf("%s: %w: file kind %d, codec kind %d", path, ErrKindMismatch, h.Kind, r.codec.Kind())
	}
	if err := r.codec.CheckMeta(h.Meta); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	r.hdr = h
	r.blocksGot, r.recsGot = 0, 0
	return nil
}

// Header returns the shard's verified header.
func (r *Reader[T]) Header() Header { return r.hdr }

// Next returns the next block of decoded records, valid until the
// following Next call (the slice and its record sub-slices are reused).
// It returns io.EOF after the last block.
func (r *Reader[T]) Next() ([]T, error) {
	if r.blocksGot == r.hdr.Blocks {
		if r.recsGot != r.hdr.Records {
			return nil, fmt.Errorf("%w: header promises %d records, blocks held %d", ErrCorrupt, r.hdr.Records, r.recsGot)
		}
		// The framed blocks are exhausted; anything further is junk.
		if r.data != nil {
			if r.off != len(r.data) {
				return nil, fmt.Errorf("%w: trailing bytes after final block", ErrCorrupt)
			}
			return nil, io.EOF
		}
		if _, err := r.br.ReadByte(); err == nil {
			return nil, fmt.Errorf("%w: trailing bytes after final block", ErrCorrupt)
		} else if !errors.Is(err, io.EOF) {
			return nil, err
		}
		return nil, io.EOF
	}
	var frame, payload []byte
	if r.data != nil {
		if len(r.data)-r.off < blockHeaderSize {
			return nil, fmt.Errorf("%w: truncated block frame: %w", ErrCorrupt, io.ErrUnexpectedEOF)
		}
		frame = r.data[r.off : r.off+blockHeaderSize]
		r.off += blockHeaderSize
	} else {
		if _, err := io.ReadFull(r.br, r.frame[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated block frame: %w", ErrCorrupt, err)
		}
		frame = r.frame[:]
	}
	nrecs := binary.LittleEndian.Uint32(frame[0:])
	rawLen := binary.LittleEndian.Uint32(frame[4:])
	compLen := binary.LittleEndian.Uint32(frame[8:])
	wantCRC := binary.LittleEndian.Uint32(frame[12:])
	if nrecs == 0 || nrecs > maxBlockRecords || rawLen > maxBlockBytes || compLen > maxBlockBytes {
		return nil, fmt.Errorf("%w: implausible block frame (nrecs=%d raw=%d comp=%d)", ErrCorrupt, nrecs, rawLen, compLen)
	}
	if r.data != nil {
		// Zero-copy: the compressed payload is served straight from the
		// mapping; zlib reads it through a throwaway bytesReader.
		if len(r.data)-r.off < int(compLen) {
			return nil, fmt.Errorf("%w: truncated block payload: %w", ErrCorrupt, io.ErrUnexpectedEOF)
		}
		payload = r.data[r.off : r.off+int(compLen)]
		r.off += int(compLen)
	} else {
		if cap(r.comp) < int(compLen) {
			r.comp = make([]byte, compLen)
		}
		r.comp = r.comp[:compLen]
		if _, err := io.ReadFull(r.br, r.comp); err != nil {
			return nil, fmt.Errorf("%w: truncated block payload: %w", ErrCorrupt, err)
		}
		payload = r.comp
	}
	if cap(r.raw) < int(rawLen) {
		r.raw = make([]byte, rawLen)
	}
	r.raw = r.raw[:rawLen]
	if err := r.inflate(payload); err != nil {
		return nil, fmt.Errorf("%w: zlib: %w", ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(r.raw); got != wantCRC {
		return nil, fmt.Errorf("%w: block CRC %08x != %08x", ErrCorrupt, got, wantCRC)
	}
	recs, err := r.codec.DecodeBlock(r.raw, int(nrecs), r.recs)
	if err != nil {
		return nil, err
	}
	r.recs = recs
	r.blocksGot++
	r.recsGot += uint64(nrecs)
	metBlocksRead.Inc()
	metRecordsRead.Add(int64(nrecs))
	return recs, nil
}

// inflate decompresses the framed payload into r.raw, reusing the zlib
// stream. payload is r.comp on the buffered path or a slice of the
// mapping on the mapped path.
func (r *Reader[T]) inflate(payload []byte) error {
	src := bytesReader{b: payload}
	if r.zr == nil {
		zr, err := zlib.NewReader(&src)
		if err != nil {
			return err
		}
		r.zr = zr
	} else if err := r.zr.(zlib.Resetter).Reset(&src, nil); err != nil {
		return err
	}
	if _, err := io.ReadFull(r.zr, r.raw); err != nil {
		return err
	}
	// The stream must end exactly at rawLen bytes; the final read also
	// forces zlib to verify its adler32 trailer.
	var tail [1]byte
	if n, err := r.zr.Read(tail[:]); n != 0 {
		return errors.New("compressed block longer than frame rawLen")
	} else if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// bytesReader is a minimal io.Reader over a byte slice (bytes.Reader
// without the extra interface surface, so the zlib Resetter path gets a
// plain Reader and keeps its own internal buffering).
type bytesReader struct {
	b []byte
	i int
}

func (s *bytesReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}

// Close releases the shard file and, on the mapped path, its mapping.
func (r *Reader[T]) Close() error {
	err := r.release()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// release drops the current mapping, if any.
func (r *Reader[T]) release() error {
	if r.unmap == nil {
		return nil
	}
	err := r.unmap()
	r.data, r.off, r.unmap = nil, 0, nil
	return err
}

// Reopen switches the Reader to another shard, keeping every decode
// buffer (compressed frame, raw block, record slice, zlib stream) so a
// replay worker touches steady-state memory no matter how many shards
// it consumes. The previous file (and mapping) is closed first; a
// Reader opened with OpenReaderMapped re-attempts the mapping on every
// file, falling back to buffered reads per file.
func (r *Reader[T]) Reopen(path string) error {
	if err := r.release(); err != nil {
		return err
	}
	if err := r.f.Close(); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	r.f = f
	if err := r.attach(path); err != nil {
		f.Close()
		return err
	}
	return nil
}

// ReplayShards streams every shard through fn with bounded memory:
// workers claim whole shards from an atomic cursor, each worker owns one
// Reader (and so one set of reusable decode buffers), and fn is called
// once per decoded block with the shard's index in shards. The record
// slice passed to fn is only valid during the call. fn must be safe for
// concurrent calls on distinct shards; ctx is observed between blocks.
// The first error (or ctx cancellation) stops all workers.
func ReplayShards[T any](ctx context.Context, codec Codec[T], shards []Shard, workers int, fn func(shard int, recs []T) error) error {
	return replayShards(ctx, codec, shards, workers, false, fn)
}

// ReplayShardsMapped is ReplayShards over memory-mapped readers: each
// worker's shards are mmap'ed (falling back to buffered reads per file
// when mapping fails) so block payloads come zero-copy from the page
// cache. The records delivered to fn are bit-identical to
// ReplayShards'.
func ReplayShardsMapped[T any](ctx context.Context, codec Codec[T], shards []Shard, workers int, fn func(shard int, recs []T) error) error {
	return replayShards(ctx, codec, shards, workers, true, fn)
}

func replayShards[T any](ctx context.Context, codec Codec[T], shards []Shard, workers int, mapped bool, fn func(shard int, recs []T) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	var cursor atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var r *Reader[T] // this worker's reader; buffers persist across shards
			defer func() {
				if r != nil {
					r.Close()
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				if err := replayShard(ctx, codec, shards[i], i, mapped, &r, fn); err != nil {
					errs[w] = err
					cursor.Store(int64(len(shards))) // stop the other workers
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayShard streams one shard block by block through fn, reusing the
// worker's Reader (created on the worker's first shard).
func replayShard[T any](ctx context.Context, codec Codec[T], s Shard, ix int, mapped bool, rp **Reader[T], fn func(int, []T) error) error {
	if *rp == nil {
		r, err := openReader(codec, s.Path, mapped)
		if err != nil {
			return err
		}
		*rp = r
	} else if err := (*rp).Reopen(s.Path); err != nil {
		return err
	}
	r := *rp
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		recs, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", s.Path, err)
		}
		if err := fn(ix, recs); err != nil {
			return err
		}
	}
}
