package tracestore

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"talon/internal/sector"
	"talon/internal/stats"
)

// mkTrial synthesizes a deterministic pseudo-random Trial for seed.
func mkTrial(rng *stats.RNG, seed uint64, m int) Trial {
	t := Trial{
		Seed:        seed,
		AzDeg:       float32(rng.Uniform(-60, 60)),
		ElDeg:       float32(rng.Uniform(-20, 20)),
		DistM:       float32(rng.Uniform(1, 10)),
		AttenDB:     float32(rng.Uniform(0, 15)),
		LinkSNR:     float32(rng.Uniform(-7, 12)),
		Probes:      make([]ProbeSample, m),
		SelSector:   sector.ID(rng.Intn(32)),
		SelFallback: rng.Bool(0.1),
		SelAzDeg:    float32(rng.Uniform(-60, 60)),
		SelElDeg:    float32(rng.Uniform(-20, 20)),
	}
	for j := range t.Probes {
		t.Probes[j] = ProbeSample{
			Sector: sector.ID(rng.Intn(32)),
			OK:     rng.Bool(0.9),
			SNR:    float32(rng.Uniform(-7, 12)),
			RSSI:   float32(rng.Uniform(-65, -40)),
		}
	}
	return t
}

func trialsEqual(a, b Trial) bool {
	if a.Seed != b.Seed || a.AzDeg != b.AzDeg || a.ElDeg != b.ElDeg ||
		a.DistM != b.DistM || a.AttenDB != b.AttenDB || a.LinkSNR != b.LinkSNR ||
		a.SelSector != b.SelSector || a.SelFallback != b.SelFallback ||
		a.SelAzDeg != b.SelAzDeg || a.SelElDeg != b.SelElDeg ||
		len(a.Probes) != len(b.Probes) {
		return false
	}
	for j := range a.Probes {
		if a.Probes[j] != b.Probes[j] {
			return false
		}
	}
	return true
}

// TestRoundTripAcrossShards is the round-trip property test: write N
// records across K shards with odd block sizes, replay with several
// worker counts, and compare every field of every record.
func TestRoundTripAcrossShards(t *testing.T) {
	const (
		m        = 11
		n        = 2500
		perShard = 700 // forces K=4 shards with a short tail
	)
	codec, err := NewTrialCodec(m)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := NewWriter(codec, dir, "camp", WriterOptions{RecordsPerShard: perShard, BlockRecords: 96})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	want := make([]Trial, n)
	for i := range want {
		want[i] = mkTrial(rng, uint64(1000+i), m)
		if err := w.Append(want[i].Seed, want[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	written, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != (n+perShard-1)/perShard {
		t.Fatalf("got %d shards, want %d", len(written), (n+perShard-1)/perShard)
	}

	shards, err := Discover(dir, "camp")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != len(written) {
		t.Fatalf("Discover found %d shards, wrote %d", len(shards), len(written))
	}
	var totRecs uint64
	for i, s := range shards {
		if s.Path != written[i].Path {
			t.Fatalf("shard %d: Discover order %s != write order %s", i, s.Path, written[i].Path)
		}
		totRecs += s.Header.Records
	}
	if totRecs != n {
		t.Fatalf("headers promise %d records, wrote %d", totRecs, n)
	}

	for _, workers := range []int{1, 3} {
		got := make([]Trial, n)
		seen := make([]bool, n)
		var mu sync.Mutex
		err := ReplayShards(context.Background(), codec, shards, workers, func(shard int, recs []Trial) error {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range recs {
				i := int(r.Seed - 1000)
				if i < 0 || i >= n || seen[i] {
					t.Errorf("unexpected or duplicate seed %d", r.Seed)
					return nil
				}
				seen[i] = true
				got[i] = r
				got[i].Probes = append([]ProbeSample(nil), r.Probes...) // recs is reused after fn returns
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if !seen[i] {
				t.Fatalf("workers=%d: record %d never replayed", workers, i)
			}
			if !trialsEqual(want[i], got[i]) {
				t.Fatalf("workers=%d: record %d mismatch:\n want %+v\n  got %+v", workers, i, want[i], got[i])
			}
		}
	}
}

func TestWriterRejectsDecreasingSeeds(t *testing.T) {
	codec, _ := NewTrialCodec(4)
	w, err := NewWriter(codec, t.TempDir(), "camp", WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	if err := w.Append(10, mkTrial(rng, 10, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(9, mkTrial(rng, 9, 4)); !errors.Is(err, ErrSeedOrder) {
		t.Fatalf("got %v, want ErrSeedOrder", err)
	}
}

// writeOneShard writes n trials into a single shard and returns its path.
func writeOneShard(t *testing.T, dir string, n, m int) string {
	t.Helper()
	codec, _ := NewTrialCodec(m)
	w, err := NewWriter(codec, dir, "one", WriterOptions{BlockRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	for i := 0; i < n; i++ {
		if err := w.Append(uint64(i), mkTrial(rng, uint64(i), m)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ShardPath(dir, "one", 0)
}

func TestErrorPaths(t *testing.T) {
	codec, _ := NewTrialCodec(6)
	path := writeOneShard(t, t.TempDir(), 100, 6)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, name string, f func(b []byte) []byte, want error) {
		t.Helper()
		dir := t.TempDir()
		p := filepath.Join(dir, "mut-00000.bin")
		if err := os.WriteFile(p, f(append([]byte(nil), orig...)), 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(codec, p)
		if err == nil {
			for err == nil {
				_, err = r.Next()
			}
			r.Close()
			if errors.Is(err, io.EOF) {
				err = nil
			}
		}
		if !errors.Is(err, want) {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}

	mutate(t, "bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic)
	mutate(t, "bad version", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[8:], Version+9)
		return b
	}, ErrVersion)
	mutate(t, "flipped kind", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[10:], KindTrial+1)
		return b
	}, ErrCorrupt) // kind is CRC-covered, so corruption trips before the kind check
	mutate(t, "truncated header", func(b []byte) []byte { return b[:headerSize-5] }, ErrCorrupt)
	mutate(t, "truncated mid-block", func(b []byte) []byte { return b[:len(b)-7] }, ErrCorrupt)
	mutate(t, "flipped payload byte", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }, ErrCorrupt)
	mutate(t, "trailing junk", func(b []byte) []byte { return append(b, 0xAA) }, ErrCorrupt)
	mutate(t, "unfinalized header", func(b []byte) []byte {
		for i := 32; i < headerSize; i++ {
			b[i] = 0
		}
		return b
	}, ErrCorrupt)
	mutate(t, "header CRC flip", func(b []byte) []byte { b[44] ^= 0x01; return b }, ErrCorrupt)

	// Kind + meta mismatch surfaced as ErrKindMismatch needs a valid
	// CRC, i.e. a file honestly written by a different codec.
	other, _ := NewTrialCodec(7)
	dir := t.TempDir()
	w, err := NewWriter(other, dir, "other", WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	if err := w.Append(0, mkTrial(rng, 0, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(codec, ShardPath(dir, "other", 0)); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("meta mismatch: got %v, want ErrKindMismatch", err)
	}
}

// TestSplitBySeed proves the in-sample/out-of-sample partitions are
// disjoint and exhaustive for any between-shard boundary, and that an
// intra-shard boundary is refused.
func TestSplitBySeed(t *testing.T) {
	const m, n, perShard = 5, 1000, 250
	codec, _ := NewTrialCodec(m)
	dir := t.TempDir()
	w, err := NewWriter(codec, dir, "split", WriterOptions{RecordsPerShard: perShard, BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	for i := 0; i < n; i++ {
		if err := w.Append(uint64(i), mkTrial(rng, uint64(i), m)); err != nil {
			t.Fatal(err)
		}
	}
	shards, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, boundary := range []uint64{0, 250, 500, 750, 1000, 5000} {
		in, out, err := SplitBySeed(shards, boundary)
		if err != nil {
			t.Fatalf("boundary %d: %v", boundary, err)
		}
		if len(in)+len(out) != len(shards) {
			t.Fatalf("boundary %d: %d+%d shards, want %d", boundary, len(in), len(out), len(shards))
		}
		// Disjoint and exhaustive: every shard appears on exactly one
		// side, and every record seed lands on the side its value says.
		sides := map[string]int{}
		for _, s := range in {
			sides[s.Path]++
			if s.Header.SeedHi > boundary {
				t.Fatalf("boundary %d: in-sample shard %s reaches seed %d", boundary, s.Path, s.Header.SeedHi-1)
			}
		}
		for _, s := range out {
			sides[s.Path]++
			if s.Header.SeedLo < boundary {
				t.Fatalf("boundary %d: out-of-sample shard %s starts at seed %d", boundary, s.Path, s.Header.SeedLo)
			}
		}
		for _, s := range shards {
			if sides[s.Path] != 1 {
				t.Fatalf("boundary %d: shard %s on %d sides", boundary, s.Path, sides[s.Path])
			}
		}
	}

	if _, _, err := SplitBySeed(shards, 300); !errors.Is(err, ErrSplitStraddle) {
		t.Fatalf("intra-shard boundary: got %v, want ErrSplitStraddle", err)
	}
}

func TestReplayCancellation(t *testing.T) {
	codec, _ := NewTrialCodec(6)
	dir := t.TempDir()
	writeOneShard(t, dir, 100, 6)
	shards, err := Discover(dir, "one")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ReplayShards(ctx, codec, shards, 2, func(int, []Trial) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
