//go:build !linux

package tracestore

import (
	"errors"
	"os"
)

// mapFile on platforms without a wired mmap implementation always
// reports failure; OpenReaderMapped then falls back to the buffered
// path, so the mapped API stays portable with identical semantics.
func mapFile(*os.File) ([]byte, func() error, error) {
	return nil, nil, errors.New("tracestore: mmap not supported on this platform")
}
