package tracestore

import "talon/internal/obs"

// Store metrics on the default registry. Counters only — the store sits
// inside the determinism lint scope, so it never reads the wall clock;
// throughput histograms belong to the callers in cmd/.
var (
	metAppends = obs.NewCounter("tracestore_appends_total",
		"records appended to shard writers")
	metShardsOpened = obs.NewCounter("tracestore_shards_opened_total",
		"shard files created by writers")
	metBlocksWritten = obs.NewCounter("tracestore_blocks_written_total",
		"compressed blocks written")
	metBytesWritten = obs.NewCounter("tracestore_bytes_written_total",
		"compressed bytes written (frames + payloads)")
	metBlocksRead = obs.NewCounter("tracestore_blocks_read_total",
		"compressed blocks decoded by readers")
	metRecordsRead = obs.NewCounter("tracestore_records_read_total",
		"records decoded by readers")
	metMmapOpens = obs.NewCounter("tracestore_mmap_opens_total",
		"shard files served through a memory mapping")
	metMmapFallbacks = obs.NewCounter("tracestore_mmap_fallbacks_total",
		"mapped opens that fell back to buffered reads")
)
