package tracestore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"talon/internal/sector"
)

// FuzzDecodeRecord round-trips the trial codec through arbitrary-ish
// inputs: the fuzzer drives both the record contents and the probe
// count, and the property is encode→decode→encode byte-identity plus
// decode never panicking on truncated or padded raw blocks.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(uint16(4), []byte("seed-corpus"), uint8(3))
	f.Add(uint16(1), []byte{0xff, 0x00, 0x41}, uint8(1))
	f.Add(uint16(33), bytes.Repeat([]byte{0x7f}, 300), uint8(5))
	f.Fuzz(func(t *testing.T, m16 uint16, blob []byte, n8 uint8) {
		m := int(m16)%255 + 1
		codec, err := NewTrialCodec(m)
		if err != nil {
			t.Fatal(err)
		}
		n := int(n8)%8 + 1

		// Build n records deterministically from blob bytes.
		at := func(i int) byte {
			if len(blob) == 0 {
				return 0
			}
			return blob[i%len(blob)]
		}
		f32 := func(i int) float32 {
			u := binary.LittleEndian.Uint32([]byte{at(i), at(i + 1), at(i + 2), at(i + 3)})
			return float32(int32(u)) / 256 // finite by construction, NaN-free for == comparison
		}
		recs := make([]Trial, n)
		k := 0
		for i := range recs {
			recs[i] = Trial{
				Seed:  uint64(i),
				AzDeg: f32(k), ElDeg: f32(k + 4),
				DistM:       f32(k + 8),
				AttenDB:     f32(k + 12),
				LinkSNR:     f32(k + 16),
				Probes:      make([]ProbeSample, m),
				SelSector:   sector.ID(at(k)),
				SelFallback: at(k+1)&1 == 1,
				SelAzDeg:    f32(k + 20),
				SelElDeg:    f32(k + 24),
			}
			for j := range recs[i].Probes {
				recs[i].Probes[j] = ProbeSample{
					Sector: sector.ID(at(k + j)),
					OK:     at(k+j)&2 == 2,
					SNR:    f32(k + j),
					RSSI:   f32(k + j + 2),
				}
			}
			k += 29
		}

		raw := codec.AppendBlock(nil, recs)
		dec, err := codec.DecodeBlock(raw, n, nil)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		raw2 := codec.AppendBlock(nil, dec)
		if !bytes.Equal(raw, raw2) {
			t.Fatal("encode→decode→encode is not byte-identical")
		}

		// Decoding wrong-sized raw must error, never panic.
		if len(raw) > 0 {
			if _, err := codec.DecodeBlock(raw[:len(raw)-1], n, nil); err == nil {
				t.Fatal("truncated raw block decoded without error")
			}
		}
		if _, err := codec.DecodeBlock(append(raw, 0), n, nil); err == nil {
			t.Fatal("padded raw block decoded without error")
		}
	})
}
