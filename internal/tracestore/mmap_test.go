package tracestore

import (
	"context"
	"errors"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"talon/internal/stats"
)

// TestMappedReplayByteIdentity replays the same shard set through the
// buffered and the memory-mapped read paths and requires every record
// to match field for field — the mapped path is an execution detail,
// never a semantic one.
func TestMappedReplayByteIdentity(t *testing.T) {
	const (
		m        = 9
		n        = 1800
		perShard = 500
	)
	codec, err := NewTrialCodec(m)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := NewWriter(codec, dir, "mm", WriterOptions{RecordsPerShard: perShard, BlockRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)
	for i := 0; i < n; i++ {
		if err := w.Append(uint64(i), mkTrial(rng, uint64(i), m)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	shards, err := Discover(dir, "mm")
	if err != nil {
		t.Fatal(err)
	}

	collect := func(mapped bool, workers int) []Trial {
		t.Helper()
		got := make([]Trial, n)
		var mu sync.Mutex
		replay := ReplayShards[Trial]
		if mapped {
			replay = ReplayShardsMapped[Trial]
		}
		err := replay(context.Background(), codec, shards, workers, func(_ int, recs []Trial) error {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range recs {
				got[r.Seed] = r
				got[r.Seed].Probes = append([]ProbeSample(nil), r.Probes...)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("mapped=%v workers=%d: %v", mapped, workers, err)
		}
		return got
	}

	for _, workers := range []int{1, 3} {
		buffered := collect(false, workers)
		mapped := collect(true, workers)
		for i := range buffered {
			if !trialsEqual(buffered[i], mapped[i]) {
				t.Fatalf("workers=%d record %d: buffered and mapped replay disagree:\n buffered %+v\n   mapped %+v",
					workers, i, buffered[i], mapped[i])
			}
		}
	}
}

// TestMappedReaderEngages proves OpenReaderMapped actually maps on
// linux (and degrades to the buffered path elsewhere), survives Reopen
// across files, and still detects trailing junk.
func TestMappedReaderEngages(t *testing.T) {
	codec, _ := NewTrialCodec(6)
	dir := t.TempDir()
	writeOneShard(t, dir, 100, 6)
	path := ShardPath(dir, "one", 0)

	r, err := OpenReaderMapped(codec, path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if runtime.GOOS == "linux" && r.data == nil {
		t.Fatal("linux: mapped open fell back to buffered reads")
	}
	if runtime.GOOS != "linux" && r.data != nil {
		t.Fatal("non-linux stub unexpectedly produced a mapping")
	}
	var recs int
	for {
		block, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs += len(block)
	}
	if recs != 100 {
		t.Fatalf("mapped read decoded %d records, want 100", recs)
	}

	// Reopen re-attempts the mapping on the next file.
	if err := r.Reopen(path); err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" && r.data == nil {
		t.Fatal("linux: Reopen dropped the mapping preference")
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("read after Reopen: %v", err)
	}
}

// TestMappedReaderTrailingJunk mirrors the buffered corruption check on
// the mapped path: bytes after the final block are an error, not
// silently ignored.
func TestMappedReaderTrailingJunk(t *testing.T) {
	codec, _ := NewTrialCodec(6)
	dir := t.TempDir()
	writeOneShard(t, dir, 50, 6)
	path := ShardPath(dir, "one", 0)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReaderMapped(codec, path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, err = r.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing junk on mapped path: got %v, want ErrCorrupt", err)
	}
}
