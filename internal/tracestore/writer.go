package tracestore

import (
	"bufio"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// WriterOptions tune the sharded writer. The zero value means defaults.
type WriterOptions struct {
	// RecordsPerShard caps a shard file before the writer rolls to the
	// next one (default 1<<16).
	RecordsPerShard int
	// BlockRecords is the number of records buffered and compressed
	// per block (default 4096). Larger blocks compress better; smaller
	// blocks bound the replayer's working set tighter.
	BlockRecords int
	// Level is the zlib compression level (default
	// zlib.BestSpeed; writes sit on the campaign's critical path).
	Level int
}

func (o *WriterOptions) defaults() {
	if o.RecordsPerShard <= 0 {
		o.RecordsPerShard = 1 << 16
	}
	if o.BlockRecords <= 0 {
		o.BlockRecords = 4096
	}
	if o.Level == 0 {
		o.Level = zlib.BestSpeed
	}
}

// Writer streams records into sharded columnar .bin files named
// "<base>-NNNNN.bin" under one directory. Records must arrive with
// non-decreasing seeds so each shard covers a contiguous seed range
// and the in-sample/out-of-sample split can cut between shards. Not
// safe for concurrent use; one campaign writes through one Writer.
type Writer[T any] struct {
	codec Codec[T]
	dir   string
	base  string
	opts  WriterOptions

	f   *os.File
	bw  *bufio.Writer
	z   *zlib.Writer
	hdr Header // running header of the open shard

	pending  []T // records buffered for the current block
	raw      []byte
	comp     compBuf
	frame    [blockHeaderSize]byte
	shardIx  int
	shardRec int    // records in the open shard (pending included)
	lastSeed uint64 // highest seed appended so far
	started  bool   // at least one Append happened
	shards   []Shard
}

// NewWriter creates a sharded writer under dir. Shard files are created
// lazily on first Append. Records append through Append; Close finalizes
// the last shard and returns the full shard list.
func NewWriter[T any](codec Codec[T], dir, base string, opts WriterOptions) (*Writer[T], error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Writer[T]{codec: codec, dir: dir, base: base, opts: opts}, nil
}

// ShardPath names shard i of a campaign: "<base>-00000.bin" and so on.
func ShardPath(dir, base string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%05d.bin", base, i))
}

// Append adds one record under its seed. Seeds must be non-decreasing
// across the whole campaign.
func (w *Writer[T]) Append(seed uint64, rec T) error {
	if w.started && seed < w.lastSeed {
		return fmt.Errorf("%w: %d after %d", ErrSeedOrder, seed, w.lastSeed)
	}
	if w.f == nil {
		if err := w.openShard(seed); err != nil {
			return err
		}
	}
	w.started = true
	w.lastSeed = seed
	if seed >= w.hdr.SeedHi {
		w.hdr.SeedHi = seed + 1
	}
	w.pending = append(w.pending, rec)
	w.shardRec++
	metAppends.Inc()
	if len(w.pending) >= w.opts.BlockRecords {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	if w.shardRec >= w.opts.RecordsPerShard {
		return w.closeShard()
	}
	return nil
}

// openShard starts shard w.shardIx with a provisional header (records,
// blocks and CRC zero) that Close rewrites once the counts are known.
func (w *Writer[T]) openShard(firstSeed uint64) error {
	path := ShardPath(w.dir, w.base, w.shardIx)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 1<<16)
	} else {
		w.bw.Reset(f)
	}
	w.hdr = Header{
		Version: Version,
		Kind:    w.codec.Kind(),
		SeedLo:  firstSeed,
		SeedHi:  firstSeed,
		Meta:    w.codec.Meta(),
	}
	provisional := encodeHeader(w.hdr)
	// Zero the counters and CRC so a crash leaves a recognizably
	// unfinalized file.
	for i := 32; i < headerSize; i++ {
		provisional[i] = 0
	}
	if _, err := w.bw.Write(provisional); err != nil {
		return err
	}
	_, err = w.bw.Write(w.hdr.Meta)
	metShardsOpened.Inc()
	return err
}

// flushBlock compresses and frames the pending records.
func (w *Writer[T]) flushBlock() error {
	if len(w.pending) == 0 {
		return nil
	}
	w.raw = w.codec.AppendBlock(w.raw[:0], w.pending)

	// Frame fields need the compressed size, so compress into a reused
	// side buffer before writing the frame.
	w.comp.b = w.comp.b[:0]
	if w.z == nil {
		zw, err := zlib.NewWriterLevel(&w.comp, w.opts.Level)
		if err != nil {
			return err
		}
		w.z = zw
	} else {
		w.z.Reset(&w.comp)
	}
	if _, err := w.z.Write(w.raw); err != nil {
		return err
	}
	if err := w.z.Close(); err != nil {
		return err
	}

	binary.LittleEndian.PutUint32(w.frame[0:], uint32(len(w.pending)))
	binary.LittleEndian.PutUint32(w.frame[4:], uint32(len(w.raw)))
	binary.LittleEndian.PutUint32(w.frame[8:], uint32(len(w.comp.b)))
	binary.LittleEndian.PutUint32(w.frame[12:], crc32.ChecksumIEEE(w.raw))
	if _, err := w.bw.Write(w.frame[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.comp.b); err != nil {
		return err
	}
	w.hdr.Records += uint64(len(w.pending))
	w.hdr.Blocks++
	w.pending = w.pending[:0]
	metBlocksWritten.Inc()
	metBytesWritten.Add(int64(blockHeaderSize + len(w.comp.b)))
	return nil
}

// compBuf is a minimal append-only sink for the zlib writer.
type compBuf struct{ b []byte }

func (c *compBuf) Write(p []byte) (int, error) {
	c.b = append(c.b, p...)
	return len(p), nil
}

// closeShard flushes the tail block, rewrites the finalized header in
// place and closes the file.
func (w *Writer[T]) closeShard() error {
	if w.f == nil {
		return nil
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	final := encodeHeader(w.hdr)
	if _, err := w.f.WriteAt(final, 0); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.shards = append(w.shards, Shard{Path: ShardPath(w.dir, w.base, w.shardIx), Header: w.hdr})
	w.f = nil
	w.shardIx++
	w.shardRec = 0
	return nil
}

// Close finalizes the open shard (if any) and returns the complete
// shard list in write order.
func (w *Writer[T]) Close() ([]Shard, error) {
	if err := w.closeShard(); err != nil {
		return nil, err
	}
	return w.shards, nil
}
