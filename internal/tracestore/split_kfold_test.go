package tracestore

import (
	"errors"
	"testing"

	"talon/internal/stats"
)

// writeFoldShards writes n seeds 0..n-1 across shards of perShard
// records and returns the discovered shard set.
func writeFoldShards(t *testing.T, n, perShard int) []Shard {
	t.Helper()
	const m = 5
	codec, _ := NewTrialCodec(m)
	dir := t.TempDir()
	w, err := NewWriter(codec, dir, "fold", WriterOptions{RecordsPerShard: perShard, BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(21)
	for i := 0; i < n; i++ {
		if err := w.Append(uint64(i), mkTrial(rng, uint64(i), m)); err != nil {
			t.Fatal(err)
		}
	}
	shards, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	return shards
}

// TestSplitKFold is the partition property test: for every k the folds
// are non-empty, disjoint, ordered, cut on whole-shard boundaries and
// together cover the seed range exactly — concatenating the folds
// reproduces the input shard list, and consecutive folds' seed ranges
// abut with no gap or overlap.
func TestSplitKFold(t *testing.T) {
	for _, tc := range []struct{ n, perShard int }{
		{1000, 100}, // 10 equal shards
		{930, 125},  // 8 shards with a short tail
		{60, 13},    // 5 ragged shards
	} {
		shards := writeFoldShards(t, tc.n, tc.perShard)
		for k := 2; k <= len(shards); k++ {
			folds, err := SplitKFold(shards, k)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", tc.n, k, err)
			}
			if len(folds) != k {
				t.Fatalf("n=%d k=%d: got %d folds", tc.n, k, len(folds))
			}
			// Concatenation reproduces the input exactly: same shards,
			// same order, each exactly once.
			next := 0
			var recs uint64
			for f, fold := range folds {
				if len(fold) == 0 {
					t.Fatalf("n=%d k=%d: fold %d empty", tc.n, k, f)
				}
				for _, s := range fold {
					if next >= len(shards) || s.Path != shards[next].Path {
						t.Fatalf("n=%d k=%d: fold %d breaks shard order at %s", tc.n, k, f, s.Path)
					}
					next++
					recs += s.Header.Records
				}
				// Seed ranges of consecutive folds abut exactly.
				if f > 0 {
					prev := folds[f-1]
					if prev[len(prev)-1].Header.SeedHi != fold[0].Header.SeedLo {
						t.Fatalf("n=%d k=%d: gap or overlap between folds %d and %d", tc.n, k, f-1, f)
					}
				}
			}
			if next != len(shards) {
				t.Fatalf("n=%d k=%d: folds cover %d of %d shards", tc.n, k, next, len(shards))
			}
			if recs != uint64(tc.n) {
				t.Fatalf("n=%d k=%d: folds cover %d of %d records", tc.n, k, recs, tc.n)
			}
			if lo, hi := folds[0][0].Header.SeedLo, folds[k-1][len(folds[k-1])-1].Header.SeedHi; lo != 0 || hi != uint64(tc.n) {
				t.Fatalf("n=%d k=%d: folds cover seeds [%d,%d), want [0,%d)", tc.n, k, lo, hi, tc.n)
			}
		}
	}
}

// TestSplitKFoldBalance checks the greedy record balancing on equal
// shards: with n divisible by k·perShard every fold gets exactly n/k
// records.
func TestSplitKFoldBalance(t *testing.T) {
	shards := writeFoldShards(t, 1200, 100) // 12 shards x 100 records
	for _, k := range []int{2, 3, 4, 6, 12} {
		folds, err := SplitKFold(shards, k)
		if err != nil {
			t.Fatal(err)
		}
		for f, fold := range folds {
			var recs uint64
			for _, s := range fold {
				recs += s.Header.Records
			}
			if recs != uint64(1200/k) {
				t.Fatalf("k=%d fold %d holds %d records, want %d", k, f, recs, 1200/k)
			}
		}
	}
}

func TestSplitKFoldErrors(t *testing.T) {
	shards := writeFoldShards(t, 30, 10) // 3 shards
	if _, err := SplitKFold(shards, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := SplitKFold(shards, 4); !errors.Is(err, ErrSplitFolds) {
		t.Fatalf("k>shards: got %v, want ErrSplitFolds", err)
	}
}
