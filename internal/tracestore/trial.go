package tracestore

import (
	"encoding/binary"
	"fmt"
	"math"

	"talon/internal/sector"
)

// KindTrial tags campaign-trial shards.
const KindTrial uint16 = 1

// ProbeSample is one probed sector's outcome inside a Trial: the sector
// id, whether the firmware reported, and the float32-rounded SNR/RSSI
// readings. Readings are stored as float32 on purpose — record mode
// rounds through float32 before both writing and selecting, so a replay
// recomputes selections from bit-identical inputs.
type ProbeSample struct {
	Sector    sector.ID
	OK        bool
	SNR, RSSI float32
}

// Trial is one campaign trial: the hidden channel state, the probe
// vector observed under it, and the selection made at record time
// (replays recompute selections and compare against it).
type Trial struct {
	// Seed is the per-trial RNG seed; non-decreasing across a campaign.
	Seed uint64
	// Channel state: ground-truth arrival angles, distance and any
	// extra attenuation, plus the resulting true link SNR at the
	// reference sector gain.
	AzDeg, ElDeg float32
	DistM        float32
	AttenDB      float32
	LinkSNR      float32
	// Probes is the observed probe vector (fixed length per campaign).
	Probes []ProbeSample
	// Selection made at record time.
	SelSector   sector.ID
	SelFallback bool
	SelAzDeg    float32
	SelElDeg    float32
}

// TrialCodec encodes Trials with a fixed probe count M per campaign.
// The probe count is the file meta, so mixing campaigns with different
// M into one replay fails loudly at open time.
type TrialCodec struct {
	m int
}

// NewTrialCodec returns a codec for campaigns probing m sectors per
// trial.
func NewTrialCodec(m int) (*TrialCodec, error) {
	if m < 1 || m > 255 {
		return nil, fmt.Errorf("tracestore: probe count %d out of range [1,255]", m)
	}
	return &TrialCodec{m: m}, nil
}

// M returns the probes-per-trial this codec was built for.
func (c *TrialCodec) M() int { return c.m }

// Kind implements Codec.
func (c *TrialCodec) Kind() uint16 { return KindTrial }

// Meta implements Codec: two little-endian u16s, probe count and a
// reserved zero.
func (c *TrialCodec) Meta() []byte {
	meta := make([]byte, 4)
	binary.LittleEndian.PutUint16(meta, uint16(c.m))
	return meta
}

// CheckMeta implements Codec.
func (c *TrialCodec) CheckMeta(meta []byte) error {
	if len(meta) != 4 {
		return fmt.Errorf("%w: trial meta length %d", ErrKindMismatch, len(meta))
	}
	if m := int(binary.LittleEndian.Uint16(meta)); m != c.m {
		return fmt.Errorf("%w: file has %d probes per trial, codec expects %d", ErrKindMismatch, m, c.m)
	}
	return nil
}

// trialSize is the per-record byte cost: fixed scalars plus M probe
// tuples.
func (c *TrialCodec) trialSize() int { return 8 + 5*4 + c.m*(1+1+4+4) + 1 + 1 + 4 + 4 }

// AppendBlock implements Codec. Layout is column-major: each field's
// values for all n records are contiguous, which is what makes zlib bite
// (seeds delta poorly but sectors, OK flags and quantized readings
// compress hard) and keeps decode branch-free.
func (c *TrialCodec) AppendBlock(buf []byte, recs []Trial) []byte {
	n := len(recs)
	off := len(buf)
	buf = append(buf, make([]byte, n*c.trialSize())...)
	b := buf[off:]

	p := 0
	for _, r := range recs {
		binary.LittleEndian.PutUint64(b[p:], r.Seed)
		p += 8
	}
	p = putF32Col(b, p, recs, func(r *Trial) float32 { return r.AzDeg })
	p = putF32Col(b, p, recs, func(r *Trial) float32 { return r.ElDeg })
	p = putF32Col(b, p, recs, func(r *Trial) float32 { return r.DistM })
	p = putF32Col(b, p, recs, func(r *Trial) float32 { return r.AttenDB })
	p = putF32Col(b, p, recs, func(r *Trial) float32 { return r.LinkSNR })
	for _, r := range recs {
		for j := 0; j < c.m; j++ {
			b[p] = byte(r.Probes[j].Sector)
			p++
		}
	}
	for _, r := range recs {
		for j := 0; j < c.m; j++ {
			if r.Probes[j].OK {
				b[p] = 1
			}
			p++
		}
	}
	for _, r := range recs {
		for j := 0; j < c.m; j++ {
			binary.LittleEndian.PutUint32(b[p:], math.Float32bits(r.Probes[j].SNR))
			p += 4
		}
	}
	for _, r := range recs {
		for j := 0; j < c.m; j++ {
			binary.LittleEndian.PutUint32(b[p:], math.Float32bits(r.Probes[j].RSSI))
			p += 4
		}
	}
	for _, r := range recs {
		b[p] = byte(r.SelSector)
		p++
	}
	for _, r := range recs {
		if r.SelFallback {
			b[p] = 1
		}
		p++
	}
	p = putF32Col(b, p, recs, func(r *Trial) float32 { return r.SelAzDeg })
	putF32Col(b, p, recs, func(r *Trial) float32 { return r.SelElDeg })
	return buf
}

func putF32Col(b []byte, p int, recs []Trial, get func(*Trial) float32) int {
	for i := range recs {
		binary.LittleEndian.PutUint32(b[p:], math.Float32bits(get(&recs[i])))
		p += 4
	}
	return p
}

// DecodeBlock implements Codec. dst's capacity — including each Trial's
// Probes backing array — is reused, so a steady-state reader allocates
// nothing per block.
func (c *TrialCodec) DecodeBlock(raw []byte, n int, dst []Trial) ([]Trial, error) {
	if len(raw) != n*c.trialSize() {
		return nil, fmt.Errorf("%w: block holds %d bytes, %d records of %d need %d",
			ErrCorrupt, len(raw), n, c.trialSize(), n*c.trialSize())
	}
	if cap(dst) < n {
		dst = make([]Trial, n)
		probes := make([]ProbeSample, n*c.m)
		for i := range dst {
			dst[i].Probes = probes[i*c.m : (i+1)*c.m : (i+1)*c.m]
		}
	}
	dst = dst[:n]
	for i := range dst {
		if len(dst[i].Probes) != c.m {
			// Mixed-capacity reuse (e.g. dst from another codec): give
			// the record its own probe slice.
			dst[i].Probes = make([]ProbeSample, c.m)
		}
	}

	p := 0
	for i := range dst {
		dst[i].Seed = binary.LittleEndian.Uint64(raw[p:])
		p += 8
	}
	p = getF32Col(raw, p, dst, func(r *Trial, v float32) { r.AzDeg = v })
	p = getF32Col(raw, p, dst, func(r *Trial, v float32) { r.ElDeg = v })
	p = getF32Col(raw, p, dst, func(r *Trial, v float32) { r.DistM = v })
	p = getF32Col(raw, p, dst, func(r *Trial, v float32) { r.AttenDB = v })
	p = getF32Col(raw, p, dst, func(r *Trial, v float32) { r.LinkSNR = v })
	for i := range dst {
		for j := 0; j < c.m; j++ {
			dst[i].Probes[j].Sector = sector.ID(raw[p])
			p++
		}
	}
	for i := range dst {
		for j := 0; j < c.m; j++ {
			dst[i].Probes[j].OK = raw[p] != 0
			p++
		}
	}
	for i := range dst {
		for j := 0; j < c.m; j++ {
			dst[i].Probes[j].SNR = math.Float32frombits(binary.LittleEndian.Uint32(raw[p:]))
			p += 4
		}
	}
	for i := range dst {
		for j := 0; j < c.m; j++ {
			dst[i].Probes[j].RSSI = math.Float32frombits(binary.LittleEndian.Uint32(raw[p:]))
			p += 4
		}
	}
	for i := range dst {
		dst[i].SelSector = sector.ID(raw[p])
		p++
	}
	for i := range dst {
		dst[i].SelFallback = raw[p] != 0
		p++
	}
	p = getF32Col(raw, p, dst, func(r *Trial, v float32) { r.SelAzDeg = v })
	getF32Col(raw, p, dst, func(r *Trial, v float32) { r.SelElDeg = v })
	return dst, nil
}

func getF32Col(raw []byte, p int, dst []Trial, set func(*Trial, float32)) int {
	for i := range dst {
		set(&dst[i], math.Float32frombits(binary.LittleEndian.Uint32(raw[p:])))
		p += 4
	}
	return p
}
