package tracestore

import "fmt"

// SplitKFold partitions shards into k contiguous folds for k-fold
// cross-validation. Folds are cut on whole-shard boundaries only (a
// shard is the atomic unit of seed coverage, as in SplitBySeed), each
// fold is non-empty, and the folds are disjoint, ordered and together
// exhaust the input — concatenating them reproduces shards exactly, so
// the k folds partition the covered seed range. Record counts are
// balanced greedily: fold f closes once its cumulative record count
// reaches the f/k-th proportional cut, subject to leaving one shard
// for every remaining fold.
func SplitKFold(shards []Shard, k int) ([][]Shard, error) {
	if k < 2 {
		return nil, fmt.Errorf("tracestore: k-fold split needs k >= 2, got %d", k)
	}
	if len(shards) < k {
		return nil, fmt.Errorf("%w: %d shards cannot fill %d folds", ErrSplitFolds, len(shards), k)
	}
	var total uint64
	for _, s := range shards {
		total += s.Header.Records
	}
	folds := make([][]Shard, k)
	start, cum := 0, uint64(0)
	for f := 0; f < k; f++ {
		// Every fold takes at least one shard; the loop then extends it
		// to the proportional cut while reserving one shard per
		// remaining fold. The last fold's cut is total, so it absorbs
		// whatever is left.
		end := start + 1
		cum += shards[start].Header.Records
		cut := total * uint64(f+1) / uint64(k)
		for end < len(shards)-(k-f-1) && cum+shards[end].Header.Records <= cut {
			cum += shards[end].Header.Records
			end++
		}
		folds[f] = shards[start:end:end]
		start = end
	}
	return folds, nil
}

// SplitBySeed partitions shards into the in-sample set (every record
// seed < boundary) and the out-of-sample set (every record seed >=
// boundary). Because writers keep seeds non-decreasing, each shard
// covers a contiguous range and the split is a clean cut between whole
// shards: the two returned sets are disjoint and together exhaust the
// input. A shard whose [SeedLo, SeedHi) range contains the boundary in
// its interior cannot be assigned to either side and yields
// ErrSplitStraddle — re-record with RecordsPerShard aligned to the
// intended boundary instead of guessing.
func SplitBySeed(shards []Shard, boundary uint64) (in, out []Shard, err error) {
	for _, s := range shards {
		switch {
		case s.Header.SeedHi <= boundary:
			in = append(in, s)
		case s.Header.SeedLo >= boundary:
			out = append(out, s)
		default:
			return nil, nil, fmt.Errorf("%w: %s covers [%d,%d) across boundary %d",
				ErrSplitStraddle, s.Path, s.Header.SeedLo, s.Header.SeedHi, boundary)
		}
	}
	return in, out, nil
}
