package tracestore

import "fmt"

// SplitBySeed partitions shards into the in-sample set (every record
// seed < boundary) and the out-of-sample set (every record seed >=
// boundary). Because writers keep seeds non-decreasing, each shard
// covers a contiguous range and the split is a clean cut between whole
// shards: the two returned sets are disjoint and together exhaust the
// input. A shard whose [SeedLo, SeedHi) range contains the boundary in
// its interior cannot be assigned to either side and yields
// ErrSplitStraddle — re-record with RecordsPerShard aligned to the
// intended boundary instead of guessing.
func SplitBySeed(shards []Shard, boundary uint64) (in, out []Shard, err error) {
	for _, s := range shards {
		switch {
		case s.Header.SeedHi <= boundary:
			in = append(in, s)
		case s.Header.SeedLo >= boundary:
			out = append(out, s)
		default:
			return nil, nil, fmt.Errorf("%w: %s covers [%d,%d) across boundary %d",
				ErrSplitStraddle, s.Path, s.Header.SeedLo, s.Header.SeedHi, boundary)
		}
	}
	return in, out, nil
}
