//go:build linux

package tracestore

import (
	"errors"
	"os"
	"syscall"
)

// mapFile maps f read-only in its entirety and returns the mapping
// with its release function. Callers treat any error as "use the
// buffered path for this file" — an empty file (a shard is never
// empty, but mmap(2) rejects length 0) or an unmappable filesystem
// degrades gracefully instead of failing the replay.
func mapFile(f *os.File) ([]byte, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, errors.New("tracestore: file size not mappable")
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
