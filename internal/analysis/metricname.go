package analysis

import (
	"bufio"
	"go/ast"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// metricConstructors are the obs default-registry registration points.
var metricConstructors = map[string]bool{
	"NewCounter":    true,
	"NewGauge":      true,
	"NewFloatGauge": true,
	"NewHistogram":  true,
}

// metricPrefixes are the sanctioned metric-name namespaces, one per
// instrumented subsystem.
var metricPrefixes = []string{"core_", "wil_", "eval_", "fault_", "trainer_", "nexmon_", "fleet_", "tracestore_"}

var snakeCaseRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// NewMetricName builds the metricname analyzer. Every registration on
// the obs default registry (obs.NewCounter, obs.NewGauge,
// obs.NewFloatGauge, obs.NewHistogram) outside the obs package itself
// must:
//
//   - sit in a package-level var declaration (metrics register once at
//     init, never per call),
//   - name the metric with a snake_case string literal,
//   - use a known subsystem prefix (core_, wil_, eval_, fault_,
//     trainer_, nexmon_),
//   - and, when goldenPath is non-empty, appear in the golden metric
//     inventory (testdata/metric_names.golden) that the dashboards are
//     built on.
//
// goldenPath == "" skips the inventory cross-check.
func NewMetricName(goldenPath string) *Analyzer {
	a := &Analyzer{
		Name: "metricname",
		Doc:  "obs metric registrations must be package-level vars with snake_case, prefixed, golden-pinned literal names",
	}
	a.Run = func(pass *Pass) { runMetricName(pass, goldenPath) }
	return a
}

// loadGolden reads the newline-separated metric inventory.
func loadGolden(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	names := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			names[line] = true
		}
	}
	return names, sc.Err()
}

func runMetricName(pass *Pass, goldenPath string) {
	if pathMatches(pass.Pkg.Path(), "internal/obs") {
		return // the registry implementation itself
	}
	var golden map[string]bool
	goldenErrReported := false
	for _, file := range pass.Files {
		// Registration sites inside package-level var declarations are
		// collected first so any other location can be flagged.
		topLevel := make(map[*ast.CallExpr]bool)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isMetricRegistration(pass, call) {
					topLevel[call] = true
				}
				return true
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isMetricRegistration(pass, call) {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !topLevel[call] {
				pass.Reportf(call.Pos(), "obs.%s outside a package-level var declaration; metrics register once at init", fn.Name())
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "obs.%s name must be a string literal so the inventory is greppable and golden-pinned", fn.Name())
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !snakeCaseRe.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name %q is not snake_case", name)
				return true
			}
			if !hasMetricPrefix(name) {
				pass.Reportf(lit.Pos(), "metric name %q lacks a known subsystem prefix (%s)", name, strings.Join(metricPrefixes, ", "))
			}
			if goldenPath != "" {
				if golden == nil {
					var err error
					golden, err = loadGolden(goldenPath)
					if err != nil {
						if !goldenErrReported {
							pass.Reportf(call.Pos(), "cannot read metric inventory %s: %v", goldenPath, err)
							goldenErrReported = true
						}
						golden = map[string]bool{}
					}
				}
				if len(golden) > 0 && !golden[name] {
					pass.Reportf(lit.Pos(), "metric %q is not in the golden inventory %s (add it and regenerate with `go test -run TestMetricNamesGolden -update`)", name, goldenBase(goldenPath))
				}
			}
			return true
		})
	}
}

func goldenBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func hasMetricPrefix(name string) bool {
	for _, p := range metricPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// isMetricRegistration reports whether call invokes one of the obs
// package-level default-registry constructors.
func isMetricRegistration(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || isMethod(fn) {
		return false
	}
	return metricConstructors[fn.Name()] && pathMatches(fn.Pkg().Path(), "internal/obs")
}
