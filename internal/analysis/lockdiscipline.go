package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces the mutex conventions of the library
// packages, where every critical section follows one of two shapes —
// `mu.Lock(); defer mu.Unlock()` or a same-block `mu.Lock()` …
// `mu.Unlock()` pair (with optional early unlock+continue/return
// branches, each releasing before it jumps). Checked per function
// scope (closures are independent scopes):
//
//   - an acquire (Lock/RLock) must be released on the same receiver
//     path in the same statement block, by defer or explicitly;
//   - a return / break / continue between an acquire and its same-block
//     release must itself be preceded by a release in its own block
//     (otherwise the jump leaks the critical section);
//   - a second Lock on the same receiver path while the first is still
//     held (no intervening Unlock; a deferred Unlock releases only at
//     function exit) is a self-deadlock;
//   - copying a value whose type contains a sync.Mutex/RWMutex
//     (assignment, or passing by value) detaches the copy's lock state.
//
// The checks are block-structured, not a full CFG: acquires released on
// a different path through a helper, or conditionally in one branch
// only, need an explicit `//lint:allow lockdiscipline -- <reason>`.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "every mutex acquire pairs with a same-block or deferred release; no double-lock or mutex copies",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	facts := pass.Facts()
	for _, ff := range facts.Funcs {
		if ff.Decl.Body == nil {
			continue
		}
		checkLockScope(pass, facts, ff.Decl.Body)
	}
	for _, file := range pass.Files {
		checkMutexCopies(pass, file)
	}
}

// checkLockScope analyzes one function scope's blocks — pairing,
// leaky jumps and double-lock — and recurses into nested function
// literals as independent scopes.
func checkLockScope(pass *Pass, facts *PackageFacts, body *ast.BlockStmt) {
	nested := collectFuncLits(body)
	walkBlocks(body, nested, func(list []ast.Stmt) {
		checkStmtList(pass, facts, list, nested)
	})
	checkDoubleLock(pass, facts, body, nested)
	for lit := range nested {
		checkLockScope(pass, facts, lit.Body)
	}
}

// collectFuncLits returns the function literals directly inside body,
// excluding literals nested inside other literals (those are collected
// when their parent scope is analyzed).
func collectFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	lits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits[lit] = true
			return false
		}
		return true
	})
	return lits
}

// walkBlocks applies fn to every statement list in body, skipping the
// bodies of the given nested function literals.
func walkBlocks(body *ast.BlockStmt, skip map[*ast.FuncLit]bool, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if skip[node] {
				return false
			}
		case *ast.BlockStmt:
			fn(node.List)
		case *ast.CommClause:
			fn(node.Body)
		case *ast.CaseClause:
			fn(node.Body)
		}
		return true
	})
}

// checkStmtList runs the pairing and leaky-jump checks over one
// statement list.
func checkStmtList(pass *Pass, facts *PackageFacts, list []ast.Stmt, skip map[*ast.FuncLit]bool) {
	for i, stmt := range list {
		op, ok := stmtLockOp(facts, stmt)
		if !ok || !op.Acquires() {
			continue
		}
		release := op.Release()
		deferred, explicitAt := false, -1
		for j := i + 1; j < len(list); j++ {
			if ds, ok := list[j].(*ast.DeferStmt); ok {
				if dop, ok := facts.LockOps[ds.Call]; ok && dop.Path == op.Path && dop.Method == release {
					deferred = true
					break
				}
			}
			if rop, ok := stmtLockOp(facts, list[j]); ok && rop.Path == op.Path && rop.Method == release {
				explicitAt = j // keep scanning: the last release bounds the section
			}
		}
		switch {
		case deferred:
			// `Lock(); defer Unlock()` covers every path out.
		case explicitAt < 0:
			pass.Reportf(op.Call.Pos(), "%s.%s() has no matching %s on this path; release with `defer %s.%s()` or in the same block", op.Path, op.Method, release, op.Path, release)
		default:
			reportLeakyJumps(pass, facts, list[i+1:explicitAt], op, skip)
		}
	}
}

// stmtLockOp resolves a statement to the mutex op it consists of, when
// it is a bare `path.Lock()`-style expression statement.
func stmtLockOp(facts *PackageFacts, stmt ast.Stmt) (LockOp, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return LockOp{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return LockOp{}, false
	}
	op, ok := facts.LockOps[call]
	return op, ok
}

// reportLeakyJumps scans the statements between an acquire and its
// same-block release for return/break/continue jumps that exit the
// critical section without releasing first in their own block.
func reportLeakyJumps(pass *Pass, facts *PackageFacts, between []ast.Stmt, op LockOp, skip map[*ast.FuncLit]bool) {
	release := op.Release()
	for _, stmt := range between {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && skip[lit] {
				return false
			}
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			released := false
			for _, s := range block.List {
				if rop, ok := stmtLockOp(facts, s); ok && rop.Path == op.Path && rop.Method == release {
					released = true
				}
				switch jump := s.(type) {
				case *ast.ReturnStmt:
					if !released {
						pass.Reportf(jump.Pos(), "return while %s is held by the %s() above; release before returning or use defer", op.Path, op.Method)
					}
				case *ast.BranchStmt:
					if !released && jump.Tok.String() != "goto" && jump.Label == nil {
						pass.Reportf(jump.Pos(), "%s while %s is held by the %s() above; release before jumping out of the critical section", jump.Tok, op.Path, op.Method)
					}
				}
			}
			return true
		})
	}
}

// checkDoubleLock walks one scope's mutex ops in source order and
// reports an exclusive Lock on a path that is already held. A deferred
// Unlock releases only at function exit, so Lock-defer-Unlock-Lock is a
// self-deadlock too. The scan is linear (branch-insensitive): locks
// taken in mutually exclusive branches need an allow comment.
func checkDoubleLock(pass *Pass, facts *PackageFacts, body *ast.BlockStmt, skip map[*ast.FuncLit]bool) {
	type event struct {
		op       LockOp
		deferred bool
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if skip[node] {
				return false
			}
		case *ast.DeferStmt:
			if op, ok := facts.LockOps[node.Call]; ok {
				events = append(events, event{op: op, deferred: true})
				return false
			}
		case *ast.CallExpr:
			if op, ok := facts.LockOps[node]; ok {
				events = append(events, event{op: op})
			}
		}
		return true
	})
	held := make(map[string]LockOp)
	for _, ev := range events {
		switch {
		case ev.op.Method == "Lock" && !ev.deferred:
			if prev, ok := held[ev.op.Path]; ok {
				pass.Reportf(ev.op.Call.Pos(), "%s.Lock() while already held by the Lock() at %s; this deadlocks (sync.Mutex is not reentrant)", ev.op.Path, pass.Fset.Position(prev.Call.Pos()))
				continue
			}
			held[ev.op.Path] = ev.op
		case ev.op.Method == "Unlock" && !ev.deferred:
			delete(held, ev.op.Path)
			// A deferred Unlock releases only at scope exit: the path stays
			// held for the rest of the scan, so a re-acquire is reported.
		}
	}
}

// checkMutexCopies flags assignments and by-value calls that copy a
// value whose type contains a mutex.
func checkMutexCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				if copiesMutex(pass.TypesInfo, rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a mutex; keep a pointer instead", typeLabel(pass.TypesInfo, rhs))
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, node); fn == nil {
				return true // conversions and builtins
			}
			for _, arg := range node.Args {
				if copiesMutex(pass.TypesInfo, arg) {
					pass.Reportf(arg.Pos(), "call passes %s by value, which copies its mutex; pass a pointer instead", typeLabel(pass.TypesInfo, arg))
				}
			}
		}
		return true
	})
}

// copiesMutex reports whether evaluating e copies an existing
// mutex-containing value: the expression reads storage (identifier,
// field, element, dereference) and its type holds a mutex by value.
// Fresh values (composite literals, calls) and pointers are fine.
func copiesMutex(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil || !tv.IsValue() {
		return false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return typeHasMutex(tv.Type)
}

func typeLabel(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[ast.Unparen(e)]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "a value"
}
