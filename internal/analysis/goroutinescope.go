package analysis

// GoroutineScope requires every goroutine launched in the scoped
// library packages to be collected or cancellation-scoped by its
// launching function. The fleet and batch pipelines promise structured
// concurrency — a Step or a batch call returns only when the work it
// fanned out has been joined, which is what makes their results
// deterministic and their error paths sound — and an unjoined `go`
// breaks that silently (leaked workers keep touching scratch that the
// next call reuses).
//
// A launch is accepted when any of the following holds:
//
//   - the goroutine body signals a sync.WaitGroup (Done) and the
//     launching function waits on one (Wait);
//   - the body sends on (or closes) a channel and the launching
//     function receives from one;
//   - the body consults a context.Context (Done/Err/Deadline), so the
//     caller's cancellation scopes its lifetime;
//   - a non-literal launch (`go f(x)`) passes a context.Context to the
//     callee, or the launching function itself waits/receives.
//
// Deliberate fire-and-forget goroutines (process-lifetime servers)
// carry `//lint:allow goroutinescope -- <reason>`.
var GoroutineScope = &Analyzer{
	Name: "goroutinescope",
	Doc:  "goroutines must be joined (WaitGroup/channel) or ctx-scoped within the launching function",
	Run:  runGoroutineScope,
}

func runGoroutineScope(pass *Pass) {
	facts := pass.Facts()
	for _, ff := range facts.Funcs {
		for _, launch := range ff.Launches {
			if launch.Body == nil {
				// Named function or method: the body is out of reach, so
				// accept a forwarded ctx or function-level join evidence.
				if launch.PassesCtx || ff.WaitsWaitGroup || ff.ReceivesChan {
					continue
				}
				pass.Reportf(launch.Stmt.Pos(), "goroutine is neither joined nor cancellation-scoped: pass the callee a ctx it selects on, or collect it with a WaitGroup or channel in this function")
				continue
			}
			joined := (launch.SignalsWaitGroup && ff.WaitsWaitGroup) ||
				(launch.SendsChan && ff.ReceivesChan) ||
				launch.CtxAware
			if !joined {
				pass.Reportf(launch.Stmt.Pos(), "goroutine is neither joined nor cancellation-scoped: collect it with a WaitGroup or channel in this function, or select on a ctx in its body")
			}
		}
	}
}
