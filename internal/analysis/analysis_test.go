package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestCollectAllows(t *testing.T) {
	const src = `package p

// a malformed allow: no reason
//lint:allow determinism
func f() {}

//lint:allow determinism -- a proper reason
func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	allows, bad := collectAllows(fset, []*ast.File{f})
	if len(bad) != 1 {
		t.Fatalf("got %d malformed-allow diagnostics, want 1: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "lintallow" || !strings.Contains(bad[0].Message, "malformed") {
		t.Errorf("unexpected malformed-allow diagnostic: %s", bad[0])
	}

	// The well-formed allow (line 7) suppresses its own line and line 8.
	d := Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: 8}, Analyzer: "determinism"}
	if !allows.suppress(&d) || !d.Suppressed {
		t.Errorf("line below a well-formed allow is not suppressed")
	}
	// The malformed allow (line 4) suppresses nothing.
	d = Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: 5}, Analyzer: "determinism"}
	if allows.suppress(&d) {
		t.Errorf("malformed allow suppressed a diagnostic")
	}
	// Suppression is per-analyzer.
	d = Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: 8}, Analyzer: "ctxfirst"}
	if allows.suppress(&d) {
		t.Errorf("allow for determinism suppressed a ctxfirst diagnostic")
	}

	// The claimed record is no longer stale; an unclaimed one naming an
	// analyzer in the run set is.
	stale := allows.stale(map[string]bool{"determinism": true})
	if len(stale) != 0 {
		t.Errorf("claimed allow reported stale: %v", stale)
	}
	allows2, _ := collectAllows(fset, []*ast.File{f})
	stale = allows2.stale(map[string]bool{"determinism": true})
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "stale") {
		t.Errorf("unclaimed allow not reported stale: %v", stale)
	}
	// An allow naming an analyzer outside the run set is not judged.
	if got := allows2.stale(map[string]bool{"ctxfirst": true}); len(got) != 0 {
		t.Errorf("allow for an analyzer that did not run reported stale: %v", got)
	}
}

func TestDiagnosticOrdering(t *testing.T) {
	// RunAnalyzers sorts by file, line, column, analyzer; exercise the
	// comparator through a tiny in-memory fixture with two analyzers that
	// report in reverse order.
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(moduleDir, "testdata/src/determinism")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, Determinism)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
	if len(diags) == 0 {
		t.Fatal("determinism fixture produced no diagnostics")
	}
}
