package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags wall-clock and ambient-randomness escapes in library
// code. The reproduction's headline claims — bit-for-bit engine
// equivalence, RNG-stream-identical resilient training, fault injection
// on a virtual clock — all assume that simulation state never reads
// time.Now and that every stochastic draw flows through an injected
// seed (internal/stats.RNG). Flagged:
//
//   - time.Now, time.Since and time.Until (implicit time.Now)
//   - package-level math/rand and math/rand/v2 functions (the global,
//     process-seeded generator)
//   - rand.New seeded from a constant literal or from the wall clock
//     instead of an injected seed value
//
// Wall-clock observability (latency histograms) is the sanctioned
// exception — annotate those sites with
// `//lint:allow determinism -- <reason>`.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/time.Since and global math/rand in deterministic library code",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || isMethod(fn) {
				// Methods (e.g. (*rand.Rand).Intn, (*stats.RNG).Float64)
				// are fine: the receiver carries an injected seed.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now":
					pass.Reportf(call.Pos(), "call to time.Now in deterministic library code; use the link's virtual clock or inject a clock (wall-clock metrics may be annotated with //lint:allow determinism -- <reason>)")
				case "Since", "Until":
					pass.Reportf(call.Pos(), "call to time.%s reads the wall clock implicitly; use the link's virtual clock or inject a clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				switch fn.Name() {
				case "New":
					if !seedIsInjected(pass, call) {
						pass.Reportf(call.Pos(), "rand.New without an injected seed; thread the seed in as a value so experiments replay from it")
					}
				case "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
					// Source constructors are judged at their rand.New
					// call site.
				default:
					pass.Reportf(call.Pos(), "call to global %s.%s uses the ambient process-seeded generator; draw from an injected internal/stats.RNG instead", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// seedIsInjected decides whether a rand.New call derives its stream from
// an injected value. The seed counts as injected when every leaf of the
// source-constructor argument is a non-constant expression (identifier,
// field, call result) — i.e. the caller threads a seed in. Constant
// literals and wall-clock reads (time.Now().UnixNano() is caught by the
// time rules too) are not injected.
func seedIsInjected(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	// rand.New(rand.NewSource(seed)): inspect the constructor argument.
	if inner, ok := arg.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass.TypesInfo, inner); fn != nil && fn.Pkg() != nil &&
			(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") {
			injected := len(inner.Args) > 0
			for _, a := range inner.Args {
				if tv, ok := pass.TypesInfo.Types[a]; ok && tv.Value != nil {
					injected = false // constant seed
				}
			}
			return injected
		}
	}
	// rand.New(src) with a source variable: assume the source was
	// constructed elsewhere from an injected seed.
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return false
	}
	_, isIdent := arg.(*ast.Ident)
	_, isSel := arg.(*ast.SelectorExpr)
	return isIdent || isSel
}
