package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context-propagation conventions of the library
// packages (PR 1 made the whole stack cancellable; this keeps it so):
//
//  1. No function may call context.Background() or context.TODO() —
//     root contexts belong to cmd/ binaries, examples and tests, never
//     to library code, where a conjured root silently detaches work
//     from the caller's cancellation.
//  2. An exported function that takes a context.Context must take it as
//     the first parameter.
//  3. An exported function that loops over context-aware work — a for/
//     range body that calls a function whose first parameter is a
//     context, or any call to time.Sleep — must itself take a
//     context.Context (first), so cancellation threads through instead
//     of being invented or ignored mid-loop.
//
// Suppress intentional exceptions with
// `//lint:allow ctxfirst -- <reason>`.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "require context-first APIs and forbid conjured root contexts in library code",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	for _, file := range pass.Files {
		// Rule 1: no conjured roots, anywhere in the file.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
				if funcIs(fn, "context", "Background") || funcIs(fn, "context", "TODO") {
					pass.Reportf(call.Pos(), "library code must not call context.%s; accept a ctx from the caller (root contexts belong to cmd/, examples and tests)", fn.Name())
				}
			}
			return true
		})

		// Rules 2 and 3: per exported function declaration.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			sig := funcSignature(pass.TypesInfo, fd)
			if sig == nil {
				continue
			}
			ctxAt := contextParamIndex(sig)
			if ctxAt > 0 {
				pass.Reportf(fd.Name.Pos(), "%s takes a context.Context but not as its first parameter", fd.Name.Name)
			}
			if ctxAt < 0 && loopsOverContextWork(pass, fd) {
				pass.Reportf(fd.Name.Pos(), "%s loops over context-aware calls (or sleeps) but takes no context.Context; add ctx as the first parameter", fd.Name.Name)
			}
		}
	}
}

// funcSignature resolves the declared function's signature.
func funcSignature(info *types.Info, fd *ast.FuncDecl) *types.Signature {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// contextParamIndex returns the index of the first context.Context
// parameter, or -1 when the signature has none.
func contextParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// loopsOverContextWork reports whether fd's body contains a for/range
// statement whose body calls a context-first function, or a call to
// time.Sleep anywhere.
func loopsOverContextWork(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch stmt := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, stmt); funcIs(fn, "time", "Sleep") {
				found = true
				return false
			}
		case *ast.ForStmt:
			if callsContextFirst(pass, stmt.Body) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if callsContextFirst(pass, stmt.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsContextFirst reports whether body contains a call to a function
// whose first parameter is a context.Context.
func callsContextFirst(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil && takesContextFirst(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}
