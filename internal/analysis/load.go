package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader failure modes, distinguishable with errors.Is so callers
// (talonlint, the fixture harness) can tell a bad invocation from a
// broken toolchain state.
var (
	// ErrNoExportData: a dependency's export data is missing from the
	// `go list -export` output, so its types cannot be imported.
	ErrNoExportData = errors.New("no export data")
	// ErrUnknownPackage: a pattern matched no buildable package.
	ErrUnknownPackage = errors.New("unknown package")
	// ErrMalformedList: `go list -json` produced output the loader
	// cannot decode.
	ErrMalformedList = errors.New("malformed go list output")
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	facts *PackageFacts // built lazily by Pass.Facts
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Error      *struct{ Err string }
}

// goList invokes the go tool from dir and decodes its JSON stream.
func goList(dir string, args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json=ImportPath,Dir,Export,GoFiles,Imports,ImportMap,Standard,Error", "-deps"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	return decodeList(out)
}

// decodeList decodes the JSON stream `go list -json` writes.
func decodeList(out []byte) ([]*listEntry, error) {
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []*listEntry
	for {
		e := new(listEntry)
		if err := dec.Decode(e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %w: %w", ErrMalformedList, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup builds the importer lookup function over the export-data
// files `go list -export` produced, honouring per-package import maps.
type exportLookup struct {
	exports map[string]string // import path -> export file
}

func newExportLookup(entries []*listEntry) *exportLookup {
	l := &exportLookup{exports: make(map[string]string, len(entries))}
	for _, e := range entries {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	return l
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("%w for %q", ErrNoExportData, path)
	}
	return os.Open(file)
}

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typeCheck parses and checks one package's files against the export
// data of its dependencies. Test files are intentionally excluded:
// the lint conventions do not apply to _test.go code.
func typeCheck(fset *token.FileSet, importPath, dir string, goFiles []string, lk *exportLookup, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Apply the package's ImportMap (vendoring/importmap indirection) on
	// top of the flat export table.
	resolve := lk
	if len(importMap) > 0 {
		mapped := &exportLookup{exports: make(map[string]string, len(lk.exports))}
		for p, f := range lk.exports {
			mapped.exports[p] = f
		}
		for from, to := range importMap {
			if f, ok := lk.exports[to]; ok {
				mapped.exports[from] = f
			}
		}
		resolve = mapped
	}
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", resolve.lookup),
		Error:    func(error) {}, // collect the first hard error below
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Load lists, parses and type-checks the packages matching patterns
// (relative to dir; empty dir means the current directory), returning
// only the matched packages — dependencies are consumed as export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// -deps lists the whole closure; the matched packages are exactly the
	// non-Standard entries inside the module (deps from other modules do
	// not occur: the module is dependency-free).
	lk := newExportLookup(entries)
	var pkgs []*Package
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.Standard {
			continue
		}
		// `go list -e` reports a pattern that matches nothing as an entry
		// with Error set and no files — surface it rather than silently
		// analyzing zero packages.
		if e.Error != nil && len(e.GoFiles) == 0 {
			return nil, fmt.Errorf("go list: %w %s: %s", ErrUnknownPackage, e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		pkg, err := typeCheck(fset, e.ImportPath, e.Dir, e.GoFiles, lk, e.ImportMap)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir type-checks a single directory of Go files that is not part
// of the module build (an analysistest fixture package). Imports are
// resolved by export data listed from moduleDir, so fixtures may import
// both the standard library and talon's own packages.
func LoadDir(moduleDir, fixtureDir string) (*Package, error) {
	dirEntries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, de := range dirEntries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			goFiles = append(goFiles, de.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	sort.Strings(goFiles)

	// Discover the fixture's imports so `go list` can produce export
	// data for exactly that closure.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[p] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	lk := &exportLookup{exports: make(map[string]string)}
	if len(imports) > 0 {
		entries, err := goList(moduleDir, imports...)
		if err != nil {
			return nil, err
		}
		lk = newExportLookup(entries)
	}
	return typeCheck(token.NewFileSet(), filepath.Base(fixtureDir), fixtureDir, goFiles, lk, nil)
}
