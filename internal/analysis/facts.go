package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The fact layer: one type-aware inspection pass per package whose
// results — per-function summaries of lock acquisitions, atomic vs.
// plain struct-field accesses, goroutine launches with their join
// evidence, and //talon:noalloc directives — are shared by the
// concurrency- and allocation-safety analyzers (lockdiscipline,
// atomicmix, goroutinescope, noalloc). Each analyzer still walks the
// syntax it judges, but every type-resolution question ("is this call a
// mutex Lock?", "which field does this atomic call guard?", "does this
// goroutine body signal a WaitGroup?") is answered once, here.

// NoAllocDirective is the comment directive that turns the noalloc
// analyzer on for one function.
const NoAllocDirective = "//talon:noalloc"

// LockOp is one mutex operation (Lock/Unlock/RLock/RUnlock) on a
// sync.Mutex or sync.RWMutex receiver.
type LockOp struct {
	Call *ast.CallExpr
	// Path is the canonical rendering of the receiver expression
	// ("m.stepMu", "sh.mu", "m.shards[i].mu"); two ops with equal paths
	// are treated as the same mutex by the discipline checks.
	Path string
	// Method is Lock, Unlock, RLock or RUnlock.
	Method string
}

// Acquires reports whether the op takes the mutex (Lock or RLock).
func (op LockOp) Acquires() bool { return op.Method == "Lock" || op.Method == "RLock" }

// Release returns the unlock method that pairs with an acquire
// ("Unlock" for Lock, "RUnlock" for RLock).
func (op LockOp) Release() string {
	if op.Method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// GoLaunch is one goroutine launch and the join/scope evidence the fact
// pass extracted from it.
type GoLaunch struct {
	Stmt *ast.GoStmt
	// Body is the launched func literal's body, nil for `go f(x)` calls
	// on named functions or methods.
	Body *ast.BlockStmt
	// SignalsWaitGroup: the body calls Done on a sync.WaitGroup.
	SignalsWaitGroup bool
	// SendsChan: the body sends on or closes a channel.
	SendsChan bool
	// CtxAware: the body consults a context.Context (Done/Err/Deadline),
	// so cancellation scopes the goroutine even without a local join.
	CtxAware bool
	// PassesCtx: a non-literal launch forwards a context.Context
	// argument to the callee.
	PassesCtx bool
}

// FuncFacts summarizes one function declaration.
type FuncFacts struct {
	Decl *ast.FuncDecl
	// NoAlloc is the //talon:noalloc directive attached to the
	// declaration's doc comment, nil when absent.
	NoAlloc *ast.Comment
	// Locks lists every mutex op in the declaration's subtree (closures
	// included) in source order.
	Locks []LockOp
	// Launches lists every goroutine launch in the subtree.
	Launches []GoLaunch
	// WaitsWaitGroup: the function (outside launched bodies) calls Wait
	// on a sync.WaitGroup.
	WaitsWaitGroup bool
	// ReceivesChan: the function (outside launched bodies) receives from
	// a channel — a unary <-, a range over a channel, or a select with a
	// receive case.
	ReceivesChan bool
}

// PackageFacts is the shared fact set for one package.
type PackageFacts struct {
	// Funcs holds the per-function summaries in declaration order,
	// indexed by declaration for the analyzers that walk files.
	Funcs   []*FuncFacts
	ByDecl  map[*ast.FuncDecl]*FuncFacts
	LockOps map[*ast.CallExpr]LockOp

	// AtomicFields maps a struct field to the positions where its
	// address is passed to a sync/atomic function; PlainFields maps a
	// field to the positions of its other (non-atomic) reads and writes.
	// Composite-literal keys are excluded from PlainFields:
	// initialization before publication is the sanctioned pattern.
	AtomicFields map[*types.Var][]token.Pos
	PlainFields  map[*types.Var][]token.Pos

	// StrayNoAlloc lists //talon:noalloc comments that are not attached
	// to a function declaration's doc comment and therefore bind
	// nothing.
	StrayNoAlloc []*ast.Comment
}

// Facts returns the package's shared fact set, computing it on first
// use and caching it on the Package so the four consumers pay for one
// inspection pass between them.
func (p *Pass) Facts() *PackageFacts {
	if p.pkg.facts == nil {
		p.pkg.facts = buildFacts(p.TypesInfo, p.Files)
	}
	return p.pkg.facts
}

func buildFacts(info *types.Info, files []*ast.File) *PackageFacts {
	pf := &PackageFacts{
		ByDecl:       make(map[*ast.FuncDecl]*FuncFacts),
		LockOps:      make(map[*ast.CallExpr]LockOp),
		AtomicFields: make(map[*types.Var][]token.Pos),
		PlainFields:  make(map[*types.Var][]token.Pos),
	}
	for _, file := range files {
		docComments := make(map[*ast.Comment]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ff := &FuncFacts{Decl: fd}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docComments[c] = true
					if isNoAllocDirective(c.Text) {
						ff.NoAlloc = c
					}
				}
			}
			if fd.Body != nil {
				summarizeBody(info, fd.Body, ff, pf)
			}
			pf.Funcs = append(pf.Funcs, ff)
			pf.ByDecl[fd] = ff
		}
		// Directives outside function doc comments bind nothing; surface
		// them so a misplaced annotation cannot silently disable a check.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isNoAllocDirective(c.Text) && !docComments[c] {
					pf.StrayNoAlloc = append(pf.StrayNoAlloc, c)
				}
			}
		}
		collectFieldAccesses(info, file, pf)
	}
	return pf
}

func isNoAllocDirective(text string) bool {
	return text == NoAllocDirective || strings.HasPrefix(text, NoAllocDirective+" ")
}

// summarizeBody walks one declaration body collecting lock ops,
// goroutine launches and function-level join evidence. Statements
// inside launched goroutine bodies contribute to the launch's evidence,
// not the function's.
func summarizeBody(info *types.Info, body *ast.BlockStmt, ff *FuncFacts, pf *PackageFacts) {
	launched := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		launch := GoLaunch{Stmt: gs}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			launch.Body = lit.Body
			launched[lit.Body] = true
			summarizeGoroutine(info, lit.Body, &launch)
		} else {
			for _, arg := range gs.Call.Args {
				if tv, ok := info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
					launch.PassesCtx = true
				}
			}
		}
		ff.Launches = append(ff.Launches, launch)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if launched[n] {
			return false // goroutine bodies carry their own evidence
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if op, ok := mutexOp(info, node); ok {
				ff.Locks = append(ff.Locks, op)
				pf.LockOps[node] = op
			}
			if isWaitGroupMethod(info, node, "Wait") {
				ff.WaitsWaitGroup = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				ff.ReceivesChan = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ff.ReceivesChan = true
				}
			}
		}
		return true
	})
	// Lock ops inside goroutine bodies still belong to the package-wide
	// index (lockdiscipline analyzes closure scopes independently).
	for i := range ff.Launches {
		if b := ff.Launches[i].Body; b != nil {
			ast.Inspect(b, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := mutexOp(info, call); ok {
						ff.Locks = append(ff.Locks, op)
						pf.LockOps[call] = op
					}
				}
				return true
			})
		}
	}
}

// summarizeGoroutine extracts join/scope evidence from a launched func
// literal's body.
func summarizeGoroutine(info *types.Info, body *ast.BlockStmt, launch *GoLaunch) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt:
			launch.SendsChan = true
		case *ast.CallExpr:
			if isWaitGroupMethod(info, node, "Done") {
				launch.SignalsWaitGroup = true
			}
			if isContextMethod(info, node) {
				launch.CtxAware = true
			}
			if fn := calleeFunc(info, node); fn == nil && len(node.Args) == 1 {
				// close(ch) hands the channel back to a collector.
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						launch.SendsChan = true
					}
				}
			}
		}
		return true
	})
}

// mutexOp resolves call as a Lock/Unlock/RLock/RUnlock method call on a
// sync.Mutex or sync.RWMutex receiver.
func mutexOp(info *types.Info, call *ast.CallExpr) (LockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return LockOp{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMutex(tv.Type) {
		return LockOp{}, false
	}
	return LockOp{Call: call, Path: exprPath(sel.X), Method: sel.Sel.Name}, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// typeHasMutex reports whether t contains a sync.Mutex or sync.RWMutex
// by value (directly, or in a struct field or array element, at any
// depth).
func typeHasMutex(t types.Type) bool {
	return typeHasMutexRec(t, make(map[types.Type]bool))
}

func typeHasMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncMutex(t) {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasMutexRec(u.Elem(), seen)
	}
	return false
}

// isWaitGroupMethod reports whether call invokes the named method on a
// sync.WaitGroup receiver.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isContextMethod reports whether call invokes Done, Err or Deadline on
// a context.Context value.
func isContextMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Done", "Err", "Deadline":
	default:
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && tv.Type != nil && isContextType(tv.Type)
}

// collectFieldAccesses fills AtomicFields and PlainFields for one file.
// An access is atomic when the field's address is an argument of a
// sync/atomic package-level call; every other selector use of the field
// is plain. Composite-literal keys (initialization) are excluded.
func collectFieldAccesses(info *types.Info, file *ast.File, pf *PackageFacts) {
	consumed := make(map[*ast.SelectorExpr]bool) // selectors used atomically
	litKeys := make(map[*ast.Ident]bool)         // composite-literal field keys
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						litKeys[id] = true
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, node)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || isMethod(fn) {
				return true
			}
			for _, arg := range node.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := selectedField(info, sel); f != nil {
					pf.AtomicFields[f] = append(pf.AtomicFields[f], sel.Pos())
					consumed[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || consumed[sel] || litKeys[sel.Sel] {
			return true
		}
		if f := selectedField(info, sel); f != nil {
			pf.PlainFields[f] = append(pf.PlainFields[f], sel.Pos())
		}
		return true
	})
}

// selectedField resolves a selector to the struct field it denotes, or
// nil for methods, package selectors and qualified identifiers.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}

// exprPath renders a receiver expression canonically: selector chains
// keep their spelling ("m.shards[i].mu"), everything else falls back to
// a positional placeholder so distinct complex expressions never
// collide.
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprPath(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprPath(x.X) + "[" + exprPath(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprPath(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return "&" + exprPath(x.X)
		}
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprPath(x.Fun) + "(…)"
	}
	return fmt.Sprintf("expr@%d", e.Pos())
}
