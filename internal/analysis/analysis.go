// Package analysis is talon's project-specific static-analysis suite: a
// minimal, dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus four analyzers
// that machine-check the conventions the reproduction's headline claims
// rest on — determinism (no wall clocks or global randomness in library
// code), ctxfirst (context-first APIs, no conjured root contexts),
// metricname (snake_case obs metric names pinned by a golden inventory)
// and senterr (sentinel errors matched with errors.Is, wrapping with %w).
//
// The x/tools module is intentionally not a dependency: the suite loads
// packages with `go list -export` and type-checks them through the
// stdlib's gc export-data importer, so `go run ./cmd/talonlint ./...`
// works from a bare toolchain with no module downloads.
//
// A finding is suppressed by annotating the offending line (or the line
// directly above it) with
//
//	//lint:allow <analyzer> -- <reason>
//
// The reason is mandatory; a bare allow comment is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on one package through pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through an analyzer, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	analyzer *Analyzer
	diags    []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRe matches a well-formed suppression comment.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\s+--\s+\S`)

// allowAnyRe matches anything that looks like an attempted suppression.
var allowAnyRe = regexp.MustCompile(`^//lint:allow\b`)

// allowSet indexes suppressions by file and line.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans the comments of files for //lint:allow markers. A
// marker suppresses the named analyzer on its own line and on the line
// below it (so both trailing and preceding-line comments work).
// Malformed markers (missing the mandatory "-- reason") are returned as
// diagnostics under the pseudo-analyzer "lintallow".
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !allowAnyRe.MatchString(text) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lintallow",
						Message:  "malformed //lint:allow comment: want `//lint:allow <analyzer> -- <reason>`",
					})
					continue
				}
				name := m[1]
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					allows[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = make(map[string]bool)
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return allows, bad
}

func (a allowSet) allowed(d Diagnostic) bool {
	byLine, ok := a[d.Pos.Filename]
	if !ok {
		return false
	}
	return byLine[d.Pos.Line][d.Analyzer]
}

// RunAnalyzers applies analyzers to a loaded package and returns the
// surviving diagnostics (allow-comment suppressions applied), sorted by
// position. Malformed allow comments are always reported.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	allows, bad := collectAllows(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic(nil), bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			analyzer:  a,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if !allows.allowed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared type-resolution helpers used by the analyzers ---

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed variables, conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel := info.Selections[fn]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// funcIs reports whether fn is the named function of the package whose
// import path ends in pkgSuffix (exact match for stdlib paths).
func funcIs(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	return pathMatches(fn.Pkg().Path(), pkgSuffix)
}

// pathMatches reports whether path equals suffix or ends in "/"+suffix,
// so "context" matches only the stdlib package while
// "internal/obs" also matches "talon/internal/obs".
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// takesContextFirst reports whether the callee's signature declares
// context.Context as its first parameter.
func takesContextFirst(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// isErrorType reports whether t is (or trivially wraps) the error
// interface.
func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}
