// Package analysis is talon's project-specific static-analysis suite: a
// minimal, dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus eight analyzers
// that machine-check the conventions the reproduction's headline claims
// rest on — determinism (no wall clocks or global randomness in library
// code), ctxfirst (context-first APIs, no conjured root contexts),
// metricname (snake_case obs metric names pinned by a golden inventory),
// senterr (sentinel errors matched with errors.Is, wrapping with %w),
// lockdiscipline (every mutex acquire pairs with a release; no
// double-lock or mutex copies), atomicmix (a field accessed through
// sync/atomic is never touched plainly), goroutinescope (goroutines are
// joined or cancellation-scoped) and noalloc (//talon:noalloc functions
// avoid allocating constructs). The last four share a per-package fact
// layer (see facts.go) so type resolution happens once.
//
// The x/tools module is intentionally not a dependency: the suite loads
// packages with `go list -export` and type-checks them through the
// stdlib's gc export-data importer, so `go run ./cmd/talonlint ./...`
// works from a bare toolchain with no module downloads.
//
// A finding is suppressed by annotating the offending line (or the line
// directly above it) with
//
//	//lint:allow <analyzer> -- <reason>
//
// The reason is mandatory; a bare allow comment is itself reported, and
// so is a stale one — an allow naming an analyzer that ran but claimed
// no finding on its lines suppresses nothing and must be removed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on one package through pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through an analyzer, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	analyzer *Analyzer
	diags    []Diagnostic
	pkg      *Package // fact-cache host; nil for hand-built passes
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding claimed by a //lint:allow comment; such
	// findings are reported by RunAnalyzersAll (for machine-readable
	// output) and dropped by RunAnalyzers.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRe matches a well-formed suppression comment.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\s+--\s+\S`)

// allowAnyRe matches anything that looks like an attempted suppression.
var allowAnyRe = regexp.MustCompile(`^//lint:allow\b`)

// allowRecord is one //lint:allow comment. used tracks whether any
// finding was actually claimed by it, so that stale suppressions —
// comments that suppress nothing — can themselves be reported.
type allowRecord struct {
	analyzer string
	pos      token.Position
	used     bool
}

// allowSet indexes suppression records by file and line. The same
// record is registered on the comment's own line and the line below it
// (so both trailing and preceding-line comments work), and the two
// entries share used-state.
type allowSet struct {
	byLine  map[string]map[int][]*allowRecord
	records []*allowRecord
}

// collectAllows scans the comments of files for //lint:allow markers.
// Malformed markers (missing the mandatory "-- reason") are returned as
// diagnostics under the pseudo-analyzer "lintallow".
func collectAllows(fset *token.FileSet, files []*ast.File) (*allowSet, []Diagnostic) {
	allows := &allowSet{byLine: make(map[string]map[int][]*allowRecord)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !allowAnyRe.MatchString(text) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lintallow",
						Message:  "malformed //lint:allow comment: want `//lint:allow <analyzer> -- <reason>`",
					})
					continue
				}
				rec := &allowRecord{analyzer: m[1], pos: pos}
				allows.records = append(allows.records, rec)
				byLine := allows.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowRecord)
					allows.byLine[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine[line] = append(byLine[line], rec)
				}
			}
		}
	}
	return allows, bad
}

// suppress marks d suppressed when an allow comment claims it, and the
// claiming record as used.
func (a *allowSet) suppress(d *Diagnostic) bool {
	for _, rec := range a.byLine[d.Pos.Filename][d.Pos.Line] {
		if rec.analyzer == d.Analyzer {
			rec.used = true
			d.Suppressed = true
			return true
		}
	}
	return false
}

// stale returns a "lintallow" diagnostic for every unused record naming
// an analyzer in ran: the comment suppresses nothing, so either the
// finding it excused is gone (remove the comment) or the analyzer name
// is wrong (fix it). Records naming analyzers outside the run set are
// left alone — this invocation cannot judge them.
func (a *allowSet) stale(ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, rec := range a.records {
		if rec.used || !ran[rec.analyzer] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      rec.pos,
			Analyzer: "lintallow",
			Message:  fmt.Sprintf("stale //lint:allow %s: the comment suppresses no finding; remove it", rec.analyzer),
		})
	}
	return diags
}

// RunAnalyzers applies analyzers to a loaded package and returns the
// surviving diagnostics (allow-comment suppressions applied), sorted by
// position. Malformed and stale allow comments are always reported.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, d := range RunAnalyzersAll(pkg, analyzers...) {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}
	return diags
}

// RunAnalyzersAll is RunAnalyzers without the suppression filter: every
// finding is returned, with those claimed by a //lint:allow comment
// carrying Suppressed — the shape machine-readable output wants.
func RunAnalyzersAll(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	allows, bad := collectAllows(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic(nil), bad...)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			analyzer:  a,
			pkg:       pkg,
		}
		a.Run(pass)
		for i := range pass.diags {
			d := pass.diags[i]
			allows.suppress(&d)
			diags = append(diags, d)
		}
	}
	diags = append(diags, allows.stale(ran)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared type-resolution helpers used by the analyzers ---

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed variables, conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel := info.Selections[fn]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// funcIs reports whether fn is the named function of the package whose
// import path ends in pkgSuffix (exact match for stdlib paths).
func funcIs(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	return pathMatches(fn.Pkg().Path(), pkgSuffix)
}

// pathMatches reports whether path equals suffix or ends in "/"+suffix,
// so "context" matches only the stdlib package while
// "internal/obs" also matches "talon/internal/obs".
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// takesContextFirst reports whether the callee's signature declares
// context.Context as its first parameter.
func takesContextFirst(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// isErrorType reports whether t is (or trivially wraps) the error
// interface.
func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}
