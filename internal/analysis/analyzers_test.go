package analysis

import (
	"path/filepath"
	"testing"
)

func TestDeterminism(t *testing.T) {
	RunFixture(t, Determinism, "determinism")
}

func TestCtxFirst(t *testing.T) {
	RunFixture(t, CtxFirst, "ctxfirst")
}

func TestMetricName(t *testing.T) {
	golden := filepath.Join("testdata", "src", "metricname", "metric_names.golden")
	RunFixture(t, NewMetricName(golden), "metricname")
}

func TestMetricNameWithoutGolden(t *testing.T) {
	// goldenPath == "" disables the inventory cross-check, so the
	// golden-pinning wants in the fixture must NOT fire. Run the analyzer
	// directly and assert the inventory findings are absent.
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(moduleDir, filepath.Join("testdata", "src", "metricname"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAnalyzers(pkg, NewMetricName("")) {
		if containsStr(d.Message, "golden inventory") {
			t.Errorf("inventory check ran with empty goldenPath: %s", d)
		}
	}
}

func TestSentErr(t *testing.T) {
	RunFixture(t, SentErr, "senterr")
}

func TestLockDiscipline(t *testing.T) {
	RunFixture(t, LockDiscipline, "lockdiscipline")
}

func TestAtomicMix(t *testing.T) {
	RunFixture(t, AtomicMix, "atomicmix")
}

func TestGoroutineScope(t *testing.T) {
	RunFixture(t, GoroutineScope, "goroutinescope")
}

func TestNoAlloc(t *testing.T) {
	RunFixture(t, NoAlloc, "noalloc")
}

func TestFactsSharedAcrossAnalyzers(t *testing.T) {
	// The four concurrency/allocation analyzers share one fact pass per
	// package: the cache lives on the Package, so running them together
	// must reuse the pointer rather than rebuild.
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(moduleDir, filepath.Join("testdata", "src", "atomicmix"))
	if err != nil {
		t.Fatal(err)
	}
	RunAnalyzersAll(pkg, LockDiscipline, AtomicMix, GoroutineScope, NoAlloc)
	first := pkg.facts
	if first == nil {
		t.Fatal("fact layer not built by the analyzer run")
	}
	RunAnalyzersAll(pkg, AtomicMix)
	if pkg.facts != first {
		t.Error("fact layer rebuilt instead of reused")
	}
}

func containsStr(s, sub string) bool { return indexOf(s, sub) >= 0 }
