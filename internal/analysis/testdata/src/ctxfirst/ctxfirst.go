// Package ctxfirst is the analysistest fixture for the ctxfirst
// analyzer.
package ctxfirst

import (
	"context"
	"time"
)

// Probe stands in for one context-aware unit of work.
func Probe(ctx context.Context, sector int) error {
	return ctx.Err()
}

// conjured roots are flagged even in unexported helpers.
func conjure() context.Context {
	_ = context.TODO()         // want "must not call context.TODO"
	return context.Background() // want "must not call context.Background"
}

// SweepWrongOrder takes a context, but not first.
func SweepWrongOrder(sectors []int, ctx context.Context) error { // want "takes a context.Context but not as its first parameter"
	for _, s := range sectors {
		if err := Probe(ctx, s); err != nil {
			return err
		}
	}
	return nil
}

// SweepNoContext loops over context-aware calls without accepting one.
func SweepNoContext(sectors []int) { // want "loops over context-aware calls"
	for _, s := range sectors {
		_ = Probe(context.Background(), s) // want "must not call context.Background"
	}
}

// Settle sleeps, so it must thread cancellation through.
func Settle() { // want "loops over context-aware calls"
	time.Sleep(time.Millisecond)
}

// Sweep is the conforming shape: context first, threaded into the loop.
func Sweep(ctx context.Context, sectors []int) error {
	for _, s := range sectors {
		if err := Probe(ctx, s); err != nil {
			return err
		}
	}
	return nil
}

// Mean loops over pure math; no context needed.
func Mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// unexportedSweep is internal plumbing; rules 2–3 only bind the API
// surface (rule 1 still applies, see conjure above).
func unexportedSweep(sectors []int) {
	for _, s := range sectors {
		_ = Probe(nil, s)
	}
}

// SettleAllowed documents a sanctioned blocking wait: the annotation on
// the line above the declaration suppresses the finding reported at the
// function name.
//
//lint:allow ctxfirst -- hardware settle time is not cancellable
func SettleAllowed() {
	time.Sleep(time.Millisecond)
}
