// Package metricname is the analysistest fixture for the metricname
// analyzer. Its golden inventory lives next to it in
// metric_names.golden.
package metricname

import "talon/internal/obs"

// Conforming registrations: package-level vars, snake_case literals,
// known prefixes, all present in the fixture golden inventory.
var (
	probes   = obs.NewCounter("core_fixture_probes_total", "probes issued")
	depth    = obs.NewGauge("wil_fixture_queue_depth", "queue depth")
	snr      = obs.NewFloatGauge("eval_fixture_snr_db", "last SNR")
	latency  = obs.NewHistogram("trainer_fixture_latency_seconds", "latency", nil)
	faults   = obs.NewCounter("fault_fixture_injected_total", "faults injected")
	firmware = obs.NewCounter("nexmon_fixture_patches_total", "patches applied")
)

// Violations, one per rule.
var (
	camel    = obs.NewCounter("core_fixtureCamelCase", "camel")         // want "not snake_case"
	noPrefix = obs.NewCounter("beam_switches_total", "no prefix")       // want "lacks a known subsystem prefix" "not in the golden inventory"
	missing  = obs.NewCounter("core_fixture_unpinned_total", "missing") // want "not in the golden inventory"
)

var dynamicName = "core_fixture_dynamic_total"

// Non-literal names defeat grep and the golden cross-check.
var dynamic = obs.NewCounter(dynamicName, "dynamic") // want "name must be a string literal"

// Registration at call time re-registers per invocation.
func register() *obs.Counter {
	return obs.NewCounter("core_fixture_probes_total", "probes issued") // want "outside a package-level var declaration"
}

// The allow escape hatch works here too.
//
//lint:allow metricname -- legacy dashboard name predates the prefix scheme
var legacy = obs.NewCounter("legacy_hits_total", "legacy")

func sink() {
	probes.Inc()
	depth.Set(0)
	snr.Set(0)
	latency.Observe(0)
	faults.Inc()
	firmware.Inc()
	_ = camel
	_ = noPrefix
	_ = missing
	_ = dynamic
	_ = legacy
	_ = register()
}
