// Package atomicmix is the analysistest fixture for the atomicmix
// analyzer. Manager reproduces the race shape PR 8 fixed on the fleet
// manager's virtual clock: the stepper stores `now` through
// atomic.StoreInt64 while a reader loads it as a plain field.
package atomicmix

import "sync/atomic"

type Manager struct {
	now  int64
	hits uint64
	cold int64
}

func (m *Manager) Step(epochEnd int64) {
	atomic.StoreInt64(&m.now, epochEnd)
	atomic.AddUint64(&m.hits, 1)
}

// The plain read that races with Step's atomic store.
func (m *Manager) Arrive() int64 {
	return m.now // want "field now is accessed atomically .* but plainly here"
}

// Plain writes are the same mix.
func (m *Manager) Reset() {
	m.now = 0 // want "field now is accessed atomically .* but plainly here"
	atomic.StoreUint64(&m.hits, 0)
}

// A field accessed atomically everywhere is consistent.
func (m *Manager) Hits() uint64 {
	return atomic.LoadUint64(&m.hits)
}

// A field never touched atomically may be plain everywhere.
func (m *Manager) Cold() int64 {
	m.cold++
	return m.cold
}

// Composite-literal keys are initialization before publication, not a
// mixed access.
func New(start int64) *Manager {
	return &Manager{now: start}
}

// A genuinely safe plain access needs an explicit justification.
func (m *Manager) snapshotLocked() int64 {
	//lint:allow atomicmix -- caller holds the lock that excludes every atomic writer
	return m.now
}
