// Package determinism is the analysistest fixture for the determinism
// analyzer.
package determinism

import (
	"math/rand"
	"time"
)

// Wall-clock reads are flagged in all three spellings.
func wallClock() time.Duration {
	start := time.Now() // want "call to time.Now in deterministic library code"
	var deadline time.Time
	_ = time.Until(deadline) // want "time.Until reads the wall clock implicitly"
	return time.Since(start) // want "time.Since reads the wall clock implicitly"
}

// The global, process-seeded generator is flagged.
func globalRand() float64 {
	_ = rand.Intn(64)  // want "global rand.Intn uses the ambient process-seeded generator"
	rand.Shuffle(8, func(i, j int) {}) // want "global rand.Shuffle uses the ambient process-seeded generator"
	return rand.Float64() // want "global rand.Float64 uses the ambient process-seeded generator"
}

// rand.New seeded from a constant is not an injected stream.
func constantSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "rand.New without an injected seed"
}

// rand.New with a caller-supplied seed is the sanctioned pattern:
// experiments replay from the seed value.
func injectedSeed(seed int64) *rand.Rand {
	r := rand.New(rand.NewSource(seed))
	_ = r.Float64() // methods on an injected generator are fine
	return r
}

// A source variable constructed elsewhere also counts as injected.
func injectedSource(src rand.Source) *rand.Rand {
	return rand.New(src)
}

// Annotated wall-clock observability is the sanctioned escape hatch.
func annotated() time.Time {
	//lint:allow determinism -- latency histogram needs the wall clock
	return time.Now()
}

func annotatedTrailing() time.Time {
	return time.Now() //lint:allow determinism -- latency histogram needs the wall clock
}

// An allow comment for a different analyzer does not suppress.
func wrongAnalyzer() time.Time {
	//lint:allow ctxfirst -- wrong analyzer name
	return time.Now() // want "call to time.Now in deterministic library code"
}
