// Package senterr is the analysistest fixture for the senterr analyzer.
package senterr

import (
	"errors"
	"fmt"
)

// Sentinels, in the style of core.ErrTooFewProbes.
var (
	ErrTooFew     = errors.New("too few probes")
	errDegenerate = errors.New("degenerate surface")
)

// Identity comparison silently stops matching once a call site wraps
// the sentinel.
func compare(err error) bool {
	if err == ErrTooFew { // want "sentinel error ErrTooFew compared with =="
		return true
	}
	if err != errDegenerate { // want "sentinel error errDegenerate compared with !="
		return false
	}
	return errors.Is(err, ErrTooFew) // the conforming form
}

// nil checks are not sentinel comparisons.
func nilCheck(err error) bool {
	return err != nil
}

// Local error variables are not sentinels; identity is fine.
func localCompare() bool {
	a := errors.New("a")
	b := errors.New("b")
	return a == b
}

// %v and %s sever the Unwrap chain that errors.Is walks.
func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("probe 12: %v", err) // want "wrap it with %w"
	}
	return fmt.Errorf("sector %d: %s", 3, err) // want "wrap it with %w"
}

// %w is the conforming wrap; non-error operands take any verb.
func wrapOK(err error, sector int) error {
	return fmt.Errorf("sector %d: %w", sector, err)
}

// An annotated identity comparison survives: reflect.DeepEqual-style
// exactness is occasionally the point.
func compareAllowed(err error) bool {
	//lint:allow senterr -- exact identity intended: sentinel is never wrapped here
	return err == ErrTooFew
}
