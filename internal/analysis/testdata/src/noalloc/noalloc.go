// Package noalloc is the analysistest fixture for the noalloc
// analyzer.
package noalloc

import "fmt"

type sink struct {
	buf   []int
	out   []int
	state any
}

// Reslicing the base before appending shows the backing array is
// reused: the append is hinted and clean.
//
//talon:noalloc
func hot(s *sink, vs []int) {
	s.buf = s.buf[:0]
	for _, v := range vs {
		s.buf = append(s.buf, v)
	}
}

// Appending at the call site's own reslice is equally explicit.
//
//talon:noalloc
func hotInline(s *sink, v int) {
	s.buf = append(s.buf[:0], v)
}

// An append with no reuse evidence may grow the backing array.
//
//talon:noalloc
func grow(s *sink, v int) {
	s.out = append(s.out, v) // want "unhinted append"
}

//talon:noalloc
func closures(vs []int) int {
	f := func() int { return len(vs) } // want "closure inside"
	return f()
}

//talon:noalloc
func format(err error) string {
	return fmt.Sprintf("failed: %v", err) // want "call to fmt.Sprintf"
}

//talon:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//talon:noalloc
func literals() int {
	m := map[string]int{"a": 1} // want "map literal"
	v := []int{1, 2, 3}         // want "slice literal"
	return m["a"] + v[0]
}

//talon:noalloc
func fresh() *sink {
	return &sink{} // want "&composite literal"
}

//talon:noalloc
func makes(n int) []int {
	return make([]int, n) // want "make inside"
}

//talon:noalloc
func boxAssign(s *sink, v int) {
	s.state = v // want "assignment boxes int"
}

//talon:noalloc
func boxArg(v int) {
	consume(v) // want "argument boxes int"
}

func consume(x any) { _ = x }

//talon:noalloc
func boxReturn(v int) any {
	return v // want "return boxes int"
}

// Interfaces passed through, and pointers, do not box a copy.
//
//talon:noalloc
func passThrough(s *sink, x any) {
	s.state = x
	consume(s)
}

// Unannotated functions may allocate freely.
func cold(a, b string) string {
	return a + b + fmt.Sprint(len(a))
}

// A justified allocation on a cold path carries an allow.
//
//talon:noalloc
func allowed(err error) string {
	//lint:allow noalloc -- cold error path, formatting is acceptable
	return fmt.Sprintf("failed: %v", err)
}

// The directive binds only to a function declaration's doc comment.
//
//talon:noalloc // want "misplaced //talon:noalloc"
var budget = 64
