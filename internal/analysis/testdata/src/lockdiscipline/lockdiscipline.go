// Package lockdiscipline is the analysistest fixture for the
// lockdiscipline analyzer.
package lockdiscipline

import "sync"

type store struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	n      int
	closed bool
}

// The canonical shape: Lock paired with a deferred Unlock.
func (s *store) incr() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Same-block explicit pairing is equally fine.
func (s *store) incrExplicit() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// An acquire with no release on its path leaks the lock.
func (s *store) leak() {
	s.mu.Lock() // want "has no matching Unlock on this path"
	s.n++
}

// A return between an acquire and its same-block release leaks the
// critical section.
func (s *store) earlyReturn() int {
	s.mu.Lock()
	if s.closed {
		return 0 // want "return while s.mu is held"
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// A continue that jumps out without releasing first is a leak; one that
// releases in its own block first is the sanctioned early-exit shape.
func (s *store) drain(items []int) {
	for range items {
		s.mu.Lock()
		if s.closed {
			continue // want "continue while s.mu is held"
		}
		s.n++
		s.mu.Unlock()
	}
	for range items {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		s.n++
		s.mu.Unlock()
	}
}

// Re-acquiring a held mutex self-deadlocks: sync.Mutex is not
// reentrant.
func (s *store) double() {
	s.mu.Lock()
	s.n++
	s.mu.Lock() // want "already held by the Lock"
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

// A deferred Unlock releases only at function exit, so re-acquiring
// after it is the same deadlock, and the second acquire has no release
// of its own either.
func (s *store) relockAfterDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "already held by the Lock" "has no matching Unlock"
}

// Read locks pair with RUnlock, not Unlock.
func (s *store) read() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func (s *store) wrongKind() {
	s.rw.RLock() // want "has no matching RUnlock"
	s.n = 0
	s.rw.Unlock()
}

// Copying a value that contains a mutex detaches the copy's lock state.
func snapshot(s *store) store {
	local := *s // want "copies lockdiscipline.store, which contains a mutex"
	return local
}

func readValue(s store) int { return s.n }

func callByValue(s *store) int {
	return readValue(*s) // want "passes lockdiscipline.store by value"
}

// A fresh value is construction, not a copy; pointers never copy.
func fresh() *store {
	v := store{}
	return &v
}

// A closure is its own lock scope: pairing inside it is judged there,
// and its ops do not bleed into the launcher's double-lock scan.
func (s *store) inBackground(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Add(1)
	//lint:allow goroutinescope -- fixture exercises lockdiscipline only
	go func() {
		defer wg.Done()
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
}

// A handoff pattern needs an explicit justification.
func (s *store) handoff() {
	//lint:allow lockdiscipline -- lock is released by the consumer after handoff
	s.mu.Lock()
}

// A suppression that claims nothing is itself a finding.
func (s *store) tidy() {
	//lint:allow lockdiscipline -- nothing here needs suppressing // want "stale //lint:allow lockdiscipline"
	s.mu.Lock()
	s.mu.Unlock()
}
