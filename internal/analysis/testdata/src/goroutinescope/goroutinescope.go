// Package goroutinescope is the analysistest fixture for the
// goroutinescope analyzer.
package goroutinescope

import (
	"context"
	"sync"
)

type worker struct {
	wg sync.WaitGroup
}

// WaitGroup join: every launched body signals Done and the launcher
// waits.
func (w *worker) fanOut(n int) {
	for i := 0; i < n; i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
		}()
	}
	w.wg.Wait()
}

// Channel collect: the bodies send, the launcher receives them all.
func collect(vs []int) int {
	out := make(chan int, len(vs))
	for _, v := range vs {
		go func(v int) {
			out <- v * v
		}(v)
	}
	sum := 0
	for range vs {
		sum += <-out
	}
	return sum
}

// Closing the channel counts as handing it back to a collector.
func generate(vs []int) chan int {
	out := make(chan int, len(vs))
	go func() {
		for _, v := range vs {
			out <- v
		}
		close(out)
	}()
	for v := range out {
		_ = v
	}
	return out
}

// A body that selects on ctx.Done is cancellation-scoped even without
// a local join.
func watch(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// Fire-and-forget with no join and no ctx leaks.
func leak() {
	go func() {}() // want "neither joined nor cancellation-scoped"
}

// A named-function launch is opaque: without a forwarded ctx or
// function-level join evidence it is a finding …
func (w *worker) spawn() {
	go w.run() // want "neither joined nor cancellation-scoped"
}

func (w *worker) run() {}

// … and with a forwarded ctx it is scoped.
func (w *worker) spawnCtx(ctx context.Context) {
	go w.runCtx(ctx)
}

func (w *worker) runCtx(ctx context.Context) {
	<-ctx.Done()
}

// Deliberate process-lifetime goroutines carry an allow.
func serveForever(handle func()) {
	//lint:allow goroutinescope -- process-lifetime server loop, fire-and-forget by design
	go func() {
		for {
			handle()
		}
	}()
}
