package analysis

import (
	"sort"

	"go/types"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// somewhere in the package and read or written plainly somewhere else —
// exactly the race shape PR 8 fixed on the fleet manager's virtual
// clock, where Step stored `now` through atomic.StoreInt64 while Arrive
// read it as a plain field. Such a mix is a data race the -race
// detector only catches when the interleaving actually happens; the
// type system is silent because both spellings are legal.
//
// The analyzer is package-wide: every `atomic.XxxT(&s.field, …)` call
// marks the field atomic, and every other selector access of that field
// is then a finding. Composite-literal initialization is exempt
// (construction precedes publication); a genuinely safe plain access —
// e.g. under a lock that excludes every atomic writer — needs an
// explicit `//lint:allow atomicmix -- <reason>`, or better, the field
// migrated to an atomic.Int64-style typed atomic that makes plain
// access unrepresentable.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed through sync/atomic must never be read or written plainly elsewhere in the package",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	facts := pass.Facts()
	// Deterministic field order: report by first atomic position.
	fields := make([]*types.Var, 0, len(facts.AtomicFields))
	for f := range facts.AtomicFields {
		if len(facts.PlainFields[f]) > 0 {
			fields = append(fields, f)
		}
	}
	sort.Slice(fields, func(i, j int) bool {
		return facts.AtomicFields[fields[i]][0] < facts.AtomicFields[fields[j]][0]
	})
	for _, f := range fields {
		atomicAt := pass.Fset.Position(facts.AtomicFields[f][0])
		for _, pos := range facts.PlainFields[f] {
			pass.Reportf(pos, "field %s is accessed atomically (e.g. %s) but plainly here; every access must go through sync/atomic, or the field should become a typed atomic (atomic.Int64 et al.)", f.Name(), atomicAt)
		}
	}
}
