package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// wantRe matches one expectation inside a `// want` comment: a quoted
// Go string holding a regexp the diagnostic message must match.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunFixture is the analysistest equivalent: it loads the fixture
// package at testdata/src/<name>, runs the analyzer over it, and checks
// the diagnostics against the `// want "regexp"` comments in the
// fixture sources. A diagnostic with no matching want, or a want with
// no matching diagnostic, fails the test. Allow-comment suppression is
// exercised exactly as in production: suppressed findings must NOT
// carry a want, while "lintallow" diagnostics (malformed or stale allow
// comments) are ordinary findings a fixture claims with a want.
func RunFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	fixtureDir := filepath.Join("testdata", "src", name)
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkg, err := LoadDir(moduleDir, fixtureDir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	wants, err := collectWants(fixtureDir)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}

	diags := RunAnalyzers(pkg, a)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claimWant marks the first unmatched want on the diagnostic's line
// whose regexp matches the message.
func claimWant(wants []*want, d Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if w.matched || w.file != base || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the fixture files' comments for `// want`
// expectations.
func collectWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var wants []*want
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				const marker = "// want "
				idx := indexOf(text, marker)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, quoted := range wantRe.FindAllString(text[idx+len(marker):], -1) {
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %w", de.Name(), pos.Line, quoted, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", de.Name(), pos.Line, pat, err)
					}
					wants = append(wants, &want{file: de.Name(), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// moduleRoot locates the directory of go.mod above the working
// directory, so fixtures can resolve talon/... imports through go list.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
