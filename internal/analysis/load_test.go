package analysis

import (
	"errors"
	"testing"
)

func TestLoadUnknownPackage(t *testing.T) {
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(moduleDir, "talon/internal/nosuchpackage")
	if err == nil {
		t.Fatal("loading a pattern that matches nothing succeeded")
	}
	if !errors.Is(err, ErrUnknownPackage) {
		t.Errorf("error is not ErrUnknownPackage: %v", err)
	}
}

func TestDecodeListMalformed(t *testing.T) {
	_, err := decodeList([]byte(`{"ImportPath": "x"} this is not json`))
	if err == nil {
		t.Fatal("decoding malformed go list output succeeded")
	}
	if !errors.Is(err, ErrMalformedList) {
		t.Errorf("error is not ErrMalformedList: %v", err)
	}
}

func TestExportLookupMissing(t *testing.T) {
	lk := newExportLookup(nil)
	_, err := lk.lookup("talon/internal/core")
	if err == nil {
		t.Fatal("lookup without export data succeeded")
	}
	if !errors.Is(err, ErrNoExportData) {
		t.Errorf("error is not ErrNoExportData: %v", err)
	}
}
