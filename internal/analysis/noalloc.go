package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the `//talon:noalloc` directive: a function whose
// doc comment carries it promises zero steady-state allocations (the
// static twin of the AllocsPerRun contracts, which are skipped under
// -race and only observe the inputs the test happens to feed). Inside
// an annotated function the analyzer flags every construct the
// compiler may lower to a heap allocation:
//
//   - function literals (a capturing closure escapes and allocates);
//   - calls into fmt (formatting allocates on every call);
//   - string concatenation;
//   - map and slice composite literals, &T{} literals, make and new;
//   - interface boxing — passing, assigning, converting or returning a
//     concrete value where an interface is expected;
//   - unhinted append growth: an append whose base slice shows no
//     reuse evidence in the function (no `s = s[:0]`-style reslice of
//     the same base), so growth is not visibly amortized.
//
// The checks are necessarily conservative — a non-escaping closure or
// a cold error path may be provably free at runtime — so intentional
// sites carry `//lint:allow noalloc -- <reason>`; the AllocsPerRun
// test remains the runtime referee. A directive outside a function's
// doc comment binds nothing and is itself a finding.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//talon:noalloc functions must avoid closures, fmt, string concat, map/slice literals, boxing and unhinted appends",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	facts := pass.Facts()
	for _, c := range facts.StrayNoAlloc {
		pass.Reportf(c.Pos(), "misplaced %s: the directive binds only as part of a function declaration's doc comment", NoAllocDirective)
	}
	for _, ff := range facts.Funcs {
		if ff.NoAlloc == nil || ff.Decl.Body == nil {
			continue
		}
		checkNoAllocBody(pass, ff.Decl)
	}
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	hinted := appendHints(fd.Body)
	flaggedArgs := make(map[ast.Expr]bool) // args of already-reported calls
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "closure inside a %s function; a capturing func literal may allocate per call — hoist it or justify with //lint:allow noalloc", NoAllocDirective)
			return false // the literal's interior is accounted to the closure
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, isLit := ast.Unparen(node.X).(*ast.CompositeLit); isLit {
					pass.Reportf(node.Pos(), "&composite literal inside a %s function allocates", NoAllocDirective)
				}
			}
		case *ast.BinaryExpr:
			checkStringConcat(pass, node)
		case *ast.CompositeLit:
			switch info.TypeOf(node).Underlying().(type) {
			case *types.Map:
				pass.Reportf(node.Pos(), "map literal inside a %s function allocates", NoAllocDirective)
			case *types.Slice:
				pass.Reportf(node.Pos(), "slice literal inside a %s function allocates", NoAllocDirective)
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, node, hinted, flaggedArgs)
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i := range node.Lhs {
					checkBoxing(pass, info.TypeOf(node.Lhs[i]), node.Rhs[i], flaggedArgs, "assignment")
				}
			}
		case *ast.ValueSpec:
			for _, v := range node.Values {
				if node.Type != nil {
					checkBoxing(pass, info.TypeOf(node.Type), v, flaggedArgs, "assignment")
				}
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fd, node, flaggedArgs)
		}
		return true
	})
}

// checkStringConcat flags non-constant string concatenation.
func checkStringConcat(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || tv.Type == nil || tv.Value != nil {
		return // not typed, or constant-folded at compile time
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		pass.Reportf(be.OpPos, "string concatenation inside a %s function allocates; preformat or use a reused buffer", NoAllocDirective)
	}
}

// checkNoAllocCall judges one call: fmt entry points, allocating
// builtins, unhinted appends, and interface boxing of the arguments.
func checkNoAllocCall(pass *Pass, call *ast.CallExpr, hinted map[string]bool, flaggedArgs map[ast.Expr]bool) {
	info := pass.TypesInfo
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "call to fmt.%s inside a %s function; formatting allocates on every call", fn.Name(), NoAllocDirective)
		for _, arg := range call.Args {
			flaggedArgs[arg] = true // one finding per site, not one per boxed arg
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make inside a %s function allocates; move it to a setup/grow path or a pooled scratch", NoAllocDirective)
			case "new":
				pass.Reportf(call.Pos(), "new inside a %s function allocates", NoAllocDirective)
			case "append":
				checkAppendHint(pass, call, hinted)
			}
			return
		}
	}
	// Conversions: concrete → interface boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0], flaggedArgs, "conversion")
		}
		return
	}
	// Ordinary calls: match arguments against interface parameters.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, pt, arg, flaggedArgs, "argument")
	}
}

// checkAppendHint flags appends whose base slice shows no reuse
// evidence in the function.
func checkAppendHint(pass *Pass, call *ast.CallExpr, hinted map[string]bool) {
	if len(call.Args) == 0 {
		return
	}
	base := ast.Unparen(call.Args[0])
	if _, ok := base.(*ast.SliceExpr); ok {
		return // append(s[:0], …): reuse is explicit at the call site
	}
	if hinted[exprPath(base)] {
		return
	}
	pass.Reportf(call.Pos(), "unhinted append inside a %s function may grow its backing array; reslice the base (s = s[:0]) to show reuse, pre-size it outside the hot path, or justify with //lint:allow noalloc", NoAllocDirective)
}

// appendHints collects the canonical paths of slices the function
// visibly reuses: targets of an assignment (or definition) whose
// right-hand side is a slice expression, e.g. `s = s[:0]`,
// `buf := sc.buf[:0]`, `m.pending = m.pending[:n]`.
func appendHints(body *ast.BlockStmt) map[string]bool {
	hinted := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			if _, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr); ok {
				hinted[exprPath(as.Lhs[i])] = true
			}
		}
		return true
	})
	return hinted
}

// checkBoxing reports a concrete value placed where an interface is
// expected.
func checkBoxing(pass *Pass, target types.Type, val ast.Expr, flaggedArgs map[ast.Expr]bool, context string) {
	if target == nil || !types.IsInterface(target) || flaggedArgs[val] {
		return
	}
	tv, ok := pass.TypesInfo.Types[val]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return // pointers box without copying; the pointee already lives on the heap
	}
	pass.Reportf(val.Pos(), "%s boxes %s into an interface inside a %s function, which may allocate", context, tv.Type, NoAllocDirective)
}

// checkReturnBoxing applies the boxing check to return values against
// the function's declared result types.
func checkReturnBoxing(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt, flaggedArgs map[ast.Expr]bool) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != len(ret.Results) {
		return // bare return or tuple forwarding
	}
	for i, v := range ret.Results {
		checkBoxing(pass, sig.Results().At(i).Type(), v, flaggedArgs, "return")
	}
}
