package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// SentErr enforces the error-matching conventions behind the typed
// sentinels (ErrNotJailbroken, ErrTooFewProbes, ErrDegenerateSurface,
// ErrUnknownSector, ErrInjected, ErrSNRCheckFailed, …):
//
//   - sentinel errors — package-level variables of type error — must be
//     matched with errors.Is, never == or != (every error in this code
//     base wraps its sentinel with call-site detail, so == silently
//     stops matching);
//   - fmt.Errorf must wrap error operands with %w, not %v or %s, or the
//     sentinel chain is severed for every caller downstream.
//
// Comparisons against nil are of course fine. Suppress intentional
// identity comparisons with `//lint:allow senterr -- <reason>`.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "match sentinel errors with errors.Is and wrap with %w",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelComparison(pass, node)
			case *ast.CallExpr:
				checkErrorfWrap(pass, node)
			}
			return true
		})
	}
}

// checkSentinelComparison flags == / != against package-level error
// variables.
func checkSentinelComparison(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		obj := exprObject(pass.TypesInfo, side)
		if obj == nil {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			continue
		}
		// Package-level error variable == sentinel.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe && isErrorType(v.Type()) {
			pass.Reportf(be.OpPos, "sentinel error %s compared with %s; use errors.Is so wrapped errors still match", v.Name(), be.Op)
			return
		}
	}
}

// exprObject resolves the object an identifier or selector denotes.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// with a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if !funcIs(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := i + 1
		if argIdx >= len(call.Args) || verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if isErrorInterface(tv.Type) {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error with %%%c; wrap it with %%w so errors.Is keeps matching the sentinel", verb)
		}
	}
}

// isErrorInterface reports whether t is exactly the error interface (a
// value statically known to be an error). Types that merely implement
// error (e.g. concrete structs with String-ish formatting) are left to
// the author's judgement.
func isErrorInterface(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// formatVerbs extracts the verb letters of a printf-style format in
// argument order. Explicit argument indexes (%[1]v) and %% are handled;
// width/precision stars consume an argument slot each.
func formatVerbs(format string) []byte {
	var verbs []byte
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags, width, precision, and argument indexes.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*') // star consumes an arg slot
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' ||
				c == '.' || c == '[' || c == ']' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
			i++
		}
	}
	return verbs
}
