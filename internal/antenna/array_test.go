package antenna

import (
	"math"
	"testing"
	"testing/quick"

	"talon/internal/stats"
)

func newTalonArray(t testing.TB, seed int64) *Array {
	t.Helper()
	a, err := New(TalonConfig(), stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func cleanConfig() Config {
	cfg := TalonConfig()
	cfg.PhaseErrStd = 0
	cfg.GainErrStdDB = 0
	cfg.FrontRippleStdDB = 0
	return cfg
}

func TestNewValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	bad := []Config{
		{NY: 0, NZ: 4, SpacingY: 0.5, SpacingZ: 0.5, PhaseBits: 2},
		{NY: 8, NZ: -1, SpacingY: 0.5, SpacingZ: 0.5, PhaseBits: 2},
		{NY: 8, NZ: 4, SpacingY: 0.5, SpacingZ: 0.5, PhaseBits: 0},
		{NY: 8, NZ: 4, SpacingY: 0.5, SpacingZ: 0.5, PhaseBits: 9},
		{NY: 8, NZ: 4, SpacingY: 0, SpacingZ: 0.5, PhaseBits: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTalonArrayShape(t *testing.T) {
	a := newTalonArray(t, 1)
	if a.NumElements() != 32 {
		t.Fatalf("NumElements = %d, want 32", a.NumElements())
	}
	if a.PhaseStates() != 4 {
		t.Fatalf("PhaseStates = %d, want 4 (2-bit)", a.PhaseStates())
	}
}

func TestSteeringGainPeaksNearTarget(t *testing.T) {
	a, err := New(cleanConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{-60, -30, 0, 30, 60} {
		w := a.SteeringWeights(target, 0)
		// The realized peak should be within a few degrees of the target.
		bestAz, bestGain := 0.0, math.Inf(-1)
		for az := -90.0; az <= 90; az += 0.5 {
			if g := a.Gain(w, az, 0); g > bestGain {
				bestAz, bestGain = az, g
			}
		}
		if math.Abs(bestAz-target) > 8 {
			t.Errorf("steer %v°: peak at %v°", target, bestAz)
		}
		// Full-aperture boresight-ish beams must show array gain well
		// above a single element.
		if math.Abs(target) <= 30 && bestGain < 8 {
			t.Errorf("steer %v°: peak gain %v dB too low", target, bestGain)
		}
	}
}

func TestGainArrayFactorBound(t *testing.T) {
	// Power-normalized array gain over one element is at most
	// 10·log10(N) for an error-free array (plus nothing at boresight).
	a, err := New(cleanConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	w := a.SteeringWeights(0, 0)
	limit := 10*math.Log10(float64(a.NumElements())) + 1e-6
	if g := a.Gain(w, 0, 0); g > limit {
		t.Fatalf("boresight gain %v exceeds N-element bound %v", g, limit)
	}
}

func TestGainMismatchedWeights(t *testing.T) {
	a := newTalonArray(t, 1)
	if g := a.Gain(Weights{}, 0, 0); !math.IsInf(g, -1) {
		t.Fatalf("zero weights gain = %v, want -Inf", g)
	}
	w := NewWeights(a.NumElements())
	for i := range w.On {
		w.On[i] = false
	}
	if g := a.Gain(w, 0, 0); !math.IsInf(g, -1) {
		t.Fatalf("all-off gain = %v, want -Inf", g)
	}
}

func TestChassisBlockage(t *testing.T) {
	a := newTalonArray(t, 2)
	w := a.SteeringWeights(0, 0)
	front := a.Gain(w, 0, 0)
	back := a.Gain(w, 180, 0)
	if front-back < 20 {
		t.Fatalf("front/back ratio only %v dB", front-back)
	}
	// The mask must be continuous at its onset: no effect at 120°.
	if d := a.chassisMaskDB(119.9, 0) - a.chassisMaskDB(120.1, 0); math.Abs(d) > 0.5 {
		t.Fatalf("mask discontinuity at 120°: %v", d)
	}
}

func TestPerDeviceVariation(t *testing.T) {
	a1 := newTalonArray(t, 1)
	a2 := newTalonArray(t, 2)
	w := a1.SteeringWeights(20, 0)
	diff := 0.0
	for az := -60.0; az <= 60; az += 5 {
		diff += math.Abs(a1.Gain(w, az, 0) - a2.Gain(w, az, 0))
	}
	if diff == 0 {
		t.Fatal("two devices produced identical patterns")
	}
	// Same seed: identical device.
	a3 := newTalonArray(t, 1)
	for az := -60.0; az <= 60; az += 5 {
		if a1.Gain(w, az, 0) != a3.Gain(w, az, 0) {
			t.Fatal("same seed produced different device")
		}
	}
}

func TestQuantizePhase(t *testing.T) {
	cases := []struct {
		phase  float64
		states int
		want   uint8
	}{
		{0, 4, 0},
		{math.Pi / 2, 4, 1},
		{math.Pi, 4, 2},
		{3 * math.Pi / 2, 4, 3},
		{2 * math.Pi, 4, 0},
		{-math.Pi / 2, 4, 3},
		{0.4, 4, 0}, // rounds down to code 0
		{0.9, 4, 1}, // rounds up to code 1
	}
	for _, c := range cases {
		if got := quantizePhase(c.phase, c.states); got != c.want {
			t.Errorf("quantizePhase(%v, %d) = %d, want %d", c.phase, c.states, got, c.want)
		}
	}
}

func TestQuantizePhaseInRangeProperty(t *testing.T) {
	f := func(phase float64, statesRaw uint8) bool {
		if math.IsNaN(phase) || math.IsInf(phase, 0) || math.Abs(phase) > 1e9 {
			return true
		}
		states := int(statesRaw%7) + 2
		code := quantizePhase(phase, states)
		return int(code) < states
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWeightsLowerGain(t *testing.T) {
	// Random pseudo-beams must waste link budget compared to a steered
	// beam — the paper's motivation for using predefined sectors.
	a := newTalonArray(t, 3)
	rng := stats.NewRNG(4)
	steered := a.Gain(a.SteeringWeights(0, 0), 0, 0)
	worst := 0
	for i := 0; i < 30; i++ {
		w := a.RandomWeights(rng)
		best := math.Inf(-1)
		for az := -90.0; az <= 90; az += 3 {
			if g := a.Gain(w, az, 0); g > best {
				best = g
			}
		}
		if best < steered-3 {
			worst++
		}
	}
	if worst < 20 {
		t.Fatalf("only %d/30 random beams clearly below steered gain", worst)
	}
}

func TestWeightsClone(t *testing.T) {
	w := NewWeights(4)
	c := w.Clone()
	c.Phase[0] = 3
	c.On[1] = false
	if w.Phase[0] == 3 || !w.On[1] {
		t.Fatal("Clone shares storage")
	}
	if w.ActiveElements() != 4 {
		t.Fatalf("ActiveElements = %d", w.ActiveElements())
	}
}
