package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/sector"
	"talon/internal/stats"
)

// Codebook maps sector IDs to the element weights the firmware programs
// when transmitting on that sector. The codebook is part of the firmware
// image: identical on every device of the model, while realized patterns
// differ per device through the array's hardware errors.
type Codebook struct {
	weights map[sector.ID]Weights
	order   []sector.ID
}

// NewCodebook returns an empty codebook.
func NewCodebook() *Codebook {
	return &Codebook{weights: make(map[sector.ID]Weights)}
}

// Put stores weights for id, replacing any previous entry.
func (cb *Codebook) Put(id sector.ID, w Weights) {
	if _, ok := cb.weights[id]; !ok {
		cb.order = append(cb.order, id)
	}
	cb.weights[id] = w
}

// Weights returns the entry for id.
func (cb *Codebook) Weights(id sector.ID) (Weights, bool) {
	w, ok := cb.weights[id]
	return w, ok
}

// IDs returns the sector IDs in insertion order. The returned slice must
// not be modified.
func (cb *Codebook) IDs() []sector.ID { return cb.order }

// Len returns the number of sectors in the codebook.
func (cb *Codebook) Len() int { return len(cb.weights) }

// beamKind classifies the archetypes observed in the paper's Figure 5.
type beamKind int

const (
	beamSteer beamKind = iota // single steered lobe
	beamDual                  // two roughly equal lobes
	beamWide                  // wide azimuth coverage, torus-like
	beamWeak                  // low gain everywhere (scrambled)
	beamQND                   // quasi-omni (receive) sector
)

// beamSpec describes one predefined sector.
type beamSpec struct {
	kind     beamKind
	az, el   float64 // primary lobe steering
	az2, el2 float64 // secondary lobe (beamDual)
	cols     int     // active aperture columns; 0 = full
}

// talonSpecs reproduces the qualitative inventory of the Talon AD7200's
// 35 predefined sectors as characterized in Section 4 of the paper:
// strong unidirectional sectors (2, 8, 12, 20, 24, 63), multi-lobe sectors
// (13, 22, 27), the wide sector 26, low-gain sectors (25, 62), sector 5
// peaking above the azimuth plane, and a quasi-omni receive sector.
var talonSpecs = map[sector.ID]beamSpec{
	1:         {kind: beamSteer, az: -70, el: 0},
	2:         {kind: beamSteer, az: -45, el: 0},
	3:         {kind: beamSteer, az: -60, el: 8, cols: 6},
	4:         {kind: beamSteer, az: -55, el: -5},
	5:         {kind: beamSteer, az: 10, el: 28},
	6:         {kind: beamSteer, az: -35, el: 5, cols: 6},
	7:         {kind: beamSteer, az: -30, el: 0},
	8:         {kind: beamSteer, az: -15, el: 0},
	9:         {kind: beamSteer, az: -25, el: 10, cols: 6},
	10:        {kind: beamSteer, az: -10, el: 5},
	11:        {kind: beamSteer, az: -5, el: -8, cols: 6},
	12:        {kind: beamSteer, az: 10, el: 0},
	13:        {kind: beamDual, az: -50, el: 0, az2: 30, el2: 5},
	14:        {kind: beamSteer, az: 15, el: 8, cols: 6},
	15:        {kind: beamSteer, az: 20, el: 0},
	16:        {kind: beamSteer, az: 25, el: -5, cols: 6},
	17:        {kind: beamSteer, az: 30, el: 5},
	18:        {kind: beamSteer, az: 35, el: 0, cols: 6},
	19:        {kind: beamSteer, az: 40, el: 10},
	20:        {kind: beamSteer, az: 45, el: 0},
	21:        {kind: beamSteer, az: 50, el: 5, cols: 6},
	22:        {kind: beamDual, az: -20, el: 0, az2: 55, el2: 0},
	23:        {kind: beamSteer, az: 55, el: 0},
	24:        {kind: beamSteer, az: 60, el: 0},
	25:        {kind: beamWeak},
	26:        {kind: beamWide},
	27:        {kind: beamDual, az: -65, el: 0, az2: 10, el2: 10},
	28:        {kind: beamSteer, az: 65, el: 5, cols: 6},
	29:        {kind: beamSteer, az: 70, el: 0},
	30:        {kind: beamSteer, az: 75, el: 8, cols: 6},
	31:        {kind: beamSteer, az: -75, el: 5},
	61:        {kind: beamSteer, az: 5, el: 15, cols: 4},
	62:        {kind: beamWeak},
	63:        {kind: beamSteer, az: 0, el: 0},
	sector.RX: {kind: beamQND},
}

// Talon builds the firmware codebook of the simulated Talon AD7200 for
// array a: the 34 transmit sectors plus the quasi-omni receive sector.
// The codebook is deterministic (firmware content), independent of the
// device's hardware errors.
func Talon(a *Array) *Codebook {
	cb := NewCodebook()
	// Weak sectors use a fixed "firmware" seed so every device ships the
	// same scrambled weights.
	weakRNG := stats.NewRNG(0x7a10)
	// Dual-lobe sectors are balanced against the nominal (error-free)
	// hardware, as the chip vendor would: the reference array shares the
	// geometry but has no per-device errors, keeping the codebook
	// identical across devices.
	ref := a.referenceArray()
	for _, id := range sector.TalonAll() {
		spec := talonSpecs[id]
		cb.Put(id, a.specWeights(spec, ref, weakRNG))
	}
	return cb
}

// referenceArray returns the nominal, error-free array of this device's
// configuration.
func (a *Array) referenceArray() *Array {
	cfg := a.cfg
	cfg.PhaseErrStd = 0
	cfg.GainErrStdDB = 0
	cfg.FrontRippleStdDB = 0
	ref, err := New(cfg, stats.NewRNG(0))
	if err != nil {
		// a was built from the same geometry, so this cannot happen.
		panic(err)
	}
	return ref
}

func (a *Array) specWeights(spec beamSpec, ref *Array, weakRNG *stats.RNG) Weights {
	switch spec.kind {
	case beamSteer:
		w := a.SteeringWeights(spec.az, spec.el)
		if spec.cols > 0 {
			a.maskColumns(&w, spec.cols)
		}
		return w
	case beamDual:
		return balancedDualLobe(ref, spec.az, spec.el, spec.az2, spec.el2)
	case beamWide:
		// A single vertical column: quasi-omni in azimuth with reduced
		// gain off the elevation plane — the torus of sector 26.
		w := NewWeights(a.NumElements())
		mid := a.cfg.NY / 2
		for k := range w.On {
			w.On[k] = (k % a.cfg.NY) == mid
		}
		return w
	case beamWeak:
		// Scrambled phases at minimum element amplitude: low gain in
		// every direction, as observed for sectors 25 and 62.
		w := NewWeights(a.NumElements())
		w.Amp = make([]uint8, a.NumElements())
		for k := range w.Phase {
			w.Phase[k] = uint8(weakRNG.Intn(a.PhaseStates()))
			w.On[k] = weakRNG.Bool(0.4)
			w.Amp[k] = uint8(weakRNG.Intn(2)) // codes 0..1: ≤ half amplitude
		}
		if w.ActiveElements() == 0 {
			w.On[0] = true
		}
		return w
	case beamQND:
		// Quasi-omni: a single near-center element.
		w := Weights{Phase: make([]uint8, a.NumElements()), On: make([]bool, a.NumElements())}
		w.On[a.NumElements()/2] = true
		return w
	default:
		panic(fmt.Sprintf("antenna: unknown beam kind %d", spec.kind))
	}
}

// maskColumns keeps only the central cols aperture columns active,
// broadening the azimuth beam.
func (a *Array) maskColumns(w *Weights, cols int) {
	if cols >= a.cfg.NY {
		return
	}
	lo := (a.cfg.NY - cols) / 2
	hi := lo + cols
	for k := range w.On {
		col := k % a.cfg.NY
		if col < lo || col >= hi {
			w.On[k] = false
		}
	}
}

// dualLobeWeights produces two lobes by phase-quantizing the superposition
// of two steering vectors; beta weights the second lobe's amplitude before
// quantization.
func (a *Array) dualLobeWeights(az1, el1, az2, el2, beta float64) Weights {
	w := NewWeights(a.NumElements())
	d1 := geom.FromAngles(az1, el1)
	d2 := geom.FromAngles(az2, el2)
	states := a.PhaseStates()
	for k := range w.Phase {
		g1 := 2 * math.Pi * (d1.Y*a.posY[k] + d1.Z*a.posZ[k])
		g2 := 2 * math.Pi * (d2.Y*a.posY[k] + d2.Z*a.posZ[k])
		s := cmplx.Exp(complex(0, -g1)) + complex(beta, 0)*cmplx.Exp(complex(0, -g2))
		w.Phase[k] = quantizePhase(cmplx.Phase(s), states)
	}
	return w
}

// balancedDualLobe searches the second-lobe amplitude weight that makes the
// two realized lobes as equal-powered as possible on the nominal array,
// matching the paper's observation of "multiple, equal powered lobes".
func balancedDualLobe(ref *Array, az1, el1, az2, el2 float64) Weights {
	var best Weights
	bestScore := math.Inf(1)
	for _, beta := range []float64{0.5, 0.7, 0.85, 1, 1.2, 1.5, 2, 2.5, 3.2, 4} {
		w := ref.dualLobeWeights(az1, el1, az2, el2, beta)
		g1 := ref.Gain(w, az1, el1)
		g2 := ref.Gain(w, az2, el2)
		// Prefer balanced lobes, then strong ones.
		score := math.Abs(g1-g2) - 0.25*math.Min(g1, g2)
		if score < bestScore {
			bestScore, best = score, w
		}
	}
	return best
}

// RandomCodebook builds n sectors of pseudo-random probing beams (IDs
// 1..n), the approach of prior compressive-tracking work, for the ablation
// study.
func RandomCodebook(a *Array, rng *stats.RNG, n int) *Codebook {
	cb := NewCodebook()
	for i := 1; i <= n; i++ {
		cb.Put(sector.ID(i), a.RandomWeights(rng))
	}
	return cb
}

// SamplePatterns evaluates the realized gain of every codebook sector on
// grid using array a — the ground-truth patterns of this device, free of
// measurement noise. (The testbed package reproduces the paper's noisy
// chamber measurement of the same quantity.)
func SamplePatterns(a *Array, cb *Codebook, grid *geom.Grid) *pattern.Set {
	set := pattern.NewSet()
	for _, id := range cb.IDs() {
		w := cb.weights[id]
		p := pattern.FromFunc(grid, func(az, el float64) float64 {
			return a.Gain(w, az, el)
		})
		if err := set.Put(id, p); err != nil {
			// Grids are identical by construction; this cannot happen.
			panic(err)
		}
	}
	return set
}

// DenseCodebook builds an enlarged sector inventory of n steered beams
// (IDs 1..n, n ≤ 63 to fit the 6-bit on-air field) covering azimuth ±78°
// in up to two elevation rows — the Section 7 scenario of future devices
// with finer beam control. The quasi-omni RX sector is included under
// sector.RX.
func DenseCodebook(a *Array, n int) (*Codebook, error) {
	if n < 2 || n > 63 {
		return nil, fmt.Errorf("antenna: dense codebook size %d out of range [2, 63]", n)
	}
	cb := NewCodebook()
	// Two elevation rows once the azimuth plane is dense enough.
	rows := 1
	if n >= 40 {
		rows = 2
	}
	perRow := n / rows
	idx := 0
	for r := 0; r < rows; r++ {
		el := float64(r) * 14
		count := perRow
		if r == rows-1 {
			count = n - perRow*(rows-1)
		}
		for i := 0; i < count; i++ {
			az := -78 + 156*float64(i)/float64(count-1)
			idx++
			cb.Put(sector.ID(idx), a.SteeringWeights(az, el))
		}
	}
	w := Weights{Phase: make([]uint8, a.NumElements()), On: make([]bool, a.NumElements())}
	w.On[a.NumElements()/2] = true
	cb.Put(sector.RX, w)
	return cb, nil
}
