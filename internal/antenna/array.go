// Package antenna models the 32-element planar phased array of the
// QCA9500 front end in the Talon AD7200, including the low-cost hardware
// imperfections the paper stresses: coarse (2-bit) phase shifters, static
// per-element phase/gain errors, a patch-element envelope and chassis
// blockage that distorts patterns behind the device (|azimuth| > 120°).
//
// The array turns per-element weights into far-field gain; the codebook in
// codebook.go reproduces the qualitative sector inventory of the Talon
// firmware (strongly directional sectors, multi-lobe sectors, one wide
// sector, a few low-gain sectors and a quasi-omni receive sector).
package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"talon/internal/geom"
	"talon/internal/stats"
)

// Config describes the array geometry and quantization.
type Config struct {
	// NY and NZ are the element counts along the horizontal (y) and
	// vertical (z) axes. The Talon's QCA9500 module drives 32 elements.
	NY, NZ int
	// SpacingY and SpacingZ are element spacings in wavelengths.
	SpacingY, SpacingZ float64
	// PhaseBits is the phase-shifter resolution; 2 bits (90° steps) for
	// low-cost 60 GHz front ends.
	PhaseBits int
	// PhaseErrStd and GainErrStdDB are the per-element static hardware
	// errors (radians / dB).
	PhaseErrStd  float64
	GainErrStdDB float64
	// FrontRippleStdDB scales the device-specific direction-dependent
	// gain ripple across the front hemisphere — packaging, housing and
	// coupling effects that make each unit's realized patterns deviate
	// from the geometric theory (the paper's reason to measure patterns
	// per device instead of trusting the array factor).
	FrontRippleStdDB float64
	// ElementExponent shapes the per-element (patch) envelope
	// cos(angle)^ElementExponent toward boresight.
	ElementExponent float64
}

// TalonConfig returns the configuration used for the simulated Talon
// AD7200 front end: an 8×4 = 32 element array with 2-bit phase shifters
// and moderate element-level imperfections.
func TalonConfig() Config {
	return Config{
		NY:               8,
		NZ:               4,
		SpacingY:         0.5,
		SpacingZ:         0.5,
		PhaseBits:        2,
		PhaseErrStd:      0.25,
		GainErrStdDB:     0.8,
		FrontRippleStdDB: 1.1,
		ElementExponent:  1.2,
	}
}

// Array is an instantiated phased array with its per-device imperfections
// frozen. Arrays are safe for concurrent read-only use.
type Array struct {
	cfg Config
	// posY, posZ are element coordinates in wavelengths.
	posY, posZ []float64
	// phaseErr (radians) and gainLin (linear amplitude factor) are the
	// static per-element errors of this device.
	phaseErr []float64
	gainLin  []float64
	// blockage ripple coefficients for the chassis mask (per device).
	rippleAmp   []float64
	ripplePhase []float64
	// front-hemisphere ripple coefficients (per device).
	frontAzAmp, frontAzPhase []float64
	frontElAmp, frontElPhase []float64
}

// New builds an array for cfg with per-device imperfections drawn from rng.
// The same seed yields the identical device.
func New(cfg Config, rng *stats.RNG) (*Array, error) {
	if cfg.NY <= 0 || cfg.NZ <= 0 {
		return nil, fmt.Errorf("antenna: invalid element counts %dx%d", cfg.NY, cfg.NZ)
	}
	if cfg.PhaseBits < 1 || cfg.PhaseBits > 8 {
		return nil, fmt.Errorf("antenna: phase bits %d out of range [1,8]", cfg.PhaseBits)
	}
	if cfg.SpacingY <= 0 || cfg.SpacingZ <= 0 {
		return nil, fmt.Errorf("antenna: element spacing must be positive")
	}
	n := cfg.NY * cfg.NZ
	a := &Array{
		cfg:      cfg,
		posY:     make([]float64, n),
		posZ:     make([]float64, n),
		phaseErr: make([]float64, n),
		gainLin:  make([]float64, n),
	}
	for iz := 0; iz < cfg.NZ; iz++ {
		for iy := 0; iy < cfg.NY; iy++ {
			k := iz*cfg.NY + iy
			a.posY[k] = (float64(iy) - float64(cfg.NY-1)/2) * cfg.SpacingY
			a.posZ[k] = (float64(iz) - float64(cfg.NZ-1)/2) * cfg.SpacingZ
		}
	}
	for k := 0; k < n; k++ {
		a.phaseErr[k] = rng.Norm(0, cfg.PhaseErrStd)
		a.gainLin[k] = math.Pow(10, rng.Norm(0, cfg.GainErrStdDB)/20)
	}
	// Chassis ripple: a small random Fourier series that distorts the
	// region behind the device, unique per unit.
	const rippleTerms = 5
	a.rippleAmp = make([]float64, rippleTerms)
	a.ripplePhase = make([]float64, rippleTerms)
	for i := range a.rippleAmp {
		a.rippleAmp[i] = rng.Uniform(0.5, 2.5)
		a.ripplePhase[i] = rng.Uniform(0, 2*math.Pi)
	}
	// Front-hemisphere ripple: gentle direction-dependent gain
	// distortion from the housing, unique per unit.
	const frontTerms = 3
	a.frontAzAmp = make([]float64, frontTerms)
	a.frontAzPhase = make([]float64, frontTerms)
	a.frontElAmp = make([]float64, frontTerms)
	a.frontElPhase = make([]float64, frontTerms)
	for i := 0; i < frontTerms; i++ {
		a.frontAzAmp[i] = rng.Norm(0, cfg.FrontRippleStdDB/1.6)
		a.frontAzPhase[i] = rng.Uniform(0, 2*math.Pi)
		a.frontElAmp[i] = rng.Norm(0, cfg.FrontRippleStdDB/2.2)
		a.frontElPhase[i] = rng.Uniform(0, 2*math.Pi)
	}
	return a, nil
}

// frontRippleDB is the device-specific gain distortion toward (az, el).
func (a *Array) frontRippleDB(az, el float64) float64 {
	r := 0.0
	azR, elR := geom.Deg2Rad(az), geom.Deg2Rad(el)
	for i := range a.frontAzAmp {
		k := float64(i + 2)
		r += a.frontAzAmp[i] * math.Sin(k*azR+a.frontAzPhase[i])
		r += a.frontElAmp[i] * math.Sin(k*elR*2+a.frontElPhase[i])
	}
	return r
}

// NumElements returns the element count.
func (a *Array) NumElements() int { return len(a.posY) }

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// PhaseStates returns the number of discrete phase-shifter states.
func (a *Array) PhaseStates() int { return 1 << a.cfg.PhaseBits }

// AmpStates is the number of discrete per-element amplitude settings
// (2-bit gain control, matching the chip's "gains and phases in discrete
// steps per antenna element").
const AmpStates = 4

// Weights holds per-element excitation: a quantized phase code, an on/off
// mask and an optional quantized amplitude code per element. The zero
// value disables all elements.
type Weights struct {
	// Phase[k] is the phase-shifter code of element k, in
	// [0, PhaseStates). Interpreted as code * 2π / PhaseStates.
	Phase []uint8
	// On[k] enables element k.
	On []bool
	// Amp[k] is the 2-bit amplitude code of element k; code c drives the
	// element at (c+1)/AmpStates of full amplitude. A nil Amp drives all
	// elements at full amplitude.
	Amp []uint8
}

// NewWeights returns all-on weights with zero phase for an n-element array.
func NewWeights(n int) Weights {
	w := Weights{Phase: make([]uint8, n), On: make([]bool, n)}
	for i := range w.On {
		w.On[i] = true
	}
	return w
}

// ActiveElements returns the number of enabled elements.
func (w Weights) ActiveElements() int {
	n := 0
	for _, on := range w.On {
		if on {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the weights.
func (w Weights) Clone() Weights {
	c := Weights{
		Phase: append([]uint8(nil), w.Phase...),
		On:    append([]bool(nil), w.On...),
	}
	if w.Amp != nil {
		c.Amp = append([]uint8(nil), w.Amp...)
	}
	return c
}

// Gain returns the realized far-field gain of the array driven with w
// toward (az, el), in dB relative to a single ideal element. It includes
// the element envelope, quantized phases, per-element hardware errors and
// the chassis blockage mask. Directions the chassis fully shadows can go
// strongly negative.
func (a *Array) Gain(w Weights, az, el float64) float64 {
	n := a.NumElements()
	if len(w.Phase) != n || len(w.On) != n {
		return math.Inf(-1)
	}
	dir := geom.FromAngles(az, el)
	// Phase advance per wavelength of position offset along y and z.
	ky := 2 * math.Pi * dir.Y
	kz := 2 * math.Pi * dir.Z
	states := float64(a.PhaseStates())
	if w.Amp != nil && len(w.Amp) != n {
		return math.Inf(-1)
	}
	var sum complex128
	active := 0
	for k := 0; k < n; k++ {
		if !w.On[k] {
			continue
		}
		active++
		amp := a.gainLin[k]
		if w.Amp != nil {
			amp *= float64(w.Amp[k]+1) / AmpStates
		}
		phase := float64(w.Phase[k])/states*2*math.Pi + a.phaseErr[k]
		geo := ky*a.posY[k] + kz*a.posZ[k]
		sum += complex(amp, 0) * cmplx.Exp(complex(0, geo+phase))
	}
	if active == 0 {
		return math.Inf(-1)
	}
	// Normalize so that a perfectly combined full array has gain
	// 10·log10(N) above one element (power normalized per element).
	p := real(sum)*real(sum) + imag(sum)*imag(sum)
	gainDB := stats.DB(p / float64(active))
	gainDB += a.elementEnvelopeDB(az, el)
	gainDB += a.chassisMaskDB(az, el)
	gainDB += a.frontRippleDB(az, el)
	return gainDB
}

// elementEnvelopeDB is the per-element patch envelope: maximum at
// boresight, rolling off toward ±90° and beyond.
func (a *Array) elementEnvelopeDB(az, el float64) float64 {
	// Angle from boresight (the +x axis).
	c := geom.FromAngles(az, el).X
	if c <= 0.02 {
		c = 0.02 // behind the array plane: deep but finite rolloff
	}
	return stats.DB(math.Pow(c, a.cfg.ElementExponent))
}

// chassisMaskDB models the shielding chip/chassis behind the antenna: for
// |az| > 120° gain drops sharply and becomes distorted (device-specific
// ripple), matching the paper's observation of distorted patterns there.
func (a *Array) chassisMaskDB(az, el float64) float64 {
	az = geom.WrapAz(az)
	abs := math.Abs(az)
	if abs <= 120 {
		return 0
	}
	depth := (abs - 120) / 60 // 0 at 120°, 1 at 180°
	att := -22 * depth
	ripple := 0.0
	for i, amp := range a.rippleAmp {
		ripple += amp * math.Sin(float64(i+1)*geom.Deg2Rad(az)*2+a.ripplePhase[i])
	}
	return att + ripple*depth + math.Abs(el)*-0.05*depth
}

// SteeringWeights returns quantized weights that steer the full aperture
// toward (az, el): each element's phase shifter is set to the nearest code
// compensating the geometric phase.
func (a *Array) SteeringWeights(az, el float64) Weights {
	w := NewWeights(a.NumElements())
	dir := geom.FromAngles(az, el)
	ky := 2 * math.Pi * dir.Y
	kz := 2 * math.Pi * dir.Z
	states := a.PhaseStates()
	for k := range w.Phase {
		geo := ky*a.posY[k] + kz*a.posZ[k]
		w.Phase[k] = quantizePhase(-geo, states)
	}
	return w
}

// RandomWeights returns weights with uniformly random phase codes on all
// elements — the pseudo-random probing beams of prior compressive-tracking
// work, which the paper found to break the link budget on this hardware.
func (a *Array) RandomWeights(rng *stats.RNG) Weights {
	w := NewWeights(a.NumElements())
	for k := range w.Phase {
		w.Phase[k] = uint8(rng.Intn(a.PhaseStates()))
	}
	return w
}

// quantizePhase maps a phase in radians to the nearest of `states` codes.
func quantizePhase(phase float64, states int) uint8 {
	step := 2 * math.Pi / float64(states)
	p := math.Mod(phase, 2*math.Pi)
	if p < 0 {
		p += 2 * math.Pi
	}
	code := int(math.Round(p/step)) % states
	return uint8(code)
}
