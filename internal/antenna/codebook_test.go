package antenna

import (
	"math"
	"testing"

	"talon/internal/geom"
	"talon/internal/sector"
	"talon/internal/stats"
)

func talonSetup(t testing.TB, seed int64) (*Array, *Codebook) {
	t.Helper()
	a := newTalonArray(t, seed)
	return a, Talon(a)
}

func TestTalonCodebookInventory(t *testing.T) {
	_, cb := talonSetup(t, 1)
	if cb.Len() != 35 {
		t.Fatalf("Len = %d, want 35", cb.Len())
	}
	for _, id := range sector.TalonAll() {
		if _, ok := cb.Weights(id); !ok {
			t.Errorf("sector %v missing", id)
		}
	}
	if _, ok := cb.Weights(40); ok {
		t.Error("undefined sector 40 present")
	}
}

func TestTalonCodebookDeterministic(t *testing.T) {
	a1, cb1 := talonSetup(t, 1)
	_, cb2 := talonSetup(t, 99) // different device, same firmware
	_ = a1
	for _, id := range sector.TalonAll() {
		w1, _ := cb1.Weights(id)
		w2, _ := cb2.Weights(id)
		for k := range w1.Phase {
			if w1.Phase[k] != w2.Phase[k] || w1.On[k] != w2.On[k] {
				t.Fatalf("sector %v weights differ across devices", id)
			}
		}
	}
}

func sampledPeak(a *Array, w Weights) (az, el, gain float64) {
	az, el, gain = 0, 0, math.Inf(-1)
	for e := 0.0; e <= 32; e += 4 {
		for az2 := -90.0; az2 <= 90; az2 += 2 {
			if g := a.Gain(w, az2, e); g > gain {
				az, el, gain = az2, e, g
			}
		}
	}
	return az, el, gain
}

func TestStrongSectorsAreDirectional(t *testing.T) {
	a, cb := talonSetup(t, 1)
	for _, id := range []sector.ID{2, 8, 12, 20, 24, 63} {
		w, _ := cb.Weights(id)
		_, _, peak := sampledPeak(a, w)
		spec := talonSpecs[id]
		atTarget := a.Gain(w, spec.az, spec.el)
		if peak < 8 {
			t.Errorf("strong sector %v peak only %v dB", id, peak)
		}
		if atTarget < peak-6 {
			t.Errorf("sector %v: gain at design target %v dB vs peak %v dB", id, atTarget, peak)
		}
	}
}

func TestWeakSectorsAreWeak(t *testing.T) {
	a, cb := talonSetup(t, 1)
	wStrong, _ := cb.Weights(63)
	_, _, strongPeak := sampledPeak(a, wStrong)
	for _, id := range []sector.ID{25, 62} {
		w, _ := cb.Weights(id)
		_, _, peak := sampledPeak(a, w)
		if peak > strongPeak-5 {
			t.Errorf("weak sector %v peak %v dB vs strong %v dB", id, peak, strongPeak)
		}
	}
}

func TestSector5PeaksAboveAzimuthPlane(t *testing.T) {
	a, cb := talonSetup(t, 1)
	w, _ := cb.Weights(5)
	inPlane := math.Inf(-1)
	for az := -90.0; az <= 90; az += 2 {
		if g := a.Gain(w, az, 0); g > inPlane {
			inPlane = g
		}
	}
	_, el, peak := sampledPeak(a, w)
	if el < 12 {
		t.Errorf("sector 5 peak at elevation %v°, want above the plane", el)
	}
	if peak-inPlane < 2 {
		t.Errorf("sector 5 elevated peak %v dB not above in-plane max %v dB", peak, inPlane)
	}
}

func TestSector26IsWideTorus(t *testing.T) {
	a, cb := talonSetup(t, 1)
	w, _ := cb.Weights(26)
	// Wide azimuth coverage in the plane...
	covered := 0
	for az := -90.0; az <= 90; az += 5 {
		if a.Gain(w, az, 0) > -5 {
			covered++
		}
	}
	if covered < 25 {
		t.Errorf("sector 26 covers only %d/37 azimuth samples in the plane", covered)
	}
	// ...and lower gain at high elevation (torus shape).
	atPlane := a.Gain(w, 0, 0)
	atHighEl := a.Gain(w, 0, 50)
	if atPlane-atHighEl < 3 {
		t.Errorf("sector 26 not torus-like: plane %v dB vs 50° el %v dB", atPlane, atHighEl)
	}
}

func TestDualLobeSectors(t *testing.T) {
	a, cb := talonSetup(t, 1)
	for _, id := range []sector.ID{13, 22, 27} {
		spec := talonSpecs[id]
		w, _ := cb.Weights(id)
		g1 := a.Gain(w, spec.az, spec.el)
		g2 := a.Gain(w, spec.az2, spec.el2)
		if math.Abs(g1-g2) > 8 {
			t.Errorf("sector %v lobes unbalanced: %v vs %v dB", id, g1, g2)
		}
		if g1 < 0 || g2 < 0 {
			t.Errorf("sector %v lobes too weak: %v / %v dB", id, g1, g2)
		}
	}
}

func TestRXQuasiOmni(t *testing.T) {
	a, cb := talonSetup(t, 1)
	w, _ := cb.Weights(sector.RX)
	if w.ActiveElements() != 1 {
		t.Fatalf("RX active elements = %d, want 1", w.ActiveElements())
	}
	// Coverage: gain variation across the front hemisphere stays small
	// compared to a directional sector.
	lo, hi := math.Inf(1), math.Inf(-1)
	for az := -60.0; az <= 60; az += 5 {
		g := a.Gain(w, az, 0)
		lo, hi = math.Min(lo, g), math.Max(hi, g)
	}
	if hi-lo > 10 {
		t.Fatalf("RX sector varies %v dB over ±60°", hi-lo)
	}
}

func TestSamplePatterns(t *testing.T) {
	a, cb := talonSetup(t, 1)
	grid, err := geom.UniformGrid(-90, 90, 5, 0, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	set := SamplePatterns(a, cb, grid)
	if set.Len() != 35 {
		t.Fatalf("pattern set size = %d", set.Len())
	}
	p := set.Get(63)
	if p == nil {
		t.Fatal("sector 63 pattern missing")
	}
	az, _, _ := p.Peak()
	if math.Abs(az) > 10 {
		t.Fatalf("sector 63 pattern peak at az %v, want near 0", az)
	}
	if p.Missing() != 0 {
		t.Fatalf("noiseless sampling left %d missing", p.Missing())
	}
}

func TestRandomCodebook(t *testing.T) {
	a := newTalonArray(t, 1)
	cb := RandomCodebook(a, stats.NewRNG(7), 16)
	if cb.Len() != 16 {
		t.Fatalf("Len = %d", cb.Len())
	}
	for i := 1; i <= 16; i++ {
		w, ok := cb.Weights(sector.ID(i))
		if !ok {
			t.Fatalf("sector %d missing", i)
		}
		if w.ActiveElements() != a.NumElements() {
			t.Fatalf("random beam %d not all-on", i)
		}
	}
}

func TestCodebookOrderStable(t *testing.T) {
	_, cb := talonSetup(t, 1)
	ids := cb.IDs()
	want := sector.TalonAll()
	if len(ids) != len(want) {
		t.Fatalf("IDs length %d", len(ids))
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("IDs()[%d] = %v, want %v", i, ids[i], want[i])
		}
	}
}

func TestDenseCodebook(t *testing.T) {
	a := newTalonArray(t, 1)
	cb, err := DenseCodebook(a, 63)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Len() != 64 { // 63 TX + RX
		t.Fatalf("Len = %d", cb.Len())
	}
	for i := 1; i <= 63; i++ {
		w, ok := cb.Weights(sector.ID(i))
		if !ok {
			t.Fatalf("sector %d missing", i)
		}
		if w.ActiveElements() == 0 {
			t.Fatalf("sector %d has no active elements", i)
		}
	}
	// Beams must cover the front hemisphere densely: at every direction
	// some sector reaches near-full array gain.
	for az := -70.0; az <= 70; az += 7 {
		best := math.Inf(-1)
		for i := 1; i <= 63; i++ {
			w, _ := cb.Weights(sector.ID(i))
			if g := a.Gain(w, az, 0); g > best {
				best = g
			}
		}
		// The element envelope rolls off toward ±70°, so the bar is a
		// little lower at the edges.
		if best < 7 {
			t.Errorf("coverage gap at %v°: best gain %v dB", az, best)
		}
	}
	if _, err := DenseCodebook(a, 64); err == nil {
		t.Error("64 sectors accepted (exceeds 6-bit ID space)")
	}
	if _, err := DenseCodebook(a, 1); err == nil {
		t.Error("1 sector accepted")
	}
}
