package testbed

import (
	"context"
	"math"
	"testing"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/wil"
)

func newRig(t testing.TB, env *channel.Environment, dist float64) (*wil.Link, *wil.Device, *wil.Device, *RotationHead) {
	t.Helper()
	dut, err := wil.NewDevice(wil.Config{Name: "dut", MAC: dot11ad.MACAddr{2, 0, 0, 0, 0, 1}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := wil.NewDevice(wil.Config{Name: "probe", MAC: dot11ad.MACAddr{2, 0, 0, 0, 0, 2}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := dut.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := probe.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	dutPose, probePose := FacingPoses(dist, 1.2)
	dut.SetPose(dutPose)
	probe.SetPose(probePose)
	link := wil.NewLink(env, dut, probe)
	head := NewRotationHead(stats.NewRNG(99))
	return link, dut, probe, head
}

func TestRotationHead(t *testing.T) {
	h := NewRotationHead(stats.NewRNG(1))
	if got := h.SetAzimuth(10.027); math.Abs(got-10.05) > 1e-9 {
		t.Fatalf("microstep quantization: %v", got)
	}
	tilt := h.SetTilt(10)
	if math.Abs(tilt-10) > 4 {
		t.Fatalf("tilt error too large: %v", tilt)
	}
	if tilt == 10.0 {
		t.Fatal("manual tilt suspiciously exact")
	}
	// Zero-error head.
	h2 := &RotationHead{AzStep: 0.05}
	if got := h2.SetTilt(5); got != 5 {
		t.Fatalf("error-free tilt = %v", got)
	}
}

func TestHeadPointAt(t *testing.T) {
	_, dut, probe, head := newRig(t, channel.AnechoicChamber(), 3)
	head.TiltErrStd = 0 // exact geometry for this test
	realAz, realEl := head.PointAt(dut, 25, 10)
	if math.Abs(realAz-25) > 0.1 || math.Abs(realEl-10) > 1e-9 {
		t.Fatalf("realized (%v, %v)", realAz, realEl)
	}
	// The probe must now appear at the commanded local direction.
	dir := probe.Pose().Pos.Sub(dut.Pose().Pos).Normalize()
	az, el := dut.Pose().ToLocal(dir)
	if math.Abs(az-realAz) > 0.1 || math.Abs(el-realEl) > 0.1 {
		t.Fatalf("probe at local (%v, %v), commanded (%v, %v)", az, el, realAz, realEl)
	}
}

func coarseGrid(t testing.TB) *geom.Grid {
	t.Helper()
	g, err := geom.UniformGrid(-60, 60, 6, 0, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCampaignMeasuresPatterns(t *testing.T) {
	link, dut, probe, _ := newRig(t, channel.AnechoicChamber(), 3)
	c := NewChamberCampaign(link, dut, probe, 5)
	c.Repeats = 2
	set, err := c.MeasureAllPatterns(context.Background(), coarseGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 35 {
		t.Fatalf("pattern count = %d, want 35", set.Len())
	}
	// Post-processing must leave complete patterns.
	for _, id := range set.IDs() {
		if miss := set.Get(id).Missing(); miss != 0 {
			t.Errorf("sector %v: %d missing samples after processing", id, miss)
		}
	}
	// The boresight sector's measured peak should be near 0° azimuth.
	az, _, gain := set.Get(63).Peak()
	if math.Abs(az) > 12 {
		t.Errorf("sector 63 measured peak at %v°", az)
	}
	if gain < 5 {
		t.Errorf("sector 63 measured peak gain %v dB", gain)
	}
	// Weak sectors measure consistently weaker than the boresight one.
	if w := set.Get(62).MaxGain(); w > gain {
		t.Errorf("scrambled sector 62 (%v dB) outshines 63 (%v dB)", w, gain)
	}
}

func TestCampaignGrids(t *testing.T) {
	az := AzimuthGrid()
	if az.NumAz() != 401 || az.NumEl() != 1 {
		t.Fatalf("azimuth grid %dx%d", az.NumAz(), az.NumEl())
	}
	sph := SphericalGrid()
	if sph.NumAz() != 101 || sph.NumEl() != 10 {
		t.Fatalf("spherical grid %dx%d", sph.NumAz(), sph.NumEl())
	}
}

func TestScanConfigs(t *testing.T) {
	lab := LabScan()
	if lab.AzStep != 2.25 || len(lab.Elevations) != 16 {
		t.Fatalf("lab scan: %+v", lab)
	}
	conf := ConferenceScan()
	if conf.AzStep != 1.3 || len(conf.Elevations) != 1 {
		t.Fatalf("conference scan: %+v", conf)
	}
}

func TestRunScanTraces(t *testing.T) {
	link, dut, probe, head := newRig(t, channel.ConferenceRoom(), 6)
	cfg := ScanConfig{AzMin: -30, AzMax: 30, AzStep: 15, Elevations: []float64{0}, SweepsPerPosition: 2}
	traces, err := RunScan(context.Background(), link, dut, probe, head, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 5 {
		t.Fatalf("traces = %d, want 5", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Sweeps) != 2 {
			t.Fatalf("sweeps per trace = %d", len(tr.Sweeps))
		}
		if len(tr.TrueSNR) != 34 {
			t.Fatalf("oracle covers %d sectors", len(tr.TrueSNR))
		}
		// Ground truth equals the commanded azimuth (LOS dominates and
		// the head is exact in azimuth up to microstepping).
		if math.Abs(tr.TrueAz-tr.CommandedAz) > 0.5 {
			t.Fatalf("truth az %v vs commanded %v", tr.TrueAz, tr.CommandedAz)
		}
	}
}

func TestRunScanValidation(t *testing.T) {
	link, dut, probe, head := newRig(t, channel.AnechoicChamber(), 3)
	if _, err := RunScan(context.Background(), link, dut, probe, head, ScanConfig{AzStep: 0, Elevations: []float64{0}}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := RunScan(context.Background(), link, dut, probe, head, ScanConfig{AzMin: 0, AzMax: 1, AzStep: 1}); err == nil {
		t.Error("missing elevations accepted")
	}
}

// TestEndToEndCompressiveSelection is the pipeline integration test:
// measure patterns in the chamber, then run CSS against fresh sweeps in
// the same chamber and verify angle estimates and sector choices.
func TestEndToEndCompressiveSelection(t *testing.T) {
	link, dut, probe, head := newRig(t, channel.AnechoicChamber(), 3)
	campaign := NewChamberCampaign(link, dut, probe, 5)
	campaign.Repeats = 2
	grid, err := geom.UniformGrid(-60, 60, 3, 0, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := campaign.MeasureTXPatterns(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewEstimator(patterns, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRNG(77)
	var azErrs, losses []float64
	lost := 0
	const subsets = 4
	for _, cmdAz := range []float64{-45, -20, 0, 20, 45} {
		head.PointAt(dut, cmdAz, 0)
		truthAz, _, _ := dominantAoD(link, dut, probe)
		best := math.Inf(-1)
		for _, id := range sector.TalonTX() {
			if s := link.TrueSNR(dut, probe, id); s > best {
				best = s
			}
		}
		for s := 0; s < subsets; s++ {
			probeSet, err := core.RandomProbes(rng, sector.TalonTX(), 14)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := link.RunTXSS(dut, probe, dot11ad.SubSweepSchedule(probeSet))
			if err != nil {
				t.Fatal(err)
			}
			probes := core.ProbesFromMeasurements(probeSet.IDs(), meas)
			sel, err := est.SelectSector(context.Background(), probes)
			if err != nil {
				lost++
				continue
			}
			if !sel.Fallback {
				azErrs = append(azErrs, math.Abs(sel.AoA.Az-truthAz))
			}
			losses = append(losses, best-link.TrueSNR(dut, probe, sel.Sector))
		}
	}
	if lost > 2 {
		t.Fatalf("selection failed in %d/%d draws", lost, 5*subsets)
	}
	if med := stats.Median(azErrs); med > 6 {
		t.Fatalf("median azimuth error %v°", med)
	}
	// Individual draws may hit an unlucky subset (noisy coarse-grid test
	// patterns), but the typical selection must be near-optimal.
	if med := stats.Median(losses); med > 4 {
		t.Fatalf("median SNR loss %v dB", med)
	}
	bad := 0
	for _, l := range losses {
		if l > 8 {
			bad++
		}
	}
	if bad > len(losses)/4 {
		t.Fatalf("%d/%d selections lost more than 8 dB", bad, len(losses))
	}
}

func dominantAoD(link *wil.Link, dut, probe *wil.Device) (float64, float64, bool) {
	return dominantAoDPose(link, dut.Pose(), probe.Pose())
}

func dominantAoDPose(link *wil.Link, dutPose, probePose channel.Pose) (float64, float64, bool) {
	dir := probePose.Pos.Sub(dutPose.Pos).Normalize()
	az, el := dutPose.ToLocal(dir)
	return az, el, true
}
