package testbed

import (
	"context"
	"fmt"

	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/wil"
)

// Campaign runs the Section 4 measurement procedure: the device under
// test sits on the rotation head in an anechoic chamber, a fixed probe
// device three meters away records the signal strength of sector-sweep
// frames, and the head steps through the angular grid.
type Campaign struct {
	// Link couples DUT and Probe (normally in channel.AnechoicChamber()).
	Link *wil.Link
	// DUT is the rotating device whose patterns are being measured.
	DUT *wil.Device
	// Probe is the fixed device.
	Probe *wil.Device
	// Head positions the DUT.
	Head *RotationHead
	// Repeats is the number of sector sweeps averaged per grid point.
	Repeats int
	// OutlierWindow / OutlierThreshDB / GapFloorDB configure the
	// post-processing (outlier removal and gap interpolation) applied to
	// the raw samples, as in the paper. Zero values pick defaults.
	OutlierWindow   int
	OutlierThreshDB float64
	GapFloorDB      float64
}

func (c *Campaign) defaults() {
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.OutlierWindow <= 0 {
		// Immediate neighbours only: a wider window would span more than
		// a beamwidth on coarse grids and flag genuine main lobes.
		c.OutlierWindow = 1
	}
	if c.OutlierThreshDB <= 0 {
		c.OutlierThreshDB = 6
	}
	if c.GapFloorDB == 0 {
		c.GapFloorDB = radio.SNRMinDB
	}
}

// MeasureTXPatterns measures the 3D transmit pattern of every predefined
// sector on grid: per grid point the DUT transmits Repeats sector sweeps
// whose per-sector SNR readings at the probe are averaged; afterwards each
// sector's map is cleaned of outliers and interpolated over gaps. The
// context is observed between grid points; a cancelled campaign returns
// ctx.Err().
func (c *Campaign) MeasureTXPatterns(ctx context.Context, grid *geom.Grid) (*pattern.Set, error) {
	c.defaults()
	txIDs := sector.TalonTX()
	raw := make(map[sector.ID]*pattern.Pattern, len(txIDs))
	for _, id := range txIDs {
		raw[id] = pattern.New(grid)
	}
	slots := dot11ad.SweepSchedule()

	for ei, el := range grid.El() {
		for ai, az := range grid.Az() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c.Head.PointAt(c.DUT, az, el)
			sums := make(map[sector.ID]float64, len(txIDs))
			counts := make(map[sector.ID]int, len(txIDs))
			for r := 0; r < c.Repeats; r++ {
				meas, err := c.Link.RunTXSS(c.DUT, c.Probe, slots)
				if err != nil {
					return nil, fmt.Errorf("testbed: TXSS at (%v, %v): %w", az, el, err)
				}
				for id, m := range meas {
					sums[id] += m.SNR
					counts[id]++
				}
			}
			for _, id := range txIDs {
				if n := counts[id]; n > 0 {
					raw[id].Set(ai, ei, sums[id]/float64(n))
				}
			}
		}
	}

	set := pattern.NewSet()
	for _, id := range txIDs {
		p := raw[id]
		p.RemoveOutliers(c.OutlierWindow, c.OutlierThreshDB)
		p.FillGaps(c.GapFloorDB)
		if err := set.Put(id, p); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// MeasureRXPattern measures the quasi-omni receive pattern: the roles
// switch, the fixed probe transmits on sector 63 only ("as it has a strong
// unidirectional gain"), and the rotating DUT records what it receives.
func (c *Campaign) MeasureRXPattern(ctx context.Context, grid *geom.Grid) (*pattern.Pattern, error) {
	c.defaults()
	p := pattern.New(grid)
	slots := dot11ad.SubSweepSchedule(sector.NewSet(63))
	for ei, el := range grid.El() {
		for ai, az := range grid.Az() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c.Head.PointAt(c.DUT, az, el)
			sum, n := 0.0, 0
			for r := 0; r < c.Repeats; r++ {
				meas, err := c.Link.RunTXSS(c.Probe, c.DUT, slots)
				if err != nil {
					return nil, fmt.Errorf("testbed: RX measurement at (%v, %v): %w", az, el, err)
				}
				if m, ok := meas[63]; ok {
					sum += m.SNR
					n++
				}
			}
			if n > 0 {
				p.Set(ai, ei, sum/float64(n))
			}
		}
	}
	p.RemoveOutliers(c.OutlierWindow, c.OutlierThreshDB)
	p.FillGaps(c.GapFloorDB)
	return p, nil
}

// MeasureAllPatterns runs the full campaign: 34 transmit sectors plus the
// receive sector, the 35 patterns of the paper's Figures 5 and 6.
func (c *Campaign) MeasureAllPatterns(ctx context.Context, grid *geom.Grid) (*pattern.Set, error) {
	set, err := c.MeasureTXPatterns(ctx, grid)
	if err != nil {
		return nil, err
	}
	rx, err := c.MeasureRXPattern(ctx, grid)
	if err != nil {
		return nil, err
	}
	if err := set.Put(sector.RX, rx); err != nil {
		return nil, err
	}
	return set, nil
}

// AzimuthGrid returns the Section 4.3 azimuth-cut grid: −180°…180° in
// 0.9° steps at elevation 0.
func AzimuthGrid() *geom.Grid {
	g, err := geom.UniformGrid(-180, 180, 0.9, 0, 0, 1)
	if err != nil {
		panic(err) // static arguments
	}
	return g
}

// SphericalGrid returns the Section 4.5 3D grid: azimuth ±90° in 1.8°
// steps, elevation 0°…32.4° in 3.6° steps.
func SphericalGrid() *geom.Grid {
	g, err := geom.UniformGrid(-90, 90, 1.8, 0, 32.4, 3.6)
	if err != nil {
		panic(err)
	}
	return g
}

// NewChamberCampaign wires up the canonical chamber setup: DUT on the
// head at the origin, probe three meters away, both jailbroken so the
// measurements are readable.
func NewChamberCampaign(link *wil.Link, dut, probe *wil.Device, seed int64) *Campaign {
	dutPose, probePose := FacingPoses(3, 1.2)
	dut.SetPose(dutPose)
	probe.SetPose(probePose)
	return &Campaign{
		Link:  link,
		DUT:   dut,
		Probe: probe,
		Head:  NewRotationHead(stats.NewRNG(seed).Split("head")),
	}
}
