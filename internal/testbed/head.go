// Package testbed reproduces the paper's experimental apparatus: the
// stepper-driven rotation head (microstepping azimuth precision, manually
// tilted elevation with imperfect leveling), the anechoic-chamber pattern
// measurement campaign of Section 4, and the lab / conference-room
// environment scans of Section 6.
package testbed

import (
	"math"

	"talon/internal/channel"
	"talon/internal/stats"
	"talon/internal/wil"
)

// RotationHead positions the device under test. Azimuth is driven by a
// step motor with microstepping ("high rotation precision"); elevation is
// tilted manually, which the paper could not do with sub-degree precision
// despite a digital mechanic's level.
type RotationHead struct {
	// AzStep is the microstepping resolution in degrees.
	AzStep float64
	// TiltErrStd is the standard deviation of the manual tilt error in
	// degrees; the realized tilt is redrawn whenever the tilt changes.
	TiltErrStd float64

	rng          *stats.RNG
	az           float64 // realized azimuth
	tilt         float64 // commanded tilt
	tiltRealized float64
}

// NewRotationHead builds the head used in the paper's campaigns: 0.05°
// microstepping and ±0.75° manual tilt error.
func NewRotationHead(rng *stats.RNG) *RotationHead {
	return &RotationHead{AzStep: 0.05, TiltErrStd: 0.75, rng: rng}
}

// SetAzimuth rotates to az (degrees) and returns the realized angle after
// step quantization.
func (h *RotationHead) SetAzimuth(az float64) float64 {
	if h.AzStep > 0 {
		az = math.Round(az/h.AzStep) * h.AzStep
	}
	h.az = az
	return az
}

// SetTilt tilts the head to el (degrees) and returns the realized tilt
// including the manual-leveling error.
func (h *RotationHead) SetTilt(el float64) float64 {
	h.tilt = el
	h.tiltRealized = el
	if h.TiltErrStd > 0 && h.rng != nil {
		h.tiltRealized = el + h.rng.Norm(0, h.TiltErrStd)
	}
	return h.tiltRealized
}

// Azimuth returns the realized azimuth.
func (h *RotationHead) Azimuth() float64 { return h.az }

// Tilt returns the realized tilt.
func (h *RotationHead) Tilt() float64 { return h.tiltRealized }

// Apply orients the device under test so that a probe on the head's
// reference axis appears at local angles (-azimuth, -tilt): rotating the
// head by ρ moves the fixed probe to local azimuth -ρ in the DUT frame.
func (h *RotationHead) Apply(dut *wil.Device) {
	p := dut.Pose()
	p.Yaw = h.az
	p.Tilt = h.tiltRealized
	dut.SetPose(p)
}

// PointAt orients the device under test so that the chosen local pattern
// direction (az, el) faces the probe: yaw = -az, tilt = -el (with the
// head's imperfections applied).
func (h *RotationHead) PointAt(dut *wil.Device, az, el float64) (realAz, realEl float64) {
	realAz = -h.SetAzimuth(-az)
	realEl = -h.SetTilt(-el)
	h.Apply(dut)
	return realAz, realEl
}

// FacingPoses returns canonical testbed poses: the device under test at
// the origin and the probe at distance meters down the +x axis, facing
// back.
func FacingPoses(distance, height float64) (dut, probe channel.Pose) {
	dut = channel.Pose{}
	dut.Pos.Z = height
	probe = channel.Pose{Yaw: 180}
	probe.Pos.X = distance
	probe.Pos.Z = height
	return dut, probe
}
