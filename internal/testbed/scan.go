package testbed

import (
	"context"
	"fmt"

	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/wil"
)

// Trace records everything captured at one head position of an
// environment scan: the ground-truth departure direction, the repeated
// full-sweep measurements, and the noiseless per-sector SNR oracle used
// for SNR-loss evaluation.
type Trace struct {
	// CommandedAz / CommandedEl are the pattern direction the head was
	// asked to face toward the probe.
	CommandedAz, CommandedEl float64
	// TrueAz / TrueEl are the dominant ray's departure angles in the
	// DUT frame — the physical ground truth for the estimator.
	TrueAz, TrueEl float64
	// Sweeps holds the receiver's measurements of each repeated full
	// sector sweep.
	Sweeps []map[sector.ID]radio.Measurement
	// TrueSNR is the noiseless SNR per transmit sector at this position
	// (the evaluation oracle).
	TrueSNR map[sector.ID]float64
}

// ScanConfig describes one environment experiment of Section 6.1.
type ScanConfig struct {
	// AzMin/AzMax/AzStep set the head's azimuth range and resolution.
	AzMin, AzMax, AzStep float64
	// Elevations lists the tilt values to visit (just {0} in the
	// conference room).
	Elevations []float64
	// SweepsPerPosition is how many full sector sweeps are captured at
	// each position.
	SweepsPerPosition int
}

// LabScan returns the lab parameters: ±60° azimuth at 2.25°, tilts
// 0°–30° in 2° steps.
func LabScan() ScanConfig {
	els := make([]float64, 0, 16)
	for el := 0.0; el <= 30; el += 2 {
		els = append(els, el)
	}
	return ScanConfig{AzMin: -60, AzMax: 60, AzStep: 2.25, Elevations: els, SweepsPerPosition: 3}
}

// ConferenceScan returns the conference-room parameters: ±60° azimuth at
// 1.3°, elevation fixed at 0.
func ConferenceScan() ScanConfig {
	return ScanConfig{AzMin: -60, AzMax: 60, AzStep: 1.3, Elevations: []float64{0}, SweepsPerPosition: 3}
}

// RunScan steps the head through cfg and captures a Trace per position.
// The DUT transmits full sector sweeps; the probe records them. The
// context is observed between positions.
func RunScan(ctx context.Context, link *wil.Link, dut, probe *wil.Device, head *RotationHead, cfg ScanConfig) ([]Trace, error) {
	if cfg.AzStep <= 0 || cfg.AzMax < cfg.AzMin {
		return nil, fmt.Errorf("testbed: invalid azimuth range [%v, %v] step %v", cfg.AzMin, cfg.AzMax, cfg.AzStep)
	}
	if len(cfg.Elevations) == 0 {
		return nil, fmt.Errorf("testbed: no elevations to scan")
	}
	if cfg.SweepsPerPosition <= 0 {
		cfg.SweepsPerPosition = 1
	}
	slots := dot11ad.SweepSchedule()
	var traces []Trace
	for _, el := range cfg.Elevations {
		for az := cfg.AzMin; az <= cfg.AzMax+1e-9; az += cfg.AzStep {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			head.PointAt(dut, az, el)
			trueAz, trueEl, ok := radio.DominantDepartureAngles(link.Env, dut.Pose(), probe.Pose())
			if !ok {
				continue // fully blocked position
			}
			tr := Trace{
				CommandedAz: az,
				CommandedEl: el,
				TrueAz:      trueAz,
				TrueEl:      trueEl,
				TrueSNR:     make(map[sector.ID]float64, 34),
			}
			for _, id := range sector.TalonTX() {
				tr.TrueSNR[id] = link.TrueSNR(dut, probe, id)
			}
			for s := 0; s < cfg.SweepsPerPosition; s++ {
				meas, err := link.RunTXSS(dut, probe, slots)
				if err != nil {
					return nil, err
				}
				tr.Sweeps = append(tr.Sweeps, meas)
			}
			traces = append(traces, tr)
		}
	}
	return traces, nil
}

// ScanGrid returns the azimuth×elevation grid a scan visits, useful for
// sizing result containers.
func ScanGrid(cfg ScanConfig) (*geom.Grid, error) {
	els := cfg.Elevations
	if len(els) == 1 {
		g, err := geom.UniformGrid(cfg.AzMin, cfg.AzMax, cfg.AzStep, els[0], els[0], 1)
		return g, err
	}
	return geom.NewGrid(axisFromRange(cfg.AzMin, cfg.AzMax, cfg.AzStep), els)
}

func axisFromRange(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}
