package radio

import (
	"math"
	"testing"

	"talon/internal/antenna"
	"talon/internal/channel"
	"talon/internal/geom"
	"talon/internal/stats"
)

func isotropic(az, el float64) float64 { return 0 }

func TestTrueSNRFreeSpace(t *testing.T) {
	env := channel.AnechoicChamber()
	b := DefaultBudget()
	tx := channel.Pose{}
	rxPose := channel.Pose{Pos: geom.Point{X: 3}, Yaw: 180}
	snr := TrueSNR(env, tx, rxPose, isotropic, isotropic, b)
	want := b.TxPowerDBm - channel.FSPL(3) - b.NoiseFloorDBm
	if math.Abs(snr-want) > 1e-9 {
		t.Fatalf("SNR = %v, want %v", snr, want)
	}
}

func TestTrueSNRGainAdds(t *testing.T) {
	env := channel.AnechoicChamber()
	b := DefaultBudget()
	tx := channel.Pose{}
	rx := channel.Pose{Yaw: 180}
	rx.Pos.X = 3
	base := TrueSNR(env, tx, rx, isotropic, isotropic, b)
	withGain := TrueSNR(env, tx, rx,
		func(az, el float64) float64 { return 10 }, isotropic, b)
	if math.Abs(withGain-base-10) > 1e-9 {
		t.Fatalf("10 dB TX gain changed SNR by %v", withGain-base)
	}
}

func TestTrueSNRUsesLocalAngles(t *testing.T) {
	env := channel.AnechoicChamber()
	b := DefaultBudget()
	tx := channel.Pose{}
	rx := channel.Pose{Yaw: 180}
	rx.Pos.X = 3
	// A TX gain pattern that only radiates at boresight: with the link
	// along boresight it contributes; when the device yaws away, the
	// local angle moves off boresight and the link collapses.
	pencil := func(az, el float64) float64 {
		if math.Abs(az) < 5 && math.Abs(el) < 5 {
			return 15
		}
		return -40
	}
	onAxis := TrueSNR(env, tx, rx, pencil, isotropic, b)
	txYawed := channel.Pose{Yaw: 60}
	offAxis := TrueSNR(env, txYawed, rx, pencil, isotropic, b)
	if onAxis-offAxis < 50 {
		t.Fatalf("yaw did not move pattern: on %v off %v", onAxis, offAxis)
	}
}

func TestTrueSNRMultipathAddsPower(t *testing.T) {
	b := DefaultBudget()
	tx := channel.Pose{}
	rx := channel.Pose{Yaw: 180}
	rx.Pos.X = 4
	losOnly := TrueSNR(channel.AnechoicChamber(), tx, rx, isotropic, isotropic, b)
	env := &channel.Environment{
		Name:       "mirror",
		Reflectors: []channel.Reflector{channel.NewWallY("w", 1, -10, 10, -10, 10, 0)},
	}
	withRefl := TrueSNR(env, tx, rx, isotropic, isotropic, b)
	if withRefl <= losOnly {
		t.Fatalf("reflection removed power: %v vs %v", withRefl, losOnly)
	}
}

func TestTrueSNRNoPaths(t *testing.T) {
	env := &channel.Environment{Name: "void", LOSBlocked: true}
	b := DefaultBudget()
	rx := channel.Pose{}
	rx.Pos.X = 3
	if snr := TrueSNR(env, channel.Pose{}, rx, isotropic, isotropic, b); !math.IsInf(snr, -1) {
		t.Fatalf("SNR without paths = %v", snr)
	}
}

func TestDominantRayAngles(t *testing.T) {
	env := channel.ConferenceRoom()
	tx := channel.Pose{Pos: geom.Point{X: 0, Y: 0, Z: 1.2}}
	rx := channel.Pose{Pos: geom.Point{X: 6, Y: 0, Z: 1.2}, Yaw: 180}
	az, el, ok := DominantRayAngles(env, tx, rx)
	if !ok {
		t.Fatal("no dominant ray")
	}
	// LOS dominates; the receiver is yawed 180°, so the arrival is on
	// its boresight.
	if math.Abs(az) > 1e-6 || math.Abs(el) > 1e-6 {
		t.Fatalf("dominant AoA = (%v, %v), want boresight", az, el)
	}
}

func TestCalibratedLinkBudgetWindow(t *testing.T) {
	// End-to-end sanity: a good Talon sector pair at 3 m lands above the
	// firmware's 12 dB SNR ceiling, and remains decodable at 6 m.
	rng := stats.NewRNG(1)
	arr, err := antenna.New(antenna.TalonConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cb := antenna.Talon(arr)
	w63, _ := cb.Weights(63)
	wRX, _ := cb.Weights(0)
	txGain := func(az, el float64) float64 { return arr.Gain(w63, az, el) }
	rxGain := func(az, el float64) float64 { return arr.Gain(wRX, az, el) }
	b := DefaultBudget()
	tx := channel.Pose{}
	rx := channel.Pose{Yaw: 180}
	rx.Pos.X = 3
	snr3 := TrueSNR(channel.AnechoicChamber(), tx, rx, txGain, rxGain, b)
	if snr3 < 10 || snr3 > 24 {
		t.Fatalf("3 m boresight SNR = %v, want at or above the 12 dB reporting ceiling", snr3)
	}
	rx.Pos.X = 6
	snr6 := TrueSNR(channel.AnechoicChamber(), tx, rx, txGain, rxGain, b)
	if snr6 < 2 {
		t.Fatalf("6 m boresight SNR = %v, too weak", snr6)
	}
}

func TestObserveQuantizationAndClamp(t *testing.T) {
	m := DefaultMeasurementModel()
	// Suppress stochastics to test the deterministic pipeline.
	m.SNRNoiseStdDB, m.RSSINoiseStdDB, m.LowSNRNoiseBoost = 0, 0, 0
	m.OutlierProb, m.BaseMissProb = 0, 0
	m.DecodeThresholdDB = -100 // always decodable for this test
	rng := stats.NewRNG(1)
	meas, ok := m.Observe(8.13, rng)
	if !ok {
		t.Fatal("strong frame missed")
	}
	if meas.SNR != 8.25 {
		t.Fatalf("SNR = %v, want quarter-dB 8.25", meas.SNR)
	}
	if got := math.Mod(meas.RSSI, RSSIQuantumDB); got != 0 {
		t.Fatalf("RSSI not on 1 dB grid: %v", meas.RSSI)
	}
	// Clamping.
	meas, ok = m.Observe(25, rng)
	if !ok || meas.SNR != SNRMaxDB {
		t.Fatalf("high SNR clamp: %+v ok=%v", meas, ok)
	}
	meas, ok = m.Observe(-6.7, rng)
	if !ok || meas.SNR < SNRMinDB {
		t.Fatalf("low SNR clamp: %+v ok=%v", meas, ok)
	}
}

func TestObserveRSSIScale(t *testing.T) {
	m := DefaultMeasurementModel()
	m.SNRNoiseStdDB, m.RSSINoiseStdDB, m.LowSNRNoiseBoost = 0, 0, 0
	m.OutlierProb, m.BaseMissProb = 0, 0
	rng := stats.NewRNG(1)
	meas, _ := m.Observe(10, rng)
	if want := 10 + m.NoiseFloorDBm; math.Abs(meas.RSSI-want) > 0.5 {
		t.Fatalf("RSSI = %v, want about %v", meas.RSSI, want)
	}
}

func TestDecodeProbMonotone(t *testing.T) {
	m := DefaultMeasurementModel()
	prev := -1.0
	for snr := -15.0; snr <= 12; snr += 0.5 {
		p := m.DecodeProb(snr)
		if p < prev {
			t.Fatalf("DecodeProb not monotone at %v", snr)
		}
		if p < 0 || p > 1 {
			t.Fatalf("DecodeProb out of range: %v", p)
		}
		prev = p
	}
	if p := m.DecodeProb(math.Inf(-1)); p != 0 {
		t.Fatalf("DecodeProb(-Inf) = %v", p)
	}
	if p := m.DecodeProb(12); p < 0.9 {
		t.Fatalf("strong frames decode with p = %v", p)
	}
}

func TestObserveMissesWeakFrames(t *testing.T) {
	m := DefaultMeasurementModel()
	rng := stats.NewRNG(2)
	missedWeak, missedStrong := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, ok := m.Observe(-9, rng); !ok {
			missedWeak++
		}
		if _, ok := m.Observe(11, rng); !ok {
			missedStrong++
		}
	}
	if missedWeak < n/2 {
		t.Fatalf("weak frames missed only %d/%d", missedWeak, n)
	}
	// Strong frames still get silently dropped occasionally.
	if missedStrong == 0 {
		t.Fatal("no silent drops at high SNR")
	}
	if missedStrong > n/5 {
		t.Fatalf("too many drops at high SNR: %d/%d", missedStrong, n)
	}
}

func TestObserveLowSNRNoisier(t *testing.T) {
	m := DefaultMeasurementModel()
	m.OutlierProb = 0
	rng := stats.NewRNG(3)
	spread := func(trueSNR float64) float64 {
		var vals []float64
		for i := 0; i < 3000; i++ {
			if meas, ok := m.Observe(trueSNR, rng); ok {
				vals = append(vals, meas.SNR)
			}
		}
		return stats.StdDev(vals)
	}
	lo, hi := spread(-2), spread(10)
	if lo <= hi {
		t.Fatalf("low-SNR readings not noisier: std %v vs %v", lo, hi)
	}
}

func TestSNRAndRSSIOutliersIndependent(t *testing.T) {
	m := DefaultMeasurementModel()
	m.SNRNoiseStdDB, m.RSSINoiseStdDB, m.LowSNRNoiseBoost = 0.01, 0.01, 0
	m.OutlierProb = 0.2
	m.BaseMissProb = 0
	rng := stats.NewRNG(4)
	both, either := 0, 0
	for i := 0; i < 5000; i++ {
		meas, ok := m.Observe(5, rng)
		if !ok {
			continue
		}
		snrOut := math.Abs(meas.SNR-5) > 2
		rssiOut := math.Abs(meas.RSSI-(5+m.NoiseFloorDBm)) > 2
		if snrOut || rssiOut {
			either++
		}
		if snrOut && rssiOut {
			both++
		}
	}
	if either == 0 {
		t.Fatal("no outliers generated")
	}
	// Independent draws: joint outliers must be much rarer than single
	// ones (the paper: "fluctuations are not observable in both values
	// at the same time").
	if float64(both) > 0.3*float64(either) {
		t.Fatalf("outliers too correlated: both=%d either=%d", both, either)
	}
}
