// Package radio computes link budgets over a channel.Environment and
// reproduces the QCA9500 firmware's signal-strength reporting defects: the
// quarter-dB SNR quantization clamped to [-7, 12] dB, RSSI readings whose
// fluctuations are decorrelated from the SNR readings, severe outliers on
// weak channels, and missing reports.
package radio

import (
	"math"

	"talon/internal/channel"
	"talon/internal/stats"
)

// GainFunc returns the directive gain (dB) of an antenna toward a
// direction in its local frame.
type GainFunc func(az, el float64) float64

// Budget collects the scalar link-budget terms.
type Budget struct {
	// TxPowerDBm is the conducted transmit power per frame.
	TxPowerDBm float64
	// NoiseFloorDBm is thermal noise plus receiver noise figure over the
	// 1.76 GHz 802.11ad channel.
	NoiseFloorDBm float64
}

// DefaultBudget returns the calibrated budget of the simulated testbed.
// With the Talon array model a good sector pair reaches ≈18 dB true SNR
// at 3 m — the chamber-measured patterns of strong sectors saturate at
// the firmware's 12 dB reporting ceiling exactly as the flat-topped main
// lobes of the paper's Figure 5 do — and ≈11 dB at the 6 m
// conference-room distance, where readings stay inside the window and
// fluctuate, driving the stock sweep's selection instability.
func DefaultBudget() Budget {
	return Budget{
		TxPowerDBm:    9,
		NoiseFloorDBm: -71.5, // -174 dBm/Hz + 92.5 dB (1.76 GHz) + 10 dB NF
	}
}

// TrueSNR combines every propagation ray between the posed devices with
// the endpoint gain functions and returns the resulting SNR in dB.
// Rays add up in power (the selection algorithm is non-coherent).
func TrueSNR(env *channel.Environment, txPose, rxPose channel.Pose, txGain, rxGain GainFunc, b Budget) float64 {
	rays := env.Rays(txPose.Pos, rxPose.Pos)
	power := 0.0
	for _, r := range rays {
		azT, elT := txPose.ToLocal(r.AoD)
		azR, elR := rxPose.ToLocal(r.AoA)
		gt := txGain(azT, elT)
		gr := rxGain(azR, elR)
		if math.IsInf(gt, -1) || math.IsInf(gr, -1) || math.IsNaN(gt) || math.IsNaN(gr) {
			continue
		}
		rxDBm := b.TxPowerDBm + gt - r.PathLossDB() + gr
		power += stats.Lin(rxDBm)
	}
	if power <= 0 {
		return math.Inf(-1)
	}
	return stats.DB(power) - b.NoiseFloorDBm
}

// DominantRayAngles returns the angle of arrival (local to rxPose) of the
// strongest ray under isotropic endpoints — the physical ground truth the
// angle-of-arrival estimator is judged against.
func DominantRayAngles(env *channel.Environment, txPose, rxPose channel.Pose) (az, el float64, ok bool) {
	rays := env.Rays(txPose.Pos, rxPose.Pos)
	best := math.Inf(1)
	for _, r := range rays {
		if loss := r.PathLossDB(); loss < best {
			best = loss
			az, el = rxPose.ToLocal(r.AoA)
			ok = true
		}
	}
	return az, el, ok
}

// DominantDepartureAngles returns the angle of departure (local to txPose)
// of the strongest ray under isotropic endpoints. Compressive sector
// selection estimates exactly this angle: the direction the transmitter
// should steer toward.
func DominantDepartureAngles(env *channel.Environment, txPose, rxPose channel.Pose) (az, el float64, ok bool) {
	rays := env.Rays(txPose.Pos, rxPose.Pos)
	best := math.Inf(1)
	for _, r := range rays {
		if loss := r.PathLossDB(); loss < best {
			best = loss
			az, el = txPose.ToLocal(r.AoD)
			ok = true
		}
	}
	return az, el, ok
}
