package radio

import (
	"math"

	"talon/internal/stats"
)

// Measurement is what the (patched) firmware reports for one received SSW
// frame: the quantized SNR and the RSSI. The two readings are acquired by
// different hardware paths, so their fluctuations are decorrelated even
// though both track the same true signal strength — exactly the property
// Section 5 of the paper exploits in Eq. 5.
type Measurement struct {
	// SNR in dB, quantized to quarter-dB steps and clamped to
	// [SNRMinDB, SNRMaxDB].
	SNR float64
	// RSSI in dBm.
	RSSI float64
}

// Firmware reporting window for SNR (Section 4.3 of the paper).
const (
	SNRMinDB      = -7.0
	SNRMaxDB      = 12.0
	SNRQuantumDB  = 0.25
	RSSIQuantumDB = 1.0
)

// MeasurementModel reproduces the reporting defects of the stock firmware.
// The zero value is unusable; use DefaultMeasurementModel.
type MeasurementModel struct {
	// DecodeThresholdDB is the 50%-decode SNR of SSW frames (MCS 0
	// control PHY sensitivity in this budget's units).
	DecodeThresholdDB float64
	// DecodeWidthDB controls how fast decoding probability rises around
	// the threshold.
	DecodeWidthDB float64
	// BaseMissProb is the probability that the firmware silently drops
	// the report for a perfectly decodable frame.
	BaseMissProb float64
	// SNRNoiseStdDB / RSSINoiseStdDB are the reading fluctuations at high
	// SNR; fluctuations grow toward low SNR (LowSNRNoiseBoost at and
	// below 0 dB true SNR).
	SNRNoiseStdDB    float64
	RSSINoiseStdDB   float64
	LowSNRNoiseBoost float64
	// OutlierProb / OutlierScaleDB inject the severe heavy-tailed
	// outliers observed when reading the ring buffer. SNR and RSSI draw
	// outliers independently.
	OutlierProb    float64
	OutlierScaleDB float64
	// NoiseFloorDBm anchors the RSSI scale: RSSI ≈ SNR + noise floor.
	NoiseFloorDBm float64
}

// DefaultMeasurementModel returns the defect model calibrated against the
// behaviours reported in Sections 4.3 and 5 of the paper.
func DefaultMeasurementModel() MeasurementModel {
	return MeasurementModel{
		DecodeThresholdDB: -9.0,
		DecodeWidthDB:     1.5,
		BaseMissProb:      0.06,
		SNRNoiseStdDB:     1.0,
		RSSINoiseStdDB:    1.2,
		LowSNRNoiseBoost:  2.5,
		OutlierProb:       0.07,
		OutlierScaleDB:    7.0,
		NoiseFloorDBm:     -71.5,
	}
}

// DecodeProb returns the probability that a frame at trueSNR (dB) is
// decoded and reported.
func (m MeasurementModel) DecodeProb(trueSNR float64) float64 {
	if math.IsInf(trueSNR, -1) {
		return 0
	}
	p := 1 / (1 + math.Exp(-(trueSNR-m.DecodeThresholdDB)/m.DecodeWidthDB))
	return p * (1 - m.BaseMissProb)
}

// Observe produces the firmware's report for a frame received at trueSNR,
// or ok=false when the frame is missed (not decodable, or silently
// dropped by the firmware).
func (m MeasurementModel) Observe(trueSNR float64, rng *stats.RNG) (Measurement, bool) {
	if !rng.Bool(m.DecodeProb(trueSNR)) {
		return Measurement{}, false
	}
	boost := m.LowSNRNoiseBoost / (1 + math.Exp((trueSNR-2.0)/2.0))
	// Outliers concentrate on weak channels ("especially channels with
	// low gains resulted in high signal strength deviations") and are
	// capped at twice their scale.
	pOut := m.OutlierProb * (0.3 + 0.7/(1+math.Exp((trueSNR-3.0)/2.0)))
	snr := trueSNR + rng.Norm(0, m.SNRNoiseStdDB+boost)
	if rng.Bool(pOut) {
		snr += clampF(rng.StudentTish(m.OutlierScaleDB), -2*m.OutlierScaleDB, 2*m.OutlierScaleDB)
	}
	rssi := trueSNR + m.NoiseFloorDBm + rng.Norm(0, m.RSSINoiseStdDB+boost)
	if rng.Bool(pOut) {
		rssi += clampF(rng.StudentTish(m.OutlierScaleDB), -2*m.OutlierScaleDB, 2*m.OutlierScaleDB)
	}
	return Measurement{
		SNR:  quantizeClamp(snr, SNRQuantumDB, SNRMinDB, SNRMaxDB),
		RSSI: quantize(rssi, RSSIQuantumDB),
	}, true
}

func quantize(v, quantum float64) float64 {
	return math.Round(v/quantum) * quantum
}

func quantizeClamp(v, quantum, lo, hi float64) float64 {
	v = quantize(v, quantum)
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
