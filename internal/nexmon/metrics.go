package nexmon

import "talon/internal/obs"

// Patch-framework metrics (see README, "Observability").
var (
	metPatchesApplied = obs.NewCounter("nexmon_patches_applied_total",
		"firmware patches installed through the framework")
	metPatchErrors = obs.NewCounter("nexmon_patch_errors_total",
		"patch installations rejected (validation or memory fault)")
	metWriteFaults = obs.NewCounter("nexmon_write_faults_total",
		"chip-memory writes rejected by a write-protected low code mapping")
)
