// Package nexmon models the firmware-patching side of the paper's research
// platform: the QCA9500's two ARC600 processors (ucode and firmware) each
// have a write-protected code partition and a writable data partition at
// low addresses, and all four regions are remapped to high addresses where
// they are writable and host-accessible (Figure 1 of the paper).
//
// Patches are written through the high aliases — exactly the trick the
// authors discovered to place merged code+data patches despite the
// write-protected low code regions.
package nexmon

import (
	"fmt"
	"sort"
)

// Memory layout of the simulated QCA9500 (addresses from Figure 1).
const (
	// Low (execution-view) regions.
	UcodeCodeBase = 0x00000000
	UcodeCodeSize = 0x00020000
	UcodeDataBase = 0x00020000
	UcodeDataSize = 0x00020000
	FwCodeBase    = 0x00080000
	FwCodeSize    = 0x00004000
	FwDataBase    = 0x00084000
	FwDataSize    = 0x00004000

	// High (host-view, writable) aliases.
	FwCodeAlias    = 0x008c0000
	FwDataAlias    = 0x00900000
	UcodeCodeAlias = 0x00920000
	UcodeDataAlias = 0x00940000
)

// region is one physical memory bank with its two mappings.
type region struct {
	name  string
	base  uint32 // low mapping
	alias uint32 // high mapping
	size  uint32
	lowRO bool // low mapping write-protected (code partitions)
	data  []byte
}

// Memory is the chip's address space as seen by the host and the two
// cores: four banks, each visible at a low and a high address.
type Memory struct {
	regions []*region
}

// NewQCA9500Memory builds the memory map of Figure 1 with zeroed banks.
func NewQCA9500Memory() *Memory {
	mk := func(name string, base, alias, size uint32, lowRO bool) *region {
		return &region{name: name, base: base, alias: alias, size: size, lowRO: lowRO, data: make([]byte, size)}
	}
	m := &Memory{regions: []*region{
		mk("ucode-code", UcodeCodeBase, UcodeCodeAlias, UcodeCodeSize, true),
		mk("ucode-data", UcodeDataBase, UcodeDataAlias, UcodeDataSize, false),
		mk("fw-code", FwCodeBase, FwCodeAlias, FwCodeSize, true),
		mk("fw-data", FwDataBase, FwDataAlias, FwDataSize, false),
	}}
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].base < m.regions[j].base })
	return m
}

// locate resolves addr to a region and offset, reporting whether the
// access went through the writable high alias.
func (m *Memory) locate(addr uint32) (r *region, off uint32, viaAlias bool, err error) {
	for _, reg := range m.regions {
		if addr >= reg.base && addr < reg.base+reg.size {
			return reg, addr - reg.base, false, nil
		}
		if addr >= reg.alias && addr < reg.alias+reg.size {
			return reg, addr - reg.alias, true, nil
		}
	}
	return nil, 0, false, fmt.Errorf("nexmon: address %#08x unmapped", addr)
}

// Read copies n bytes starting at addr. Reads may not cross region
// boundaries (matching how the real banks are accessed).
func (m *Memory) Read(addr uint32, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("nexmon: negative read length %d", n)
	}
	r, off, _, err := m.locate(addr)
	if err != nil {
		return nil, err
	}
	if off+uint32(n) > r.size {
		return nil, fmt.Errorf("nexmon: read of %d bytes at %#08x crosses %s boundary", n, addr, r.name)
	}
	out := make([]byte, n)
	copy(out, r.data[off:])
	return out, nil
}

// Write stores data starting at addr. Writes through a low code-partition
// address fail with ErrWriteProtected; the same bank accepts the write
// through its high alias.
func (m *Memory) Write(addr uint32, data []byte) error {
	r, off, viaAlias, err := m.locate(addr)
	if err != nil {
		return err
	}
	if off+uint32(len(data)) > r.size {
		return fmt.Errorf("nexmon: write of %d bytes at %#08x crosses %s boundary", len(data), addr, r.name)
	}
	if r.lowRO && !viaAlias {
		metWriteFaults.Inc()
		return fmt.Errorf("nexmon: %w: %s at %#08x (use alias %#08x)", ErrWriteProtected, r.name, addr, r.alias+off)
	}
	copy(r.data[off:], data)
	return nil
}

// ErrWriteProtected marks writes rejected by a low code mapping.
var ErrWriteProtected = fmt.Errorf("write-protected code region")

// AliasOf translates a low address into its writable high alias.
func (m *Memory) AliasOf(addr uint32) (uint32, error) {
	r, off, viaAlias, err := m.locate(addr)
	if err != nil {
		return 0, err
	}
	if viaAlias {
		return addr, nil
	}
	return r.alias + off, nil
}

// RegionName reports the bank an address belongs to, for diagnostics.
func (m *Memory) RegionName(addr uint32) (string, error) {
	r, _, _, err := m.locate(addr)
	if err != nil {
		return "", err
	}
	return r.name, nil
}
