package nexmon

import (
	"fmt"
	"sort"
)

// Patch is one firmware modification: bytes placed at a target address,
// written in C against the vendor blob in the real framework, reduced here
// to its observable effect on chip memory.
type Patch struct {
	// Name identifies the patch (e.g. "ssw-dump", "sector-override").
	Name string
	// Description says what the patch hooks.
	Description string
	// Addr is the placement address. Placing into a code partition
	// requires the high alias, as on the real chip.
	Addr uint32
	// Data is the patch payload.
	Data []byte
}

// Framework applies patches to a chip memory and tracks what is installed,
// mirroring the role of the Nexmon patching framework in the paper.
type Framework struct {
	mem     *Memory
	applied map[string]Patch
}

// NewFramework wraps mem.
func NewFramework(mem *Memory) *Framework {
	return &Framework{mem: mem, applied: make(map[string]Patch)}
}

// Memory returns the underlying chip memory.
func (f *Framework) Memory() *Memory { return f.mem }

// Apply validates and installs p. A patch name can only be installed once.
func (f *Framework) Apply(p Patch) error {
	if err := f.apply(p); err != nil {
		metPatchErrors.Inc()
		return err
	}
	metPatchesApplied.Inc()
	return nil
}

func (f *Framework) apply(p Patch) error {
	if p.Name == "" {
		return fmt.Errorf("nexmon: patch without name")
	}
	if _, dup := f.applied[p.Name]; dup {
		return fmt.Errorf("nexmon: patch %q already applied", p.Name)
	}
	if len(p.Data) == 0 {
		return fmt.Errorf("nexmon: patch %q has no payload", p.Name)
	}
	if err := f.mem.Write(p.Addr, p.Data); err != nil {
		return fmt.Errorf("nexmon: patch %q: %w", p.Name, err)
	}
	f.applied[p.Name] = p
	return nil
}

// Applied reports whether the named patch is installed.
func (f *Framework) Applied(name string) bool {
	_, ok := f.applied[name]
	return ok
}

// Patches lists installed patches sorted by name.
func (f *Framework) Patches() []Patch {
	out := make([]Patch, 0, len(f.applied))
	for _, p := range f.applied {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
