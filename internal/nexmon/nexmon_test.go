package nexmon

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestLowCodeWriteProtected(t *testing.T) {
	m := NewQCA9500Memory()
	err := m.Write(UcodeCodeBase+0x100, []byte{1, 2, 3})
	if !errors.Is(err, ErrWriteProtected) {
		t.Fatalf("low ucode code write: %v, want ErrWriteProtected", err)
	}
	err = m.Write(FwCodeBase, []byte{1})
	if !errors.Is(err, ErrWriteProtected) {
		t.Fatalf("low fw code write: %v", err)
	}
}

func TestAliasWriteVisibleAtLowAddress(t *testing.T) {
	// The paper's key discovery: code memory is writable at its high
	// alias, and the cores see the patch at the low execution address.
	m := NewQCA9500Memory()
	payload := []byte("patch!")
	if err := m.Write(UcodeCodeAlias+0x100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(UcodeCodeBase+0x100, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("low view = %q", got)
	}
}

func TestDataRegionsWritableBothViews(t *testing.T) {
	m := NewQCA9500Memory()
	if err := m.Write(FwDataBase+4, []byte{0xaa}); err != nil {
		t.Fatalf("low data write: %v", err)
	}
	if err := m.Write(FwDataAlias+8, []byte{0xbb}); err != nil {
		t.Fatalf("alias data write: %v", err)
	}
	lo, _ := m.Read(FwDataAlias+4, 1)
	hi, _ := m.Read(FwDataBase+8, 1)
	if lo[0] != 0xaa || hi[0] != 0xbb {
		t.Fatalf("cross-view reads: %x %x", lo, hi)
	}
}

func TestUnmappedAndBoundaryAccess(t *testing.T) {
	m := NewQCA9500Memory()
	if _, err := m.Read(0x00500000, 4); err == nil {
		t.Error("unmapped read accepted")
	}
	if err := m.Write(0x00500000, []byte{1}); err == nil {
		t.Error("unmapped write accepted")
	}
	if _, err := m.Read(UcodeCodeBase+UcodeCodeSize-2, 4); err == nil {
		t.Error("boundary-crossing read accepted")
	}
	if err := m.Write(FwDataAlias+FwDataSize-1, []byte{1, 2}); err == nil {
		t.Error("boundary-crossing write accepted")
	}
	if _, err := m.Read(UcodeDataBase, -1); err == nil {
		t.Error("negative length read accepted")
	}
}

func TestAliasOf(t *testing.T) {
	m := NewQCA9500Memory()
	a, err := m.AliasOf(UcodeCodeBase + 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if a != UcodeCodeAlias+0x42 {
		t.Fatalf("AliasOf = %#x", a)
	}
	// Already an alias: unchanged.
	a, err = m.AliasOf(FwDataAlias + 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != FwDataAlias+7 {
		t.Fatalf("AliasOf(alias) = %#x", a)
	}
	if _, err := m.AliasOf(0x00700000); err == nil {
		t.Fatal("AliasOf unmapped accepted")
	}
}

func TestRegionName(t *testing.T) {
	m := NewQCA9500Memory()
	for addr, want := range map[uint32]string{
		UcodeCodeBase:  "ucode-code",
		UcodeDataAlias: "ucode-data",
		FwCodeAlias:    "fw-code",
		FwDataBase:     "fw-data",
	} {
		got, err := m.RegionName(addr)
		if err != nil || got != want {
			t.Errorf("RegionName(%#x) = %q, %v; want %q", addr, got, err, want)
		}
	}
}

func TestReadWriteRoundTripProperty(t *testing.T) {
	m := NewQCA9500Memory()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := UcodeDataBase + uint32(off)%(UcodeDataSize-uint32(len(data)))
		if err := m.Write(addr, data); err != nil {
			return false
		}
		got, err := m.Read(addr, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameworkApply(t *testing.T) {
	fw := NewFramework(NewQCA9500Memory())
	p := Patch{Name: "test", Addr: UcodeCodeAlias + 0x1000, Data: []byte{0xde, 0xad}}
	if err := fw.Apply(p); err != nil {
		t.Fatal(err)
	}
	if !fw.Applied("test") || fw.Applied("other") {
		t.Fatal("Applied wrong")
	}
	// Payload is visible at the execution address.
	got, err := fw.Memory().Read(UcodeCodeBase+0x1000, 2)
	if err != nil || got[0] != 0xde || got[1] != 0xad {
		t.Fatalf("patch not visible at low address: %x %v", got, err)
	}
	if err := fw.Apply(p); err == nil {
		t.Fatal("duplicate patch accepted")
	}
}

func TestFrameworkApplyValidation(t *testing.T) {
	fw := NewFramework(NewQCA9500Memory())
	if err := fw.Apply(Patch{Addr: UcodeCodeAlias, Data: []byte{1}}); err == nil {
		t.Error("unnamed patch accepted")
	}
	if err := fw.Apply(Patch{Name: "empty", Addr: UcodeCodeAlias}); err == nil {
		t.Error("empty patch accepted")
	}
	// Writing through the low, protected address must fail like on the
	// real chip — Nexmon assumed writable memory and the authors had to
	// route patches through the alias.
	if err := fw.Apply(Patch{Name: "low", Addr: UcodeCodeBase + 0x500, Data: []byte{1}}); err == nil {
		t.Error("low code patch accepted")
	}
}

func TestFrameworkPatchesSorted(t *testing.T) {
	fw := NewFramework(NewQCA9500Memory())
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := fw.Apply(Patch{Name: name, Addr: FwDataAlias, Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	ps := fw.Patches()
	if len(ps) != 3 || ps[0].Name != "alpha" || ps[1].Name != "mid" || ps[2].Name != "zeta" {
		t.Fatalf("Patches() = %v", ps)
	}
}
