package stats

import "math"

// IntHist is a fixed-bound int64 histogram with an implicit +Inf
// overflow bucket. All state is integer arithmetic — counts, sums and
// the running max — so partial histograms filled by parallel workers
// can be merged in any order and still produce bit-identical summaries
// for a fixed input set. It backs the deterministic scorecards of the
// fleet simulator and the out-of-core campaign pipeline.
//
// The zero value is unusable; construct with NewIntHist.
type IntHist struct {
	bounds []int64
	counts []int64
	sum    int64
	max    int64
	n      int64
}

// NewIntHist returns a histogram over the given ascending bucket upper
// bounds plus an implicit overflow bucket. The bounds slice is retained,
// not copied.
func NewIntHist(bounds []int64) IntHist {
	return IntHist{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *IntHist) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Reset zeroes all buckets and running aggregates.
func (h *IntHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.max, h.n = 0, 0, 0
}

// Merge folds o into h. The two histograms must share bounds.
func (h *IntHist) Merge(o *IntHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (the exact max for the overflow bucket). Bucket-bound
// quantiles are coarse but exactly reproducible.
func (h *IntHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) && h.bounds[i] < h.max {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Mean returns the truncated integer mean (0 when empty).
func (h *IntHist) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Count returns the number of observations.
func (h *IntHist) Count() int64 { return h.n }

// Max returns the largest observed value (0 when empty).
func (h *IntHist) Max() int64 { return h.max }

// Sum returns the sum of all observations.
func (h *IntHist) Sum() int64 { return h.sum }

// Initialized reports whether the histogram was built with NewIntHist
// (the zero value is unusable and must be initialized before Observe).
func (h *IntHist) Initialized() bool { return h.counts != nil }

// Counts returns a copy of the per-bucket counts, overflow bucket last.
func (h *IntHist) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}
