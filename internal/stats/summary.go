package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
// NaN elements are ignored; if all elements are NaN the result is NaN.
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// StdDev returns the sample standard deviation of xs (NaN-aware), or NaN if
// fewer than two valid samples exist.
func StdDev(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - m
		sum += d * d
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(n-1))
}

// Quantile returns the q-quantile (q in [0, 1]) of xs using linear
// interpolation between order statistics. NaN elements are ignored. It
// returns NaN for an empty input.
func Quantile(xs []float64, q float64) float64 {
	v := compactSorted(xs)
	if len(v) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(v) {
		return v[len(v)-1]
	}
	return v[i]*(1-frac) + v[i+1]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the smallest valid value, or NaN for an empty input.
func Min(xs []float64) float64 {
	out, ok := math.NaN(), false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if !ok || x < out {
			out, ok = x, true
		}
	}
	return out
}

// Max returns the largest valid value, or NaN for an empty input.
func Max(xs []float64) float64 {
	out, ok := math.NaN(), false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if !ok || x > out {
			out, ok = x, true
		}
	}
	return out
}

func compactSorted(xs []float64) []float64 {
	v := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			v = append(v, x)
		}
	}
	sort.Float64s(v)
	return v
}

// BoxStats summarizes a sample the way the paper's box plots do: the box
// spans the central 50% of the data, the whiskers the central 99%, and the
// dash is the median.
type BoxStats struct {
	Median  float64
	BoxLo   float64 // 25th percentile
	BoxHi   float64 // 75th percentile
	WhiskLo float64 // 0.5th percentile
	WhiskHi float64 // 99.5th percentile
	N       int     // number of valid samples
}

// Box computes the box-plot summary of xs. NaN elements are ignored.
func Box(xs []float64) BoxStats {
	v := compactSorted(xs)
	b := BoxStats{N: len(v)}
	if len(v) == 0 {
		nan := math.NaN()
		return BoxStats{Median: nan, BoxLo: nan, BoxHi: nan, WhiskLo: nan, WhiskHi: nan}
	}
	b.Median = Quantile(v, 0.5)
	b.BoxLo = Quantile(v, 0.25)
	b.BoxHi = Quantile(v, 0.75)
	b.WhiskLo = Quantile(v, 0.005)
	b.WhiskHi = Quantile(v, 0.995)
	return b
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// DB converts a linear power ratio to decibels; zero or negative input
// yields -Inf.
func DB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// Lin converts decibels to a linear power ratio.
func Lin(db float64) float64 { return math.Pow(10, db/10) }
