package stats

import (
	"math"
	"testing"
)

// drain consumes n Float64 draws and returns them.
func drain(g *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Float64()
	}
	return out
}

// TestRNGSeedDeterminism: the same seed must replay the identical
// stream — the property every experiment's reproducibility rests on.
func TestRNGSeedDeterminism(t *testing.T) {
	a := drain(NewRNG(42), 64)
	b := drain(NewRNG(42), 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v for the same seed", i, a[i], b[i])
		}
	}
	c := drain(NewRNG(43), 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical streams")
	}
}

// TestRNGSplitIsolation: a child stream is fixed by (parent state,
// label); what one child consumes must not shift a sibling's stream.
func TestRNGSplitIsolation(t *testing.T) {
	mk := func() (*RNG, *RNG) {
		parent := NewRNG(7)
		return parent.Split("noise"), parent.Split("probes")
	}

	n1, p1 := mk()
	n2, p2 := mk()

	// Consume the two sides in different interleavings; each child must
	// see its own stream regardless.
	drain(n1, 100) // n1 drains before p1 draws anything
	a := drain(p1, 16)
	b := drain(p2, 16) // p2 draws first on the second pair
	drain(n2, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: sibling consumption shifted the %q stream", i, "probes")
		}
	}
}

// TestRNGSplitLabelSeparation: different labels must derive different
// streams from the same parent state.
func TestRNGSplitLabelSeparation(t *testing.T) {
	a := drain(NewRNG(7).Split("alpha"), 32)
	b := drain(NewRNG(7).Split("beta"), 32)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal(`Split("alpha") and Split("beta") produced identical streams`)
	}
}

// TestRNGSplitReseed: re-seeding the parent replays the same children.
func TestRNGSplitReseed(t *testing.T) {
	a := drain(NewRNG(99).Split("x").Split("y"), 32)
	b := drain(NewRNG(99).Split("x").Split("y"), 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: nested splits did not replay after re-seed", i)
		}
	}
}

// TestRNGSplitOrderSensitivity: Split consumes parent state, so the
// split order is part of the contract — document it.
func TestRNGSplitOrderSensitivity(t *testing.T) {
	p1 := NewRNG(5)
	first := drain(p1.Split("a"), 8)

	p2 := NewRNG(5)
	p2.Split("other") // advances the parent before "a" splits off
	shifted := drain(p2.Split("a"), 8)

	same := 0
	for i := range first {
		if first[i] == shifted[i] {
			same++
		}
	}
	if same == len(first) {
		t.Fatal("an earlier sibling split did not advance the parent stream")
	}
}

func TestRNGSample(t *testing.T) {
	g := NewRNG(11)
	s := g.Sample(34, 14)
	if len(s) != 14 {
		t.Fatalf("Sample(34, 14) returned %d values", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 34 {
			t.Fatalf("Sample value %d out of [0, 34)", v)
		}
		if seen[v] {
			t.Fatalf("Sample value %d repeated", v)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	g.Sample(3, 4)
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Uniform(2, 6)
		if v < 2 || v >= 6 {
			t.Fatalf("Uniform(2, 6) produced %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("Uniform(2, 6) mean = %v, want ~4", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += g.Norm(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("Norm(10, 2) mean = %v, want ~10", mean)
	}

	trues := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			trues++
		}
	}
	if frac := float64(trues) / n; math.Abs(frac-0.25) > 0.02 {
		t.Errorf("Bool(0.25) hit rate = %v, want ~0.25", frac)
	}
}
