package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(1)
	a := root.Split("alpha")
	root2 := NewRNG(1)
	b := root2.Split("alpha")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split with same label from same parent state diverged")
		}
	}
	// Different labels must give different streams.
	x := NewRNG(1).Split("alpha")
	y := NewRNG(1).Split("beta")
	same := 0
	for i := 0; i < 20; i++ {
		if x.Float64() == y.Float64() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("Split labels produced identical streams")
	}
}

func TestSample(t *testing.T) {
	g := NewRNG(7)
	s := g.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	g.Sample(3, 4)
}

func TestSampleFull(t *testing.T) {
	g := NewRNG(9)
	s := g.Sample(5, 5)
	sort.Ints(s)
	for i, v := range s {
		if v != i {
			t.Fatalf("Sample(5,5) missing %d", i)
		}
	}
}

func TestRNGDistributionsSane(t *testing.T) {
	g := NewRNG(123)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Norm(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-3) > 0.1 || math.Abs(std-2) > 0.1 {
		t.Fatalf("Norm(3,2): mean %v std %v", mean, std)
	}
	for i := 0; i < 1000; i++ {
		u := g.Uniform(-2, 5)
		if u < -2 || u >= 5 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
	heads := 0
	for i := 0; i < 10000; i++ {
		if g.Bool(0.25) {
			heads++
		}
	}
	if heads < 2200 || heads > 2800 {
		t.Fatalf("Bool(0.25) frequency: %d/10000", heads)
	}
}

func TestStudentTishHeavyTails(t *testing.T) {
	g := NewRNG(5)
	big := 0
	for i := 0; i < 10000; i++ {
		if math.Abs(g.StudentTish(1)) > 4 {
			big++
		}
	}
	// A unit normal would exceed 4 sigma ~0.006% of the time; the
	// heavy-tailed draw must do so far more often.
	if big < 50 {
		t.Fatalf("StudentTish tails too light: %d/10000 beyond 4", big)
	}
}

func TestMeanMedianQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Fatalf("Median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := Quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Fatalf("interpolated quantile = %v", got)
	}
}

func TestNaNHandling(t *testing.T) {
	nan := math.NaN()
	xs := []float64{nan, 2, nan, 4}
	if got := Mean(xs); got != 3 {
		t.Fatalf("NaN-aware Mean = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("NaN-aware Median = %v", got)
	}
	if got := Min(xs); got != 2 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 4 {
		t.Fatalf("Max = %v", got)
	}
	if !math.IsNaN(Mean([]float64{nan})) || !math.IsNaN(Mean(nil)) {
		t.Fatal("empty/all-NaN Mean not NaN")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty Quantile not NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("StdDev of singleton not NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBox(t *testing.T) {
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		xs = append(xs, float64(i))
	}
	b := Box(xs)
	if b.N != 1000 {
		t.Fatalf("N = %d", b.N)
	}
	if math.Abs(b.Median-499.5) > 1e-9 {
		t.Fatalf("Median = %v", b.Median)
	}
	if b.BoxLo > b.Median || b.BoxHi < b.Median {
		t.Fatal("box does not contain median")
	}
	if b.WhiskLo > b.BoxLo || b.WhiskHi < b.BoxHi {
		t.Fatal("whiskers inside box")
	}
	empty := Box(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("empty Box = %+v", empty)
	}
}

func TestDBLinRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 25} {
		if got := DB(Lin(db)); math.Abs(got-db) > 1e-9 {
			t.Fatalf("DB(Lin(%v)) = %v", db, got)
		}
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Fatal("DB of non-positive not -Inf")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(2, 6, 0.25) != 3 {
		t.Fatal("Lerp")
	}
}
