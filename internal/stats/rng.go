// Package stats bundles the deterministic randomness and the descriptive
// statistics used across the evaluation harness: a seedable RNG, quantiles,
// box-plot summaries matching the paper's plots (median, 50% box, 99%
// whiskers) and small interpolation helpers.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic pseudo-random source. All stochastic components in
// the code base (hardware imperfections, measurement noise, probing-subset
// choice) draw from an RNG so that experiments are reproducible from a seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// splitmix is a SplitMix64 rand.Source64: two machine words of state and
// a handful of arithmetic ops per draw, versus the ~5 KB lagged-Fibonacci
// state rand.NewSource allocates. It exists for callers that create very
// many short-lived streams (one per station and training round in the
// fleet simulator).
type splitmix struct{ state uint64 }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// NewFastRNG returns a deterministic RNG over a SplitMix64 source. The
// stream differs from NewRNG's for the same seed, but construction is two
// words of state instead of rand.NewSource's ~5 KB, making per-entity
// per-round streams affordable at fleet scale.
func NewFastRNG(seed int64) *RNG {
	return &RNG{r: rand.New(&splitmix{state: uint64(seed)})} //lint:allow determinism -- the seed is injected through the splitmix source state
}

// Split derives an independent child RNG. Children are labelled so that the
// stream consumed by one subsystem does not shift when another subsystem
// draws more or fewer values.
func (g *RNG) Split(label string) *RNG {
	var h int64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Norm(mean, std float64) float64 { return mean + std*g.r.NormFloat64() }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (g *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: Sample size out of range")
	}
	p := g.r.Perm(n)
	return p[:k]
}

// SampleInto is Sample with caller-owned scratch: dst is grown to n
// entries if needed and the first k of a fresh permutation are returned.
// The generator draws are exactly Sample's (the loop mirrors
// math/rand.Perm), so replacing Sample with SampleInto never shifts a
// seeded stream.
func (g *RNG) SampleInto(dst []int, n, k int) []int {
	if k < 0 || k > n {
		panic("stats: Sample size out of range")
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		j := g.r.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst[:k]
}

// Reseed resets the generator to the stream a fresh RNG over the same
// source kind would produce for seed. Reseeding a NewFastRNG-backed RNG
// is equivalent to (and far cheaper than) constructing a new one per
// round: two words of source state instead of a fresh allocation.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Shuffle randomizes the order of the n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// StudentTish returns a heavy-tailed sample (scaled ratio of a normal and a
// chi-like draw) used to model the severe measurement outliers the paper
// observed in the firmware's signal-strength reports.
func (g *RNG) StudentTish(scale float64) float64 {
	n := g.r.NormFloat64()
	d := math.Abs(g.r.NormFloat64())*0.7 + 0.3
	return scale * n / d
}
