package core

// Failure-injection tests for the estimator: degenerate measurements,
// broken pattern sets, hostile readings.

import (
	"context"
	"math"
	"testing"

	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

func TestEstimatorAllProbesMissing(t *testing.T) {
	set, _ := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	probes := make([]Probe, 14)
	for i := range probes {
		probes[i] = Probe{Sector: sector.ID(i + 1)}
	}
	if _, err := est.EstimateAoA(context.Background(), probes); err == nil {
		t.Fatal("all-missing probes estimated")
	}
	if _, err := est.SelectSector(context.Background(), probes); err == nil {
		t.Fatal("all-missing probes selected")
	}
}

func TestEstimatorConstantReadings(t *testing.T) {
	// All probes read the exact same value: the centered correlation is
	// degenerate everywhere; selection must fall back, not panic.
	set, _ := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	probes := make([]Probe, 12)
	for i := range probes {
		probes[i] = Probe{
			Sector: sector.ID(i + 1),
			Meas:   radio.Measurement{SNR: 3, RSSI: -65},
			OK:     true,
		}
	}
	sel, err := est.SelectSector(context.Background(), probes)
	if err != nil {
		t.Fatalf("constant readings not handled: %v", err)
	}
	if !sel.Fallback {
		t.Fatal("constant readings did not trigger the fallback")
	}
}

func TestEstimatorHostileOutliers(t *testing.T) {
	// Every reading replaced by an adversarial extreme: selection still
	// returns a valid sector (quality degraded, but never a crash or an
	// invalid ID).
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(1)
	probes := observe(t, gain, sector.TalonTX(), 0, 5, quietModel(), rng)
	for i := range probes {
		if i%2 == 0 {
			probes[i].Meas.SNR = radio.SNRMaxDB
			probes[i].Meas.RSSI = -20
		} else {
			probes[i].Meas.SNR = radio.SNRMinDB
			probes[i].Meas.RSSI = -110
		}
	}
	sel, err := est.SelectSector(context.Background(), probes)
	if err != nil {
		t.Fatalf("hostile readings: %v", err)
	}
	if !sector.IsTalonTX(sel.Sector) {
		t.Fatalf("invalid sector %v", sel.Sector)
	}
}

func TestEstimatorPatternsWithHoles(t *testing.T) {
	// A pattern set with NaN holes (unprocessed campaign data) must not
	// break the correlation.
	grid, err := geom.UniformGrid(-60, 60, 5, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	set := pattern.NewSet()
	for i := 1; i <= 8; i++ {
		id := sector.ID(i)
		center := -50 + float64(i)*12
		p := pattern.FromFunc(grid, func(az, el float64) float64 {
			return 10 - (az-center)*(az-center)/50
		})
		// Punch holes.
		p.Set(i, 0, math.NaN())
		p.Set(i+3, 1, math.NaN())
		if err := set.Put(id, p); err != nil {
			t.Fatal(err)
		}
	}
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probes := []Probe{
		{Sector: 2, Meas: radio.Measurement{SNR: 9, RSSI: -62}, OK: true},
		{Sector: 4, Meas: radio.Measurement{SNR: 4, RSSI: -68}, OK: true},
		{Sector: 6, Meas: radio.Measurement{SNR: -2, RSSI: -74}, OK: true},
		{Sector: 8, Meas: radio.Measurement{SNR: -6, RSSI: -78}, OK: true},
	}
	if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
		t.Fatalf("holey patterns: %v", err)
	}
}

func TestEstimatorProbeForUnknownSector(t *testing.T) {
	// Probes referencing sectors missing from the pattern set are
	// skipped, not fatal.
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(2)
	probes := observe(t, gain, sector.TalonTX()[:8], -60, 5, quietModel(), rng)
	probes = append(probes, Probe{Sector: 50, Meas: radio.Measurement{SNR: 11}, OK: true})
	if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
		t.Fatalf("unknown-sector probe: %v", err)
	}
}

func TestSweepSelectNaNReadings(t *testing.T) {
	probes := []Probe{
		{Sector: 1, Meas: radio.Measurement{SNR: math.NaN()}, OK: true},
		{Sector: 2, Meas: radio.Measurement{SNR: 4}, OK: true},
	}
	id, ok := SweepSelect(probes)
	if !ok || id != 2 {
		t.Fatalf("NaN reading mishandled: %v %v", id, ok)
	}
}

func TestMultipathDegenerateVector(t *testing.T) {
	set, _ := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	probes := []Probe{
		{Sector: 1, Meas: radio.Measurement{SNR: 0, RSSI: -70}, OK: true},
		{Sector: 2, Meas: radio.Measurement{SNR: 0, RSSI: -70}, OK: true},
		{Sector: 3, Meas: radio.Measurement{SNR: 0, RSSI: -70}, OK: true},
	}
	if _, err := est.EstimateMultipath(context.Background(), probes, 3, 15, 0.2); err == nil {
		t.Log("degenerate multipath accepted (flat surface) — acceptable if peaks are sane")
	}
	// SelectWithBackup must degrade gracefully either way.
	sel, err := est.SelectWithBackup(context.Background(), probes, 15)
	if err != nil {
		t.Fatalf("SelectWithBackup on degenerate vector: %v", err)
	}
	if sel.HasBackup && sel.Backup.Sector == sel.Primary.Sector {
		t.Fatal("backup equals primary")
	}
}
