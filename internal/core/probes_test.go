package core

import (
	"testing"

	"talon/internal/sector"
	"talon/internal/stats"
)

func TestRandomProbes(t *testing.T) {
	rng := stats.NewRNG(1)
	avail := sector.TalonTX()
	set, err := RandomProbes(rng, avail, 14)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 14 {
		t.Fatalf("Len = %d", set.Len())
	}
	for _, id := range set.IDs() {
		if !sector.IsTalonTX(id) {
			t.Fatalf("probe %v not a TX sector", id)
		}
	}
	// Order matches the stock sweep (ascending within 1..31, then 61..63).
	ids := set.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("probe order not the stock sweep order: %v", ids)
		}
	}
}

func TestRandomProbesRange(t *testing.T) {
	rng := stats.NewRNG(1)
	avail := sector.TalonTX()
	if _, err := RandomProbes(rng, avail, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := RandomProbes(rng, avail, 35); err == nil {
		t.Error("m>len accepted")
	}
	set, err := RandomProbes(rng, avail, 34)
	if err != nil || set.Len() != 34 {
		t.Errorf("full probe set: %v, %v", set, err)
	}
}

func TestRandomProbesVary(t *testing.T) {
	rng := stats.NewRNG(2)
	avail := sector.TalonTX()
	a, _ := RandomProbes(rng, avail, 10)
	b, _ := RandomProbes(rng, avail, 10)
	same := true
	for _, id := range a.IDs() {
		if !b.Contains(id) {
			same = false
		}
	}
	if same {
		t.Fatal("two random draws identical (suspicious)")
	}
}

func TestGainInformedProbes(t *testing.T) {
	set, _ := synthSetup(t)
	probes, err := GainInformedProbes(set, 12)
	if err != nil {
		t.Fatal(err)
	}
	if probes.Len() != 12 {
		t.Fatalf("Len = %d", probes.Len())
	}
	if _, err := GainInformedProbes(set, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := GainInformedProbes(set, 99); err == nil {
		t.Error("m too large accepted")
	}
	// Deterministic.
	again, _ := GainInformedProbes(set, 12)
	for _, id := range probes.IDs() {
		if !again.Contains(id) {
			t.Fatal("gain-informed selection not deterministic")
		}
	}
}

func TestSweepSelect(t *testing.T) {
	probes := []Probe{
		{Sector: 3, OK: true},
		{Sector: 8, OK: true},
		{Sector: 12, OK: false},
	}
	probes[0].Meas.SNR = 4
	probes[1].Meas.SNR = 9
	probes[2].Meas.SNR = 99 // missing: must lose despite the high value
	id, ok := SweepSelect(probes)
	if !ok || id != 8 {
		t.Fatalf("SweepSelect = %v, %v", id, ok)
	}
	if _, ok := SweepSelect(nil); ok {
		t.Fatal("empty probes selected something")
	}
	if _, ok := SweepSelect([]Probe{{Sector: 1}}); ok {
		t.Fatal("all-missing probes selected something")
	}
}

func TestOptimalSector(t *testing.T) {
	truth := map[sector.ID]float64{1: 3, 20: 11, 63: 9}
	id, ok := OptimalSector(truth)
	if !ok || id != 20 {
		t.Fatalf("OptimalSector = %v, %v", id, ok)
	}
	if _, ok := OptimalSector(nil); ok {
		t.Fatal("empty truth produced an optimum")
	}
}

func TestAdaptiveController(t *testing.T) {
	c := NewAdaptiveController(6, 30)
	if c.M() != 30 {
		t.Fatalf("initial M = %d", c.M())
	}
	// Stable scene: M shrinks toward the minimum.
	for i := 0; i < 60; i++ {
		c.Observe(17)
	}
	if c.M() != 6 {
		t.Fatalf("M after long stability = %d, want 6", c.M())
	}
	// A selection change grows the budget again.
	c.Observe(21)
	if c.M() <= 6 {
		t.Fatalf("M after change = %d", c.M())
	}
	// Repeated changes saturate at Max.
	for i := 0; i < 20; i++ {
		c.Observe(sector.ID(i%30 + 1))
	}
	if c.M() != 30 {
		t.Fatalf("M under mobility = %d, want 30", c.M())
	}
}

func TestAdaptiveControllerBounds(t *testing.T) {
	c := NewAdaptiveController(0, -5)
	if c.Min < 2 || c.Max < c.Min {
		t.Fatalf("bounds not normalized: %+v", c)
	}
}
