//go:build race

package core

// raceEnabled reports whether this test binary runs under the race
// detector, whose instrumentation perturbs allocation accounting.
const raceEnabled = true
