package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// Equivalence gate of the quantized int16 kernel (quant.go) against the
// float64 reference, mirroring the hierarchical suite in hier_test.go:
// both estimators run the same hierarchical search, so any divergence is
// pure quantization noise. The gate is the ISSUE's acceptance criterion —
// ≤1% sector divergence (equivCounter.assertRate), AoA within one
// coarse-cell diagonal — over seeded clean and Standard60GHz faulty
// trials, plus exact error parity on degenerate and minimum-probe
// vectors.

// TestQuantMatchesFloatClean runs the seeded clean-channel equivalence
// suite across probe budgets: the quantized kernel must select the float
// kernel's sector on ≥99% of trials and land within one coarse-cell
// diagonal of its angle estimate.
func TestQuantMatchesFloatClean(t *testing.T) {
	set, gain := synthSetup(t)
	quant, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	float, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	if quant.Kernel() != KernelQuantInt16 {
		t.Fatalf("default options did not build the quantized kernel: %q", quant.Kernel())
	}
	if float.Kernel() != KernelFloat64 {
		t.Fatalf("pinned float kernel reports %q", float.Kernel())
	}
	diag := coarseDiag(t, quant)

	quantBefore := metQuantEstimates.Value()
	model := radio.DefaultMeasurementModel()
	rng := stats.NewRNG(37)
	available := sector.TalonTX()
	var c equivCounter
	for _, m := range []int{8, 14, 24, 32} {
		for trial := 0; trial < 40; trial++ {
			ps, err := RandomProbes(rng, available, m)
			if err != nil {
				t.Fatal(err)
			}
			az := -78 + 156*rng.Float64()
			el := 28 * rng.Float64()
			probes := observe(t, gain, ps.IDs(), az, el, model, rng)
			c.compare(t, fmt.Sprintf("m=%d trial=%d", m, trial), quant, float, probes, diag)
		}
	}
	c.assertRate(t, 120)
	if metQuantEstimates.Value() == quantBefore {
		t.Fatal("no estimate was served by the quantized kernel")
	}
}

// TestQuantMatchesFloatFaultyChannel repeats the equivalence suite on
// probe vectors produced by a real simulated link — patterns measured by
// the chamber campaign, probing sweeps run over a lab channel with the
// fault.Standard60GHz impairment chain injected — so the gate covers
// burst loss, RSSI drift, stale feedback and imputed-missing vectors.
func TestQuantMatchesFloatFaultyChannel(t *testing.T) {
	dut, err := wil.NewDevice(wil.Config{
		Name: "quant-dut",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x31},
		Seed: 502,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := wil.NewDevice(wil.Config{
		Name: "quant-probe",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x32},
		Seed: 503,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dut.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := probe.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	grid, err := geom.UniformGrid(-70, 70, 5, 0, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	chamber := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(chamber, dut, probe, 504)
	campaign.Repeats = 1
	patterns, err := campaign.MeasureAllPatterns(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := NewEstimator(patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	float, err := NewEstimator(patterns, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	diag := coarseDiag(t, quant)

	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	dut.SetPose(dutPose)
	probe.SetPose(probePose)
	link := wil.NewLink(channel.Lab(), dut, probe)
	link.SetInjector(fault.Standard60GHz(0.15, 4, 505))

	rng := stats.NewRNG(41)
	available := sector.TalonTX()
	var c equivCounter
	for trial := 0; trial < 170; trial++ {
		// Swing the probe device on an arc so trials cover directions.
		az := -60 + 120*rng.Float64()
		rad := az * math.Pi / 180
		pose := probePose
		pose.Pos.X = dutPose.Pos.X + 3*math.Cos(rad)
		pose.Pos.Y = dutPose.Pos.Y + 3*math.Sin(rad)
		pose.Yaw = 180 + az
		probe.SetPose(pose)

		ps, err := RandomProbes(rng, available, 14)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := link.RunTXSS(dut, probe, dot11ad.SubSweepSchedule(ps))
		if err != nil {
			// An injected transient fault killed the whole sweep before
			// estimation; nothing to compare on this trial.
			continue
		}
		probes := ProbesFromMeasurements(ps.IDs(), meas)
		c.compare(t, fmt.Sprintf("trial=%d", trial), quant, float, probes, diag)
	}
	c.assertRate(t, 139)
}

// TestQuantDegenerateSurface pins the degenerate-surface parity: with
// only two reported probes the correlation is zero at every grid point
// on both kernels, the quantized coarse pass keeps no candidate, and the
// quantized path must route through its exhaustive fallback and fail
// with the same ErrDegenerateSurface sentinel as the float kernel.
func TestQuantDegenerateSurface(t *testing.T) {
	set, _ := synthSetup(t)
	quant, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	float, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	ids := sector.TalonTX()
	probes := []Probe{
		{Sector: ids[0], Meas: radio.Measurement{SNR: 7, RSSI: -55}, OK: true},
		{Sector: ids[5], Meas: radio.Measurement{SNR: 9, RSSI: -52}, OK: true},
	}
	fallbacksBefore := metQuantFallbacks.Value()
	degenerateBefore := metDegenerate.Value()
	_, qErr := quant.EstimateAoA(context.Background(), probes)
	_, fErr := float.EstimateAoA(context.Background(), probes)
	if !errors.Is(qErr, ErrDegenerateSurface) {
		t.Fatalf("quant: want ErrDegenerateSurface, got %v", qErr)
	}
	if !errors.Is(fErr, ErrDegenerateSurface) {
		t.Fatalf("float: want ErrDegenerateSurface, got %v", fErr)
	}
	if metQuantFallbacks.Value() == fallbacksBefore {
		t.Fatal("degenerate surface did not route through the quantized exhaustive fallback")
	}
	if metDegenerate.Value() == degenerateBefore {
		t.Fatal("degenerate quantized estimate was not counted")
	}
}

// TestQuantMinimumProbes pins the minimum-probe parity: one reported
// probe fails with ErrTooFewProbes on both kernels, two reported probes
// pass the gate but degenerate on both (Pearson needs three components),
// and three-probe vectors — the smallest estimable ones — must agree on
// the error class and on the fallback decision's outcome. Sector-level
// agreement is deliberately NOT asserted at M = 3: with three components
// the Pearson surface is a near-flat ridge of correlations ≈ 1 (three
// points almost always fit some line), so the argmax cell is decided by
// sub-ULP score differences and even the float kernel lands tens of
// degrees from the truth. The selection-equivalence gate lives at the
// paper's operating probe counts in TestQuantMatchesFloatClean and
// TestQuantMatchesFloatFaultyChannel.
func TestQuantMinimumProbes(t *testing.T) {
	set, gain := synthSetup(t)
	quant, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	float, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(43)
	model := quietModel()
	ids := sector.TalonTX()

	for n := 1; n <= 2; n++ {
		probes := observe(t, gain, ids[:n], 10, 6, model, rng)
		_, qErr := quant.EstimateAoA(context.Background(), probes)
		_, fErr := float.EstimateAoA(context.Background(), probes)
		want := ErrTooFewProbes
		if n == 2 {
			want = ErrDegenerateSurface
		}
		if !errors.Is(qErr, want) {
			t.Fatalf("n=%d quant: want %v, got %v", n, want, qErr)
		}
		if !errors.Is(fErr, want) {
			t.Fatalf("n=%d float: want %v, got %v", n, want, fErr)
		}
	}

	trials := 0
	for trial := 0; trial < 20; trial++ {
		ps, err := RandomProbes(rng, ids, 3)
		if err != nil {
			t.Fatal(err)
		}
		az := -70 + 140*rng.Float64()
		probes := observe(t, gain, ps.IDs(), az, 8, model, rng)
		qSel, qErr := quant.SelectSector(context.Background(), probes)
		fSel, fErr := float.SelectSector(context.Background(), probes)
		if (qErr == nil) != (fErr == nil) {
			t.Fatalf("trial=%d: error parity broken: quant %v, float %v", trial, qErr, fErr)
		}
		if qErr != nil {
			for _, sentinel := range []error{ErrTooFewProbes, ErrDegenerateSurface} {
				if errors.Is(qErr, sentinel) != errors.Is(fErr, sentinel) {
					t.Fatalf("trial=%d: sentinel parity broken: quant %v, float %v", trial, qErr, fErr)
				}
			}
			continue
		}
		trials++
		// When both kernels reject their ridge and fall back, the sweep
		// fallback depends only on the probes, never the kernel.
		if qSel.Fallback && fSel.Fallback && qSel.Sector != fSel.Sector {
			t.Fatalf("trial=%d: fallback selections diverged: quant %d, float %d", trial, qSel.Sector, fSel.Sector)
		}
	}
	if trials == 0 {
		t.Fatal("no three-probe trial produced an estimate on either kernel")
	}
}

// TestQuantBatchMatchesSelectSector proves the batch-major tile pass
// (tile.go) is invisible at the result level: every item of a quantized
// SelectSectorBatch — including error items — must match a standalone
// SelectSector call bit for bit, at every worker count. The chunked
// dictionary sweep only changes which items share a tile, never any
// item's result.
func TestQuantBatchMatchesSelectSector(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Kernel() != KernelQuantInt16 {
		t.Fatalf("default options did not build the quantized kernel: %q", est.Kernel())
	}
	model := radio.DefaultMeasurementModel()
	rng := stats.NewRNG(47)
	available := sector.TalonTX()
	batch := make([][]Probe, 97)
	for i := range batch {
		ps, err := RandomProbes(rng, available, 12)
		if err != nil {
			t.Fatal(err)
		}
		az := -75 + 150*rng.Float64()
		batch[i] = observe(t, gain, ps.IDs(), az, 10, model, rng)
	}
	// Error items: all probes missing (too few reported), and a
	// two-probe vector (degenerate surface, fallback selection).
	for j := range batch[20] {
		batch[20][j].OK = false
	}
	batch[21] = batch[21][:2]

	ctx := context.Background()
	want := make([]BatchResult, len(batch))
	for i := range batch {
		sel, err := est.SelectSector(ctx, batch[i])
		want[i] = BatchResult{Selection: sel, Err: err}
	}
	for _, workers := range []int{0, 1, 3, 5, 64} {
		got, err := est.SelectSectorBatch(ctx, BatchOf(batch), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d item=%d: err %v vs %v", workers, i, got[i].Err, want[i].Err)
			}
			if got[i].Err != nil {
				for _, sentinel := range []error{ErrTooFewProbes, ErrDegenerateSurface} {
					if errors.Is(got[i].Err, sentinel) != errors.Is(want[i].Err, sentinel) {
						t.Fatalf("workers=%d item=%d: sentinel parity broken: %v vs %v", workers, i, got[i].Err, want[i].Err)
					}
				}
				continue
			}
			if !sameSelection(got[i].Selection, want[i].Selection) {
				t.Fatalf("workers=%d item=%d: %+v != %+v", workers, i, got[i].Selection, want[i].Selection)
			}
		}
	}
}

// TestQuantConcurrentUse runs many concurrent quantized estimates
// through one estimator — the quantized twin of TestEngineConcurrentUse,
// checking the pooled gather/tile scratch under the race detector and
// that concurrent results equal sequential ones bit for bit.
func TestQuantConcurrentUse(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(53)
	probeSets := make([][]Probe, 16)
	want := make([]AoAEstimate, len(probeSets))
	for i := range probeSets {
		az := -70 + 140*rng.Float64()
		probeSets[i] = observe(t, gain, sector.TalonTX(), az, 5, quietModel(), rng)
		aoa, err := est.EstimateAoA(context.Background(), probeSets[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = aoa
	}
	done := make(chan error, len(probeSets))
	for i := range probeSets {
		go func(i int) {
			aoa, err := est.EstimateAoA(context.Background(), probeSets[i])
			if err == nil && !sameAoA(aoa, want[i]) {
				err = fmt.Errorf("probe set %d: %+v != %+v", i, aoa, want[i])
			}
			done <- err
		}(i)
	}
	for range probeSets {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestKernelOptionPlumbing pins the option surface: unknown kernel names
// are rejected at construction, ExactSearch implies the float kernel,
// and the estimator reports the kernel actually serving estimates.
func TestKernelOptionPlumbing(t *testing.T) {
	set, _ := synthSetup(t)
	if _, err := NewEstimator(set, Options{Kernel: "no-such-kernel"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	exact, err := NewEstimator(set, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Kernel() != KernelFloat64 {
		t.Fatalf("ExactSearch kernel = %q, want %q", exact.Kernel(), KernelFloat64)
	}
	pinned, err := NewEstimator(set, Options{Kernel: KernelQuantInt16})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Kernel() != KernelQuantInt16 {
		t.Fatalf("pinned quant kernel = %q, want %q", pinned.Kernel(), KernelQuantInt16)
	}
	if !pinned.en.quant() || len(pinned.en.dictQ) != len(pinned.en.dict) {
		t.Fatal("quantized dictionary was not built alongside the float one")
	}
	if len(pinned.en.coarseQ) != len(pinned.en.coarse) {
		t.Fatal("quantized coarse dictionary does not mirror the float one")
	}
}

// TestQuantHoleyDictionary routes a dictionary with NaN holes through
// the quantized kernel: holes disable the fused fast path (the missing
// sentinel must be re-checked at every grid point), and the slow sweep
// must still track the float kernel on structured observations.
func TestQuantHoleyDictionary(t *testing.T) {
	grid, err := geom.UniformGrid(-60, 60, 4, 0, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := pattern.NewSet()
	gains := make(map[sector.ID]func(az, el float64) float64)
	for i := 1; i <= 10; i++ {
		id := sector.ID(i)
		center := -55 + float64(i)*11
		gain := func(az, el float64) float64 {
			return 11 - (az-center)*(az-center)/60 - el/4
		}
		gains[id] = gain
		p := pattern.FromFunc(grid, gain)
		p.Set(i, 0, math.NaN())
		p.Set(i+5, 1, math.NaN())
		if i == 4 {
			// Two adjacent full missing elevation rows defeat the engine's
			// nearest-corner substitution (Pattern.At only returns NaN when
			// all four bracket corners are missing) and leave real
			// dictionary NaNs.
			for a := 0; a < grid.NumAz(); a++ {
				p.Set(a, 2, math.NaN())
				p.Set(a, 3, math.NaN())
			}
		}
		if err := set.Put(id, p); err != nil {
			t.Fatal(err)
		}
	}
	quant, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if quant.Kernel() != KernelQuantInt16 || quant.en.fullQ {
		t.Fatalf("holey dictionary should build a non-full quantized kernel (kernel %q, full %v)",
			quant.Kernel(), quant.en.fullQ)
	}
	float64k, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(59)
	mismatches, trials := 0, 0
	for trial := 0; trial < 60; trial++ {
		az := -50 + 100*rng.Float64()
		probes := make([]Probe, 0, 10)
		for i := 1; i <= 10; i++ {
			id := sector.ID(i)
			g := gains[id](az, 4)
			probes = append(probes, Probe{
				Sector: id,
				Meas:   radio.Measurement{SNR: g - 4 + rng.Norm(0, 0.5), RSSI: g - 74 + rng.Norm(0, 0.5)},
				OK:     true,
			})
		}
		qSel, qErr := quant.SelectSector(context.Background(), probes)
		fSel, fErr := float64k.SelectSector(context.Background(), probes)
		if (qErr == nil) != (fErr == nil) {
			t.Fatalf("trial %d: error parity broken: quant %v, float %v", trial, qErr, fErr)
		}
		if qErr != nil {
			continue
		}
		trials++
		if qSel.Sector != fSel.Sector {
			mismatches++
		}
	}
	if trials < 50 {
		t.Fatalf("only %d successful holey trials", trials)
	}
	if budget := trials / 20; mismatches > budget {
		t.Fatalf("holey-dictionary selections diverged on %d of %d trials (budget %d)", mismatches, trials, budget)
	}
}
