package core

import "talon/internal/sector"

// AdaptiveController implements the Section 7 extension: adapt the number
// of probing sectors to the environment's dynamics. While consecutive
// selections agree, the probe budget shrinks (static scene: few probes
// validate the current setting); when the selection changes, the budget
// grows to track the movement.
type AdaptiveController struct {
	// Min and Max bound the probe count.
	Min, Max int
	// GrowStep and ShrinkStep control the reaction speed.
	GrowStep, ShrinkStep int

	m        int
	last     sector.ID
	haveLast bool
	stable   int
}

// NewAdaptiveController starts at the maximum probe count.
func NewAdaptiveController(min, max int) *AdaptiveController {
	if min < 2 {
		min = 2
	}
	if max < min {
		max = min
	}
	return &AdaptiveController{Min: min, Max: max, GrowStep: 4, ShrinkStep: 3, m: max}
}

// M returns the probe count to use for the next training.
func (a *AdaptiveController) M() int { return a.m }

// Observe feeds the outcome of a training round back into the controller.
func (a *AdaptiveController) Observe(selected sector.ID) {
	if a.haveLast && selected == a.last {
		a.stable++
		// Each agreeing round earns a budget reduction.
		a.m -= a.ShrinkStep
		if a.m < a.Min {
			a.m = a.Min
		}
	} else {
		a.stable = 0
		a.m += a.GrowStep
		if a.m > a.Max {
			a.m = a.Max
		}
	}
	a.last, a.haveLast = selected, true
}
