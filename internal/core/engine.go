package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"talon/internal/pattern"
	"talon/internal/sector"
)

// engine is the precomputed correlation engine behind EstimateAoA: a
// flat, cache-friendly [gridPoint][sector] dictionary of linear pattern
// amplitudes, built once per Estimator. The serial reference path calls
// Pattern.At (two binary-search brackets plus a bilinear interpolation)
// and math.Pow for every probed sector at every grid point of every
// estimate; the engine pays that cost exactly once at construction, so
// the grid search reduces to centered dot products over contiguous
// slices. Grid rows (elevations) are sharded across a GOMAXPROCS-sized
// worker pool, and per-call scratch (correlation surface, probe column
// map) is recycled through sync.Pools.
type engine struct {
	az, el []float64
	stride int        // dense dictionary columns per grid point
	cols   [256]int16 // sector ID -> dense column, -1 when absent
	// dict holds the linear amplitude of every sector at every grid
	// point, laid out [(ei*numAz+ai)*stride + col]; NaN marks points the
	// pattern does not cover. Values are amp(Pattern.At(az, el)) — the
	// exact quantity the serial reference computes per call — so both
	// paths agree bit for bit.
	dict []float64

	// Hierarchical coarse-to-fine search (see hier.go). coarse is a
	// contiguous decimated copy of dict covering only the grid points
	// (cElIdx[ci], cAzIdx[cj]), laid out [(ci*len(cAzIdx)+cj)*stride +
	// col]. Empty when the hierarchy is disabled (ExactSearch, tiny
	// grids, decimation < 2), in which case every estimate runs the
	// exhaustive dense search.
	coarse []float64
	cAzIdx []int32 // dense az index of each coarse grid column
	cElIdx []int32 // dense el index of each coarse grid row
	winAz  int     // dense az radius refined around a candidate cell
	winEl  int     // dense el radius refined around a candidate cell
	topK   int     // coarse candidate cells refined per estimate

	// Quantized int16 kernel (see quant.go / tile.go). dictQ and coarseQ
	// are fixed-point twins of dict and coarse ([0, quantOne] amplitude
	// codes, quantMissing for NaN); empty when the options pin the
	// float64 kernel or the dictionary has no finite entry. tilePts is
	// the L1 tile size of the coarse sweeps, in grid points; fullQ marks
	// a dictionary with no missing entries, enabling the fused
	// hoisted-moment sweep (jointQFast).
	dictQ   []int16
	coarseQ []int16
	tilePts int
	fullQ   bool

	surfaces     sync.Pool // *[]float64 of len numAz*numEl
	colBufs      sync.Pool // *[]int16 probe->column scratch
	hierScratch  sync.Pool // *hierScratch (see hier.go)
	batchScratch sync.Pool // *quantBatchScratch (see tile.go)
}

// newEngine precomputes the dictionary from the pattern set. Returns nil
// when the set is empty (the estimator then has nothing to search).
func newEngine(set *pattern.Set, opts Options) *engine {
	grid := set.Grid()
	if grid == nil {
		return nil
	}
	buildStart := time.Now() //lint:allow determinism -- dictionary-build histogram reads the wall clock by design
	defer metDictBuildSeconds.ObserveSince(buildStart)
	ids := set.IDs()
	en := &engine{
		az:     grid.Az(),
		el:     grid.El(),
		stride: len(ids),
	}
	for i := range en.cols {
		en.cols[i] = -1
	}
	for col, id := range ids {
		en.cols[id] = int16(col)
	}
	numAz, numEl := len(en.az), len(en.el)
	en.dict = make([]float64, numAz*numEl*en.stride)
	for col, id := range ids {
		p := set.Get(id)
		for ei, el := range en.el {
			base := ei * numAz * en.stride
			for ai, az := range en.az {
				g := p.At(az, el)
				v := math.NaN()
				if !math.IsNaN(g) {
					v = amp(g)
				}
				en.dict[base+ai*en.stride+col] = v
			}
		}
	}
	size := numAz * numEl
	en.surfaces.New = func() any {
		metScratchMisses.Inc()
		s := make([]float64, size)
		return &s
	}
	en.colBufs.New = func() any {
		metScratchMisses.Inc()
		s := make([]int16, 0, 64)
		return &s
	}
	en.batchScratch.New = func() any {
		metScratchMisses.Inc()
		return &quantBatchScratch{}
	}
	en.buildCoarse(opts)
	en.buildQuant(opts)
	return en
}

// buildCoarse precomputes the decimated coarse dictionary of the
// hierarchical search (hier.go) by copying every decim-th grid point out
// of the dense dictionary. The last dense index of each axis is always
// included so the refinement windows (radius (decim+1)/2) of the coarse
// samples tile the whole dense grid. The hierarchy is skipped entirely —
// leaving every estimate on the exhaustive dense search — when the
// options demand exactness or the coarse grid would not actually be
// smaller than the dense one.
func (en *engine) buildCoarse(opts Options) {
	if opts.ExactSearch {
		return
	}
	decim := opts.CoarseDecim
	if decim == 0 {
		decim = DefaultCoarseDecim
	}
	topK := opts.TopK
	if topK == 0 {
		topK = DefaultTopK
	}
	if decim < 2 || topK < 1 {
		return
	}
	numAz, numEl := len(en.az), len(en.el)
	cAz := decimateIndices(numAz, decim)
	cEl := decimateIndices(numEl, decim)
	if len(cAz)*len(cEl) >= numAz*numEl {
		return
	}
	en.cAzIdx, en.cElIdx = cAz, cEl
	en.winAz = (decim + 1) / 2
	en.winEl = (decim + 1) / 2
	en.topK = topK
	en.coarse = make([]float64, len(cAz)*len(cEl)*en.stride)
	pos := 0
	for _, ei := range cEl {
		for _, ai := range cAz {
			src := (int(ei)*numAz + int(ai)) * en.stride
			copy(en.coarse[pos:pos+en.stride], en.dict[src:src+en.stride])
			pos += en.stride
		}
	}
	en.hierScratch.New = func() any {
		metScratchMisses.Inc()
		return newHierScratch(topK)
	}
}

// hier reports whether the hierarchical coarse-to-fine search is built.
func (en *engine) hier() bool { return len(en.coarse) > 0 }

// decimateIndices returns every decim-th index of [0, n) plus the last
// index, so consecutive selected indices are at most decim apart and the
// axis endpoints are always sampled.
func decimateIndices(n, decim int) []int32 {
	out := make([]int32, 0, n/decim+2)
	for i := 0; i < n; i += decim {
		out = append(out, int32(i))
	}
	if last := int32(n - 1); len(out) == 0 || out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}

// getSurface returns a pooled numAz*numEl correlation surface. Contents
// are stale; fill overwrites every entry, other users must zero it.
func (en *engine) getSurface() *[]float64 {
	metScratchGets.Inc()
	return en.surfaces.Get().(*[]float64)
}

func (en *engine) putSurface(s *[]float64) { en.surfaces.Put(s) }

// probeCols maps probe sector IDs to dense dictionary columns (-1 for
// sectors absent from the set, mirroring the serial path's nil-pattern
// skip). The returned slice comes from a pool; release with putCols.
func (en *engine) probeCols(ids []sector.ID) *[]int16 {
	metScratchGets.Inc()
	buf := en.colBufs.Get().(*[]int16)
	cols := (*buf)[:0]
	for _, id := range ids {
		cols = append(cols, en.cols[id])
	}
	*buf = cols
	return buf
}

func (en *engine) putCols(buf *[]int16) { en.colBufs.Put(buf) }

// correlateAt is the engine twin of Estimator.correlate at one grid
// point: identical accumulation order, fixed 64-component capacity,
// missing-component skips and guards, but with the pattern lookup
// replaced by a contiguous dictionary read.
func (en *engine) correlateAt(base int, cols []int16, lin []float64) float64 {
	return correlateIn(en.dict, base, cols, lin)
}

// correlateIn is correlateAt over an explicit dictionary slice — the
// dense dict or the decimated coarse copy; the math is identical either
// way, so grid points present in both dictionaries score bit-identically.
func correlateIn(dict []float64, base int, cols []int16, lin []float64) float64 {
	var xs, ps [64]float64
	used := 0
	var sumP, sumX float64
	for i, c := range cols {
		if c < 0 {
			continue
		}
		x := dict[base+int(c)]
		if math.IsNaN(x) {
			continue
		}
		if used >= len(xs) {
			break
		}
		ps[used], xs[used] = lin[i], x
		sumP += lin[i]
		sumX += x
		used++
	}
	if used < 3 {
		return 0
	}
	meanP, meanX := sumP/float64(used), sumX/float64(used)
	var dot, nm, nx float64
	for i := 0; i < used; i++ {
		dp, dx := ps[i]-meanP, xs[i]-meanX
		dot += dp * dx
		nm += dp * dp
		nx += dx * dx
	}
	if nm == 0 || nx == 0 {
		return 0
	}
	w := dot * dot / (nm * nx)
	if dot < 0 {
		return 0
	}
	return w
}

// jointAt evaluates the joint Eq. 5 correlation at one dictionary base
// offset. The serial path multiplies unconditionally; when the SNR
// correlation is exactly 0 the product is identically 0, so skipping the
// RSSI correlate is value-preserving. Both the dense fill and the
// hierarchical search go through this helper, so every grid point they
// share computes bit-identical values.
func (en *engine) jointAt(pt int, cols []int16, snrLin, rssiLin []float64, snrOnly bool) float64 {
	return jointIn(en.dict, pt, cols, snrLin, rssiLin, snrOnly)
}

// jointIn is jointAt over an explicit dictionary slice.
func jointIn(dict []float64, pt int, cols []int16, snrLin, rssiLin []float64, snrOnly bool) float64 {
	v := correlateIn(dict, pt, cols, snrLin)
	if v != 0 && !snrOnly {
		v *= correlateIn(dict, pt, cols, rssiLin)
	}
	return v
}

// fillRow computes one elevation row of the joint correlation surface.
func (en *engine) fillRow(w []float64, ei int, cols []int16, snrLin, rssiLin []float64, snrOnly bool) {
	numAz := len(en.az)
	row := w[ei*numAz : (ei+1)*numAz]
	base := ei * numAz * en.stride
	for ai := range row {
		row[ai] = en.jointAt(base+ai*en.stride, cols, snrLin, rssiLin, snrOnly)
	}
}

// fill computes the whole surface, sharding elevation rows across a
// worker pool sized to GOMAXPROCS (further bounded by SetMaxShards and,
// when maxW > 0, by maxW — the batch path passes 1 so batch workers are
// the only parallelism). Rows are independent, so the result is
// identical to the serial row order regardless of scheduling. Workers
// observe ctx between rows; on cancellation the surface contents are
// unspecified and ctx.Err() is returned.
func (en *engine) fill(ctx context.Context, w []float64, cols []int16, snrLin, rssiLin []float64, snrOnly bool, maxW int) error {
	numEl := len(en.el)
	workers := runtime.GOMAXPROCS(0)
	if ms := MaxShards(); ms > 0 && workers > ms {
		workers = ms
	}
	if maxW > 0 && workers > maxW {
		workers = maxW
	}
	if workers > numEl {
		workers = numEl
	}
	if workers <= 1 {
		for ei := 0; ei < numEl; ei++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			en.fillRow(w, ei, cols, snrLin, rssiLin, snrOnly)
		}
		return nil
	}
	metRowsSharded.Add(int64(numEl))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ei := int(next.Add(1)) - 1
				if ei >= numEl || ctx.Err() != nil {
					return
				}
				en.fillRow(w, ei, cols, snrLin, rssiLin, snrOnly)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// argmax scans the flat surface in the serial path's row-major order
// (elevation outer, azimuth inner, strictly-greater update) so ties
// break identically.
func (en *engine) argmax(w []float64) (bestA, bestE int, bestW float64) {
	numAz := len(en.az)
	bestW = -1.0
	for idx, v := range w {
		if v > bestW {
			bestA, bestE, bestW = idx%numAz, idx/numAz, v
		}
	}
	return bestA, bestE, bestW
}
