package core

import (
	"context"
	"math"
	"testing"

	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// benchEstimator builds an estimator over the default pattern-campaign
// grid (-90..90 step 2 × 0..32 step 4 — 819 grid points, the resolution
// the evaluation figures run at) with synthetic gaussian-beam patterns.
func benchEstimator(b *testing.B, opts Options) (*Estimator, []Probe) {
	b.Helper()
	grid, err := geom.UniformGrid(-90, 90, 2, 0, 32, 4)
	if err != nil {
		b.Fatal(err)
	}
	ids := sector.TalonTX()
	set := pattern.NewSet()
	for i, id := range ids {
		az0 := -85 + 170*float64(i)/float64(len(ids)-1)
		el0 := float64((i * 5) % 28)
		width := 13 + float64(i%4)*3
		p := pattern.FromFunc(grid, func(az, el float64) float64 {
			d2 := (az-az0)*(az-az0) + 2*(el-el0)*(el-el0)
			return 12 - 20*(1-math.Exp(-d2/(2*width*width)))
		})
		if err := set.Put(id, p); err != nil {
			b.Fatal(err)
		}
	}
	est, err := NewEstimator(set, opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(42)
	ps, err := RandomProbes(rng, ids, 14)
	if err != nil {
		b.Fatal(err)
	}
	probes := make([]Probe, 0, 14)
	for _, id := range ps.IDs() {
		probes = append(probes, Probe{
			Sector: id,
			Meas: radio.Measurement{
				SNR:  2 + float64(int(id)%13),
				RSSI: -70 + float64(int(id)%9),
			},
			OK: true,
		})
	}
	return est, probes
}

// BenchmarkEstimateAoA_Engine times the exhaustive precomputed-dictionary
// grid search; BenchmarkEstimateAoA_Serial times the reference per-call
// Pattern.At path it replaced; BenchmarkEstimateAoA_Hier times the
// float64 hierarchical coarse-to-fine search; BenchmarkEstimateAoA_Quant
// times the default quantized int16 kernel (hierarchical, cache-tiled)
// and _QuantDense its exhaustive scan. The _Engine benchmarks pin
// ExactSearch and the _Hier ones pin KernelFloat64 so each name keeps
// measuring the same code path across default changes; the acceptance
// targets are engine ≥ 3× serial, hier ≥ 3× engine, and quant ≥ 2× hier
// on this grid.
func BenchmarkEstimateAoA_Engine(b *testing.B) {
	est, probes := benchEstimator(b, Options{ExactSearch: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateAoA_Serial(b *testing.B) {
	est, probes := benchEstimator(b, Options{Kernel: KernelFloat64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateAoASerial(probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateAoA_Hier(b *testing.B) {
	est, probes := benchEstimator(b, Options{Kernel: KernelFloat64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateAoA_Quant(b *testing.B) {
	est, probes := benchEstimator(b, Options{})
	if est.Kernel() != KernelQuantInt16 {
		b.Fatalf("default options did not build the quantized kernel: %q", est.Kernel())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateAoA_QuantDense(b *testing.B) {
	// CoarseDecim 1 disables the hierarchy without forcing the float
	// kernel, so this measures the tiled exhaustive int16 scan.
	est, probes := benchEstimator(b, Options{CoarseDecim: 1})
	if est.Kernel() != KernelQuantInt16 {
		b.Fatalf("options did not build the quantized kernel: %q", est.Kernel())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSector_Engine(b *testing.B) {
	est, probes := benchEstimator(b, Options{ExactSearch: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSector(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSector_Serial(b *testing.B) {
	est, probes := benchEstimator(b, Options{Kernel: KernelFloat64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSectorSerial(probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSector_Hier(b *testing.B) {
	est, probes := benchEstimator(b, Options{Kernel: KernelFloat64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSector(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSector_Quant(b *testing.B) {
	est, probes := benchEstimator(b, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSector(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProbesAt rebuilds a probe vector whose measurements are the
// benchEstimator gaussian-beam gains evaluated at one direction, so the
// correlation surface has a genuine peak there. The default probes'
// arbitrary SNR ramp is fine for timing a fixed-cost sweep, but the warm
// path's guards are score-dependent: a peakless surface would reject
// every hint and silently time the fallback instead.
func benchProbesAt(b *testing.B, ids []sector.ID, az, el float64) []Probe {
	b.Helper()
	idx := make(map[sector.ID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	rng := stats.NewRNG(42)
	ps, err := RandomProbes(rng, ids, 14)
	if err != nil {
		b.Fatal(err)
	}
	probes := make([]Probe, 0, 14)
	for _, id := range ps.IDs() {
		i := idx[id]
		az0 := -85 + 170*float64(i)/float64(len(ids)-1)
		el0 := float64((i * 5) % 28)
		width := 13 + float64(i%4)*3
		d2 := (az-az0)*(az-az0) + 2*(el-el0)*(el-el0)
		g := 12 - 20*(1-math.Exp(-d2/(2*width*width)))
		probes = append(probes, Probe{
			Sector: id,
			Meas:   radio.Measurement{SNR: g, RSSI: -60 + g},
			OK:     true,
		})
	}
	return probes
}

// BenchmarkSelectSector_Warm times the warm-start hit path: the hint is
// the cell of a converged cold selection over the same probes, so every
// iteration accepts the dense local window and skips the coarse sweep.
// BenchmarkSelectSector_WarmCold runs the identical probe vector through
// the cold quantized search — the search cost depends on the surface the
// probes induce, so _Quant (arbitrary ramp probes) is not the right
// baseline. The _WarmCold / _Warm delta is the per-training saving a
// tracked fleet station sees between retrains.
func BenchmarkSelectSector_Warm(b *testing.B) {
	est, _ := benchEstimator(b, Options{})
	probes := benchProbesAt(b, sector.TalonTX(), 24, 9)
	sel, err := est.SelectSector(context.Background(), probes)
	if err != nil {
		b.Fatal(err)
	}
	if sel.AoA.Cell == NoCell || sel.Fallback {
		b.Fatalf("cold selection did not converge (cell %d, fallback %v)", sel.AoA.Cell, sel.Fallback)
	}
	hits := metWarmHits.Value()
	if _, err := est.SelectSectorWarm(context.Background(), probes, sel.AoA.Cell); err != nil {
		b.Fatal(err)
	}
	if metWarmHits.Value() == hits {
		b.Fatal("warm guards rejected the hint; benchmark would time the fallback path")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSectorWarm(context.Background(), probes, sel.AoA.Cell); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSector_WarmCold(b *testing.B) {
	est, _ := benchEstimator(b, Options{})
	probes := benchProbesAt(b, sector.TalonTX(), 24, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSector(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch builds a campaign-sized batch of distinct probe vectors by
// rotating which measurement leads the vector — enough variety to defeat
// any accidental memoization without changing the per-item cost.
func benchBatch(b *testing.B, est *Estimator, probes []Probe, n int) []BatchItem {
	b.Helper()
	batch := make([]BatchItem, n)
	for i := range batch {
		v := make([]Probe, len(probes))
		for j := range probes {
			v[j] = probes[(i+j)%len(probes)]
		}
		batch[i].Probes = v
	}
	return batch
}

// BenchmarkSelectSectorBatch_Loop is the campaign shape the batch API
// replaced: SelectSector called per trial in a plain loop against the
// dense exhaustive search. BenchmarkSelectSectorBatch_Pool is the
// float64 batch path: the same trials through SelectSectorBatch with the
// hierarchical search, one persistent worker pool, and nested engine
// sharding disabled. BenchmarkSelectSectorBatch_Quant is the batch-major
// quantized pass (tile.go), where the whole batch shares one tiled
// dictionary sweep. The _Pool / _Quant delta is the batched-campaign
// wall-clock improvement recorded in BENCH_engine.json.
func BenchmarkSelectSectorBatch_Loop(b *testing.B) {
	est, probes := benchEstimator(b, Options{ExactSearch: true})
	batch := benchBatch(b, est, probes, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range batch {
			if _, err := est.SelectSector(context.Background(), v.Probes); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSelectSectorBatch_Pool(b *testing.B) {
	est, probes := benchEstimator(b, Options{Kernel: KernelFloat64})
	batch := benchBatch(b, est, probes, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSectorBatch(context.Background(), batch, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSectorBatch_Quant(b *testing.B) {
	est, probes := benchEstimator(b, Options{})
	batch := benchBatch(b, est, probes, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SelectSectorBatch(context.Background(), batch, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateMultipath_Engine(b *testing.B) {
	est, probes := benchEstimator(b, Options{ExactSearch: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateMultipath(context.Background(), probes, 2, 15, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
