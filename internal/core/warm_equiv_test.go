package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/geom"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// Equivalence gate of the warm-start path (warm.go) against the cold
// quantized search, mirroring the quant-vs-float suite in
// quant_equiv_test.go: hints chained across a tracked trajectory may
// only change the cost of a selection, never its result beyond the
// same ≤1% sector-divergence / one-coarse-cell-diagonal budget. A
// forced-margin case proves the guard actually routes rejected hints
// through the full search bit for bit.

// warmEquivCounter tallies warm-vs-cold divergence on one estimator:
// both calls see identical probes, so error classes must match exactly
// and only selection divergence is budgeted.
type warmEquivCounter struct {
	trials, mismatches int
}

func (c *warmEquivCounter) compare(t *testing.T, label string, est *Estimator, probes []Probe, hint Cell, diag float64) (Selection, error) {
	t.Helper()
	ctx := context.Background()
	cold, cErr := est.SelectSector(ctx, probes)
	warm, wErr := est.SelectSectorWarm(ctx, probes, hint)
	if (cErr == nil) != (wErr == nil) {
		t.Fatalf("%s: error parity broken: cold %v, warm %v", label, cErr, wErr)
	}
	if wErr != nil {
		return warm, wErr
	}
	c.trials++
	if warm.Sector != cold.Sector {
		// A different sector only counts against the budget when the warm
		// peak is actually weaker: the cold hierarchical search is itself
		// an approximation of the dense argmax, so a warm winner with
		// equal-or-higher correlation is a legitimate peak the coarse
		// sweep skipped, not a tracking loss.
		if warm.AoA.Corr < cold.AoA.Corr {
			c.mismatches++
		}
		t.Logf("%s: sector diverged: warm %d (az %.1f el %.1f corr %.4f), cold %d (az %.1f el %.1f corr %.4f)",
			label, warm.Sector, warm.AoA.Az, warm.AoA.El, warm.AoA.Corr,
			cold.Sector, cold.AoA.Az, cold.AoA.El, cold.AoA.Corr)
		return warm, nil
	}
	if !warm.Fallback && !cold.Fallback {
		dAz := math.Abs(geom.WrapAz(warm.AoA.Az - cold.AoA.Az))
		dEl := math.Abs(warm.AoA.El - cold.AoA.El)
		if math.Hypot(dAz, dEl) > diag {
			c.mismatches++
			t.Logf("%s: AoA diverged beyond %.1f°: warm (az %.1f el %.1f), cold (az %.1f el %.1f)",
				label, diag, warm.AoA.Az, warm.AoA.El, cold.AoA.Az, cold.AoA.El)
		}
	}
	return warm, nil
}

func (c *warmEquivCounter) assertRate(t *testing.T, minTrials int) {
	t.Helper()
	if c.trials < minTrials {
		t.Fatalf("only %d successful warm equivalence trials, want >= %d", c.trials, minTrials)
	}
	budget := c.trials / 100
	if c.mismatches > budget {
		t.Fatalf("warm-start diverged from the cold search on %d of %d trials (budget %d)",
			c.mismatches, c.trials, budget)
	}
}

// TestQuantWarmMatchesColdClean chains warm-start hints along seeded
// clean drifting trajectories: each round's hint is the previous warm
// selection's cell, exactly as the fleet retrain funnel chains them,
// and every round is compared against a cold selection of the same
// probe vector.
func TestQuantWarmMatchesColdClean(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Kernel() != KernelQuantInt16 {
		t.Fatalf("default options did not build the quantized kernel: %q", est.Kernel())
	}
	diag := coarseDiag(t, est)
	model := radio.DefaultMeasurementModel()
	rng := stats.NewRNG(61)
	available := sector.TalonTX()

	hintsBefore, hitsBefore := metWarmHints.Value(), metWarmHits.Value()
	var c warmEquivCounter
	for traj := 0; traj < 15; traj++ {
		az := -65 + 130*rng.Float64()
		el := 4 + 20*rng.Float64()
		drift := rng.Uniform(-1.5, 1.5) // degrees of azimuth per round
		hint := NoCell
		for round := 0; round < 12; round++ {
			ps, err := RandomProbes(rng, available, 14)
			if err != nil {
				t.Fatal(err)
			}
			probes := observe(t, gain, ps.IDs(), az, el, model, rng)
			warm, err := c.compare(t, fmt.Sprintf("traj=%d round=%d", traj, round), est, probes, hint, diag)
			if err != nil {
				hint = NoCell
				continue
			}
			hint = warm.AoA.Cell
			az += drift
		}
	}
	c.assertRate(t, 170)
	if metWarmHints.Value() == hintsBefore {
		t.Fatal("no trial exercised the warm-start path")
	}
	if metWarmHits.Value() == hitsBefore {
		t.Fatal("no hinted trial was accepted by the warm window — the suite only covered the fallback")
	}
}

// TestQuantWarmMatchesColdFaultyChannel repeats the chained-hint suite
// over a real simulated link with the fault.Standard60GHz impairment
// chain injected, walking the probe device along an arc so consecutive
// rounds form a genuine tracking trajectory through burst loss, RSSI
// drift and stale feedback.
func TestQuantWarmMatchesColdFaultyChannel(t *testing.T) {
	dut, err := wil.NewDevice(wil.Config{
		Name: "warm-dut",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x41},
		Seed: 602,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := wil.NewDevice(wil.Config{
		Name: "warm-probe",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x42},
		Seed: 603,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dut.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := probe.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	grid, err := geom.UniformGrid(-70, 70, 5, 0, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	chamber := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(chamber, dut, probe, 604)
	campaign.Repeats = 1
	patterns, err := campaign.MeasureAllPatterns(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diag := coarseDiag(t, est)

	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	dut.SetPose(dutPose)
	probe.SetPose(probePose)
	link := wil.NewLink(channel.Lab(), dut, probe)
	link.SetInjector(fault.Standard60GHz(0.15, 4, 605))

	rng := stats.NewRNG(67)
	available := sector.TalonTX()
	var c warmEquivCounter
	hint := NoCell
	for trial := 0; trial < 170; trial++ {
		// A slow arc sweep: consecutive trials stay within a couple of
		// degrees, so chained hints describe a tracked station.
		az := -55 + 110*float64(trial)/170
		rad := az * math.Pi / 180
		pose := probePose
		pose.Pos.X = dutPose.Pos.X + 3*math.Cos(rad)
		pose.Pos.Y = dutPose.Pos.Y + 3*math.Sin(rad)
		pose.Yaw = 180 + az
		probe.SetPose(pose)

		ps, err := RandomProbes(rng, available, 14)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := link.RunTXSS(dut, probe, dot11ad.SubSweepSchedule(ps))
		if err != nil {
			// An injected transient fault killed the whole sweep; the
			// fleet would fail this round and restart cold.
			hint = NoCell
			continue
		}
		probes := ProbesFromMeasurements(ps.IDs(), meas)
		warm, err := c.compare(t, fmt.Sprintf("trial=%d", trial), est, probes, hint, diag)
		if err != nil {
			hint = NoCell
			continue
		}
		hint = warm.AoA.Cell
	}
	c.assertRate(t, 139)
}

// TestQuantWarmMarginFallback forces the margin guard to fire: with the
// warm margin pushed above any reachable correlation, every hinted call
// must reject its local winner, count a fallback, and reproduce the
// cold selection bit for bit.
func TestQuantWarmMarginFallback(t *testing.T) {
	set, gain := synthSetup(t)
	strict, err := NewEstimator(set, Options{WarmMargin: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(71)
	model := radio.DefaultMeasurementModel()
	available := sector.TalonTX()
	ctx := context.Background()

	checked := 0
	for trial := 0; trial < 25; trial++ {
		ps, err := RandomProbes(rng, available, 14)
		if err != nil {
			t.Fatal(err)
		}
		az := -70 + 140*rng.Float64()
		probes := observe(t, gain, ps.IDs(), az, 9, model, rng)
		cold, cErr := strict.SelectSector(ctx, probes)
		if cErr != nil {
			continue
		}
		hintsBefore, hitsBefore, fallsBefore := metWarmHints.Value(), metWarmHits.Value(), metWarmFallbacks.Value()
		warm, wErr := strict.SelectSectorWarm(ctx, probes, cold.AoA.Cell)
		if wErr != nil {
			t.Fatalf("trial=%d: warm errored where cold succeeded: %v", trial, wErr)
		}
		if metWarmHints.Value() != hintsBefore+1 {
			t.Fatalf("trial=%d: hint was not counted", trial)
		}
		if metWarmHits.Value() != hitsBefore {
			t.Fatalf("trial=%d: unreachable margin still accepted the local window", trial)
		}
		if metWarmFallbacks.Value() != fallsBefore+1 {
			t.Fatalf("trial=%d: margin rejection did not count a fallback", trial)
		}
		if !sameSelection(warm, cold) {
			t.Fatalf("trial=%d: fallback selection differs from cold:\n warm %+v\n cold %+v", trial, warm, cold)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d margin-fallback trials completed", checked)
	}
}
