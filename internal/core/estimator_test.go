package core

import (
	"context"
	"math"
	"testing"

	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// synthSetup builds a synthetic codebook of gaussian beams spread over
// azimuth and a ground-truth gain oracle.
func synthSetup(t testing.TB) (*pattern.Set, func(id sector.ID, az, el float64) float64) {
	t.Helper()
	grid, err := geom.UniformGrid(-80, 80, 2, 0, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	type beam struct{ az, el, width float64 }
	beams := map[sector.ID]beam{}
	ids := sector.TalonTX()
	for i, id := range ids {
		beams[id] = beam{
			az:    -75 + 150*float64(i)/float64(len(ids)-1),
			el:    float64((i * 7) % 25),
			width: 14 + float64(i%3)*4,
		}
	}
	gain := func(id sector.ID, az, el float64) float64 {
		b := beams[id]
		d2 := (az-b.az)*(az-b.az) + 2*(el-b.el)*(el-b.el)
		return 12 - 19*(1-math.Exp(-d2/(2*b.width*b.width)))
	}
	set := pattern.NewSet()
	for _, id := range ids {
		id := id
		p := pattern.FromFunc(grid, func(az, el float64) float64 { return gain(id, az, el) })
		if err := set.Put(id, p); err != nil {
			t.Fatal(err)
		}
	}
	return set, gain
}

// observe simulates probing: true gains plus the firmware defect model.
func observe(t testing.TB, gain func(sector.ID, float64, float64) float64, probed []sector.ID,
	az, el float64, model radio.MeasurementModel, rng *stats.RNG) []Probe {
	t.Helper()
	probes := make([]Probe, 0, len(probed))
	for _, id := range probed {
		m, ok := model.Observe(gain(id, az, el), rng)
		probes = append(probes, Probe{Sector: id, Meas: m, OK: ok})
	}
	return probes
}

func quietModel() radio.MeasurementModel {
	m := radio.DefaultMeasurementModel()
	m.SNRNoiseStdDB, m.RSSINoiseStdDB, m.LowSNRNoiseBoost = 0.1, 0.1, 0
	m.OutlierProb, m.BaseMissProb = 0, 0
	m.DecodeThresholdDB = -100
	return m
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(nil, Options{}); err == nil {
		t.Fatal("nil pattern set accepted")
	}
	small := pattern.NewSet()
	if _, err := NewEstimator(small, Options{}); err == nil {
		t.Fatal("empty pattern set accepted")
	}
}

func TestEstimateAoANoiseless(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	model := quietModel()
	for _, truth := range []struct{ az, el float64 }{
		{0, 0}, {-40, 6}, {33, 12}, {70, 3}, {-66, 21},
	} {
		probes := observe(t, gain, sector.TalonTX(), truth.az, truth.el, model, rng)
		aoa, err := est.EstimateAoA(context.Background(), probes)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(aoa.Az-truth.az) > 3 {
			t.Errorf("az estimate %v for truth %v", aoa.Az, truth.az)
		}
		if math.Abs(aoa.El-truth.el) > 5 {
			t.Errorf("el estimate %v for truth %v", aoa.El, truth.el)
		}
		if aoa.Used != 34 {
			t.Errorf("used = %d", aoa.Used)
		}
	}
}

func TestEstimateAoACompressive(t *testing.T) {
	// The headline property: a random M=14 subset estimates the angle
	// almost as well as the full sweep.
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	model := radio.DefaultMeasurementModel()
	var errsAz []float64
	for trial := 0; trial < 120; trial++ {
		truthAz := rng.Uniform(-60, 60)
		truthEl := rng.Uniform(0, 20)
		probeSet, err := RandomProbes(rng, sector.TalonTX(), 14)
		if err != nil {
			t.Fatal(err)
		}
		probes := observe(t, gain, probeSet.IDs(), truthAz, truthEl, model, rng)
		aoa, err := est.EstimateAoA(context.Background(), probes)
		if err != nil {
			continue // all probes missed: counted as failure below
		}
		errsAz = append(errsAz, math.Abs(aoa.Az-truthAz))
	}
	if len(errsAz) < 110 {
		t.Fatalf("estimation failed in %d/120 trials", 120-len(errsAz))
	}
	med := stats.Median(errsAz)
	if med > 5 {
		t.Fatalf("median azimuth error %v° with 14 probes", med)
	}
}

func TestJointCorrelationBeatsOutliers(t *testing.T) {
	// Eq. 5 robustness: with heavy outliers, SNR-only estimation should
	// err more than the joint SNR·RSSI correlation.
	set, gain := synthSetup(t)
	joint, _ := NewEstimator(set, Options{})
	snrOnly, _ := NewEstimator(set, Options{SNROnly: true})
	model := radio.DefaultMeasurementModel()
	model.OutlierProb = 0.25
	model.OutlierScaleDB = 8
	rng := stats.NewRNG(3)
	var errJoint, errSNR []float64
	for trial := 0; trial < 250; trial++ {
		truthAz := rng.Uniform(-60, 60)
		probeSet, _ := RandomProbes(rng, sector.TalonTX(), 14)
		probes := observe(t, gain, probeSet.IDs(), truthAz, 5, model, rng)
		if a, err := joint.EstimateAoA(context.Background(), probes); err == nil {
			errJoint = append(errJoint, math.Abs(a.Az-truthAz))
		}
		if a, err := snrOnly.EstimateAoA(context.Background(), probes); err == nil {
			errSNR = append(errSNR, math.Abs(a.Az-truthAz))
		}
	}
	mj, ms := stats.Mean(errJoint), stats.Mean(errSNR)
	if mj >= ms {
		t.Fatalf("joint correlation (%.2f°) not better than SNR-only (%.2f°) under outliers", mj, ms)
	}
}

func TestSelectSectorPicksDominantBeam(t *testing.T) {
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(4)
	model := quietModel()
	for trial := 0; trial < 40; trial++ {
		truthAz := rng.Uniform(-70, 70)
		truthEl := rng.Uniform(0, 20)
		probeSet, _ := RandomProbes(rng, sector.TalonTX(), 16)
		probes := observe(t, gain, probeSet.IDs(), truthAz, truthEl, model, rng)
		sel, err := est.SelectSector(context.Background(), probes)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against the true best over ALL sectors (not just the
		// probed ones): the point of Eq. 4.
		bestGain := math.Inf(-1)
		for _, id := range sector.TalonTX() {
			if g := gain(id, truthAz, truthEl); g > bestGain {
				bestGain = g
			}
		}
		if got := gain(sel.Sector, truthAz, truthEl); bestGain-got > 1.5 {
			t.Fatalf("trial %d: selected %v is %.2f dB below optimum", trial, sel.Sector, bestGain-got)
		}
	}
}

func TestSelectSectorCanPickUnprobedSector(t *testing.T) {
	// The selected sector may lie outside the probing subset: N >> M.
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(5)
	model := quietModel()
	sawUnprobed := false
	for trial := 0; trial < 60 && !sawUnprobed; trial++ {
		truthAz := rng.Uniform(-70, 70)
		probeSet, _ := RandomProbes(rng, sector.TalonTX(), 8)
		probes := observe(t, gain, probeSet.IDs(), truthAz, 5, model, rng)
		sel, err := est.SelectSector(context.Background(), probes)
		if err != nil {
			continue
		}
		if !probeSet.Contains(sel.Sector) {
			sawUnprobed = true
		}
	}
	if !sawUnprobed {
		t.Fatal("selection never left the probing subset")
	}
}

func TestEstimateAoAMissingProbes(t *testing.T) {
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(6)
	model := quietModel()
	// Aim near the surviving probes' beams so the readings carry shape.
	probes := observe(t, gain, sector.TalonTX()[:10], -70, 5, model, rng)
	// Kill all but three reports (the centered correlation needs three
	// components).
	for i := range probes {
		if i >= 3 {
			probes[i].OK = false
		}
	}
	if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
		t.Fatalf("3 valid probes should still estimate: %v", err)
	}
	probes[2].OK = false
	probes[1].OK = false
	if _, err := est.EstimateAoA(context.Background(), probes); err == nil {
		t.Fatal("single probe accepted")
	}
	// SelectSector still works by falling back to the probed argmax.
	sel, err := est.SelectSector(context.Background(), probes)
	if err != nil || !sel.Fallback {
		t.Fatalf("fallback selection = %+v, %v", sel, err)
	}
}

func TestCorrelationPeaksAtTruth(t *testing.T) {
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(7)
	probes := observe(t, gain, sector.TalonTX(), -30, 9, quietModel(), rng)
	atTruth := est.Correlation(probes, -30, 9)
	for _, off := range []struct{ az, el float64 }{{30, 9}, {-30, 25}, {60, 0}} {
		if v := est.Correlation(probes, off.az, off.el); v >= atTruth {
			t.Fatalf("correlation at (%v,%v)=%v >= truth %v", off.az, off.el, v, atTruth)
		}
	}
	if atTruth <= 0 || atTruth > 1.0000001 {
		t.Fatalf("correlation out of range: %v", atTruth)
	}
}

func TestCorrelationScaleInvariance(t *testing.T) {
	// Normalized correlation must not care about constant dB offsets
	// (transmit power, path loss) — only the pattern shape matters.
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{SNROnly: true})
	rng := stats.NewRNG(8)
	probes := observe(t, gain, sector.TalonTX(), 10, 5, quietModel(), rng)
	shifted := make([]Probe, len(probes))
	copy(shifted, probes)
	for i := range shifted {
		shifted[i].Meas.SNR += 7 // constant offset
	}
	a := est.Correlation(probes, 10, 5)
	b := est.Correlation(shifted, 10, 5)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("correlation not offset-invariant: %v vs %v", a, b)
	}
}

func TestRefinementImprovesResolution(t *testing.T) {
	set, gain := synthSetup(t)
	refined, _ := NewEstimator(set, Options{})
	coarse, _ := NewEstimator(set, Options{NoRefine: true})
	rng := stats.NewRNG(9)
	model := quietModel()
	var errR, errC []float64
	for trial := 0; trial < 80; trial++ {
		truthAz := rng.Uniform(-60, 60)
		probes := observe(t, gain, sector.TalonTX(), truthAz, 5, model, rng)
		if a, err := refined.EstimateAoA(context.Background(), probes); err == nil {
			errR = append(errR, math.Abs(a.Az-truthAz))
		}
		if a, err := coarse.EstimateAoA(context.Background(), probes); err == nil {
			errC = append(errC, math.Abs(a.Az-truthAz))
		}
	}
	if stats.Mean(errR) >= stats.Mean(errC) {
		t.Fatalf("refinement did not help: %.3f° vs %.3f°", stats.Mean(errR), stats.Mean(errC))
	}
}

func TestProbesFromMeasurements(t *testing.T) {
	meas := map[sector.ID]radio.Measurement{
		3: {SNR: 5, RSSI: -60},
	}
	probes := ProbesFromMeasurements([]sector.ID{3, 4}, meas)
	if len(probes) != 2 || !probes[0].OK || probes[1].OK {
		t.Fatalf("probes = %+v", probes)
	}
}
