package core

import (
	"context"
	"fmt"
	"time"
)

// Warm-start incremental re-estimation.
//
// A tracked station's angle of arrival moves at most a grid cell or two
// between retrains, so repeating the full coarse-to-fine search on every
// round re-derives what the previous round already knew. Following the
// in-sector compressive tracking of Masoumi et al. (arXiv:2308.13268)
// and the SLS-based local tracking of Grossi et al. (arXiv:1904.12835),
// the warm path skips the coarse pass entirely and scores only the dense
// neighbourhood around the previous argmax cell on the quantized int16
// dictionary: (2R+1)² jointQ evaluations against the full search's
// coarse sweep plus top-K window refinement.
//
// Correctness contract: warm-start may only change cost, never the
// reported selection beyond the quant-vs-float equivalence budget. Three
// guards enforce it, and any failure falls back to the full quantized
// search bit for bit:
//
//   - The hint must unpack to a cell inside the engine's grid (stale
//     hints from a differently-shaped estimator are rejected, not
//     clamped).
//   - The local winner must be strictly interior to the scanned window —
//     an argmax on the window rim means the surface is still rising
//     toward a peak outside the neighbourhood, exactly the case where a
//     local search would track a side lobe. Window edges clamped at the
//     grid boundary count as interior: the dense grid itself ends there.
//   - The winner's score must clear the correlation margin
//     (DefaultWarmMargin × the FallbackCorr threshold): scores between
//     the fallback threshold and the margin are kept on the full search,
//     so warm-start cannot convert a borderline estimate into a
//     different borderline estimate unseen.
//
// The float64 kernel ignores hints entirely — SelectSectorWarm degrades
// to SelectSector — so pinned float golden artifacts are untouched by
// warm-start plumbing.

// Cell names one dense grid cell of an estimator's correlation surface,
// used as the warm-start hint chained from a previous estimate. The zero
// value (NoCell) means "no usable hint"; any other value packs the
// argmax (azimuth, elevation) indices of the estimate that produced it.
// Cells are only meaningful to estimators over the same pattern grid.
type Cell int32

// NoCell is the absent hint: estimation runs the full search.
const NoCell Cell = 0

// cellOf packs dense grid indices into a non-zero Cell.
//
//talon:noalloc
func cellOf(ai, ei int) Cell { return Cell(ei<<16|ai) + 1 }

// split unpacks a Cell into grid indices; ok is false for NoCell.
// Callers must still bounds-check against their own grid.
//
//talon:noalloc
func (c Cell) split() (ai, ei int, ok bool) {
	if c == NoCell {
		return 0, 0, false
	}
	v := int32(c - 1)
	return int(v & 0xffff), int(v >> 16), true
}

// Warm-start defaults.
const (
	// DefaultWarmRadius is the half-width, in dense grid cells per axis,
	// of the warm-start scan window. 4 covers the default hierarchy's
	// refinement window (radius (decim+1)/2 = 2 at DefaultCoarseDecim)
	// plus two cells of inter-round drift.
	DefaultWarmRadius = 4
	// DefaultWarmMargin scales the FallbackCorr threshold into the
	// warm acceptance margin: local winners below
	// DefaultWarmMargin × FallbackCorr are re-derived by the full
	// search. 1.6 (correlation 0.40 at the default fallback threshold)
	// sits just above the band where the impaired-channel equivalence
	// suite shows local windows capturing side lobes — the one way a
	// local search loses a moving station — while keeping about two
	// thirds of fleet-sim hints on the fast path; every rejection costs
	// a wasted window scan on top of the full sweep, so margins much
	// higher than this make warm-start slower than running cold.
	DefaultWarmMargin = 1.6
)

func (o Options) warmRadius() int {
	if o.WarmRadius > 0 {
		return o.WarmRadius
	}
	return DefaultWarmRadius
}

func (o Options) warmMargin() float64 {
	switch {
	case o.WarmMargin < 0:
		return 0
	case o.WarmMargin == 0:
		return DefaultWarmMargin
	}
	return o.WarmMargin
}

// warmThreshold is the acceptance bar of the local winner's quantized
// score. It scales with the fallback threshold so disabling the fallback
// (FallbackCorr < 0) also relaxes the warm guard to bare positivity.
func (e *Estimator) warmThreshold() float64 {
	return e.opts.warmMargin() * e.opts.fallbackCorr()
}

// warmArgmaxQ scans the dense (2·radius+1)² window centred on the hint
// cell on the quantized dictionary and returns its argmax. ok is false —
// and the caller must run the full search — when the hint does not fit
// the grid, the window's best score is not positive, fails the margin
// threshold, or sits on a non-grid-edge window rim (see the file comment
// for why rim winners are rejected). The scan is strictly row-major with
// the strictly-greater update, matching every other quantized scan's
// tie-break order.
//
//talon:noalloc
func (en *engine) warmArgmaxQ(qv *quantVec, hint Cell, snrOnly bool, radius int, thresh float64) (bestA, bestE int, bestW float64, ok bool) {
	numAz, numEl := len(en.az), len(en.el)
	ha, he, valid := hint.split()
	if !valid || ha >= numAz || he >= numEl {
		return 0, 0, 0, false
	}
	aLo, aHi := int(clampIdx(ha-radius, numAz)), int(clampIdx(ha+radius, numAz))
	eLo, eHi := int(clampIdx(he-radius, numEl)), int(clampIdx(he+radius, numEl))
	bestW = -1.0
	for ei := eLo; ei <= eHi; ei++ {
		base := ei * numAz * en.stride
		for ai := aLo; ai <= aHi; ai++ {
			v := jointQ(en.dictQ, base+ai*en.stride, qv, snrOnly)
			if v > bestW {
				bestA, bestE, bestW = ai, ei, v
			}
		}
	}
	if bestW <= 0 || bestW < thresh {
		return bestA, bestE, bestW, false
	}
	if (bestA == aLo && aLo > 0) || (bestA == aHi && aHi < numAz-1) ||
		(bestE == eLo && eLo > 0) || (bestE == eHi && eHi < numEl-1) {
		return bestA, bestE, bestW, false
	}
	return bestA, bestE, bestW, true
}

// SelectSectorWarm is SelectSector seeded with the grid cell of a
// previous selection (Selection.AoA.Cell): when the quantized kernel is
// serving estimates and the local window around the hint passes the
// warm guards, the coarse pass is skipped entirely. On any guard failure
// — or with hint == NoCell, or on the float64 kernel — the call is
// bit-identical to SelectSector.
func (e *Estimator) SelectSectorWarm(ctx context.Context, probes []Probe, hint Cell) (Selection, error) {
	metSelectEngine.Inc()
	aoa, err := e.estimateHint(ctx, probes, 0, hint)
	if err != nil && isCtxErr(err) {
		return Selection{}, err
	}
	return e.finishSelection(probes, aoa, err)
}

// estimateQuantHint is estimateQuant with an optional warm-start hint:
// after the shared gather+quantize prologue it tries the local window
// first and falls back to the full quantized search on any guard
// failure.
//
//talon:noalloc
func (e *Estimator) estimateQuantHint(ctx context.Context, g *gatherScratch, probes []Probe, hint Cell) (AoAEstimate, error) {
	metQuantEstimates.Inc()
	reported := e.gatherQuantInto(g, probes)
	if reported < 2 {
		//lint:allow noalloc -- cold error path; the steady state returns before formatting
		return AoAEstimate{}, fmt.Errorf("core: %w: need at least 2 reported probes, have %d", ErrTooFewProbes, reported)
	}
	en := e.en
	colBuf := en.probeCols(g.ids)
	defer en.putCols(colBuf)
	cols := *colBuf
	quantizeGather(g, cols, en.fullQ)
	snrOnly := e.opts.SNROnly

	if hint != NoCell {
		metWarmHints.Inc()
		if bestA, bestE, _, ok := en.warmArgmaxQ(&g.qv, hint, snrOnly, e.opts.warmRadius(), e.warmThreshold()); ok {
			metWarmHits.Inc()
			return e.quantEpilogue(g, cols, bestA, bestE, reported), nil
		}
		metWarmFallbacks.Inc()
	}

	var sc *hierScratch
	if len(en.coarseQ) > 0 {
		sc = en.getHierScratch()
		defer en.putHierScratch(sc)
	}
	bestA, bestE, bestW, err := en.searchQuant(ctx, sc, &g.qv, snrOnly)
	if err != nil {
		return AoAEstimate{}, err
	}
	if bestW <= 0 {
		metDegenerate.Inc()
		//lint:allow noalloc -- cold error path; the steady state returns before formatting
		return AoAEstimate{}, fmt.Errorf("core: %w", ErrDegenerateSurface)
	}
	return e.quantEpilogue(g, cols, bestA, bestE, reported), nil
}

// estimateHint is estimate() with a warm-start hint. The hint only
// reaches the quantized kernel; the float64 paths ignore it, so pinned
// float artifacts cannot drift through warm-start plumbing.
func (e *Estimator) estimateHint(ctx context.Context, probes []Probe, maxShards int, hint Cell) (AoAEstimate, error) {
	if e.en != nil && e.en.quant() {
		metEstimates.Inc()
		start := time.Now() //lint:allow determinism -- estimate-latency histogram reads the wall clock by design
		defer metEstimateSeconds.ObserveSince(start)
		metScratchGets.Inc()
		g := e.gathers.Get().(*gatherScratch)
		defer e.gathers.Put(g)
		return e.estimateQuantHint(ctx, g, probes, hint)
	}
	return e.estimate(ctx, probes, maxShards)
}
