package core

import (
	"encoding/json"
	"fmt"
	"math"
)

// Human- and machine-readable forms of the CSS result types, used by the
// CLIs (evalrunner, talondump) and handy in logs.

// String implements fmt.Stringer: "sector 5 (12.3 dB)" for a probe that
// reported, "sector 5 (miss)" for one that did not.
func (p Probe) String() string {
	if !p.OK {
		return fmt.Sprintf("sector %s (miss)", p.Sector)
	}
	return fmt.Sprintf("sector %s (%.1f dB)", p.Sector, p.Meas.SNR)
}

// probeJSON is the wire form of a Probe. SNR/RSSI are omitted for
// misses.
type probeJSON struct {
	Sector string   `json:"sector"`
	OK     bool     `json:"ok"`
	SNR    *float64 `json:"snr_db,omitempty"`
	RSSI   *float64 `json:"rssi_dbm,omitempty"`
}

// MarshalJSON encodes the probe with the sector in String form and the
// measurement only when one came back.
func (p Probe) MarshalJSON() ([]byte, error) {
	out := probeJSON{Sector: p.Sector.String(), OK: p.OK}
	if p.OK {
		snr, rssi := p.Meas.SNR, p.Meas.RSSI
		out.SNR, out.RSSI = &snr, &rssi
	}
	return json.Marshal(out)
}

// String implements fmt.Stringer:
// "sector 18 (gain 14.2 dB, AoA az -12.0° el 4.0°)" for an estimated
// selection, "sector 18 (sweep fallback)" for one that degraded to the
// probed-sector argmax.
func (s Selection) String() string {
	if s.Degraded {
		return fmt.Sprintf("sector %s (full-sweep fallback: %s)", s.Sector, s.FallbackReason)
	}
	if s.Fallback {
		return fmt.Sprintf("sector %s (sweep fallback)", s.Sector)
	}
	return fmt.Sprintf("sector %s (gain %.1f dB, AoA az %.1f° el %.1f°)",
		s.Sector, s.Gain, s.AoA.Az, s.AoA.El)
}

// selectionJSON is the wire form of a Selection. Gain and the angle are
// omitted for fallback selections (Gain is NaN there, which JSON cannot
// carry).
type selectionJSON struct {
	Sector   string   `json:"sector"`
	Fallback bool     `json:"fallback"`
	Degraded bool     `json:"degraded,omitempty"`
	Reason   string   `json:"fallback_reason,omitempty"`
	Gain     *float64 `json:"gain_db,omitempty"`
	Az       *float64 `json:"aoa_az_deg,omitempty"`
	El       *float64 `json:"aoa_el_deg,omitempty"`
	Corr     *float64 `json:"corr,omitempty"`
}

// MarshalJSON encodes the selection with the sector in String form;
// estimate details appear only when the selection trusted an estimate.
func (s Selection) MarshalJSON() ([]byte, error) {
	out := selectionJSON{
		Sector:   s.Sector.String(),
		Fallback: s.Fallback,
		Degraded: s.Degraded,
		Reason:   string(s.FallbackReason),
	}
	if !s.Fallback && !math.IsNaN(s.Gain) {
		gain, az, el, corr := s.Gain, s.AoA.Az, s.AoA.El, s.AoA.Corr
		out.Gain, out.Az, out.El, out.Corr = &gain, &az, &el, &corr
	}
	return json.Marshal(out)
}
