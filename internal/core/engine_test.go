package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// sameAoA reports whether the engine and serial estimates agree to within
// the equivalence tolerance. The two paths perform the identical floating-
// point operations in the identical order, so they should in fact be
// bitwise equal; the 1e-12 slack only guards the comparison itself.
func sameAoA(a, b AoAEstimate) bool {
	const tol = 1e-12
	return math.Abs(a.Az-b.Az) <= tol &&
		math.Abs(a.El-b.El) <= tol &&
		math.Abs(a.Corr-b.Corr) <= tol &&
		a.Used == b.Used
}

func sameSelection(a, b Selection) bool {
	if a.Sector != b.Sector || a.Fallback != b.Fallback || !sameAoA(a.AoA, b.AoA) {
		return false
	}
	if math.IsNaN(a.Gain) || math.IsNaN(b.Gain) {
		return math.IsNaN(a.Gain) && math.IsNaN(b.Gain)
	}
	return math.Abs(a.Gain-b.Gain) <= 1e-12
}

// TestEngineMatchesSerial is the tentpole equivalence proof: across
// option variants, probe counts and noisy observations (including missed
// probes from the defect model), the precomputed-dictionary engine and the
// reference serial grid search produce identical estimates and
// selections. Every variant pins ExactSearch — the serial reference is
// an exhaustive scan, so bit-for-bit equality is only promised for the
// exhaustive engine path; the default hierarchical search has its own
// equivalence suite in hier_test.go.
func TestEngineMatchesSerial(t *testing.T) {
	set, gain := synthSetup(t)
	variants := []struct {
		name string
		opts Options
	}{
		{"default", Options{ExactSearch: true}},
		{"snr-only", Options{ExactSearch: true, SNROnly: true}},
		{"no-refine", Options{ExactSearch: true, NoRefine: true}},
		{"no-impute", Options{ExactSearch: true, NoImputeMissing: true}},
		{"snr-only-no-refine", Options{ExactSearch: true, SNROnly: true, NoRefine: true}},
	}
	model := radio.DefaultMeasurementModel()
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			est, err := NewEstimator(set, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRNG(17)
			available := sector.TalonTX()
			for _, m := range []int{4, 8, 14, 34} {
				for trial := 0; trial < 25; trial++ {
					ps, err := RandomProbes(rng, available, m)
					if err != nil {
						t.Fatal(err)
					}
					az := -78 + 156*rng.Float64()
					el := 28 * rng.Float64()
					probes := observe(t, gain, ps.IDs(), az, el, model, rng)

					gotAoA, gotErr := est.EstimateAoA(context.Background(), probes)
					refAoA, refErr := est.EstimateAoASerial(probes)
					if (gotErr == nil) != (refErr == nil) {
						t.Fatalf("m=%d trial=%d: engine err %v, serial err %v", m, trial, gotErr, refErr)
					}
					if gotErr != nil {
						if !errors.Is(gotErr, ErrTooFewProbes) && !errors.Is(gotErr, ErrDegenerateSurface) {
							t.Fatalf("m=%d trial=%d: untyped engine error %v", m, trial, gotErr)
						}
						if errors.Is(gotErr, ErrTooFewProbes) != errors.Is(refErr, ErrTooFewProbes) {
							t.Fatalf("m=%d trial=%d: sentinel mismatch: %v vs %v", m, trial, gotErr, refErr)
						}
					} else if !sameAoA(gotAoA, refAoA) {
						t.Fatalf("m=%d trial=%d: engine %+v != serial %+v", m, trial, gotAoA, refAoA)
					}

					gotSel, gotErr := est.SelectSector(context.Background(), probes)
					refSel, refErr := est.SelectSectorSerial(probes)
					if (gotErr == nil) != (refErr == nil) {
						t.Fatalf("m=%d trial=%d: select engine err %v, serial err %v", m, trial, gotErr, refErr)
					}
					if gotErr == nil && !sameSelection(gotSel, refSel) {
						t.Fatalf("m=%d trial=%d: select engine %+v != serial %+v", m, trial, gotSel, refSel)
					}
				}
			}
		})
	}
}

// TestEngineMatchesSerialWithHoles checks the equivalence on patterns with
// NaN holes, exercising the dictionary's masked entries and the
// nearest-valid corner substitution baked in at build time.
func TestEngineMatchesSerialWithHoles(t *testing.T) {
	grid, err := geom.UniformGrid(-60, 60, 4, 0, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := pattern.NewSet()
	for i := 1; i <= 10; i++ {
		id := sector.ID(i)
		center := -55 + float64(i)*11
		p := pattern.FromFunc(grid, func(az, el float64) float64 {
			return 11 - (az-center)*(az-center)/60 - el/4
		})
		// Punch holes, including a full missing elevation row for one
		// sector.
		p.Set(i, 0, math.NaN())
		p.Set(i+5, 1, math.NaN())
		p.Set(2*i, 2, math.NaN())
		if i == 4 {
			for a := 0; a < grid.NumAz(); a++ {
				p.Set(a, 3, math.NaN())
			}
		}
		if err := set.Put(id, p); err != nil {
			t.Fatal(err)
		}
	}
	// Bit-for-bit against the serial exhaustive reference, so pin
	// ExactSearch (the random garbage readings below produce surfaces
	// the hierarchical search is allowed to resolve differently).
	est, err := NewEstimator(set, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	ids := make([]sector.ID, 0, 10)
	for i := 1; i <= 10; i++ {
		ids = append(ids, sector.ID(i))
	}
	for trial := 0; trial < 50; trial++ {
		probes := make([]Probe, 0, len(ids))
		for _, id := range ids {
			// Random readings with occasional missing reports.
			probes = append(probes, Probe{
				Sector: id,
				Meas:   radio.Measurement{SNR: -5 + 20*rng.Float64(), RSSI: -75 + 20*rng.Float64()},
				OK:     rng.Float64() > 0.3,
			})
		}
		gotAoA, gotErr := est.EstimateAoA(context.Background(), probes)
		refAoA, refErr := est.EstimateAoASerial(probes)
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("trial=%d: engine err %v, serial err %v", trial, gotErr, refErr)
		}
		if gotErr == nil && !sameAoA(gotAoA, refAoA) {
			t.Fatalf("trial=%d: engine %+v != serial %+v", trial, gotAoA, refAoA)
		}
	}
}

// TestEngineErrorParity checks that engine and serial paths fail with the
// same typed sentinels.
func TestEngineErrorParity(t *testing.T) {
	set, _ := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tooFew := []Probe{{Sector: 1, Meas: radio.Measurement{SNR: 5, RSSI: -60}, OK: true}}
	_, engineErr := est.EstimateAoA(context.Background(), tooFew)
	_, serialErr := est.EstimateAoASerial(tooFew)
	if !errors.Is(engineErr, ErrTooFewProbes) {
		t.Fatalf("engine: want ErrTooFewProbes, got %v", engineErr)
	}
	if !errors.Is(serialErr, ErrTooFewProbes) {
		t.Fatalf("serial: want ErrTooFewProbes, got %v", serialErr)
	}
}

// TestEstimateCancellation checks that a cancelled context aborts the
// grid search with context.Canceled rather than a degraded result or a
// fallback selection.
func TestEstimateCancellation(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	probes := observe(t, gain, sector.TalonTX(), 20, 6, quietModel(), rng)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.EstimateAoA(ctx, probes); !errors.Is(err, context.Canceled) {
		t.Fatalf("EstimateAoA: want context.Canceled, got %v", err)
	}
	if _, err := est.SelectSector(ctx, probes); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectSector: want context.Canceled, got %v", err)
	}
	if _, err := est.EstimateMultipath(ctx, probes, 2, 15, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("EstimateMultipath: want context.Canceled, got %v", err)
	}
	if _, err := est.SelectWithBackup(ctx, probes, 15); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectWithBackup: want context.Canceled, got %v", err)
	}

	// A live context must not be affected.
	if _, err := est.EstimateAoA(context.Background(), probes); err != nil {
		t.Fatalf("live context: %v", err)
	}
}

// TestEngineConcurrentUse runs many concurrent estimates through one
// estimator to exercise the scratch pools under the race detector.
func TestEngineConcurrentUse(t *testing.T) {
	set, gain := synthSetup(t)
	// Pinned to the float kernel: the test checks bit-for-bit agreement
	// with the serial reference, a contract only KernelFloat64 carries.
	// Concurrent use of the quantized kernel is covered by the batch
	// tests and the quant equivalence suite.
	est, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		aoa AoAEstimate
		err error
	}
	rng := stats.NewRNG(11)
	probeSets := make([][]Probe, 16)
	want := make([]result, len(probeSets))
	for i := range probeSets {
		az := -70 + 140*rng.Float64()
		probeSets[i] = observe(t, gain, sector.TalonTX(), az, 5, quietModel(), rng)
		aoa, err := est.EstimateAoASerial(probeSets[i])
		want[i] = result{aoa, err}
	}
	got := make([]result, len(probeSets))
	done := make(chan int, len(probeSets))
	for i := range probeSets {
		go func(i int) {
			aoa, err := est.EstimateAoA(context.Background(), probeSets[i])
			got[i] = result{aoa, err}
			done <- i
		}(i)
	}
	for range probeSets {
		<-done
	}
	for i := range probeSets {
		if (got[i].err == nil) != (want[i].err == nil) {
			t.Fatalf("probe set %d: err %v vs %v", i, got[i].err, want[i].err)
		}
		if got[i].err == nil && !sameAoA(got[i].aoa, want[i].aoa) {
			t.Fatalf("probe set %d: %+v != %+v", i, got[i].aoa, want[i].aoa)
		}
	}
}
