package core

import (
	"context"
	"errors"
	"testing"

	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// TestBatchMatchesSelectSector checks the batch contract: item i of
// SelectSectorBatch carries exactly what SelectSector returns for
// batch[i], including per-item errors, at any worker count.
func TestBatchMatchesSelectSector(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(314)
	model := radio.DefaultMeasurementModel()
	ctx := context.Background()

	batch := make([][]Probe, 0, 12)
	for i := 0; i < 10; i++ {
		az := -75 + 15*float64(i)
		el := 3 * float64(i%4)
		batch = append(batch, observe(t, gain, sector.TalonTX(), az, el, model, rng))
	}
	// Item 10: nothing reported — estimate and sweep fallback both fail,
	// so the item carries an error without failing the batch.
	silent := make([]Probe, len(batch[0]))
	copy(silent, batch[0])
	for i := range silent {
		silent[i].OK = false
	}
	batch = append(batch, silent)
	// Item 11: a two-probe vector — fewer than three dictionary columns
	// zeroes the whole surface (degenerate), and the sweep fallback
	// resolves it into an error-free Fallback selection.
	degenerate := make([]Probe, 2)
	copy(degenerate, batch[0][:2])
	degenerate[0].OK, degenerate[1].OK = true, true
	batch = append(batch, degenerate)

	want := make([]BatchResult, len(batch))
	for i := range batch {
		sel, err := est.SelectSector(ctx, batch[i])
		want[i] = BatchResult{Selection: sel, Err: err}
	}

	for _, workers := range []int{0, 1, 3, 64} {
		got, err := est.SelectSectorBatch(ctx, BatchOf(batch), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(got), len(batch))
		}
		for i := range got {
			if (got[i].Err == nil) != (want[i].Err == nil) ||
				(got[i].Err != nil && got[i].Err.Error() != want[i].Err.Error()) {
				t.Fatalf("workers=%d item %d: err = %v, want %v", workers, i, got[i].Err, want[i].Err)
			}
			if !sameSelection(got[i].Selection, want[i].Selection) {
				t.Fatalf("workers=%d item %d: selection = %+v, want %+v",
					workers, i, got[i].Selection, want[i].Selection)
			}
		}
	}
	if !errors.Is(want[10].Err, ErrTooFewProbes) {
		t.Fatalf("item 10 err = %v, want ErrTooFewProbes", want[10].Err)
	}
	if want[11].Err != nil || !want[11].Selection.Fallback {
		t.Fatalf("item 11 = %+v, want error-free fallback selection", want[11])
	}
}

func TestBatchEmptyAndCancelled(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if res, err := est.SelectSectorBatch(ctx, nil, 0); res != nil || err != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}

	rng := stats.NewRNG(7)
	probes := observe(t, gain, sector.TalonTX(), 10, 6, quietModel(), rng)
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	res, err := est.SelectSectorBatch(cancelled, []BatchItem{{Probes: probes}}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled batch returned results: %v", res)
	}
}
