package core

import (
	"context"
	"testing"

	"talon/internal/sector"
	"talon/internal/stats"
)

// TestEstimateZeroAllocSteadyState is the allocation-regression guard of
// the estimate hot path: after the scratch pools are warm, one
// EstimateAoA — hierarchical or exhaustive — must not allocate at all.
// (testing.AllocsPerRun pins GOMAXPROCS to 1, so the exhaustive fill
// takes its serial branch; the sharded branch's goroutine spawns are an
// accepted multi-core cost, and the batch path disables them anyway.)
func TestEstimateZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	set, gain := synthSetup(t)
	rng := stats.NewRNG(41)
	probes := observe(t, gain, sector.TalonTX(), 24, 9, quietModel(), rng)
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"quant-hierarchical", Options{}},
		{"float-hierarchical", Options{Kernel: KernelFloat64}},
		{"exhaustive", Options{ExactSearch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			est, err := NewEstimator(set, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the scratch pools.
			for i := 0; i < 5; i++ {
				if _, err := est.EstimateAoA(ctx, probes); err != nil {
					t.Fatal(err)
				}
			}
			var estErr error
			allocs := testing.AllocsPerRun(100, func() {
				_, estErr = est.EstimateAoA(ctx, probes)
			})
			if estErr != nil {
				t.Fatal(estErr)
			}
			if allocs != 0 {
				t.Fatalf("steady-state EstimateAoA allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestWarmZeroAllocSteadyState guards the warm-start path: a
// SelectSectorWarm with a live hint — whether the dense window accepts
// or the margin guard falls back to the full search — must not
// allocate once the scratch pools are warm.
func TestWarmZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Kernel() != KernelQuantInt16 {
		t.Fatalf("default options did not build the quantized kernel: %q", est.Kernel())
	}
	rng := stats.NewRNG(47)
	probes := observe(t, gain, sector.TalonTX(), 18, 9, quietModel(), rng)
	ctx := context.Background()
	sel, err := est.SelectSector(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	if sel.AoA.Cell == NoCell {
		t.Fatal("cold selection produced no warm-start cell")
	}
	for _, tc := range []struct {
		name string
		hint Cell
	}{
		{"hinted", sel.AoA.Cell},
		{"cold-fallback", NoCell},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 5; i++ {
				if _, err := est.SelectSectorWarm(ctx, probes, tc.hint); err != nil {
					t.Fatal(err)
				}
			}
			var warmErr error
			allocs := testing.AllocsPerRun(100, func() {
				_, warmErr = est.SelectSectorWarm(ctx, probes, tc.hint)
			})
			if warmErr != nil {
				t.Fatal(warmErr)
			}
			if allocs != 0 {
				t.Fatalf("steady-state SelectSectorWarm allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestBatchZeroAllocSteadyState guards the batch-major quantized pass:
// once the engine's batch scratch pool is warm, a whole
// SelectSectorBatch performs exactly one allocation — the caller-visible
// result slice — regardless of batch size. Per-item gather buffers,
// quantized code vectors and top-K state all live in the pooled
// quantBatchScratch.
func TestBatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Kernel() != KernelQuantInt16 {
		t.Fatalf("default options did not build the quantized kernel: %q", est.Kernel())
	}
	rng := stats.NewRNG(43)
	batch := make([][]Probe, 24)
	for i := range batch {
		az := -60 + 120*rng.Float64()
		batch[i] = observe(t, gain, sector.TalonTX(), az, 7, quietModel(), rng)
	}
	ctx := context.Background()
	items := BatchOf(batch)
	// Warm the batch scratch pool (workers=1 keeps one chunk, so one
	// pooled scratch serves every run).
	for i := 0; i < 5; i++ {
		if _, err := est.SelectSectorBatch(ctx, items, 1); err != nil {
			t.Fatal(err)
		}
	}
	var batchErr error
	allocs := testing.AllocsPerRun(50, func() {
		_, batchErr = est.SelectSectorBatch(ctx, items, 1)
	})
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if allocs > 1 {
		t.Fatalf("steady-state SelectSectorBatch allocates %.1f times per call, want <= 1 (the result slice)", allocs)
	}
}
