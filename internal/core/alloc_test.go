package core

import (
	"context"
	"testing"

	"talon/internal/sector"
	"talon/internal/stats"
)

// TestEstimateZeroAllocSteadyState is the allocation-regression guard of
// the estimate hot path: after the scratch pools are warm, one
// EstimateAoA — hierarchical or exhaustive — must not allocate at all.
// (testing.AllocsPerRun pins GOMAXPROCS to 1, so the exhaustive fill
// takes its serial branch; the sharded branch's goroutine spawns are an
// accepted multi-core cost, and the batch path disables them anyway.)
func TestEstimateZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	set, gain := synthSetup(t)
	rng := stats.NewRNG(41)
	probes := observe(t, gain, sector.TalonTX(), 24, 9, quietModel(), rng)
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"hierarchical", Options{}},
		{"exhaustive", Options{ExactSearch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			est, err := NewEstimator(set, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the scratch pools.
			for i := 0; i < 5; i++ {
				if _, err := est.EstimateAoA(ctx, probes); err != nil {
					t.Fatal(err)
				}
			}
			var estErr error
			allocs := testing.AllocsPerRun(100, func() {
				_, estErr = est.EstimateAoA(ctx, probes)
			})
			if estErr != nil {
				t.Fatal(estErr)
			}
			if allocs != 0 {
				t.Fatalf("steady-state EstimateAoA allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}
