package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"talon/internal/geom"
	"talon/internal/sector"
)

// EstimateMultipath extends the angle estimation to multiple propagation
// paths (the compressive multi-path estimation of Marzi et al. that the
// paper cites as related work): it extracts up to k ranked local maxima
// of the correlation surface, suppressing everything within minSepDeg of
// an already-accepted peak, and drops peaks below relThresh times the
// main peak's correlation. ctx is observed between grid rows of every
// cancellation round.
func (e *Estimator) EstimateMultipath(ctx context.Context, probes []Probe, k int, minSepDeg, relThresh float64) ([]AoAEstimate, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: multipath peak count %d must be positive", k)
	}
	if minSepDeg <= 0 {
		minSepDeg = 15
	}
	if relThresh <= 0 || relThresh >= 1 {
		relThresh = 0.35
	}
	ids, snrLin, rssiLin, reported := e.gatherVectors(probes)
	if reported < 2 {
		return nil, fmt.Errorf("core: %w: need at least 2 reported probes, have %d", ErrTooFewProbes, reported)
	}
	grid, err := e.searchGrid(ids)
	if err != nil {
		return nil, err
	}
	azAxis, elAxis := grid.Az(), grid.El()
	// The engine dictionary replaces per-point Pattern.At lookups inside
	// the cancellation rounds; the vectors it correlates change per round,
	// the dictionary does not.
	var cols []int16
	if e.en != nil {
		colBuf := e.en.probeCols(ids)
		defer e.en.putCols(colBuf)
		cols = *colBuf
	}

	// Successive interference cancellation: after each detected path the
	// path's power contribution is subtracted from the measurement
	// vectors, exposing weaker paths that the dominant one masks in the
	// raw correlation surface.
	snr := append([]float64(nil), snrLin...)
	rssi := append([]float64(nil), rssiLin...)
	var peaks []AoAEstimate
	suppressed := make([][]bool, len(elAxis))
	for i := range suppressed {
		suppressed[i] = make([]bool, len(azAxis))
	}
	mainCorr := 0.0
	for len(peaks) < k {
		bestA, bestE, bestW := -1, -1, 0.0
		var w [][]float64
		w = make([][]float64, len(elAxis))
		for ei, el := range elAxis {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			row := make([]float64, len(azAxis))
			for ai, az := range azAxis {
				if suppressed[ei][ai] {
					continue
				}
				var v float64
				if cols != nil {
					pt := (ei*len(azAxis) + ai) * e.en.stride
					v = e.en.correlateAt(pt, cols, snr)
					if v != 0 && !e.opts.SNROnly {
						v *= e.en.correlateAt(pt, cols, rssi)
					}
				} else {
					v = e.correlate(ids, snr, az, el)
					if !e.opts.SNROnly {
						v *= e.correlate(ids, rssi, az, el)
					}
				}
				row[ai] = v
				if v > bestW {
					bestA, bestE, bestW = ai, ei, v
				}
			}
			w[ei] = row
		}
		if bestA < 0 || bestW <= 0 {
			break
		}
		if len(peaks) == 0 {
			mainCorr = bestW
		} else if bestW < relThresh*mainCorr {
			break
		}
		az, el := azAxis[bestA], elAxis[bestE]
		if !e.opts.NoRefine {
			az = refineAxis(azAxis, bestA, func(i int) float64 { return w[bestE][i] })
			el = refineAxis(elAxis, bestE, func(i int) float64 { return w[i][bestA] })
		}
		peaks = append(peaks, AoAEstimate{Az: az, El: el, Corr: bestW, Used: reported})
		// Cancel the detected path from both measurement vectors and
		// suppress its angular neighbourhood against re-detection.
		cancelPath(e, ids, snr, az, el)
		cancelPath(e, ids, rssi, az, el)
		for ei, elv := range elAxis {
			for ai, azv := range azAxis {
				if geom.SphereDist(azAxis[bestA], elAxis[bestE], azv, elv) < minSepDeg {
					suppressed[ei][ai] = true
				}
			}
		}
	}
	if len(peaks) == 0 {
		return nil, fmt.Errorf("core: %w", ErrDegenerateSurface)
	}
	return peaks, nil
}

// cancelPath subtracts, in the power domain, the least-squares-scaled
// pattern contribution of a path at (az, el) from the amplitude vector.
// Components never drop below a small floor so later correlations stay
// well defined.
func cancelPath(e *Estimator, ids []sector.ID, ampVec []float64, az, el float64) {
	var dot, nx float64
	xPow := make([]float64, len(ids))
	valid := make([]bool, len(ids))
	maxPow := 0.0
	for i, id := range ids {
		p := e.patterns.Get(id)
		if p == nil {
			continue
		}
		g := p.At(az, el)
		if math.IsNaN(g) {
			continue
		}
		x := math.Pow(10, g/10)
		pw := ampVec[i] * ampVec[i]
		xPow[i] = x
		valid[i] = true
		dot += pw * x
		nx += x * x
		if pw > maxPow {
			maxPow = pw
		}
	}
	if nx == 0 || maxPow == 0 {
		return
	}
	beta := dot / nx
	floor := 1e-6 * maxPow
	for i := range ids {
		if !valid[i] {
			continue
		}
		residual := ampVec[i]*ampVec[i] - beta*xPow[i]
		if residual < floor {
			residual = floor
		}
		ampVec[i] = math.Sqrt(residual)
	}
}

// searchGrid picks the grid the correlation surface is evaluated on.
func (e *Estimator) searchGrid(ids []sector.ID) (*geom.Grid, error) {
	for _, id := range ids {
		if p := e.patterns.Get(id); p != nil {
			return p.Grid(), nil
		}
	}
	for _, id := range e.patterns.IDs() {
		if p := e.patterns.Get(id); p != nil {
			return p.Grid(), nil
		}
	}
	return nil, errors.New("core: empty pattern set")
}

// BackupSelection pairs the primary compressive selection with a backup
// sector toward the strongest secondary path — the proactive
// alternative-beam idea of BeamSpy (Sur et al.), built on the multipath
// estimate: when the primary path gets blocked, the link can switch to
// the backup sector without retraining.
type BackupSelection struct {
	Primary Selection
	// Backup is the best sector toward the secondary path; valid only
	// when HasBackup.
	Backup    Selection
	HasBackup bool
}

// SelectWithBackup runs compressive selection and, when the correlation
// surface exposes a distinct secondary path, also returns the best sector
// toward it (guaranteed different from the primary sector). A cancelled
// context propagates ctx.Err() instead of degrading to the single-sector
// fallback.
func (e *Estimator) SelectWithBackup(ctx context.Context, probes []Probe, minSepDeg float64) (BackupSelection, error) {
	peaks, err := e.EstimateMultipath(ctx, probes, 3, minSepDeg, 0.1)
	if err != nil {
		if isCtxErr(err) {
			return BackupSelection{}, err
		}
		// Degenerate surface: fall back like SelectSector does.
		sel, serr := e.SelectSector(ctx, probes)
		if serr != nil {
			return BackupSelection{}, serr
		}
		return BackupSelection{Primary: sel}, nil
	}
	primaryID, primaryGain := e.patterns.BestSector(peaks[0].Az, peaks[0].El)
	if math.IsNaN(primaryGain) {
		return BackupSelection{}, errors.New("core: pattern set has no usable TX sector")
	}
	out := BackupSelection{Primary: Selection{Sector: primaryID, Gain: primaryGain, AoA: peaks[0]}}
	for _, peak := range peaks[1:] {
		id, gain := e.patterns.BestSector(peak.Az, peak.El)
		if math.IsNaN(gain) || id == primaryID {
			continue
		}
		out.Backup = Selection{Sector: id, Gain: gain, AoA: peak}
		out.HasBackup = true
		break
	}
	return out, nil
}
