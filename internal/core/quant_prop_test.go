package core

import (
	"math"
	"testing"

	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// Property and fuzz tests of the fixed-point probe codec and the
// amplitude code table — the layer whose rounding behaviour the
// equivalence suite's divergence budget ultimately rests on.

// TestProbeCodecLatticeLossless: every value real firmware can report —
// the quarter-dB lattice across the clamp window — must round-trip
// through the codec exactly. The probe lattice subdivides the hardware
// quantum 4×, so each hardware point sits precisely on a code.
func TestProbeCodecLatticeLossless(t *testing.T) {
	steps := int((radio.SNRMaxDB - radio.SNRMinDB) / radio.SNRQuantumDB)
	for i := 0; i <= steps; i++ {
		db := radio.SNRMinDB + float64(i)*radio.SNRQuantumDB
		got := DequantizeProbe(QuantizeProbe(db))
		if got != db {
			t.Fatalf("hardware lattice value %.4f dB round-trips to %.4f", db, got)
		}
	}
}

// TestProbeCodecRoundTrip: any in-window value, lattice-aligned or not,
// round-trips within half a code step (1/32 dB) — four times tighter
// than the half quarter-dB bound the kernel design budgets for.
func TestProbeCodecRoundTrip(t *testing.T) {
	rng := stats.NewRNG(61)
	for i := 0; i < 10000; i++ {
		db := radio.SNRMinDB + (radio.SNRMaxDB-radio.SNRMinDB)*rng.Float64()
		got := DequantizeProbe(QuantizeProbe(db))
		if math.Abs(got-db) > probeStepDB/2+1e-12 {
			t.Fatalf("%.6f dB round-trips to %.6f (err %.6f > %.6f)",
				db, got, math.Abs(got-db), probeStepDB/2)
		}
	}
}

// TestProbeCodecSaturation pins the clamp behaviour at and beyond the
// window edges, mirroring the firmware's own reporting clamp.
func TestProbeCodecSaturation(t *testing.T) {
	cases := []struct {
		db   float64
		code int16
	}{
		{math.Inf(-1), 0},
		{-100, 0},
		{radio.SNRMinDB - 0.126, 0}, // more than half a step below
		{radio.SNRMinDB, 0},
		{radio.SNRMaxDB, ProbeCodeMax},
		{radio.SNRMaxDB + 0.126, ProbeCodeMax},
		{100, ProbeCodeMax},
		{math.Inf(1), ProbeCodeMax},
		{math.NaN(), 0},
	}
	for _, tc := range cases {
		if got := QuantizeProbe(tc.db); got != tc.code {
			t.Errorf("QuantizeProbe(%v) = %d, want %d", tc.db, got, tc.code)
		}
	}
	// Dequantize clamps out-of-range codes instead of reading out of the
	// window.
	if got := DequantizeProbe(-5); got != radio.SNRMinDB {
		t.Errorf("DequantizeProbe(-5) = %v, want window floor %v", got, radio.SNRMinDB)
	}
	if got := DequantizeProbe(ProbeCodeMax + 100); got != radio.SNRMaxDB {
		t.Errorf("DequantizeProbe(max+100) = %v, want window top %v", got, radio.SNRMaxDB)
	}
}

// TestProbeCodecMonotone: the codec must preserve ordering — a louder
// reading never gets a smaller code.
func TestProbeCodecMonotone(t *testing.T) {
	rng := stats.NewRNG(67)
	for i := 0; i < 10000; i++ {
		a := radio.SNRMinDB - 5 + (radio.SNRMaxDB-radio.SNRMinDB+10)*rng.Float64()
		b := radio.SNRMinDB - 5 + (radio.SNRMaxDB-radio.SNRMinDB+10)*rng.Float64()
		if a > b {
			a, b = b, a
		}
		if QuantizeProbe(a) > QuantizeProbe(b) {
			t.Fatalf("monotonicity broken: Q(%.4f)=%d > Q(%.4f)=%d",
				a, QuantizeProbe(a), b, QuantizeProbe(b))
		}
	}
}

// TestAmpCodesTable pins the amplitude table's shape: strictly positive,
// monotone non-decreasing in dB, full scale exactly at the window top,
// and every code within the int32-overflow budget of the correlator.
func TestAmpCodesTable(t *testing.T) {
	if got := ampCodes[ProbeCodeMax]; got != quantOne {
		t.Fatalf("window top encodes to %d, want full scale %d", got, quantOne)
	}
	for c, v := range ampCodes {
		if v <= 0 || v > quantOne {
			t.Fatalf("ampCodes[%d] = %d outside (0, %d]", c, v, quantOne)
		}
		if c > 0 && v < ampCodes[c-1] {
			t.Fatalf("ampCodes not monotone at %d: %d < %d", c, v, ampCodes[c-1])
		}
	}
	// The overflow argument of correlateQ: the worst raw second moment at
	// the component cap must fit int32.
	worst := int64(quantMaxComponents) * int64(quantOne) * int64(quantOne)
	if worst > math.MaxInt32 {
		t.Fatalf("moment bound %d overflows int32", worst)
	}
}

// TestQuantizeVecLatticeAligned: a lattice-aligned vector (what real
// firmware reports) must hit the ampCodes table at exact lattice points
// after the window shift — i.e. the shift itself is lattice-aligned.
func TestQuantizeVecLatticeAligned(t *testing.T) {
	rng := stats.NewRNG(71)
	cols := make([]int16, 14)
	db := make([]float64, 14)
	for trial := 0; trial < 200; trial++ {
		// Random lattice readings with a random bulk offset (RSSI vectors
		// sit ~80 dB below SNR ones).
		offset := math.Floor(-90 + 100*rng.Float64())
		for i := range db {
			q := math.Round(rng.Float64()*76) * radio.SNRQuantumDB // 0..19 dB span
			db[i] = offset + q
			cols[i] = int16(i)
		}
		codes := quantizeVec(nil, db, cols)
		maxDB := math.Inf(-1)
		for _, v := range db {
			maxDB = math.Max(maxDB, v)
		}
		for i, c := range codes {
			// Reconstruct the expected code: distance below the vector max
			// in probe steps, saturating at the floor.
			steps := math.Round((maxDB - db[i]) / probeStepDB)
			want := int16(ProbeCodeMax) - int16(steps)
			if want < 0 {
				want = 0
			}
			if c != ampCodes[want] {
				t.Fatalf("trial %d comp %d: code %d, want ampCodes[%d]=%d (db=%.2f max=%.2f)",
					trial, i, c, want, ampCodes[want], db[i], maxDB)
			}
		}
	}
}

// TestQuantFastSlowParity pins the fused SWAR sweep (jointQFast) to the
// branchy reference path bit for bit: over a full dictionary both
// accumulate the identical exact integer moments, so every grid point
// must score identically whichever path computes it.
func TestQuantFastSlowParity(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	en := est.en
	if len(en.dictQ) == 0 || !en.fullQ {
		t.Fatal("synthetic dictionary did not build a full quantized kernel")
	}
	rng := stats.NewRNG(73)
	for trial := 0; trial < 10; trial++ {
		az := -60 + 120*rng.Float64()
		probes := observe(t, gain, sector.TalonTX(), az, 20*rng.Float64(), quietModel(), rng)
		g := &gatherScratch{}
		if est.gatherQuantInto(g, probes) < 2 {
			t.Fatal("gather produced too few probes")
		}
		colBuf := en.probeCols(g.ids)
		cols := *colBuf
		quantizeGather(g, cols, true)
		slow := g.qv
		slow.full = false
		for _, snrOnly := range []bool{false, true} {
			for pt := 0; pt < len(en.az)*len(en.el); pt++ {
				base := pt * en.stride
				fast := jointQ(en.dictQ, base, &g.qv, snrOnly)
				ref := jointQ(en.dictQ, base, &slow, snrOnly)
				if fast != ref {
					t.Fatalf("trial %d pt %d snrOnly=%v: fast %v != slow %v", trial, pt, snrOnly, fast, ref)
				}
			}
		}
		en.putCols(colBuf)
	}
}

// TestAmpCachedMatchesAmp pins the lattice cache to the live amp():
// table hits and misses alike must be bit-identical.
func TestAmpCachedMatchesAmp(t *testing.T) {
	rng := stats.NewRNG(79)
	for i := 0; i < 2000; i++ {
		lattice := math.Round(rng.Float64()*800-500) * 0.25 // on-lattice, partly out of table range
		if got, want := ampCached(lattice), amp(lattice); got != want {
			t.Fatalf("lattice %v: cached %v != live %v", lattice, got, want)
		}
		off := -130 + 180*rng.Float64()
		if got, want := ampCached(off), amp(off); got != want {
			t.Fatalf("off-lattice %v: cached %v != live %v", off, got, want)
		}
	}
	for _, db := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e308, -1e308} {
		got, want := ampCached(db), amp(db)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("edge %v: cached %v != live %v", db, got, want)
		}
	}
}

// FuzzQuantizeProbe fuzzes the codec over arbitrary float64 inputs: it
// must never panic, always produce an in-range code, stay monotone
// against a nudged twin, and round-trip in-window values within half a
// code step.
func FuzzQuantizeProbe(f *testing.F) {
	f.Add(0.0)
	f.Add(radio.SNRMinDB)
	f.Add(radio.SNRMaxDB)
	f.Add(radio.SNRMinDB - 0.125)
	f.Add(radio.SNRMaxDB + 0.125)
	f.Add(5.3721)
	f.Add(math.Inf(1))
	f.Add(math.Inf(-1))
	f.Add(math.NaN())
	f.Fuzz(func(t *testing.T, db float64) {
		code := QuantizeProbe(db)
		if code < 0 || code > ProbeCodeMax {
			t.Fatalf("QuantizeProbe(%v) = %d outside [0, %d]", db, code, ProbeCodeMax)
		}
		back := DequantizeProbe(code)
		if back < radio.SNRMinDB || back > radio.SNRMaxDB {
			t.Fatalf("DequantizeProbe(%d) = %v outside the window", code, back)
		}
		if !math.IsNaN(db) {
			if up := QuantizeProbe(db + 1); !math.IsNaN(db+1) && up < code {
				t.Fatalf("monotonicity broken: Q(%v)=%d > Q(%v)=%d", db, code, db+1, up)
			}
			if db >= radio.SNRMinDB && db <= radio.SNRMaxDB {
				if math.Abs(back-db) > probeStepDB/2+1e-12 {
					t.Fatalf("in-window %v round-trips to %v", db, back)
				}
			}
		}
	})
}
