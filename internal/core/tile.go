package core

import (
	"context"
	"fmt"
	"sync"
)

// Batch-major quantized selection.
//
// The per-item batch path walks the whole coarse dictionary once per
// item: with 64 items the dictionary is streamed from memory 64 times.
// The batch-major pass inverts the loops — dictionary tile outer, batch
// item inner — so one L1-resident tile of int16 codes serves every item
// of a worker's chunk before the next tile is touched (the access shape
// of a blocked GEMM, with coarseTopKQ's int32 accumulation as the inner
// product). Tiles are contiguous row-major point ranges and coarseTopKQ
// folds them in ascending order, so each item's top-K is identical to
// the single-item row-major scan: per-item results are bit-identical to
// SelectSector, preserving the batch contract at any worker count.

// tileBytes is the dictionary tile budget: half a typical 32 KiB L1D,
// leaving room for the probe vectors and top-K state of the items
// sharing the tile.
const tileBytes = 16 << 10

// tilePoints returns how many grid points of stride int16 codes fit one
// tile.
func tilePoints(stride int) int {
	pts := tileBytes / (2 * stride)
	if pts < 8 {
		pts = 8
	}
	return pts
}

// quantItem is the per-item state of one batch-major selection.
type quantItem struct {
	g        gatherScratch
	cols     []int16
	sc       *hierScratch
	reported int
	kept     int
	done     bool // result already written in phase 1 (gather error or warm hit)
}

// quantBatchScratch holds one worker chunk's items; pooled on the engine
// so steady-state batches allocate nothing.
type quantBatchScratch struct {
	items []quantItem
}

// grow ensures capacity for n items with topK-sized candidate scratch.
func (bs *quantBatchScratch) grow(n, topK int) {
	for len(bs.items) < n {
		bs.items = append(bs.items, quantItem{sc: newHierScratch(topK)})
	}
}

func (en *engine) getBatchScratch() *quantBatchScratch {
	metScratchGets.Inc()
	return en.batchScratch.Get().(*quantBatchScratch)
}

func (en *engine) putBatchScratch(bs *quantBatchScratch) { en.batchScratch.Put(bs) }

// selectBatchQuant runs the batch through the batch-major quantized
// pipeline, filling out[i] with exactly what SelectSector would produce
// for batch[i]. Items are split into contiguous per-worker chunks; the
// split only affects which items share a dictionary sweep, never any
// item's result. Returns non-nil only on context cancellation, in which
// case out is discarded by the caller.
func (e *Estimator) selectBatchQuant(ctx context.Context, batch []BatchItem, out []BatchResult, workers int) error {
	n := len(batch)
	if workers <= 1 {
		return e.quantChunk(ctx, batch, out)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Cancellation is surfaced via ctx.Err() below.
			_ = e.quantChunk(ctx, batch[lo:hi], out[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// quantChunk runs one contiguous chunk: gather and quantize every item,
// resolve warm-hinted items from their local windows, sweep the coarse
// dictionary tiles once for the remainder of the chunk, then refine and
// finish each remaining item.
//talon:noalloc
func (e *Estimator) quantChunk(ctx context.Context, batch []BatchItem, out []BatchResult) error {
	en := e.en
	n := len(batch)
	snrOnly := e.opts.SNROnly
	warmRadius, warmThresh := e.opts.warmRadius(), e.warmThreshold()
	bs := en.getBatchScratch()
	defer en.putBatchScratch(bs)
	bs.grow(n, en.topK)
	items := bs.items[:n]

	// Phase 1: gather + quantize each item's probe vector. Items that
	// fail the gather — and hinted items whose local window passes the
	// warm guards (see warm.go) — are finished here and skip the shared
	// sweep entirely.
	live := 0
	for i := range items {
		it := &items[i]
		metSelectEngine.Inc()
		metEstimates.Inc()
		metQuantEstimates.Inc()
		it.kept, it.done = 0, false
		it.reported = e.gatherQuantInto(&it.g, batch[i].Probes)
		if it.reported < 2 {
			//lint:allow noalloc -- cold error path; the steady state skips the formatting branch
			gatherErr := fmt.Errorf("core: %w: need at least 2 reported probes, have %d", ErrTooFewProbes, it.reported)
			sel, serr := e.finishSelection(batch[i].Probes, AoAEstimate{}, gatherErr)
			out[i] = BatchResult{Selection: sel, Err: serr}
			it.done = true
			continue
		}
		it.cols = it.cols[:0]
		for _, id := range it.g.ids {
			it.cols = append(it.cols, en.cols[id])
		}
		quantizeGather(&it.g, it.cols, en.fullQ)
		if hint := batch[i].Hint; hint != NoCell {
			metWarmHints.Inc()
			if bestA, bestE, _, ok := en.warmArgmaxQ(&it.g.qv, hint, snrOnly, warmRadius, warmThresh); ok {
				metWarmHits.Inc()
				aoa := e.quantEpilogue(&it.g, it.cols, bestA, bestE, it.reported)
				sel, serr := e.finishSelection(batch[i].Probes, aoa, nil)
				out[i] = BatchResult{Selection: sel, Err: serr}
				it.done = true
				continue
			}
			metWarmFallbacks.Inc()
		}
		live++
	}

	// Phase 2: shared tiled coarse sweep — every live item folds the
	// current tile into its top-K while the tile is cache-hot.
	if live > 0 {
		nPts := len(en.cAzIdx) * len(en.cElIdx)
		for lo := 0; lo < nPts; lo += en.tilePts {
			if err := ctx.Err(); err != nil {
				return err
			}
			metQuantBatchTiles.Inc()
			hi := min(lo+en.tilePts, nPts)
			for i := range items {
				it := &items[i]
				if it.done {
					continue
				}
				it.kept = en.coarseTopKQ(lo, hi, &it.g.qv, snrOnly, it.sc.cells, it.sc.scores, it.kept)
			}
		}
	}

	// Phase 3: per-item dense refinement (or exhaustive fallback) and
	// sector selection. Items finished in phase 1 already wrote out[i].
	for i := range items {
		it := &items[i]
		if it.done {
			continue
		}
		var bestA, bestE int
		var bestW float64
		var err error
		if it.kept == 0 {
			if len(en.coarseQ) > 0 {
				metQuantFallbacks.Inc()
			}
			bestA, bestE, bestW, err = en.denseArgmaxQ(ctx, &it.g.qv, snrOnly)
		} else {
			bestA, bestE, bestW, err = en.refineQ(ctx, it.sc, it.kept, &it.g.qv, snrOnly)
		}
		if err != nil {
			return err
		}
		if bestW <= 0 {
			metDegenerate.Inc()
			//lint:allow noalloc -- cold error path; the steady state skips the formatting branch
			degErr := fmt.Errorf("core: %w", ErrDegenerateSurface)
			sel, serr := e.finishSelection(batch[i].Probes, AoAEstimate{}, degErr)
			out[i] = BatchResult{Selection: sel, Err: serr}
			continue
		}
		aoa := e.quantEpilogue(&it.g, it.cols, bestA, bestE, it.reported)
		sel, serr := e.finishSelection(batch[i].Probes, aoa, nil)
		out[i] = BatchResult{Selection: sel, Err: serr}
	}
	return nil
}
