// Package core implements the paper's contribution: compressive sector
// selection (CSS) for off-the-shelf IEEE 802.11ad devices.
//
// Instead of sweeping all N sectors, CSS probes a subset of M sectors,
// correlates the vector of received signal strengths against the measured
// 3D sector patterns to estimate the angle of arrival (Eq. 2–3),
// multiplies the SNR and RSSI correlations for robustness against the
// firmware's decorrelated measurement outliers (Eq. 5), and finally picks
// the sector with the strongest measured gain toward the estimated angle
// out of all N sectors (Eq. 4).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"talon/internal/pattern"
	"talon/internal/radio"
	"talon/internal/sector"
)

// Sentinel errors of the estimation pipeline. Callers match them with
// errors.Is; the root talon package re-exports them.
var (
	// ErrTooFewProbes reports a probe vector with fewer than two usable
	// measurements — below that no correlation is defined.
	ErrTooFewProbes = errors.New("too few probes")
	// ErrDegenerateSurface reports a correlation surface with no positive
	// maximum: the measurements carry no directional information.
	ErrDegenerateSurface = errors.New("correlation surface is degenerate")
)

// Probe is the outcome of probing one sector: the firmware's measurement,
// or a miss (OK == false) when no report was produced.
type Probe struct {
	Sector sector.ID
	Meas   radio.Measurement
	OK     bool
}

// ProbesFromMeasurements assembles the probe vector for the sectors in
// probed, marking sectors absent from meas as missing.
func ProbesFromMeasurements(probed []sector.ID, meas map[sector.ID]radio.Measurement) []Probe {
	out := make([]Probe, len(probed))
	for i, id := range probed {
		m, ok := meas[id]
		out[i] = Probe{Sector: id, Meas: m, OK: ok}
	}
	return out
}

// Options tunes the estimator.
type Options struct {
	// SNROnly disables the Eq. 5 joint SNR·RSSI correlation and falls
	// back to the plain Eq. 2/3 correlation on SNR alone (the ablation
	// of Section 5).
	SNROnly bool
	// NoRefine disables the parabolic sub-grid refinement of the argmax,
	// pinning estimates to grid resolution.
	NoRefine bool
	// FallbackCorr is the reliability threshold on the correlation
	// maximum: when the best correlation falls below it, the angle
	// estimate is considered unreliable and SelectSector falls back to
	// the classic argmax over the probed sectors (a sub-sweep
	// selection). Zero picks the default; negative disables fallback.
	FallbackCorr float64
	// NoImputeMissing excludes probed-but-unreported sectors from the
	// correlation instead of imputing them at the sensitivity floor.
	// A probe the firmware produced no report for almost always means
	// the sector was too weak to decode — keeping it in the vector at
	// floor level anti-correlates directions where that sector should
	// have been strong, suppressing aliased estimates.
	NoImputeMissing bool
	// ExactSearch disables the hierarchical coarse-to-fine search and
	// forces the exhaustive dense grid scan, preserving bit-for-bit the
	// paper-faithful behaviour of the original engine (and of the serial
	// reference path) on every input. The default hierarchical search
	// matches it on all but adversarial surfaces at a fraction of the
	// cost; see hier.go and DESIGN.md §12 for the trade-off.
	ExactSearch bool
	// CoarseDecim is the per-axis decimation factor of the hierarchical
	// coarse grid. 0 picks DefaultCoarseDecim; values below 2 disable
	// the hierarchy (equivalent to ExactSearch).
	CoarseDecim int
	// TopK is the number of coarse candidate cells the hierarchical
	// search refines on the dense grid. 0 picks DefaultTopK.
	TopK int
	// Kernel pins the correlation-kernel implementation (see quant.go).
	// KernelAuto (the zero value) picks the default — currently the
	// quantized int16 kernel; KernelFloat64 pins the exact float64
	// reference. ExactSearch implies KernelFloat64. Golden artifacts
	// should pin the kernel they were recorded with so kernel-default
	// changes cannot drift them.
	Kernel Kernel
	// WarmRadius is the per-axis half-width, in dense grid cells, of the
	// warm-start scan window (see warm.go). 0 picks DefaultWarmRadius.
	WarmRadius int
	// WarmMargin scales the FallbackCorr threshold into the warm-start
	// acceptance margin: a warm local winner below
	// WarmMargin × FallbackCorr falls back to the full search. 0 picks
	// DefaultWarmMargin; negative relaxes the margin to bare positivity.
	WarmMargin float64
}

// DefaultFallbackCorr is the default reliability threshold. Joint Eq. 5
// correlations of consistent sweeps sit well above it; only degenerate
// maxima (very few informative probes, heavy outliers) fall below, so
// the fallback acts as a disaster guard rather than a second selector.
const DefaultFallbackCorr = 0.25

func (o Options) fallbackCorr() float64 {
	switch {
	case o.FallbackCorr < 0:
		return 0
	case o.FallbackCorr == 0:
		return DefaultFallbackCorr
	}
	return o.FallbackCorr
}

// Estimator runs compressive angle-of-arrival estimation against a set of
// measured sector patterns. It is safe for concurrent use.
type Estimator struct {
	patterns *pattern.Set
	opts     Options
	// en is the precomputed correlation engine (see engine.go), built
	// once at construction from a snapshot of the pattern set.
	en *engine
	// txIDs caches patterns.TXIDs() (the set is immutable after
	// construction) so per-selection Eq. 4 scans allocate nothing.
	txIDs []sector.ID
	// gathers pools gather scratch so the steady-state estimate path
	// allocates nothing per call.
	gathers sync.Pool
}

// gatherScratch holds the pooled measurement-vector buffers of one
// estimate. The float kernel fills ids/snr/rssi (linear amplitudes);
// the quantized kernel fills ids/snrDB/rssiDB (raw dB) and then the
// code vectors and hoisted moments of qv (see quant.go).
type gatherScratch struct {
	ids           []sector.ID
	snr, rssi     []float64
	snrDB, rssiDB []float64
	qv            quantVec
}

// NewEstimator builds an estimator over the measured patterns and
// precomputes its correlation dictionary. The set must contain at least
// two transmit sectors and must not be mutated afterwards.
func NewEstimator(patterns *pattern.Set, opts Options) (*Estimator, error) {
	if patterns == nil || len(patterns.TXIDs()) < 2 {
		return nil, errors.New("core: estimator needs a pattern set with at least 2 TX sectors")
	}
	switch opts.Kernel {
	case KernelAuto, KernelQuantInt16, KernelFloat64:
	default:
		return nil, fmt.Errorf("core: unknown correlation kernel %q", opts.Kernel)
	}
	e := &Estimator{patterns: patterns, opts: opts, en: newEngine(patterns, opts), txIDs: patterns.TXIDs()}
	e.gathers.New = func() any {
		metScratchMisses.Inc()
		return &gatherScratch{}
	}
	return e, nil
}

// Patterns returns the pattern set the estimator searches.
func (e *Estimator) Patterns() *pattern.Set { return e.patterns }

// Kernel reports the correlation kernel actually serving estimates —
// which can differ from Options.Kernel when the quantized build was
// skipped (ExactSearch, or a dictionary with no finite entry).
func (e *Estimator) Kernel() Kernel {
	if e.en != nil && e.en.quant() {
		return KernelQuantInt16
	}
	return KernelFloat64
}

// AoAEstimate is the result of the angle-of-arrival search.
type AoAEstimate struct {
	// Az and El are the estimated arrival angles in degrees.
	Az, El float64
	// Corr is the correlation value at the maximum (product of the SNR
	// and RSSI correlations unless SNROnly).
	Corr float64
	// Used is the number of probes that carried a measurement.
	Used int
	// Cell is the dense grid cell of the argmax, usable as the
	// warm-start hint of a later estimate (see SelectSectorWarm).
	// NoCell when the serving kernel does not produce hints (the float64
	// reference path). Cell is diagnostic state, not part of the wire
	// format: it is excluded from JSON serialization.
	Cell Cell
}

// amp converts a dB reading to linear amplitude (10^(dB/20)). The
// correlation works on amplitudes rather than powers: a reading that is
// off by k dB then perturbs its vector component by 10^(k/20) instead of
// 10^(k/10), which keeps the occasional severe firmware outlier from
// dominating the normalized inner product.
func amp(db float64) float64 { return math.Pow(10, db/20) }

// gatherVectors converts probes into linear-amplitude measurement
// vectors. Unless disabled, probed-but-unreported sectors are imputed
// slightly below the faintest reported reading: no report means the
// sector was (almost always) below decode sensitivity, which is
// information the correlation should use.
func (e *Estimator) gatherVectors(probes []Probe) (ids []sector.ID, snrLin, rssiLin []float64, reported int) {
	minSNR, minRSSI := math.Inf(1), math.Inf(1)
	for _, p := range probes {
		if !p.OK {
			continue
		}
		reported++
		if p.Meas.SNR < minSNR {
			minSNR = p.Meas.SNR
		}
		if p.Meas.RSSI < minRSSI {
			minRSSI = p.Meas.RSSI
		}
	}
	impute := !e.opts.NoImputeMissing && reported > 0
	for _, p := range probes {
		switch {
		case p.OK:
			ids = append(ids, p.Sector)
			snrLin = append(snrLin, amp(p.Meas.SNR))
			rssiLin = append(rssiLin, amp(p.Meas.RSSI))
		case impute:
			ids = append(ids, p.Sector)
			snrLin = append(snrLin, amp(minSNR-1))
			rssiLin = append(rssiLin, amp(minRSSI-1))
		}
	}
	return ids, snrLin, rssiLin, reported
}

// gatherInto is gatherVectors into pooled scratch: identical selection,
// imputation and ordering, but appending into g's recycled buffers so
// the steady-state estimate path allocates nothing.
func (e *Estimator) gatherInto(g *gatherScratch, probes []Probe) (reported int) {
	minSNR, minRSSI := math.Inf(1), math.Inf(1)
	for _, p := range probes {
		if !p.OK {
			continue
		}
		reported++
		if p.Meas.SNR < minSNR {
			minSNR = p.Meas.SNR
		}
		if p.Meas.RSSI < minRSSI {
			minRSSI = p.Meas.RSSI
		}
	}
	g.ids, g.snr, g.rssi = g.ids[:0], g.snr[:0], g.rssi[:0]
	impute := !e.opts.NoImputeMissing && reported > 0
	for _, p := range probes {
		switch {
		case p.OK:
			g.ids = append(g.ids, p.Sector)
			g.snr = append(g.snr, amp(p.Meas.SNR))
			g.rssi = append(g.rssi, amp(p.Meas.RSSI))
		case impute:
			g.ids = append(g.ids, p.Sector)
			g.snr = append(g.snr, amp(minSNR-1))
			g.rssi = append(g.rssi, amp(minRSSI-1))
		}
	}
	return reported
}

// correlate implements Eq. 2: the squared normalized correlation of the
// measurement vector with the expected pattern gains at (az, el),
// computed in its centered (Pearson) form. Centering matters on real
// hardware: directions where every probed sector has a similar expected
// gain ("flat" pattern regions behind lobes or at high elevation) would
// otherwise correlate spuriously well with any near-uniform measurement
// vector and attract the argmax. Sectors whose pattern value is missing
// at the point are skipped; fewer than three usable components yield 0.
func (e *Estimator) correlate(ids []sector.ID, lin []float64, az, el float64) float64 {
	var xs, ps [64]float64
	used := 0
	var sumP, sumX float64
	for i, id := range ids {
		p := e.patterns.Get(id)
		if p == nil {
			continue
		}
		g := p.At(az, el)
		if math.IsNaN(g) {
			continue
		}
		x := amp(g)
		if used >= len(xs) {
			break
		}
		ps[used], xs[used] = lin[i], x
		sumP += lin[i]
		sumX += x
		used++
	}
	if used < 3 {
		return 0
	}
	meanP, meanX := sumP/float64(used), sumX/float64(used)
	var dot, nm, nx float64
	for i := 0; i < used; i++ {
		dp, dx := ps[i]-meanP, xs[i]-meanX
		dot += dp * dx
		nm += dp * dp
		nx += dx * dx
	}
	if nm == 0 || nx == 0 {
		return 0
	}
	w := dot * dot / (nm * nx)
	if dot < 0 {
		// Anti-correlated shapes are no evidence for this direction.
		return 0
	}
	return w
}

// Correlation evaluates the (joint) correlation of probes at one
// direction: Eq. 2 on SNR, multiplied by the RSSI correlation per Eq. 5
// unless SNROnly is set.
func (e *Estimator) Correlation(probes []Probe, az, el float64) float64 {
	ids, snrLin, rssiLin, _ := e.gatherVectors(probes)
	w := e.correlate(ids, snrLin, az, el)
	if e.opts.SNROnly {
		return w
	}
	return w * e.correlate(ids, rssiLin, az, el)
}

// EstimateAoA maximizes the correlation over the pattern grid (Eq. 3),
// optionally refining the maximum between grid points. The search runs
// on the precomputed correlation engine: hierarchically (coarse pass,
// top-K dense refinement, exhaustive fallback — see hier.go) unless
// Options.ExactSearch pins it to the exhaustive dense scan, which agrees
// bit for bit with the retained EstimateAoASerial reference. ctx is
// observed between grid rows, and a cancelled search returns ctx.Err().
func (e *Estimator) EstimateAoA(ctx context.Context, probes []Probe) (AoAEstimate, error) {
	return e.estimate(ctx, probes, 0)
}

// estimate is the engine-backed estimate shared by EstimateAoA and the
// batch path; maxShards > 0 additionally caps the dense fill's worker
// count (the batch path passes 1 so its own workers are the only
// parallelism).
func (e *Estimator) estimate(ctx context.Context, probes []Probe, maxShards int) (AoAEstimate, error) {
	metEstimates.Inc()
	start := time.Now() //lint:allow determinism -- estimate-latency histogram reads the wall clock by design
	defer metEstimateSeconds.ObserveSince(start)
	metScratchGets.Inc()
	g := e.gathers.Get().(*gatherScratch)
	defer e.gathers.Put(g)
	if e.en != nil && e.en.quant() {
		return e.estimateQuantHint(ctx, g, probes, NoCell)
	}
	reported := e.gatherInto(g, probes)
	if reported < 2 {
		return AoAEstimate{}, fmt.Errorf("core: %w: need at least 2 reported probes, have %d", ErrTooFewProbes, reported)
	}
	en := e.en
	if en == nil {
		return AoAEstimate{}, errors.New("core: empty pattern set")
	}
	colBuf := en.probeCols(g.ids)
	defer en.putCols(colBuf)
	cols := *colBuf
	snrOnly := e.opts.SNROnly
	if en.hier() {
		metHierEstimates.Inc()
		bestA, bestE, bestW, ok, err := en.searchHier(ctx, cols, g.snr, g.rssi, snrOnly)
		if err != nil {
			return AoAEstimate{}, err
		}
		if ok {
			az, el := en.az[bestA], en.el[bestE]
			if !e.opts.NoRefine {
				numAz := len(en.az)
				az = refineAxis(en.az, bestA, func(i int) float64 {
					return en.jointAt((bestE*numAz+i)*en.stride, cols, g.snr, g.rssi, snrOnly)
				})
				el = refineAxis(en.el, bestE, func(i int) float64 {
					return en.jointAt((i*numAz+bestA)*en.stride, cols, g.snr, g.rssi, snrOnly)
				})
			}
			return AoAEstimate{Az: az, El: el, Corr: bestW, Used: reported}, nil
		}
		// No positive coarse cell: fall back to the exhaustive scan so
		// hierarchical mode keeps the exact path's disaster-guard
		// semantics on degenerate surfaces.
		metHierFallbacks.Inc()
	}
	surf := en.getSurface()
	defer en.putSurface(surf)
	w := *surf
	if err := en.fill(ctx, w, cols, g.snr, g.rssi, snrOnly, maxShards); err != nil {
		return AoAEstimate{}, err
	}
	bestA, bestE, bestW := en.argmax(w)
	if bestW <= 0 {
		metDegenerate.Inc()
		return AoAEstimate{}, fmt.Errorf("core: %w", ErrDegenerateSurface)
	}
	numAz := len(en.az)
	az, el := en.az[bestA], en.el[bestE]
	if !e.opts.NoRefine {
		az = refineAxis(en.az, bestA, func(i int) float64 { return w[bestE*numAz+i] })
		el = refineAxis(en.el, bestE, func(i int) float64 { return w[i*numAz+bestA] })
	}
	return AoAEstimate{Az: az, El: el, Corr: bestW, Used: reported}, nil
}

// EstimateAoASerial is the straight-line reference implementation of the
// grid search: per-point Pattern.At interpolation and amplitude
// conversion, no precomputation, no concurrency. It is kept so the
// equivalence test (and anyone auditing the engine) can check the
// optimized path against first principles.
func (e *Estimator) EstimateAoASerial(probes []Probe) (AoAEstimate, error) {
	metEstimatesSerial.Inc()
	ids, snrLin, rssiLin, reported := e.gatherVectors(probes)
	if reported < 2 {
		return AoAEstimate{}, fmt.Errorf("core: %w: need at least 2 reported probes, have %d", ErrTooFewProbes, reported)
	}
	anyPattern := e.patterns.Get(ids[0])
	if anyPattern == nil {
		for _, id := range e.patterns.IDs() {
			if p := e.patterns.Get(id); p != nil {
				anyPattern = p
				break
			}
		}
	}
	if anyPattern == nil {
		return AoAEstimate{}, errors.New("core: empty pattern set")
	}
	grid := anyPattern.Grid()
	azAxis, elAxis := grid.Az(), grid.El()

	// Correlation surface over the grid.
	w := make([][]float64, len(elAxis))
	bestA, bestE, bestW := 0, 0, -1.0
	for ei, el := range elAxis {
		row := make([]float64, len(azAxis))
		for ai, az := range azAxis {
			v := e.correlate(ids, snrLin, az, el)
			if !e.opts.SNROnly {
				v *= e.correlate(ids, rssiLin, az, el)
			}
			row[ai] = v
			if v > bestW {
				bestA, bestE, bestW = ai, ei, v
			}
		}
		w[ei] = row
	}
	if bestW <= 0 {
		return AoAEstimate{}, fmt.Errorf("core: %w", ErrDegenerateSurface)
	}

	az, el := azAxis[bestA], elAxis[bestE]
	if !e.opts.NoRefine {
		az = refineAxis(azAxis, bestA, func(i int) float64 { return w[bestE][i] })
		el = refineAxis(elAxis, bestE, func(i int) float64 { return w[i][bestA] })
	}
	return AoAEstimate{Az: az, El: el, Corr: bestW, Used: reported}, nil
}

// refineAxis sharpens the argmax along one axis with a parabolic fit
// through the peak sample and its neighbours.
func refineAxis(axis []float64, i int, at func(int) float64) float64 {
	if i <= 0 || i >= len(axis)-1 {
		return axis[i]
	}
	y0, y1, y2 := at(i-1), at(i), at(i+1)
	den := y0 - 2*y1 + y2
	if den >= 0 { // not a local maximum shape
		return axis[i]
	}
	d := 0.5 * (y0 - y2) / den
	if d < -0.5 {
		d = -0.5
	}
	if d > 0.5 {
		d = 0.5
	}
	// Assume locally uniform spacing.
	step := (axis[i+1] - axis[i-1]) / 2
	return axis[i] + d*step
}

// Selection is the outcome of compressive sector selection.
type Selection struct {
	// Sector is the chosen transmit sector (Eq. 4).
	Sector sector.ID
	// Gain is the chosen sector's measured-pattern gain toward the
	// estimated angle, in dB (NaN for fallback selections).
	Gain float64
	// AoA is the underlying angle estimate (zero for fallback
	// selections made without a usable estimate).
	AoA AoAEstimate
	// Fallback marks selections that did not trust the angle estimate
	// and used the probed-sector argmax instead.
	Fallback bool
	// Degraded marks selections produced by the resilient training path
	// after the compressive rounds were exhausted: the trainer gave up
	// on CSS and ran the standard full sector sweep (the paper's
	// baseline) instead.
	Degraded bool
	// FallbackReason classifies why a degraded selection abandoned CSS;
	// FallbackNone for selections that did not degrade.
	FallbackReason FallbackReason
}

// FallbackReason classifies why a resilient training run degraded to the
// full-sweep baseline.
type FallbackReason string

// The failure classes the resilient trainer distinguishes.
const (
	// FallbackNone marks a selection that did not degrade.
	FallbackNone FallbackReason = ""
	// FallbackTooFewProbes: every retry lost too many probes to the
	// channel for a usable measurement vector.
	FallbackTooFewProbes FallbackReason = "too-few-probes"
	// FallbackDegenerateSurface: the correlation surface carried no
	// directional information on every retry.
	FallbackDegenerateSurface FallbackReason = "degenerate-surface"
	// FallbackSNRCheck: the post-selection verification probe stayed
	// below the required SNR on every retry.
	FallbackSNRCheck FallbackReason = "snr-check"
	// FallbackTransientFault: an injected transient fault (e.g. a WMI
	// mailbox timeout) persisted across every retry.
	FallbackTransientFault FallbackReason = "transient-fault"
)

// SelectSector runs the full CSS pipeline: estimate the angle of arrival
// from the probes and choose the best of all N sectors toward it (Eq. 4).
// When the correlation maximum is too weak to be trusted — or no estimate
// is possible at all — the selection falls back to the classic argmax
// over the probed sectors. A cancelled context propagates ctx.Err()
// instead of degrading to the sweep fallback.
func (e *Estimator) SelectSector(ctx context.Context, probes []Probe) (Selection, error) {
	return e.selectShards(ctx, probes, 0)
}

// selectShards is SelectSector with the batch path's engine-shard cap.
func (e *Estimator) selectShards(ctx context.Context, probes []Probe, maxShards int) (Selection, error) {
	metSelectEngine.Inc()
	aoa, err := e.estimate(ctx, probes, maxShards)
	if err != nil && isCtxErr(err) {
		return Selection{}, err
	}
	return e.finishSelection(probes, aoa, err)
}

// SelectSectorSerial runs the pipeline on the serial reference estimator;
// the equivalence test checks it against SelectSector.
func (e *Estimator) SelectSectorSerial(probes []Probe) (Selection, error) {
	metSelectSerial.Inc()
	aoa, err := e.EstimateAoASerial(probes)
	return e.finishSelection(probes, aoa, err)
}

func (e *Estimator) finishSelection(probes []Probe, aoa AoAEstimate, err error) (Selection, error) {
	if err != nil || aoa.Corr < e.opts.fallbackCorr() {
		id, ok := SweepSelect(probes)
		if !ok {
			if err != nil {
				return Selection{}, err
			}
			return Selection{}, fmt.Errorf("core: %w: no probe reported a measurement", ErrTooFewProbes)
		}
		metSelectFallback.Inc()
		return Selection{Sector: id, Gain: math.NaN(), AoA: aoa, Fallback: true}, nil
	}
	id, gain := e.bestSector(aoa.Az, aoa.El)
	if math.IsNaN(gain) {
		return Selection{}, errors.New("core: pattern set has no usable TX sector")
	}
	return Selection{Sector: id, Gain: gain, AoA: aoa}, nil
}

// bestSector is pattern.Set.BestSector over the cached TX ID order —
// the same ascending scan and strictly-greater update, minus the
// per-call ID sort and its allocation.
func (e *Estimator) bestSector(az, el float64) (sector.ID, float64) {
	best, bestGain := sector.RX, math.Inf(-1)
	found := false
	for _, id := range e.txIDs {
		g := e.patterns.Get(id).At(az, el)
		if math.IsNaN(g) {
			continue
		}
		if g > bestGain {
			best, bestGain = id, g
			found = true
		}
	}
	if !found {
		return sector.RX, math.NaN()
	}
	return best, bestGain
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
