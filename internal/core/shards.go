package core

import "sync/atomic"

// maxShardsKnob caps the worker goroutines one correlation-surface fill
// may spawn; 0 means uncapped (GOMAXPROCS). See SetMaxShards.
var maxShardsKnob atomic.Int32

// SetMaxShards bounds the per-estimate row sharding of the correlation
// engine and returns the previous bound. 0 (the default) leaves the
// engine free to use GOMAXPROCS workers; 1 forces serial fills.
//
// The cap exists so outer trial-level parallelism (eval campaigns, the
// batch estimation path) can reserve the machine for itself: an outer
// pool of W workers each spawning GOMAXPROCS engine shards would run
// W×GOMAXPROCS goroutines of pure CPU work, oversubscribing the
// scheduler for no throughput gain. Outer loops set the cap to
// GOMAXPROCS/W around their fan-out and restore the previous value
// afterwards. Results are unaffected at any setting — sharding never
// changes the surface contents, only how rows are distributed.
func SetMaxShards(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxShardsKnob.Swap(int32(n)))
}

// MaxShards returns the current engine shard cap; 0 means uncapped.
func MaxShards() int { return int(maxShardsKnob.Load()) }
