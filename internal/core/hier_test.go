package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/geom"
	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// coarseDiag is the diagonal of one coarse cell of est's hierarchical
// search, in degrees — the equivalence bound of the ISSUE's acceptance
// criteria.
func coarseDiag(t testing.TB, est *Estimator) float64 {
	t.Helper()
	en := est.en
	if !en.hier() {
		t.Fatal("estimator has no hierarchical search built")
	}
	azStep := en.az[1] - en.az[0]
	elStep := 0.0
	if len(en.el) > 1 {
		elStep = en.el[1] - en.el[0]
	}
	return math.Hypot(float64(DefaultCoarseDecim)*azStep, float64(DefaultCoarseDecim)*elStep)
}

// equivCounter tallies one hierarchical-vs-exhaustive comparison.
type equivCounter struct {
	trials, mismatches int
}

// compare checks one probe vector on both estimators: error classes must
// agree exactly (the hierarchical path falls back to the exhaustive scan
// before it can fail differently); on success the selected sector must
// match and the AoA estimates must stay within diag degrees.
func (c *equivCounter) compare(t *testing.T, label string, hier, exact *Estimator, probes []Probe, diag float64) {
	t.Helper()
	ctx := context.Background()
	hSel, hErr := hier.SelectSector(ctx, probes)
	xSel, xErr := exact.SelectSector(ctx, probes)
	if (hErr == nil) != (xErr == nil) {
		t.Fatalf("%s: error parity broken: hier %v, exact %v", label, hErr, xErr)
	}
	if hErr != nil {
		for _, sentinel := range []error{ErrTooFewProbes, ErrDegenerateSurface} {
			if errors.Is(hErr, sentinel) != errors.Is(xErr, sentinel) {
				t.Fatalf("%s: sentinel parity broken: hier %v, exact %v", label, hErr, xErr)
			}
		}
		return
	}
	c.trials++
	if hSel.Sector != xSel.Sector {
		c.mismatches++
		return
	}
	if !hSel.Fallback && !xSel.Fallback {
		dAz := math.Abs(geom.WrapAz(hSel.AoA.Az - xSel.AoA.Az))
		dEl := math.Abs(hSel.AoA.El - xSel.AoA.El)
		if math.Hypot(dAz, dEl) > diag {
			c.mismatches++
		}
	}
}

// assertRate enforces the acceptance criterion: the hierarchical search
// must agree with the exhaustive one on at least 99% of the trials.
func (c *equivCounter) assertRate(t *testing.T, minTrials int) {
	t.Helper()
	if c.trials < minTrials {
		t.Fatalf("only %d successful equivalence trials, want >= %d", c.trials, minTrials)
	}
	budget := c.trials / 100
	if c.mismatches > budget {
		t.Fatalf("hierarchical search diverged on %d of %d trials (budget %d)",
			c.mismatches, c.trials, budget)
	}
	t.Logf("hier-vs-exact: %d trials, %d divergences", c.trials, c.mismatches)
}

// TestHierMatchesExhaustiveClean runs the seeded clean-channel
// equivalence suite: across probe budgets and noisy observations from
// the default firmware defect model, the hierarchical search must select
// the exhaustive search's sector and land within one coarse-cell
// diagonal of its angle estimate.
func TestHierMatchesExhaustiveClean(t *testing.T) {
	set, gain := synthSetup(t)
	// The whole hier suite pins KernelFloat64: it isolates the
	// hierarchical search against the exhaustive scan on the same
	// (float) arithmetic. The quantized kernel has its own equivalence
	// suite in quant_equiv_test.go.
	hier, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEstimator(set, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hier.en.hier() {
		t.Fatal("default options did not build the hierarchical search")
	}
	if exact.en.hier() {
		t.Fatal("ExactSearch built a coarse dictionary")
	}
	diag := coarseDiag(t, hier)

	hierBefore := metHierEstimates.Value()
	model := radio.DefaultMeasurementModel()
	rng := stats.NewRNG(23)
	available := sector.TalonTX()
	var c equivCounter
	for _, m := range []int{8, 14, 24} {
		for trial := 0; trial < 40; trial++ {
			ps, err := RandomProbes(rng, available, m)
			if err != nil {
				t.Fatal(err)
			}
			az := -78 + 156*rng.Float64()
			el := 28 * rng.Float64()
			probes := observe(t, gain, ps.IDs(), az, el, model, rng)
			c.compare(t, fmt.Sprintf("m=%d trial=%d", m, trial), hier, exact, probes, diag)
		}
	}
	c.assertRate(t, 100)
	if metHierEstimates.Value() == hierBefore {
		t.Fatal("no estimate was routed through the hierarchical search")
	}
}

// TestHierMatchesExhaustiveFaultyChannel repeats the equivalence suite
// on probe vectors produced by a real simulated link — patterns measured
// by the chamber campaign, probing sweeps run over a lab channel with
// the fault.Standard60GHz impairment chain (burst loss, RSSI drift,
// stale feedback, ring drops, transient WMI faults) injected.
func TestHierMatchesExhaustiveFaultyChannel(t *testing.T) {
	dut, err := wil.NewDevice(wil.Config{
		Name: "hier-dut",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x21},
		Seed: 402,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := wil.NewDevice(wil.Config{
		Name: "hier-probe",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x22},
		Seed: 403,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dut.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := probe.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	grid, err := geom.UniformGrid(-70, 70, 5, 0, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	chamber := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(chamber, dut, probe, 404)
	campaign.Repeats = 1
	patterns, err := campaign.MeasureAllPatterns(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewEstimator(patterns, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEstimator(patterns, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	diag := coarseDiag(t, hier)

	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	dut.SetPose(dutPose)
	probe.SetPose(probePose)
	link := wil.NewLink(channel.Lab(), dut, probe)
	link.SetInjector(fault.Standard60GHz(0.15, 4, 405))

	rng := stats.NewRNG(29)
	available := sector.TalonTX()
	var c equivCounter
	for trial := 0; trial < 140; trial++ {
		// Swing the probe device on an arc so trials cover directions.
		az := -60 + 120*rng.Float64()
		rad := az * math.Pi / 180
		pose := probePose
		pose.Pos.X = dutPose.Pos.X + 3*math.Cos(rad)
		pose.Pos.Y = dutPose.Pos.Y + 3*math.Sin(rad)
		pose.Yaw = 180 + az
		probe.SetPose(pose)

		ps, err := RandomProbes(rng, available, 14)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := link.RunTXSS(dut, probe, dot11ad.SubSweepSchedule(ps))
		if err != nil {
			// An injected transient fault killed the whole sweep before
			// estimation; nothing to compare on this trial.
			continue
		}
		probes := ProbesFromMeasurements(ps.IDs(), meas)
		c.compare(t, fmt.Sprintf("trial=%d", trial), hier, exact, probes, diag)
	}
	c.assertRate(t, 100)
}

// TestHierDegenerateSurface checks the exhaustive fallback: with only
// two reported probes the Pearson correlation is zero at every grid
// point, the coarse pass keeps no candidate, and the hierarchical path
// must degrade to the exhaustive scan and fail with the same
// ErrDegenerateSurface sentinel as exact mode.
func TestHierDegenerateSurface(t *testing.T) {
	set, _ := synthSetup(t)
	hier, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEstimator(set, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := sector.TalonTX()
	probes := []Probe{
		{Sector: ids[0], Meas: radio.Measurement{SNR: 7, RSSI: -55}, OK: true},
		{Sector: ids[5], Meas: radio.Measurement{SNR: 9, RSSI: -52}, OK: true},
	}
	fallbacksBefore := metHierFallbacks.Value()
	_, hErr := hier.EstimateAoA(context.Background(), probes)
	_, xErr := exact.EstimateAoA(context.Background(), probes)
	if !errors.Is(hErr, ErrDegenerateSurface) {
		t.Fatalf("hier: want ErrDegenerateSurface, got %v", hErr)
	}
	if !errors.Is(xErr, ErrDegenerateSurface) {
		t.Fatalf("exact: want ErrDegenerateSurface, got %v", xErr)
	}
	if metHierFallbacks.Value() == fallbacksBefore {
		t.Fatal("degenerate surface did not route through the exhaustive fallback")
	}
}

// TestHierMinimumProbes pins the minimum-probes edge cases: one reported
// probe is rejected by both paths with ErrTooFewProbes, two reported
// probes pass the gate but yield a degenerate surface on both paths
// (Pearson correlation needs three components), and three probes — the
// smallest estimable vector — must produce the same selection.
func TestHierMinimumProbes(t *testing.T) {
	set, gain := synthSetup(t)
	hier, err := NewEstimator(set, Options{Kernel: KernelFloat64})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEstimator(set, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	diag := coarseDiag(t, hier)
	rng := stats.NewRNG(31)
	model := quietModel()
	ids := sector.TalonTX()

	for n := 1; n <= 2; n++ {
		probes := observe(t, gain, ids[:n], 10, 6, model, rng)
		_, hErr := hier.EstimateAoA(context.Background(), probes)
		_, xErr := exact.EstimateAoA(context.Background(), probes)
		want := ErrTooFewProbes
		if n == 2 {
			want = ErrDegenerateSurface
		}
		if !errors.Is(hErr, want) {
			t.Fatalf("n=%d hier: want %v, got %v", n, want, hErr)
		}
		if !errors.Is(xErr, want) {
			t.Fatalf("n=%d exact: want %v, got %v", n, want, xErr)
		}
	}

	var c equivCounter
	for trial := 0; trial < 20; trial++ {
		ps, err := RandomProbes(rng, ids, 3)
		if err != nil {
			t.Fatal(err)
		}
		az := -70 + 140*rng.Float64()
		probes := observe(t, gain, ps.IDs(), az, 8, model, rng)
		c.compare(t, fmt.Sprintf("min-probes trial=%d", trial), hier, exact, probes, diag)
	}
	if c.trials == 0 {
		t.Fatal("no three-probe trial produced an estimate on either path")
	}
	if c.mismatches > 0 {
		t.Fatalf("three-probe selections diverged on %d of %d trials", c.mismatches, c.trials)
	}
}

// TestCoarseDecimOptions pins the option plumbing: decimation below two
// disables the hierarchy, and a custom decimation/top-K pair builds a
// correspondingly sized coarse grid.
func TestCoarseDecimOptions(t *testing.T) {
	set, _ := synthSetup(t)
	off, err := NewEstimator(set, Options{CoarseDecim: 1})
	if err != nil {
		t.Fatal(err)
	}
	if off.en.hier() {
		t.Fatal("CoarseDecim=1 still built the hierarchy")
	}
	custom, err := NewEstimator(set, Options{CoarseDecim: 8, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !custom.en.hier() {
		t.Fatal("CoarseDecim=8 did not build the hierarchy")
	}
	if custom.en.topK != 2 {
		t.Fatalf("topK = %d, want 2", custom.en.topK)
	}
	numAz := len(custom.en.az)
	wantCAz := (numAz-1)/8 + 1
	if last := custom.en.cAzIdx[len(custom.en.cAzIdx)-1]; int(last) != numAz-1 {
		t.Fatalf("coarse az grid does not include the last dense index: %d != %d", last, numAz-1)
	}
	if got := len(custom.en.cAzIdx); got < wantCAz {
		t.Fatalf("coarse az samples = %d, want >= %d", got, wantCAz)
	}
}
