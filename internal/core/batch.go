package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchResult pairs one batch item's selection with its error. Errors
// are per item (a degenerate vector fails its item, not the batch) and
// match what SelectSector would return for the same probes.
type BatchResult struct {
	Selection Selection
	Err       error
}

// BatchItem is one independent selection of a batch: a probe vector plus
// an optional warm-start hint (the Cell of the item's previous
// selection; NoCell runs the full search). Hints follow the same
// contract as SelectSectorWarm — they can only change cost, never the
// selection beyond the equivalence budget — and are ignored entirely by
// the float64 kernel.
type BatchItem struct {
	Probes []Probe
	Hint   Cell
}

// BatchOf wraps plain probe vectors as hintless batch items, for callers
// without warm-start state.
func BatchOf(batch [][]Probe) []BatchItem {
	items := make([]BatchItem, len(batch))
	for i, probes := range batch {
		items[i].Probes = probes
	}
	return items
}

// SelectSectorBatch runs the full CSS pipeline over a batch of
// independent probe vectors on one persistent worker pool, amortizing
// the per-call goroutine spawn and scratch churn of calling SelectSector
// in a loop. Each item's estimate runs with engine sharding disabled
// (the batch workers are the only parallelism), so the combined
// goroutine count is exactly the worker count and nested fan-out cannot
// oversubscribe GOMAXPROCS. workers <= 0 picks GOMAXPROCS; any value is
// capped at GOMAXPROCS and at the batch size. Per-item results are
// deterministic and identical to SelectSector (or, for hinted items,
// SelectSectorWarm) at any worker count.
//
// ctx is observed between items and inside each item's grid search; on
// cancellation the batch returns ctx.Err() and the results are
// discarded.
func (e *Estimator) SelectSectorBatch(ctx context.Context, batch []BatchItem, workers int) ([]BatchResult, error) {
	n := len(batch)
	if n == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	metBatches.Inc()
	metBatchEstimates.Add(int64(n))
	metBatchSize.Set(int64(n))
	start := time.Now() //lint:allow determinism -- batch-latency histogram reads the wall clock by design
	defer metBatchSeconds.ObserveSince(start)
	if procs := runtime.GOMAXPROCS(0); workers <= 0 || workers > procs {
		workers = procs
	}
	if workers > n {
		workers = n
	}
	rounds := math.Ceil(float64(n) / float64(workers))
	metBatchOccupancy.Set(float64(n) / (float64(workers) * rounds))

	out := make([]BatchResult, n)
	if e.en != nil && e.en.quant() {
		// Batch-major quantized pipeline: the coarse dictionary is swept
		// tile by tile for a whole worker chunk at once (see tile.go).
		// Per-item results are identical to the per-item loop below.
		if err := e.selectBatchQuant(ctx, batch, out, workers); err != nil {
			return nil, err
		}
		return out, nil
	}
	if workers == 1 {
		for i := range batch {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sel, err := e.selectShards(ctx, batch[i].Probes, 1)
			out[i] = BatchResult{Selection: sel, Err: err}
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				sel, err := e.selectShards(ctx, batch[i].Probes, 1)
				out[i] = BatchResult{Selection: sel, Err: err}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
