package core

import (
	"context"
	"math"

	"talon/internal/radio"
)

// Quantized int16 correlation kernel.
//
// The firmware only ever reports quarter-dB SNR clamped to the −7…12 dB
// window (radio.SNRMinDB/SNRMaxDB), so the float64 dictionary carries
// far more precision than any measurement it is correlated against.
// This file quantizes both sides of the Eq. 2 correlation to int16
// fixed-point and replaces the two-pass centered dot product with a
// single pass of int32 moment accumulation:
//
//   - Probe readings are encoded on a sub-quarter-dB lattice
//     (QuantizeProbe: probeStepDB = SNRQuantumDB/4 steps across the
//     hardware window, so every value the hardware can report round-trips
//     exactly) and mapped to linear-amplitude codes through a
//     precomputed table — the per-probe math.Pow of the float path
//     disappears entirely.
//   - Dictionary amplitudes are scaled to [0, quantOne] codes once at
//     newEngine time; NaN (uncovered grid point) becomes the quantMissing
//     sentinel, mirroring the float path's NaN skip.
//   - The Pearson correlation is computed from raw integer moments
//     (n, Σp, Σx, Σpx, Σp², Σx²) accumulated in int32. quantOne is 4095
//     (12 bits) precisely so the moments cannot overflow: with at most
//     quantMaxComponents = 64 components, Σpx ≤ 64·4095² = 1 073 217 600
//     < 2³¹−1 (at the paper's M = 14 operating point the bound is
//     14·4095² ≈ 2.3·10⁸, an order of magnitude of headroom). The final
//     cov²/(varP·varX) combination runs in int64/float64 — the int64
//     cross terms n·Σpx − Σp·Σx are exact.
//
// Pearson correlation is invariant under positive affine maps of either
// vector, so the per-vector dB offset (quantizeVec) and the global
// dictionary scale change nothing but rounding noise. The search — the
// O(grid·M) part — runs entirely on int16 codes; the final estimate is
// then produced by a float epilogue (quantEpilogue) that re-evaluates
// the winning cell and its refinement neighbourhood on the float64
// dictionary, so rounding noise can only move the argmax cell, never the
// reported values at a given cell. The equivalence suite
// (quant_equiv_test.go) gates the residual argmax noise to ≤1% sector
// divergence and one coarse-cell diagonal of AoA drift against the
// float64 kernel.
//
// The float64 dictionary always stays resident: it remains the exactness
// reference (Options.ExactSearch, KernelFloat64), and the multipath /
// backup searches still run on it.

// Kernel names a correlation-kernel implementation. The name is part of
// the compatibility surface: golden artifacts record which kernel
// produced them, and pinning Options.Kernel reproduces old artifacts
// byte for byte across kernel-default changes.
type Kernel string

const (
	// KernelAuto picks the default kernel (currently KernelQuantInt16).
	KernelAuto Kernel = ""
	// KernelQuantInt16 is the cache-tiled int16 fixed-point kernel of
	// this file. Estimates are equivalence-gated — not bit-identical —
	// against KernelFloat64.
	KernelQuantInt16 Kernel = "quant-int16-v1"
	// KernelFloat64 is the exact float64 reference kernel (the engine of
	// engine.go). Options.ExactSearch implies it.
	KernelFloat64 Kernel = "float64-v1"
)

// kernel resolves the options to the kernel that will serve estimates.
// ExactSearch promises bit-for-bit agreement with the serial reference,
// which only the float64 kernel provides, so it takes precedence over
// Options.Kernel.
func (o Options) kernel() Kernel {
	if o.ExactSearch || o.Kernel == KernelFloat64 {
		return KernelFloat64
	}
	return KernelQuantInt16
}

// Fixed-point geometry.
const (
	// quantBits is the amplitude code width. 12 bits is the largest width
	// whose raw second moments fit int32 at 64 components (see the
	// overflow argument in the file comment).
	quantBits = 12
	// quantOne is the full-scale amplitude code.
	quantOne = 1<<quantBits - 1
	// quantMissing marks dictionary entries the pattern does not cover
	// (the float dictionary's NaN).
	quantMissing = int16(-1)
	// quantMaxComponents caps the correlation components per grid point,
	// mirroring the float kernel's fixed 64-component gather capacity.
	quantMaxComponents = 64

	// probeStepDB subdivides the firmware's quarter-dB reporting quantum
	// 4×, so hardware reports encode losslessly and off-lattice synthetic
	// inputs round-trip within half a sub-step (1/32 dB, well inside the
	// half quarter-dB bound the property suite enforces).
	probeStepDB = radio.SNRQuantumDB / 4
	// ProbeCodeMax is the largest probe code: the top of the −7…12 dB
	// hardware window on the probeStepDB lattice.
	ProbeCodeMax = int16((radio.SNRMaxDB - radio.SNRMinDB) / probeStepDB)
)

// ampCodes maps a probe code to its linear-amplitude fixed-point code:
// round(quantOne · 10^((dB(code) − SNRMaxDB)/20)), so the top of the
// window is full scale and the bottom (19 dB down) is ≈ quantOne/9.
// Precomputed once; the hot path pays one table load per probe instead
// of a math.Pow.
var ampCodes = func() [ProbeCodeMax + 1]int16 {
	var t [ProbeCodeMax + 1]int16
	for c := range t {
		db := radio.SNRMinDB + float64(c)*probeStepDB
		t[c] = int16(math.Round(quantOne * math.Pow(10, (db-radio.SNRMaxDB)/20)))
	}
	return t
}()

// QuantizeProbe encodes a dB reading as a fixed-point code on the
// probeStepDB lattice spanning the firmware's −7…12 dB reporting window,
// saturating at the clamp bounds (exactly like the hardware does). NaN
// encodes as the floor. The codec is monotone: db1 <= db2 implies
// QuantizeProbe(db1) <= QuantizeProbe(db2).
//talon:noalloc
func QuantizeProbe(db float64) int16 {
	c := math.Round((db - radio.SNRMinDB) / probeStepDB)
	switch {
	case math.IsNaN(c), c < 0:
		return 0
	case c > float64(ProbeCodeMax):
		return ProbeCodeMax
	}
	return int16(c)
}

// DequantizeProbe decodes a probe code back to dB. Out-of-range codes
// clamp to the window bounds. Round-tripping any in-window dB value
// through QuantizeProbe changes it by at most probeStepDB/2.
//talon:noalloc
func DequantizeProbe(code int16) float64 {
	switch {
	case code < 0:
		code = 0
	case code > ProbeCodeMax:
		code = ProbeCodeMax
	}
	return radio.SNRMinDB + float64(code)*probeStepDB
}

// quantizeVec encodes one measurement vector (raw dB readings) as
// amplitude codes, appending to dst. The vector is shifted so its
// maximum lands at the top of the quantization window — Pearson
// correlation is invariant under the shift (a dB offset is a linear
// scale), and the shift is what keeps RSSI vectors (≈ −70 dBm) and
// imputed floor values inside the window. The offset is rounded up to
// the code lattice so lattice-aligned inputs (everything real firmware
// reports) stay lattice-aligned and encode losslessly. Components more
// than 19 dB below the vector maximum saturate at the window floor;
// their linear amplitude is ≤ 1.2% of the maximum, which is also where
// the float kernel's own sensitivity ends.
//
// Components whose sector is absent from the dictionary (cols[i] < 0)
// are excluded from the maximum: the correlation skips them at every
// grid point, but a rogue reading among them (e.g. a probe for an
// unknown sector) would otherwise shift the window and saturate every
// real component to the floor. Their codes still occupy a slot to keep
// dst parallel to cols.
//talon:noalloc
func quantizeVec(dst []int16, db []float64, cols []int16) []int16 {
	maxDB := math.Inf(-1)
	for i, v := range db {
		if cols[i] >= 0 && v > maxDB {
			maxDB = v
		}
	}
	off := math.Ceil((maxDB-radio.SNRMaxDB)/probeStepDB) * probeStepDB
	for _, v := range db {
		//lint:allow noalloc -- dst arrives resliced to [:0] from the scratch pool; growth amortizes there
		dst = append(dst, ampCodes[QuantizeProbe(v-off)])
	}
	return dst
}

// buildQuant quantizes the dense and coarse dictionaries to int16 codes.
// Called from newEngine after buildCoarse; a no-op unless the options
// resolve to the quantized kernel. The global scale maps the loudest
// dictionary amplitude to full scale — Pearson invariance makes the
// choice free — and the coarse codes are copied from the dense ones the
// same way buildCoarse copies rows, so a grid point shared by both
// quantized dictionaries scores bit-identically.
func (en *engine) buildQuant(opts Options) {
	if opts.kernel() != KernelQuantInt16 {
		return
	}
	maxAmp := 0.0
	for _, v := range en.dict {
		if !math.IsNaN(v) && v > maxAmp {
			maxAmp = v
		}
	}
	if maxAmp <= 0 || math.IsInf(maxAmp, 1) {
		// Nothing finite to quantize; estimates stay on the float kernel.
		return
	}
	scale := quantOne / maxAmp
	en.dictQ = make([]int16, len(en.dict))
	en.fullQ = true
	for i, v := range en.dict {
		if math.IsNaN(v) {
			en.dictQ[i] = quantMissing
			en.fullQ = false
			continue
		}
		c := math.Round(v * scale)
		if c > quantOne {
			c = quantOne
		}
		en.dictQ[i] = int16(c)
	}
	if len(en.coarse) > 0 {
		numAz := len(en.az)
		en.coarseQ = make([]int16, len(en.coarse))
		pos := 0
		for _, ei := range en.cElIdx {
			for _, ai := range en.cAzIdx {
				src := (int(ei)*numAz + int(ai)) * en.stride
				copy(en.coarseQ[pos:pos+en.stride], en.dictQ[src:src+en.stride])
				pos += en.stride
			}
		}
	}
	en.tilePts = tilePoints(en.stride)
	metQuantDictBytes.Set(int64(2 * (len(en.dictQ) + len(en.coarseQ))))
	metQuantTilePoints.Set(int64(en.tilePts))
}

// quant reports whether the quantized kernel is built and serving
// estimates.
func (en *engine) quant() bool { return len(en.dictQ) > 0 }

// correlateQ is the quantized twin of correlateIn: Eq. 2 over one
// dictionary row, computed from single-pass int32 raw moments instead of
// the float path's two-pass centered form. Component selection mirrors
// the float kernel exactly — skip absent columns, skip quantMissing
// (NaN) entries, cap at quantMaxComponents, fewer than three usable
// components yield 0 — so the two kernels disagree only by rounding.
//talon:noalloc
func correlateQ(dictQ []int16, base int, cols []int16, pq []int16) float64 {
	var n, sp, sx, spx, spp, sxx int32
	for i, c := range cols {
		if c < 0 {
			continue
		}
		x := int32(dictQ[base+int(c)])
		if x < 0 {
			continue
		}
		if n >= quantMaxComponents {
			break
		}
		p := int32(pq[i])
		n++
		sp += p
		sx += x
		spx += p * x
		spp += p * p
		sxx += x * x
	}
	if n < 3 {
		return 0
	}
	// n·Σpx − Σp·Σx = n²·cov(p,x); the int64 products are exact.
	cov := int64(n)*int64(spx) - int64(sp)*int64(sx)
	varP := int64(n)*int64(spp) - int64(sp)*int64(sp)
	varX := int64(n)*int64(sxx) - int64(sx)*int64(sx)
	if varP == 0 || varX == 0 {
		return 0
	}
	if cov < 0 {
		// Anti-correlated shapes are no evidence, as in the float kernel.
		return 0
	}
	return float64(cov) * float64(cov) / (float64(varP) * float64(varX))
}

// quantVec is the quantized view of one gathered measurement: the full
// code vectors parallel to the column map (the always-correct path) and,
// when the dictionary has no missing entries, a compacted copy with the
// grid-point-invariant probe moments hoisted out of the sweep.
type quantVec struct {
	cols        []int16 // dictionary column per component; < 0 = absent sector
	snrQ, rssiQ []int16 // amplitude codes, parallel to cols

	// Fast-path view (full dictionaries only): the cols >= 0 components,
	// truncated at quantMaxComponents. With no missing entries the
	// component set is identical at every grid point, so n, Σp and
	// n·Σp² − (Σp)² are per-estimate constants. pack[i] carries both
	// probe codes SWAR-style — SNR in the low half, RSSI in the high
	// half — so one 64-bit multiply-accumulate per component produces
	// both cross moments (see jointQFast).
	full              bool
	colsC             []int32
	pack              []int64
	n                 int32
	snrSp, rssiSp     int32
	snrVarP, rssiVarP int64
}

// compact builds the fast-path view from the full vectors. The
// truncation matches the slow path's component cap: with a full
// dictionary the first quantMaxComponents usable components are the same
// at every grid point.
//talon:noalloc
func (qv *quantVec) compact() {
	qv.colsC, qv.pack = qv.colsC[:0], qv.pack[:0]
	var spS, sppS, spR, sppR int32
	for i, c := range qv.cols {
		if c < 0 {
			continue
		}
		if len(qv.colsC) == quantMaxComponents {
			break
		}
		ps, pr := int32(qv.snrQ[i]), int32(qv.rssiQ[i])
		qv.colsC = append(qv.colsC, int32(c))
		qv.pack = append(qv.pack, int64(ps)|int64(pr)<<32)
		spS += ps
		sppS += ps * ps
		spR += pr
		sppR += pr * pr
	}
	n := int32(len(qv.colsC))
	qv.n, qv.snrSp, qv.rssiSp = n, spS, spR
	qv.snrVarP = int64(n)*int64(sppS) - int64(spS)*int64(spS)
	qv.rssiVarP = int64(n)*int64(sppR) - int64(spR)*int64(spR)
}

// jointQ evaluates the joint Eq. 5 correlation at one dictionary base
// offset on the quantized kernel. The w = cov²/(varP·varX) form is
// dimensionless, so quantized scores live on the same [0, 1] scale as
// float ones and the FallbackCorr threshold applies unchanged.
//talon:noalloc
func jointQ(dictQ []int16, pt int, qv *quantVec, snrOnly bool) float64 {
	if qv.full {
		return jointQFast(dictQ, pt, qv, snrOnly)
	}
	v := correlateQ(dictQ, pt, qv.cols, qv.snrQ)
	if v != 0 && !snrOnly {
		v *= correlateQ(dictQ, pt, qv.cols, qv.rssiQ)
	}
	return v
}

// jointQFast is jointQ over a full dictionary: one fused sweep of the
// row accumulates the dictionary moments (Σx, Σx²) and both cross
// moments (Σpx for SNR and RSSI), so each int16 code is loaded once for
// the whole Eq. 5 product; the probe-side moments come precomputed from
// compact(). Value-identical to the slow path — same component set,
// same exact int64 centered moments, same float combining order — just
// without the per-component branches and the second pass.
//
// Both accumulators are SWAR pairs: every partial sum that lands in a
// low half is bounded by quantMaxComponents·quantOne² = 64·4095² < 2³¹,
// so the low half can never carry into the high half and the two packed
// running sums stay exact. mom packs Σx² (low) with Σx (high); cross
// packs Σ snr·x (low) with Σ rssi·x (high) via the precomputed pack
// codes. Two 64-bit multiplies per component replace the scalar path's
// three multiplies and four separate accumulators.
//talon:noalloc
func jointQFast(dictQ []int16, pt int, qv *quantVec, snrOnly bool) float64 {
	n := qv.n
	if n < 3 {
		return 0
	}
	colsC, pack := qv.colsC, qv.pack
	var mom, cross int64
	for i, c := range colsC {
		x := int64(dictQ[pt+int(c)])
		mom += x * (x | 1<<32)
		cross += x * pack[i]
	}
	sx := int32(mom >> 32)
	sxx := int32(uint32(mom))
	spxS := int32(uint32(cross))
	spxR := int32(cross >> 32)
	varX := int64(n)*int64(sxx) - int64(sx)*int64(sx)
	if varX == 0 || qv.snrVarP == 0 {
		return 0
	}
	cov := int64(n)*int64(spxS) - int64(qv.snrSp)*int64(sx)
	if cov < 0 {
		return 0
	}
	v := float64(cov) * float64(cov) / (float64(qv.snrVarP) * float64(varX))
	if v == 0 || snrOnly {
		return v
	}
	if qv.rssiVarP == 0 {
		return 0
	}
	cov = int64(n)*int64(spxR) - int64(qv.rssiSp)*int64(sx)
	if cov < 0 {
		return 0
	}
	return v * (float64(cov) * float64(cov) / (float64(qv.rssiVarP) * float64(varX)))
}

// coarseTopKQ scores the coarse points [lo, hi) for one probe vector and
// folds the positive ones into the caller's descending top-K
// (cells/scores, kept entries), returning the new kept count. The
// insertion logic is identical to searchHier's coarse pass — ties keep
// the earlier row-major cell — and because callers sweep tiles in
// ascending point order the final top-K matches a straight row-major
// scan, whatever the tile geometry. This is the kernel the batch-major
// pass (tile.go) shares across a whole batch per dictionary tile.
//talon:noalloc
func (en *engine) coarseTopKQ(lo, hi int, qv *quantVec, snrOnly bool, cells []int32, scores []float64, kept int) int {
	pos := lo * en.stride
	for pt := lo; pt < hi; pt++ {
		v := jointQ(en.coarseQ, pos, qv, snrOnly)
		pos += en.stride
		if v <= 0 {
			continue
		}
		if kept == en.topK && v <= scores[kept-1] {
			continue
		}
		if kept < en.topK {
			kept++
		}
		at := kept - 1
		for at > 0 && v > scores[at-1] {
			scores[at], cells[at] = scores[at-1], cells[at-1]
			at--
		}
		scores[at], cells[at] = v, int32(pt)
	}
	return kept
}

// refineQ rescans the dense windows around the kept coarse candidates on
// the quantized dictionary — the quantized twin of searchHier's
// refinement phase, with the identical merged-span strictly-row-major
// walk so tie-breaks match the float search's order.
//talon:noalloc
func (en *engine) refineQ(ctx context.Context, sc *hierScratch, kept int, qv *quantVec, snrOnly bool) (bestA, bestE int, bestW float64, err error) {
	numAz, numEl := len(en.az), len(en.el)
	nCAz := len(en.cAzIdx)
	for k := 0; k < kept; k++ {
		cell := int(sc.cells[k])
		ai, ei := int(en.cAzIdx[cell%nCAz]), int(en.cElIdx[cell/nCAz])
		sc.azLo[k] = clampIdx(ai-en.winAz, numAz)
		sc.azHi[k] = clampIdx(ai+en.winAz, numAz)
		sc.elLo[k] = clampIdx(ei-en.winEl, numEl)
		sc.elHi[k] = clampIdx(ei+en.winEl, numEl)
	}
	bestA, bestE, bestW = 0, 0, -1.0
	for ei := 0; ei < numEl; ei++ {
		iv := sc.iv[:0]
		for k := 0; k < kept; k++ {
			if sc.elLo[k] <= int32(ei) && int32(ei) <= sc.elHi[k] {
				iv = append(iv, ivSpan{sc.azLo[k], sc.azHi[k]})
			}
		}
		if len(iv) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, err
		}
		for i := 1; i < len(iv); i++ {
			for j := i; j > 0 && iv[j].lo < iv[j-1].lo; j-- {
				iv[j], iv[j-1] = iv[j-1], iv[j]
			}
		}
		base := ei * numAz * en.stride
		cursor := -1
		for _, s := range iv {
			lo := int(s.lo)
			if lo <= cursor {
				lo = cursor + 1
			}
			for ai := lo; ai <= int(s.hi); ai++ {
				v := jointQ(en.dictQ, base+ai*en.stride, qv, snrOnly)
				if v > bestW {
					bestA, bestE, bestW = ai, ei, v
				}
			}
			if int(s.hi) > cursor {
				cursor = int(s.hi)
			}
		}
	}
	return bestA, bestE, bestW, nil
}

// searchHierQ runs the coarse-to-fine search on the quantized
// dictionaries: tiled coarse top-K pass, then dense window refinement.
// ok is false when no coarse cell scored positive and the caller must
// fall back to the exhaustive quantized scan (denseArgmaxQ), mirroring
// the float hierarchy's disaster-guard semantics.
//talon:noalloc
func (en *engine) searchHierQ(ctx context.Context, sc *hierScratch, qv *quantVec, snrOnly bool) (bestA, bestE int, bestW float64, ok bool, err error) {
	n := len(en.cAzIdx) * len(en.cElIdx)
	kept := 0
	for lo := 0; lo < n; lo += en.tilePts {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, false, err
		}
		hi := lo + en.tilePts
		if hi > n {
			hi = n
		}
		kept = en.coarseTopKQ(lo, hi, qv, snrOnly, sc.cells, sc.scores, kept)
	}
	if kept == 0 {
		return 0, 0, 0, false, nil
	}
	bestA, bestE, bestW, err = en.refineQ(ctx, sc, kept, qv, snrOnly)
	if err != nil {
		return 0, 0, 0, false, err
	}
	return bestA, bestE, bestW, true, nil
}

// denseArgmaxQ is the exhaustive quantized scan: every dense grid point
// in row-major order with the strictly-greater update, so tie-breaks
// match engine.argmax. No surface is materialized — refinement
// re-evaluates the handful of neighbours it needs.
//talon:noalloc
func (en *engine) denseArgmaxQ(ctx context.Context, qv *quantVec, snrOnly bool) (bestA, bestE int, bestW float64, err error) {
	numAz, numEl := len(en.az), len(en.el)
	bestW = -1.0
	for ei := 0; ei < numEl; ei++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, err
		}
		base := ei * numAz * en.stride
		for ai := 0; ai < numAz; ai++ {
			v := jointQ(en.dictQ, base+ai*en.stride, qv, snrOnly)
			if v > bestW {
				bestA, bestE, bestW = ai, ei, v
			}
		}
	}
	return bestA, bestE, bestW, nil
}

// searchQuant picks the quantized search for one probe vector:
// hierarchical when the coarse dictionary exists (with the exhaustive
// fallback on an all-nonpositive coarse pass), exhaustive otherwise.
// sc may be nil when the hierarchy is disabled.
//talon:noalloc
func (en *engine) searchQuant(ctx context.Context, sc *hierScratch, qv *quantVec, snrOnly bool) (bestA, bestE int, bestW float64, err error) {
	if len(en.coarseQ) > 0 {
		var ok bool
		bestA, bestE, bestW, ok, err = en.searchHierQ(ctx, sc, qv, snrOnly)
		if err != nil || ok {
			return bestA, bestE, bestW, err
		}
		metQuantFallbacks.Inc()
	}
	return en.denseArgmaxQ(ctx, qv, snrOnly)
}

// gatherQuantInto is gatherInto for the quantized kernel: identical probe
// selection, imputation and ordering, but keeping the readings in the dB
// domain — amplitudes come from the ampCodes table at quantization time,
// so the per-probe math.Pow of the float gather disappears.
//talon:noalloc
func (e *Estimator) gatherQuantInto(g *gatherScratch, probes []Probe) (reported int) {
	minSNR, minRSSI := math.Inf(1), math.Inf(1)
	for _, p := range probes {
		if !p.OK {
			continue
		}
		reported++
		if p.Meas.SNR < minSNR {
			minSNR = p.Meas.SNR
		}
		if p.Meas.RSSI < minRSSI {
			minRSSI = p.Meas.RSSI
		}
	}
	g.ids, g.snrDB, g.rssiDB = g.ids[:0], g.snrDB[:0], g.rssiDB[:0]
	impute := !e.opts.NoImputeMissing && reported > 0
	for _, p := range probes {
		switch {
		case p.OK:
			g.ids = append(g.ids, p.Sector)
			g.snrDB = append(g.snrDB, p.Meas.SNR)
			g.rssiDB = append(g.rssiDB, p.Meas.RSSI)
		case impute:
			g.ids = append(g.ids, p.Sector)
			g.snrDB = append(g.snrDB, minSNR-1)
			g.rssiDB = append(g.rssiDB, minRSSI-1)
		}
	}
	return reported
}

// quantizeGather encodes the gathered dB vectors into the scratch's
// quantVec and, over full dictionaries, builds its compacted fast-path
// view.
//talon:noalloc
func quantizeGather(g *gatherScratch, cols []int16, full bool) {
	qv := &g.qv
	qv.cols = cols
	qv.snrQ = quantizeVec(qv.snrQ[:0], g.snrDB, cols)
	qv.rssiQ = quantizeVec(qv.rssiQ[:0], g.rssiDB, cols)
	qv.full = full
	if full {
		qv.compact()
	}
}

// ampTab spans [-120, 40] dB on the quarter-dB lattice — every SNR or
// RSSI value real firmware reports, plus their minus-one imputations.
const (
	ampTabLoDB = -120.0
	ampTabN    = 641 // (40 − (−120)) × 4 + 1 quarter-dB steps
)

// ampTab caches amp() on the lattice. Entries are computed with amp()
// itself, so a table hit is bit-identical to the live call.
var ampTab = func() [ampTabN]float64 {
	var t [ampTabN]float64
	for i := range t {
		t[i] = amp(ampTabLoDB + float64(i)*0.25)
	}
	return t
}()

// ampCached is amp() with the lattice served from ampTab. Quarter-dB
// multiples subtract and scale exactly in binary (0.25 = 2⁻²), so the
// lattice test is an exact float comparison and off-lattice or
// out-of-range values fall through to the live math.Pow.
//talon:noalloc
func ampCached(db float64) float64 {
	i := (db - ampTabLoDB) * 4
	if i >= 0 && i <= ampTabN-1 {
		if j := int(i); i == float64(j) {
			return ampTab[j]
		}
	}
	return amp(db)
}

// linearizeGather converts the gathered dB vectors to linear amplitudes
// for the float epilogue. gatherQuantInto keeps the exact dB values
// gatherInto would convert (including the minus-one imputation), so the
// amplitudes here are bit-identical to the float kernel's own gather.
//talon:noalloc
func linearizeGather(g *gatherScratch) {
	g.snr, g.rssi = g.snr[:0], g.rssi[:0]
	for _, v := range g.snrDB {
		g.snr = append(g.snr, ampCached(v))
	}
	for _, v := range g.rssiDB {
		g.rssi = append(g.rssi, ampCached(v))
	}
}

// quantEpilogue turns the quantized search's argmax cell into the final
// estimate using the float64 dictionary: one Eq. 5 evaluation at the
// winning cell plus the parabolic refinement around it, O(M) work against
// the O(grid·M) integer sweep that found the cell. Quantization noise is
// thereby confined to the argmax decision itself — whenever the two
// kernels agree on the cell (the common case the equivalence suite
// gates), the reported Az/El/Corr are bit-identical to KernelFloat64,
// and downstream near-tie decisions (Eq. 4 sector choice, the
// FallbackCorr threshold) cannot flip on epsilon score differences.
//talon:noalloc
func (e *Estimator) quantEpilogue(g *gatherScratch, cols []int16, bestA, bestE int, reported int) AoAEstimate {
	en := e.en
	snrOnly := e.opts.SNROnly
	linearizeGather(g)
	numAz := len(en.az)
	w := en.jointAt((bestE*numAz+bestA)*en.stride, cols, g.snr, g.rssi, snrOnly)
	aoa := AoAEstimate{Az: en.az[bestA], El: en.el[bestE], Corr: w, Used: reported, Cell: cellOf(bestA, bestE)}
	if !e.opts.NoRefine {
		// The closures serve the already-computed centre value instead of
		// re-deriving it; jointAt is deterministic, so this is only a
		// recomputation skip.
		//lint:allow noalloc -- closure captures only stack values; escape analysis keeps it off the heap (see TestEstimateZeroAllocSteadyState)
		aoa.Az = refineAxis(en.az, bestA, func(i int) float64 {
			if i == bestA {
				return w
			}
			return en.jointAt((bestE*numAz+i)*en.stride, cols, g.snr, g.rssi, snrOnly)
		})
		//lint:allow noalloc -- closure captures only stack values; escape analysis keeps it off the heap (see TestEstimateZeroAllocSteadyState)
		aoa.El = refineAxis(en.el, bestE, func(i int) float64 {
			if i == bestE {
				return w
			}
			return en.jointAt((i*numAz+bestA)*en.stride, cols, g.snr, g.rssi, snrOnly)
		})
	}
	return aoa
}
