package core

import (
	"math"

	"talon/internal/radio"
	"talon/internal/sector"
)

// SweepSelect is the stock sector-sweep baseline (Eq. 1): the probed
// sector with the highest reported SNR. Missing reports simply lose —
// exactly the failure mode that makes the stock algorithm fluctuate.
// ok is false when no probe carried a measurement.
func SweepSelect(probes []Probe) (id sector.ID, ok bool) {
	bestSNR := math.Inf(-1)
	for _, p := range probes {
		if !p.OK {
			continue
		}
		if p.Meas.SNR > bestSNR {
			id, bestSNR, ok = p.Sector, p.Meas.SNR, true
		}
	}
	return id, ok
}

// OptimalSector returns the probed sector with the highest *true* SNR
// according to truth — the evaluation oracle for SNR-loss (Section 6.3),
// not available to any protocol.
func OptimalSector(truth map[sector.ID]float64) (sector.ID, bool) {
	best, bestSNR, ok := sector.ID(0), math.Inf(-1), false
	for _, id := range sector.TalonTX() {
		snr, have := truth[id]
		if !have {
			continue
		}
		if snr > bestSNR {
			best, bestSNR, ok = id, snr, true
		}
	}
	return best, ok
}

// MeasurementsToProbes is a convenience for offline analysis of full
// sweeps: it converts a measurement table into a probe vector over the
// given sector order.
func MeasurementsToProbes(order []sector.ID, meas map[sector.ID]radio.Measurement) []Probe {
	return ProbesFromMeasurements(order, meas)
}
