package core

import (
	"context"
	"runtime"
	"testing"

	"talon/internal/sector"
	"talon/internal/stats"
)

func TestSetMaxShardsSwap(t *testing.T) {
	defer SetMaxShards(SetMaxShards(0))
	if prev := SetMaxShards(3); prev != 0 {
		t.Fatalf("SetMaxShards(3) returned %d, want previous 0", prev)
	}
	if got := MaxShards(); got != 3 {
		t.Fatalf("MaxShards() = %d, want 3", got)
	}
	if prev := SetMaxShards(-5); prev != 3 {
		t.Fatalf("SetMaxShards(-5) returned %d, want previous 3", prev)
	}
	if got := MaxShards(); got != 0 {
		t.Fatalf("MaxShards() after negative set = %d, want 0 (uncapped)", got)
	}
}

// TestMaxShardsCapsEngineFanOut is the oversubscription regression test:
// with GOMAXPROCS raised above 1, an uncapped exhaustive estimate shards
// its rows (metRowsSharded advances) while a cap of 1 forces the serial
// fill, which is what outer worker pools rely on to keep the combined
// goroutine count at their own worker count.
func TestMaxShardsCapsEngineFanOut(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	defer SetMaxShards(SetMaxShards(0))

	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	probes := observe(t, gain, sector.TalonTX(), -30, 12, quietModel(), rng)
	ctx := context.Background()

	SetMaxShards(0)
	before := metRowsSharded.Value()
	uncapped, err := est.EstimateAoA(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	if metRowsSharded.Value() == before {
		t.Fatal("uncapped estimate at GOMAXPROCS=4 did not shard any rows")
	}

	SetMaxShards(1)
	before = metRowsSharded.Value()
	capped, err := est.EstimateAoA(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	if got := metRowsSharded.Value(); got != before {
		t.Fatalf("capped estimate sharded rows (counter %d -> %d), want serial fill", before, got)
	}
	if capped != uncapped {
		t.Fatalf("shard cap changed the estimate: capped %+v, uncapped %+v", capped, uncapped)
	}
}
