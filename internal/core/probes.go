package core

import (
	"fmt"
	"sort"

	"talon/internal/pattern"
	"talon/internal/sector"
	"talon/internal/stats"
)

// RandomProbes draws a uniform random subset of m sectors from available —
// the probing-set strategy evaluated in the paper. It returns an error if
// m is out of range.
func RandomProbes(rng *stats.RNG, available []sector.ID, m int) (*sector.Set, error) {
	if m < 2 || m > len(available) {
		return nil, fmt.Errorf("core: %w: probe count %d out of range [2, %d]", ErrTooFewProbes, m, len(available))
	}
	idx := rng.Sample(len(available), m)
	sort.Ints(idx) // keep stock sweep order
	ids := make([]sector.ID, m)
	for i, j := range idx {
		ids[i] = available[j]
	}
	return sector.NewSet(ids...), nil
}

// GainInformedProbes picks m probing sectors by codebook knowledge rather
// than randomly (the Section 7 discussion): it greedily prefers sectors
// with high peak gain and mutually distant peak directions, skipping
// low-gain sectors that contribute little information.
func GainInformedProbes(patterns *pattern.Set, m int) (*sector.Set, error) {
	tx := patterns.TXIDs()
	if m < 2 || m > len(tx) {
		return nil, fmt.Errorf("core: %w: probe count %d out of range [2, %d]", ErrTooFewProbes, m, len(tx))
	}
	type cand struct {
		id           sector.ID
		az, el, gain float64
	}
	cands := make([]cand, 0, len(tx))
	for _, id := range tx {
		az, el, g := patterns.Get(id).Peak()
		cands = append(cands, cand{id: id, az: az, el: el, gain: g})
	}
	// Strongest first.
	sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })

	chosen := make([]cand, 0, m)
	chosen = append(chosen, cands[0])
	remaining := cands[1:]
	for len(chosen) < m {
		// Greedy max-min angular spacing, weighted by gain.
		bestIdx, bestScore := -1, -1.0
		for i, c := range remaining {
			minDist := 1e9
			for _, ch := range chosen {
				d := angDist(c.az, c.el, ch.az, ch.el)
				if d < minDist {
					minDist = d
				}
			}
			score := minDist + 0.5*c.gain
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		chosen = append(chosen, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	ids := make([]sector.ID, len(chosen))
	for i, c := range chosen {
		ids[i] = c.id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return sector.NewSet(ids...), nil
}

func angDist(az1, el1, az2, el2 float64) float64 {
	da := az1 - az2
	de := el1 - el2
	if da < 0 {
		da = -da
	}
	if de < 0 {
		de = -de
	}
	return da + de
}
