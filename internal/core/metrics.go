package core

import "talon/internal/obs"

// Process-wide metrics of the estimation pipeline (see README,
// "Observability"). All updates are single atomic operations; the
// per-estimate overhead is two counter increments and one histogram
// observation, far below the grid search itself.
var (
	metEstimates = obs.NewCounter("core_estimates_total",
		"angle-of-arrival estimates run on the correlation engine")
	metEstimateSeconds = obs.NewHistogram("core_estimate_seconds",
		"wall time of one engine-backed grid search", nil)
	metEstimatesSerial = obs.NewCounter("core_estimates_serial_total",
		"estimates run on the serial reference path")
	metDictBuildSeconds = obs.NewHistogram("core_dict_build_seconds",
		"correlation-dictionary precomputation time per estimator", nil)
	metRowsSharded = obs.NewCounter("core_rows_sharded_total",
		"correlation-surface rows filled by the sharded worker pool")
	metScratchGets = obs.NewCounter("core_scratch_gets_total",
		"scratch-pool fetches (surfaces and probe-column buffers)")
	metScratchMisses = obs.NewCounter("core_scratch_misses_total",
		"scratch-pool misses that allocated fresh scratch")
	metSelectEngine = obs.NewCounter("core_select_engine_total",
		"SelectSector pipelines run on the engine path")
	metSelectSerial = obs.NewCounter("core_select_serial_total",
		"SelectSector pipelines run on the serial reference path")
	metSelectFallback = obs.NewCounter("core_select_fallback_total",
		"selections that fell back to the probed-sector argmax")
	metDegenerate = obs.NewCounter("core_surface_degenerate_total",
		"estimates aborted on a degenerate correlation surface")
	metHierEstimates = obs.NewCounter("core_hier_estimates_total",
		"estimates routed through the hierarchical coarse-to-fine search")
	metHierFallbacks = obs.NewCounter("core_hier_fallbacks_total",
		"hierarchical estimates that fell back to the exhaustive dense scan")
	metHierCoarseSeconds = obs.NewHistogram("core_hier_coarse_seconds",
		"wall time of the hierarchical coarse pass", nil)
	metHierRefineSeconds = obs.NewHistogram("core_hier_refine_seconds",
		"wall time of the hierarchical dense refinement", nil)
	metHierCellsRefined = obs.NewCounter("core_hier_cells_refined_total",
		"coarse candidate cells refined on the dense grid")
	metHierPruningRatio = obs.NewFloatGauge("core_hier_pruning_ratio",
		"fraction of dense grid points the most recent hierarchical estimate skipped")
	metBatches = obs.NewCounter("core_batches_total",
		"SelectSectorBatch calls")
	metBatchEstimates = obs.NewCounter("core_batch_estimates_total",
		"selections run through the batched estimation path")
	metBatchSeconds = obs.NewHistogram("core_batch_seconds",
		"wall time of one SelectSectorBatch call", obs.LatencyBuckets)
	metBatchSize = obs.NewGauge("core_batch_size",
		"item count of the most recent batch")
	metBatchOccupancy = obs.NewFloatGauge("core_batch_occupancy",
		"worker-slot occupancy of the most recent batch (items / workers x rounds)")
	metQuantEstimates = obs.NewCounter("core_quant_estimates_total",
		"estimates served by the quantized int16 kernel")
	metQuantFallbacks = obs.NewCounter("core_quant_fallbacks_total",
		"quantized estimates that fell back to the exhaustive quantized scan")
	metQuantDictBytes = obs.NewGauge("core_quant_dict_bytes",
		"size of the quantized dense+coarse dictionaries of the most recent engine build")
	metQuantTilePoints = obs.NewGauge("core_quant_tile_points",
		"grid points per L1 dictionary tile of the most recent engine build")
	metQuantBatchTiles = obs.NewCounter("core_quant_batch_tiles_total",
		"coarse dictionary tiles swept by the batch-major quantized pass")
	metWarmHints = obs.NewCounter("core_warm_hints_total",
		"quantized estimates offered a warm-start hint cell")
	metWarmHits = obs.NewCounter("core_warm_hits_total",
		"warm-start estimates served from the local window scan")
	metWarmFallbacks = obs.NewCounter("core_warm_fallbacks_total",
		"hinted estimates that failed the warm guards and ran the full search")
)
