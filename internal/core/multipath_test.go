package core

import (
	"context"
	"math"
	"testing"

	"talon/internal/radio"
	"talon/internal/sector"
	"talon/internal/stats"
)

// twoPathObserve produces probe readings for a channel with two discrete
// paths: per sector the received power is the sum of the two paths'
// pattern gains (secondary attenuated by atten dB).
func twoPathObserve(t testing.TB, gain func(sector.ID, float64, float64) float64,
	probed []sector.ID, az1, el1, az2, el2, attenDB float64,
	model radio.MeasurementModel, rng *stats.RNG) []Probe {
	t.Helper()
	probes := make([]Probe, 0, len(probed))
	for _, id := range probed {
		p1 := math.Pow(10, gain(id, az1, el1)/10)
		p2 := math.Pow(10, (gain(id, az2, el2)-attenDB)/10)
		snr := 10 * math.Log10(p1+p2)
		m, ok := model.Observe(snr, rng)
		probes = append(probes, Probe{Sector: id, Meas: m, OK: ok})
	}
	return probes
}

func TestEstimateMultipathTwoPaths(t *testing.T) {
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	model := quietModel()
	const az1, el1 = -40.0, 5.0
	const az2, el2 = 35.0, 10.0
	found1, found2 := 0, 0
	const trials = 20
	for i := 0; i < trials; i++ {
		probes := twoPathObserve(t, gain, sector.TalonTX(), az1, el1, az2, el2, 4, model, rng)
		peaks, err := est.EstimateMultipath(context.Background(), probes, 3, 20, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if len(peaks) < 1 {
			t.Fatal("no peaks")
		}
		// Peaks come in detection order; each must carry a positive
		// correlation. (After interference cancellation a later peak's
		// correlation may legitimately exceed the first one's.)
		for _, pk := range peaks {
			if pk.Corr <= 0 {
				t.Fatal("non-positive peak correlation")
			}
		}
		for _, pk := range peaks {
			if math.Abs(pk.Az-az1) < 10 {
				found1++
			}
			if math.Abs(pk.Az-az2) < 10 {
				found2++
			}
		}
	}
	if found1 < trials*3/4 {
		t.Errorf("primary path found in %d/%d trials", found1, trials)
	}
	if found2 < trials/2 {
		t.Errorf("secondary path found in %d/%d trials", found2, trials)
	}
}

func TestEstimateMultipathSeparation(t *testing.T) {
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(2)
	probes := twoPathObserve(t, gain, sector.TalonTX(), -30, 5, 40, 8, 5, quietModel(), rng)
	peaks, err := est.EstimateMultipath(context.Background(), probes, 3, 25, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(peaks); i++ {
		for j := i + 1; j < len(peaks); j++ {
			d := math.Abs(peaks[i].Az - peaks[j].Az)
			if d < 20 && math.Abs(peaks[i].El-peaks[j].El) < 20 {
				t.Fatalf("peaks %d and %d too close: %+v %+v", i, j, peaks[i], peaks[j])
			}
		}
	}
}

func TestEstimateMultipathValidation(t *testing.T) {
	set, _ := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	if _, err := est.EstimateMultipath(context.Background(), nil, 0, 10, 0.3); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := est.EstimateMultipath(context.Background(), nil, 2, 10, 0.3); err == nil {
		t.Error("no probes accepted")
	}
}

func TestSelectWithBackup(t *testing.T) {
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(3)
	model := quietModel()
	gotBackup := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		probes := twoPathObserve(t, gain, sector.TalonTX(), -40, 5, 35, 10, 4, model, rng)
		sel, err := est.SelectWithBackup(context.Background(), probes, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !sector.IsTalonTX(sel.Primary.Sector) {
			t.Fatalf("primary %v not a TX sector", sel.Primary.Sector)
		}
		if sel.HasBackup {
			gotBackup++
			if sel.Backup.Sector == sel.Primary.Sector {
				t.Fatal("backup equals primary")
			}
			// The backup must point at the secondary path: strong gain
			// toward it.
			if g := gain(sel.Backup.Sector, 35, 10); g < 0 {
				t.Fatalf("backup sector %v has gain %v toward the secondary path", sel.Backup.Sector, g)
			}
		}
	}
	if gotBackup < trials/2 {
		t.Fatalf("backup found in only %d/%d trials", gotBackup, trials)
	}
}

func TestSelectWithBackupSinglePath(t *testing.T) {
	// A clean single-path scene must still produce a primary; a backup
	// is optional but must never equal the primary.
	set, gain := synthSetup(t)
	est, _ := NewEstimator(set, Options{})
	rng := stats.NewRNG(4)
	probes := observe(t, gain, sector.TalonTX(), 10, 5, quietModel(), rng)
	sel, err := est.SelectWithBackup(context.Background(), probes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := gain(sel.Primary.Sector, 10, 5); got < 5 {
		t.Fatalf("primary gain %v toward truth", got)
	}
	if sel.HasBackup && sel.Backup.Sector == sel.Primary.Sector {
		t.Fatal("backup equals primary")
	}
}
