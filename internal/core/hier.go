package core

import (
	"context"
	"time"
)

// Hierarchical coarse-to-fine grid search.
//
// The exhaustive search scores every dense grid point (numAz × numEl
// correlations per estimate). Following the coarse-to-fine idea Rasekh
// et al. (HotMobile'17) use to make compressive path tracking tractable,
// the hierarchical search first scores a decimated coarse grid, keeps
// the top-K positively-correlated cells, and rescans only the dense
// windows around those cells. The window radius (decim+1)/2 is chosen so
// the windows of the coarse samples tile the dense grid: consecutive
// coarse indices are at most decim apart (decimateIndices forces the
// last index in), so every dense point lies within (decim+1)/2 of some
// coarse sample. Whenever the true dense argmax sits in a window that
// ranks among the top-K coarse cells — which the equivalence suite shows
// holds for essentially all realistic probe vectors — the result is bit
// identical to the exhaustive search: both paths score shared points via
// engine.jointAt, scan candidates in the dense row-major order, and
// break ties by the same strictly-greater rule.
//
// When the coarse pass finds no positive cell at all (degenerate or
// adversarial surfaces), the caller falls back to the exhaustive dense
// search, so hierarchical mode never loses the disaster-guard semantics
// of the exact path.

// Defaults of the hierarchical search. DefaultTopK is sized so the
// seeded hierarchical-vs-exhaustive equivalence suite passes while the
// refined point count stays a small fraction of the dense grid (on the
// default 91×9 campaign grid: 72 coarse points + ≤6 windows of ≤5×5
// points ≈ 1/4 of the 819 dense points).
const (
	// DefaultCoarseDecim decimates the coarse grid 4× per axis.
	DefaultCoarseDecim = 4
	// DefaultTopK refines the 6 best coarse cells.
	DefaultTopK = 6
)

// hierScratch is the pooled per-estimate scratch of the hierarchical
// search: the top-K candidate heap and the per-row interval buffers of
// the refinement scan. All slices are allocated once at full capacity.
type hierScratch struct {
	cells  []int32   // candidate coarse flat indices, descending score
	scores []float64 // candidate scores, parallel to cells
	azLo   []int32   // candidate dense windows
	azHi   []int32
	elLo   []int32
	elHi   []int32
	iv     []ivSpan // az interval merge buffer for one dense row
}

// ivSpan is one inclusive dense-az interval of the refinement scan.
type ivSpan struct{ lo, hi int32 }

func newHierScratch(topK int) *hierScratch {
	return &hierScratch{
		cells:  make([]int32, topK),
		scores: make([]float64, topK),
		azLo:   make([]int32, topK),
		azHi:   make([]int32, topK),
		elLo:   make([]int32, topK),
		elHi:   make([]int32, topK),
		iv:     make([]ivSpan, 0, topK),
	}
}

func (en *engine) getHierScratch() *hierScratch {
	metScratchGets.Inc()
	return en.hierScratch.Get().(*hierScratch)
}

func (en *engine) putHierScratch(sc *hierScratch) { en.hierScratch.Put(sc) }

// searchHier runs the two-level search and returns the dense argmax. ok
// is false — with the other results unspecified — when the coarse pass
// found no positively-correlated cell and the caller must fall back to
// the exhaustive dense search. ctx is observed between grid rows.
func (en *engine) searchHier(ctx context.Context, cols []int16, snrLin, rssiLin []float64, snrOnly bool) (bestA, bestE int, bestW float64, ok bool, err error) {
	sc := en.getHierScratch()
	defer en.putHierScratch(sc)

	// Coarse pass: score every decimated grid point, keeping the top-K
	// positive cells sorted by descending score (ties keep the earlier
	// row-major cell first, for determinism).
	coarseStart := time.Now() //lint:allow determinism -- coarse-pass latency histogram reads the wall clock by design
	nCAz, nCEl := len(en.cAzIdx), len(en.cElIdx)
	cells, scores := sc.cells, sc.scores
	kept := 0
	pos := 0
	for ci := 0; ci < nCEl; ci++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, false, err
		}
		for cj := 0; cj < nCAz; cj++ {
			v := jointIn(en.coarse, pos, cols, snrLin, rssiLin, snrOnly)
			pos += en.stride
			if v <= 0 {
				continue
			}
			if kept == en.topK && v <= scores[kept-1] {
				continue
			}
			if kept < en.topK {
				kept++
			}
			at := kept - 1
			for at > 0 && v > scores[at-1] {
				scores[at], cells[at] = scores[at-1], cells[at-1]
				at--
			}
			scores[at], cells[at] = v, int32(ci*nCAz+cj)
		}
	}
	metHierCoarseSeconds.ObserveSince(coarseStart)
	if kept == 0 {
		return 0, 0, 0, false, nil
	}

	// Refinement: rescan the dense windows around the candidates in
	// row-major order. Overlapping windows are merged per row so no
	// point is scored twice and the scan order stays strictly row-major.
	refineStart := time.Now() //lint:allow determinism -- refinement latency histogram reads the wall clock by design
	metHierCellsRefined.Add(int64(kept))
	numAz, numEl := len(en.az), len(en.el)
	for k := 0; k < kept; k++ {
		cell := int(cells[k])
		ai, ei := int(en.cAzIdx[cell%nCAz]), int(en.cElIdx[cell/nCAz])
		sc.azLo[k] = clampIdx(ai-en.winAz, numAz)
		sc.azHi[k] = clampIdx(ai+en.winAz, numAz)
		sc.elLo[k] = clampIdx(ei-en.winEl, numEl)
		sc.elHi[k] = clampIdx(ei+en.winEl, numEl)
	}
	bestA, bestE, bestW = 0, 0, -1.0
	scored := 0
	for ei := 0; ei < numEl; ei++ {
		iv := sc.iv[:0]
		for k := 0; k < kept; k++ {
			if sc.elLo[k] <= int32(ei) && int32(ei) <= sc.elHi[k] {
				iv = append(iv, ivSpan{sc.azLo[k], sc.azHi[k]})
			}
		}
		if len(iv) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, false, err
		}
		// Insertion-sort the handful of spans by lower bound.
		for i := 1; i < len(iv); i++ {
			for j := i; j > 0 && iv[j].lo < iv[j-1].lo; j-- {
				iv[j], iv[j-1] = iv[j-1], iv[j]
			}
		}
		base := ei * numAz * en.stride
		cursor := -1 // last dense az index scanned in this row
		for _, s := range iv {
			lo := int(s.lo)
			if lo <= cursor {
				lo = cursor + 1
			}
			for ai := lo; ai <= int(s.hi); ai++ {
				v := en.jointAt(base+ai*en.stride, cols, snrLin, rssiLin, snrOnly)
				scored++
				if v > bestW {
					bestA, bestE, bestW = ai, ei, v
				}
			}
			if int(s.hi) > cursor {
				cursor = int(s.hi)
			}
		}
	}
	metHierRefineSeconds.ObserveSince(refineStart)
	if total := numAz * numEl; total > 0 {
		metHierPruningRatio.Set(1 - float64(scored)/float64(total))
	}
	// Every candidate window contains its own coarse sample, so bestW is
	// at least the best (positive) coarse score: the hierarchical path
	// never reports a degenerate surface of its own.
	return bestA, bestE, bestW, true, nil
}

// clampIdx clamps i into [0, n).
func clampIdx(i, n int) int32 {
	if i < 0 {
		return 0
	}
	if i >= n {
		return int32(n - 1)
	}
	return int32(i)
}
