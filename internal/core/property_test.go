package core

import (
	"context"
	"errors"
	"testing"

	"talon/internal/sector"
	"talon/internal/stats"
)

// Property tests of the CSS invariants (table-driven over seeds): the
// selection must not depend on probe order, and with more than the
// minimum probes it must survive any single dropped probe.

// propSetup builds an estimator over the synthetic codebook and one
// probed measurement vector for the given seed.
func propSetup(t *testing.T, seed int64, m int) (*Estimator, []Probe) {
	t.Helper()
	set, gain := synthSetup(t)
	est, err := NewEstimator(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	probeSet, err := RandomProbes(rng, sector.TalonTX(), m)
	if err != nil {
		t.Fatal(err)
	}
	az := -60 + 120*rng.Float64()
	el := 25 * rng.Float64()
	probes := observe(t, gain, probeSet.IDs(), az, el, quietModel(), rng.Split("observe"))
	return est, probes
}

// permute returns a deterministic shuffle of probes.
func permute(probes []Probe, rng *stats.RNG) []Probe {
	out := append([]Probe(nil), probes...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestSelectionInvariantUnderProbePermutation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		est, probes := propSetup(t, seed, 14)
		base, err := est.SelectSector(context.Background(), probes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		shuffler := stats.NewRNG(seed).Split("shuffle")
		for round := 0; round < 5; round++ {
			sel, err := est.SelectSector(context.Background(), permute(probes, shuffler))
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if sel.Sector != base.Sector || sel.Fallback != base.Fallback {
				t.Fatalf("seed %d round %d: permutation changed the selection: %v -> %v",
					seed, round, base, sel)
			}
		}
	}
}

func TestSelectionSurvivesAnySingleDroppedProbe(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		est, probes := propSetup(t, seed, 14)
		if _, err := est.SelectSector(context.Background(), probes); err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		for drop := range probes {
			maimed := append([]Probe(nil), probes...)
			maimed[drop].OK = false
			sel, err := est.SelectSector(context.Background(), maimed)
			if err != nil {
				t.Fatalf("seed %d: dropping probe %d (%v) broke selection: %v",
					seed, drop, probes[drop].Sector, err)
			}
			if !sel.Sector.Valid() {
				t.Fatalf("seed %d: dropping probe %d yielded invalid sector %v",
					seed, drop, sel.Sector)
			}
		}
	}
}

// TestSelectionAtMinimumProbes pins the boundary: with exactly two
// reported probes selection still works, and below that it returns
// ErrTooFewProbes.
func TestSelectionAtMinimumProbes(t *testing.T) {
	est, probes := propSetup(t, 7, 14)
	two := append([]Probe(nil), probes[:2]...)
	if _, err := est.SelectSector(context.Background(), two); err != nil {
		t.Fatalf("two probes must select (internal fallback allowed): %v", err)
	}
	none := append([]Probe(nil), probes...)
	for i := range none {
		none[i].OK = false
	}
	_, err := est.SelectSector(context.Background(), none)
	if !errors.Is(err, ErrTooFewProbes) {
		t.Fatalf("all-missed vector: err = %v, want ErrTooFewProbes", err)
	}
}
