package channel

// The three measurement locations of the paper. Coordinates put the link
// along the x axis with the transmitter near the origin; callers choose
// device positions inside the room footprint.

// AnechoicChamber returns a reflection-free environment: the pattern
// measurement campaign of Section 4 runs here.
func AnechoicChamber() *Environment {
	return &Environment{Name: "anechoic-chamber"}
}

// Lab returns the lab environment of Section 6 (devices 3 m apart): a
// 6 m × 4 m room whose walls are lossy, so multipath exists but is weak.
func Lab() *Environment {
	const wallLoss = 16 // plasterboard / cluttered walls, dB per bounce
	return &Environment{
		Name: "lab",
		Reflectors: []Reflector{
			NewWallY("left-wall", 2.0, -1.5, 4.5, 0, 2.6, wallLoss),
			NewWallY("right-wall", -2.0, -1.5, 4.5, 0, 2.6, wallLoss+2),
			NewWallX("back-wall", -1.5, -2.0, 2.0, 0, 2.6, wallLoss+4),
			NewWallX("front-wall", 4.5, -2.0, 2.0, 0, 2.6, wallLoss+4),
		},
	}
}

// ConferenceRoom returns the conference-room environment of Section 6
// (devices 6 m apart): a larger room with "a couple of potential
// reflectors such as white-boards", i.e. lower reflection loss and
// therefore stronger multipath than the lab.
func ConferenceRoom() *Environment {
	const wallLoss = 17
	const whiteboardLoss = 11 // smooth metal-backed boards reflect well
	return &Environment{
		Name: "conference-room",
		Reflectors: []Reflector{
			NewWallY("whiteboard-left", 2.5, 0.5, 4.5, 0.8, 2.0, whiteboardLoss),
			NewWallY("whiteboard-right", -2.5, 1.0, 5.0, 0.8, 2.0, whiteboardLoss+1),
			NewWallY("left-wall", 2.6, -2.0, 8.0, 0, 2.8, wallLoss),
			NewWallY("right-wall", -2.6, -2.0, 8.0, 0, 2.8, wallLoss),
			NewWallX("back-wall", -2.0, -2.6, 2.6, 0, 2.8, wallLoss+3),
			NewWallX("front-wall", 8.0, -2.6, 2.6, 0, 2.8, wallLoss+3),
		},
	}
}
