package channel

import (
	"math"
	"testing"
	"testing/quick"

	"talon/internal/geom"
)

func TestFSPL(t *testing.T) {
	// 60.48 GHz free-space loss at 1 m is about 68.1 dB.
	if got := FSPL(1); math.Abs(got-68.07) > 0.1 {
		t.Fatalf("FSPL(1m) = %v", got)
	}
	// +6 dB per doubling.
	if d := FSPL(6) - FSPL(3); math.Abs(d-6.02) > 0.05 {
		t.Fatalf("doubling delta = %v", d)
	}
	// Clamped near zero.
	if got := FSPL(0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("FSPL(0) = %v", got)
	}
}

func TestPoseToLocal(t *testing.T) {
	// A device yawed 30° sees a source at global azimuth 30° on its
	// boresight.
	p := Pose{Yaw: 30}
	az, el := p.ToLocal(geom.FromAngles(30, 0))
	if math.Abs(az) > 1e-9 || math.Abs(el) > 1e-9 {
		t.Fatalf("local = (%v, %v)", az, el)
	}
	// Tilt moves the apparent elevation down by the tilt angle.
	p = Pose{Tilt: 20}
	_, el = p.ToLocal(geom.FromAngles(0, 20))
	if math.Abs(el) > 1e-9 {
		t.Fatalf("tilted local el = %v", el)
	}
	_, el = p.ToLocal(geom.FromAngles(0, 0))
	if math.Abs(el+20) > 1e-9 {
		t.Fatalf("tilted horizon el = %v, want -20", el)
	}
}

func TestPoseBoresight(t *testing.T) {
	// With a pure yaw or a pure tilt the boresight angles are exact.
	p := Pose{Yaw: 45}
	az, el := geom.Direction.Angles(p.Boresight())
	if math.Abs(az-45) > 1e-9 || math.Abs(el) > 1e-9 {
		t.Fatalf("yawed boresight = (%v, %v)", az, el)
	}
	p = Pose{Tilt: 10}
	az, el = geom.Direction.Angles(p.Boresight())
	if math.Abs(az) > 1e-9 || math.Abs(el-10) > 1e-9 {
		t.Fatalf("tilted boresight = (%v, %v)", az, el)
	}
	// For any pose the boresight maps back to local (0, 0).
	p = Pose{Yaw: 45, Tilt: 10}
	laz, lel := p.ToLocal(p.Boresight())
	if math.Abs(laz) > 1e-9 || math.Abs(lel) > 1e-9 {
		t.Fatalf("boresight local = (%v, %v)", laz, lel)
	}
	// Rotation-head geometry: spinning the yawed device under a tilt
	// keeps a source on the world x axis at exact local angles.
	p = Pose{Yaw: -25, Tilt: -10}
	laz, lel = p.ToLocal(geom.FromAngles(0, 0))
	if math.Abs(laz-25) > 1e-9 || math.Abs(lel-10) > 1e-9 {
		t.Fatalf("head geometry local = (%v, %v), want (25, 10)", laz, lel)
	}
}

func TestLOSRay(t *testing.T) {
	env := AnechoicChamber()
	rays := env.Rays(geom.Point{}, geom.Point{X: 3})
	if len(rays) != 1 {
		t.Fatalf("chamber rays = %d, want 1 (LOS only)", len(rays))
	}
	r := rays[0]
	if r.Reflected {
		t.Fatal("LOS marked reflected")
	}
	if math.Abs(r.Length-3) > 1e-12 {
		t.Fatalf("LOS length = %v", r.Length)
	}
	if az, _ := geom.Direction.Angles(r.AoD); math.Abs(az) > 1e-9 {
		t.Fatalf("AoD az = %v", az)
	}
	if az, _ := geom.Direction.Angles(r.AoA); math.Abs(math.Abs(az)-180) > 1e-9 {
		t.Fatalf("AoA az = %v", az)
	}
	if math.Abs(r.PathLossDB()-FSPL(3)) > 1e-12 {
		t.Fatalf("LOS loss = %v", r.PathLossDB())
	}
}

func TestLOSBlocked(t *testing.T) {
	env := &Environment{Name: "blocked", LOSBlocked: true}
	if rays := env.Rays(geom.Point{}, geom.Point{X: 3}); len(rays) != 0 {
		t.Fatalf("blocked env rays = %d", len(rays))
	}
}

func TestSingleReflection(t *testing.T) {
	// A wall at y=2 between tx (0,0) and rx (4,0): image path length is
	// the classic mirror geometry sqrt(dx² + (2·h)²).
	env := &Environment{
		Name:       "one-wall",
		Reflectors: []Reflector{NewWallY("wall", 2, -10, 10, -10, 10, 5)},
	}
	tx := geom.Point{X: 0, Y: 0, Z: 0}
	rx := geom.Point{X: 4, Y: 0, Z: 0}
	rays := env.Rays(tx, rx)
	if len(rays) != 2 {
		t.Fatalf("rays = %d, want LOS + 1 reflection", len(rays))
	}
	refl := rays[1]
	if !refl.Reflected {
		t.Fatal("second ray not marked reflected")
	}
	wantLen := math.Sqrt(16 + 16) // dx=4, 2h=4
	if math.Abs(refl.Length-wantLen) > 1e-9 {
		t.Fatalf("reflected length = %v, want %v", refl.Length, wantLen)
	}
	if refl.ExtraLossDB != 5 {
		t.Fatalf("extra loss = %v", refl.ExtraLossDB)
	}
	// Departure toward the wall (positive y), arrival from the wall.
	if refl.AoD.Y <= 0 || refl.AoA.Y <= 0 {
		t.Fatalf("reflection directions: AoD %+v AoA %+v", refl.AoD, refl.AoA)
	}
}

func TestReflectionBounds(t *testing.T) {
	// A short wall whose rectangle the mirror point misses produces no ray.
	env := &Environment{
		Name:       "short-wall",
		Reflectors: []Reflector{NewWallY("wall", 2, 10, 12, -10, 10, 5)},
	}
	rays := env.Rays(geom.Point{}, geom.Point{X: 4})
	if len(rays) != 1 {
		t.Fatalf("rays = %d, want LOS only", len(rays))
	}
}

func TestReflectionSameSideRequired(t *testing.T) {
	// Endpoints on opposite sides of the plane: no specular path.
	env := &Environment{
		Name:       "between",
		Reflectors: []Reflector{NewWallY("wall", 0, -10, 10, -10, 10, 5)},
	}
	rays := env.Rays(geom.Point{Y: -1}, geom.Point{X: 4, Y: 1})
	if len(rays) != 1 {
		t.Fatalf("rays = %d, want LOS only", len(rays))
	}
}

func TestReflectionSymmetryProperty(t *testing.T) {
	// Swapping endpoints preserves the path length of each reflection.
	env := ConferenceRoom()
	f := func(x1, y1, x2, y2 float64) bool {
		clampf := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) {
				return lo
			}
			return math.Min(math.Max(math.Mod(v, hi-lo)+lo, lo), hi)
		}
		tx := geom.Point{X: clampf(x1, 0, 6), Y: clampf(y1, -2, 2), Z: 1.2}
		rx := geom.Point{X: clampf(x2, 0, 6), Y: clampf(y2, -2, 2), Z: 1.2}
		if tx.Dist(rx) < 0.1 {
			return true
		}
		fw := env.Rays(tx, rx)
		bw := env.Rays(rx, tx)
		if len(fw) != len(bw) {
			return false
		}
		lenSet := func(rays []Ray) []float64 {
			out := make([]float64, len(rays))
			for i, r := range rays {
				out[i] = r.Length
			}
			return out
		}
		a, b := lenSet(fw), lenSet(bw)
		for _, la := range a {
			found := false
			for _, lb := range b {
				if math.Abs(la-lb) < 1e-9 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPresets(t *testing.T) {
	lab := Lab()
	conf := ConferenceRoom()
	if len(lab.Reflectors) == 0 || len(conf.Reflectors) == 0 {
		t.Fatal("presets without reflectors")
	}
	// The conference room must offer stronger multipath than the lab:
	// compare the strongest reflection against LOS in each.
	strongest := func(env *Environment, tx, rx geom.Point) float64 {
		best := math.Inf(1)
		for _, r := range env.Rays(tx, rx) {
			if r.Reflected && r.PathLossDB() < best {
				best = r.PathLossDB()
			}
		}
		return best
	}
	labTx, labRx := geom.Point{X: 0, Y: 0, Z: 1.2}, geom.Point{X: 3, Y: 0, Z: 1.2}
	confTx, confRx := geom.Point{X: 0, Y: 0, Z: 1.2}, geom.Point{X: 6, Y: 0, Z: 1.2}
	labGap := strongest(lab, labTx, labRx) - FSPL(3)
	confGap := strongest(conf, confTx, confRx) - FSPL(6)
	if confGap >= labGap {
		t.Fatalf("conference-room reflections (%.1f dB over LOS) weaker than lab (%.1f dB)", confGap, labGap)
	}
}
