// Package channel models 60 GHz millimeter-wave propagation between two
// devices: free-space path loss, a line-of-sight ray, and first-order
// specular reflections off finite planar reflectors (walls, whiteboards)
// computed with the image method.
//
// Three environment presets mirror the paper's measurement locations: an
// anechoic chamber (pure LOS), a lab (weak multipath, 3 m link) and a
// conference room (reflective whiteboards and walls, 6 m link).
package channel

import (
	"math"

	"talon/internal/geom"
)

// CarrierHz is the IEEE 802.11ad channel-2 carrier frequency.
const CarrierHz = 60.48e9

// fsplConstDB is 20·log10(4π·f/c) for the 60.48 GHz carrier, so that
// FSPL(d) = fsplConstDB + 20·log10(d).
var fsplConstDB = 20 * math.Log10(4*math.Pi*CarrierHz/299792458.0)

// FSPL returns the free-space path loss in dB over d meters at 60.48 GHz.
// Distances below 1 cm are clamped to avoid negative-loss artifacts.
func FSPL(d float64) float64 {
	if d < 0.01 {
		d = 0.01
	}
	return fsplConstDB + 20*math.Log10(d)
}

// Pose is a device placement: a position and the orientation of the array
// boresight. Yaw spins the device about its vertical axis
// (counter-clockwise, degrees); Tilt then tips the whole assembly upward
// about the world's horizontal y axis (degrees) — the composition of the
// paper's rotation head, where the spinning stage is tilted as a unit.
// The device-to-world rotation is R = RotEl(Tilt) ∘ RotAz(Yaw).
type Pose struct {
	Pos  geom.Point
	Yaw  float64
	Tilt float64
}

// ToLocal converts a global direction into the device's array frame and
// returns the local azimuth and elevation in degrees.
func (p Pose) ToLocal(d geom.Direction) (az, el float64) {
	local := d.RotateEl(-p.Tilt).RotateAz(-p.Yaw)
	return local.Angles()
}

// Boresight returns the global direction of the device's array boresight.
func (p Pose) Boresight() geom.Direction {
	return geom.FromAngles(0, 0).RotateAz(p.Yaw).RotateEl(p.Tilt)
}

// Ray is one propagation path from transmitter to receiver.
type Ray struct {
	// AoD and AoA are the global departure/arrival directions (from the
	// TX position toward the first interaction point, and from the RX
	// position back toward the last one).
	AoD, AoA geom.Direction
	// Length is the total unfolded path length in meters.
	Length float64
	// ExtraLossDB is loss beyond free space (reflection loss), >= 0.
	ExtraLossDB float64
	// Reflected marks non-LOS paths.
	Reflected bool
}

// PathLossDB returns the total propagation loss of the ray in dB.
func (r Ray) PathLossDB() float64 { return FSPL(r.Length) + r.ExtraLossDB }

// Reflector is a finite rectangular specular reflector.
type Reflector struct {
	// Center and the unit normal N define the plane; U and V are unit
	// in-plane axes with half-extents HalfU and HalfV meters.
	Center geom.Point
	N      geom.Direction
	U, V   geom.Direction
	HalfU  float64
	HalfV  float64
	// LossDB is the reflection loss in dB (positive).
	LossDB float64
	// Name labels the reflector for diagnostics.
	Name string
}

// NewWallX builds a vertical reflector whose plane is x = x0, spanning
// y ∈ [yMin, yMax] and z ∈ [zMin, zMax].
func NewWallX(name string, x0, yMin, yMax, zMin, zMax, lossDB float64) Reflector {
	return Reflector{
		Center: geom.Point{X: x0, Y: (yMin + yMax) / 2, Z: (zMin + zMax) / 2},
		N:      geom.Direction{X: 1},
		U:      geom.Direction{Y: 1},
		V:      geom.Direction{Z: 1},
		HalfU:  (yMax - yMin) / 2,
		HalfV:  (zMax - zMin) / 2,
		LossDB: lossDB,
		Name:   name,
	}
}

// NewWallY builds a vertical reflector whose plane is y = y0, spanning
// x ∈ [xMin, xMax] and z ∈ [zMin, zMax].
func NewWallY(name string, y0, xMin, xMax, zMin, zMax, lossDB float64) Reflector {
	return Reflector{
		Center: geom.Point{X: (xMin + xMax) / 2, Y: y0, Z: (zMin + zMax) / 2},
		N:      geom.Direction{Y: 1},
		U:      geom.Direction{X: 1},
		V:      geom.Direction{Z: 1},
		HalfU:  (xMax - xMin) / 2,
		HalfV:  (zMax - zMin) / 2,
		LossDB: lossDB,
		Name:   name,
	}
}

// Environment is a propagation scenario: a set of reflectors plus global
// attenuation knobs.
type Environment struct {
	Name       string
	Reflectors []Reflector
	// LOSBlocked suppresses the direct path (for blockage experiments).
	LOSBlocked bool
	// LOSExtraLossDB adds attenuation to the LOS ray only.
	LOSExtraLossDB float64
}

// Rays computes all first-order propagation paths between tx and rx.
// The LOS ray (unless blocked) comes first.
func (e *Environment) Rays(tx, rx geom.Point) []Ray {
	var rays []Ray
	if !e.LOSBlocked {
		d := rx.Sub(tx)
		rays = append(rays, Ray{
			AoD:         d.Normalize(),
			AoA:         d.Scale(-1).Normalize(),
			Length:      d.Norm(),
			ExtraLossDB: e.LOSExtraLossDB,
		})
	}
	for _, ref := range e.Reflectors {
		if r, ok := reflect(ref, tx, rx); ok {
			rays = append(rays, r)
		}
	}
	return rays
}

// reflect computes the first-order image-method path off ref, if any.
func reflect(ref Reflector, tx, rx geom.Point) (Ray, bool) {
	// Signed distances of endpoints from the plane.
	dt := tx.Sub(ref.Center).Dot(ref.N)
	dr := rx.Sub(ref.Center).Dot(ref.N)
	// Both endpoints must be on the same, nonzero side.
	if dt*dr <= 1e-12 {
		return Ray{}, false
	}
	// Mirror the transmitter across the plane.
	image := tx.Add(ref.N.Scale(-2 * dt))
	seg := rx.Sub(image)
	den := seg.Dot(ref.N)
	if math.Abs(den) < 1e-12 {
		return Ray{}, false
	}
	t := ref.Center.Sub(image).Dot(ref.N) / den
	if t <= 0 || t >= 1 {
		return Ray{}, false
	}
	hit := image.Add(seg.Scale(t))
	off := hit.Sub(ref.Center)
	if math.Abs(off.Dot(ref.U)) > ref.HalfU || math.Abs(off.Dot(ref.V)) > ref.HalfV {
		return Ray{}, false
	}
	return Ray{
		AoD:         hit.Sub(tx).Normalize(),
		AoA:         hit.Sub(rx).Normalize(),
		Length:      seg.Norm(),
		ExtraLossDB: ref.LossDB,
		Reflected:   true,
	}, true
}
